package ngramstats

// Tests for the streaming-first public API: CorpusBuilder/FromDocuments
// ingestion, the Start/Job execution handle, and the NGrams/TopK/Lookup
// consumption surface.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"
)

// countMap collects a result into text → frequency for comparison.
func countMap(t *testing.T, res *Result) map[string]int64 {
	t.Helper()
	m := map[string]int64{}
	for ng, err := range res.NGrams() {
		if err != nil {
			t.Fatal(err)
		}
		m[ng.Text] = ng.Frequency
	}
	return m
}

// TestCorpusBuilderSpillMatchesFromText is the acceptance check of the
// ingestion redesign: a corpus built through CorpusBuilder with a
// budget small enough to spill every document produces identical Count
// results (same encoded n-grams, since the dictionaries are identical)
// to FromText over the same documents.
func TestCorpusBuilderSpillMatchesFromText(t *testing.T) {
	texts := []string{
		"a rose is a rose is a rose.",
		"a rose by any other name.",
		"the rose wilts. the name remains.",
	}
	years := []int{1913, 1597, 1800}

	batch, err := FromText("rose", texts, years)
	if err != nil {
		t.Fatal(err)
	}

	cb := NewCorpusBuilder("rose", BuilderOptions{MemoryBudget: 1, TempDir: t.TempDir()})
	for i, text := range texts {
		if err := cb.Add(Document{ID: int64(i), Text: text, Year: years[i]}); err != nil {
			t.Fatal(err)
		}
	}
	streamed, err := cb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Stats() != batch.Stats() {
		t.Fatalf("stats differ: %+v vs %+v", streamed.Stats(), batch.Stats())
	}

	opts := Options{MinFrequency: 1, MaxLength: 4, TempDir: t.TempDir()}
	rb, err := Count(context.Background(), batch, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Release()
	rs, err := Count(context.Background(), streamed, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Release()

	got, want := countMap(t, rs), countMap(t, rb)
	if len(got) != len(want) {
		t.Fatalf("result sizes differ: %d vs %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("cf(%q) = %d, want %d", k, got[k], v)
		}
	}
	// Same dictionary means the same integer encoding: identical IDs for
	// the same phrase in both results.
	ngB, okB, _ := rb.Lookup("a rose")
	ngS, okS, _ := rs.Lookup("a rose")
	if !okB || !okS {
		t.Fatal("lookup failed")
	}
	if fmt.Sprint(ngB.IDs) != fmt.Sprint(ngS.IDs) {
		t.Fatalf("encodings differ: %v vs %v", ngB.IDs, ngS.IDs)
	}
}

// TestCorpusBuilderMixedIDsRejected verifies a zero-value ID after
// explicitly assigned IDs errors instead of silently assigning an
// ordinal that could collide with an explicit identifier.
func TestCorpusBuilderMixedIDsRejected(t *testing.T) {
	cb := NewCorpusBuilder("mixed", BuilderOptions{})
	if err := cb.Add(Document{ID: 1, Text: "first."}); err != nil {
		t.Fatal(err)
	}
	if err := cb.Add(Document{ID: 2, Text: "second."}); err != nil {
		t.Fatal(err)
	}
	if err := cb.Add(Document{Text: "auto after explicit."}); err == nil {
		t.Fatal("zero-value ID after explicit IDs accepted")
	}
	cb.Discard()

	// The other direction: an explicit ID after auto-assigned ordinals
	// must be rejected too (it could collide with an ordinal).
	cb2 := NewCorpusBuilder("mixed2", BuilderOptions{})
	if err := cb2.Add(Document{Text: "auto zero."}); err != nil {
		t.Fatal(err)
	}
	if err := cb2.Add(Document{Text: "auto one."}); err != nil {
		t.Fatal(err)
	}
	if err := cb2.Add(Document{ID: 1, Text: "explicit after auto."}); err == nil {
		t.Fatal("explicit ID after auto-assigned IDs accepted")
	}
	cb2.Discard()

	// All-auto and all-explicit streams both remain fine (an explicit 0
	// is representable as the first document only).
	auto := NewCorpusBuilder("auto", BuilderOptions{})
	for i := 0; i < 3; i++ {
		if err := auto.Add(Document{Text: "a doc."}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := auto.Finish(); err != nil {
		t.Fatal(err)
	}
	explicit := NewCorpusBuilder("explicit", BuilderOptions{})
	for _, id := range []int64{0, 2, 1} {
		if err := explicit.Add(Document{ID: id, Text: "a doc."}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := explicit.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestFromDocumentsStream exercises the iterator ingestion path,
// including error propagation and context cancellation.
func TestFromDocumentsStream(t *testing.T) {
	c, err := FromDocuments(context.Background(), "stream",
		func(yield func(Document, error) bool) {
			for i := 0; i < 3; i++ {
				if !yield(Document{Text: "one two three. two three four.", Year: 2000 + i}, nil) {
					return
				}
			}
		}, BuilderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats().Documents != 3 {
		t.Fatalf("documents = %d", c.Stats().Documents)
	}

	wantErr := errors.New("source failed")
	if _, err := FromDocuments(context.Background(), "bad",
		func(yield func(Document, error) bool) {
			yield(Document{}, wantErr)
		}, BuilderOptions{}); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := FromDocuments(cancelled, "cancelled",
		func(yield func(Document, error) bool) {
			yield(Document{Text: "doc"}, nil)
		}, BuilderOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestJobProgressMonotonic polls a running job and asserts every
// progress dimension is non-decreasing across snapshots, and that the
// final snapshot is consistent with the result.
func TestJobProgressMonotonic(t *testing.T) {
	corpus := SyntheticNYT(120, 5)
	job, err := Start(context.Background(), corpus, Options{
		MinFrequency:   3,
		MaxLength:      8,
		DocumentSplits: true, // three MapReduce jobs
		TempDir:        t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}

	var prev JobProgress
	check := func(p JobProgress) {
		t.Helper()
		if p.JobsStarted < prev.JobsStarted || p.JobsDone < prev.JobsDone ||
			p.TasksDone < prev.TasksDone || p.TasksTotal < prev.TasksTotal ||
			p.Records < prev.Records || p.ShuffleBytes < prev.ShuffleBytes ||
			p.Elapsed < prev.Elapsed {
			t.Fatalf("progress went backwards:\nprev %+v\nnow  %+v", prev, p)
		}
		if p.JobsDone > p.JobsStarted {
			t.Fatalf("JobsDone %d > JobsStarted %d", p.JobsDone, p.JobsStarted)
		}
		if p.TasksDone > p.TasksTotal {
			t.Fatalf("TasksDone %d > TasksTotal %d", p.TasksDone, p.TasksTotal)
		}
		prev = p
	}

	for {
		p := job.Progress()
		check(p)
		if p.Done {
			break
		}
		// Don't busy-spin: on a single-CPU runner a tight poll loop
		// contends with the compute goroutines on the tracker mutex.
		time.Sleep(time.Millisecond)
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()

	final := job.Progress()
	check(final)
	if final.Phase != "done" || !final.Done {
		t.Fatalf("final phase = %q, done = %v", final.Phase, final.Done)
	}
	if final.JobsDone != res.Jobs() || final.JobsDone != 3 {
		t.Fatalf("JobsDone = %d, result jobs = %d, want 3", final.JobsDone, res.Jobs())
	}
	if final.TasksDone != final.TasksTotal || final.TasksDone == 0 {
		t.Fatalf("tasks %d/%d at completion", final.TasksDone, final.TasksTotal)
	}
	if final.Records != res.RecordsTransferred() {
		t.Fatalf("Records = %d, result = %d", final.Records, res.RecordsTransferred())
	}
	if final.ShuffleBytes != res.ShuffleBytes() {
		t.Fatalf("ShuffleBytes = %d, result = %d", final.ShuffleBytes, res.ShuffleBytes())
	}

	counters := job.Counters()
	if counters["MAP_OUTPUT_RECORDS"] != res.RecordsTransferred() {
		t.Fatalf("counters = %v", counters)
	}
	if counters["LAUNCHED_JOBS"] != 3 {
		t.Fatalf("LAUNCHED_JOBS = %d", counters["LAUNCHED_JOBS"])
	}
}

// TestJobCancellation verifies a cancelled context surfaces through
// Wait.
func TestJobCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	job, err := Start(ctx, SyntheticNYT(50, 6), Options{MinFrequency: 2, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	p := job.Progress()
	if !p.Done {
		t.Fatal("progress not done after failed run")
	}
}

// TestStartUnknownMethod verifies eager method validation.
func TestStartUnknownMethod(t *testing.T) {
	c, err := FromText("m", []string{"a b c"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Start(context.Background(), c, Options{Method: "nope"}); err == nil {
		t.Fatal("unknown method accepted")
	}
}

// TestNGramsGolden asserts the NGrams iterator yields exactly the set
// All returns, and that breaking out of the range stops cleanly.
func TestNGramsGolden(t *testing.T) {
	c, err := FromText("golden", []string{
		"a rose is a rose is a rose.",
		"a rose by any other name.",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Count(context.Background(), c, Options{
		MinFrequency: 2, MaxLength: 3, TempDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()

	all, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	var fromIter []NGram
	for ng, err := range res.NGrams() {
		if err != nil {
			t.Fatal(err)
		}
		fromIter = append(fromIter, ng)
	}
	key := func(ng NGram) string { return fmt.Sprintf("%s=%d", ng.Text, ng.Frequency) }
	a := make([]string, len(all))
	b := make([]string, len(fromIter))
	for i := range all {
		a[i] = key(all[i])
	}
	for i := range fromIter {
		b[i] = key(fromIter[i])
	}
	sort.Strings(a)
	sort.Strings(b)
	if len(a) != len(b) {
		t.Fatalf("NGrams yielded %d entries, All %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d: %q != %q", i, b[i], a[i])
		}
	}

	// Early break stops the scan without an error.
	n := 0
	for _, err := range res.NGrams() {
		if err != nil {
			t.Fatal(err)
		}
		n++
		break
	}
	if n != 1 {
		t.Fatalf("break yielded %d entries", n)
	}
}

// TestTopKHeapMatchesSort cross-checks the bounded-heap TopK/Longest
// against a full decode-and-sort baseline at every k.
func TestTopKHeapMatchesSort(t *testing.T) {
	c, err := FromText("topk", []string{
		"a rose is a rose is a rose. the rose is red.",
		"a rose by any other name would smell as sweet.",
		"red red red roses. the name of the rose.",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Count(context.Background(), c, Options{
		MinFrequency: 1, MaxLength: 4, TempDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()

	all, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	baselineTopK := append([]NGram(nil), all...)
	sort.Slice(baselineTopK, func(i, j int) bool {
		a, b := baselineTopK[i], baselineTopK[j]
		if a.Frequency != b.Frequency {
			return a.Frequency > b.Frequency
		}
		if len(a.IDs) != len(b.IDs) {
			return len(a.IDs) > len(b.IDs)
		}
		return a.Text < b.Text
	})
	baselineLongest := append([]NGram(nil), all...)
	sort.Slice(baselineLongest, func(i, j int) bool {
		a, b := baselineLongest[i], baselineLongest[j]
		if len(a.IDs) != len(b.IDs) {
			return len(a.IDs) > len(b.IDs)
		}
		if a.Frequency != b.Frequency {
			return a.Frequency > b.Frequency
		}
		return a.Text < b.Text
	})

	for k := 0; k <= len(all)+2; k++ {
		top, err := res.TopK(k)
		if err != nil {
			t.Fatal(err)
		}
		longest, err := res.Longest(k)
		if err != nil {
			t.Fatal(err)
		}
		n := k
		if n > len(all) {
			n = len(all)
		}
		if len(top) != n || len(longest) != n {
			t.Fatalf("k=%d: got %d top, %d longest, want %d", k, len(top), len(longest), n)
		}
		for i := 0; i < n; i++ {
			if top[i].Text != baselineTopK[i].Text || top[i].Frequency != baselineTopK[i].Frequency {
				t.Fatalf("k=%d: TopK[%d] = %q/%d, want %q/%d", k, i,
					top[i].Text, top[i].Frequency, baselineTopK[i].Text, baselineTopK[i].Frequency)
			}
			if longest[i].Text != baselineLongest[i].Text {
				t.Fatalf("k=%d: Longest[%d] = %q, want %q", k, i, longest[i].Text, baselineLongest[i].Text)
			}
		}
	}
}

// TestSplitSampleYearPreservation is the regression test for the
// documented year behavior: per-document publication years survive
// Split and Sample, verified end to end through the TimeSeries
// aggregation (each marker token occurs in exactly one document with a
// known year).
func TestSplitSampleYearPreservation(t *testing.T) {
	texts := []string{
		"markerzero common words here. markerzero again.",
		"markerone common words here. markerone again.",
		"markertwo common words here. markertwo again.",
		"markerthree common words here. markerthree again.",
	}
	years := []int{2001, 2002, 2003, 2004}
	markers := map[string]int{
		"markerzero": 2001, "markerone": 2002, "markertwo": 2003, "markerthree": 2004,
	}
	c, err := FromText("years", texts, years)
	if err != nil {
		t.Fatal(err)
	}

	checkYears := func(name string, part *Corpus) int {
		t.Helper()
		res, err := Count(context.Background(), part, Options{
			MinFrequency: 1, MaxLength: 1, Aggregation: TimeSeries, TempDir: t.TempDir(),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer res.Release()
		found := 0
		for marker, year := range markers {
			ng, ok, err := res.Lookup(marker)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				continue // marker's document is in the other part
			}
			found++
			if len(ng.Years) != 1 || ng.Years[year] != 2 {
				t.Fatalf("%s: %s years = %v, want {%d: 2}", name, marker, ng.Years, year)
			}
		}
		return found
	}

	train, test := c.Split(0.5, 7)
	nTrain := checkYears("train", train)
	nTest := checkYears("test", test)
	if nTrain+nTest != len(markers) {
		t.Fatalf("markers found: %d train + %d test, want %d total", nTrain, nTest, len(markers))
	}
	if got := train.Stats().Documents + test.Stats().Documents; got != 4 {
		t.Fatalf("split documents = %d", got)
	}

	if found := checkYears("sample", c.Sample(0.5, 9)); found != 2 {
		t.Fatalf("sample markers = %d, want 2", found)
	}
}
