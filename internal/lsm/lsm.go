// Package lsm makes saved indexes appendable, LSM-style: a chain
// directory holds one base index plus an ordered sequence of delta
// indexes, tied together by a versioned, checksummed chain manifest.
//
// The paper computes n-gram statistics as a one-shot batch job; the
// ROADMAP's path to updatable indexes is the classic log-structured
// merge arrangement on top of that job. New documents are counted by
// the exact same computation, restricted to just those documents, and
// the resulting index is linked as a delta generation; reads merge
// base and deltas on the fly (aggregate cells summed across
// generations); a background compactor streams every generation's
// sorted runs through one merge + combine pass into a fresh base that
// is byte-identical to a from-scratch rebuild over all documents.
//
// A chain directory looks like
//
//	CHAIN.json       the chain manifest: format version, corpus,
//	                 aggregation kind, σ, cumulative document count,
//	                 and the ordered generation inventory
//	CHAIN.crc32c     CRC-32C of CHAIN.json (two lines transiently
//	                 during a manifest replacement, as with index
//	                 manifests)
//	<base dir>       a complete plain index directory: "." for a chain
//	                 that adopted a pre-existing flat index in place,
//	                 base-NNNNNN for a compacted base
//	delta-NNNNNN/    one complete plain index directory per delta
//	                 generation, oldest first
//
// Every generation is a self-contained internal/index directory with
// its own manifest, dictionary, and checksums; the chain manifest adds
// only the ordering and the cross-generation invariants.
//
// # The dictionary contract
//
// Term identifiers are chain-global: a delta's dictionary is seeded
// from the newest previous generation's, so an identifier, once
// assigned, names the same term in every later generation, and new
// terms are appended after the inherited ones with frequencies
// continued cumulatively. Encoded keys from different generations are
// therefore directly comparable bytes, which is what lets the merge
// tree and the compactor treat generations as just more sorted runs.
// The newest generation's dictionary alone carries the cumulative
// (term, frequency) table from which the canonical frequency-ranked
// dictionary of a full rebuild is reconstructed exactly.
//
// # Crash safety
//
// Every mutation of the chain is committed by atomically replacing
// CHAIN.json (checksum first, then rename — the same protocol as index
// manifest replacement). An append builds the delta index completely,
// commits it, and only then links it; a compaction builds the new base
// completely and only then swaps the manifest. A crash at any point
// leaves the previous manifest in place, referencing only complete
// generations; unreferenced generation directories are swept by the
// next mutation. Corruption anywhere — the chain manifest, its
// checksum, or any generation — surfaces as an error wrapping
// ErrCorrupt (or the index package's own corruption errors), never as
// wrong counts.
//
// Mutations assume a single writer per chain (the serving layer
// serializes appends and compactions per index); readers need no
// coordination at all.
package lsm

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// FormatVersion identifies the chain manifest layout. ReadManifest
// rejects chains written by a different version.
const FormatVersion = 1

// File and directory names within a chain directory.
const (
	ChainFile    = "CHAIN.json"
	ChainCRCFile = "CHAIN.crc32c"
	DeltaDirFmt  = "delta-%06d"
	BaseDirFmt   = "base-%06d"
)

// ErrCorrupt is wrapped by every error reported for a malformed,
// truncated, or inconsistent chain. Damage inside a generation
// surfaces as that index's own corruption error; callers should treat
// either as "this chain cannot be trusted".
var ErrCorrupt = errors.New("lsm: corrupt chain")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// GenInfo inventories one generation of the chain.
type GenInfo struct {
	// Dir is the generation's index directory, relative to the chain
	// directory ("." for an adopted flat base).
	Dir string `json:"dir"`
	// Records is the generation's record count, as its own manifest
	// declares it (cross-checked at open).
	Records int64 `json:"records"`
	// Docs is the number of documents this generation covers: for the
	// base, all documents up to and including it; for a delta, just the
	// documents counted into that delta.
	Docs int64 `json:"docs"`
}

// Manifest is the serialized form of CHAIN.json.
type Manifest struct {
	Version int    `json:"version"`
	Corpus  string `json:"corpus"`
	// Kind is the aggregation kind shared by every generation (the
	// integer value of core.AggregationKind).
	Kind int `json:"aggregation"`
	// MaxLength is the σ shared by every generation.
	MaxLength int `json:"max_length"`
	// Compress records whether generations are written with block
	// compression, so appends and compactions reproduce the setting.
	Compress bool `json:"compress,omitempty"`
	// Docs is the cumulative document count across base and deltas —
	// the next delta's first document identifier.
	Docs int64 `json:"docs"`
	// Seq numbers generation directories: the next delta or compacted
	// base is created as delta-Seq/base-Seq. It only grows, so retired
	// directory names are never reused while readers may still hold
	// them.
	Seq    int       `json:"seq"`
	Base   GenInfo   `json:"base"`
	Deltas []GenInfo `json:"deltas"`
}

// Gens returns the generations in merge order: base first, then deltas
// oldest to newest.
func (m *Manifest) Gens() []GenInfo {
	return append([]GenInfo{m.Base}, m.Deltas...)
}

// Records returns the total record count across generations — an upper
// bound on the merged view's distinct n-grams (an n-gram present in
// several generations is counted once per generation here).
func (m *Manifest) Records() int64 {
	n := m.Base.Records
	for _, d := range m.Deltas {
		n += d.Records
	}
	return n
}

// Exists reports whether dir holds a chain (has a CHAIN.json).
func Exists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, ChainFile))
	return err == nil
}

// ReadManifest reads, checksum-verifies, and validates the chain
// manifest of dir.
func ReadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ChainFile))
	if err != nil {
		return nil, fmt.Errorf("lsm: open chain %s: %w", dir, err)
	}
	crcData, err := os.ReadFile(filepath.Join(dir, ChainCRCFile))
	if err != nil {
		return nil, fmt.Errorf("lsm: read chain checksum: %w", err)
	}
	if !crcMatches(crcData, crc32.Checksum(data, crcTable)) {
		return nil, corruptf("chain manifest checksum mismatch")
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, corruptf("parse chain manifest: %v", err)
	}
	if man.Version != FormatVersion {
		return nil, corruptf("unsupported chain format version %d", man.Version)
	}
	if err := validGenDir(man.Base.Dir); err != nil {
		return nil, err
	}
	for _, d := range man.Deltas {
		if err := validGenDir(d.Dir); err != nil {
			return nil, err
		}
		if d.Dir == "." {
			return nil, corruptf("delta generation claims the chain root")
		}
	}
	return &man, nil
}

// validGenDir rejects generation paths that would escape the chain
// directory — a corrupted or hostile manifest must never direct reads
// (or orphan sweeps) outside the chain.
func validGenDir(d string) error {
	if d == "." {
		return nil
	}
	if d == "" || !filepath.IsLocal(d) || filepath.Dir(d) != "." {
		return corruptf("invalid generation directory %q", d)
	}
	return nil
}

// crcMatches reports whether any complete (newline-terminated) line of
// the checksum file is exactly the %08x rendering of crc, mirroring
// the index manifest's transitional two-line protocol.
func crcMatches(crcData []byte, crc uint32) bool {
	want := fmt.Sprintf("%08x", crc)
	for {
		nl := -1
		for i, b := range crcData {
			if b == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			return false
		}
		if string(crcData[:nl]) == want {
			return true
		}
		crcData = crcData[nl+1:]
	}
}

// WriteManifest atomically replaces (or creates) the chain manifest:
// the checksum file gains the new manifest's line first — alongside
// the old one when replacing, so a crash between the two renames
// leaves a readable chain either way — then CHAIN.json is swapped in,
// then the checksum file is shrunk back to one line.
func WriteManifest(dir string, man *Manifest) error {
	man.Version = FormatVersion
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("lsm: encode chain manifest: %w", err)
	}
	data = append(data, '\n')
	crcPath := filepath.Join(dir, ChainCRCFile)
	crcLine := fmt.Sprintf("%08x\n", crc32.Checksum(data, crcTable))
	crcData := []byte(crcLine)
	if old, err := os.ReadFile(crcPath); err == nil {
		crcData = append(old, crcLine...)
	}
	if err := writeFileAtomic(crcPath, crcData); err != nil {
		return fmt.Errorf("lsm: write chain checksum: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(dir, ChainFile), data); err != nil {
		return fmt.Errorf("lsm: write chain manifest: %w", err)
	}
	// Post-swap, best-effort: retire the transitional checksum line.
	writeFileAtomic(crcPath, []byte(crcLine))
	return nil
}

func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o666); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
