package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"ngramstats/internal/core"
	"ngramstats/internal/dictionary"
	"ngramstats/internal/encoding"
	"ngramstats/internal/extsort"
	"ngramstats/internal/index"
	"ngramstats/internal/sequence"
)

// Options configures OpenChain.
type Options struct {
	// CacheBlocks bounds each generation's decoded-block cache, as
	// index.Options.CacheBlocks.
	CacheBlocks int
	// TempDir is the directory for the spill files of full ordered
	// scans (which re-sort into canonical order externally). Empty
	// selects the system temp directory.
	TempDir string
}

// View is a read-only merged view over a chain: one base plus its
// deltas answer queries as if they were a single index, with aggregate
// cells folded across generations on the fly.
//
// Queries speak the canonical identifier space — the frequency-ranked
// dictionary a full rebuild over all documents would produce,
// reconstructed exactly from the newest generation's cumulative
// (term, frequency) table. Keys are translated to the chain's stable
// identifier space on the way in and back on the way out, so a caller
// cannot distinguish a View from the rebuilt index it stands in for.
//
// Like index.Index, all state is immutable after OpenChain and Close
// is refcounted against in-flight queries, so a serving layer can
// retire a view under live traffic.
type View struct {
	dir     string
	man     *Manifest
	manTime time.Time // CHAIN.json mtime observed at open
	opts    Options

	// gens holds the open generations in merge order: base first, then
	// deltas oldest to newest.
	gens []*index.Index

	// dict is the canonical dictionary; toCanon and toChain translate
	// between the chain's stable identifiers and canonical ones (a
	// bijection — both spaces rank exactly the terms of the newest
	// generation's dictionary).
	dict    *dictionary.Dictionary
	toCanon []sequence.Term
	toChain []sequence.Term

	refs   atomic.Int64
	closed atomic.Bool
}

// OpenChain opens the chain at dir and builds its merged view. Every
// generation is opened and cross-checked against the chain manifest
// (corpus, kind, σ, appendability, record counts); any inconsistency
// is reported wrapping ErrCorrupt. A generation that vanishes between
// the manifest read and its open (a compaction committed in between)
// is retried once against the fresh manifest.
func OpenChain(dir string, opts Options) (*View, error) {
	v, err := openChain(dir, opts)
	if err != nil && !errors.Is(err, ErrCorrupt) {
		// The chain may have been compacted under us: the manifest we
		// read referenced generations that are now retired. Re-read and
		// retry once.
		v, err = openChain(dir, opts)
	}
	return v, err
}

func openChain(dir string, opts Options) (*View, error) {
	man, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	v := &View{dir: dir, man: man, opts: opts}
	v.refs.Store(1)
	if st, err := os.Stat(filepath.Join(dir, ChainFile)); err == nil {
		v.manTime = st.ModTime()
	}
	for _, g := range man.Gens() {
		gdir := filepath.Join(dir, g.Dir)
		ix, err := index.Open(gdir, index.Options{CacheBlocks: opts.CacheBlocks})
		if err != nil {
			v.Close()
			return nil, fmt.Errorf("lsm: generation %s: %w", g.Dir, err)
		}
		v.gens = append(v.gens, ix)
		if ix.Records() != g.Records {
			v.Close()
			return nil, corruptf("generation %s holds %d records, chain declares %d", g.Dir, ix.Records(), g.Records)
		}
		if ix.Corpus() != man.Corpus || ix.Kind() != man.Kind || ix.MaxLength() != man.MaxLength {
			v.Close()
			return nil, corruptf("generation %s does not match the chain invariants", g.Dir)
		}
		if err := appendable(index.Meta{MinFrequency: ix.MinFrequency(), Selection: ix.Selection()}); err != nil {
			v.Close()
			return nil, corruptf("generation %s: %v", g.Dir, err)
		}
	}
	if err := v.buildCanonical(); err != nil {
		v.Close()
		return nil, err
	}
	return v, nil
}

// buildCanonical reconstructs the canonical frequency-ranked
// dictionary from the newest generation's cumulative table and the
// translation maps between the two identifier spaces.
func (v *View) buildCanonical() error {
	chainDict := v.gens[len(v.gens)-1].Dictionary()
	n := chainDict.Len()
	db := dictionary.NewBuilder()
	for i := 0; i < n; i++ {
		id := sequence.Term(i)
		db.AddN(chainDict.Term(id), chainDict.CF(id))
	}
	v.dict = db.Build()
	v.toCanon = make([]sequence.Term, n)
	v.toChain = make([]sequence.Term, n)
	for i := 0; i < n; i++ {
		id := sequence.Term(i)
		canon, ok := v.dict.ID(chainDict.Term(id))
		if !ok {
			return corruptf("term %q lost in canonical dictionary build", chainDict.Term(id))
		}
		v.toCanon[id] = canon
		v.toChain[canon] = id
	}
	return nil
}

// acquire/release mirror index.Index: queries pin the view, and the
// generations close when the last pin after Close drains.
func (v *View) acquire() error {
	if v.closed.Load() {
		return index.ErrClosed
	}
	for {
		r := v.refs.Load()
		if r <= 0 {
			return index.ErrClosed
		}
		if v.refs.CompareAndSwap(r, r+1) {
			return nil
		}
	}
}

func (v *View) release() error {
	if v.refs.Add(-1) == 0 {
		return v.closeGens()
	}
	return nil
}

func (v *View) closeGens() error {
	var first error
	for _, g := range v.gens {
		if err := g.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close marks the view closed — subsequent queries fail with
// index.ErrClosed — and closes the generations once in-flight queries
// drain. Idempotent.
func (v *View) Close() error {
	if v.closed.Swap(true) {
		return nil
	}
	return v.release()
}

// Manifest returns a copy of the chain manifest the view was opened
// from.
func (v *View) Manifest() Manifest {
	m := *v.man
	m.Deltas = append([]GenInfo(nil), v.man.Deltas...)
	return m
}

// Records returns the total record count across generations — an
// upper bound on the number of distinct merged n-grams, since an
// n-gram present in several generations is counted once per
// generation. Exact cardinality would require a full merge.
func (v *View) Records() int64 { return v.man.Records() }

// Docs returns the cumulative document count across generations.
func (v *View) Docs() int64 { return v.man.Docs }

// Generations returns the number of generations (base + deltas).
func (v *View) Generations() int { return len(v.gens) }

// Corpus returns the chain's corpus name.
func (v *View) Corpus() string { return v.man.Corpus }

// Kind returns the chain's aggregation kind.
func (v *View) Kind() int { return v.man.Kind }

// MaxLength returns the chain's σ.
func (v *View) MaxLength() int { return v.man.MaxLength }

// Shards returns the total shard count across generations.
func (v *View) Shards() int {
	n := 0
	for _, g := range v.gens {
		n += g.Shards()
	}
	return n
}

// Counters returns the producing runs' counters summed across
// generations.
func (v *View) Counters() map[string]int64 {
	out := map[string]int64{}
	for _, g := range v.gens {
		for k, n := range g.Counters() {
			out[k] += n
		}
	}
	return out
}

// CacheStats returns the decoded-block cache hit and miss counts
// summed across generations.
func (v *View) CacheStats() (hits, misses int64) {
	for _, g := range v.gens {
		h, m := g.CacheStats()
		hits += h
		misses += m
	}
	return hits, misses
}

// ManifestTime returns the modification time of CHAIN.json observed at
// open — the freshness anchor for serving-layer reload checks.
func (v *View) ManifestTime() time.Time { return v.manTime }

// Dictionary returns the canonical dictionary: term identifiers ranked
// by cumulative frequency across all generations, exactly as a full
// rebuild would assign them.
func (v *View) Dictionary() *dictionary.Dictionary { return v.dict }

// TopRecords always reports false: the per-generation precomputed top
// records cannot be merged without a full fold (a gram just below
// every generation's top cutoff may sum into the global top), so TopK
// over a view takes the scanning fallback until the next compaction
// rebuilds the precomputed file.
func (v *View) TopRecords(k int) (keys, values [][]byte, ok bool) { return nil, nil, false }

// remap rewrites an encoded key through the given identifier table
// into dst (reusing scratch for the decoded sequence) — chain→canon
// with v.toCanon, canon→chain with v.toChain.
func remapKey(dst []byte, key []byte, m []sequence.Term, scratch sequence.Seq) ([]byte, sequence.Seq, error) {
	seq, err := encoding.DecodeSeqInto(scratch, key)
	if err != nil {
		return dst, scratch, err
	}
	for i, t := range seq {
		if int(t) >= len(m) {
			return dst, seq, corruptf("key holds term id %d outside dictionary of %d", t, len(m))
		}
		seq[i] = m[t]
	}
	return encoding.AppendSeq(dst[:0], seq), seq, nil
}

// AppendCanonicalKey rewrites a chain-space key into the canonical
// identifier space, appending to dst[:0]. The compactor uses it to
// translate merged chain keys into the keys the rebuilt base stores.
func (v *View) AppendCanonicalKey(dst, chainKey []byte) ([]byte, error) {
	out, _, err := remapKey(dst, chainKey, v.toCanon, nil)
	return out, err
}

// Get returns the merged value stored under a canonical-space key, if
// any: the per-generation cells for the corresponding chain key are
// folded into one. A key found in exactly one generation returns that
// generation's stored bytes unchanged.
func (v *View) Get(key []byte) ([]byte, bool, error) {
	if err := v.acquire(); err != nil {
		return nil, false, err
	}
	defer v.release()
	chainKey, _, err := remapKey(nil, key, v.toChain, nil)
	if err != nil {
		// A key naming identifiers outside the dictionary cannot be
		// stored anywhere in the chain.
		return nil, false, nil
	}
	var agg core.Aggregate
	var single []byte
	found := 0
	for _, g := range v.gens {
		val, ok, err := g.Get(chainKey)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			continue
		}
		found++
		switch found {
		case 1:
			single = val
		case 2:
			agg, err = core.DecodeAggregate(core.AggregationKind(v.man.Kind), single)
			if err == nil {
				var other core.Aggregate
				other, err = core.DecodeAggregate(core.AggregationKind(v.man.Kind), val)
				if err == nil {
					agg.Merge(other)
				}
			}
			if err != nil {
				return nil, false, err
			}
		default:
			other, err := core.DecodeAggregate(core.AggregationKind(v.man.Kind), val)
			if err != nil {
				return nil, false, err
			}
			agg.Merge(other)
		}
	}
	switch found {
	case 0:
		return nil, false, nil
	case 1:
		return single, true, nil
	default:
		return agg.Encode(), true, nil
	}
}

// ScanChain calls fn for every merged record with lo ≤ chain key < hi
// in ascending chain-key order. Equal keys across generations arrive
// folded: fn sees each distinct chain key exactly once, with the
// generations' aggregate cells merged (a key present in a single
// generation passes its stored bytes through unchanged, which is the
// common case). The slices passed to fn are valid only during the
// call. fn may return index.StopScan() to end the scan early.
//
// The scan streams every generation's sorted shards through one merge
// tree (reusing the extsort loser tree over the generations' open file
// descriptors), so its cost is O(total records in range) regardless of
// how the records are spread across generations.
func (v *View) ScanChain(lo, hi []byte, fn func(chainKey, value []byte) error) error {
	if err := v.acquire(); err != nil {
		return err
	}
	defer v.release()
	return v.scanChainLocked(lo, hi, fn)
}

func (v *View) scanChainLocked(lo, hi []byte, fn func(chainKey, value []byte) error) error {
	var runs []*extsort.Run
	for _, g := range v.gens {
		runs = append(runs, g.ShardRuns(nil)...)
	}
	it, err := extsort.MergeRunsRange(nil, runs, lo, hi)
	if err != nil {
		return err
	}
	defer it.Close()

	kind := core.AggregationKind(v.man.Kind)
	var curKey, curVal []byte
	var agg core.Aggregate // non-nil once cur spans >1 generation
	have := false
	flush := func() error {
		val := curVal
		if agg != nil {
			val = agg.Encode()
		}
		if err := fn(curKey, val); err != nil {
			return err
		}
		agg = nil
		return nil
	}
	for it.Next() {
		k, val := it.Key(), it.Value()
		if have && bytes.Equal(k, curKey) {
			if agg == nil {
				if agg, err = core.DecodeAggregate(kind, curVal); err != nil {
					return err
				}
			}
			other, err := core.DecodeAggregate(kind, val)
			if err != nil {
				return err
			}
			agg.Merge(other)
			continue
		}
		if have {
			if err := flush(); err != nil {
				if errors.Is(err, index.StopScan()) {
					return nil
				}
				return err
			}
		}
		curKey = append(curKey[:0], k...)
		curVal = append(curVal[:0], val...)
		have = true
	}
	if err := it.Err(); err != nil {
		return err
	}
	if have {
		if err := flush(); err != nil && !errors.Is(err, index.StopScan()) {
			return err
		}
	}
	return nil
}

// ScanUnordered calls fn for every merged record exactly once, with
// canonical-space keys, in no particular (canonical) order. It is the
// cheap full pass for order-independent consumers such as top-k
// selection.
func (v *View) ScanUnordered(fn func(key, value []byte) error) error {
	var keyBuf []byte
	var scratch sequence.Seq
	return v.ScanChain(nil, nil, func(chainKey, value []byte) error {
		var err error
		keyBuf, scratch, err = remapKey(keyBuf, chainKey, v.toCanon, scratch)
		if err != nil {
			return err
		}
		return fn(keyBuf, value)
	})
}

// ScanAll calls fn for every merged record in ascending canonical key
// order — the order the rebuilt index would enumerate. Chain order and
// canonical order differ (identifiers were assigned at different
// times), so the merged stream is re-sorted through an external
// sorter; prefer ScanUnordered when order does not matter.
func (v *View) ScanAll(fn func(key, value []byte) error) error {
	sorter := extsort.NewSorter(extsort.Options{TempDir: v.opts.TempDir})
	defer sorter.Discard()
	err := v.ScanUnordered(func(key, value []byte) error {
		return sorter.Add(key, value)
	})
	if err != nil {
		return err
	}
	it, err := sorter.Sort()
	if err != nil {
		return err
	}
	defer it.Close()
	for it.Next() {
		if err := fn(it.Key(), it.Value()); err != nil {
			if errors.Is(err, index.StopScan()) {
				return nil
			}
			return err
		}
	}
	return it.Err()
}

// ScanPrefix calls fn for every merged record whose canonical key
// starts with the given byte prefix, in ascending canonical key order.
// The prefix must be a complete encoded sequence (as produced for a
// phrase); it is translated to the chain space, where — identifier
// translation being sequence-position-wise — it bounds exactly the
// same set of records, which are then collected, translated back, and
// emitted in canonical order.
func (v *View) ScanPrefix(prefix []byte, fn func(key, value []byte) error) error {
	if len(prefix) == 0 {
		return v.ScanAll(fn)
	}
	if err := v.acquire(); err != nil {
		return err
	}
	defer v.release()
	chainPrefix, _, err := remapKey(nil, prefix, v.toChain, nil)
	if err != nil {
		// Identifiers outside the dictionary match nothing.
		return nil
	}
	type rec struct{ key, value []byte }
	var recs []rec
	err = v.scanChainLocked(chainPrefix, index.PrefixSuccessor(chainPrefix), func(chainKey, value []byte) error {
		key, _, err := remapKey(nil, chainKey, v.toCanon, nil)
		if err != nil {
			return err
		}
		recs = append(recs, rec{key, append([]byte(nil), value...)})
		return nil
	})
	if err != nil {
		return err
	}
	sort.Slice(recs, func(i, j int) bool { return bytes.Compare(recs[i].key, recs[j].key) < 0 })
	for _, r := range recs {
		if err := fn(r.key, r.value); err != nil {
			if errors.Is(err, index.StopScan()) {
				return nil
			}
			return err
		}
	}
	return nil
}

// ShardRuns opens every generation's shards as extsort merge inputs in
// merge order, reading through the view's open file descriptors — the
// compactor's input. The view must stay open until the merge
// completes; the runs stay readable even after the underlying files
// are unlinked by a committed compaction.
func (v *View) ShardRuns(stats *extsort.IOStats) []*extsort.Run {
	var runs []*extsort.Run
	for _, g := range v.gens {
		runs = append(runs, g.ShardRuns(stats)...)
	}
	return runs
}
