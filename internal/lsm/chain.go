package lsm

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ngramstats/internal/index"
)

// Adopt builds the in-memory manifest for turning the committed plain
// index at dir into the base of a new chain, without writing anything:
// the first successful append links the first delta and persists the
// manifest in the same commit, so a chain only ever exists with its
// invariants already holding.
//
// Only indexes whose manifests record an appendable computation
// qualify: τ = 1 (a threshold drops an n-gram whose occurrences are
// split across generations, breaking merge equivalence), no
// maximal/closed selection (selection is a global property of the
// counts), and a recorded σ and document count. Indexes written before
// those fields existed are refused.
func Adopt(dir string, compress bool) (*Manifest, error) {
	meta, err := index.ReadMeta(dir)
	if err != nil {
		return nil, err
	}
	if meta.MinFrequency == 0 {
		return nil, fmt.Errorf("lsm: %s predates appendable metadata; rebuild it before appending", dir)
	}
	if err := appendable(meta); err != nil {
		return nil, fmt.Errorf("lsm: cannot adopt %s as a chain base: %w", dir, err)
	}
	return &Manifest{
		Version:   FormatVersion,
		Corpus:    meta.Corpus,
		Kind:      meta.Kind,
		MaxLength: meta.MaxLength,
		Compress:  compress,
		Docs:      meta.Docs,
		Seq:       0,
		Base:      GenInfo{Dir: ".", Records: meta.Records, Docs: meta.Docs},
	}, nil
}

// appendable reports why an index's recorded computation cannot be a
// chain generation, or nil.
func appendable(meta index.Meta) error {
	if meta.MinFrequency != 1 {
		return fmt.Errorf("computed with τ = %d, need τ = 1", meta.MinFrequency)
	}
	if meta.Selection != 0 {
		return fmt.Errorf("computed with selection mode %d, need none", meta.Selection)
	}
	return nil
}

// NextDeltaDir reserves the directory name for the chain's next delta
// generation and bumps Seq. The caller builds a complete index there,
// then links it with AppendGen.
func (m *Manifest) NextDeltaDir() string {
	d := fmt.Sprintf(DeltaDirFmt, m.Seq)
	m.Seq++
	return d
}

// NextBaseDir reserves the directory name for the next compacted base
// and bumps Seq.
func (m *Manifest) NextBaseDir() string {
	d := fmt.Sprintf(BaseDirFmt, m.Seq)
	m.Seq++
	return d
}

// AppendGen links a committed delta index as the chain's newest
// generation and persists the manifest — the commit point of an
// append. gen.Dir must be a directory name from NextDeltaDir; the
// delta's own metadata is cross-checked against the chain invariants
// first.
func AppendGen(dir string, man *Manifest, gen GenInfo) error {
	meta, err := index.ReadMeta(filepath.Join(dir, gen.Dir))
	if err != nil {
		return err
	}
	if err := appendable(meta); err != nil {
		return fmt.Errorf("lsm: delta %s: %w", gen.Dir, err)
	}
	if meta.Kind != man.Kind || meta.MaxLength != man.MaxLength || meta.Corpus != man.Corpus {
		return fmt.Errorf("lsm: delta %s (corpus %q, kind %d, σ %d) does not match chain (corpus %q, kind %d, σ %d)",
			gen.Dir, meta.Corpus, meta.Kind, meta.MaxLength, man.Corpus, man.Kind, man.MaxLength)
	}
	man.Deltas = append(man.Deltas, gen)
	man.Docs += gen.Docs
	return WriteManifest(dir, man)
}

// SwapBase commits a compaction: the chain's generations captured in
// prev are replaced by the single compacted base, and any deltas
// appended since prev was read are carried over. The manifest is
// re-read and prev verified to still be a prefix of it, so a
// compaction that raced a concurrent writer fails loudly instead of
// silently dropping a generation.
func SwapBase(dir string, prev *Manifest, base GenInfo) (*Manifest, error) {
	cur, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	if cur.Base != prev.Base || len(cur.Deltas) < len(prev.Deltas) {
		return nil, fmt.Errorf("lsm: chain %s changed during compaction", dir)
	}
	for i, d := range prev.Deltas {
		if cur.Deltas[i] != d {
			return nil, fmt.Errorf("lsm: chain %s changed during compaction", dir)
		}
	}
	// The compactor allocated base's directory name from prev's sequence
	// (NextBaseDir bumps it in memory only); persist whichever sequence
	// is further along so retired directory names are never reused.
	seq := cur.Seq
	if prev.Seq > seq {
		seq = prev.Seq
	}
	next := &Manifest{
		Version:   FormatVersion,
		Corpus:    cur.Corpus,
		Kind:      cur.Kind,
		MaxLength: cur.MaxLength,
		Compress:  cur.Compress,
		Docs:      cur.Docs,
		Seq:       seq,
		Base:      base,
		Deltas:    append([]GenInfo(nil), cur.Deltas[len(prev.Deltas):]...),
	}
	if err := WriteManifest(dir, next); err != nil {
		return nil, err
	}
	// Best-effort retirement of the replaced generations. Open views
	// keep serving through their file descriptors; an adopted flat base
	// ("." ) additionally leaves its root-level files to RemoveFlatBase,
	// which the compactor calls once the swap is visible.
	for _, g := range append([]GenInfo{prev.Base}, prev.Deltas...) {
		if g.Dir != "." {
			os.RemoveAll(filepath.Join(dir, g.Dir))
		}
	}
	return next, nil
}

// RemoveFlatBase unlinks the root-level files of a replaced adopted
// base (the plain index that lived flat in the chain directory before
// the first compaction). Best-effort; only the canonical index file
// names are touched.
func RemoveFlatBase(dir string) {
	os.Remove(filepath.Join(dir, index.ManifestFile))
	os.Remove(filepath.Join(dir, index.ManifestCRCFile))
	os.Remove(filepath.Join(dir, index.DictionaryFile))
	os.Remove(filepath.Join(dir, index.TopFile))
	if shards, err := filepath.Glob(filepath.Join(dir, "shard-*.run")); err == nil {
		for _, s := range shards {
			os.Remove(s)
		}
	}
}

// SweepOrphans removes generation directories (delta-* / base-*) the
// manifest does not reference — the leavings of a crashed append or
// compaction. Best-effort, and called only from the chain's single
// writer so it can never race a mutation in flight.
func SweepOrphans(dir string, man *Manifest) {
	live := map[string]bool{man.Base.Dir: true}
	for _, d := range man.Deltas {
		live[d.Dir] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() || live[name] {
			continue
		}
		if strings.HasPrefix(name, "delta-") || strings.HasPrefix(name, "base-") {
			os.RemoveAll(filepath.Join(dir, name))
		}
	}
}
