package sketch

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestParamsGeometry(t *testing.T) {
	p := Params{}.WithDefaults()
	if p.Epsilon != 1e-4 || p.Delta != 0.01 || p.Orders != 5 || p.TopK != 128 {
		t.Fatalf("defaults = %+v", p)
	}
	if got, want := p.Width(), int(math.Ceil(math.E/1e-4)); got != want {
		t.Fatalf("Width() = %d, want %d", got, want)
	}
	if got, want := p.Depth(), int(math.Ceil(math.Log(100.0))); got != want {
		t.Fatalf("Depth() = %d, want %d", got, want)
	}
	if _, err := NewGroup(Params{Epsilon: 2}); err == nil {
		t.Fatal("NewGroup accepted epsilon 2")
	}
	if _, err := NewGroup(Params{Delta: 1.5}); err == nil {
		t.Fatal("NewGroup accepted delta 1.5")
	}
}

// zipfStream returns a deterministic skewed stream of keys plus the
// exact count of each key.
func zipfStream(t testing.TB, seed int64, keys, updates int) (stream [][]byte, exact map[string]int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.3, 1.0, uint64(keys-1))
	stream = make([][]byte, updates)
	exact = make(map[string]int64)
	for i := range stream {
		k := []byte(fmt.Sprintf("key-%06d", z.Uint64()))
		stream[i] = k
		exact[string(k)]++
	}
	return stream, exact
}

func TestSketchOneSidedAndBounded(t *testing.T) {
	p := Params{Epsilon: 0.005, Delta: 0.05, Orders: 1, TopK: 8}
	s := NewSketch(p.Width(), p.Depth())
	stream, exact := zipfStream(t, 1, 20_000, 200_000)
	for _, k := range stream {
		s.Update(k, 1)
	}
	if s.N() != int64(len(stream)) {
		t.Fatalf("N = %d, want %d", s.N(), len(stream))
	}
	bound := int64(math.Ceil(p.Epsilon * float64(s.N())))
	var over int
	for k, want := range exact {
		got := s.Estimate([]byte(k))
		if got < want {
			t.Fatalf("estimate(%q) = %d below exact %d: one-sidedness broken", k, got, want)
		}
		if got > want+bound {
			over++
		}
	}
	if frac := float64(over) / float64(len(exact)); frac > p.Delta {
		t.Fatalf("%.4f of keys exceed the eps*N bound, want <= delta %v", frac, p.Delta)
	}
}

// TestSketchConcurrentOneSided drives heavy same-key contention through
// Update from many goroutines and then checks no increment was lost —
// the property the row-0-capped conservative update exists to preserve.
func TestSketchConcurrentOneSided(t *testing.T) {
	s := NewSketch(Params{Epsilon: 0.01, Delta: 0.05}.Width(), Params{Epsilon: 0.01, Delta: 0.05}.Depth())
	const workers, perWorker, hotKeys = 8, 20_000, 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				s.Update([]byte(fmt.Sprintf("hot-%02d", rng.Intn(hotKeys))), 1)
			}
		}(int64(w))
	}
	wg.Wait()
	if s.N() != workers*perWorker {
		t.Fatalf("N = %d, want %d", s.N(), workers*perWorker)
	}
	var sum int64
	for k := 0; k < hotKeys; k++ {
		sum += s.Estimate([]byte(fmt.Sprintf("hot-%02d", k)))
	}
	// Estimates are one-sided per key; with only hotKeys keys total their
	// sum must cover every update folded in.
	if sum < workers*perWorker {
		t.Fatalf("sum of hot-key estimates %d < %d updates: increments lost under contention", sum, workers*perWorker)
	}
}

func TestTopK(t *testing.T) {
	tk := NewTopK(3)
	tk.Offer([]byte("a"), 1, 10)
	tk.Offer([]byte("b"), 1, 20)
	tk.Offer([]byte("c"), 2, 5)
	tk.Offer([]byte("d"), 1, 1) // below min once full? heap not full yet: evicts on next
	tk.Offer([]byte("e"), 1, 30)
	got := tk.Items(0)
	if len(got) != 3 {
		t.Fatalf("Items = %d entries, want 3", len(got))
	}
	if string(got[0].Key) != "e" || string(got[1].Key) != "b" || string(got[2].Key) != "a" {
		t.Fatalf("Items order = %q %q %q", got[0].Key, got[1].Key, got[2].Key)
	}
	// Re-offering a tracked key with a larger estimate updates in place.
	tk.Offer([]byte("a"), 1, 50)
	if got := tk.Items(1); string(got[0].Key) != "a" || got[0].Estimate != 50 {
		t.Fatalf("after upgrade, top = %q/%d", got[0].Key, got[0].Estimate)
	}
	// Offers at or below the floor of a full heap are ignored.
	tk.Offer([]byte("z"), 1, 2)
	for _, e := range tk.Items(0) {
		if string(e.Key) == "z" {
			t.Fatal("floor-rejected key entered the heap")
		}
	}
}

func TestGroupUpdateAndMerge(t *testing.T) {
	p := Params{Epsilon: 0.01, Delta: 0.1, Orders: 3, TopK: 4}
	a, err := NewGroup(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGroup(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		a.Update(1, []byte("x"), 1)
		b.Update(1, []byte("x"), 2)
		b.Update(2, []byte("xy"), 1)
	}
	a.AddDocs(3)
	b.AddDocs(4)
	if est, ok := a.Estimate(1, []byte("x")); !ok || est < 100 {
		t.Fatalf("a.Estimate(x) = %d,%v", est, ok)
	}
	if _, ok := a.Estimate(4, []byte("x")); ok {
		t.Fatal("Estimate accepted order beyond Orders")
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if est, _ := a.Estimate(1, []byte("x")); est < 300 {
		t.Fatalf("merged estimate = %d, want >= 300", est)
	}
	if est, _ := a.Estimate(2, []byte("xy")); est < 100 {
		t.Fatalf("merged order-2 estimate = %d, want >= 100", est)
	}
	if a.Docs() != 7 || a.N(1) != 300 || a.N(2) != 100 {
		t.Fatalf("merged totals: docs=%d n1=%d n2=%d", a.Docs(), a.N(1), a.N(2))
	}
	other, _ := NewGroup(Params{Epsilon: 0.02, Delta: 0.1, Orders: 3, TopK: 4})
	if err := a.Merge(other); err == nil {
		t.Fatal("Merge accepted incompatible params")
	}
}

func testGroup(t testing.TB) *Group {
	t.Helper()
	g, err := NewGroup(Params{Epsilon: 0.05, Delta: 0.2, Orders: 2, TopK: 4})
	if err != nil {
		t.Fatal(err)
	}
	stream, _ := zipfStream(t, 7, 500, 5_000)
	for _, k := range stream {
		g.Update(1, k, 1)
		g.Update(2, append(append([]byte(nil), k...), " b"...), 1)
	}
	g.AddDocs(42)
	return g
}

func TestSnapshotRoundTrip(t *testing.T) {
	g := testGroup(t)
	sn := g.Snapshot()

	var buf bytes.Buffer
	n, err := sn.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Params() != sn.Params() || back.Docs() != sn.Docs() {
		t.Fatalf("round trip params/docs: %+v/%d vs %+v/%d", back.Params(), back.Docs(), sn.Params(), sn.Docs())
	}
	for order := 1; order <= 2; order++ {
		if back.N(order) != sn.N(order) {
			t.Fatalf("order %d: N %d vs %d", order, back.N(order), sn.N(order))
		}
		if back.ErrorBound(order) != sn.ErrorBound(order) {
			t.Fatalf("order %d: bound %d vs %d", order, back.ErrorBound(order), sn.ErrorBound(order))
		}
		for i := 0; i < 200; i++ {
			k := []byte(fmt.Sprintf("key-%06d", i))
			if order == 2 {
				k = append(k, " b"...)
			}
			want, _ := sn.Estimate(order, k)
			got, ok := back.Estimate(order, k)
			if !ok || got != want {
				t.Fatalf("order %d key %q: estimate %d,%v vs %d", order, k, got, ok, want)
			}
		}
	}
	wantTop, gotTop := sn.Top(0), back.Top(0)
	if len(wantTop) != len(gotTop) {
		t.Fatalf("top length %d vs %d", len(gotTop), len(wantTop))
	}
	for i := range wantTop {
		if !bytes.Equal(wantTop[i].Key, gotTop[i].Key) || wantTop[i].Estimate != gotTop[i].Estimate ||
			wantTop[i].Order != gotTop[i].Order {
			t.Fatalf("top[%d]: %+v vs %+v", i, gotTop[i], wantTop[i])
		}
	}

	// A second serialization of the re-read snapshot is byte-identical.
	var buf2 bytes.Buffer
	if _, err := back.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-serialization differs from original bytes")
	}
}

func TestSnapshotMergeMatchesGroupMerge(t *testing.T) {
	p := Params{Epsilon: 0.05, Delta: 0.2, Orders: 1, TopK: 4}
	a, _ := NewGroup(p)
	b, _ := NewGroup(p)
	for i := 0; i < 50; i++ {
		a.Update(1, []byte("k"), 1)
		b.Update(1, []byte("k"), 1)
		b.Update(1, []byte("q"), 3)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	if err := sa.Merge(sb); err != nil {
		t.Fatal(err)
	}
	if est, _ := sa.Estimate(1, []byte("k")); est < 100 {
		t.Fatalf("merged snapshot estimate(k) = %d, want >= 100", est)
	}
	if est, _ := sa.Estimate(1, []byte("q")); est < 150 {
		t.Fatalf("merged snapshot estimate(q) = %d, want >= 150", est)
	}
	if sa.N(1) != 250 {
		t.Fatalf("merged N = %d, want 250", sa.N(1))
	}
	bad := EmptySnapshot(Params{Epsilon: 0.01})
	if err := sa.Merge(bad); err == nil {
		t.Fatal("Merge accepted incompatible snapshot")
	}
}

func TestEmptySnapshot(t *testing.T) {
	sn := EmptySnapshot(Params{})
	if est, ok := sn.Estimate(1, []byte("anything")); !ok || est != 0 {
		t.Fatalf("empty estimate = %d,%v", est, ok)
	}
	if sn.ErrorBound(1) != 0 || sn.Docs() != 0 || len(sn.Top(0)) != 0 {
		t.Fatal("empty snapshot is not empty")
	}
}

// TestSnapshotCorruption flips every byte and tries every truncation of
// a small snapshot: each must fail with ErrCorruptSnapshot, not panic
// and not silently succeed with different bytes semantics.
func TestSnapshotCorruption(t *testing.T) {
	g, err := NewGroup(Params{Epsilon: 0.1, Delta: 0.3, Orders: 2, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	g.Update(1, []byte("a"), 3)
	g.Update(2, []byte("a b"), 2)
	g.AddDocs(1)
	var buf bytes.Buffer
	if _, err := g.Snapshot().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	for cut := 0; cut < len(raw); cut++ {
		if _, err := ReadSnapshot(bytes.NewReader(raw[:cut])); !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("truncation at %d/%d: err = %v, want ErrCorruptSnapshot", cut, len(raw), err)
		}
	}
	for pos := 0; pos < len(raw); pos++ {
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 0xff
		sn, err := ReadSnapshot(bytes.NewReader(mut))
		if err == nil {
			// The only tolerable silent success would be an undetectable
			// equivalence — there is none for a single inverted byte in
			// this format, so re-serialize and insist it round-trips to
			// something; estimates must still be readable without panic.
			sn.Estimate(1, []byte("a"))
			t.Fatalf("byte flip at %d/%d accepted", pos, len(raw))
		}
		if !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("byte flip at %d: err = %v, want ErrCorruptSnapshot", pos, err)
		}
	}
}

func FuzzSketchSnapshot(f *testing.F) {
	g, err := NewGroup(Params{Epsilon: 0.1, Delta: 0.3, Orders: 2, TopK: 2})
	if err != nil {
		f.Fatal(err)
	}
	g.Update(1, []byte("a"), 3)
	g.Update(1, []byte("b"), 1)
	g.Update(2, []byte("a b"), 2)
	g.AddDocs(2)
	var buf bytes.Buffer
	if _, err := g.Snapshot().WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	var empty bytes.Buffer
	if _, err := EmptySnapshot(Params{Epsilon: 0.2, Delta: 0.4, Orders: 1, TopK: 1}).WriteTo(&empty); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	f.Add([]byte("NGSKSNAP"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		sn, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorruptSnapshot) {
				t.Fatalf("non-sentinel error: %v", err)
			}
			return
		}
		// Accepted input must be internally consistent: queries don't
		// panic and serialization is a fixed point.
		sn.Estimate(1, []byte("probe"))
		sn.Top(0)
		sn.ErrorBound(1)
		var out bytes.Buffer
		if _, err := sn.WriteTo(&out); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		back, err := ReadSnapshot(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-read of accepted snapshot: %v", err)
		}
		var out2 bytes.Buffer
		if _, err := back.WriteTo(&out2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatal("serialization is not a fixed point")
		}
	})
}
