package sketch

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
)

// Snapshot is an immutable copy of a Group: the queryable unit the
// StreamIngester publishes, and the unit of persistence and merging.
//
// The on-disk format reuses the framing conventions of the shuffle run
// format (internal/extsort): varint-framed sections, each carrying a
// CRC-32C of its payload, counters varint-encoded (an idle sketch is
// mostly zeros, so snapshots are far smaller than the resident
// counters), and a trailing version byte plus magic. Truncation or
// corruption anywhere surfaces as ErrCorruptSnapshot, never as silently
// wrong counts:
//
//	snapshot := magic "NGSKSNAP" meta row* top trailer
//	meta     := section( u64le(bits ε) u64le(bits δ)
//	            uvarint(orders) uvarint(topk) uvarint(width)
//	            uvarint(depth) uvarint(docs) uvarint(n)^orders )
//	row      := section( uvarint-counters × width ), one per
//	            (order, row), order-major
//	top      := section( uvarint(entries)
//	            { uvarint(order) uvarint(len) key uvarint(est) }* )
//	section  := uvarint(len) u32le(crc32c(payload)) payload
//	trailer  := byte(version=1) "NGSK1"
type Snapshot struct {
	params Params
	width  int
	depth  int
	cells  [][]uint64 // per order, row-major width×depth counters
	ns     []int64    // per order: total occurrences counted
	docs   int64
	top    []Entry
}

// ErrCorruptSnapshot is wrapped by every error the snapshot reader
// reports for malformed, truncated, or checksum-failing data.
var ErrCorruptSnapshot = errors.New("sketch: corrupt snapshot")

const (
	snapshotMagic   = "NGSKSNAP"
	snapshotTrailer = "NGSK1"
	snapshotVersion = 1

	// maxSectionLen bounds one section's payload; the largest real
	// section is a row of width varint counters (≤ 10 bytes each).
	maxSectionLen = 128 << 20
	maxOrders     = 64
	maxDepth      = 64
	maxTopEntries = 1 << 20
	maxKeyLen     = 1 << 16
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// EmptySnapshot returns a zero-count snapshot with p's geometry — the
// published view of an ingester before its first document.
func EmptySnapshot(p Params) *Snapshot {
	p = p.WithDefaults()
	sn := &Snapshot{
		params: p,
		width:  p.Width(),
		depth:  p.Depth(),
		cells:  make([][]uint64, p.Orders),
		ns:     make([]int64, p.Orders),
	}
	for i := range sn.cells {
		sn.cells[i] = make([]uint64, sn.width*sn.depth)
	}
	return sn
}

// Params returns the snapshot's parameters.
func (sn *Snapshot) Params() Params { return sn.params }

// Docs returns the number of documents the snapshot covers.
func (sn *Snapshot) Docs() int64 { return sn.docs }

// N returns the total occurrences counted at the given order.
func (sn *Snapshot) N(order int) int64 {
	if order < 1 || order > len(sn.ns) {
		return 0
	}
	return sn.ns[order-1]
}

// Bytes returns the resident counter memory of the snapshot.
func (sn *Snapshot) Bytes() int64 {
	var b int64
	for _, c := range sn.cells {
		b += int64(len(c)) * 8
	}
	return b
}

// ErrorBound returns ceil(ε·N) for the given order: with probability
// 1−δ, an estimate at this order exceeds the true count by no more.
func (sn *Snapshot) ErrorBound(order int) int64 {
	return int64(math.Ceil(sn.params.Epsilon * float64(sn.N(order))))
}

// Estimate returns the estimated count of an order-length key, and
// false for orders outside the sketched range.
func (sn *Snapshot) Estimate(order int, key []byte) (int64, bool) {
	if order < 1 || order > len(sn.cells) {
		return 0, false
	}
	cells := sn.cells[order-1]
	h1 := fnv64a(key)
	h2 := splitmix64(h1) | 1
	est := uint64(math.MaxUint64)
	for row := 0; row < sn.depth; row++ {
		idx := (h1 + uint64(row)*h2) % uint64(sn.width)
		if v := cells[row*sn.width+int(idx)]; v < est {
			est = v
		}
	}
	return int64(est), true
}

// Top returns up to k heavy hitters, largest estimate first. k <= 0
// returns all tracked.
func (sn *Snapshot) Top(k int) []Entry {
	out := append([]Entry(nil), sn.top...)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Merge folds o into sn by element-wise counter addition — sound
// because the sum of per-snapshot one-sided estimates is one-sided for
// the combined stream. Heavy hitters are re-scored against the merged
// counters. The snapshots must share parameters.
func (sn *Snapshot) Merge(o *Snapshot) error {
	if sn.params != o.params {
		return fmt.Errorf("sketch: merge of incompatible snapshots (%+v vs %+v)", sn.params, o.params)
	}
	for i := range sn.cells {
		a, b := sn.cells[i], o.cells[i]
		for j := range a {
			a[j] += b[j]
		}
		sn.ns[i] += o.ns[i]
	}
	sn.docs += o.docs

	seen := make(map[string]Entry, len(sn.top)+len(o.top))
	for _, e := range append(append([]Entry(nil), sn.top...), o.top...) {
		if _, dup := seen[string(e.Key)]; dup {
			continue
		}
		if est, ok := sn.Estimate(e.Order, e.Key); ok {
			seen[string(e.Key)] = Entry{Key: e.Key, Order: e.Order, Estimate: est}
		}
	}
	merged := make([]Entry, 0, len(seen))
	for _, e := range seen {
		merged = append(merged, e)
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Estimate != merged[j].Estimate {
			return merged[i].Estimate > merged[j].Estimate
		}
		return bytes.Compare(merged[i].Key, merged[j].Key) < 0
	})
	if len(merged) > sn.params.TopK {
		merged = merged[:sn.params.TopK]
	}
	sn.top = merged
	return nil
}

// writeSection writes one uvarint(len) + CRC-32C framed payload.
func writeSection(w io.Writer, payload []byte) error {
	var hdr [binary.MaxVarintLen64 + 4]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[n:], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:n+4]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// WriteTo persists the snapshot. The stream is self-contained: a later
// ReadSnapshot (in any process) reproduces identical estimates.
func (sn *Snapshot) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	if _, err := cw.Write([]byte(snapshotMagic)); err != nil {
		return cw.n, err
	}

	meta := make([]byte, 0, 64+8*len(sn.ns))
	meta = binary.LittleEndian.AppendUint64(meta, math.Float64bits(sn.params.Epsilon))
	meta = binary.LittleEndian.AppendUint64(meta, math.Float64bits(sn.params.Delta))
	meta = binary.AppendUvarint(meta, uint64(sn.params.Orders))
	meta = binary.AppendUvarint(meta, uint64(sn.params.TopK))
	meta = binary.AppendUvarint(meta, uint64(sn.width))
	meta = binary.AppendUvarint(meta, uint64(sn.depth))
	meta = binary.AppendUvarint(meta, uint64(sn.docs))
	for _, n := range sn.ns {
		meta = binary.AppendUvarint(meta, uint64(n))
	}
	if err := writeSection(cw, meta); err != nil {
		return cw.n, err
	}

	row := make([]byte, 0, sn.width*2)
	for _, cells := range sn.cells {
		for r := 0; r < sn.depth; r++ {
			row = row[:0]
			for _, v := range cells[r*sn.width : (r+1)*sn.width] {
				row = binary.AppendUvarint(row, v)
			}
			if err := writeSection(cw, row); err != nil {
				return cw.n, err
			}
		}
	}

	top := make([]byte, 0, 64)
	top = binary.AppendUvarint(top, uint64(len(sn.top)))
	for _, e := range sn.top {
		top = binary.AppendUvarint(top, uint64(e.Order))
		top = binary.AppendUvarint(top, uint64(len(e.Key)))
		top = append(top, e.Key...)
		top = binary.AppendUvarint(top, uint64(e.Estimate))
	}
	if err := writeSection(cw, top); err != nil {
		return cw.n, err
	}

	if _, err := cw.Write([]byte{snapshotVersion}); err != nil {
		return cw.n, err
	}
	_, err := cw.Write([]byte(snapshotTrailer))
	return cw.n, err
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

type snapshotReader struct {
	r   io.Reader
	br  io.ByteReader
	buf bytes.Buffer
}

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorruptSnapshot, fmt.Sprintf(format, args...))
}

// section reads the next framed payload and verifies its checksum. The
// returned slice is valid until the next call.
func (sr *snapshotReader) section() ([]byte, error) {
	n, err := binary.ReadUvarint(sr.br)
	if err != nil {
		return nil, corrupt("section length: %v", err)
	}
	if n > maxSectionLen {
		return nil, corrupt("section of %d bytes exceeds limit", n)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(sr.r, crcBuf[:]); err != nil {
		return nil, corrupt("section checksum: %v", err)
	}
	sr.buf.Reset()
	// CopyN grows the buffer only as data actually arrives, so a lying
	// length field cannot force a huge allocation.
	if _, err := io.CopyN(&sr.buf, sr.r, int64(n)); err != nil {
		return nil, corrupt("section payload: %v", err)
	}
	payload := sr.buf.Bytes()
	if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(crcBuf[:]); got != want {
		return nil, corrupt("section checksum mismatch (got %08x, want %08x)", got, want)
	}
	return payload, nil
}

func uv(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, corrupt("bad varint")
	}
	return v, b[n:], nil
}

// ReadSnapshot reads a snapshot written by WriteTo. Malformed,
// truncated, or checksum-failing input errors with ErrCorruptSnapshot.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	br := bufio(r)
	sr := &snapshotReader{r: br, br: br}

	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != snapshotMagic {
		return nil, corrupt("bad magic")
	}

	meta, err := sr.section()
	if err != nil {
		return nil, err
	}
	if len(meta) < 16 {
		return nil, corrupt("meta section of %d bytes", len(meta))
	}
	eps := math.Float64frombits(binary.LittleEndian.Uint64(meta))
	delta := math.Float64frombits(binary.LittleEndian.Uint64(meta[8:]))
	rest := meta[16:]
	var orders, topk, width, depth, docs uint64
	if orders, rest, err = uv(rest); err != nil {
		return nil, err
	}
	if topk, rest, err = uv(rest); err != nil {
		return nil, err
	}
	if width, rest, err = uv(rest); err != nil {
		return nil, err
	}
	if depth, rest, err = uv(rest); err != nil {
		return nil, err
	}
	if docs, rest, err = uv(rest); err != nil {
		return nil, err
	}
	if !(eps > 0 && eps < 1) || !(delta > 0 && delta < 1) {
		return nil, corrupt("parameters outside (0, 1): eps=%v delta=%v", eps, delta)
	}
	p := Params{Epsilon: eps, Delta: delta, Orders: int(orders), TopK: int(topk)}
	if orders < 1 || orders > maxOrders || depth < 1 || depth > maxDepth ||
		topk < 1 || topk > maxTopEntries {
		return nil, corrupt("implausible geometry: orders=%d depth=%d topk=%d", orders, depth, topk)
	}
	if int(width) != p.Width() || int(depth) != p.Depth() {
		return nil, corrupt("geometry %dx%d does not match parameters (want %dx%d)",
			width, depth, p.Width(), p.Depth())
	}
	sn := &Snapshot{
		params: p,
		width:  int(width),
		depth:  int(depth),
		cells:  make([][]uint64, orders),
		ns:     make([]int64, orders),
		docs:   int64(docs),
	}
	for i := range sn.ns {
		var n uint64
		if n, rest, err = uv(rest); err != nil {
			return nil, err
		}
		sn.ns[i] = int64(n)
	}
	if len(rest) != 0 {
		return nil, corrupt("%d trailing meta bytes", len(rest))
	}

	for o := range sn.cells {
		var cells []uint64
		for r := 0; r < int(depth); r++ {
			payload, err := sr.section()
			if err != nil {
				return nil, err
			}
			// Each counter is at least one varint byte, so a valid row
			// payload is at least width bytes. Checking before the
			// counter allocation bounds memory by actual input size,
			// which keeps a lying header from forcing a huge make.
			if uint64(len(payload)) < width {
				return nil, corrupt("order %d row %d: %d payload bytes for width %d", o+1, r, len(payload), width)
			}
			if cells == nil {
				cells = make([]uint64, int(width)*int(depth))
			}
			row := cells[r*int(width) : (r+1)*int(width)]
			for i := range row {
				var v uint64
				if v, payload, err = uv(payload); err != nil {
					return nil, corrupt("order %d row %d: truncated counters", o+1, r)
				}
				row[i] = v
			}
			if len(payload) != 0 {
				return nil, corrupt("order %d row %d: %d trailing bytes", o+1, r, len(payload))
			}
		}
		sn.cells[o] = cells
	}

	top, err := sr.section()
	if err != nil {
		return nil, err
	}
	var entries uint64
	if entries, top, err = uv(top); err != nil {
		return nil, err
	}
	if entries > maxTopEntries {
		return nil, corrupt("%d top entries exceeds limit", entries)
	}
	sn.top = make([]Entry, 0, min(int(entries), 4096))
	for i := uint64(0); i < entries; i++ {
		var order, klen, est uint64
		if order, top, err = uv(top); err != nil {
			return nil, err
		}
		if klen, top, err = uv(top); err != nil {
			return nil, err
		}
		if klen > maxKeyLen || uint64(len(top)) < klen {
			return nil, corrupt("top entry key of %d bytes", klen)
		}
		key := append([]byte(nil), top[:klen]...)
		top = top[klen:]
		if est, top, err = uv(top); err != nil {
			return nil, err
		}
		sn.top = append(sn.top, Entry{Key: key, Order: int(order), Estimate: int64(est)})
	}
	if len(top) != 0 {
		return nil, corrupt("%d trailing top bytes", len(top))
	}

	tail := make([]byte, 1+len(snapshotTrailer))
	if _, err := io.ReadFull(br, tail); err != nil {
		return nil, corrupt("trailer: %v", err)
	}
	if tail[0] != snapshotVersion {
		return nil, corrupt("unsupported version %d", tail[0])
	}
	if string(tail[1:]) != snapshotTrailer {
		return nil, corrupt("bad trailer magic")
	}
	if n, err := br.Read(make([]byte, 1)); n != 0 || err != io.EOF {
		return nil, corrupt("trailing garbage after trailer")
	}
	return sn, nil
}

// bufio wraps r with byte-reader buffering without importing the
// package name into every call site.
func bufio(r io.Reader) interface {
	io.Reader
	io.ByteReader
} {
	if br, ok := r.(interface {
		io.Reader
		io.ByteReader
	}); ok {
		return br
	}
	return &byteReader{r: r}
}

type byteReader struct {
	r   io.Reader
	buf [1]byte
}

func (b *byteReader) Read(p []byte) (int, error) { return b.r.Read(p) }

func (b *byteReader) ReadByte() (byte, error) {
	_, err := io.ReadFull(b.r, b.buf[:])
	return b.buf[0], err
}
