// Package sketch implements one-pass approximate n-gram counting with
// bounded memory: a count-min sketch with a concurrency-safe
// conservative update, a heavy-hitters top-k heap, and immutable
// snapshots with a mergeable, CRC-checksummed on-disk format.
//
// The design follows Lemire & Kaser's "One-Pass, One-Hash n-Gram
// Statistics Estimation": a live document stream is reduced to hashed
// counters in a single pass, trading exactness for constant memory and
// immediate queryability, while the exact MapReduce pipeline
// periodically reconciles the estimates (see ngramstats.StreamIngester).
//
// # Guarantees
//
// Estimates are one-sided: an estimate is never below the true count,
// even under concurrent updates. With width w = ceil(e/ε) and depth
// d = ceil(ln(1/δ)), the estimate of any key exceeds its true count by
// more than ε·N (N = total counted occurrences of the key's order)
// with probability at most δ.
//
// # Conservative update, lock-free
//
// The classic conservative update (raise every row only to min+n) is
// not sound under concurrent updates: two updaters can observe stale
// minima and lose an increment between them, breaking the one-sided
// guarantee. Update therefore treats row 0 as the ground-truth row — it
// takes a full atomic add, so its cell never undercounts — and each
// remaining row keeps an atomic running maximum of row-0 post-add
// values. The row-0 add is the linearization point: once it completes,
// its post-add value bounds the key's true count from above, and every
// deeper row is raised to at least that value before Update returns, so
// estimates stay one-sided under any interleaving. The conservative win
// is that a deeper cell records the bound of the heaviest key hashing
// into it instead of the sum of all of them, which is what plain
// count-min addition would write.
package sketch

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Params sizes a sketch group from an accuracy target.
type Params struct {
	// Epsilon is the relative error target ε: estimates exceed true
	// counts by at most ε·N with probability 1−δ. Default 1e-4.
	Epsilon float64
	// Delta is the failure probability δ. Default 0.01.
	Delta float64
	// Orders is the number of n-gram orders sketched (1..Orders), one
	// sketch per order. Default 5.
	Orders int
	// TopK is how many heavy hitters the group tracks. Default 128.
	TopK int
}

// WithDefaults returns p with zero fields replaced by the defaults.
func (p Params) WithDefaults() Params {
	if p.Epsilon <= 0 {
		p.Epsilon = 1e-4
	}
	if p.Delta <= 0 {
		p.Delta = 0.01
	}
	if p.Orders <= 0 {
		p.Orders = 5
	}
	if p.TopK <= 0 {
		p.TopK = 128
	}
	return p
}

func (p Params) validate() error {
	if p.Epsilon <= 0 || p.Epsilon >= 1 {
		return fmt.Errorf("sketch: epsilon %v outside (0, 1)", p.Epsilon)
	}
	if p.Delta <= 0 || p.Delta >= 1 {
		return fmt.Errorf("sketch: delta %v outside (0, 1)", p.Delta)
	}
	if p.Orders < 1 {
		return fmt.Errorf("sketch: orders %d < 1", p.Orders)
	}
	return nil
}

// Width returns the counters per row: ceil(e/ε).
func (p Params) Width() int { return int(math.Ceil(math.E / p.Epsilon)) }

// Depth returns the rows per sketch: ceil(ln(1/δ)).
func (p Params) Depth() int {
	d := int(math.Ceil(math.Log(1 / p.Delta)))
	if d < 1 {
		d = 1
	}
	return d
}

// Sketch is one order's count-min sketch. Update and Estimate are safe
// for any number of concurrent callers and take no locks.
type Sketch struct {
	width, depth int
	// cells holds depth rows of width counters each, row-major; row 0
	// is the ground-truth add row. All access is atomic.
	cells []uint64
	// n is the total count of updates folded in (the N of the ε·N
	// error bound).
	n atomic.Int64
}

// NewSketch returns an empty width×depth sketch.
func NewSketch(width, depth int) *Sketch {
	if width < 1 {
		width = 1
	}
	if depth < 1 {
		depth = 1
	}
	return &Sketch{width: width, depth: depth, cells: make([]uint64, width*depth)}
}

// fnv64a is the FNV-1a hash of key — deterministic across processes,
// so snapshots written on one machine merge and answer on another.
func fnv64a(key []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

// splitmix64 finalizes h into an independent second hash for the
// Kirsch–Mitzenmacher double-hashing scheme.
func splitmix64(h uint64) uint64 {
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

func (s *Sketch) cell(h1, h2 uint64, row int) *uint64 {
	idx := (h1 + uint64(row)*h2) % uint64(s.width)
	return &s.cells[row*s.width+int(idx)]
}

// Update folds n occurrences of key into the sketch and returns the
// key's new estimate. It is lock-free: contended rows retry a CAS that
// always either raises the cell or observes another update's progress.
func (s *Sketch) Update(key []byte, n int64) int64 {
	h1 := fnv64a(key)
	h2 := splitmix64(h1) | 1
	// Row 0: full atomic add. Its post-add value upper-bounds the key's
	// true count and is what the deeper rows are raised to.
	v0 := atomic.AddUint64(s.cell(h1, h2, 0), uint64(n))
	for row := 1; row < s.depth; row++ {
		c := s.cell(h1, h2, row)
		for {
			cur := atomic.LoadUint64(c)
			if cur >= v0 {
				break // already covers our row-0 bound
			}
			if atomic.CompareAndSwapUint64(c, cur, v0) {
				break
			}
		}
	}
	s.n.Add(n)
	// Every row is now at least v0, and row 0 was exactly v0 at the add,
	// so v0 is the tightest estimate this update can prove.
	return int64(v0)
}

// Estimate returns the key's estimated count: at least the true count,
// and within ε·N of it with probability 1−δ.
func (s *Sketch) Estimate(key []byte) int64 {
	h1 := fnv64a(key)
	h2 := splitmix64(h1) | 1
	est := atomic.LoadUint64(s.cell(h1, h2, 0))
	for row := 1; row < s.depth; row++ {
		if v := atomic.LoadUint64(s.cell(h1, h2, row)); v < est {
			est = v
		}
	}
	return int64(est)
}

// N returns the total count of occurrences folded in.
func (s *Sketch) N() int64 { return s.n.Load() }

// Bytes returns the counter memory of the sketch.
func (s *Sketch) Bytes() int64 { return int64(len(s.cells)) * 8 }

// snapshotCells copies the counters with atomic loads.
func (s *Sketch) snapshotCells() []uint64 {
	out := make([]uint64, len(s.cells))
	for i := range s.cells {
		out[i] = atomic.LoadUint64(&s.cells[i])
	}
	return out
}

// merge folds o's counters in by element-wise atomic addition. Addition
// preserves one-sidedness: each cell becomes at least the sum of the
// per-sketch lower bounds. Widths and depths must match.
func (s *Sketch) merge(o *Sketch) {
	for i := range s.cells {
		if v := atomic.LoadUint64(&o.cells[i]); v != 0 {
			atomic.AddUint64(&s.cells[i], v)
		}
	}
	s.n.Add(o.n.Load())
}

// Group is a set of per-order sketches plus one heavy-hitters heap —
// the unit the StreamIngester rotates at reconcile boundaries.
type Group struct {
	params Params
	width  int
	depth  int
	orders []*Sketch // orders[i] sketches (i+1)-grams
	top    *TopK
	docs   atomic.Int64
}

// NewGroup returns an empty group sized from p (defaults applied).
func NewGroup(p Params) (*Group, error) {
	p = p.WithDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	g := &Group{
		params: p,
		width:  p.Width(),
		depth:  p.Depth(),
		orders: make([]*Sketch, p.Orders),
		top:    NewTopK(p.TopK),
	}
	for i := range g.orders {
		g.orders[i] = NewSketch(g.width, g.depth)
	}
	return g, nil
}

// Params returns the group's (defaulted) parameters.
func (g *Group) Params() Params { return g.params }

// Update folds n occurrences of an order-length key in and offers the
// new estimate to the heavy-hitters heap. Orders outside 1..Orders are
// ignored (the caller bounds windows by the sketched orders).
func (g *Group) Update(order int, key []byte, n int64) {
	if order < 1 || order > len(g.orders) {
		return
	}
	est := g.orders[order-1].Update(key, n)
	g.top.Offer(key, order, est)
}

// Estimate returns the estimated count of an order-length key, and
// false for orders the group does not sketch.
func (g *Group) Estimate(order int, key []byte) (int64, bool) {
	if order < 1 || order > len(g.orders) {
		return 0, false
	}
	return g.orders[order-1].Estimate(key), true
}

// N returns the total occurrences counted at the given order.
func (g *Group) N(order int) int64 {
	if order < 1 || order > len(g.orders) {
		return 0
	}
	return g.orders[order-1].N()
}

// Top returns up to k heavy hitters, largest estimate first. k <= 0
// returns all tracked.
func (g *Group) Top(k int) []Entry { return g.top.Items(k) }

// AddDocs counts documents folded into the group.
func (g *Group) AddDocs(n int64) { g.docs.Add(n) }

// Docs returns the documents folded in.
func (g *Group) Docs() int64 { return g.docs.Load() }

// Bytes returns the counter memory of all sketches.
func (g *Group) Bytes() int64 {
	var b int64
	for _, s := range g.orders {
		b += s.Bytes()
	}
	return b
}

// Merge folds o into g (element-wise counter addition, heavy hitters
// re-offered). It is how an aborted reconcile returns its drained delta
// to the live one. The groups must share parameters.
func (g *Group) Merge(o *Group) error {
	if g.params != o.params {
		return fmt.Errorf("sketch: merge of incompatible groups (%+v vs %+v)", g.params, o.params)
	}
	for i := range g.orders {
		g.orders[i].merge(o.orders[i])
	}
	for _, e := range o.top.Items(0) {
		if est, ok := g.Estimate(e.Order, e.Key); ok {
			g.top.Offer(e.Key, e.Order, est)
		}
	}
	g.docs.Add(o.docs.Load())
	return nil
}

// Snapshot returns an immutable, consistent-enough copy of the group:
// counters are copied with atomic loads, so every estimate read from
// the snapshot is still one-sided with respect to the updates that
// completed before Snapshot returned.
func (g *Group) Snapshot() *Snapshot {
	sn := &Snapshot{
		params: g.params,
		width:  g.width,
		depth:  g.depth,
		cells:  make([][]uint64, len(g.orders)),
		ns:     make([]int64, len(g.orders)),
		docs:   g.docs.Load(),
		top:    g.top.Items(0),
	}
	for i, s := range g.orders {
		sn.cells[i] = s.snapshotCells()
		sn.ns[i] = s.N()
	}
	return sn
}
