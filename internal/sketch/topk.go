package sketch

import (
	"bytes"
	"container/heap"
	"sort"
	"sync"
	"sync/atomic"
)

// Entry is one heavy hitter: a hashed n-gram key with its estimate at
// the time it was last offered.
type Entry struct {
	Key      []byte
	Order    int
	Estimate int64
}

// TopK tracks the k keys with the largest estimates seen so far. The
// hot path — an offer below the current k-th estimate while the heap is
// full — is a single atomic load; only candidate heavy hitters take the
// mutex.
type TopK struct {
	k int

	// floor is the smallest estimate in a full heap: offers at or below
	// it cannot change the contents and return without locking. Zero
	// while the heap has room.
	floor atomic.Int64

	mu      sync.Mutex
	entries map[string]*hhEntry
	heap    hhHeap
}

type hhEntry struct {
	key      []byte
	order    int
	estimate int64
	idx      int // heap index
}

// NewTopK returns an empty tracker of the k largest estimates.
func NewTopK(k int) *TopK {
	if k < 1 {
		k = 1
	}
	return &TopK{k: k, entries: make(map[string]*hhEntry, k+1)}
}

// K returns the tracked capacity.
func (t *TopK) K() int { return t.k }

// Offer records that key's estimate is now est.
func (t *TopK) Offer(key []byte, order int, est int64) {
	if f := t.floor.Load(); f > 0 && est <= f {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.entries[string(key)]; ok {
		if est > e.estimate {
			e.estimate = est
			heap.Fix(&t.heap, e.idx)
		}
	} else {
		if len(t.heap) >= t.k {
			if est <= t.heap[0].estimate {
				t.floor.Store(t.heap[0].estimate)
				return
			}
			evicted := heap.Pop(&t.heap).(*hhEntry)
			delete(t.entries, string(evicted.key))
		}
		e := &hhEntry{key: append([]byte(nil), key...), order: order, estimate: est}
		t.entries[string(e.key)] = e
		heap.Push(&t.heap, e)
	}
	if len(t.heap) >= t.k {
		t.floor.Store(t.heap[0].estimate)
	}
}

// Items returns up to k heavy hitters, largest estimate first (ties
// break on the key bytes for determinism). k <= 0 returns all tracked.
func (t *TopK) Items(k int) []Entry {
	t.mu.Lock()
	out := make([]Entry, len(t.heap))
	for i, e := range t.heap {
		out[i] = Entry{Key: e.key, Order: e.order, Estimate: e.estimate}
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Estimate != out[j].Estimate {
			return out[i].Estimate > out[j].Estimate
		}
		return bytes.Compare(out[i].Key, out[j].Key) < 0
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// hhHeap is a min-heap on estimate, so the root is the eviction victim.
type hhHeap []*hhEntry

func (h hhHeap) Len() int           { return len(h) }
func (h hhHeap) Less(i, j int) bool { return h[i].estimate < h[j].estimate }
func (h hhHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].idx = i; h[j].idx = j }
func (h *hhHeap) Push(x any)        { e := x.(*hhEntry); e.idx = len(*h); *h = append(*h, e) }
func (h *hhHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

var _ heap.Interface = (*hhHeap)(nil)
