// Package dictionary implements the term dictionary of Section V
// ("Sequence Encoding"): a mapping between terms and integer term
// identifiers, with identifiers assigned in descending order of
// collection frequency so that frequent terms receive small identifiers
// and varint-encode compactly. The dictionary is built once per
// document collection as a pre-processing step and persisted as a
// single text file, exactly as the paper's implementation keeps it.
package dictionary

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"ngramstats/internal/sequence"
)

// ErrUnknownTerm is returned when encoding a term that is not in the
// dictionary.
var ErrUnknownTerm = errors.New("dictionary: unknown term")

// Dictionary maps terms to identifiers and back. Identifier i belongs
// to the term with the (i+1)-th highest collection frequency; ties are
// broken lexicographically for determinism.
type Dictionary struct {
	terms []string
	cfs   []int64
	ids   map[string]sequence.Term
}

// Builder accumulates term frequencies before the dictionary is frozen.
type Builder struct {
	counts map[string]int64
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{counts: make(map[string]int64)}
}

// Add counts one occurrence of term.
func (b *Builder) Add(term string) { b.counts[term]++ }

// AddN counts n occurrences of term.
func (b *Builder) AddN(term string, n int64) { b.counts[term] += n }

// Build freezes the builder into a Dictionary with identifiers in
// descending collection-frequency order.
func (b *Builder) Build() *Dictionary {
	type tc struct {
		term string
		cf   int64
	}
	all := make([]tc, 0, len(b.counts))
	for t, c := range b.counts {
		all = append(all, tc{t, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].cf != all[j].cf {
			return all[i].cf > all[j].cf
		}
		return all[i].term < all[j].term
	})
	d := &Dictionary{
		terms: make([]string, len(all)),
		cfs:   make([]int64, len(all)),
		ids:   make(map[string]sequence.Term, len(all)),
	}
	for i, e := range all {
		d.terms[i] = e.term
		d.cfs[i] = e.cf
		d.ids[e.term] = sequence.Term(i)
	}
	return d
}

// FromTable freezes an explicit (term, cf) table into a Dictionary,
// assigning identifier i to the i-th entry as given — without the
// frequency ranking Builder.Build performs. It is the constructor for
// seeded dictionaries, whose identifier assignment must extend an
// earlier generation's rather than re-rank: an LSM delta dictionary
// keeps every inherited identifier stable and appends new terms after
// them. Duplicate terms are rejected.
func FromTable(terms []string, cfs []int64) (*Dictionary, error) {
	if len(terms) != len(cfs) {
		return nil, fmt.Errorf("dictionary: %d terms but %d frequencies", len(terms), len(cfs))
	}
	d := &Dictionary{
		terms: append([]string(nil), terms...),
		cfs:   append([]int64(nil), cfs...),
		ids:   make(map[string]sequence.Term, len(terms)),
	}
	for i, t := range d.terms {
		if _, dup := d.ids[t]; dup {
			return nil, fmt.Errorf("dictionary: duplicate term %q", t)
		}
		d.ids[t] = sequence.Term(i)
	}
	return d, nil
}

// Len returns the number of distinct terms.
func (d *Dictionary) Len() int { return len(d.terms) }

// Ranked reports whether identifiers are in non-increasing collection-
// frequency order — the invariant of a Builder-built dictionary, and
// the property persistence records so Load can verify it. Seeded
// dictionaries (FromTable) are generally unranked: inherited
// identifiers keep their old positions while their frequencies grow.
func (d *Dictionary) Ranked() bool {
	for i := 1; i < len(d.cfs); i++ {
		if d.cfs[i] > d.cfs[i-1] {
			return false
		}
	}
	return true
}

// ID returns the identifier of term.
func (d *Dictionary) ID(term string) (sequence.Term, bool) {
	id, ok := d.ids[term]
	return id, ok
}

// Term returns the term with the given identifier, or "" if out of
// range.
func (d *Dictionary) Term(id sequence.Term) string {
	if int(id) >= len(d.terms) {
		return ""
	}
	return d.terms[id]
}

// CF returns the collection frequency recorded for the identifier.
func (d *Dictionary) CF(id sequence.Term) int64 {
	if int(id) >= len(d.cfs) {
		return 0
	}
	return d.cfs[id]
}

// TotalOccurrences returns the sum of all collection frequencies, i.e.
// the number of term occurrences in the collection.
func (d *Dictionary) TotalOccurrences() int64 {
	var n int64
	for _, c := range d.cfs {
		n += c
	}
	return n
}

// Encode maps a token slice to a term sequence. Unknown terms yield
// ErrUnknownTerm.
func (d *Dictionary) Encode(tokens []string) (sequence.Seq, error) {
	s := make(sequence.Seq, len(tokens))
	for i, tok := range tokens {
		id, ok := d.ids[tok]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownTerm, tok)
		}
		s[i] = id
	}
	return s, nil
}

// Decode maps a term sequence back to tokens. Unknown identifiers
// decode to "⟨unk⟩".
func (d *Dictionary) Decode(s sequence.Seq) []string {
	out := make([]string, len(s))
	for i, id := range s {
		if t := d.Term(id); t != "" || (int(id) < len(d.terms)) {
			out[i] = t
		} else {
			out[i] = "⟨unk⟩"
		}
	}
	return out
}

// Format renders a sequence as a human-readable phrase.
func (d *Dictionary) Format(s sequence.Seq) string {
	return strings.Join(d.Decode(s), " ")
}

// Save writes the dictionary as one "term<TAB>cf" line per identifier,
// in identifier order.
func (d *Dictionary) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i, t := range d.terms {
		if _, err := fmt.Fprintf(bw, "%s\t%d\n", t, d.cfs[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a dictionary in the Save format. Identifier order is the
// line order; it must be in non-increasing frequency order, which Load
// verifies.
func Load(r io.Reader) (*Dictionary, error) { return load(r, true) }

// LoadUnranked reads a dictionary in the Save format without requiring
// non-increasing frequency order. LSM delta dictionaries are saved this
// way: identifiers inherited from the previous generation keep their
// positions while their cumulative frequencies drift out of rank order.
func LoadUnranked(r io.Reader) (*Dictionary, error) { return load(r, false) }

func load(r io.Reader, ranked bool) (*Dictionary, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	d := &Dictionary{ids: make(map[string]sequence.Term)}
	var prev int64 = -1
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		tab := strings.LastIndexByte(text, '\t')
		if tab < 0 {
			return nil, fmt.Errorf("dictionary: line %d: missing tab", line)
		}
		term := text[:tab]
		cf, err := strconv.ParseInt(text[tab+1:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("dictionary: line %d: bad frequency: %v", line, err)
		}
		if ranked && prev >= 0 && cf > prev {
			return nil, fmt.Errorf("dictionary: line %d: frequencies not non-increasing", line)
		}
		prev = cf
		if _, dup := d.ids[term]; dup {
			return nil, fmt.Errorf("dictionary: line %d: duplicate term %q", line, term)
		}
		d.ids[term] = sequence.Term(len(d.terms))
		d.terms = append(d.terms, term)
		d.cfs = append(d.cfs, cf)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}
