package dictionary

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"ngramstats/internal/sequence"
)

func buildSample() *Dictionary {
	b := NewBuilder()
	// x:7, b:5, a:3 — the running example frequencies.
	b.AddN("x", 7)
	b.AddN("b", 5)
	b.AddN("a", 3)
	return b.Build()
}

func TestIDsDescendingFrequency(t *testing.T) {
	d := buildSample()
	if d.Len() != 3 {
		t.Fatalf("Len = %d", d.Len())
	}
	for i, want := range []string{"x", "b", "a"} {
		if got := d.Term(sequence.Term(i)); got != want {
			t.Fatalf("Term(%d) = %q, want %q", i, got, want)
		}
	}
	id, ok := d.ID("b")
	if !ok || id != 1 {
		t.Fatalf("ID(b) = %d, %v", id, ok)
	}
	if d.CF(0) != 7 || d.CF(1) != 5 || d.CF(2) != 3 {
		t.Fatalf("CFs = %d %d %d", d.CF(0), d.CF(1), d.CF(2))
	}
	if d.TotalOccurrences() != 15 {
		t.Fatalf("TotalOccurrences = %d", d.TotalOccurrences())
	}
}

func TestTiesBrokenLexicographically(t *testing.T) {
	b := NewBuilder()
	b.AddN("zeta", 2)
	b.AddN("alpha", 2)
	b.AddN("mid", 2)
	d := b.Build()
	if d.Term(0) != "alpha" || d.Term(1) != "mid" || d.Term(2) != "zeta" {
		t.Fatalf("tie order = %q %q %q", d.Term(0), d.Term(1), d.Term(2))
	}
}

func TestEncodeDecode(t *testing.T) {
	d := buildSample()
	s, err := d.Encode([]string{"a", "x", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if !sequence.Equal(s, sequence.Seq{2, 0, 1}) {
		t.Fatalf("Encode = %v", s)
	}
	if got := d.Format(s); got != "a x b" {
		t.Fatalf("Format = %q", got)
	}
	if _, err := d.Encode([]string{"nope"}); !errors.Is(err, ErrUnknownTerm) {
		t.Fatalf("expected ErrUnknownTerm, got %v", err)
	}
}

func TestAddIncrements(t *testing.T) {
	b := NewBuilder()
	for i := 0; i < 4; i++ {
		b.Add("w")
	}
	d := b.Build()
	if d.CF(0) != 4 {
		t.Fatalf("CF = %d", d.CF(0))
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := buildSample()
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("Len = %d", got.Len())
	}
	for i := 0; i < d.Len(); i++ {
		id := sequence.Term(i)
		if got.Term(id) != d.Term(id) || got.CF(id) != d.CF(id) {
			t.Fatalf("mismatch at id %d", i)
		}
	}
}

func TestLoadRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"missing tab":    "abc\n",
		"bad frequency":  "abc\tx\n",
		"increasing cfs": "a\t1\nb\t2\n",
		"duplicate term": "a\t2\na\t1\n",
	}
	for name, in := range cases {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Load accepted %q", name, in)
		}
	}
}

func TestLoadSkipsBlankLines(t *testing.T) {
	d, err := Load(strings.NewReader("a\t5\n\nb\t3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestOutOfRange(t *testing.T) {
	d := buildSample()
	if d.Term(99) != "" {
		t.Fatal("Term(99) should be empty")
	}
	if d.CF(99) != 0 {
		t.Fatal("CF(99) should be 0")
	}
}
