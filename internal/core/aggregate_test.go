package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"ngramstats/internal/encoding"
)

// randomCell builds a random cell of the given kind from singleton
// additions, returning also the singleton values used.
func randomCell(t *testing.T, kind AggregationKind, rng *rand.Rand, n int) (Aggregate, [][]byte) {
	t.Helper()
	cell := newAggregate(kind)
	var singletons [][]byte
	for i := 0; i < n; i++ {
		meta := &docMeta{docID: int64(rng.Intn(5)), year: 1990 + rng.Intn(5)}
		v := mapValue(kind, meta)
		singletons = append(singletons, v)
		if err := cell.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	return cell, singletons
}

// TestCellEncodeDecodeRoundTrip: Encode∘Add is the identity on cells of
// every kind — the property that lets combiner output feed reducers
// unchanged.
func TestCellEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, kind := range []AggregationKind{AggCount, AggTimeSeries, AggDocIndex} {
		for trial := 0; trial < 100; trial++ {
			cell, _ := randomCell(t, kind, rng, 1+rng.Intn(10))
			enc := cell.Encode()
			back, err := decodeAggregate(kind, enc)
			if err != nil {
				t.Fatalf("%v: decode: %v", kind, err)
			}
			if back.Frequency() != cell.Frequency() {
				t.Fatalf("%v: frequency changed in round trip", kind)
			}
			if !reflect.DeepEqual(back.Encode(), enc) {
				t.Fatalf("%v: re-encode differs", kind)
			}
		}
	}
}

// TestCellMergeOrderIndependence: merging cells in any order and
// grouping yields the same aggregate — the algebraic requirement for
// combiners and for the lazy stack merging of SUFFIX-σ.
func TestCellMergeOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, kind := range []AggregationKind{AggCount, AggTimeSeries, AggDocIndex} {
		for trial := 0; trial < 60; trial++ {
			_, singles := randomCell(t, kind, rng, 2+rng.Intn(8))
			// Left fold.
			left := newAggregate(kind)
			for _, v := range singles {
				if err := left.Add(v); err != nil {
					t.Fatal(err)
				}
			}
			// Random grouping into two cells, then merge.
			a := newAggregate(kind)
			bCell := newAggregate(kind)
			for _, v := range singles {
				target := a
				if rng.Intn(2) == 0 {
					target = bCell
				}
				if err := target.Add(v); err != nil {
					t.Fatal(err)
				}
			}
			a.Merge(bCell)
			if !reflect.DeepEqual(a.Encode(), left.Encode()) {
				t.Fatalf("%v: grouped merge differs from fold", kind)
			}
		}
	}
}

// TestCountCellQuick uses testing/quick for the count cell: frequency
// is the sum of added weights.
func TestCountCellQuick(t *testing.T) {
	f := func(weights []uint16) bool {
		cell := newAggregate(AggCount)
		var want int64
		for _, w := range weights {
			v := encoding.AppendUvarint(nil, uint64(w))
			if err := cell.Add(v); err != nil {
				return false
			}
			want += int64(w)
		}
		return cell.Frequency() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestCellCorruptInputs: every decoder rejects malformed values.
func TestCellCorruptInputs(t *testing.T) {
	for _, kind := range []AggregationKind{AggCount, AggTimeSeries, AggDocIndex} {
		cell := newAggregate(kind)
		if err := cell.Add([]byte{0x80}); err == nil {
			t.Errorf("%v: accepted bad varint", kind)
		}
	}
	// Trailing bytes.
	ts := newAggregate(AggTimeSeries)
	good := mapValue(AggTimeSeries, &docMeta{year: 2000})
	if err := ts.Add(append(append([]byte(nil), good...), 1)); err == nil {
		t.Error("time series accepted trailing bytes")
	}
	di := newAggregate(AggDocIndex)
	goodDI := mapValue(AggDocIndex, &docMeta{docID: 3})
	if err := di.Add(append(append([]byte(nil), goodDI...), 1)); err == nil {
		t.Error("doc index accepted trailing bytes")
	}
	cnt := newAggregate(AggCount)
	if err := cnt.Add([]byte{1, 1}); err == nil {
		t.Error("count accepted trailing bytes")
	}
}

// TestAggregationKindString covers the display names.
func TestAggregationKindString(t *testing.T) {
	if AggCount.String() != "count" || AggTimeSeries.String() != "timeseries" || AggDocIndex.String() != "docindex" {
		t.Fatal("kind names wrong")
	}
	if SelectAll.String() != "all" || SelectMaximal.String() != "maximal" || SelectClosed.String() != "closed" {
		t.Fatal("select names wrong")
	}
}
