package core

import (
	"encoding/json"
	"fmt"

	"ngramstats/internal/encoding"
	"ngramstats/internal/mapreduce"
)

// coreProgram is the registered mapreduce program covering every job
// the paper's methods launch. A worker process — a re-execution of the
// current binary — rebuilds a job's task callbacks from the jobSpec
// serialized into the job's mapreduce.Spec, which is also the single
// construction path the in-process runner uses: local and worker
// execution cannot drift apart because both call buildCoreJob.
const coreProgram = "ngramstats/core"

func init() {
	mapreduce.RegisterProgram(coreProgram, buildCoreJob)
}

// jobSpec serializes the configuration of one core job. Kind selects
// the mapper/reducer wiring; the remaining fields parameterize it.
// Runtime concerns (splits, slots, memory budgets, temp dirs, side
// data) deliberately stay out: the executing runner supplies them.
type jobSpec struct {
	Kind string `json:"kind"`

	Tau      int64           `json:"tau,omitempty"`
	Sigma    int             `json:"sigma,omitempty"`
	K        int             `json:"k,omitempty"`
	Agg      AggregationKind `json:"agg,omitempty"`
	Select   SelectMode      `json:"select,omitempty"`
	DictMem  int             `json:"dict_mem,omitempty"`
	JoinMem  int             `json:"join_mem,omitempty"`
	Combiner bool            `json:"combiner,omitempty"`
}

// The job kinds of the paper's methods.
const (
	kindNaive         = "naive"          // Algorithm 1
	kindScan          = "apriori-scan"   // Algorithm 2, k-th pass
	kindIndexScan     = "index-scan"     // Algorithm 3, k ≤ K
	kindIndexJoin     = "index-join"     // Algorithm 3, k > K
	kindSuffixSigma   = "suffix-sigma"   // Algorithm 4
	kindSuffixHashmap = "suffix-hashmap" // Section IV strawman
	kindSuffixFilter  = "suffix-filter"  // Section VI-A post-filter
	kindUnigrams      = "unigrams"       // Section V document splits, job 1
	kindRewrite       = "rewrite"        // Section V document splits, job 2 (map-only)
)

// buildCoreJob reconstructs a core job's task callbacks from a
// serialized jobSpec.
func buildCoreJob(config []byte) (*mapreduce.Job, error) {
	var s jobSpec
	if err := json.Unmarshal(config, &s); err != nil {
		return nil, fmt.Errorf("core: job spec: %w", err)
	}
	job := &mapreduce.Job{}
	switch s.Kind {
	case kindNaive:
		job.NewMapper = func() mapreduce.Mapper { return &naiveMapper{sigma: s.Sigma} }
		job.NewReducer = func() mapreduce.Reducer { return &countReducer{tau: s.Tau} }
		if s.Combiner {
			job.NewCombiner = func() mapreduce.Reducer { return &countReducer{} }
		}
	case kindScan:
		job.NewMapper = func() mapreduce.Mapper {
			return &scanMapper{k: s.K, memoryBudget: s.DictMem}
		}
		job.NewReducer = func() mapreduce.Reducer { return &countReducer{tau: s.Tau} }
		if s.Combiner {
			job.NewCombiner = func() mapreduce.Reducer { return &countReducer{} }
		}
	case kindIndexScan:
		job.NewMapper = func() mapreduce.Mapper { return &indexScanMapper{k: s.K} }
		job.NewReducer = func() mapreduce.Reducer { return &indexMergeReducer{tau: s.Tau} }
	case kindIndexJoin:
		job.NewMapper = func() mapreduce.Mapper { return &indexJoinMapper{} }
		job.NewReducer = func() mapreduce.Reducer {
			return &indexJoinReducer{tau: s.Tau, budget: s.JoinMem}
		}
	case kindSuffixSigma:
		job.NewMapper = func() mapreduce.Mapper {
			return &suffixMapper{sigma: s.Sigma, kind: s.Agg}
		}
		job.Partition = FirstTermPartitioner
		job.Compare = encoding.CompareSeqBytesReverse
		job.NewReducer = func() mapreduce.Reducer {
			return &suffixSigmaReducer{tau: s.Tau, kind: s.Agg, mode: s.Select}
		}
		if s.Combiner {
			job.NewCombiner = func() mapreduce.Reducer { return &aggregateCombiner{kind: s.Agg} }
		}
	case kindSuffixHashmap:
		job.NewMapper = func() mapreduce.Mapper {
			return &suffixMapper{sigma: s.Sigma, kind: AggCount}
		}
		job.Partition = FirstTermPartitioner
		job.NewReducer = func() mapreduce.Reducer { return &suffixHashmapReducer{tau: s.Tau} }
		if s.Combiner {
			job.NewCombiner = func() mapreduce.Reducer { return &aggregateCombiner{kind: AggCount} }
		}
	case kindSuffixFilter:
		job.NewMapper = func() mapreduce.Mapper { return &reverseMapper{} }
		job.Partition = FirstTermPartitioner
		job.Compare = encoding.CompareSeqBytesReverse
		job.NewReducer = func() mapreduce.Reducer {
			return &prefixFilterReducer{mode: s.Select, kind: s.Agg}
		}
	case kindUnigrams:
		job.NewMapper = func() mapreduce.Mapper { return &unigramMapper{} }
		job.NewCombiner = func() mapreduce.Reducer { return &countReducer{} }
		job.NewReducer = func() mapreduce.Reducer { return &countReducer{tau: s.Tau} }
	case kindRewrite:
		job.NewMapper = func() mapreduce.Mapper { return &splitRewriteMapper{} }
	default:
		return nil, fmt.Errorf("core: unknown job kind %q", s.Kind)
	}
	return job, nil
}

// specJob constructs a runnable job from a jobSpec: the task callbacks
// come from buildCoreJob (the same path a worker process takes) and
// the runtime knobs from Params, with the serialized spec attached so
// any runner can ship the job to another process.
func (p Params) specJob(name string, s jobSpec) *mapreduce.Job {
	config, err := json.Marshal(s)
	if err != nil {
		panic(fmt.Sprintf("core: marshal job spec: %v", err)) // static struct, cannot fail
	}
	built, err := buildCoreJob(config)
	if err != nil {
		panic(fmt.Sprintf("core: rebuild own job spec: %v", err))
	}
	job := p.job(name)
	job.NewMapper = built.NewMapper
	job.NewCombiner = built.NewCombiner
	job.NewReducer = built.NewReducer
	job.Partition = built.Partition
	job.Compare = built.Compare
	job.GroupCompare = built.GroupCompare
	job.Spec = &mapreduce.Spec{Program: coreProgram, Config: config}
	return job
}
