package core

import (
	"os"
	"testing"

	"ngramstats/internal/mapreduce"
)

// TestMain wires hidden worker mode into the test binary: when the
// suite runs with NGRAMS_RUNNER=process, this binary is re-executed as
// the task worker for the jobs its own tests launch.
func TestMain(m *testing.M) {
	mapreduce.RunWorkerIfRequested()
	os.Exit(m.Run())
}
