package core

import (
	"context"
	"math/rand"
	"testing"

	"ngramstats/internal/encoding"
	"ngramstats/internal/sequence"
)

// TestMaximalRunningExample checks the Section VI-A example: with τ=3,
// σ=3 only ⟨a x b⟩ is maximal.
func TestMaximalRunningExample(t *testing.T) {
	p := testParams(t)
	p.Select = SelectMaximal
	run, err := Compute(context.Background(), runningExample(), SuffixSigma, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := run.Result.CountMap()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("maximal n-grams = %v, want only ⟨a x b⟩", got)
	}
	if got[keyOf(2, 0, 1)] != 3 {
		t.Fatalf("cf(⟨a x b⟩) = %d, want 3", got[keyOf(2, 0, 1)])
	}
	// Maximality costs one extra post-filtering job.
	if run.Jobs != 2 {
		t.Fatalf("jobs = %d, want 2", run.Jobs)
	}
}

// TestClosedRunningExample: closed n-grams keep ⟨a x b⟩ (cf 3) and also
// every n-gram whose frequency differs from all its super-sequences:
// ⟨x⟩:7, ⟨b⟩:5, ⟨x b⟩:4.
func TestClosedRunningExample(t *testing.T) {
	p := testParams(t)
	p.Select = SelectClosed
	run, err := Compute(context.Background(), runningExample(), SuffixSigma, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := run.Result.CountMap()
	if err != nil {
		t.Fatal(err)
	}
	want := MaximalOracle(BruteForce(runningExample(), 3, 3), 3, SelectClosed)
	if len(got) != len(want) {
		t.Fatalf("closed = %v, want %v", got, want)
	}
	for k, cf := range want {
		if got[k] != cf {
			t.Fatalf("closed cf mismatch for %x: %d vs %d", k, got[k], cf)
		}
	}
}

// TestMaximalClosedMatchOracleOnRandomCorpora property-tests the
// two-pass maximality/closedness filter against the brute-force
// oracle.
func TestMaximalClosedMatchOracleOnRandomCorpora(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 8; trial++ {
		col := randomCollection(rng, 5+rng.Intn(5), 3, 10, 3)
		tau := int64(2 + rng.Intn(3))
		sigma := 2 + rng.Intn(6)
		all := BruteForce(col, tau, sigma)
		for _, mode := range []SelectMode{SelectMaximal, SelectClosed} {
			want := MaximalOracle(all, tau, mode)
			p := Params{
				Tau: tau, Sigma: sigma, NumReducers: 3, InputSplits: 2,
				TempDir: t.TempDir(), Select: mode,
			}
			run, err := Compute(context.Background(), col, SuffixSigma, p)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, mode, err)
			}
			got, err := run.Result.CountMap()
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d %s (τ=%d σ=%d): %d n-grams, want %d\ngot  %v\nwant %v",
					trial, mode, tau, sigma, len(got), len(want), got, want)
			}
			for k, cf := range want {
				if got[k] != cf {
					s, _ := encoding.DecodeSeq([]byte(k))
					t.Fatalf("trial %d %s: cf(%v) = %d, want %d", trial, mode, s, got[k], cf)
				}
			}
		}
	}
}

// TestClosedReconstructsAllFrequencies verifies the paper's claim that
// omitted n-grams can be reconstructed from the closed set "even with
// their accurate collection frequency": cf(r) = max over closed s ⊒ r
// of cf(s).
func TestClosedReconstructsAllFrequencies(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	col := randomCollection(rng, 8, 2, 10, 3)
	tau, sigma := int64(2), 5
	all := BruteForce(col, tau, sigma)
	closed := MaximalOracle(all, tau, SelectClosed)
	for k, cf := range all {
		r, _ := encoding.DecodeSeq([]byte(k))
		var best int64
		for ck, ccf := range closed {
			s, _ := encoding.DecodeSeq([]byte(ck))
			if sequence.IsSubsequence(r, s) && ccf > best {
				best = ccf
			}
		}
		if best != cf {
			t.Fatalf("reconstruction of cf(%v): got %d, want %d", r, best, cf)
		}
	}
}

// TestMaximalIsSubsetOfClosed: every maximal n-gram is closed, and both
// are subsets of the full frequent set.
func TestMaximalIsSubsetOfClosed(t *testing.T) {
	rng := rand.New(rand.NewSource(204))
	col := randomCollection(rng, 10, 2, 12, 3)
	tau, sigma := int64(2), 6
	all := BruteForce(col, tau, sigma)
	maximal := MaximalOracle(all, tau, SelectMaximal)
	closed := MaximalOracle(all, tau, SelectClosed)
	for k := range maximal {
		if _, ok := closed[k]; !ok {
			t.Fatalf("maximal n-gram %x not closed", k)
		}
	}
	for k, cf := range closed {
		if all[k] != cf {
			t.Fatalf("closed n-gram %x has cf %d, want %d", k, cf, all[k])
		}
	}
	if len(maximal) > len(closed) || len(closed) > len(all) {
		t.Fatalf("sizes: maximal %d, closed %d, all %d", len(maximal), len(closed), len(all))
	}
}

// TestTimeSeriesAggregation checks the Section VI-B extension: per-year
// counts replace plain counts, and their totals equal the collection
// frequencies.
func TestTimeSeriesAggregation(t *testing.T) {
	col := runningExample() // docs in years 1990, 1991, 1992
	p := testParams(t)
	p.Aggregation = AggTimeSeries
	run, err := Compute(context.Background(), col, SuffixSigma, p)
	if err != nil {
		t.Fatal(err)
	}
	want := expectedRunningExample()
	n := 0
	err = run.Result.EachAggregate(func(s sequence.Seq, agg Aggregate) error {
		n++
		years, ok := TimeSeriesCounts(agg)
		if !ok {
			t.Fatalf("aggregate of %v is not a time series", s)
		}
		var total int64
		for y, c := range years {
			if y < 1990 || y > 1992 {
				t.Fatalf("n-gram %v has impossible year %d", s, y)
			}
			total += c
		}
		k := string(encoding.EncodeSeq(s))
		if total != want[k] {
			t.Fatalf("time series total of %v = %d, want %d", s, total, want[k])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(want) {
		t.Fatalf("time series n-grams = %d, want %d", n, len(want))
	}
	// Spot-check ⟨a x b⟩: occurs once per document, one per year.
	err = run.Result.EachAggregate(func(s sequence.Seq, agg Aggregate) error {
		if sequence.Equal(s, sequence.Seq{2, 0, 1}) {
			years, _ := TimeSeriesCounts(agg)
			for y := 1990; y <= 1992; y++ {
				if years[y] != 1 {
					t.Fatalf("⟨a x b⟩ year %d count = %d, want 1", y, years[y])
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTimeSeriesWithCombiner: combiners merge singleton cells; results
// must be identical with and without.
func TestTimeSeriesWithCombiner(t *testing.T) {
	col := runningExample()
	collect := func(combine bool) map[string]int64 {
		p := testParams(t)
		p.Aggregation = AggTimeSeries
		p.Combiner = combine
		run, err := Compute(context.Background(), col, SuffixSigma, p)
		if err != nil {
			t.Fatal(err)
		}
		m, err := run.Result.CountMap()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := collect(false), collect(true)
	if len(a) != len(b) {
		t.Fatalf("combiner changed result size: %d vs %d", len(a), len(b))
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("combiner changed cf of %x", k)
		}
	}
}

// TestDocIndexAggregation checks the inverted-index aggregation: the
// per-document counts of ⟨a x b⟩ are 1 in each of the three documents,
// and document frequencies are consistent.
func TestDocIndexAggregation(t *testing.T) {
	col := runningExample()
	p := testParams(t)
	p.Aggregation = AggDocIndex
	run, err := Compute(context.Background(), col, SuffixSigma, p)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	err = run.Result.EachAggregate(func(s sequence.Seq, agg Aggregate) error {
		counts, ok := DocIndexCounts(agg)
		if !ok {
			t.Fatalf("aggregate of %v is not a doc index", s)
		}
		df, _ := DocumentFrequency(agg)
		if df != int64(len(counts)) {
			t.Fatalf("df inconsistent for %v", s)
		}
		if sequence.Equal(s, sequence.Seq{2, 0, 1}) {
			seen++
			if len(counts) != 3 {
				t.Fatalf("⟨a x b⟩ in %d docs, want 3", len(counts))
			}
			for doc, c := range counts {
				if c != 1 {
					t.Fatalf("⟨a x b⟩ count in doc %d = %d, want 1", doc, c)
				}
			}
		}
		if sequence.Equal(s, sequence.Seq{0}) {
			seen++
			// ⟨x⟩: 3 in d1, 2 in d2, 2 in d3.
			if counts[1] != 3 || counts[2] != 2 || counts[3] != 2 {
				t.Fatalf("⟨x⟩ per-doc counts = %v", counts)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 2 {
		t.Fatalf("spot-check n-grams seen = %d, want 2", seen)
	}
}

// TestMaximalWithTimeSeries combines both extensions: maximality over
// time-series aggregates.
func TestMaximalWithTimeSeries(t *testing.T) {
	p := testParams(t)
	p.Select = SelectMaximal
	p.Aggregation = AggTimeSeries
	run, err := Compute(context.Background(), runningExample(), SuffixSigma, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := run.Result.CountMap()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[keyOf(2, 0, 1)] != 3 {
		t.Fatalf("maximal time-series result = %v", got)
	}
}

// TestHashmapVariantRejectsExtensions documents that the ablation
// variant supports neither maximality nor non-count aggregations.
func TestHashmapVariantRejectsExtensions(t *testing.T) {
	p := testParams(t)
	p.Select = SelectMaximal
	if _, err := Compute(context.Background(), runningExample(), SuffixSigmaNaive, p); err == nil {
		t.Fatal("expected error for maximality on hashmap variant")
	}
	p = testParams(t)
	p.Aggregation = AggTimeSeries
	if _, err := Compute(context.Background(), runningExample(), SuffixSigmaNaive, p); err == nil {
		t.Fatal("expected error for time series on hashmap variant")
	}
}

// TestDocumentFrequencyVsCollectionFrequency: df(s) ≤ cf(s) with
// equality iff no document contains s twice.
func TestDocumentFrequencyVsCollectionFrequency(t *testing.T) {
	col := runningExample()
	p := testParams(t)
	p.Tau = 1
	p.Aggregation = AggDocIndex
	run, err := Compute(context.Background(), col, SuffixSigma, p)
	if err != nil {
		t.Fatal(err)
	}
	err = run.Result.EachAggregate(func(s sequence.Seq, agg Aggregate) error {
		df, _ := DocumentFrequency(agg)
		cf := agg.Frequency()
		if df > cf {
			t.Fatalf("df(%v) = %d > cf = %d", s, df, cf)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
