package core

import (
	"context"
	"fmt"

	"ngramstats/internal/corpus"
	"ngramstats/internal/encoding"
	"ngramstats/internal/kvstore"
	"ngramstats/internal/mapreduce"
	"ngramstats/internal/sequence"
)

// computeAprioriScan runs APRIORI-SCAN (Algorithm 2): one distributed
// scan of the input per n-gram length k. The k-th scan emits only
// k-grams whose two constituent (k−1)-grams were found frequent by the
// previous scan, using the previous output as a pruning dictionary that
// is shipped to every task via side data (the distributed-cache pattern
// of Section III-A). Iteration stops after σ scans or when a scan
// produces no output — safe by the APRIORI principle.
func computeAprioriScan(ctx context.Context, col *corpus.Collection, p Params) (*Run, error) {
	drv := mapreduce.NewDriver()
	input, err := corpusInput(ctx, col, p, drv)
	if err != nil {
		return nil, err
	}
	var outputs []mapreduce.Dataset
	var dict []byte // frequent (k−1)-grams, length-prefixed
	for k := 1; k <= p.Sigma; k++ {
		k := k
		job := p.specJob(fmt.Sprintf("apriori-scan-k%d", k), jobSpec{
			Kind: kindScan, Tau: p.Tau, K: k,
			DictMem: p.DictionaryMemory, Combiner: p.Combiner,
		})
		job.Input = input
		job.SideData = map[string][]byte{"dict": dict}
		res, err := drv.Run(ctx, job)
		if err != nil {
			return nil, err
		}
		if res.Output.Records() == 0 {
			if err := res.Output.Release(); err != nil {
				return nil, err
			}
			break
		}
		outputs = append(outputs, res.Output)
		// Build the next iteration's dictionary from this output's keys.
		dict = dict[:0]
		for part := 0; part < res.Output.NumPartitions(); part++ {
			err := res.Output.Scan(part, func(key, value []byte) error {
				dict = encoding.AppendUvarint(dict, uint64(len(key)))
				dict = append(dict, key...)
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
	}
	var result mapreduce.Dataset
	if len(outputs) == 0 {
		result = mapreduce.NewMemDataset(nil)
	} else {
		result = mapreduce.ConcatDatasets(outputs...)
	}
	return &Run{
		Method:    AprioriScan,
		Result:    NewResultSet(result, AggCount),
		Counters:  drv.Aggregate,
		Wallclock: drv.Wallclock(),
		Jobs:      len(drv.JobResults),
	}, nil
}

// ngramDict is the frequent (k−1)-gram membership structure a scan
// mapper consults. Small dictionaries live in a hashset; beyond the
// memory budget they migrate to the disk-resident key-value store
// (Section V, "Key-Value Store"), whose cache absorbs the typically
// skewed lookups.
type ngramDict interface {
	contains(key []byte) (bool, error)
	close() error
}

type memDict map[string]struct{}

func (d memDict) contains(key []byte) (bool, error) {
	_, ok := d[string(key)]
	return ok, nil
}

func (d memDict) close() error { return nil }

type storeDict struct {
	store *kvstore.Store
}

func (d *storeDict) contains(key []byte) (bool, error) { return d.store.Contains(key) }

func (d *storeDict) close() error { return d.store.Close() }

// loadDict parses the side-data dictionary into a membership structure,
// choosing the representation by the memory budget.
func loadDict(data []byte, memoryBudget int, tempDir string) (ngramDict, error) {
	if len(data)*3 <= memoryBudget {
		d := make(memDict)
		for len(data) > 0 {
			l, n := encoding.Uvarint(data)
			if n <= 0 || int(l) > len(data)-n {
				return nil, fmt.Errorf("core: apriori-scan dictionary: %w", encoding.ErrCorrupt)
			}
			d[string(data[n:n+int(l)])] = struct{}{}
			data = data[n+int(l):]
		}
		return d, nil
	}
	store := kvstore.Open(kvstore.Options{MemoryBudget: memoryBudget, TempDir: tempDir})
	for len(data) > 0 {
		l, n := encoding.Uvarint(data)
		if n <= 0 || int(l) > len(data)-n {
			store.Close()
			return nil, fmt.Errorf("core: apriori-scan dictionary: %w", encoding.ErrCorrupt)
		}
		if err := store.Put(data[n:n+int(l)], nil); err != nil {
			store.Close()
			return nil, err
		}
		data = data[n+int(l):]
	}
	if err := store.Freeze(); err != nil {
		store.Close()
		return nil, err
	}
	return &storeDict{store: store}, nil
}

// scanMapper emits the k-grams of each sentence whose two constituent
// (k−1)-grams are frequent according to the dictionary.
type scanMapper struct {
	k            int
	memoryBudget int
	tempDir      string
	dict         ngramDict
	encBuf       []byte
	offs         []int
}

// Setup implements mapreduce.TaskSetup: it loads the pruning
// dictionary from the distributed cache (not needed for k = 1). The
// store's scratch directory is the task's, so a worker process keeps
// its spill files inside its own attempt directory.
func (m *scanMapper) Setup(tc *mapreduce.TaskContext) error {
	m.tempDir = tc.TempDir
	if m.k == 1 {
		return nil
	}
	data, ok := tc.SideData["dict"]
	if !ok {
		return fmt.Errorf("core: apriori-scan: missing dictionary side data")
	}
	var err error
	m.dict, err = loadDict(data, m.memoryBudget, m.tempDir)
	return err
}

// Cleanup implements mapreduce.TaskCleanup.
func (m *scanMapper) Cleanup(emit mapreduce.Emit) error {
	if m.dict != nil {
		return m.dict.close()
	}
	return nil
}

// Map implements mapreduce.Mapper.
func (m *scanMapper) Map(key, value []byte, emit mapreduce.Emit) error {
	return corpus.VisitSentences(value, func(s sequence.Seq) error {
		if len(s) < m.k {
			return nil
		}
		// Encode the sentence once with per-term byte offsets so every
		// k-gram and (k−1)-gram is a subslice.
		m.encBuf = m.encBuf[:0]
		m.offs = m.offs[:0]
		for _, t := range s {
			m.offs = append(m.offs, len(m.encBuf))
			m.encBuf = encoding.AppendUvarint(m.encBuf, uint64(t))
		}
		m.offs = append(m.offs, len(m.encBuf))
		for b := 0; b+m.k <= len(s); b++ {
			if m.k > 1 {
				left := m.encBuf[m.offs[b]:m.offs[b+m.k-1]]
				ok, err := m.dict.contains(left)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
				right := m.encBuf[m.offs[b+1]:m.offs[b+m.k]]
				ok, err = m.dict.contains(right)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
			}
			if err := emit(m.encBuf[m.offs[b]:m.offs[b+m.k]], unitCount); err != nil {
				return err
			}
		}
		return nil
	})
}
