package core

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"ngramstats/internal/mapreduce"
	"ngramstats/internal/synth"
)

// collectResult copies every partition's records of a run's dataset,
// in partition and record order, for byte-exact comparison.
func collectResult(t *testing.T, run *Run) [][]mapreduce.KV {
	t.Helper()
	d := run.Result.Dataset()
	out := make([][]mapreduce.KV, d.NumPartitions())
	for p := 0; p < d.NumPartitions(); p++ {
		err := d.Scan(p, func(k, v []byte) error {
			out[p] = append(out[p], mapreduce.KV{
				Key:   append([]byte(nil), k...),
				Value: append([]byte(nil), v...),
			})
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// equivalenceBackends are the alternate execution backends the golden
// matrix holds to the LocalRunner reference: every cell must be
// byte-identical whether tasks run as goroutines, worker OS processes,
// or net workers behind an HTTP coordinator.
var equivalenceBackends = []struct {
	name string
	mk   func() mapreduce.Runner
}{
	{"process", func() mapreduce.Runner { return &mapreduce.ProcessRunner{Workers: 2} }},
	{"net", func() mapreduce.Runner {
		return &mapreduce.NetRunner{Addr: "127.0.0.1:0", Workers: 2, LeaseTTL: 2 * time.Second}
	}},
}

// TestRunnerEquivalenceGoldenMatrix runs a fig7-style workload (synth
// NYT sample, σ=5, combiner on) for every method × aggregation cell
// under every alternate backend and asserts byte-identical result
// records plus equal record/n-gram counters against the LocalRunner.
// Only SUFFIX-σ consumes the aggregation; the other methods must be
// invariant to it, which the matrix verifies for free.
func TestRunnerEquivalenceGoldenMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns many worker processes")
	}
	col := synth.Generate(synth.NYTLike(90, 11))
	aggs := []AggregationKind{AggCount, AggTimeSeries, AggDocIndex}
	for _, m := range Methods() {
		for _, agg := range aggs {
			m, agg := m, agg
			t.Run(fmt.Sprintf("%s/%v", m, agg), func(t *testing.T) {
				mkParams := func(r mapreduce.Runner) Params {
					return Params{
						Tau:         5,
						Sigma:       5,
						NumReducers: 4,
						InputSplits: 4,
						Combiner:    true,
						Aggregation: agg,
						TempDir:     t.TempDir(),
						Runner:      r,
					}
				}
				local, err := Compute(context.Background(), col, m, mkParams(mapreduce.LocalRunner{}))
				if err != nil {
					t.Fatal(err)
				}
				if got := local.Counters.Get(mapreduce.CounterWorkerProcs); got != 0 {
					t.Fatalf("local run spawned %d worker processes", got)
				}
				lp := collectResult(t, local)

				for _, backend := range equivalenceBackends {
					alt, err := Compute(context.Background(), col, m, mkParams(backend.mk()))
					if err != nil {
						t.Fatalf("%s: %v", backend.name, err)
					}
					if got := alt.Counters.Get(mapreduce.CounterWorkerProcs); got == 0 {
						t.Fatalf("%s run spawned no worker processes (fell back to local?)", backend.name)
					}

					pp := collectResult(t, alt)
					if len(lp) != len(pp) {
						t.Fatalf("partitions: local %d, %s %d", len(lp), backend.name, len(pp))
					}
					for p := range lp {
						if len(lp[p]) != len(pp[p]) {
							t.Fatalf("partition %d: local %d records, %s %d", p, len(lp[p]), backend.name, len(pp[p]))
						}
						for i := range lp[p] {
							if !bytes.Equal(lp[p][i].Key, pp[p][i].Key) || !bytes.Equal(lp[p][i].Value, pp[p][i].Value) {
								t.Fatalf("partition %d record %d differs:\nlocal (%x, %x)\n%s (%x, %x)",
									p, i, lp[p][i].Key, lp[p][i].Value, backend.name, pp[p][i].Key, pp[p][i].Value)
							}
						}
					}
					if l, p := local.Result.Len(), alt.Result.Len(); l != p {
						t.Errorf("n-grams: local %d, %s %d", l, backend.name, p)
					}
					for _, name := range []string{
						mapreduce.CounterMapInputRecords, mapreduce.CounterMapOutputRecords,
						mapreduce.CounterReduceInputGroups, mapreduce.CounterReduceOutputRecs,
					} {
						if l, p := local.Counters.Get(name), alt.Counters.Get(name); l != p {
							t.Errorf("%s: local %d, %s %d", name, l, backend.name, p)
						}
					}
					if l, p := local.Jobs, alt.Jobs; l != p {
						t.Errorf("jobs launched: local %d, %s %d", l, backend.name, p)
					}
					if err := alt.Result.Release(); err != nil {
						t.Fatal(err)
					}
				}
				if err := local.Result.Release(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestProcessRunnerCrashRetryOnRealWorkload injects a first-attempt
// worker crash into map task 1 of a SUFFIX-σ run and asserts the job
// is retried, succeeds, and still matches the local result exactly.
func TestProcessRunnerCrashRetryOnRealWorkload(t *testing.T) {
	col := synth.Generate(synth.NYTLike(60, 23))
	mkParams := func(r mapreduce.Runner) Params {
		return Params{
			Tau: 3, Sigma: 4, NumReducers: 3, InputSplits: 3,
			Combiner: true, TempDir: t.TempDir(), Runner: r,
		}
	}
	local, err := Compute(context.Background(), col, SuffixSigma, mkParams(mapreduce.LocalRunner{}))
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv(mapreduce.WorkerCrashEnv, "map:1")
	proc, err := Compute(context.Background(), col, SuffixSigma, mkParams(&mapreduce.ProcessRunner{MaxAttempts: 3}))
	if err != nil {
		t.Fatalf("job did not survive a crashed worker: %v", err)
	}
	if got := proc.Counters.Get(mapreduce.CounterTasksRetried); got < 1 {
		t.Errorf("TASKS_RETRIED = %d, want >= 1", got)
	}
	lm, err := local.Result.CountMap()
	if err != nil {
		t.Fatal(err)
	}
	pm, err := proc.Result.CountMap()
	if err != nil {
		t.Fatal(err)
	}
	if len(lm) != len(pm) {
		t.Fatalf("n-grams: local %d, process-with-crash %d", len(lm), len(pm))
	}
	for k, v := range lm {
		if pm[k] != v {
			t.Fatalf("cf(%x): local %d, process-with-crash %d", k, v, pm[k])
		}
	}
}

// TestNetRunnerCrashRetryOnRealWorkload is the same drill against the
// net backend: the worker holding map task 1 is killed mid-job (its
// shuffle service dies with it), and the run must recover through
// lease expiry and retry while matching the local result exactly.
func TestNetRunnerCrashRetryOnRealWorkload(t *testing.T) {
	col := synth.Generate(synth.NYTLike(60, 23))
	mkParams := func(r mapreduce.Runner) Params {
		return Params{
			Tau: 3, Sigma: 4, NumReducers: 3, InputSplits: 3,
			Combiner: true, TempDir: t.TempDir(), Runner: r,
		}
	}
	local, err := Compute(context.Background(), col, SuffixSigma, mkParams(mapreduce.LocalRunner{}))
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv(mapreduce.WorkerCrashEnv, "map:1")
	netr, err := Compute(context.Background(), col, SuffixSigma, mkParams(&mapreduce.NetRunner{
		Addr: "127.0.0.1:0", Workers: 2, MaxAttempts: 3, LeaseTTL: 500 * time.Millisecond,
	}))
	if err != nil {
		t.Fatalf("job did not survive a crashed net worker: %v", err)
	}
	recovered := netr.Counters.Get(mapreduce.CounterTasksRetried) +
		netr.Counters.Get(mapreduce.CounterLeasesExpired)
	if recovered < 1 {
		t.Errorf("TASKS_RETRIED + LEASES_EXPIRED = %d, want >= 1", recovered)
	}
	lm, err := local.Result.CountMap()
	if err != nil {
		t.Fatal(err)
	}
	nm, err := netr.Result.CountMap()
	if err != nil {
		t.Fatal(err)
	}
	if len(lm) != len(nm) {
		t.Fatalf("n-grams: local %d, net-with-crash %d", len(lm), len(nm))
	}
	for k, v := range lm {
		if nm[k] != v {
			t.Fatalf("cf(%x): local %d, net-with-crash %d", k, v, nm[k])
		}
	}
}
