package core

import (
	"context"
	"fmt"

	"ngramstats/internal/corpus"
	"ngramstats/internal/encoding"
	"ngramstats/internal/mapreduce"
	"ngramstats/internal/sequence"
)

// documentSplitInput implements the "Document Splits" optimization of
// Section V: collection frequencies of individual terms are computed
// first, and every document is split at the infrequent terms it
// contains — safe by the APRIORI principle, since no frequent n-gram
// can contain an infrequent term. It runs two jobs (a unigram count
// and a map-only rewrite) and returns the rewritten corpus as the input
// for the method's main jobs.
func documentSplitInput(ctx context.Context, col *corpus.Collection, p Params, drv *mapreduce.Driver) (mapreduce.Input, error) {
	// Job 1: unigram collection frequencies, keeping terms with cf ≥ τ.
	countJob := p.specJob("docsplit-unigrams", jobSpec{Kind: kindUnigrams, Tau: p.Tau})
	countJob.Input = col.Input(p.InputSplits)
	countRes, err := drv.Run(ctx, countJob)
	if err != nil {
		return nil, fmt.Errorf("core: document splits: %w", err)
	}

	// Serialize the frequent-term set as side data (distributed cache).
	var side []byte
	for part := 0; part < countRes.Output.NumPartitions(); part++ {
		err := countRes.Output.Scan(part, func(k, v []byte) error {
			side = append(side, k...)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	if err := countRes.Output.Release(); err != nil {
		return nil, err
	}

	// Job 2 (map-only): rewrite every document, splitting sentences at
	// infrequent terms.
	rewriteJob := p.specJob("docsplit-rewrite", jobSpec{Kind: kindRewrite})
	rewriteJob.Input = col.Input(p.InputSplits)
	rewriteJob.SideData = map[string][]byte{"frequent-terms": side}
	rewriteRes, err := drv.Run(ctx, rewriteJob)
	if err != nil {
		return nil, fmt.Errorf("core: document splits: %w", err)
	}
	return mapreduce.DatasetInput(rewriteRes.Output), nil
}

// unigramMapper emits every term occurrence with a unit count.
type unigramMapper struct {
	keyBuf []byte
}

// Map implements mapreduce.Mapper.
func (m *unigramMapper) Map(key, value []byte, emit mapreduce.Emit) error {
	return corpus.VisitSentences(value, func(s sequence.Seq) error {
		for _, t := range s {
			m.keyBuf = encoding.AppendUvarint(m.keyBuf[:0], uint64(t))
			if err := emit(m.keyBuf, unitCount); err != nil {
				return err
			}
		}
		return nil
	})
}

// splitRewriteMapper rewrites documents by splitting sentences at terms
// absent from the frequent-term side data.
type splitRewriteMapper struct {
	frequent map[sequence.Term]struct{}
}

// Setup implements mapreduce.TaskSetup: it loads the frequent-term set
// from the distributed cache.
func (m *splitRewriteMapper) Setup(tc *mapreduce.TaskContext) error {
	side, ok := tc.SideData["frequent-terms"]
	if !ok {
		return fmt.Errorf("core: docsplit rewrite: missing side data")
	}
	m.frequent = make(map[sequence.Term]struct{})
	for len(side) > 0 {
		v, n := encoding.Uvarint(side)
		if n <= 0 {
			return fmt.Errorf("core: docsplit rewrite: %w", encoding.ErrCorrupt)
		}
		side = side[n:]
		m.frequent[sequence.Term(v)] = struct{}{}
	}
	return nil
}

// Map implements mapreduce.Mapper.
func (m *splitRewriteMapper) Map(key, value []byte, emit mapreduce.Emit) error {
	doc, err := corpus.DecodeDocValue(value)
	if err != nil {
		return err
	}
	out := corpus.Document{ID: 0, Year: doc.Year}
	for _, s := range doc.Sentences {
		start := 0
		for i := 0; i <= len(s); i++ {
			atSplit := i == len(s)
			if !atSplit {
				_, frequent := m.frequent[s[i]]
				atSplit = !frequent
			}
			if atSplit {
				if i > start {
					out.Sentences = append(out.Sentences, s[start:i])
				}
				start = i + 1
			}
		}
	}
	if len(out.Sentences) == 0 {
		return nil
	}
	return emit(key, corpus.EncodeDocValue(&out))
}
