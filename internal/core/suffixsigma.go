package core

import (
	"context"
	"fmt"

	"ngramstats/internal/corpus"
	"ngramstats/internal/encoding"
	"ngramstats/internal/mapreduce"
	"ngramstats/internal/sequence"
)

// computeSuffixSigma runs SUFFIX-σ (Algorithm 4), the paper's
// contribution. The mapper emits, at every position of a document, a
// single key-value pair whose key is the suffix starting there,
// truncated to σ terms — every n-gram is represented as a prefix of
// some emitted suffix. Suffixes are partitioned by their first term
// only, so one reducer sees every suffix that can represent n-grams
// starting with that term, and sorted in reverse lexicographic order,
// so an n-gram's collection frequency can be finalized and emitted as
// soon as the sort order guarantees no yet-unseen suffix represents it.
// The reducer needs just two stacks of depth ≤ σ (terms and lazily
// merged aggregates) instead of a dictionary of all n-grams.
//
// One MapReduce job suffices; with maximality/closedness selected, a
// second post-filtering job over reversed n-grams removes the
// non-suffix-maximal/closed ones (Section VI-A).
func computeSuffixSigma(ctx context.Context, col *corpus.Collection, p Params) (*Run, error) {
	drv := mapreduce.NewDriver()
	input, err := corpusInput(ctx, col, p, drv)
	if err != nil {
		return nil, err
	}
	job := p.specJob("suffix-sigma", jobSpec{
		Kind: kindSuffixSigma, Tau: p.Tau, Sigma: p.Sigma,
		Agg: p.Aggregation, Select: p.Select, Combiner: p.Combiner,
	})
	job.Input = input
	res, err := drv.Run(ctx, job)
	if err != nil {
		return nil, err
	}

	output := res.Output
	if p.Select != SelectAll {
		filtered, err := suffixFilterJob(ctx, drv, p, output)
		if err != nil {
			return nil, err
		}
		if err := output.Release(); err != nil {
			return nil, err
		}
		output = filtered
	}
	return &Run{
		Method:    SuffixSigma,
		Result:    NewResultSet(output, p.Aggregation),
		Counters:  drv.Aggregate,
		Wallclock: drv.Wallclock(),
		Jobs:      len(drv.JobResults),
	}, nil
}

// FirstTermPartitioner assigns an encoded sequence key to a reducer
// based on its first term only (the partition-function of Algorithm 4),
// guaranteeing that a single reducer receives all suffixes that begin
// with the same term. A key whose first term does not parse is
// reported as malformed: the runtime counts it in MALFORMED_KEYS and
// fails the job, instead of the old behaviour of silently routing it
// to partition 0.
func FirstTermPartitioner(key []byte, r int) int {
	t, err := encoding.FirstTerm(key)
	if err != nil {
		return mapreduce.MalformedKeyPartition
	}
	return int(mix32(uint32(t)) % uint32(r))
}

// mix32 is a splittable finalizer (Stafford variant 13) standing in for
// Java's Integer.hashCode with better dispersion of the small,
// frequency-ranked term identifiers across reducers.
func mix32(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

// suffixMapper emits at every position of every sentence the suffix
// starting there, truncated to σ terms, with the aggregation's
// per-occurrence value (a unit count by default).
type suffixMapper struct {
	sigma  int
	kind   AggregationKind
	encBuf []byte
	offs   []int
}

// Map implements mapreduce.Mapper.
func (m *suffixMapper) Map(key, value []byte, emit mapreduce.Emit) error {
	docID, err := corpus.DecodeDocKey(key)
	if err != nil {
		return err
	}
	year, err := corpus.DocYear(value)
	if err != nil {
		return err
	}
	val := mapValue(m.kind, &docMeta{docID: docID, year: year})
	return corpus.VisitSentences(value, func(s sequence.Seq) error {
		// Encode the sentence once, remembering each term's byte offset,
		// so every truncated suffix is a subslice.
		m.encBuf = m.encBuf[:0]
		m.offs = m.offs[:0]
		for _, t := range s {
			m.offs = append(m.offs, len(m.encBuf))
			m.encBuf = encoding.AppendUvarint(m.encBuf, uint64(t))
		}
		m.offs = append(m.offs, len(m.encBuf))
		for b := 0; b < len(s); b++ {
			end := b + m.sigma
			if end > len(s) || end < 0 { // < 0 guards σ = Unbounded overflow
				end = len(s)
			}
			if err := emit(m.encBuf[m.offs[b]:m.offs[end]], val); err != nil {
				return err
			}
		}
		return nil
	})
}

// aggregateCombiner merges the aggregate cells of equal suffixes
// map-side. Cell encodings are closed under merging, so combiner output
// feeds the reducer unchanged.
type aggregateCombiner struct {
	kind AggregationKind
}

// Reduce implements mapreduce.Reducer.
func (c *aggregateCombiner) Reduce(key []byte, values *mapreduce.Values, emit mapreduce.Emit) error {
	cell := newAggregate(c.kind)
	for values.Next() {
		if err := cell.Add(values.Value()); err != nil {
			return err
		}
	}
	return emit(key, cell.Encode())
}

// suffixSigmaReducer is the reduce-function of Algorithm 4: it keeps a
// stack of terms (the prefix of the current suffix) and a parallel
// stack of aggregate cells, maintaining the invariant that the cells,
// summed from the top down to position i, reflect how often the n-gram
// terms[0..i] has been seen so far. Processing a suffix pops stack
// entries no longer on the current path — emitting them if frequent,
// since the reverse lexicographic order guarantees no later suffix can
// represent them — and pushes the new path with a fresh cell per term.
type suffixSigmaReducer struct {
	tau  int64
	kind AggregationKind
	mode SelectMode

	terms sequence.Seq
	cells []Aggregate
	cur   sequence.Seq

	// Prefix-maximality/closedness filter state (Section VI-A): the last
	// n-gram actually emitted and its frequency.
	lastEmitted sequence.Seq
	lastCF      int64
	haveLast    bool

	keyBuf []byte
}

// Reduce implements mapreduce.Reducer.
func (r *suffixSigmaReducer) Reduce(key []byte, values *mapreduce.Values, emit mapreduce.Emit) error {
	var err error
	r.cur, err = encoding.DecodeSeqInto(r.cur, key)
	if err != nil {
		return err
	}
	cell := newAggregate(r.kind)
	for values.Next() {
		if err := cell.Add(values.Value()); err != nil {
			return err
		}
	}
	return r.process(r.cur, cell, emit)
}

// Cleanup implements mapreduce.TaskCleanup: it flushes the stacks by
// processing a virtual empty suffix, mirroring the cleanup() of
// Algorithm 4.
func (r *suffixSigmaReducer) Cleanup(emit mapreduce.Emit) error {
	return r.process(nil, nil, emit)
}

func (r *suffixSigmaReducer) process(s sequence.Seq, cell Aggregate, emit mapreduce.Emit) error {
	lcp := sequence.LCP(s, r.terms)
	// Pop stack entries that are not prefixes of s; their frequencies
	// are final.
	for len(r.terms) > lcp {
		top := r.cells[len(r.cells)-1]
		if top.Frequency() >= r.tau {
			if err := r.emitNGram(r.terms, top, emit); err != nil {
				return err
			}
		}
		if len(r.cells) > 1 {
			// Lazy aggregation: fold the popped count into the parent.
			r.cells[len(r.cells)-2].Merge(top)
		}
		r.terms = r.terms[:len(r.terms)-1]
		r.cells = r.cells[:len(r.cells)-1]
	}
	if cell == nil {
		return nil // cleanup flush
	}
	if len(r.terms) == len(s) {
		// s equals the stack contents (it is a prefix of the previous
		// suffix): account its occurrences directly.
		if len(s) > 0 {
			r.cells[len(r.cells)-1].Merge(cell)
		}
		return nil
	}
	// Push the diverging rest of s; only the complete suffix carries the
	// observed occurrences.
	for i := len(r.terms); i < len(s); i++ {
		r.terms = append(r.terms, s[i])
		if i == len(s)-1 {
			r.cells = append(r.cells, cell)
		} else {
			r.cells = append(r.cells, newAggregate(r.kind))
		}
	}
	return nil
}

func (r *suffixSigmaReducer) emitNGram(s sequence.Seq, cell Aggregate, emit mapreduce.Emit) error {
	cf := cell.Frequency()
	if r.haveLast && sequence.IsPrefix(s, r.lastEmitted) {
		switch r.mode {
		case SelectMaximal:
			// s has a frequent extension (the last emitted n-gram): not
			// prefix-maximal.
			return nil
		case SelectClosed:
			if cf == r.lastCF {
				return nil // same-frequency extension exists: not prefix-closed
			}
		}
	}
	r.keyBuf = encoding.AppendSeq(r.keyBuf[:0], s)
	if err := emit(r.keyBuf, cell.Encode()); err != nil {
		return err
	}
	if r.mode != SelectAll {
		r.lastEmitted = append(r.lastEmitted[:0], s...)
		r.lastCF = cf
		r.haveLast = true
	}
	return nil
}

// computeSuffixSigmaHashmap is the ablation variant the paper sketches
// before introducing the stack scheme ("One way to accomplish this
// would be to enumerate all prefixes of a received suffix and aggregate
// their collection frequencies in main memory (e.g., using a hashmap)").
// It shares SUFFIX-σ's mapper and partitioner but uses the default sort
// order and keeps one hashmap entry per distinct n-gram in the
// partition, emitting everything in cleanup — the memory-hungry
// behaviour SUFFIX-σ is designed to avoid.
func computeSuffixSigmaHashmap(ctx context.Context, col *corpus.Collection, p Params) (*Run, error) {
	if p.Select != SelectAll {
		return nil, fmt.Errorf("core: %s does not support maximality/closedness", SuffixSigmaNaive)
	}
	if p.Aggregation != AggCount {
		return nil, fmt.Errorf("core: %s only supports occurrence counting", SuffixSigmaNaive)
	}
	drv := mapreduce.NewDriver()
	input, err := corpusInput(ctx, col, p, drv)
	if err != nil {
		return nil, err
	}
	job := p.specJob("suffix-sigma-hashmap", jobSpec{
		Kind: kindSuffixHashmap, Tau: p.Tau, Sigma: p.Sigma, Combiner: p.Combiner,
	})
	job.Input = input
	res, err := drv.Run(ctx, job)
	if err != nil {
		return nil, err
	}
	return &Run{
		Method:    SuffixSigmaNaive,
		Result:    NewResultSet(res.Output, AggCount),
		Counters:  drv.Aggregate,
		Wallclock: drv.Wallclock(),
		Jobs:      len(drv.JobResults),
	}, nil
}

// suffixHashmapReducer aggregates every prefix of every received suffix
// in a hashmap and emits the frequent ones on cleanup.
type suffixHashmapReducer struct {
	tau    int64
	counts map[string]int64
	cur    sequence.Seq
	valBuf []byte
}

// Setup implements mapreduce.TaskSetup.
func (r *suffixHashmapReducer) Setup(tc *mapreduce.TaskContext) error {
	r.counts = make(map[string]int64)
	return nil
}

// Reduce implements mapreduce.Reducer.
func (r *suffixHashmapReducer) Reduce(key []byte, values *mapreduce.Values, emit mapreduce.Emit) error {
	var total int64
	for values.Next() {
		v, n := encoding.Uvarint(values.Value())
		if n <= 0 {
			return encoding.ErrCorrupt
		}
		total += int64(v)
	}
	// Every prefix of the suffix is an n-gram it represents.
	rest := key
	prefixLen := 0
	for len(rest) > 0 {
		_, n := encoding.Uvarint(rest)
		if n <= 0 {
			return encoding.ErrCorrupt
		}
		prefixLen += n
		rest = rest[n:]
		r.counts[string(key[:prefixLen])] += total
	}
	return nil
}

// Cleanup implements mapreduce.TaskCleanup.
func (r *suffixHashmapReducer) Cleanup(emit mapreduce.Emit) error {
	for k, cf := range r.counts {
		if cf >= r.tau {
			r.valBuf = encoding.AppendUvarint(r.valBuf[:0], uint64(cf))
			if err := emit([]byte(k), r.valBuf); err != nil {
				return err
			}
		}
	}
	return nil
}
