package core

// Tests for the measured shuffle transfer counters and the block
// codec: the block-framed, front-coded run format must beat the flat
// format's size on SUFFIX-σ's suffix keys by a wide margin (the
// acceptance bar is a ≥25% drop on the fig4 default workload), the
// read side must account exactly what was written, and every codec
// setting must leave n-gram output bit-identical.

import (
	"context"
	"testing"

	"ngramstats/internal/extsort"
	"ngramstats/internal/mapreduce"
	"ngramstats/internal/synth"
)

func fig4Params(t *testing.T, codec extsort.Codec) Params {
	t.Helper()
	return Params{
		Tau:          5,
		Sigma:        5,
		NumReducers:  8,
		InputSplits:  16,
		TempDir:      t.TempDir(),
		Combiner:     true,
		ShuffleCodec: codec,
	}
}

// TestSuffixSigmaMeasuredTransfer runs SUFFIX-σ on a fig4-default-like
// workload and checks the measured transfer counters: nonzero, read
// equals written (every sealed run fully drained), and written at most
// 75% of what the flat varint-framed format would have shipped — the
// ≥25% shuffle-volume drop the block format exists for. At σ=5 every
// shuffle key and value is under 128 bytes, so the flat format's size
// is exactly the logical key+value bytes plus two framing varints per
// record (here every shuffle record is a combiner emission).
func TestSuffixSigmaMeasuredTransfer(t *testing.T) {
	col := synth.Generate(synth.NYTLike(250, 42))
	run, err := Compute(context.Background(), col, SuffixSigma, fig4Params(t, extsort.CodecRaw))
	if err != nil {
		t.Fatal(err)
	}
	defer run.Result.Release()

	written := run.ShuffleBytesWritten()
	read := run.ShuffleBytesRead()
	logical := run.Counters.Get(mapreduce.CounterReduceShuffleBytes)
	records := run.Counters.Get(mapreduce.CounterCombineOutputRecs)
	flat := logical + 2*records
	t.Logf("shuffle bytes: written=%d read=%d flat-format=%d (%.1f%% of flat)",
		written, read, flat, 100*float64(written)/float64(flat))
	if written == 0 || logical == 0 || records == 0 {
		t.Fatalf("no measured transfer: written=%d logical=%d records=%d", written, logical, records)
	}
	if read != written {
		t.Fatalf("read %d bytes but wrote %d; merge accounting is off", read, written)
	}
	if written > flat*3/4 {
		t.Fatalf("block-format transfer %d exceeds 75%% of the flat format's %d bytes: below the 25%% reduction bar",
			written, flat)
	}
}

// TestShuffleCodecIdenticalOutput: flate-compressed shuffle blocks
// must produce bit-identical n-gram output to raw blocks, for both the
// suffix method (front-coding-friendly keys) and NAÏVE (codec-friendly
// values), while never increasing the measured transfer.
func TestShuffleCodecIdenticalOutput(t *testing.T) {
	col := synth.Generate(synth.NYTLike(120, 7))
	for _, m := range []Method{SuffixSigma, Naive} {
		t.Run(string(m), func(t *testing.T) {
			raw, err := Compute(context.Background(), col, m, fig4Params(t, extsort.CodecRaw))
			if err != nil {
				t.Fatal(err)
			}
			defer raw.Result.Release()
			flate, err := Compute(context.Background(), col, m, fig4Params(t, extsort.CodecFlate))
			if err != nil {
				t.Fatal(err)
			}
			defer flate.Result.Release()

			want, err := raw.Result.CountMap()
			if err != nil {
				t.Fatal(err)
			}
			got, err := flate.Result.CountMap()
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("flate produced %d n-grams, raw %d", len(got), len(want))
			}
			for k, cf := range want {
				if got[k] != cf {
					t.Fatalf("cf(%x): flate %d, raw %d", k, got[k], cf)
				}
			}
			// Per-block fallback to raw guarantees flate never inflates.
			if fw, rw := flate.ShuffleBytesWritten(), raw.ShuffleBytesWritten(); fw > rw {
				t.Fatalf("flate transfer %d exceeds raw transfer %d", fw, rw)
			}
			t.Logf("transfer: raw=%d flate=%d", raw.ShuffleBytesWritten(), flate.ShuffleBytesWritten())
		})
	}
}

// TestMalformedKeyFailsJob: a job whose partitioner reports malformed
// keys must fail with the MALFORMED_KEYS tally instead of silently
// routing the keys to partition 0.
func TestMalformedKeyFailsJob(t *testing.T) {
	job := &mapreduce.Job{
		Name:  "malformed-keys",
		Input: mapreduce.SliceInput([]mapreduce.KV{{Key: []byte("k"), Value: []byte("v")}}, 1),
		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapperFunc(func(key, value []byte, emit mapreduce.Emit) error {
				// 0x80 is a truncated varint: no valid first term.
				if err := emit([]byte{0x80}, []byte{1}); err != nil {
					return err
				}
				return emit([]byte{0x81}, []byte{1})
			})
		},
		NewReducer: func() mapreduce.Reducer {
			return mapreduce.ReducerFunc(func(key []byte, values *mapreduce.Values, emit mapreduce.Emit) error {
				return nil
			})
		},
		Partition:   FirstTermPartitioner,
		NumReducers: 2,
		TempDir:     t.TempDir(),
	}
	_, err := mapreduce.Run(context.Background(), job)
	if err == nil {
		t.Fatal("job with malformed keys succeeded")
	}
	t.Logf("got expected failure: %v", err)
}
