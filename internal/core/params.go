// Package core implements the paper's methods for computing n-gram
// statistics in MapReduce: NAÏVE (Algorithm 1), APRIORI-SCAN
// (Algorithm 2), APRIORI-INDEX (Algorithm 3), and the paper's
// contribution SUFFIX-σ (Algorithm 4), together with the implementation
// techniques of Section V (document splits, sequence encoding, combiner
// use, key-value stores for dictionary/posting buffering) and the
// extensions of Section VI (maximality/closedness, aggregations beyond
// occurrence counting).
//
// All methods solve the same problem: given a document collection D, a
// minimum collection frequency τ and a maximum length σ, identify every
// n-gram s with cf(s) ≥ τ and |s| ≤ σ, where cf is the total number of
// occurrences across documents. Sentence boundaries act as barriers:
// no n-gram spans a sentence (Section VII-B).
package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"ngramstats/internal/corpus"
	"ngramstats/internal/encoding"
	"ngramstats/internal/extsort"
	"ngramstats/internal/mapreduce"
	"ngramstats/internal/sequence"
)

// Method selects one of the implemented algorithms.
type Method string

// The four methods evaluated in the paper (Section VII), plus an
// ablation variant of SUFFIX-σ that aggregates with an in-reducer
// hashmap instead of the reverse-lexicographic two-stack scheme
// (the "one way to accomplish this" strawman of Section IV).
const (
	Naive            Method = "naive"
	AprioriScan      Method = "apriori-scan"
	AprioriIndex     Method = "apriori-index"
	SuffixSigma      Method = "suffix-sigma"
	SuffixSigmaNaive Method = "suffix-sigma-hashmap"
)

// Methods lists the paper's four methods in presentation order.
func Methods() []Method {
	return []Method{Naive, AprioriScan, AprioriIndex, SuffixSigma}
}

// methodImpls is the dispatch table behind Compute and ValidMethod —
// the single list a new method must be added to.
var methodImpls = map[Method]func(context.Context, *corpus.Collection, Params) (*Run, error){
	Naive:            computeNaive,
	AprioriScan:      computeAprioriScan,
	AprioriIndex:     computeAprioriIndex,
	SuffixSigma:      computeSuffixSigma,
	SuffixSigmaNaive: computeSuffixSigmaHashmap,
}

// ValidMethod reports whether Compute can dispatch m.
func ValidMethod(m Method) bool {
	_, ok := methodImpls[m]
	return ok
}

// SelectMode restricts which n-grams are produced (Section VI-A).
type SelectMode int

const (
	// SelectAll keeps every n-gram with cf ≥ τ and |s| ≤ σ.
	SelectAll SelectMode = iota
	// SelectMaximal keeps only maximal n-grams: no frequent
	// super-sequence exists.
	SelectMaximal
	// SelectClosed keeps only closed n-grams: no super-sequence with the
	// same collection frequency exists.
	SelectClosed
)

func (m SelectMode) String() string {
	switch m {
	case SelectMaximal:
		return "maximal"
	case SelectClosed:
		return "closed"
	default:
		return "all"
	}
}

// Unbounded is the σ value representing no length restriction (σ = ∞).
const Unbounded = math.MaxInt32

// Params configures a method run.
type Params struct {
	// Tau is the minimum collection frequency τ (≥ 1).
	Tau int64
	// Sigma is the maximum n-gram length σ; use Unbounded for σ = ∞.
	Sigma int
	// NumReducers is the number of reduce partitions per job.
	NumReducers int
	// MapSlots and ReduceSlots bound task concurrency (Section VII-H).
	MapSlots, ReduceSlots int
	// InputSplits is the number of map tasks over the corpus.
	InputSplits int
	// TempDir is the scratch directory for shuffle spills.
	TempDir string
	// DocSplit enables splitting documents at infrequent terms before
	// the main computation (Section V, "Document Splits").
	DocSplit bool
	// Combiner enables map-side local aggregation where applicable
	// (Section V, "Hadoop-Specific Optimizations").
	Combiner bool
	// K is the length up to which APRIORI-INDEX builds its index by
	// scanning (Algorithm 3); beyond K it joins posting lists. The
	// paper's calibrated setting is 4.
	K int
	// Select restricts output to maximal or closed n-grams (SUFFIX-σ
	// only; Section VI-A).
	Select SelectMode
	// Aggregation selects what is aggregated per n-gram (SUFFIX-σ only;
	// Section VI-B). Default is occurrence counting.
	Aggregation AggregationKind
	// DictionaryMemory bounds the in-memory dictionary of frequent
	// (k−1)-grams in APRIORI-SCAN; beyond it the dictionary migrates to
	// a disk-resident key-value store (Section V, "Key-Value Store").
	// Zero selects 64 MiB.
	DictionaryMemory int
	// JoinMemory bounds the buffered posting lists per reduce group in
	// APRIORI-INDEX's join; beyond it they spill to disk (Section III-B).
	// Zero selects 64 MiB.
	JoinMemory int
	// ShuffleCodec selects optional per-block compression of shuffle
	// runs on top of the run format's front-coding (extsort.CodecRaw by
	// default). extsort.CodecFlate trades CPU for smaller transfer and
	// suits NAÏVE/APRIORI runs whose values compress well.
	ShuffleCodec extsort.Codec
	// Runner selects the execution backend for every MapReduce job the
	// method launches: mapreduce.LocalRunner (in-process goroutines), a
	// mapreduce.ProcessRunner (one worker OS process per task), or a
	// mapreduce.NetRunner (workers leased over HTTP, with heartbeats,
	// retry, and a shuffle-transfer service). Nil selects
	// mapreduce.DefaultRunner, which honors the NGRAMS_RUNNER
	// environment variable ("local", "process", "net://host:port", or
	// any scheme registered via mapreduce.RegisterRunner).
	Runner mapreduce.Runner
	// Progress, if non-nil, receives structured lifecycle events from
	// every MapReduce job the method launches: job and phase starts,
	// per-task completions, and final summaries, plus live handles on
	// each job's counters and measured shuffle transfer. It replaces the
	// earlier free-form Logf hook; wrap a printf-style logger with
	// mapreduce.LogProgress for log-line output.
	Progress mapreduce.Progress
}

func (p Params) withDefaults() Params {
	if p.Tau < 1 {
		p.Tau = 1
	}
	if p.Sigma <= 0 {
		p.Sigma = Unbounded
	}
	if p.InputSplits <= 0 {
		p.InputSplits = 16
	}
	if p.K <= 0 {
		p.K = 4
	}
	if p.DictionaryMemory <= 0 {
		p.DictionaryMemory = 64 << 20
	}
	if p.JoinMemory <= 0 {
		p.JoinMemory = 64 << 20
	}
	return p
}

func (p Params) job(name string) *mapreduce.Job {
	return &mapreduce.Job{
		Name:         name,
		NumReducers:  p.NumReducers,
		MapSlots:     p.MapSlots,
		ReduceSlots:  p.ReduceSlots,
		TempDir:      p.TempDir,
		ShuffleCodec: p.ShuffleCodec,
		Runner:       p.Runner,
		Progress:     p.Progress,
	}
}

// Run is the outcome of a method execution.
type Run struct {
	// Method is the algorithm that ran.
	Method Method
	// Result is the computed n-gram statistics.
	Result *ResultSet
	// Counters aggregates the Hadoop-style counters over every job the
	// method launched, the way the paper reports bytes/records
	// (Section VII-A, measures b and c).
	Counters *mapreduce.Counters
	// Wallclock is the total elapsed time across all jobs, including
	// driver work between jobs (measure a).
	Wallclock time.Duration
	// Jobs is the number of MapReduce jobs launched.
	Jobs int
}

// BytesTransferred returns the paper's measure (b): MAP_OUTPUT_BYTES
// aggregated over all jobs.
func (r *Run) BytesTransferred() int64 {
	return r.Counters.Get(mapreduce.CounterMapOutputBytes)
}

// RecordsTransferred returns the paper's measure (c):
// MAP_OUTPUT_RECORDS aggregated over all jobs.
func (r *Run) RecordsTransferred() int64 {
	return r.Counters.Get(mapreduce.CounterMapOutputRecords)
}

// ShuffleBytesWritten returns the measured shuffle transfer aggregated
// over all jobs: encoded run-format bytes map tasks handed to the
// reduce side (SHUFFLE_BYTES_WRITTEN), after front-coding and any
// block codec — the real counterpart of the paper's "bytes
// transferred" rather than the logical key+value estimate.
func (r *Run) ShuffleBytesWritten() int64 {
	return r.Counters.Get(mapreduce.CounterShuffleBytesWritten)
}

// ShuffleBytesRead returns the encoded run-format bytes reduce-side
// merges consumed, aggregated over all jobs. On fully drained jobs it
// equals ShuffleBytesWritten.
func (r *Run) ShuffleBytesRead() int64 {
	return r.Counters.Get(mapreduce.CounterShuffleBytesRead)
}

// ResultSet is a computed set of n-gram statistics backed by a job
// output dataset of (encoded n-gram, encoded aggregate) records.
type ResultSet struct {
	data mapreduce.Dataset
	kind AggregationKind
}

// NewResultSet wraps a dataset of (encoded n-gram, aggregate) records.
func NewResultSet(d mapreduce.Dataset, kind AggregationKind) *ResultSet {
	return &ResultSet{data: d, kind: kind}
}

// Kind returns the aggregation the results carry.
func (r *ResultSet) Kind() AggregationKind { return r.kind }

// Len returns the number of n-grams in the result.
func (r *ResultSet) Len() int64 { return r.data.Records() }

// Dataset exposes the raw backing dataset.
func (r *ResultSet) Dataset() mapreduce.Dataset { return r.data }

// Each calls fn for every (n-gram, collection frequency) pair. The
// sequence passed to fn is freshly allocated and may be retained.
func (r *ResultSet) Each(fn func(s sequence.Seq, cf int64) error) error {
	for p := 0; p < r.data.NumPartitions(); p++ {
		err := r.data.Scan(p, func(k, v []byte) error {
			s, err := encoding.DecodeSeq(k)
			if err != nil {
				return err
			}
			cf, err := decodeFrequency(r.kind, v)
			if err != nil {
				return err
			}
			return fn(s, cf)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// EachAggregate calls fn for every (n-gram, decoded aggregate) pair.
func (r *ResultSet) EachAggregate(fn func(s sequence.Seq, agg Aggregate) error) error {
	for p := 0; p < r.data.NumPartitions(); p++ {
		err := r.data.Scan(p, func(k, v []byte) error {
			s, err := encoding.DecodeSeq(k)
			if err != nil {
				return err
			}
			agg, err := decodeAggregate(r.kind, v)
			if err != nil {
				return err
			}
			return fn(s, agg)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// CountMap collects the result into a map keyed by the string form of
// the encoded n-gram. Intended for tests and small results.
func (r *ResultSet) CountMap() (map[string]int64, error) {
	m := make(map[string]int64)
	err := r.Each(func(s sequence.Seq, cf int64) error {
		m[string(encoding.EncodeSeq(s))] = cf
		return nil
	})
	return m, err
}

// Release frees the backing dataset.
func (r *ResultSet) Release() error { return r.data.Release() }

// Compute runs the selected method over the collection.
func Compute(ctx context.Context, col *corpus.Collection, method Method, p Params) (*Run, error) {
	impl, ok := methodImpls[method]
	if !ok {
		return nil, fmt.Errorf("core: unknown method %q", method)
	}
	return impl(ctx, col, p.withDefaults())
}

// corpusInput prepares the input of a method's main jobs: the raw
// collection, or the document-split rewrite of it when p.DocSplit is
// set. It returns the input, the number of pre-processing jobs
// launched, and their aggregated counters (folded into the method's
// driver by the caller).
func corpusInput(ctx context.Context, col *corpus.Collection, p Params, drv *mapreduce.Driver) (mapreduce.Input, error) {
	if !p.DocSplit {
		return col.Input(p.InputSplits), nil
	}
	return documentSplitInput(ctx, col, p, drv)
}
