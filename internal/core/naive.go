package core

import (
	"context"

	"ngramstats/internal/corpus"
	"ngramstats/internal/encoding"
	"ngramstats/internal/mapreduce"
	"ngramstats/internal/sequence"
)

// computeNaive runs NAÏVE (Algorithm 1): the straightforward extension
// of word counting. The mapper emits every n-gram of length at most σ
// once per occurrence; the reducer determines collection frequencies
// and keeps those of at least τ. With p.Combiner, map-side local
// aggregation is applied (the "tweak" of Section V); the paper notes
// this is essentially the method Brants et al. used at Google for
// training large language models.
func computeNaive(ctx context.Context, col *corpus.Collection, p Params) (*Run, error) {
	drv := mapreduce.NewDriver()
	input, err := corpusInput(ctx, col, p, drv)
	if err != nil {
		return nil, err
	}
	job := p.specJob("naive", jobSpec{Kind: kindNaive, Tau: p.Tau, Sigma: p.Sigma, Combiner: p.Combiner})
	job.Input = input
	res, err := drv.Run(ctx, job)
	if err != nil {
		return nil, err
	}
	return &Run{
		Method:    Naive,
		Result:    NewResultSet(res.Output, AggCount),
		Counters:  drv.Aggregate,
		Wallclock: drv.Wallclock(),
		Jobs:      len(drv.JobResults),
	}, nil
}

// naiveMapper emits every n-gram of length ≤ σ with a unit count, one
// key-value pair per occurrence.
type naiveMapper struct {
	sigma  int
	keyBuf []byte
}

var unitCount = encoding.AppendUvarint(nil, 1)

// Map implements mapreduce.Mapper.
func (m *naiveMapper) Map(key, value []byte, emit mapreduce.Emit) error {
	return corpus.VisitSentences(value, func(s sequence.Seq) error {
		// Enumerate n-grams by begin offset, extending the encoded key
		// incrementally so each n-gram costs one varint append.
		for b := 0; b < len(s); b++ {
			m.keyBuf = m.keyBuf[:0]
			max := b + m.sigma
			if max > len(s) || max < 0 { // < 0 guards σ = Unbounded overflow
				max = len(s)
			}
			for e := b; e < max; e++ {
				m.keyBuf = encoding.AppendUvarint(m.keyBuf, uint64(s[e]))
				if err := emit(m.keyBuf, unitCount); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// countReducer sums unit (or pre-combined) counts and emits the n-gram
// with its collection frequency when it reaches tau. A zero tau makes
// it a pure aggregator, the combiner configuration.
type countReducer struct {
	tau    int64
	valBuf []byte
}

// Reduce implements mapreduce.Reducer.
func (r *countReducer) Reduce(key []byte, values *mapreduce.Values, emit mapreduce.Emit) error {
	var total int64
	for values.Next() {
		v, n := encoding.Uvarint(values.Value())
		if n <= 0 {
			return encoding.ErrCorrupt
		}
		total += int64(v)
	}
	if total >= r.tau {
		r.valBuf = encoding.AppendUvarint(r.valBuf[:0], uint64(total))
		return emit(key, r.valBuf)
	}
	return nil
}

// BruteForce computes the exact n-gram statistics of a collection by
// direct enumeration in memory, respecting sentence barriers. It is the
// reference oracle the tests compare every method against, and is also
// usable for small collections in its own right.
func BruteForce(col *corpus.Collection, tau int64, sigma int) map[string]int64 {
	if sigma <= 0 {
		sigma = Unbounded
	}
	counts := make(map[string]int64)
	var keyBuf []byte
	for i := range col.Docs {
		for _, s := range col.Docs[i].Sentences {
			for b := 0; b < len(s); b++ {
				keyBuf = keyBuf[:0]
				max := b + sigma
				if max > len(s) || max < 0 {
					max = len(s)
				}
				for e := b; e < max; e++ {
					keyBuf = encoding.AppendUvarint(keyBuf, uint64(s[e]))
					counts[string(keyBuf)]++
				}
			}
		}
	}
	for k, v := range counts {
		if v < tau {
			delete(counts, k)
		}
	}
	return counts
}
