package core

import (
	"context"
	"fmt"

	"ngramstats/internal/encoding"
	"ngramstats/internal/mapreduce"
	"ngramstats/internal/sequence"
)

// suffixFilterJob is the post-filtering MapReduce job of Section VI-A.
// Its input is SUFFIX-σ output restricted to prefix-maximal (or
// prefix-closed) n-grams. The mapper reverses every n-gram; reversed
// n-grams are partitioned by first term and sorted in reverse
// lexicographic order, reusing SUFFIX-σ's machinery; the reducer keeps
// only the prefix-maximal/closed reversed n-grams — i.e. the
// suffix-maximal/closed originals — and restores the original order
// before emitting.
func suffixFilterJob(ctx context.Context, drv *mapreduce.Driver, p Params, in mapreduce.Dataset) (mapreduce.Dataset, error) {
	job := p.specJob(fmt.Sprintf("suffix-filter-%s", p.Select), jobSpec{
		Kind: kindSuffixFilter, Select: p.Select, Agg: p.Aggregation,
	})
	job.Input = mapreduce.DatasetInput(in)
	res, err := drv.Run(ctx, job)
	if err != nil {
		return nil, fmt.Errorf("core: suffix filter: %w", err)
	}
	return res.Output, nil
}

// reverseMapper reverses the n-gram key, keeping the value.
type reverseMapper struct {
	cur    sequence.Seq
	keyBuf []byte
}

// Map implements mapreduce.Mapper.
func (m *reverseMapper) Map(key, value []byte, emit mapreduce.Emit) error {
	var err error
	m.cur, err = encoding.DecodeSeqInto(m.cur, key)
	if err != nil {
		return err
	}
	reverseInPlace(m.cur)
	m.keyBuf = encoding.AppendSeq(m.keyBuf[:0], m.cur)
	return emit(m.keyBuf, value)
}

func reverseInPlace(s sequence.Seq) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// prefixFilterReducer applies the same consecutive-emission filter as
// the SUFFIX-σ reducer, but over an already-aggregated stream: an
// n-gram that is a prefix of the previously emitted one is dropped
// under maximality (and under closedness when frequencies coincide).
// Before emitting, the reversed n-gram is restored to original order.
type prefixFilterReducer struct {
	mode SelectMode
	kind AggregationKind

	cur         sequence.Seq
	lastEmitted sequence.Seq
	lastCF      int64
	haveLast    bool
	keyBuf      []byte
}

// Reduce implements mapreduce.Reducer.
func (r *prefixFilterReducer) Reduce(key []byte, values *mapreduce.Values, emit mapreduce.Emit) error {
	var err error
	r.cur, err = encoding.DecodeSeqInto(r.cur, key)
	if err != nil {
		return err
	}
	// Each reversed n-gram is unique, so groups have a single value;
	// merge defensively anyway.
	cell := newAggregate(r.kind)
	for values.Next() {
		if err := cell.Add(values.Value()); err != nil {
			return err
		}
	}
	cf := cell.Frequency()
	if r.haveLast && sequence.IsPrefix(r.cur, r.lastEmitted) {
		switch r.mode {
		case SelectMaximal:
			return nil
		case SelectClosed:
			if cf == r.lastCF {
				return nil
			}
		}
	}
	r.lastEmitted = append(r.lastEmitted[:0], r.cur...)
	r.lastCF = cf
	r.haveLast = true
	reverseInPlace(r.cur)
	r.keyBuf = encoding.AppendSeq(r.keyBuf[:0], r.cur)
	return emit(r.keyBuf, cell.Encode())
}

// MaximalOracle computes the maximal (or closed) subset of exact n-gram
// statistics by brute force — the reference the extension tests compare
// against. counts must map encoded n-grams to their collection
// frequencies; only entries with cf ≥ tau are considered.
func MaximalOracle(counts map[string]int64, tau int64, mode SelectMode) map[string]int64 {
	type entry struct {
		seq sequence.Seq
		cf  int64
	}
	var entries []entry
	for k, cf := range counts {
		if cf < tau {
			continue
		}
		s, err := encoding.DecodeSeq([]byte(k))
		if err != nil {
			continue
		}
		entries = append(entries, entry{s, cf})
	}
	out := make(map[string]int64)
	for _, e := range entries {
		keep := true
		for _, other := range entries {
			if len(other.seq) <= len(e.seq) {
				continue
			}
			if !sequence.IsSubsequence(e.seq, other.seq) {
				continue
			}
			switch mode {
			case SelectMaximal:
				keep = false
			case SelectClosed:
				if other.cf == e.cf {
					keep = false
				}
			}
			if !keep {
				break
			}
		}
		if keep {
			out[string(encoding.EncodeSeq(e.seq))] = e.cf
		}
	}
	return out
}
