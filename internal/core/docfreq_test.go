package core

import (
	"context"
	"math/rand"
	"testing"

	"ngramstats/internal/corpus"
	"ngramstats/internal/encoding"
	"ngramstats/internal/sequence"
)

// documentFrequencyOracle computes df(s) — the number of documents
// containing s at least once (the "support" notion of frequent sequence
// mining, Section II) — for every n-gram with cf ≥ tau.
func documentFrequencyOracle(col *corpus.Collection, tau int64, sigma int) map[string]int64 {
	cf := BruteForce(col, tau, sigma)
	df := make(map[string]int64, len(cf))
	for k := range cf {
		s, err := encoding.DecodeSeq([]byte(k))
		if err != nil {
			continue
		}
		var n int64
		for i := range col.Docs {
			found := false
			for _, sent := range col.Docs[i].Sentences {
				if sequence.Occurrences(s, sent) > 0 {
					found = true
					break
				}
			}
			if found {
				n++
			}
		}
		df[k] = n
	}
	return df
}

// TestDocumentFrequencyViaDocIndex verifies the paper's Section II
// remark that the methods can produce document frequencies: SUFFIX-σ
// with the doc-index aggregation yields df(s) = number of distinct
// documents per n-gram, matching the brute-force oracle.
func TestDocumentFrequencyViaDocIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 4; trial++ {
		col := randomCollection(rng, 6+rng.Intn(4), 3, 10, 3)
		tau := int64(1 + rng.Intn(3))
		sigma := 2 + rng.Intn(5)
		want := documentFrequencyOracle(col, tau, sigma)
		p := Params{
			Tau: tau, Sigma: sigma, NumReducers: 3, InputSplits: 2,
			TempDir: t.TempDir(), Aggregation: AggDocIndex,
		}
		run, err := Compute(context.Background(), col, SuffixSigma, p)
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[string]int64)
		err = run.Result.EachAggregate(func(s sequence.Seq, agg Aggregate) error {
			df, ok := DocumentFrequency(agg)
			if !ok {
				t.Fatalf("aggregate of %v is not a doc index", s)
			}
			got[string(encoding.EncodeSeq(s))] = df
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d n-grams, want %d", trial, len(got), len(want))
		}
		for k, df := range want {
			if got[k] != df {
				s, _ := encoding.DecodeSeq([]byte(k))
				t.Fatalf("trial %d: df(%v) = %d, want %d", trial, s, got[k], df)
			}
		}
	}
}

// TestDFNeverExceedsCF: df(s) ≤ cf(s) for every n-gram, with equality
// iff no document repeats it.
func TestDFNeverExceedsCF(t *testing.T) {
	rng := rand.New(rand.NewSource(405))
	col := randomCollection(rng, 8, 3, 12, 2) // tiny vocab → lots of repeats
	cf := BruteForce(col, 1, 4)
	df := documentFrequencyOracle(col, 1, 4)
	repeats := 0
	for k := range cf {
		if df[k] > cf[k] {
			t.Fatalf("df > cf for %x", k)
		}
		if df[k] < cf[k] {
			repeats++
		}
	}
	if repeats == 0 {
		t.Fatal("expected some within-document repeats with a 2-term vocabulary")
	}
}
