package core

import (
	"fmt"
	"testing"

	"ngramstats/internal/encoding"
	"ngramstats/internal/mapreduce"
	"ngramstats/internal/sequence"
)

// fakeValues builds a Values-compatible stream for driving a reducer
// directly: we go through a real job with a single-record mapper
// instead, because mapreduce.Values is not constructible externally.
// For reducer-level unit tests we instead call process() directly.

// drive feeds suffixes (with unit-count multiplicities) into a
// suffixSigmaReducer in the order given and returns the emissions in
// order, plus the final stack state after each step via observe.
func drive(t *testing.T, r *suffixSigmaReducer, steps []struct {
	suffix sequence.Seq
	count  int64
}, observe func(step int)) []string {
	t.Helper()
	var emitted []string
	emit := mapreduce.Emit(func(k, v []byte) error {
		s, err := encoding.DecodeSeq(k)
		if err != nil {
			return err
		}
		cf, err := decodeFrequency(r.kind, v)
		if err != nil {
			return err
		}
		emitted = append(emitted, fmt.Sprintf("%v:%d", s, cf))
		return nil
	})
	for i, st := range steps {
		cell := newAggregate(r.kind)
		for j := int64(0); j < st.count; j++ {
			if err := cell.Add(unitCount); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.process(st.suffix, cell, emit); err != nil {
			t.Fatal(err)
		}
		if observe != nil {
			observe(i)
		}
	}
	if err := r.Cleanup(emit); err != nil {
		t.Fatal(err)
	}
	return emitted
}

// TestSuffixSigmaReducerFigure1 walks the exact bookkeeping example of
// Figure 1: the reducer responsible for suffixes starting with b
// receives ⟨b x x⟩:1, ⟨b x⟩:1, ⟨b a x⟩:2, ⟨b⟩:1 in reverse
// lexicographic order (terms: x=0, b=1, a=2, so a > b > x descending
// by id is wrong — descending term order by id means larger id first:
// a(2) > b(1) > x(0); the reducer input order used by the paper's
// example is preserved by feeding the same sequence).
func TestSuffixSigmaReducerFigure1(t *testing.T) {
	const (
		x sequence.Term = 0
		b sequence.Term = 1
		a sequence.Term = 2
	)
	// The paper's input order for the b-reducer: ⟨b x x⟩, ⟨b x⟩,
	// ⟨b a x⟩, ⟨b⟩ — this is reverse-lex under *alphabetic* descending
	// order (x > b > a). Verify the stack evolution of Figure 1:
	//   after ⟨b x x⟩: terms [b x x], counts [0 0 1]
	//   after ⟨b x⟩  : terms [b x],   counts [0 2]      (emitted nothing yet)
	//   after ⟨b a x⟩: terms [b a x], counts [2 0 2]    (emitted ⟨b x⟩:2… )
	// With τ=2 only n-grams of cf ≥ 2 are emitted.
	r := &suffixSigmaReducer{tau: 2, kind: AggCount}
	steps := []struct {
		suffix sequence.Seq
		count  int64
	}{
		{sequence.Seq{b, x, x}, 1},
		{sequence.Seq{b, x}, 1},
		{sequence.Seq{b, a, x}, 2},
		{sequence.Seq{b}, 1},
	}
	wantStacks := []struct {
		terms  sequence.Seq
		counts []int64
	}{
		{sequence.Seq{b, x, x}, []int64{0, 0, 1}},
		{sequence.Seq{b, x}, []int64{0, 2}},
		{sequence.Seq{b, a, x}, []int64{2, 0, 2}},
		{sequence.Seq{b}, []int64{5}},
	}
	emitted := drive(t, r, steps, func(step int) {
		want := wantStacks[step]
		if !sequence.Equal(r.terms, want.terms) {
			t.Fatalf("step %d: terms stack = %v, want %v", step, r.terms, want.terms)
		}
		if len(r.cells) != len(want.counts) {
			t.Fatalf("step %d: counts stack depth = %d, want %d", step, len(r.cells), len(want.counts))
		}
		for i, c := range want.counts {
			if got := r.cells[i].Frequency(); got != c {
				t.Fatalf("step %d: counts[%d] = %d, want %d", step, i, got, c)
			}
		}
	})
	// Emissions with τ=2, in pop order: ⟨b x⟩ is finalized when ⟨b a x⟩
	// arrives (cf 2); ⟨b a x⟩ and ⟨b a⟩ when ⟨b⟩ arrives; ⟨b⟩ at
	// cleanup (cf 5 = 1+2+1+... let's trust the arithmetic: x-pops add
	// into parents). Check the exact set.
	want := []string{
		"[1 0]:2",   // ⟨b x⟩
		"[1 2 0]:2", // ⟨b a x⟩
		"[1 2]:2",   // ⟨b a⟩
		"[1]:5",     // ⟨b⟩ (1+1+2+1)
	}
	if len(emitted) != len(want) {
		t.Fatalf("emissions = %v, want %v", emitted, want)
	}
	for i := range want {
		if emitted[i] != want[i] {
			t.Fatalf("emission %d = %s, want %s (all: %v)", i, emitted[i], want[i], emitted)
		}
	}
}

// TestSuffixSigmaReducerInvariant property-checks the two invariants of
// Section IV after every step: both stacks have equal size, and the
// summed counts from the top reflect exactly the occurrences of each
// stack prefix among the suffixes seen so far.
func TestSuffixSigmaReducerInvariant(t *testing.T) {
	const terms = 3
	// Enumerate all suffix multisets over a tiny alphabet, sort them
	// reverse-lex, and drive the reducer.
	var all []sequence.Seq
	for a := 0; a < terms; a++ {
		all = append(all, sequence.Seq{sequence.Term(a)})
		for b := 0; b < terms; b++ {
			all = append(all, sequence.Seq{sequence.Term(a), sequence.Term(b)})
			for c := 0; c < terms; c++ {
				all = append(all, sequence.Seq{sequence.Term(a), sequence.Term(b), sequence.Term(c)})
			}
		}
	}
	// Keep only suffixes sharing first term 1 (one reducer's share),
	// in reverse-lex order.
	var input []sequence.Seq
	for _, s := range all {
		if s[0] == 1 {
			input = append(input, s)
		}
	}
	for i := 0; i < len(input); i++ {
		for j := i + 1; j < len(input); j++ {
			if sequence.CompareReverseLex(input[j], input[i]) < 0 {
				input[i], input[j] = input[j], input[i]
			}
		}
	}
	r := &suffixSigmaReducer{tau: 1, kind: AggCount}
	var seen []sequence.Seq
	steps := make([]struct {
		suffix sequence.Seq
		count  int64
	}, len(input))
	for i, s := range input {
		steps[i].suffix = s
		steps[i].count = int64(1 + i%3)
	}
	step := 0
	drive(t, r, steps, func(i int) {
		seen = append(seen, input[i])
		if len(r.terms) != len(r.cells) {
			t.Fatalf("step %d: stack sizes differ: %d vs %d", i, len(r.terms), len(r.cells))
		}
		// Invariant 2: Σ_{j≥i} counts[j] = occurrences of prefix
		// terms[0..i] among seen suffixes (weighted by multiplicities).
		for i2 := 0; i2 < len(r.terms); i2++ {
			prefix := r.terms[:i2+1]
			var want int64
			for si, s := range seen {
				if sequence.IsPrefix(prefix, s) {
					want += int64(1 + si%3)
				}
			}
			var got int64
			for j := i2; j < len(r.cells); j++ {
				got += r.cells[j].Frequency()
			}
			if got != want {
				t.Fatalf("step %d: invariant violated for prefix %v: got %d, want %d",
					i, prefix, got, want)
			}
		}
		step++
	})
	if step != len(input) {
		t.Fatalf("drove %d of %d steps", step, len(input))
	}
}

// TestSuffixSigmaReducerSingleSuffix: a lone suffix flushes fully on
// cleanup.
func TestSuffixSigmaReducerSingleSuffix(t *testing.T) {
	r := &suffixSigmaReducer{tau: 1, kind: AggCount}
	emitted := drive(t, r, []struct {
		suffix sequence.Seq
		count  int64
	}{
		{sequence.Seq{4, 2, 7}, 3},
	}, nil)
	want := []string{"[4 2 7]:3", "[4 2]:3", "[4]:3"}
	if fmt.Sprint(emitted) != fmt.Sprint(want) {
		t.Fatalf("emitted %v, want %v", emitted, want)
	}
}

// TestSuffixSigmaReducerEmptyStream: cleanup on empty input must not
// panic or emit.
func TestSuffixSigmaReducerEmptyStream(t *testing.T) {
	r := &suffixSigmaReducer{tau: 1, kind: AggCount}
	emitted := drive(t, r, nil, nil)
	if len(emitted) != 0 {
		t.Fatalf("emitted %v from empty stream", emitted)
	}
}

// TestSuffixSigmaReducerTauFiltersPops: τ filtering happens at pop
// time; children below τ still fold their counts into parents.
func TestSuffixSigmaReducerTauFiltersPops(t *testing.T) {
	r := &suffixSigmaReducer{tau: 3, kind: AggCount}
	emitted := drive(t, r, []struct {
		suffix sequence.Seq
		count  int64
	}{
		{sequence.Seq{1, 5}, 2}, // ⟨1 5⟩ cf 2 < τ
		{sequence.Seq{1, 3}, 1}, // ⟨1 3⟩ cf 1 < τ
	}, nil)
	// Only ⟨1⟩ (cf 3 = 2+1) survives.
	want := []string{"[1]:3"}
	if fmt.Sprint(emitted) != fmt.Sprint(want) {
		t.Fatalf("emitted %v, want %v", emitted, want)
	}
}

// TestFirstTermPartitionerConsistency: all suffixes sharing a first
// term land on one partition, and partitions stay in range.
func TestFirstTermPartitionerConsistency(t *testing.T) {
	for r := 1; r <= 7; r++ {
		perTerm := map[sequence.Term]int{}
		for term := sequence.Term(0); term < 50; term++ {
			for l := 1; l <= 3; l++ {
				s := sequence.Seq{term}
				for i := 1; i < l; i++ {
					s = append(s, sequence.Term(i*13))
				}
				p := FirstTermPartitioner(encoding.EncodeSeq(s), r)
				if p < 0 || p >= r {
					t.Fatalf("partition %d out of range for r=%d", p, r)
				}
				if prev, ok := perTerm[term]; ok && prev != p {
					t.Fatalf("term %d split across partitions %d and %d", term, prev, p)
				}
				perTerm[term] = p
			}
		}
		if r >= 4 {
			// Dispersion: the 50 terms should hit more than one partition.
			distinct := map[int]bool{}
			for _, p := range perTerm {
				distinct[p] = true
			}
			if len(distinct) < 2 {
				t.Fatalf("r=%d: all terms on one partition", r)
			}
		}
	}
	// Malformed key is reported via the sentinel so the runtime can
	// count it and fail the job, rather than silently landing on 0.
	if p := FirstTermPartitioner([]byte{0x80}, 5); p != mapreduce.MalformedKeyPartition {
		t.Fatalf("malformed key partition = %d, want MalformedKeyPartition", p)
	}
}
