package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"ngramstats/internal/postings"
	"ngramstats/internal/sequence"
)

func TestBuildIndexRunningExample(t *testing.T) {
	col := runningExample()
	idx, err := BuildIndex(context.Background(), col, Params{
		Tau: 3, Sigma: 3, NumReducers: 3, InputSplits: 2, TempDir: t.TempDir(), K: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Exactly the six frequent n-grams are indexed.
	if idx.Len() != 6 {
		t.Fatalf("indexed n-grams = %d, want 6", idx.Len())
	}
	if idx.MaxLength() != 3 {
		t.Fatalf("MaxLength = %d", idx.MaxLength())
	}
	// Paper's example: ⟨a x b⟩ has postings ⟨d1:[0], d2:[1], d3:[2]⟩.
	locs, err := idx.Locations(sequence.Seq{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []Location{{DocID: 1, Position: 0}, {DocID: 2, Position: 1}, {DocID: 3, Position: 2}}
	if !reflect.DeepEqual(locs, want) {
		t.Fatalf("Locations(⟨a x b⟩) = %v, want %v", locs, want)
	}
	cf, ok, err := idx.CF(sequence.Seq{0, 1}) // ⟨x b⟩
	if err != nil || !ok || cf != 4 {
		t.Fatalf("CF(⟨x b⟩) = %d, %v, %v", cf, ok, err)
	}
	// Infrequent n-gram is absent.
	if _, ok, _ := idx.Postings(sequence.Seq{0, 0}); ok {
		t.Fatal("infrequent ⟨x x⟩ indexed")
	}
	if locs, _ := idx.Locations(sequence.Seq{0, 0}); locs != nil {
		t.Fatal("locations for unindexed n-gram")
	}
	if idx.Jobs() < 2 {
		t.Fatalf("jobs = %d", idx.Jobs())
	}
}

// TestIndexLocationsMatchDocuments verifies on random corpora that
// every reported location actually contains the n-gram (positions are
// document-global with sentence gaps).
func TestIndexLocationsMatchDocuments(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	col := randomCollection(rng, 8, 3, 10, 3)
	idx, err := BuildIndex(context.Background(), col, Params{
		Tau: 2, Sigma: 5, NumReducers: 3, InputSplits: 2, TempDir: t.TempDir(), K: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct the document-global position layout.
	flat := make(map[int64][]int64) // docID → term at global position (-1 = gap)
	for i := range col.Docs {
		d := &col.Docs[i]
		var arr []int64
		for _, s := range d.Sentences {
			for _, term := range s {
				arr = append(arr, int64(term))
			}
			arr = append(arr, -1) // sentence gap
		}
		flat[d.ID] = arr
	}
	checked := 0
	ngrams, err := idx.NGramsSorted()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range ngrams {
		locs, err := idx.Locations(s)
		if err != nil {
			t.Fatal(err)
		}
		for _, loc := range locs {
			arr := flat[loc.DocID]
			for i, term := range s {
				p := int(loc.Position) + i
				if p >= len(arr) || arr[p] != int64(term) {
					t.Fatalf("n-gram %v not at doc %d position %d", s, loc.DocID, loc.Position)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no locations checked")
	}
	// Index agrees with brute-force counts.
	want := BruteForce(col, 2, 5)
	if idx.Len() != len(want) {
		t.Fatalf("index size %d, want %d", idx.Len(), len(want))
	}
}

func TestIndexEach(t *testing.T) {
	col := runningExample()
	idx, err := BuildIndex(context.Background(), col, Params{
		Tau: 3, Sigma: 3, NumReducers: 2, InputSplits: 1, TempDir: t.TempDir(), K: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	err = idx.Each(func(s sequence.Seq, l postings.List) error {
		total += l.CF()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Σ cf over the six frequent n-grams: 3+5+7+3+4+3 = 25.
	if total != 25 {
		t.Fatalf("total cf = %d, want 25", total)
	}
}
