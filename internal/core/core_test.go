package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"ngramstats/internal/corpus"
	"ngramstats/internal/encoding"
	"ngramstats/internal/sequence"
)

// runningExample builds the collection of Section III with term ids
// x=0, b=1, a=2 (descending collection frequency).
func runningExample() *corpus.Collection {
	const (
		x sequence.Term = 0
		b sequence.Term = 1
		a sequence.Term = 2
	)
	return &corpus.Collection{
		Name: "running-example",
		Docs: []corpus.Document{
			{ID: 1, Year: 1990, Sentences: []sequence.Seq{{a, x, b, x, x}}},
			{ID: 2, Year: 1991, Sentences: []sequence.Seq{{b, a, x, b, x}}},
			{ID: 3, Year: 1992, Sentences: []sequence.Seq{{x, b, a, x, b}}},
		},
	}
}

func keyOf(terms ...sequence.Term) string {
	return string(encoding.EncodeSeq(sequence.Seq(terms)))
}

// expectedRunningExample is the output the paper lists for τ=3, σ=3.
func expectedRunningExample() map[string]int64 {
	return map[string]int64{
		keyOf(2):       3, // ⟨a⟩
		keyOf(1):       5, // ⟨b⟩
		keyOf(0):       7, // ⟨x⟩
		keyOf(2, 0):    3, // ⟨a x⟩
		keyOf(0, 1):    4, // ⟨x b⟩
		keyOf(2, 0, 1): 3, // ⟨a x b⟩
	}
}

func testParams(t *testing.T) Params {
	t.Helper()
	return Params{
		Tau:         3,
		Sigma:       3,
		NumReducers: 4,
		InputSplits: 2,
		TempDir:     t.TempDir(),
	}
}

func assertCounts(t *testing.T, run *Run, want map[string]int64) {
	t.Helper()
	got, err := run.Result.CountMap()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: got %d n-grams, want %d\n got: %v\nwant: %v", run.Method, len(got), len(want), got, want)
	}
	for k, cf := range want {
		if got[k] != cf {
			t.Fatalf("%s: cf(%x) = %d, want %d", run.Method, k, got[k], cf)
		}
	}
}

func TestRunningExampleAllMethods(t *testing.T) {
	col := runningExample()
	want := expectedRunningExample()
	for _, m := range append(Methods(), SuffixSigmaNaive) {
		m := m
		t.Run(string(m), func(t *testing.T) {
			run, err := Compute(context.Background(), col, m, testParams(t))
			if err != nil {
				t.Fatal(err)
			}
			assertCounts(t, run, want)
		})
	}
}

func TestBruteForceMatchesRunningExample(t *testing.T) {
	got := BruteForce(runningExample(), 3, 3)
	want := expectedRunningExample()
	if len(got) != len(want) {
		t.Fatalf("BruteForce: got %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("BruteForce[%x] = %d, want %d", k, got[k], v)
		}
	}
}

// randomCollection builds a small random collection over a tiny
// vocabulary (to force collisions and long frequent n-grams).
func randomCollection(rng *rand.Rand, docs, maxSentences, maxLen, vocab int) *corpus.Collection {
	col := &corpus.Collection{Name: "random"}
	for d := 0; d < docs; d++ {
		doc := corpus.Document{ID: int64(d), Year: 1987 + rng.Intn(21)}
		nSent := 1 + rng.Intn(maxSentences)
		for s := 0; s < nSent; s++ {
			l := rng.Intn(maxLen + 1)
			sent := make(sequence.Seq, l)
			for i := range sent {
				sent[i] = sequence.Term(rng.Intn(vocab))
			}
			doc.Sentences = append(doc.Sentences, sent)
		}
		col.Docs = append(col.Docs, doc)
	}
	return col
}

// TestMethodsAgreeOnRandomCorpora is the central cross-method property
// test: every method must produce exactly the brute-force statistics
// for random corpora and random (τ, σ), including σ = ∞.
func TestMethodsAgreeOnRandomCorpora(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 6; trial++ {
		col := randomCollection(rng, 4+rng.Intn(6), 3, 12, 3)
		tau := int64(1 + rng.Intn(4))
		sigma := 1 + rng.Intn(8)
		if trial%3 == 0 {
			sigma = Unbounded
		}
		want := BruteForce(col, tau, sigma)
		for _, m := range append(Methods(), SuffixSigmaNaive) {
			p := Params{
				Tau: tau, Sigma: sigma,
				NumReducers: 3, InputSplits: 2, TempDir: t.TempDir(),
				Combiner: trial%2 == 0,
				K:        1 + rng.Intn(3),
			}
			run, err := Compute(context.Background(), col, m, p)
			if err != nil {
				t.Fatalf("trial %d method %s: %v", trial, m, err)
			}
			got, err := run.Result.CountMap()
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d method %s (τ=%d σ=%d): %d n-grams, want %d",
					trial, m, tau, sigma, len(got), len(want))
			}
			for k, cf := range want {
				if got[k] != cf {
					s, _ := encoding.DecodeSeq([]byte(k))
					t.Fatalf("trial %d method %s: cf(%v) = %d, want %d", trial, m, s, got[k], cf)
				}
			}
		}
	}
}

func TestDocSplitPreservesResults(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	col := randomCollection(rng, 8, 3, 15, 4)
	tau, sigma := int64(3), 6
	want := BruteForce(col, tau, sigma)
	for _, m := range Methods() {
		p := Params{
			Tau: tau, Sigma: sigma, NumReducers: 3, InputSplits: 2,
			TempDir: t.TempDir(), DocSplit: true,
		}
		run, err := Compute(context.Background(), col, m, p)
		if err != nil {
			t.Fatalf("%s with doc splits: %v", m, err)
		}
		got, err := run.Result.CountMap()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s with doc splits: %d n-grams, want %d", m, len(got), len(want))
		}
		for k, cf := range want {
			if got[k] != cf {
				t.Fatalf("%s with doc splits: cf mismatch", m)
			}
		}
		// Doc splits add two preprocessing jobs.
		if m == SuffixSigma && run.Jobs != 3 {
			t.Fatalf("suffix-sigma with doc splits ran %d jobs, want 3", run.Jobs)
		}
	}
}

func TestDocSplitReducesNaiveRecords(t *testing.T) {
	// With a term that is infrequent, splitting documents at it must
	// strictly reduce the n-grams NAÏVE emits in its main job.
	col := &corpus.Collection{Docs: []corpus.Document{
		{ID: 0, Sentences: []sequence.Seq{{0, 1, 9, 0, 1}}},
		{ID: 1, Sentences: []sequence.Seq{{0, 1, 0, 1, 0}}},
	}}
	base := Params{Tau: 2, Sigma: 5, NumReducers: 2, InputSplits: 1, TempDir: t.TempDir()}
	plain, err := Compute(context.Background(), col, Naive, base)
	if err != nil {
		t.Fatal(err)
	}
	split := base
	split.DocSplit = true
	withSplit, err := Compute(context.Background(), col, Naive, split)
	if err != nil {
		t.Fatal(err)
	}
	// Same results.
	a, _ := plain.Result.CountMap()
	b, _ := withSplit.Result.CountMap()
	if fmt.Sprint(len(a)) != fmt.Sprint(len(b)) {
		t.Fatalf("results differ: %v vs %v", a, b)
	}
	// The doc-split run emits extra records in preprocessing, but its
	// total is still lower than the naive explosion here? Not
	// necessarily on tiny inputs — so compare only the main job's
	// output: every n-gram containing term 9 is gone.
	for k := range b {
		s, _ := encoding.DecodeSeq([]byte(k))
		for _, term := range s {
			if term == 9 {
				t.Fatalf("n-gram %v contains infrequent term", s)
			}
		}
	}
}

func TestAprioriScanDictSpillsToStore(t *testing.T) {
	// A tiny dictionary budget forces the kvstore-backed dictionary;
	// results must not change.
	col := runningExample()
	p := testParams(t)
	p.DictionaryMemory = 1 // bytes → every dictionary goes to disk
	run, err := Compute(context.Background(), col, AprioriScan, p)
	if err != nil {
		t.Fatal(err)
	}
	assertCounts(t, run, expectedRunningExample())
}

func TestAprioriIndexJoinSpills(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	col := randomCollection(rng, 10, 2, 14, 2)
	tau, sigma := int64(2), 8
	want := BruteForce(col, tau, sigma)
	p := Params{
		Tau: tau, Sigma: sigma, NumReducers: 2, InputSplits: 2,
		TempDir: t.TempDir(), K: 2, JoinMemory: 64, // force list spills
	}
	run, err := Compute(context.Background(), col, AprioriIndex, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := run.Result.CountMap()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("join spills: %d n-grams, want %d", len(got), len(want))
	}
}

func TestSuffixSigmaSingleJob(t *testing.T) {
	run, err := Compute(context.Background(), runningExample(), SuffixSigma, testParams(t))
	if err != nil {
		t.Fatal(err)
	}
	if run.Jobs != 1 {
		t.Fatalf("SUFFIX-σ ran %d jobs, want 1", run.Jobs)
	}
}

func TestSuffixSigmaEmitsOneRecordPerPosition(t *testing.T) {
	// SUFFIX-σ emits exactly one key-value pair per term occurrence
	// (Section IV's analysis).
	col := runningExample()
	run, err := Compute(context.Background(), col, SuffixSigma, testParams(t))
	if err != nil {
		t.Fatal(err)
	}
	if n := run.RecordsTransferred(); n != 15 {
		t.Fatalf("records = %d, want 15 (one per occurrence)", n)
	}
}

func TestNaiveEmitsAllNGrams(t *testing.T) {
	// NAÏVE emits Σ min(σ, L−b) records per document: for L=5, σ=3 that
	// is 3+3+3+2+1 = 12 per document.
	col := runningExample()
	run, err := Compute(context.Background(), col, Naive, testParams(t))
	if err != nil {
		t.Fatal(err)
	}
	if n := run.RecordsTransferred(); n != 36 {
		t.Fatalf("records = %d, want 36", n)
	}
}

func TestMethodComparisonRecordCounts(t *testing.T) {
	// The headline relationship: SUFFIX-σ transfers at most as many
	// records as APRIORI-SCAN, which transfers at most as many as NAÏVE.
	rng := rand.New(rand.NewSource(33))
	col := randomCollection(rng, 12, 3, 18, 3)
	p := Params{Tau: 4, Sigma: 10, NumReducers: 3, InputSplits: 2, TempDir: t.TempDir()}
	records := map[Method]int64{}
	for _, m := range Methods() {
		run, err := Compute(context.Background(), col, m, p)
		if err != nil {
			t.Fatal(err)
		}
		records[m] = run.RecordsTransferred()
	}
	if records[SuffixSigma] > records[AprioriScan] {
		t.Fatalf("suffix-σ records %d > apriori-scan %d", records[SuffixSigma], records[AprioriScan])
	}
	if records[AprioriScan] > records[Naive] {
		t.Fatalf("apriori-scan records %d > naive %d", records[AprioriScan], records[Naive])
	}
}

func TestUnknownMethod(t *testing.T) {
	if _, err := Compute(context.Background(), runningExample(), Method("nope"), testParams(t)); err == nil {
		t.Fatal("expected error for unknown method")
	}
}

func TestEmptyCollection(t *testing.T) {
	col := &corpus.Collection{Name: "empty"}
	for _, m := range Methods() {
		run, err := Compute(context.Background(), col, m, Params{
			Tau: 1, Sigma: 3, NumReducers: 2, InputSplits: 2, TempDir: t.TempDir(),
		})
		if err != nil {
			t.Fatalf("%s on empty collection: %v", m, err)
		}
		if run.Result.Len() != 0 {
			t.Fatalf("%s on empty collection produced %d n-grams", m, run.Result.Len())
		}
	}
}

func TestTauOneSigmaOne(t *testing.T) {
	// Degenerate parameters: unigram counting.
	col := runningExample()
	want := BruteForce(col, 1, 1)
	for _, m := range Methods() {
		p := testParams(t)
		p.Tau, p.Sigma = 1, 1
		run, err := Compute(context.Background(), col, m, p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := run.Result.CountMap()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d unigrams, want %d", m, len(got), len(want))
		}
	}
}

func TestRunMeasures(t *testing.T) {
	run, err := Compute(context.Background(), runningExample(), SuffixSigma, testParams(t))
	if err != nil {
		t.Fatal(err)
	}
	if run.BytesTransferred() <= 0 {
		t.Fatal("BytesTransferred should be positive")
	}
	if run.Wallclock <= 0 {
		t.Fatal("Wallclock should be positive")
	}
	if run.Result.Kind() != AggCount {
		t.Fatalf("Kind = %v", run.Result.Kind())
	}
}
