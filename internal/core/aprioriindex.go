package core

import (
	"context"
	"fmt"

	"ngramstats/internal/corpus"
	"ngramstats/internal/encoding"
	"ngramstats/internal/kvstore"
	"ngramstats/internal/mapreduce"
	"ngramstats/internal/postings"
	"ngramstats/internal/sequence"
)

// computeAprioriIndex runs APRIORI-INDEX (Algorithm 3). In its first
// phase (k ≤ K) it scans the input and builds an inverted index with
// positional information for frequent k-grams. In its second phase
// (k > K) it avoids rescanning the input: the frequent (k−1)-grams of
// the previous iteration are joined on their (k−2)-term overlaps —
// every (k−1)-gram is routed to reducers under both its prefix and its
// suffix, and compatible pairs have their posting lists intersected on
// adjacent positions, a distributed candidate generation & pruning
// step resembling SPADE's lattice traversal.
func computeAprioriIndex(ctx context.Context, col *corpus.Collection, p Params) (*Run, error) {
	outputs, drv, err := aprioriIndexDatasets(ctx, col, p)
	if err != nil {
		return nil, err
	}
	var result mapreduce.Dataset
	if len(outputs) == 0 {
		result = mapreduce.NewMemDataset(nil)
	} else {
		result = &postingCountDataset{inner: mapreduce.ConcatDatasets(outputs...)}
	}
	return &Run{
		Method:    AprioriIndex,
		Result:    NewResultSet(result, AggCount),
		Counters:  drv.Aggregate,
		Wallclock: drv.Wallclock(),
		Jobs:      len(drv.JobResults),
	}, nil
}

// aprioriIndexDatasets runs the APRIORI-INDEX iterations and returns
// the per-length datasets of (n-gram, posting list) records together
// with the driver that ran them.
func aprioriIndexDatasets(ctx context.Context, col *corpus.Collection, p Params) ([]mapreduce.Dataset, *mapreduce.Driver, error) {
	drv := mapreduce.NewDriver()
	input, err := corpusInput(ctx, col, p, drv)
	if err != nil {
		return nil, nil, err
	}
	var outputs []mapreduce.Dataset
	var prev mapreduce.Dataset
	for k := 1; k <= p.Sigma; k++ {
		k := k
		name := fmt.Sprintf("apriori-index-k%d", k)
		var job *mapreduce.Job
		if k <= p.K {
			job = p.specJob(name, jobSpec{Kind: kindIndexScan, Tau: p.Tau, K: k})
			job.Input = input
		} else {
			job = p.specJob(name, jobSpec{Kind: kindIndexJoin, Tau: p.Tau, JoinMem: p.JoinMemory})
			job.Input = mapreduce.DatasetInput(prev)
		}
		res, err := drv.Run(ctx, job)
		if err != nil {
			return nil, nil, err
		}
		if res.Output.Records() == 0 {
			if err := res.Output.Release(); err != nil {
				return nil, nil, err
			}
			break
		}
		outputs = append(outputs, res.Output)
		prev = res.Output
	}
	return outputs, drv, nil
}

// indexScanMapper (Mapper #1 of Algorithm 3) computes, per document,
// the positions of every k-gram using a local hashmap (the paper's
// in-mapper local aggregation) and emits one posting per k-gram and
// document. Positions are document-global with a gap of one between
// sentences so that position adjacency never crosses a sentence
// barrier.
type indexScanMapper struct {
	k      int
	encBuf []byte
	offs   []int
}

// Map implements mapreduce.Mapper.
func (m *indexScanMapper) Map(key, value []byte, emit mapreduce.Emit) error {
	docID, err := corpus.DecodeDocKey(key)
	if err != nil {
		return err
	}
	pos := make(map[string][]uint32)
	base := uint32(0)
	err = corpus.VisitSentences(value, func(s sequence.Seq) error {
		if len(s) >= m.k {
			m.encBuf = m.encBuf[:0]
			m.offs = m.offs[:0]
			for _, t := range s {
				m.offs = append(m.offs, len(m.encBuf))
				m.encBuf = encoding.AppendUvarint(m.encBuf, uint64(t))
			}
			m.offs = append(m.offs, len(m.encBuf))
			for b := 0; b+m.k <= len(s); b++ {
				g := string(m.encBuf[m.offs[b]:m.offs[b+m.k]])
				pos[g] = append(pos[g], base+uint32(b))
			}
		}
		base += uint32(len(s)) + 1 // sentence barrier gap
		return nil
	})
	if err != nil {
		return err
	}
	for g, positions := range pos {
		l := postings.List{{DocID: docID, Positions: positions}}
		if err := emit([]byte(g), postings.Encode(l)); err != nil {
			return err
		}
	}
	return nil
}

// indexMergeReducer (Reducer #1) merges per-document postings into the
// k-gram's posting list and keeps it when cf ≥ τ.
type indexMergeReducer struct {
	tau int64
}

// Reduce implements mapreduce.Reducer.
func (r *indexMergeReducer) Reduce(key []byte, values *mapreduce.Values, emit mapreduce.Emit) error {
	var parts []postings.List
	for values.Next() {
		l, err := postings.Decode(values.Value())
		if err != nil {
			return err
		}
		parts = append(parts, l)
	}
	merged := postings.Merge(parts...)
	if merged.CF() >= r.tau {
		return emit(key, postings.Encode(merged))
	}
	return nil
}

// joinTag distinguishes whether a (k−1)-gram reached the reducer under
// its prefix (it extends the key to the right) or under its suffix (it
// extends the key to the left) — the r-seq/l-seq subtypes of
// Algorithm 3.
const (
	tagRight byte = 'R' // keyed by prefix s[0..|s|−2]
	tagLeft  byte = 'L' // keyed by suffix s[1..|s|−1]
)

// indexJoinMapper (Mapper #2) routes every frequent (k−1)-gram with its
// posting list to the reducers of its prefix and suffix.
type indexJoinMapper struct {
	valBuf []byte
}

// Map implements mapreduce.Mapper.
func (m *indexJoinMapper) Map(key, value []byte, emit mapreduce.Emit) error {
	firstLen, lastStart, err := seqBoundaries(key)
	if err != nil {
		return err
	}
	m.valBuf = m.valBuf[:0]
	m.valBuf = append(m.valBuf, tagRight)
	m.valBuf = encoding.AppendUvarint(m.valBuf, uint64(len(key)))
	m.valBuf = append(m.valBuf, key...)
	m.valBuf = append(m.valBuf, value...)
	if err := emit(key[:lastStart], m.valBuf); err != nil {
		return err
	}
	m.valBuf[0] = tagLeft
	return emit(key[firstLen:], m.valBuf)
}

// seqBoundaries returns the byte length of the first term and the byte
// offset of the last term of an encoded sequence.
func seqBoundaries(key []byte) (firstLen, lastStart int, err error) {
	if len(key) == 0 {
		return 0, 0, fmt.Errorf("core: %w: empty sequence key", encoding.ErrCorrupt)
	}
	off := 0
	first := -1
	for off < len(key) {
		_, n := encoding.Uvarint(key[off:])
		if n <= 0 {
			return 0, 0, fmt.Errorf("core: %w: sequence key", encoding.ErrCorrupt)
		}
		if first < 0 {
			first = n
		}
		lastStart = off
		off += n
	}
	return first, lastStart, nil
}

// indexJoinReducer (Reducer #2) buffers the l-seq and r-seq values of a
// group — via spillable lists, since "the number and size of
// posting-list values seen for a specific key can become large" — and
// joins every compatible pair: m (key as suffix) with n (key as
// prefix) yields the k-gram m‖⟨n's last term⟩ whose occurrences are
// positions p with m at p and n at p+1.
type indexJoinReducer struct {
	tau     int64
	budget  int
	tempDir string
	keyBuf  []byte
}

// Setup implements mapreduce.TaskSetup: the spillable join buffers use
// the task's scratch directory.
func (r *indexJoinReducer) Setup(tc *mapreduce.TaskContext) error {
	r.tempDir = tc.TempDir
	return nil
}

// Reduce implements mapreduce.Reducer.
func (r *indexJoinReducer) Reduce(key []byte, values *mapreduce.Values, emit mapreduce.Emit) error {
	lefts := kvstore.NewList(r.budget/2, r.tempDir)
	rights := kvstore.NewList(r.budget/2, r.tempDir)
	defer lefts.Close()
	defer rights.Close()
	for values.Next() {
		v := values.Value()
		if len(v) < 2 {
			return fmt.Errorf("core: %w: join value", encoding.ErrCorrupt)
		}
		switch v[0] {
		case tagLeft:
			if err := lefts.Append(v[1:]); err != nil {
				return err
			}
		case tagRight:
			if err := rights.Append(v[1:]); err != nil {
				return err
			}
		default:
			return fmt.Errorf("core: %w: join tag %q", encoding.ErrCorrupt, v[0])
		}
	}
	return lefts.Each(func(_ int, mrec []byte) error {
		mSeq, mList, err := splitJoinRecord(mrec)
		if err != nil {
			return err
		}
		lm, err := postings.Decode(mList)
		if err != nil {
			return err
		}
		mSeqCopy := append([]byte(nil), mSeq...)
		return rights.Each(func(_ int, nrec []byte) error {
			nSeq, nList, err := splitJoinRecord(nrec)
			if err != nil {
				return err
			}
			ln, err := postings.Decode(nList)
			if err != nil {
				return err
			}
			joined := postings.Join(lm, ln)
			if joined.CF() < r.tau {
				return nil
			}
			_, lastStart, err := seqBoundaries(nSeq)
			if err != nil {
				return err
			}
			r.keyBuf = append(r.keyBuf[:0], mSeqCopy...)
			r.keyBuf = append(r.keyBuf, nSeq[lastStart:]...)
			return emit(r.keyBuf, postings.Encode(joined))
		})
	})
}

// splitJoinRecord splits a buffered join value into the (k−1)-gram key
// bytes and the posting-list bytes.
func splitJoinRecord(rec []byte) (seq, list []byte, err error) {
	l, n := encoding.Uvarint(rec)
	if n <= 0 || int(l) > len(rec)-n {
		return nil, nil, fmt.Errorf("core: %w: join record", encoding.ErrCorrupt)
	}
	return rec[n : n+int(l)], rec[n+int(l):], nil
}

// postingCountDataset presents a dataset of (n-gram, posting list)
// records as (n-gram, collection frequency) records, the common result
// format of all methods. The positional index itself remains available
// through the inner dataset.
type postingCountDataset struct {
	inner mapreduce.Dataset
}

// NumPartitions implements mapreduce.Dataset.
func (d *postingCountDataset) NumPartitions() int { return d.inner.NumPartitions() }

// Scan implements mapreduce.Dataset.
func (d *postingCountDataset) Scan(p int, yield func(key, value []byte) error) error {
	var valBuf []byte
	return d.inner.Scan(p, func(k, v []byte) error {
		cf, err := postings.EncodedCF(v)
		if err != nil {
			return err
		}
		valBuf = encoding.AppendUvarint(valBuf[:0], uint64(cf))
		return yield(k, valBuf)
	})
}

// Records implements mapreduce.Dataset.
func (d *postingCountDataset) Records() int64 { return d.inner.Records() }

// Release implements mapreduce.Dataset.
func (d *postingCountDataset) Release() error { return d.inner.Release() }
