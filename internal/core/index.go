package core

import (
	"context"
	"sort"

	"ngramstats/internal/corpus"
	"ngramstats/internal/encoding"
	"ngramstats/internal/postings"
	"ngramstats/internal/sequence"
)

// Index is the positional inverted index over frequent n-grams that
// APRIORI-INDEX produces as a by-product (Section III-B: "the method
// produces an inverted index with positional information that can be
// used to quickly determine the locations of a specific frequent
// n-gram"). Positions are document-global with a gap of one between
// sentences, exactly as emitted by the index builder.
type Index struct {
	// lists maps encoded n-grams to their encoded posting lists.
	lists map[string][]byte
	// run carries the build's measures.
	run *Run
	// maxLen is the longest indexed n-gram.
	maxLen int
}

// Location is one occurrence of an n-gram.
type Location struct {
	// DocID is the containing document.
	DocID int64
	// Position is the document-global term position (sentences separated
	// by a gap of one).
	Position uint32
}

// BuildIndex constructs the positional index of all n-grams with
// cf ≥ p.Tau and length ≤ p.Sigma by running APRIORI-INDEX and
// retaining the posting lists.
func BuildIndex(ctx context.Context, col *corpus.Collection, p Params) (*Index, error) {
	p = p.withDefaults()
	outputs, drv, err := aprioriIndexDatasets(ctx, col, p)
	if err != nil {
		return nil, err
	}
	idx := &Index{lists: make(map[string][]byte)}
	for _, ds := range outputs {
		for part := 0; part < ds.NumPartitions(); part++ {
			err := ds.Scan(part, func(k, v []byte) error {
				idx.lists[string(k)] = append([]byte(nil), v...)
				if l := encoding.SeqLen(k); l > idx.maxLen {
					idx.maxLen = l
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
		if err := ds.Release(); err != nil {
			return nil, err
		}
	}
	idx.run = &Run{
		Method:    AprioriIndex,
		Counters:  drv.Aggregate,
		Wallclock: drv.Wallclock(),
		Jobs:      len(drv.JobResults),
	}
	return idx, nil
}

// Len returns the number of indexed n-grams.
func (ix *Index) Len() int { return len(ix.lists) }

// MaxLength returns the length of the longest indexed n-gram.
func (ix *Index) MaxLength() int { return ix.maxLen }

// Jobs returns the number of MapReduce jobs the build launched.
func (ix *Index) Jobs() int { return ix.run.Jobs }

// Postings returns the posting list of an n-gram, if indexed.
func (ix *Index) Postings(s sequence.Seq) (postings.List, bool, error) {
	b, ok := ix.lists[string(encoding.EncodeSeq(s))]
	if !ok {
		return nil, false, nil
	}
	l, err := postings.Decode(b)
	if err != nil {
		return nil, false, err
	}
	return l, true, nil
}

// CF returns the collection frequency of an n-gram, if indexed.
func (ix *Index) CF(s sequence.Seq) (int64, bool, error) {
	b, ok := ix.lists[string(encoding.EncodeSeq(s))]
	if !ok {
		return 0, false, nil
	}
	cf, err := postings.EncodedCF(b)
	if err != nil {
		return 0, false, err
	}
	return cf, true, nil
}

// Locations returns every occurrence of an n-gram, ordered by document
// then position.
func (ix *Index) Locations(s sequence.Seq) ([]Location, error) {
	l, ok, err := ix.Postings(s)
	if err != nil || !ok {
		return nil, err
	}
	var out []Location
	for _, post := range l {
		for _, pos := range post.Positions {
			out = append(out, Location{DocID: post.DocID, Position: pos})
		}
	}
	return out, nil
}

// Each calls fn for every indexed n-gram in unspecified order.
func (ix *Index) Each(fn func(s sequence.Seq, l postings.List) error) error {
	for k, v := range ix.lists {
		s, err := encoding.DecodeSeq([]byte(k))
		if err != nil {
			return err
		}
		l, err := postings.Decode(v)
		if err != nil {
			return err
		}
		if err := fn(s, l); err != nil {
			return err
		}
	}
	return nil
}

// NGramsSorted returns all indexed n-grams in lexicographic order —
// handy for deterministic listings.
func (ix *Index) NGramsSorted() ([]sequence.Seq, error) {
	keys := make([]string, 0, len(ix.lists))
	for k := range ix.lists {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return encoding.CompareSeqBytes([]byte(keys[i]), []byte(keys[j])) < 0
	})
	out := make([]sequence.Seq, len(keys))
	for i, k := range keys {
		s, err := encoding.DecodeSeq([]byte(k))
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}
