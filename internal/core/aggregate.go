package core

import (
	"fmt"
	"sort"

	"ngramstats/internal/encoding"
)

// AggregationKind selects what SUFFIX-σ aggregates per n-gram beyond
// plain occurrence counting (Section VI-B).
type AggregationKind int

const (
	// AggCount aggregates occurrence counts (the paper's main setting).
	AggCount AggregationKind = iota
	// AggTimeSeries aggregates per-year occurrence counts from document
	// timestamps, producing n-gram time series in the style of Michel et
	// al. ("culturomics").
	AggTimeSeries
	// AggDocIndex aggregates per-document occurrence counts, i.e. an
	// inverted index recording how often every n-gram occurs in
	// individual documents (first bullet of Section VI-B).
	AggDocIndex
)

func (k AggregationKind) String() string {
	switch k {
	case AggTimeSeries:
		return "timeseries"
	case AggDocIndex:
		return "docindex"
	default:
		return "count"
	}
}

// Aggregate is one cell of aggregated information about an n-gram. The
// SUFFIX-σ reducer keeps a stack of Aggregates parallel to its term
// stack and merges cells lazily as suffixes are popped.
type Aggregate interface {
	// Add folds one map-output value into the cell.
	Add(value []byte) error
	// Merge folds another cell of the same kind into this one.
	Merge(other Aggregate)
	// Frequency returns the total occurrence count the cell represents,
	// used for the cf ≥ τ test.
	Frequency() int64
	// Encode serializes the cell as an output value.
	Encode() []byte
}

// newAggregate returns an empty cell of the given kind.
func newAggregate(kind AggregationKind) Aggregate {
	switch kind {
	case AggTimeSeries:
		return &timeSeriesAggregate{counts: make(map[int]int64)}
	case AggDocIndex:
		return &docIndexAggregate{counts: make(map[int64]int64)}
	default:
		return &countAggregate{}
	}
}

// mapValue encodes the map-output value SUFFIX-σ emits for one suffix
// occurrence under the given aggregation: the per-occurrence singleton
// cell. All kinds share the property that the value of a combiner
// output (a merged cell) is decodable by Add, so combiners work
// uniformly.
func mapValue(kind AggregationKind, doc *docMeta) []byte {
	switch kind {
	case AggTimeSeries:
		// Singleton time series: one (year, count) pair.
		b := encoding.AppendUvarint(nil, 1)
		b = encoding.AppendUvarint(b, uint64(doc.year))
		return encoding.AppendUvarint(b, 1)
	case AggDocIndex:
		b := encoding.AppendUvarint(nil, 1)
		b = encoding.AppendUvarint(b, uint64(doc.docID))
		return encoding.AppendUvarint(b, 1)
	default:
		return encoding.AppendUvarint(nil, 1)
	}
}

// docMeta carries the per-document metadata available to mapValue.
type docMeta struct {
	docID int64
	year  int
}

// decodeFrequency extracts the total occurrence count from an encoded
// aggregate value.
func decodeFrequency(kind AggregationKind, v []byte) (int64, error) {
	agg, err := decodeAggregate(kind, v)
	if err != nil {
		return 0, err
	}
	return agg.Frequency(), nil
}

// decodeAggregate decodes an encoded aggregate value of the given kind.
func decodeAggregate(kind AggregationKind, v []byte) (Aggregate, error) {
	agg := newAggregate(kind)
	if err := agg.Add(v); err != nil {
		return nil, err
	}
	return agg, nil
}

// DecodeAggregate decodes an encoded aggregate value of the given kind.
// The persistent index stores reducer-encoded values verbatim and
// decodes them on the serving path through this entry point.
func DecodeAggregate(kind AggregationKind, v []byte) (Aggregate, error) {
	return decodeAggregate(kind, v)
}

// countAggregate counts occurrences. Encoded form: uvarint(count).
type countAggregate struct {
	n int64
}

func (c *countAggregate) Add(value []byte) error {
	v, n := encoding.Uvarint(value)
	if n <= 0 || n != len(value) {
		return fmt.Errorf("core: %w: count value", encoding.ErrCorrupt)
	}
	c.n += int64(v)
	return nil
}

func (c *countAggregate) Merge(other Aggregate) { c.n += other.(*countAggregate).n }

func (c *countAggregate) Frequency() int64 { return c.n }

func (c *countAggregate) Encode() []byte { return encoding.AppendUvarint(nil, uint64(c.n)) }

// timeSeriesAggregate counts occurrences per publication year. Encoded
// form: uvarint(#pairs) then (uvarint(year), uvarint(count))… sorted by
// year.
type timeSeriesAggregate struct {
	counts map[int]int64
}

func (t *timeSeriesAggregate) Add(value []byte) error {
	pairs, n := encoding.Uvarint(value)
	if n <= 0 {
		return fmt.Errorf("core: %w: time series pair count", encoding.ErrCorrupt)
	}
	value = value[n:]
	for i := uint64(0); i < pairs; i++ {
		year, n := encoding.Uvarint(value)
		if n <= 0 {
			return fmt.Errorf("core: %w: time series year", encoding.ErrCorrupt)
		}
		value = value[n:]
		count, n := encoding.Uvarint(value)
		if n <= 0 {
			return fmt.Errorf("core: %w: time series count", encoding.ErrCorrupt)
		}
		value = value[n:]
		t.counts[int(year)] += int64(count)
	}
	if len(value) != 0 {
		return fmt.Errorf("core: %w: time series trailing bytes", encoding.ErrCorrupt)
	}
	return nil
}

func (t *timeSeriesAggregate) Merge(other Aggregate) {
	for y, c := range other.(*timeSeriesAggregate).counts {
		t.counts[y] += c
	}
}

func (t *timeSeriesAggregate) Frequency() int64 {
	var n int64
	for _, c := range t.counts {
		n += c
	}
	return n
}

func (t *timeSeriesAggregate) Encode() []byte {
	years := make([]int, 0, len(t.counts))
	for y := range t.counts {
		years = append(years, y)
	}
	sort.Ints(years)
	b := encoding.AppendUvarint(nil, uint64(len(years)))
	for _, y := range years {
		b = encoding.AppendUvarint(b, uint64(y))
		b = encoding.AppendUvarint(b, uint64(t.counts[y]))
	}
	return b
}

// Years returns the per-year counts of a time-series aggregate.
func (t *timeSeriesAggregate) Years() map[int]int64 { return t.counts }

// TimeSeriesCounts extracts the per-year counts from an aggregate
// produced under AggTimeSeries. It returns false if the aggregate is of
// a different kind.
func TimeSeriesCounts(a Aggregate) (map[int]int64, bool) {
	t, ok := a.(*timeSeriesAggregate)
	if !ok {
		return nil, false
	}
	return t.counts, true
}

// docIndexAggregate counts occurrences per document. Encoded form:
// uvarint(#pairs) then (uvarint(docID), uvarint(count))… sorted by
// document.
type docIndexAggregate struct {
	counts map[int64]int64
}

func (d *docIndexAggregate) Add(value []byte) error {
	pairs, n := encoding.Uvarint(value)
	if n <= 0 {
		return fmt.Errorf("core: %w: doc index pair count", encoding.ErrCorrupt)
	}
	value = value[n:]
	for i := uint64(0); i < pairs; i++ {
		doc, n := encoding.Uvarint(value)
		if n <= 0 {
			return fmt.Errorf("core: %w: doc index docID", encoding.ErrCorrupt)
		}
		value = value[n:]
		count, n := encoding.Uvarint(value)
		if n <= 0 {
			return fmt.Errorf("core: %w: doc index count", encoding.ErrCorrupt)
		}
		value = value[n:]
		d.counts[int64(doc)] += int64(count)
	}
	if len(value) != 0 {
		return fmt.Errorf("core: %w: doc index trailing bytes", encoding.ErrCorrupt)
	}
	return nil
}

func (d *docIndexAggregate) Merge(other Aggregate) {
	for doc, c := range other.(*docIndexAggregate).counts {
		d.counts[doc] += c
	}
}

func (d *docIndexAggregate) Frequency() int64 {
	var n int64
	for _, c := range d.counts {
		n += c
	}
	return n
}

func (d *docIndexAggregate) Encode() []byte {
	docs := make([]int64, 0, len(d.counts))
	for doc := range d.counts {
		docs = append(docs, doc)
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i] < docs[j] })
	b := encoding.AppendUvarint(nil, uint64(len(docs)))
	for _, doc := range docs {
		b = encoding.AppendUvarint(b, uint64(doc))
		b = encoding.AppendUvarint(b, uint64(d.counts[doc]))
	}
	return b
}

// DocIndexCounts extracts the per-document counts from an aggregate
// produced under AggDocIndex. It returns false if the aggregate is of a
// different kind.
func DocIndexCounts(a Aggregate) (map[int64]int64, bool) {
	d, ok := a.(*docIndexAggregate)
	if !ok {
		return nil, false
	}
	return d.counts, true
}

// DocumentFrequency returns the number of distinct documents in an
// AggDocIndex aggregate — the df(s) notion of Section II.
func DocumentFrequency(a Aggregate) (int64, bool) {
	d, ok := a.(*docIndexAggregate)
	if !ok {
		return 0, false
	}
	return int64(len(d.counts)), true
}
