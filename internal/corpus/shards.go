package corpus

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"ngramstats/internal/dictionary"
	"ngramstats/internal/encoding"
	"ngramstats/internal/mapreduce"
)

// shardMagic identifies corpus shard files.
var shardMagic = []byte("NGSHARD1")

// dictFileName is the dictionary file within a corpus directory, "kept
// as a single text file" per Section VII-B.
const dictFileName = "dictionary.tsv"

// WriteShards persists the collection into dir as the dictionary file
// plus n binary shard files of (docID, payload) records, mirroring the
// paper's layout ("documents are spread as key-value pairs … over a
// total of 256 binary files").
func WriteShards(c *Collection, dir string, n int) error {
	if n < 1 {
		n = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if c.Dict != nil {
		f, err := os.Create(filepath.Join(dir, dictFileName))
		if err != nil {
			return err
		}
		if err := c.Dict.Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	writers := make([]*bufio.Writer, n)
	files := make([]*os.File, n)
	for i := 0; i < n; i++ {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("shard-%05d.bin", i)))
		if err != nil {
			return err
		}
		files[i] = f
		writers[i] = bufio.NewWriterSize(f, 256<<10)
		if _, err := writers[i].Write(shardMagic); err != nil {
			return err
		}
	}
	for i := range c.Docs {
		d := &c.Docs[i]
		w := writers[int(d.ID)%n]
		if err := encoding.WriteRecord(w, EncodeDocKey(d.ID), EncodeDocValue(d)); err != nil {
			return err
		}
	}
	for i := range writers {
		if err := writers[i].Flush(); err != nil {
			return err
		}
		if err := files[i].Close(); err != nil {
			return err
		}
	}
	return nil
}

// ReadShards loads a collection persisted by WriteShards. Documents are
// ordered by identifier.
func ReadShards(name, dir string) (*Collection, error) {
	c := &Collection{Name: name}
	dictPath := filepath.Join(dir, dictFileName)
	if f, err := os.Open(dictPath); err == nil {
		d, err := dictionary.Load(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("corpus: load dictionary: %w", err)
		}
		c.Dict = d
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	paths, err := filepath.Glob(filepath.Join(dir, "shard-*.bin"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("corpus: no shard files in %s", dir)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if err := readShard(c, path); err != nil {
			return nil, fmt.Errorf("corpus: shard %s: %w", path, err)
		}
	}
	sort.Slice(c.Docs, func(i, j int) bool { return c.Docs[i].ID < c.Docs[j].ID })
	return c, nil
}

// ShardInput exposes a persisted corpus directory as a MapReduce input
// without loading the documents into memory: one split per shard file,
// each streamed from disk as its map task runs. This is the
// corpus-at-rest path (corpusgen output → computation) for collections
// larger than main memory.
func ShardInput(dir string) (mapreduce.Input, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "shard-*.bin"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("corpus: no shard files in %s", dir)
	}
	sort.Strings(paths)
	splits := make([]mapreduce.Split, len(paths))
	for i, path := range paths {
		path := path
		splits[i] = mapreduce.SplitFunc(func(yield func(key, value []byte) error) error {
			return scanShard(path, yield)
		})
	}
	return mapreduce.SplitsInput(splits...), nil
}

// scanShard streams the records of one shard file.
func scanShard(path string, yield func(key, value []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 256<<10)
	magic := make([]byte, len(shardMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("corpus: shard %s: read magic: %w", path, err)
	}
	if !bytes.Equal(magic, shardMagic) {
		return fmt.Errorf("corpus: shard %s: bad magic %q", path, magic)
	}
	rr := encoding.NewRecordReader(br)
	for {
		k, v, err := rr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("corpus: shard %s: %w", path, err)
		}
		if err := yield(k, v); err != nil {
			return err
		}
	}
}

func readShard(c *Collection, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 256<<10)
	magic := make([]byte, len(shardMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("read magic: %w", err)
	}
	if !bytes.Equal(magic, shardMagic) {
		return fmt.Errorf("bad magic %q", magic)
	}
	rr := encoding.NewRecordReader(br)
	for {
		k, v, err := rr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		id, err := DecodeDocKey(k)
		if err != nil {
			return err
		}
		doc, err := DecodeDocValue(v)
		if err != nil {
			return err
		}
		doc.ID = id
		c.Docs = append(c.Docs, *doc)
	}
}
