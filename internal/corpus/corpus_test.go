package corpus

import (
	"context"
	"math"
	"reflect"
	"testing"

	"ngramstats/internal/mapreduce"
	"ngramstats/internal/sequence"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"don't stop", []string{"don't", "stop"}},
		{"e4 e5 2. Nf3", []string{"e4", "e5", "2", "nf3"}},
		{"  multiple   spaces ", []string{"multiple", "spaces"}},
		{"", nil},
		{"...", nil},
		{"'quoted'", []string{"quoted"}},
		{"3.14 pies", []string{"3", "14", "pies"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSplitSentences(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"One. Two. Three.", []string{"One.", "Two.", "Three."}},
		{"What? Yes! Fine.", []string{"What?", "Yes!", "Fine."}},
		{"Mr. Smith went home. He slept.", []string{"Mr. Smith went home.", "He slept."}},
		{"J. Smith agreed.", []string{"J. Smith agreed."}},
		{"Pi is 3.14 exactly. Next.", []string{"Pi is 3.14 exactly.", "Next."}},
		{"Line one\nLine two", []string{"Line one", "Line two"}},
		{"", nil},
		{"No terminator", []string{"No terminator"}},
	}
	for _, c := range cases {
		if got := SplitSentences(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitSentences(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestBoilerplateFilter(t *testing.T) {
	in := "Home | About | Contact\n" +
		"This is the actual article content with enough words to keep.\n" +
		"Next » Prev » Index » Top » More\n" +
		"Copyright\n" +
		"Another real sentence follows here with sufficient length too.\n"
	out := BoilerplateFilter(in)
	if got := len(SplitSentences(out)); got != 2 {
		t.Fatalf("expected 2 content lines, got %d: %q", got, out)
	}
}

func TestFromTextRunningExample(t *testing.T) {
	// The running example as text: term frequencies x:7, b:5, a:3 give
	// ids x=0, b=1, a=2.
	texts := []string{"a x b x x", "b a x b x", "x b a x b"}
	c, err := FromText("demo", texts, []int{1990, 1991, 1992}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Docs) != 3 {
		t.Fatalf("docs = %d", len(c.Docs))
	}
	id := func(s string) sequence.Term {
		v, ok := c.Dict.ID(s)
		if !ok {
			t.Fatalf("missing term %q", s)
		}
		return v
	}
	if id("x") != 0 || id("b") != 1 || id("a") != 2 {
		t.Fatalf("ids: x=%d b=%d a=%d", id("x"), id("b"), id("a"))
	}
	want := sequence.Seq{2, 0, 1, 0, 0}
	if !sequence.Equal(c.Docs[0].Sentences[0], want) {
		t.Fatalf("doc 0 = %v, want %v", c.Docs[0].Sentences[0], want)
	}
	if c.Docs[2].Year != 1992 {
		t.Fatalf("year = %d", c.Docs[2].Year)
	}
}

func TestStats(t *testing.T) {
	c := &Collection{Docs: []Document{
		{ID: 0, Sentences: []sequence.Seq{{0, 1}, {0, 1, 2, 3}}},
		{ID: 1, Sentences: []sequence.Seq{{4, 4, 4}}},
	}}
	st := c.Stats()
	if st.Documents != 2 || st.Sentences != 3 || st.TermOccurrences != 9 {
		t.Fatalf("stats = %+v", st)
	}
	if st.DistinctTerms != 5 {
		t.Fatalf("distinct = %d", st.DistinctTerms)
	}
	if math.Abs(st.SentenceLenMean-3.0) > 1e-9 {
		t.Fatalf("mean = %f", st.SentenceLenMean)
	}
	wantSD := math.Sqrt((1 + 1 + 0) / 3.0)
	if math.Abs(st.SentenceLenSD-wantSD) > 1e-9 {
		t.Fatalf("sd = %f, want %f", st.SentenceLenSD, wantSD)
	}
}

func TestSample(t *testing.T) {
	c := &Collection{Name: "NYT"}
	for i := 0; i < 100; i++ {
		c.Docs = append(c.Docs, Document{ID: int64(i)})
	}
	half := c.Sample(0.5, 42)
	if len(half.Docs) != 50 {
		t.Fatalf("sample size = %d", len(half.Docs))
	}
	if half.Name != "NYT-50%" {
		t.Fatalf("sample name = %q", half.Name)
	}
	// Deterministic given the seed.
	again := c.Sample(0.5, 42)
	for i := range half.Docs {
		if half.Docs[i].ID != again.Docs[i].ID {
			t.Fatal("sampling not deterministic")
		}
	}
	// No duplicates.
	seen := map[int64]bool{}
	for _, d := range half.Docs {
		if seen[d.ID] {
			t.Fatalf("duplicate doc %d", d.ID)
		}
		seen[d.ID] = true
	}
	if got := c.Sample(1.0, 1); got != c {
		t.Fatal("Sample(1.0) should return the collection itself")
	}
}

func TestDocCodecRoundTrip(t *testing.T) {
	d := &Document{
		ID:   123456,
		Year: 2007,
		Sentences: []sequence.Seq{
			{1, 2, 3},
			{},
			{70000, 0},
		},
	}
	v := EncodeDocValue(d)
	got, err := DecodeDocValue(v)
	if err != nil {
		t.Fatal(err)
	}
	got.ID = d.ID
	if got.Year != d.Year || len(got.Sentences) != 3 {
		t.Fatalf("decoded = %+v", got)
	}
	for i := range d.Sentences {
		if !sequence.Equal(got.Sentences[i], d.Sentences[i]) {
			t.Fatalf("sentence %d = %v, want %v", i, got.Sentences[i], d.Sentences[i])
		}
	}
	k := EncodeDocKey(d.ID)
	id, err := DecodeDocKey(k)
	if err != nil || id != d.ID {
		t.Fatalf("key round trip = %d, %v", id, err)
	}
	// Corruption.
	if _, err := DecodeDocValue(v[:len(v)-1]); err == nil {
		t.Fatal("DecodeDocValue accepted truncated input")
	}
	if _, err := DecodeDocValue(append(append([]byte(nil), v...), 9)); err == nil {
		t.Fatal("DecodeDocValue accepted trailing bytes")
	}
}

func TestVisitSentences(t *testing.T) {
	d := &Document{ID: 1, Year: 2000, Sentences: []sequence.Seq{{5, 6}, {7}}}
	v := EncodeDocValue(d)
	var got []sequence.Seq
	err := VisitSentences(v, func(s sequence.Seq) error {
		got = append(got, sequence.Clone(s))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !sequence.Equal(got[0], sequence.Seq{5, 6}) || !sequence.Equal(got[1], sequence.Seq{7}) {
		t.Fatalf("VisitSentences = %v", got)
	}
}

func TestCollectionInputFeedsMapReduce(t *testing.T) {
	c := &Collection{Docs: []Document{
		{ID: 0, Sentences: []sequence.Seq{{0, 1}}},
		{ID: 1, Sentences: []sequence.Seq{{1, 1}}},
		{ID: 2, Sentences: []sequence.Seq{{0}}},
	}}
	in := c.Input(2)
	splits, err := in.Splits()
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 2 {
		t.Fatalf("splits = %d", len(splits))
	}
	// Count term occurrences via a trivial job.
	res, err := mapreduce.Run(context.Background(), &mapreduce.Job{
		Name:  "occurrences",
		Input: in,
		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapperFunc(func(key, value []byte, emit mapreduce.Emit) error {
				return VisitSentences(value, func(s sequence.Seq) error {
					for range s {
						if err := emit([]byte("n"), []byte{1}); err != nil {
							return err
						}
					}
					return nil
				})
			})
		},
		NewReducer: func() mapreduce.Reducer {
			return mapreduce.ReducerFunc(func(key []byte, values *mapreduce.Values, emit mapreduce.Emit) error {
				var n byte
				for values.Next() {
					n += values.Value()[0]
				}
				return emit(key, []byte{n})
			})
		},
		NumReducers: 1,
		TempDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := mapreduce.CollectDataset(res.Output)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Value[0] != 5 {
		t.Fatalf("occurrences = %v", recs)
	}
}

func TestShardsRoundTrip(t *testing.T) {
	texts := []string{"a x b. x x again.", "b a x b x", "x b a x b"}
	c, err := FromText("demo", texts, []int{1990, 1991, 1992}, false)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteShards(c, dir, 2); err != nil {
		t.Fatal(err)
	}
	got, err := ReadShards("demo", dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Docs) != len(c.Docs) {
		t.Fatalf("docs = %d, want %d", len(got.Docs), len(c.Docs))
	}
	for i := range c.Docs {
		if got.Docs[i].ID != c.Docs[i].ID || got.Docs[i].Year != c.Docs[i].Year {
			t.Fatalf("doc %d metadata mismatch", i)
		}
		if len(got.Docs[i].Sentences) != len(c.Docs[i].Sentences) {
			t.Fatalf("doc %d sentence count mismatch", i)
		}
		for j := range c.Docs[i].Sentences {
			if !sequence.Equal(got.Docs[i].Sentences[j], c.Docs[i].Sentences[j]) {
				t.Fatalf("doc %d sentence %d mismatch", i, j)
			}
		}
	}
	if got.Dict == nil || got.Dict.Len() != c.Dict.Len() {
		t.Fatal("dictionary not restored")
	}
	// Stats agree after the round trip.
	if got.Stats() != c.Stats() {
		t.Fatalf("stats mismatch: %+v vs %+v", got.Stats(), c.Stats())
	}
}

func TestReadShardsMissingDir(t *testing.T) {
	if _, err := ReadShards("x", t.TempDir()); err == nil {
		t.Fatal("expected error for empty directory")
	}
}

func TestShardInputStreamsWithoutLoading(t *testing.T) {
	texts := []string{"a b c. d e f.", "a a b b.", "c d. e f. a b."}
	c, err := FromText("stream", texts, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteShards(c, dir, 3); err != nil {
		t.Fatal(err)
	}
	in, err := ShardInput(dir)
	if err != nil {
		t.Fatal(err)
	}
	splits, err := in.Splits()
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 3 {
		t.Fatalf("splits = %d, want one per shard", len(splits))
	}
	// Stream all records and verify the documents round-trip.
	byID := map[int64]*Document{}
	for _, sp := range splits {
		err := sp.Records(func(k, v []byte) error {
			id, err := DecodeDocKey(k)
			if err != nil {
				return err
			}
			doc, err := DecodeDocValue(v)
			if err != nil {
				return err
			}
			doc.ID = id
			byID[id] = doc
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(byID) != len(c.Docs) {
		t.Fatalf("streamed %d docs, want %d", len(byID), len(c.Docs))
	}
	for i := range c.Docs {
		want := &c.Docs[i]
		got := byID[want.ID]
		if got == nil || len(got.Sentences) != len(want.Sentences) {
			t.Fatalf("doc %d mismatch", want.ID)
		}
	}
	// Missing directory errors.
	if _, err := ShardInput(t.TempDir()); err == nil {
		t.Fatal("expected error for empty dir")
	}
}
