package corpus

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"ngramstats/internal/dictionary"
	"ngramstats/internal/encoding"
	"ngramstats/internal/sequence"
)

// BuilderOptions configures incremental collection construction.
type BuilderOptions struct {
	// MemoryBudget bounds the bytes of encoded documents the builder
	// keeps in memory; past it, buffered documents spill to a temporary
	// shard file. Zero selects 256 MiB. The term dictionary always stays
	// resident (the paper's setting: dictionaries fit in memory,
	// collections need not).
	MemoryBudget int
	// TempDir is the directory for spilled document shards. Empty
	// selects the system temp directory.
	TempDir string
}

func (o BuilderOptions) withDefaults() BuilderOptions {
	if o.MemoryBudget <= 0 {
		o.MemoryBudget = 256 << 20
	}
	return o
}

// Builder constructs a Collection incrementally, one document at a
// time, without ever holding raw text beyond the document being added.
//
// Dictionary identifiers must be assigned in descending collection-
// frequency order (Section V, "Sequence Encoding"), which is only known
// once every document has been seen. The builder therefore encodes
// sentences against provisional identifiers assigned in first-seen
// order, buffers the provisionally-encoded documents within a memory
// budget (spilling them to a temporary shard file past it), and at
// Finish builds the final frequency-ranked dictionary and remaps every
// buffered and spilled document through a provisional→final identifier
// table. The result is identical to a batch build over the same
// documents in the same order.
type Builder struct {
	name string
	opts BuilderOptions

	// Provisional dictionary: term → first-seen identifier, with
	// per-identifier term strings and occurrence counts.
	ids    map[string]sequence.Term
	terms  []string
	counts []int64

	// Buffered provisionally-encoded documents and their approximate
	// resident bytes.
	docs     []Document
	buffered int

	// Spill state: one temporary shard file of (docID, payload) records
	// in Add order, plus the number of documents it holds.
	spill       *os.File
	spillW      *bufio.Writer
	spilledDocs int

	// Reusable per-Add scan state (see addSentences): the streaming
	// tokenizer plus the document's flat term buffer and sentence ends.
	scan     tokenScanner
	termBuf  []sequence.Term
	sentEnds []int

	// seed is the number of leading terms inherited from a previous
	// generation's dictionary (see NewSeededBuilder); 0 for an unseeded
	// build. Seeded identifiers are final, not provisional: Finish keeps
	// them in place and ranks only the terms first seen by this builder.
	seed int

	added    int64
	finished bool
}

// NewBuilder returns an empty builder for a collection with the given
// name.
func NewBuilder(name string, opts BuilderOptions) *Builder {
	return &Builder{
		name: name,
		opts: opts.withDefaults(),
		ids:  make(map[string]sequence.Term),
	}
}

// NewSeededBuilder returns a builder whose dictionary extends seed: the
// seed's identifiers 0..seed.Len()-1 stay assigned to the same terms in
// the finished dictionary, with their collection frequencies continued
// cumulatively (seed cf plus this build's occurrences), and terms first
// seen by this builder are appended after them, ranked among themselves
// by descending frequency with lexicographic tie-break.
//
// This is the dictionary contract of LSM delta generations: every
// generation's encoded sequences remain bytewise comparable because an
// identifier, once assigned, never moves, and the newest generation's
// (term, cumulative cf) table alone reconstructs the dictionary a batch
// rebuild over all documents would produce.
func NewSeededBuilder(name string, opts BuilderOptions, seed *dictionary.Dictionary) *Builder {
	b := NewBuilder(name, opts)
	n := seed.Len()
	b.seed = n
	b.terms = make([]string, n)
	b.counts = make([]int64, n)
	for i := 0; i < n; i++ {
		id := sequence.Term(i)
		term := seed.Term(id)
		b.terms[i] = term
		b.counts[i] = seed.CF(id)
		b.ids[term] = id
	}
	return b
}

// errFinished guards against use after Finish or Discard.
var errFinished = errors.New("corpus: builder already finished")

// Added returns the number of documents added so far.
func (b *Builder) Added() int64 { return b.added }

// SpilledDocs returns the number of documents spilled to disk so far.
func (b *Builder) SpilledDocs() int { return b.spilledDocs }

// Add tokenizes, sentence-splits, and provisionally encodes one raw
// document. When web is true the text passes the boilerplate filter
// first. The raw text is not retained.
//
// The text streams through a single-pass tokenizer into reusable
// buffers: beyond new-term strings, the only allocations are the
// document's own encoded sentences (one term arena plus the sentence
// headers), gated by TestAddAllocsPerDocument.
func (b *Builder) Add(id int64, year int, text string, web bool) error {
	if b.finished {
		return errFinished
	}
	if web {
		text = BoilerplateFilter(text)
	}
	doc := Document{ID: id, Year: year}
	bytes := 48 // struct + slice headers

	b.termBuf = b.termBuf[:0]
	b.sentEnds = b.sentEnds[:0]
	b.scan.scan(text, (*builderSink)(b))

	if len(b.sentEnds) > 0 {
		// All sentences share one exact-size term arena; each sentence is
		// a capacity-capped window into it.
		arena := make(sequence.Seq, len(b.termBuf))
		copy(arena, b.termBuf)
		doc.Sentences = make([]sequence.Seq, len(b.sentEnds))
		start := 0
		for i, end := range b.sentEnds {
			doc.Sentences[i] = arena[start:end:end]
			bytes += 24 + 4*(end-start)
			start = end
		}
	}
	b.docs = append(b.docs, doc)
	b.buffered += bytes
	b.added++
	if b.buffered > b.opts.MemoryBudget {
		return b.spillDocs()
	}
	return nil
}

// builderSink adapts the builder to the tokenizer's callback interface
// without a per-Add closure allocation.
type builderSink Builder

func (s *builderSink) token(tok []byte) {
	b := (*Builder)(s)
	// b.ids[string(tok)] compiles to an allocation-free map lookup; the
	// string is materialized only for a term's first occurrence.
	tid, ok := b.ids[string(tok)]
	if !ok {
		term := string(tok)
		tid = sequence.Term(len(b.terms))
		b.ids[term] = tid
		b.terms = append(b.terms, term)
		b.counts = append(b.counts, 0)
	}
	b.counts[tid]++
	b.termBuf = append(b.termBuf, tid)
}

func (s *builderSink) sentenceEnd() {
	b := (*Builder)(s)
	start := 0
	if n := len(b.sentEnds); n > 0 {
		start = b.sentEnds[n-1]
	}
	if len(b.termBuf) > start {
		b.sentEnds = append(b.sentEnds, len(b.termBuf))
	}
}

// spillDocs appends every buffered document to the spill shard and
// resets the buffer.
func (b *Builder) spillDocs() error {
	if b.spill == nil {
		f, err := os.CreateTemp(b.opts.TempDir, "corpus-builder-*.bin")
		if err != nil {
			return fmt.Errorf("corpus: builder spill: %w", err)
		}
		b.spill = f
		b.spillW = bufio.NewWriterSize(f, 256<<10)
	}
	for i := range b.docs {
		d := &b.docs[i]
		if err := encoding.WriteRecord(b.spillW, EncodeDocKey(d.ID), EncodeDocValue(d)); err != nil {
			return fmt.Errorf("corpus: builder spill: %w", err)
		}
		b.spilledDocs++
	}
	// Zero the elements before reslicing: the backing array survives,
	// and stale Document values there would pin up to a full budget of
	// encoded sentences against the GC.
	clear(b.docs)
	b.docs = b.docs[:0]
	b.buffered = 0
	return nil
}

// Finish freezes the dictionary, remaps every document to the final
// frequency-ranked identifiers, and returns the completed collection.
// The builder must not be used afterwards.
func (b *Builder) Finish() (*Collection, error) {
	if b.finished {
		return nil, errFinished
	}
	b.finished = true
	defer b.cleanup()

	// Final dictionary: identical construction to the batch path, so a
	// streamed build yields byte-identical encodings.
	dict, err := b.buildDict()
	if err != nil {
		return nil, err
	}

	// Provisional → final identifier table.
	remap := make([]sequence.Term, len(b.terms))
	for i, term := range b.terms {
		id, ok := dict.ID(term)
		if !ok {
			return nil, fmt.Errorf("corpus: builder: term %q lost in dictionary build", term)
		}
		remap[i] = id
	}

	c := &Collection{Name: b.name, Dict: dict}
	c.Docs = make([]Document, 0, b.spilledDocs+len(b.docs))

	// Spilled documents first — they were added first.
	if b.spill != nil {
		if err := b.spillW.Flush(); err != nil {
			return nil, fmt.Errorf("corpus: builder: flush spill: %w", err)
		}
		if _, err := b.spill.Seek(0, io.SeekStart); err != nil {
			return nil, fmt.Errorf("corpus: builder: rewind spill: %w", err)
		}
		rr := encoding.NewRecordReader(bufio.NewReaderSize(b.spill, 256<<10))
		for {
			k, v, err := rr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, fmt.Errorf("corpus: builder: read spill: %w", err)
			}
			id, err := DecodeDocKey(k)
			if err != nil {
				return nil, err
			}
			doc, err := DecodeDocValue(v)
			if err != nil {
				return nil, err
			}
			doc.ID = id
			if err := remapDoc(doc, remap); err != nil {
				return nil, err
			}
			c.Docs = append(c.Docs, *doc)
		}
	}
	for i := range b.docs {
		if err := remapDoc(&b.docs[i], remap); err != nil {
			return nil, err
		}
		c.Docs = append(c.Docs, b.docs[i])
	}
	b.docs = nil
	return c, nil
}

// buildDict freezes the final dictionary. Unseeded builds rank every
// term by frequency (the batch construction); seeded builds keep the
// inherited identifiers 0..seed-1 in place with their cumulative
// frequencies and append this build's new terms ranked among
// themselves.
func (b *Builder) buildDict() (*dictionary.Dictionary, error) {
	if b.seed == 0 {
		db := dictionary.NewBuilder()
		for i, term := range b.terms {
			db.AddN(term, b.counts[i])
		}
		return db.Build(), nil
	}
	type tc struct {
		term string
		cf   int64
	}
	fresh := make([]tc, 0, len(b.terms)-b.seed)
	for i := b.seed; i < len(b.terms); i++ {
		fresh = append(fresh, tc{b.terms[i], b.counts[i]})
	}
	sort.Slice(fresh, func(i, j int) bool {
		if fresh[i].cf != fresh[j].cf {
			return fresh[i].cf > fresh[j].cf
		}
		return fresh[i].term < fresh[j].term
	})
	terms := append([]string(nil), b.terms[:b.seed]...)
	cfs := append([]int64(nil), b.counts[:b.seed]...)
	for _, e := range fresh {
		terms = append(terms, e.term)
		cfs = append(cfs, e.cf)
	}
	return dictionary.FromTable(terms, cfs)
}

// Discard releases the builder's resources without producing a
// collection.
func (b *Builder) Discard() {
	b.finished = true
	b.cleanup()
}

func (b *Builder) cleanup() {
	if b.spill != nil {
		name := b.spill.Name()
		b.spill.Close()
		os.Remove(name)
		b.spill = nil
		b.spillW = nil
	}
}

// remapDoc rewrites a document's terms through the provisional→final
// identifier table in place. A term outside the table means the spill
// record was corrupted after it was written (DecodeDocValue validates
// structure, not identifier range): report it rather than panic.
func remapDoc(d *Document, remap []sequence.Term) error {
	for _, s := range d.Sentences {
		for i, t := range s {
			if int(t) >= len(remap) {
				return fmt.Errorf("corpus: %w: doc %d: term id %d outside dictionary of %d",
					encoding.ErrCorrupt, d.ID, t, len(remap))
			}
			s[i] = remap[t]
		}
	}
	return nil
}
