package corpus

import (
	"strings"
	"testing"
)

func TestKeepLineHeuristics(t *testing.T) {
	cases := []struct {
		line string
		want bool
	}{
		{"", false},
		{"   ", false},
		{"Home", false}, // too few words
		{"About | Contact | Terms | Privacy | Legal", false}, // link separators
		{"This sentence has plenty of ordinary words to keep around.", true},
		{"1 2 3 4 5 6 7 8", false},              // no alphabetic tokens
		{"mixed 1 2 3 words here now ok", true}, // ≥50% alphabetic
	}
	for _, c := range cases {
		if got := keepLine(c.line); got != c.want {
			t.Errorf("keepLine(%q) = %v, want %v", c.line, got, c.want)
		}
	}
}

func TestIsSentenceEndAbbreviations(t *testing.T) {
	// Known abbreviations and initials must not split; ordinary words
	// must.
	cases := []struct {
		text string
		want int // expected sentence count
	}{
		{"Dr. Smith arrived.", 1},
		{"Prof. Jones et al. wrote it.", 1},
		{"The end. A new start.", 2},
		{"He said no. Then yes.", 2}, // "no." is in the list but… see below
		{"Sen. Brown voted. Rep. Lee did not.", 2},
	}
	for _, c := range cases {
		got := SplitSentences(c.text)
		// "no" is also an abbreviation (No. 5), so the fourth case can
		// legitimately yield one sentence; accept ±.
		if c.text == "He said no. Then yes." {
			if len(got) < 1 || len(got) > 2 {
				t.Errorf("SplitSentences(%q) = %d sentences", c.text, len(got))
			}
			continue
		}
		if len(got) != c.want {
			t.Errorf("SplitSentences(%q) = %v (want %d sentences)", c.text, got, c.want)
		}
	}
}

func TestTokenizeUnicode(t *testing.T) {
	got := Tokenize("Čapek's ROBOTS — naïve?")
	want := []string{"čapek's", "robots", "naïve"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeApostropheEdges(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"rock 'n' roll", "rock|n|roll"}, // leading/trailing apostrophes drop
		{"it's", "it's"},
		{"O'Brien's", "o'brien's"},
		{"ends'", "ends"},
	}
	for _, c := range cases {
		got := strings.Join(Tokenize(c.in), "|")
		if got != c.want {
			t.Errorf("Tokenize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestDocYear(t *testing.T) {
	d := &Document{ID: 1, Year: 1999, Sentences: nil}
	y, err := DocYear(EncodeDocValue(d))
	if err != nil || y != 1999 {
		t.Fatalf("DocYear = %d, %v", y, err)
	}
	if _, err := DocYear([]byte{0x80}); err == nil {
		t.Fatal("DocYear accepted malformed input")
	}
}

func TestSplitSentencesNewlinesAndWhitespace(t *testing.T) {
	got := SplitSentences("  first line \n\n second.  third!  ")
	want := []string{"first line", "second.", "third!"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sentence %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestBoilerplateFilterKeepsParagraphs(t *testing.T) {
	in := strings.Join([]string{
		"Navigation » Home » Products",
		"The quick brown fox jumps over the lazy dog near the river bank.",
		"© 2009",
		"Another paragraph with enough real words to be kept by the filter.",
	}, "\n")
	out := BoilerplateFilter(in)
	if strings.Contains(out, "Navigation") || strings.Contains(out, "©") {
		t.Fatalf("boilerplate survived: %q", out)
	}
	if !strings.Contains(out, "quick brown fox") || !strings.Contains(out, "Another paragraph") {
		t.Fatalf("content removed: %q", out)
	}
}
