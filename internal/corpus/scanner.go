package corpus

import (
	"unicode"
	"unicode/utf8"
)

// tokenScanner streams the sentence/token structure of a document in a
// single pass over the raw text, without allocating: no []rune
// conversion of the text, no per-sentence strings, no per-token
// strings. It produces exactly the token stream of
//
//	for _, sent := range SplitSentences(text) {
//	    for _, tok := range Tokenize(sent) { ... }
//	}
//
// (asserted by TestScannerMatchesSplitTokenize), which makes it the
// allocation-free engine behind Builder.Add while SplitSentences and
// Tokenize remain the string-returning public surface.
//
// The scratch buffers persist across scans, so one scanner reused for
// a whole collection settles into zero steady-state allocations.
type tokenScanner struct {
	tok []byte // lowercased bytes of the token being built
	wl  []byte // lowercased bytes of the letter/digit run ending at the cursor
}

// sentenceSink receives the scan's events. token's slice is reused
// across calls and valid only during the call; sentenceEnd may fire
// with no tokens since the previous one (an empty sentence).
type sentenceSink interface {
	token(tok []byte)
	sentenceEnd()
}

// scan streams text's tokens and sentence boundaries into sink.
func (sc *tokenScanner) scan(text string, sink sentenceSink) {
	sc.tok = sc.tok[:0]
	sc.wl = sc.wl[:0]
	prevLetter := false
	var prev rune = -1 // previous rune; -1 at start of text
	for i := 0; i < len(text); {
		r, sz := utf8.DecodeRuneInString(text[i:])
		next, nextOK := rune(0), i+sz < len(text)
		if nextOK {
			next, _ = utf8.DecodeRuneInString(text[i+sz:])
		}
		isAlnum := unicode.IsLetter(r) || unicode.IsDigit(r)
		var lower rune

		// Tokenize's per-rune state machine (text.go), with the sentence
		// boundary char hitting the flush branch like any separator.
		switch {
		case isAlnum:
			lower = unicode.ToLower(r)
			sc.tok = utf8.AppendRune(sc.tok, lower)
			prevLetter = true
		case r == '\'' && prevLetter && nextOK &&
			(unicode.IsLetter(next) || unicode.IsDigit(next)):
			sc.tok = utf8.AppendRune(sc.tok, r)
		default:
			sc.flushToken(sink)
			prevLetter = false
		}

		// SplitSentences' boundary rules. The letter/digit run ending at
		// the cursor (sc.wl) still excludes r here, so at a '.' it is
		// exactly the word isSentenceEnd inspects.
		switch r {
		case '\n', '!', '?':
			sink.sentenceEnd()
		case '.':
			if sc.dotEndsSentence(prev, next, nextOK) {
				sink.sentenceEnd()
			}
		}

		if isAlnum {
			sc.wl = utf8.AppendRune(sc.wl, lower)
		} else {
			sc.wl = sc.wl[:0]
		}
		prev = r
		i += sz
	}
	sc.flushToken(sink)
	sink.sentenceEnd()
}

func (sc *tokenScanner) flushToken(sink sentenceSink) {
	if len(sc.tok) > 0 {
		sink.token(sc.tok)
		sc.tok = sc.tok[:0]
	}
}

// dotEndsSentence is isSentenceEnd (text.go) restated over streaming
// state: prev/next are the runes around the period (-1 / !nextOK when
// absent) and sc.wl holds the lowercased letter/digit run before it.
func (sc *tokenScanner) dotEndsSentence(prev, next rune, nextOK bool) bool {
	// A period inside a number ("3.14") is not an end.
	if nextOK && unicode.IsDigit(next) && prev >= 0 && unicode.IsDigit(prev) {
		return false
	}
	// Must be followed by whitespace or end of text.
	if nextOK && !unicode.IsSpace(next) {
		return false
	}
	if len(sc.wl) == 1 && unicode.IsLetter(rune(sc.wl[0])) {
		return false // initials: "J. Smith"
	}
	if abbreviations[string(sc.wl)] {
		return false
	}
	return true
}
