//go:build !race

package corpus

const raceEnabled = false
