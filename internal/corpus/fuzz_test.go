package corpus

import (
	"testing"

	"ngramstats/internal/sequence"
)

// FuzzDecodeDocValue: arbitrary bytes either decode into a document
// that re-encodes identically, or are rejected — never a panic.
func FuzzDecodeDocValue(f *testing.F) {
	f.Add(EncodeDocValue(&Document{Year: 1999, Sentences: []sequence.Seq{{1, 2}, {}}}))
	f.Add([]byte{0x00, 0x00})
	f.Add([]byte{0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeDocValue(data)
		if err != nil {
			return
		}
		re := EncodeDocValue(d)
		d2, err := DecodeDocValue(re)
		if err != nil {
			t.Fatalf("re-encode failed to decode: %v", err)
		}
		if d2.Year != d.Year || len(d2.Sentences) != len(d.Sentences) {
			t.Fatal("round trip changed document")
		}
		// VisitSentences agrees with the full decode.
		i := 0
		err = VisitSentences(data, func(s sequence.Seq) error {
			if !sequence.Equal(s, d.Sentences[i]) {
				t.Fatalf("VisitSentences sentence %d differs", i)
			}
			i++
			return nil
		})
		if err != nil || i != len(d.Sentences) {
			t.Fatalf("VisitSentences saw %d sentences, err %v", i, err)
		}
	})
}

// FuzzTokenizeAndSplit: text processing never panics and produces
// tokens free of separators.
func FuzzTokenizeAndSplit(f *testing.F) {
	f.Add("Hello, World! It's 3.14. Dr. No said so.")
	f.Add("")
	f.Add("\x00\xff unicode: naïve — 日本語.")
	f.Fuzz(func(t *testing.T, text string) {
		for _, sent := range SplitSentences(text) {
			for _, tok := range Tokenize(sent) {
				if tok == "" {
					t.Fatal("empty token")
				}
				for _, r := range tok {
					if r == ' ' || r == '\n' || r == '.' {
						t.Fatalf("separator inside token %q", tok)
					}
				}
			}
		}
		_ = BoilerplateFilter(text)
	})
}
