package corpus

import (
	"reflect"
	"testing"
)

var builderTexts = []string{
	"the quick brown fox jumps over the lazy dog. the fox sleeps.",
	"a rose is a rose is a rose. the rose wilts!",
	"the dog barks at the fox. quick quick quick.",
	"hello world. the world is quick and brown.",
}

var builderYears = []int{1991, 1992, 1993, 1994}

// TestBuilderMatchesBatch verifies a streamed build is identical to the
// batch FromText over the same documents, both without and with a
// budget small enough to spill every document to disk.
func TestBuilderMatchesBatch(t *testing.T) {
	want, err := FromText("demo", builderTexts, builderYears, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int{0, 1} {
		b := NewBuilder("demo", BuilderOptions{MemoryBudget: budget, TempDir: t.TempDir()})
		for i, text := range builderTexts {
			if err := b.Add(int64(i), builderYears[i], text, false); err != nil {
				t.Fatal(err)
			}
		}
		if budget == 1 && b.SpilledDocs() == 0 {
			t.Fatal("tiny budget did not spill")
		}
		got, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if budget == 0 && b.SpilledDocs() != 0 {
			t.Fatalf("default budget spilled %d docs", b.SpilledDocs())
		}
		if got.Name != want.Name {
			t.Fatalf("name %q != %q", got.Name, want.Name)
		}
		if got.Dict.Len() != want.Dict.Len() {
			t.Fatalf("budget=%d: dictionary size %d != %d", budget, got.Dict.Len(), want.Dict.Len())
		}
		for id := 0; id < want.Dict.Len(); id++ {
			tid := uint32(id)
			if got.Dict.Term(tid) != want.Dict.Term(tid) || got.Dict.CF(tid) != want.Dict.CF(tid) {
				t.Fatalf("budget=%d: dictionary id %d: %q/%d != %q/%d", budget, id,
					got.Dict.Term(tid), got.Dict.CF(tid), want.Dict.Term(tid), want.Dict.CF(tid))
			}
		}
		if !reflect.DeepEqual(got.Docs, want.Docs) {
			t.Fatalf("budget=%d: documents differ:\ngot  %+v\nwant %+v", budget, got.Docs, want.Docs)
		}
	}
}

// TestBuilderSpillBoundary forces a spill mid-stream (not after every
// document) and checks document order survives the spill/buffer seam.
func TestBuilderSpillBoundary(t *testing.T) {
	b := NewBuilder("seam", BuilderOptions{MemoryBudget: 200, TempDir: t.TempDir()})
	texts := []string{
		"alpha beta gamma delta epsilon zeta eta theta iota kappa.",
		"beta gamma alpha.",
		"gamma alpha beta delta.",
		"tail document stays in memory.",
	}
	for i, text := range texts {
		if err := b.Add(int64(i), 0, text, false); err != nil {
			t.Fatal(err)
		}
	}
	spilled := b.SpilledDocs()
	if spilled == 0 || spilled == len(texts) {
		t.Fatalf("want a partial spill, got %d of %d docs spilled", spilled, len(texts))
	}
	got, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	want, err := FromText("seam", texts, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Docs, want.Docs) {
		t.Fatalf("documents differ across the spill seam:\ngot  %+v\nwant %+v", got.Docs, want.Docs)
	}
}

// TestBuilderWebFiltering routes web documents through the boilerplate
// filter, like the batch path.
func TestBuilderWebFiltering(t *testing.T) {
	text := "Home | About | Contact\nThis is the real content of the page with many words.\nNext » Prev"
	b := NewBuilder("web", BuilderOptions{})
	if err := b.Add(0, 0, text, true); err != nil {
		t.Fatal(err)
	}
	c, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Dict.ID("about"); ok {
		t.Fatal("boilerplate token survived filtering")
	}
	if _, ok := c.Dict.ID("content"); !ok {
		t.Fatal("content token missing")
	}
}

// TestBuilderFinishedGuard ensures a finished builder rejects further
// use.
func TestBuilderFinishedGuard(t *testing.T) {
	b := NewBuilder("done", BuilderOptions{})
	if err := b.Add(0, 0, "one document.", false); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(1, 0, "too late.", false); err == nil {
		t.Fatal("Add after Finish succeeded")
	}
	if _, err := b.Finish(); err == nil {
		t.Fatal("second Finish succeeded")
	}
}
