//go:build race

package corpus

// raceEnabled reports whether the race detector instruments this
// build; allocation-count gates are skipped under it because the
// instrumentation itself allocates.
const raceEnabled = true
