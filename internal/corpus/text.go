// Package corpus models document collections: documents with metadata
// (identifier, publication year), sentences of integer-encoded terms,
// text pre-processing (tokenization, sentence-boundary detection,
// boilerplate removal), a compact binary shard format, sampling, and
// adapters that feed collections into MapReduce jobs.
//
// The pre-processing mirrors Section VII-B of the paper: sentence
// boundaries act as barriers (no n-gram spans a sentence), web pages
// pass a boilerplate filter before tokenization, and collections are
// converted once into sequences of integer term identifiers spread over
// binary shard files.
package corpus

import (
	"strings"
	"unicode"
)

// Tokenize lower-cases text and splits it into alphanumeric token runs.
// Apostrophes inside words are kept ("don't" stays one token); all
// other punctuation separates tokens.
func Tokenize(text string) []string {
	var tokens []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			tokens = append(tokens, cur.String())
			cur.Reset()
		}
	}
	prevLetter := false
	runes := []rune(text)
	for i, r := range runes {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			cur.WriteRune(unicode.ToLower(r))
			prevLetter = true
		case r == '\'' && prevLetter && i+1 < len(runes) &&
			(unicode.IsLetter(runes[i+1]) || unicode.IsDigit(runes[i+1])):
			cur.WriteRune(r)
		default:
			flush()
			prevLetter = false
		}
	}
	flush()
	return tokens
}

// SplitSentences performs rule-based sentence-boundary detection, the
// stand-in for the OpenNLP detector the paper uses: a sentence ends at
// '.', '!', '?' or a newline, except that a period does not terminate
// a sentence when it follows a single-letter token or a known
// abbreviation, or when no whitespace follows it (e.g. "3.14",
// "e.g.x").
func SplitSentences(text string) []string {
	var sentences []string
	var cur strings.Builder
	runes := []rune(text)
	flush := func() {
		s := strings.TrimSpace(cur.String())
		if s != "" {
			sentences = append(sentences, s)
		}
		cur.Reset()
	}
	for i := 0; i < len(runes); i++ {
		r := runes[i]
		switch r {
		case '\n':
			flush()
		case '!', '?':
			cur.WriteRune(r)
			flush()
		case '.':
			cur.WriteRune(r)
			if isSentenceEnd(runes, i) {
				flush()
			}
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return sentences
}

// abbreviations that do not end sentences even when followed by a space
// and an upper-case letter.
var abbreviations = map[string]bool{
	"mr": true, "mrs": true, "ms": true, "dr": true, "prof": true,
	"st": true, "jr": true, "sr": true, "vs": true, "etc": true,
	"inc": true, "ltd": true, "co": true, "corp": true, "gov": true,
	"sen": true, "rep": true, "gen": true, "col": true, "capt": true,
	"jan": true, "feb": true, "mar": true, "apr": true, "jun": true,
	"jul": true, "aug": true, "sep": true, "sept": true, "oct": true,
	"nov": true, "dec": true, "no": true, "fig": true, "al": true,
}

func isSentenceEnd(runes []rune, dot int) bool {
	// A period inside a number ("3.14") is not an end.
	if dot+1 < len(runes) && unicode.IsDigit(runes[dot+1]) &&
		dot > 0 && unicode.IsDigit(runes[dot-1]) {
		return false
	}
	// Must be followed by whitespace or end of text.
	if dot+1 < len(runes) && !unicode.IsSpace(runes[dot+1]) {
		return false
	}
	// Find the word immediately before the period.
	end := dot
	start := end
	for start > 0 && (unicode.IsLetter(runes[start-1]) || unicode.IsDigit(runes[start-1])) {
		start--
	}
	word := strings.ToLower(string(runes[start:end]))
	if len(word) == 1 && unicode.IsLetter(rune(word[0])) {
		return false // initials: "J. Smith"
	}
	if abbreviations[word] {
		return false
	}
	return true
}

// BoilerplateFilter removes lines that look like web-page chrome rather
// than running text, a shallow-feature heuristic in the spirit of
// boilerpipe's default extractor (Kohlschütter et al., WSDM 2010): a
// line is kept when it has enough words, a high enough fraction of
// alphabetic tokens, and is not dominated by link-like separators.
func BoilerplateFilter(text string) string {
	var kept []string
	for _, line := range strings.Split(text, "\n") {
		if keepLine(line) {
			kept = append(kept, line)
		}
	}
	return strings.Join(kept, "\n")
}

func keepLine(line string) bool {
	trimmed := strings.TrimSpace(line)
	if trimmed == "" {
		return false
	}
	words := strings.Fields(trimmed)
	if len(words) < 5 {
		return false // navigation stubs: "Home", "About | Contact"
	}
	alpha := 0
	seps := strings.Count(trimmed, "|") + strings.Count(trimmed, "»") + strings.Count(trimmed, ">>")
	for _, w := range words {
		hasLetter := false
		for _, r := range w {
			if unicode.IsLetter(r) {
				hasLetter = true
				break
			}
		}
		if hasLetter {
			alpha++
		}
	}
	if float64(alpha)/float64(len(words)) < 0.5 {
		return false
	}
	if seps*4 >= len(words) {
		return false // link lists
	}
	return true
}
