package corpus

import (
	"fmt"
	"math"
	"math/rand"

	"ngramstats/internal/dictionary"
	"ngramstats/internal/encoding"
	"ngramstats/internal/mapreduce"
	"ngramstats/internal/sequence"
)

// Document is one document of a collection: integer-encoded sentences
// plus the metadata the extensions of Section VI-B aggregate over
// (publication year).
type Document struct {
	ID        int64
	Year      int
	Sentences []sequence.Seq
}

// Terms returns the total number of term occurrences in the document.
func (d *Document) Terms() int {
	n := 0
	for _, s := range d.Sentences {
		n += len(s)
	}
	return n
}

// Collection is an in-memory document collection together with its
// dictionary.
type Collection struct {
	// Name labels the collection in reports ("NYT", "CW", …).
	Name string
	// Dict is the term dictionary; may be nil for id-only collections.
	Dict *dictionary.Dictionary
	// Docs are the documents.
	Docs []Document
}

// Stats summarizes a collection the way Table I of the paper does.
type Stats struct {
	Documents       int64
	TermOccurrences int64
	DistinctTerms   int64
	Sentences       int64
	SentenceLenMean float64
	SentenceLenSD   float64
}

// Stats computes the Table I characteristics of the collection.
func (c *Collection) Stats() Stats {
	var st Stats
	st.Documents = int64(len(c.Docs))
	distinct := make(map[sequence.Term]struct{})
	var sum, sumSq float64
	for i := range c.Docs {
		for _, s := range c.Docs[i].Sentences {
			st.Sentences++
			st.TermOccurrences += int64(len(s))
			l := float64(len(s))
			sum += l
			sumSq += l * l
			for _, t := range s {
				distinct[t] = struct{}{}
			}
		}
	}
	st.DistinctTerms = int64(len(distinct))
	if st.Sentences > 0 {
		n := float64(st.Sentences)
		st.SentenceLenMean = sum / n
		variance := sumSq/n - st.SentenceLenMean*st.SentenceLenMean
		if variance < 0 {
			variance = 0
		}
		st.SentenceLenSD = math.Sqrt(variance)
	}
	return st
}

// Sample returns a new collection containing a random fraction of the
// documents, drawn without replacement with the given seed — the
// 25/50/75 % dataset-scaling subsets of Section VII-G.
func (c *Collection) Sample(fraction float64, seed int64) *Collection {
	if fraction >= 1 {
		return c
	}
	n := int(math.Round(fraction * float64(len(c.Docs))))
	if n < 0 {
		n = 0
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(c.Docs))[:n]
	out := &Collection{Name: fmt.Sprintf("%s-%d%%", c.Name, int(math.Round(fraction*100))), Dict: c.Dict}
	out.Docs = make([]Document, n)
	for i, idx := range perm {
		out.Docs[i] = c.Docs[idx]
	}
	return out
}

// EncodeDocKey encodes a document identifier as a MapReduce input key.
func EncodeDocKey(id int64) []byte {
	return encoding.AppendUvarint(nil, uint64(id))
}

// DecodeDocKey decodes a document identifier key.
func DecodeDocKey(b []byte) (int64, error) {
	v, n := encoding.Uvarint(b)
	if n <= 0 {
		return 0, fmt.Errorf("corpus: %w: doc key", encoding.ErrCorrupt)
	}
	return int64(v), nil
}

// EncodeDocValue encodes a document's payload (year and sentences) as a
// MapReduce input value: uvarint(year), uvarint(#sentences), then per
// sentence uvarint(length) followed by the term varints.
func EncodeDocValue(d *Document) []byte {
	size := 4
	for _, s := range d.Sentences {
		size += 2 + len(s)*2
	}
	buf := make([]byte, 0, size)
	buf = encoding.AppendUvarint(buf, uint64(d.Year))
	buf = encoding.AppendUvarint(buf, uint64(len(d.Sentences)))
	for _, s := range d.Sentences {
		buf = encoding.AppendUvarint(buf, uint64(len(s)))
		buf = encoding.AppendSeq(buf, s)
	}
	return buf
}

// DecodeDocValue decodes a payload produced by EncodeDocValue.
func DecodeDocValue(b []byte) (*Document, error) {
	d := &Document{}
	year, n := encoding.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("corpus: %w: year", encoding.ErrCorrupt)
	}
	b = b[n:]
	d.Year = int(year)
	nSent, n := encoding.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("corpus: %w: sentence count", encoding.ErrCorrupt)
	}
	b = b[n:]
	d.Sentences = make([]sequence.Seq, 0, nSent)
	for i := uint64(0); i < nSent; i++ {
		l, n := encoding.Uvarint(b)
		if n <= 0 {
			return nil, fmt.Errorf("corpus: %w: sentence length", encoding.ErrCorrupt)
		}
		b = b[n:]
		s := make(sequence.Seq, l)
		for j := uint64(0); j < l; j++ {
			t, n := encoding.Uvarint(b)
			if n <= 0 || t > 0xFFFFFFFF {
				return nil, fmt.Errorf("corpus: %w: term", encoding.ErrCorrupt)
			}
			b = b[n:]
			s[j] = sequence.Term(t)
		}
		d.Sentences = append(d.Sentences, s)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("corpus: %w: %d trailing bytes", encoding.ErrCorrupt, len(b))
	}
	return d, nil
}

// DocYear decodes only the year of an encoded payload.
func DocYear(b []byte) (int, error) {
	year, n := encoding.Uvarint(b)
	if n <= 0 {
		return 0, fmt.Errorf("corpus: %w: year", encoding.ErrCorrupt)
	}
	return int(year), nil
}

// VisitSentences decodes only the sentences of an encoded payload,
// calling fn for each without materializing the whole document. The
// sequence passed to fn is freshly decoded per call but reused
// internally; callers must not retain it.
func VisitSentences(b []byte, fn func(s sequence.Seq) error) error {
	_, n := encoding.Uvarint(b) // year
	if n <= 0 {
		return fmt.Errorf("corpus: %w: year", encoding.ErrCorrupt)
	}
	b = b[n:]
	nSent, n := encoding.Uvarint(b)
	if n <= 0 {
		return fmt.Errorf("corpus: %w: sentence count", encoding.ErrCorrupt)
	}
	b = b[n:]
	var s sequence.Seq
	for i := uint64(0); i < nSent; i++ {
		l, n := encoding.Uvarint(b)
		if n <= 0 {
			return fmt.Errorf("corpus: %w: sentence length", encoding.ErrCorrupt)
		}
		b = b[n:]
		s = s[:0]
		for j := uint64(0); j < l; j++ {
			t, n := encoding.Uvarint(b)
			if n <= 0 || t > 0xFFFFFFFF {
				return fmt.Errorf("corpus: %w: term", encoding.ErrCorrupt)
			}
			b = b[n:]
			s = append(s, sequence.Term(t))
		}
		if err := fn(s); err != nil {
			return err
		}
	}
	return nil
}

// Input exposes the collection as a MapReduce input of
// (docID, payload) records in the given number of splits.
func (c *Collection) Input(splits int) mapreduce.Input {
	if splits < 1 {
		splits = 1
	}
	if splits > len(c.Docs) {
		splits = len(c.Docs)
	}
	if splits == 0 {
		return mapreduce.SplitsInput()
	}
	per := (len(c.Docs) + splits - 1) / splits
	var parts []mapreduce.Split
	for off := 0; off < len(c.Docs); off += per {
		end := off + per
		if end > len(c.Docs) {
			end = len(c.Docs)
		}
		docs := c.Docs[off:end]
		parts = append(parts, mapreduce.SplitFunc(func(yield func(key, value []byte) error) error {
			for i := range docs {
				if err := yield(EncodeDocKey(docs[i].ID), EncodeDocValue(&docs[i])); err != nil {
					return err
				}
			}
			return nil
		}))
	}
	return mapreduce.SplitsInput(parts...)
}

// FromText builds a collection from raw text documents: boilerplate
// filtering (optional), sentence splitting, tokenization, dictionary
// construction, and integer encoding — the complete pre-processing
// pipeline of Section VII-B in one call. It is the batch facade over
// the incremental Builder.
func FromText(name string, texts []string, years []int, filterBoilerplate bool) (*Collection, error) {
	if years != nil && len(years) != len(texts) {
		return nil, fmt.Errorf("corpus: %d texts but %d years", len(texts), len(years))
	}
	// The batch inputs are already fully resident, so spilling encoded
	// documents to disk would only add a write-and-read-back round trip
	// (and a temp-dir dependency): disable it with an unbounded budget.
	b := NewBuilder(name, BuilderOptions{MemoryBudget: math.MaxInt})
	for i, text := range texts {
		year := 0
		if years != nil {
			year = years[i]
		}
		if err := b.Add(int64(i), year, text, filterBoilerplate); err != nil {
			b.Discard()
			return nil, err
		}
	}
	return b.Finish()
}
