package corpus

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// testSink collects scan output as per-sentence token slices, dropping
// empty sentences the way Builder.Add does.
type testSink struct {
	sents [][]string
	cur   []string
}

func (s *testSink) token(tok []byte) { s.cur = append(s.cur, string(tok)) }
func (s *testSink) sentenceEnd() {
	if len(s.cur) > 0 {
		s.sents = append(s.sents, s.cur)
		s.cur = nil
	}
}

// splitTokenize is the reference composition the scanner must match.
func splitTokenize(text string) [][]string {
	var out [][]string
	for _, sent := range SplitSentences(text) {
		if toks := Tokenize(sent); len(toks) > 0 {
			out = append(out, toks)
		}
	}
	return out
}

// TestScannerMatchesSplitTokenize pins the streaming scanner to the
// SplitSentences+Tokenize composition on hand-picked boundary cases and
// on randomized text over an adversarial alphabet.
func TestScannerMatchesSplitTokenize(t *testing.T) {
	cases := []string{
		"",
		"Hello world. Second sentence!",
		"Dr. Smith met Mr. Jones at 3.14 o'clock.",
		"J. Smith and A. B. Chandler vs. the world",
		"don't can't won't 'quoted' trailing'",
		"a''b c'' 'x' ''",
		"no.split here.x but yes. Here",
		"digits 1.2 3.x 4. 5",
		"multi\nline\n\ntext! with? breaks.",
		"Ünïcode Ärger ÉTÉ σίγμα ΣΊΓΜΑ.",
		"Kelvin \u212A. sign",
		"abbrev etc. etc.. fig. 3 inc. Co. co.",
		"trailing period.",
		"trailing letter a.",
		"  leading spaces. \t tabs\tand:::punct;;;",
		"\xff invalid \xfe utf8 \xc3( bytes",
		"e.g.x y.z.w...",
		"100% of $5.00, £3 (net)",
	}
	for i, text := range cases {
		sink := &testSink{}
		var sc tokenScanner
		sc.scan(text, sink)
		sink.sentenceEnd()
		want := splitTokenize(text)
		if fmt.Sprint(sink.sents) != fmt.Sprint(want) {
			t.Errorf("case %d %q:\nscanner %v\nwant    %v", i, text, sink.sents, want)
		}
	}

	// Randomized differential check over an alphabet dense in the
	// characters the boundary rules react to.
	alphabet := []string{
		"a", "b", "Z", "é", "σ", "1", "9", ".", "!", "?", "'", "\n",
		" ", "\t", "|", "e", "t", "c", "d", "r", "j", "\u212A", "\xff",
	}
	rng := rand.New(rand.NewSource(11))
	var sc tokenScanner // reused across iterations: scratch must not leak state
	for i := 0; i < 500; i++ {
		var sb strings.Builder
		for j := rng.Intn(60); j > 0; j-- {
			sb.WriteString(alphabet[rng.Intn(len(alphabet))])
		}
		text := sb.String()
		sink := &testSink{}
		sc.scan(text, sink)
		sink.sentenceEnd()
		want := splitTokenize(text)
		if fmt.Sprint(sink.sents) != fmt.Sprint(want) {
			t.Fatalf("random case %d %q:\nscanner %v\nwant    %v", i, text, sink.sents, want)
		}
	}
}

// TestAddAllocsPerDocument gates the builder's per-document allocation
// count on the steady state (all terms already known): one term arena,
// one sentence-header slice, and amortized growth of b.docs — nothing
// per token or per sentence.
func TestAddAllocsPerDocument(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	text := "The quick brown fox jumps over the lazy dog. " +
		"Pack my box with five dozen liquor jugs! " +
		"How vexingly quick daft zebras jump? " +
		"The five boxing wizards jump quickly."
	b := NewBuilder("allocs", BuilderOptions{MemoryBudget: 1 << 30})
	defer b.Discard()
	if err := b.Add(0, 2000, text, false); err != nil {
		t.Fatal(err)
	}
	id := int64(1)
	avg := testing.AllocsPerRun(200, func() {
		if err := b.Add(id, 2000, text, false); err != nil {
			t.Fatal(err)
		}
		id++
	})
	// 3 = term arena + Sentences headers + amortized b.docs growth.
	if avg > 4 {
		t.Fatalf("Builder.Add allocates %.1f times per document, want <= 4", avg)
	}
}
