// Package stats provides the measurement side of the evaluation
// (Section VII): the 2-dimensional exponential-width bucketing of
// output characteristics (Figure 2), per-run measurement records with
// the paper's three measures (wallclock time, bytes transferred,
// records transferred), and text renderers that print tables and series
// shaped like the paper's figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Bucket2D histograms n-grams into buckets of exponential width: an
// n-gram s with collection frequency cf(s) goes into bucket (i, j) with
// i = ⌊log10 |s|⌋ and j = ⌊log10 cf(s)⌋, exactly as in Figure 2.
type Bucket2D struct {
	counts map[[2]int]int64
	maxI   int
	maxJ   int
	total  int64
}

// NewBucket2D returns an empty histogram.
func NewBucket2D() *Bucket2D {
	return &Bucket2D{counts: make(map[[2]int]int64)}
}

// Add records one n-gram with the given length and collection
// frequency.
func (b *Bucket2D) Add(length int, cf int64) {
	if length < 1 || cf < 1 {
		return
	}
	i := int(math.Log10(float64(length)))
	j := int(math.Log10(float64(cf)))
	b.counts[[2]int{i, j}]++
	if i > b.maxI {
		b.maxI = i
	}
	if j > b.maxJ {
		b.maxJ = j
	}
	b.total++
}

// Count returns the number of n-grams in bucket (i, j).
func (b *Bucket2D) Count(i, j int) int64 { return b.counts[[2]int{i, j}] }

// Total returns the number of n-grams added.
func (b *Bucket2D) Total() int64 { return b.total }

// MaxLengthBucket returns the largest populated length bucket index.
func (b *Bucket2D) MaxLengthBucket() int { return b.maxI }

// MaxFrequencyBucket returns the largest populated frequency bucket
// index.
func (b *Bucket2D) MaxFrequencyBucket() int { return b.maxJ }

// String renders the histogram as a matrix with length buckets as
// columns (10^x) and collection-frequency buckets as rows (10^y),
// mirroring the axes of Figure 2.
func (b *Bucket2D) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s", "cf \\ length (10^x)")
	for i := 0; i <= b.maxI; i++ {
		fmt.Fprintf(&sb, "%12d", i)
	}
	sb.WriteByte('\n')
	for j := b.maxJ; j >= 0; j-- {
		fmt.Fprintf(&sb, "10^%-19d", j)
		for i := 0; i <= b.maxI; i++ {
			c := b.Count(i, j)
			if c == 0 {
				fmt.Fprintf(&sb, "%12s", ".")
			} else {
				fmt.Fprintf(&sb, "%12d", c)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Measurement is one experimental data point: a (method, dataset,
// parameters) combination with the paper's three measures.
type Measurement struct {
	// Dataset names the corpus ("NYT", "CW", "NYT-50%", …).
	Dataset string
	// Method names the algorithm.
	Method string
	// Tau and Sigma are the run parameters.
	Tau   int64
	Sigma int
	// Slots is the map/reduce slot count (Figure 7 sweeps it).
	Slots int
	// Fraction is the dataset fraction in percent (Figure 6 sweeps it).
	Fraction int
	// Wallclock is measure (a).
	Wallclock time.Duration
	// Bytes is measure (b): MAP_OUTPUT_BYTES over all jobs.
	Bytes int64
	// ShuffleBytes is the measured shuffle transfer over all jobs:
	// encoded run-format bytes handed from map to reduce
	// (SHUFFLE_BYTES_WRITTEN), the real on-the-wire counterpart of
	// measure (b).
	ShuffleBytes int64
	// Records is measure (c): MAP_OUTPUT_RECORDS over all jobs.
	Records int64
	// Jobs is the number of MapReduce jobs launched.
	Jobs int
	// Output is the number of n-grams produced.
	Output int64
}

// Table collects measurements and renders them grouped the way the
// paper's figures are read: one row per sweep value, one column per
// method.
type Table struct {
	// Title is printed above the table.
	Title string
	// SweepLabel names the varied parameter (e.g. "tau", "sigma").
	SweepLabel string
	rows       []Measurement
}

// NewTable returns an empty measurement table.
func NewTable(title, sweepLabel string) *Table {
	return &Table{Title: title, SweepLabel: sweepLabel}
}

// Add appends a measurement.
func (t *Table) Add(m Measurement) { t.rows = append(t.rows, m) }

// Rows returns all measurements in insertion order.
func (t *Table) Rows() []Measurement { return t.rows }

// sweepValue extracts the varied parameter for grouping.
func (t *Table) sweepValue(m Measurement) string {
	switch t.SweepLabel {
	case "tau":
		return fmt.Sprint(m.Tau)
	case "sigma":
		if m.Sigma >= math.MaxInt32 {
			return "inf"
		}
		return fmt.Sprint(m.Sigma)
	case "slots":
		return fmt.Sprint(m.Slots)
	case "fraction":
		return fmt.Sprintf("%d%%", m.Fraction)
	case "usecase":
		return fmt.Sprintf("tau=%d,sigma=%d", m.Tau, m.Sigma)
	default:
		return ""
	}
}

// Render prints the table for one measure: "wallclock", "bytes",
// "shuffle", "records", or "output".
func (t *Table) Render(measure string) string {
	datasets := orderedKeys(t.rows, func(m Measurement) string { return m.Dataset })
	methods := orderedKeys(t.rows, func(m Measurement) string { return m.Method })
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.Title, measure)
	for _, ds := range datasets {
		fmt.Fprintf(&sb, "[%s]\n", ds)
		fmt.Fprintf(&sb, "%-18s", t.SweepLabel)
		for _, m := range methods {
			fmt.Fprintf(&sb, "%18s", m)
		}
		sb.WriteByte('\n')
		sweeps := orderedKeys(t.rows, func(m Measurement) string {
			if m.Dataset != ds {
				return ""
			}
			return t.sweepValue(m)
		})
		for _, sv := range sweeps {
			if sv == "" {
				continue
			}
			fmt.Fprintf(&sb, "%-18s", sv)
			for _, method := range methods {
				cell := "-"
				for _, r := range t.rows {
					if r.Dataset == ds && r.Method == method && t.sweepValue(r) == sv {
						cell = formatMeasure(r, measure)
						break
					}
				}
				fmt.Fprintf(&sb, "%18s", cell)
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

func formatMeasure(m Measurement, measure string) string {
	switch measure {
	case "wallclock":
		return formatDuration(m.Wallclock)
	case "bytes":
		return formatBytes(m.Bytes)
	case "shuffle":
		return formatBytes(m.ShuffleBytes)
	case "records":
		return formatCount(m.Records)
	case "output":
		return formatCount(m.Output)
	case "jobs":
		return fmt.Sprint(m.Jobs)
	default:
		return "?"
	}
}

func formatDuration(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	default:
		return fmt.Sprintf("%dms", d.Milliseconds())
	}
}

func formatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprint(n)
	}
}

func formatCount(n int64) string {
	switch {
	case n >= 1_000_000_000:
		return fmt.Sprintf("%.2fG", float64(n)/1e9)
	case n >= 1_000_000:
		return fmt.Sprintf("%.2fM", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprint(n)
	}
}

// CSV renders all measurements as comma-separated values with a header,
// for downstream plotting.
func (t *Table) CSV() string {
	var sb strings.Builder
	sb.WriteString("dataset,method,tau,sigma,slots,fraction,wallclock_ms,bytes,shuffle_bytes,records,jobs,output\n")
	for _, m := range t.rows {
		sigma := fmt.Sprint(m.Sigma)
		if m.Sigma >= math.MaxInt32 {
			sigma = "inf"
		}
		fmt.Fprintf(&sb, "%s,%s,%d,%s,%d,%d,%d,%d,%d,%d,%d,%d\n",
			m.Dataset, m.Method, m.Tau, sigma, m.Slots, m.Fraction,
			m.Wallclock.Milliseconds(), m.Bytes, m.ShuffleBytes, m.Records, m.Jobs, m.Output)
	}
	return sb.String()
}

// Speedup returns the ratio of the named baseline method's measure to
// the named method's, per dataset and sweep value — the "factor 12x"
// comparisons of the paper's summary.
func (t *Table) Speedup(measure, baseline, method string) map[string]float64 {
	out := make(map[string]float64)
	val := func(m Measurement) float64 {
		switch measure {
		case "wallclock":
			return float64(m.Wallclock)
		case "bytes":
			return float64(m.Bytes)
		case "shuffle":
			return float64(m.ShuffleBytes)
		case "records":
			return float64(m.Records)
		}
		return math.NaN()
	}
	for _, a := range t.rows {
		if a.Method != baseline {
			continue
		}
		for _, b := range t.rows {
			if b.Method != method || b.Dataset != a.Dataset || t.sweepValue(a) != t.sweepValue(b) {
				continue
			}
			if v := val(b); v > 0 {
				out[a.Dataset+"/"+t.sweepValue(a)] = val(a) / v
			}
		}
	}
	return out
}

// orderedKeys returns distinct non-empty key values in first-seen
// order.
func orderedKeys(rows []Measurement, key func(Measurement) string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, r := range rows {
		k := key(r)
		if k == "" || seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, k)
	}
	return out
}

// SortBuckets returns the populated buckets of a Bucket2D in row-major
// order, for stable test assertions.
func SortBuckets(b *Bucket2D) [][3]int64 {
	var out [][3]int64
	for i := 0; i <= b.maxI; i++ {
		for j := 0; j <= b.maxJ; j++ {
			if c := b.Count(i, j); c > 0 {
				out = append(out, [3]int64{int64(i), int64(j), c})
			}
		}
	}
	sort.Slice(out, func(x, y int) bool {
		if out[x][0] != out[y][0] {
			return out[x][0] < out[y][0]
		}
		return out[x][1] < out[y][1]
	})
	return out
}
