package stats

import (
	"strings"
	"testing"
	"time"
)

func TestBucket2D(t *testing.T) {
	b := NewBucket2D()
	b.Add(1, 5)     // (0,0)
	b.Add(3, 5)     // (0,0)
	b.Add(10, 99)   // (1,1)
	b.Add(150, 12)  // (2,1)
	b.Add(1, 1_000) // (0,3)
	if b.Total() != 5 {
		t.Fatalf("Total = %d", b.Total())
	}
	if b.Count(0, 0) != 2 || b.Count(1, 1) != 1 || b.Count(2, 1) != 1 || b.Count(0, 3) != 1 {
		t.Fatalf("bucket counts wrong: %v", SortBuckets(b))
	}
	if b.MaxLengthBucket() != 2 || b.MaxFrequencyBucket() != 3 {
		t.Fatalf("max buckets = %d, %d", b.MaxLengthBucket(), b.MaxFrequencyBucket())
	}
	// Invalid entries are ignored.
	b.Add(0, 5)
	b.Add(5, 0)
	if b.Total() != 5 {
		t.Fatalf("invalid entries counted")
	}
	s := b.String()
	if !strings.Contains(s, "10^3") {
		t.Fatalf("render missing frequency row: %s", s)
	}
}

func TestBucketBoundaries(t *testing.T) {
	b := NewBucket2D()
	b.Add(9, 9)     // (0,0)
	b.Add(10, 10)   // (1,1)
	b.Add(99, 99)   // (1,1)
	b.Add(100, 100) // (2,2)
	if b.Count(0, 0) != 1 || b.Count(1, 1) != 2 || b.Count(2, 2) != 1 {
		t.Fatalf("boundary bucketing wrong: %v", SortBuckets(b))
	}
}

func sample() *Table {
	tb := NewTable("Fig 4", "tau")
	for _, ds := range []string{"NYT", "CW"} {
		for _, tau := range []int64{10, 100} {
			tb.Add(Measurement{
				Dataset: ds, Method: "naive", Tau: tau, Sigma: 5,
				Wallclock: time.Duration(tau) * time.Second, Bytes: tau * 1000, Records: tau * 10,
			})
			tb.Add(Measurement{
				Dataset: ds, Method: "suffix-sigma", Tau: tau, Sigma: 5,
				Wallclock: time.Duration(tau) * time.Second / 4, Bytes: tau * 250, Records: tau * 2,
			})
		}
	}
	return tb
}

func TestTableRender(t *testing.T) {
	tb := sample()
	out := tb.Render("wallclock")
	for _, want := range []string{"Fig 4 — wallclock", "[NYT]", "[CW]", "naive", "suffix-sigma", "10", "100"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(tb.Render("bytes"), "bytes") {
		t.Fatal("bytes measure missing")
	}
}

func TestTableCSV(t *testing.T) {
	csv := sample().CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 9 { // header + 8 rows
		t.Fatalf("CSV lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "dataset,method,") {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "NYT,naive,10,5,") {
		t.Fatalf("CSV row = %q", lines[1])
	}
}

func TestSpeedup(t *testing.T) {
	tb := sample()
	sp := tb.Speedup("wallclock", "naive", "suffix-sigma")
	if len(sp) != 4 {
		t.Fatalf("speedup entries = %d (%v)", len(sp), sp)
	}
	for k, v := range sp {
		if v < 3.9 || v > 4.1 {
			t.Fatalf("speedup[%s] = %f, want 4", k, v)
		}
	}
}

func TestFormatters(t *testing.T) {
	cases := []struct {
		m       Measurement
		measure string
		want    string
	}{
		{Measurement{Wallclock: 90 * time.Second}, "wallclock", "1.5m"},
		{Measurement{Wallclock: 1500 * time.Millisecond}, "wallclock", "1.50s"},
		{Measurement{Wallclock: 5 * time.Millisecond}, "wallclock", "5ms"},
		{Measurement{Bytes: 3 << 30}, "bytes", "3.00GB"},
		{Measurement{Bytes: 5 << 20}, "bytes", "5.00MB"},
		{Measurement{Bytes: 2048}, "bytes", "2.0KB"},
		{Measurement{Bytes: 100}, "bytes", "100"},
		{Measurement{Records: 2_500_000_000}, "records", "2.50G"},
		{Measurement{Records: 1_200_000}, "records", "1.20M"},
		{Measurement{Records: 1_500}, "records", "1.5k"},
		{Measurement{Records: 12}, "records", "12"},
		{Measurement{Jobs: 7}, "jobs", "7"},
	}
	for _, c := range cases {
		if got := formatMeasure(c.m, c.measure); got != c.want {
			t.Errorf("formatMeasure(%s) = %q, want %q", c.measure, got, c.want)
		}
	}
}

func TestSweepLabels(t *testing.T) {
	tb := NewTable("x", "sigma")
	tb.Add(Measurement{Dataset: "D", Method: "m", Sigma: 1<<31 - 1})
	if !strings.Contains(tb.Render("wallclock"), "inf") {
		t.Fatal("unbounded sigma should render as inf")
	}
	tb2 := NewTable("x", "fraction")
	tb2.Add(Measurement{Dataset: "D", Method: "m", Fraction: 25})
	if !strings.Contains(tb2.Render("wallclock"), "25%") {
		t.Fatal("fraction label missing")
	}
	tb3 := NewTable("x", "slots")
	tb3.Add(Measurement{Dataset: "D", Method: "m", Slots: 8})
	if !strings.Contains(tb3.Render("wallclock"), "8") {
		t.Fatal("slots label missing")
	}
}
