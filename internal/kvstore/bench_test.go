package kvstore

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkGetFromSegments measures disk-backed lookups with a warm
// cache — the APRIORI-SCAN dictionary access pattern ("lookups of
// frequent (k−1)-grams typically hit the cache").
func BenchmarkGetFromSegments(b *testing.B) {
	s := Open(Options{MemoryBudget: 4 << 10, TempDir: b.TempDir(), CacheEntries: 1024})
	defer s.Close()
	const n = 5000
	for i := 0; i < n; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%06d", i)), []byte("v")); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Freeze(); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	// Zipf-ish skew: most lookups hit few keys (cache-friendly).
	zipf := rand.NewZipf(rng, 1.3, 1, n-1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := fmt.Sprintf("key-%06d", zipf.Uint64())
		if _, ok, err := s.Get([]byte(k)); err != nil || !ok {
			b.Fatalf("miss for %s: %v", k, err)
		}
	}
}

// BenchmarkPut measures write throughput across memtable flushes.
func BenchmarkPut(b *testing.B) {
	s := Open(Options{MemoryBudget: 1 << 20, TempDir: b.TempDir()})
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%09d", i)), []byte("0123456789")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkListAppendGet measures the spillable list used by the
// APRIORI-INDEX join reducer.
func BenchmarkListAppendGet(b *testing.B) {
	l := NewList(256<<10, b.TempDir())
	defer l.Close()
	rec := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
		if i%16 == 0 {
			if _, err := l.Get(i / 2); err != nil {
				b.Fatal(err)
			}
		}
	}
}
