package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
)

func TestPutGetInMemory(t *testing.T) {
	s := Open(Options{MemoryBudget: 1 << 20, TempDir: t.TempDir()})
	defer s.Close()
	if err := s.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get([]byte("k1"))
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
	_, ok, err = s.Get([]byte("absent"))
	if err != nil || ok {
		t.Fatalf("absent key found")
	}
	if s.Segments() != 0 {
		t.Fatalf("unexpected segments: %d", s.Segments())
	}
}

func TestSpillToSegmentsAndGet(t *testing.T) {
	dir := t.TempDir()
	s := Open(Options{MemoryBudget: 512, TempDir: dir, SparseEvery: 4})
	defer s.Close()
	const n = 500
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		v := []byte(fmt.Sprintf("value-%d", i*i))
		if err := s.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if s.Segments() == 0 {
		t.Fatal("expected on-disk segments")
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		want := fmt.Sprintf("value-%d", i*i)
		v, ok, err := s.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || string(v) != want {
			t.Fatalf("Get(%s) = %q, %v; want %q", k, v, ok, want)
		}
	}
	// Misses before, between, and after segment key ranges.
	for _, k := range []string{"a", "key-0250x", "zzz"} {
		if _, ok, err := s.Get([]byte(k)); err != nil || ok {
			t.Fatalf("unexpected hit for %q", k)
		}
	}
}

func TestNewestValueWins(t *testing.T) {
	s := Open(Options{MemoryBudget: 256, TempDir: t.TempDir()})
	defer s.Close()
	// Write the key, force it to a segment, then overwrite.
	if err := s.Put([]byte("k"), []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := s.Freeze(); err != nil {
		t.Fatal(err)
	}
	// Freeze marks read-only semantics for concurrency, but this store
	// is reopened for writing in the same test via direct Put; emulate a
	// second generation with a fresh store sharing segments is not
	// supported, so just verify overwrite before freeze instead.
	s2 := Open(Options{MemoryBudget: 1 << 10, TempDir: t.TempDir(), CacheEntries: -1})
	defer s2.Close()
	if err := s2.Put([]byte("k"), []byte("old")); err != nil {
		t.Fatal(err)
	}
	// Force flush by exceeding the budget.
	for i := 0; i < 64; i++ {
		if err := s2.Put([]byte(fmt.Sprintf("pad-%d", i)), bytes.Repeat([]byte("x"), 32)); err != nil {
			t.Fatal(err)
		}
	}
	if s2.Segments() == 0 {
		t.Fatal("expected a flush")
	}
	if err := s2.Put([]byte("k"), []byte("new")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s2.Get([]byte("k"))
	if err != nil || !ok || string(v) != "new" {
		t.Fatalf("Get after overwrite = %q, %v, %v", v, ok, err)
	}
}

func TestFreezeFlushesAndAllowsConcurrentReads(t *testing.T) {
	s := Open(Options{MemoryBudget: 1 << 20, TempDir: t.TempDir()})
	defer s.Close()
	for i := 0; i < 100; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Freeze(); err != nil {
		t.Fatal(err)
	}
	if s.Segments() != 1 {
		t.Fatalf("segments = %d, want 1", s.Segments())
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				v, ok, err := s.Get([]byte(fmt.Sprintf("k%03d", i)))
				if err != nil || !ok || string(v) != fmt.Sprint(i) {
					t.Errorf("goroutine %d: Get(k%03d) = %q, %v, %v", g, i, v, ok, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestContainsAndLen(t *testing.T) {
	s := Open(Options{TempDir: t.TempDir()})
	defer s.Close()
	if err := s.Put([]byte("a"), nil); err != nil {
		t.Fatal(err)
	}
	ok, err := s.Contains([]byte("a"))
	if err != nil || !ok {
		t.Fatalf("Contains(a) = %v, %v", ok, err)
	}
	ok, err = s.Contains([]byte("b"))
	if err != nil || ok {
		t.Fatalf("Contains(b) = %v, %v", ok, err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestCloseRemovesSegments(t *testing.T) {
	dir := t.TempDir()
	s := Open(Options{MemoryBudget: 128, TempDir: dir})
	for i := 0; i < 100; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%d", i)), bytes.Repeat([]byte("v"), 20)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Segments() == 0 {
		t.Fatal("expected segments")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("segment files remain: %v", ents)
	}
	if _, _, err := s.Get([]byte("key-1")); err == nil {
		t.Fatal("Get after Close should fail")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestNegativeCache(t *testing.T) {
	s := Open(Options{MemoryBudget: 64, TempDir: t.TempDir(), CacheEntries: 8})
	defer s.Close()
	for i := 0; i < 50; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Two lookups of a missing key: the second is served by the negative
	// cache; both must agree.
	for i := 0; i < 2; i++ {
		if _, ok, err := s.Get([]byte("missing")); err != nil || ok {
			t.Fatalf("lookup %d: %v %v", i, ok, err)
		}
	}
	// And a present key looked up twice (second from cache).
	for i := 0; i < 2; i++ {
		v, ok, err := s.Get([]byte("key-07"))
		if err != nil || !ok || string(v) != "v" {
			t.Fatalf("lookup %d: %q %v %v", i, v, ok, err)
		}
	}
}

func TestRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	s := Open(Options{MemoryBudget: 2 << 10, TempDir: t.TempDir(), SparseEvery: 3, CacheEntries: 16})
	defer s.Close()
	oracle := make(map[string]string)
	for op := 0; op < 5000; op++ {
		k := fmt.Sprintf("k%03d", rng.Intn(300))
		if rng.Intn(2) == 0 {
			v := fmt.Sprintf("v%d", rng.Int63())
			oracle[k] = v
			if err := s.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
		} else {
			v, ok, err := s.Get([]byte(k))
			if err != nil {
				t.Fatal(err)
			}
			want, wantOK := oracle[k]
			if ok != wantOK || (ok && string(v) != want) {
				t.Fatalf("op %d: Get(%s) = %q,%v; want %q,%v", op, k, v, ok, want, wantOK)
			}
		}
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := NewLRU(2)
	c.Put("a", "1")
	c.Put("b", "2")
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted too early")
	}
	c.Put("c", "3") // evicts b (LRU)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should be evicted")
	}
	if v, ok := c.Get("a"); !ok || v.(string) != "1" {
		t.Fatal("a lost")
	}
	if v, ok := c.Get("c"); !ok || v.(string) != "3" {
		t.Fatal("c lost")
	}
	c.Remove("a")
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should be removed")
	}
	// 5 Gets hit (a, a, c) and missed (b, removed a) as counted above.
	if hits, misses := c.Stats(); hits != 3 || misses != 2 {
		t.Fatalf("Stats() = %d hits, %d misses; want 3, 2", hits, misses)
	}
}

func TestStoreCacheStats(t *testing.T) {
	s := Open(Options{MemoryBudget: 1, TempDir: t.TempDir()})
	defer s.Close()
	if err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Freeze(); err != nil {
		t.Fatal(err)
	}
	// First Get misses the cache and fills it from the segment; the
	// following Gets (positive and negative alike) hit.
	for i := 0; i < 3; i++ {
		if _, ok, err := s.Get([]byte("k")); err != nil || !ok {
			t.Fatalf("Get k: ok=%v err=%v", ok, err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, ok, err := s.Get([]byte("absent")); err != nil || ok {
			t.Fatalf("Get absent: ok=%v err=%v", ok, err)
		}
	}
	hits, misses := s.CacheStats()
	if hits != 3 || misses != 2 {
		t.Fatalf("CacheStats() = %d hits, %d misses; want 3, 2", hits, misses)
	}
}

func TestRepeatedLookupOfEmptyValueKey(t *testing.T) {
	// Regression: a key stored with an empty value and served from a
	// segment must stay visible on repeated lookups — the cache must
	// not conflate empty values with negative entries. APRIORI-SCAN's
	// membership dictionary stores exactly such keys.
	s := Open(Options{MemoryBudget: 1, TempDir: t.TempDir()})
	defer s.Close()
	if err := s.Put([]byte("member"), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Freeze(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ok, err := s.Contains([]byte("member"))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("lookup %d: key with empty value reported missing", i)
		}
	}
}

func TestListInMemory(t *testing.T) {
	l := NewList(1<<20, t.TempDir())
	defer l.Close()
	for i := 0; i < 10; i++ {
		if err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if l.Len() != 10 || l.Spilled() {
		t.Fatalf("Len=%d Spilled=%v", l.Len(), l.Spilled())
	}
	for i := 0; i < 10; i++ {
		v, err := l.Get(i)
		if err != nil || string(v) != fmt.Sprintf("rec-%d", i) {
			t.Fatalf("Get(%d) = %q, %v", i, v, err)
		}
	}
}

func TestListSpill(t *testing.T) {
	l := NewList(256, t.TempDir())
	defer l.Close()
	const n = 100
	for i := 0; i < n; i++ {
		if err := l.Append([]byte(fmt.Sprintf("record-%03d-%s", i, "padpadpad"))); err != nil {
			t.Fatal(err)
		}
	}
	if !l.Spilled() {
		t.Fatal("expected spill")
	}
	// Random access across the spill boundary.
	for _, i := range []int{0, 1, 50, n - 2, n - 1} {
		v, err := l.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("record-%03d-padpadpad", i)
		if string(v) != want {
			t.Fatalf("Get(%d) = %q, want %q", i, v, want)
		}
	}
	// Sequential iteration sees every record in order.
	seen := 0
	err := l.Each(func(i int, rec []byte) error {
		want := fmt.Sprintf("record-%03d-padpadpad", i)
		if string(rec) != want {
			return fmt.Errorf("Each(%d) = %q, want %q", i, rec, want)
		}
		seen++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != n {
		t.Fatalf("Each visited %d records, want %d", seen, n)
	}
}

func TestListAppendAfterEach(t *testing.T) {
	// Appending after iterating (interleaved use) must keep working.
	l := NewList(128, t.TempDir())
	defer l.Close()
	for i := 0; i < 20; i++ {
		if err := l.Append(bytes.Repeat([]byte{byte(i)}, 16)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Each(func(i int, rec []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	v, err := l.Get(20)
	if err != nil || string(v) != "tail" {
		t.Fatalf("Get(20) = %q, %v", v, err)
	}
}

func TestListBounds(t *testing.T) {
	l := NewList(0, t.TempDir())
	defer l.Close()
	if _, err := l.Get(0); err == nil {
		t.Fatal("Get on empty list should fail")
	}
	if err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Get(-1); err == nil {
		t.Fatal("negative index should fail")
	}
	if _, err := l.Get(1); err == nil {
		t.Fatal("out-of-range index should fail")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("y")); err == nil {
		t.Fatal("Append after Close should fail")
	}
}

func TestListSpillAfterReadKeepsOffsets(t *testing.T) {
	// A spill that happens after a read (which seeks the shared file
	// handle) must append at the end of the file, not at the read
	// position.
	l := NewList(64, t.TempDir())
	defer l.Close()
	rec := func(i int) []byte { return []byte(fmt.Sprintf("payload-%04d-xxxxxxxx", i)) }
	for i := 0; i < 10; i++ {
		if err := l.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if !l.Spilled() {
		t.Fatal("expected initial spill")
	}
	if _, err := l.Get(0); err != nil { // seeks to offset 0
		t.Fatal(err)
	}
	for i := 10; i < 30; i++ { // forces more spills after the read
		if err := l.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		v, err := l.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		if string(v) != string(rec(i)) {
			t.Fatalf("Get(%d) = %q, want %q", i, v, rec(i))
		}
	}
}
