package kvstore

import (
	"bufio"
	"fmt"
	"os"
	"sync"

	"ngramstats/internal/encoding"
)

// List is an append-only list of byte records with random access by
// index. Records are buffered in memory up to a budget and spilled to a
// single backing file beyond it. APRIORI-INDEX's join reducer uses it to
// buffer the posting-list values of a reduce group, which "have to be
// buffered, and a scalable implementation must deal with the case when
// this is not possible in the available main memory" (Section III-B).
type List struct {
	mu       sync.Mutex
	budget   int
	tempDir  string
	mem      [][]byte
	memBytes int
	file     *os.File
	w        *bufio.Writer
	offsets  []int64 // file offset of each spilled record, in order
	fileLen  int64
	spilled  int // number of records living in the file (a prefix)
	n        int
	closed   bool
}

// NewList creates a List with the given memory budget in bytes (zero
// selects 16 MiB) spilling to tempDir.
func NewList(budget int, tempDir string) *List {
	if budget <= 0 {
		budget = 16 << 20
	}
	return &List{budget: budget, tempDir: tempDir}
}

// Append adds a record (copied).
func (l *List) Append(rec []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("kvstore: Append on closed list")
	}
	l.mem = append(l.mem, append([]byte(nil), rec...))
	l.memBytes += len(rec) + 32
	l.n++
	if l.memBytes >= l.budget {
		return l.spillLocked()
	}
	return nil
}

func (l *List) spillLocked() error {
	if l.file == nil {
		f, err := os.CreateTemp(l.tempDir, "kvlist-*.dat")
		if err != nil {
			return fmt.Errorf("kvstore: create list spill: %w", err)
		}
		l.file = f
		l.w = bufio.NewWriterSize(f, 256<<10)
	}
	// Reads seek the shared handle; flush any buffered writes first so
	// they land at their intended offsets, then restore the append
	// position.
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("kvstore: flush list spill: %w", err)
	}
	if _, err := l.file.Seek(l.fileLen, 0); err != nil {
		return fmt.Errorf("kvstore: seek list spill: %w", err)
	}
	for _, rec := range l.mem {
		l.offsets = append(l.offsets, l.fileLen)
		if err := encoding.WriteRecord(l.w, nil, rec); err != nil {
			return fmt.Errorf("kvstore: write list spill: %w", err)
		}
		l.fileLen += int64(encoding.RecordLen(0, len(rec)))
		l.spilled++
	}
	l.mem = l.mem[:0]
	l.memBytes = 0
	return nil
}

// Len returns the number of records appended.
func (l *List) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Spilled reports whether any records have been written to disk.
func (l *List) Spilled() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.spilled > 0
}

// Get returns record i. Records still in memory are returned without a
// read; spilled records are fetched from the backing file.
func (l *List) Get(i int) ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, fmt.Errorf("kvstore: Get on closed list")
	}
	if i < 0 || i >= l.n {
		return nil, fmt.Errorf("kvstore: list index %d out of range [0,%d)", i, l.n)
	}
	if i >= l.spilled {
		return l.mem[i-l.spilled], nil
	}
	if err := l.w.Flush(); err != nil {
		return nil, err
	}
	if _, err := l.file.Seek(l.offsets[i], 0); err != nil {
		return nil, err
	}
	rr := encoding.NewRecordReader(bufio.NewReaderSize(l.file, 32<<10))
	_, v, err := rr.Next()
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), v...), nil
}

// Each calls fn for every record in order. The slice passed to fn is
// only valid during the call.
func (l *List) Each(fn func(i int, rec []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("kvstore: Each on closed list")
	}
	if l.spilled > 0 {
		if err := l.w.Flush(); err != nil {
			return err
		}
		if _, err := l.file.Seek(0, 0); err != nil {
			return err
		}
		rr := encoding.NewRecordReader(bufio.NewReaderSize(l.file, 256<<10))
		for i := 0; i < l.spilled; i++ {
			_, v, err := rr.Next()
			if err != nil {
				return err
			}
			if err := fn(i, v); err != nil {
				return err
			}
		}
	}
	for j, rec := range l.mem {
		if err := fn(l.spilled+j, rec); err != nil {
			return err
		}
	}
	return nil
}

// Close releases the backing file, if any.
func (l *List) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	l.mem = nil
	if l.file != nil {
		name := l.file.Name()
		l.file.Close()
		return os.Remove(name)
	}
	return nil
}
