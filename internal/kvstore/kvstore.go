// Package kvstore provides a disk-resident key-value store with an
// in-memory write buffer and lookup cache. It stands in for the Berkeley
// DB Java Edition store the paper's implementation uses (Section V) to
// hold data that exceeds main memory at cluster nodes: the dictionary of
// frequent (k−1)-grams in APRIORI-SCAN and the buffered posting lists in
// APRIORI-INDEX.
//
// The design is a miniature LSM: writes go to a memtable; when the
// memtable exceeds its budget it is flushed to an immutable sorted
// segment file with a sparse in-memory index; reads consult the
// memtable, then segments from newest to oldest, with a small cache in
// front ("most main memory is then used for caching, which helps
// APRIORI-SCAN in particular, since lookups of frequent (k−1)-grams
// typically hit the cache").
package kvstore

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"ngramstats/internal/encoding"
)

// Options configures a Store.
type Options struct {
	// MemoryBudget bounds the memtable size in bytes. Zero selects 16 MiB.
	MemoryBudget int
	// TempDir is the directory for segment files. Empty selects the
	// system default.
	TempDir string
	// CacheEntries bounds the read-through cache. Zero selects 4096;
	// negative disables the cache.
	CacheEntries int
	// SparseEvery controls the sparse index granularity: every n-th key
	// of a segment is indexed. Zero selects 16.
	SparseEvery int
}

// Store is a disk-resident key-value store. It is safe for concurrent
// readers once writing is finished (after Freeze); mixed concurrent
// reads and writes require external synchronization.
type Store struct {
	opts     Options
	mu       sync.RWMutex
	mem      map[string][]byte
	memBytes int
	segments []*segment // newest last
	cache    *LRU
	frozen   bool
	closed   bool
}

// cached is one read-through cache entry. The presence flag makes keys
// stored with empty values distinguishable from negative (cached-miss)
// entries.
type cached struct {
	val     []byte
	present bool
}

// Open creates an empty store.
func Open(opts Options) *Store {
	if opts.MemoryBudget <= 0 {
		opts.MemoryBudget = 16 << 20
	}
	if opts.CacheEntries == 0 {
		opts.CacheEntries = 4096
	}
	if opts.SparseEvery <= 0 {
		opts.SparseEvery = 16
	}
	s := &Store{opts: opts, mem: make(map[string][]byte)}
	if opts.CacheEntries > 0 {
		s.cache = NewLRU(opts.CacheEntries)
	}
	return s
}

// Put stores value under key, replacing any previous value in the
// memtable. Values written in an older, already-flushed segment are
// shadowed (newest wins on Get).
func (s *Store) Put(key, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("kvstore: Put on closed store")
	}
	k := string(key)
	old, existed := s.mem[k]
	s.mem[k] = append([]byte(nil), value...)
	if existed {
		s.memBytes += len(value) - len(old)
	} else {
		s.memBytes += len(k) + len(value) + 48
	}
	if s.cache != nil {
		s.cache.Remove(k)
	}
	if s.memBytes >= s.opts.MemoryBudget {
		return s.flushLocked()
	}
	return nil
}

// Get returns the value stored under key and whether it exists. The
// returned slice must not be modified.
func (s *Store) Get(key []byte) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, false, fmt.Errorf("kvstore: Get on closed store")
	}
	k := string(key)
	if v, ok := s.mem[k]; ok {
		return v, true, nil
	}
	if s.cache != nil {
		if e, ok := s.cache.Get(k); ok {
			c := e.(cached)
			if !c.present {
				return nil, false, nil // cached miss
			}
			return c.val, true, nil
		}
	}
	// Newest segment first: last write wins.
	for i := len(s.segments) - 1; i >= 0; i-- {
		v, ok, err := s.segments[i].get(key)
		if err != nil {
			return nil, false, err
		}
		if ok {
			if s.cache != nil {
				s.cache.Put(k, cached{val: v, present: true})
			}
			return v, true, nil
		}
	}
	if s.cache != nil {
		s.cache.Put(k, cached{}) // negative cache entry
	}
	return nil, false, nil
}

// CacheStats returns the cumulative hit and miss counts of the
// read-through lookup cache (both zero when the cache is disabled).
// Memtable hits never consult the cache and are not counted; the
// ratio therefore measures how often a disk lookup was avoided.
func (s *Store) CacheStats() (hits, misses int64) {
	if s.cache == nil {
		return 0, 0
	}
	return s.cache.Stats()
}

// Contains reports whether key is present.
func (s *Store) Contains(key []byte) (bool, error) {
	_, ok, err := s.Get(key)
	return ok, err
}

// Len returns the approximate number of live entries (distinct keys are
// counted once per segment they appear in plus the memtable, so after
// overwrites the value is an upper bound).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := len(s.mem)
	for _, seg := range s.segments {
		n += seg.count
	}
	return n
}

// Segments returns the number of on-disk segments (for tests and
// instrumentation).
func (s *Store) Segments() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.segments)
}

// Freeze flushes the memtable and marks the store read-only; concurrent
// Gets are afterwards safe without external locking.
func (s *Store) Freeze() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushLocked(); err != nil {
		return err
	}
	s.frozen = true
	return nil
}

func (s *Store) flushLocked() error {
	if len(s.mem) == 0 {
		return nil
	}
	keys := make([]string, 0, len(s.mem))
	for k := range s.mem {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	f, err := os.CreateTemp(s.opts.TempDir, "kvstore-seg-*.seg")
	if err != nil {
		return fmt.Errorf("kvstore: create segment: %w", err)
	}
	w := bufio.NewWriterSize(f, 256<<10)
	seg := &segment{path: f.Name(), count: len(keys)}
	var off int64
	for i, k := range keys {
		v := s.mem[k]
		if i%s.opts.SparseEvery == 0 {
			seg.index = append(seg.index, indexEntry{key: []byte(k), off: off})
		}
		if err := encoding.WriteRecord(w, []byte(k), v); err != nil {
			f.Close()
			os.Remove(f.Name())
			return fmt.Errorf("kvstore: write segment: %w", err)
		}
		off += int64(encoding.RecordLen(len(k), len(v)))
	}
	seg.size = off
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(f.Name())
		return fmt.Errorf("kvstore: flush segment: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return fmt.Errorf("kvstore: close segment: %w", err)
	}
	s.segments = append(s.segments, seg)
	s.mem = make(map[string][]byte)
	s.memBytes = 0
	return nil
}

// Close releases all on-disk resources.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, seg := range s.segments {
		if err := os.Remove(seg.path); err != nil && first == nil {
			first = err
		}
	}
	s.segments = nil
	s.mem = nil
	return first
}

type indexEntry struct {
	key []byte
	off int64
}

// segment is an immutable sorted run on disk with a sparse index.
type segment struct {
	path  string
	index []indexEntry
	count int
	size  int64
}

func (seg *segment) get(key []byte) ([]byte, bool, error) {
	if len(seg.index) == 0 {
		return nil, false, nil
	}
	// Find the last sparse entry with key <= target.
	i := sort.Search(len(seg.index), func(i int) bool {
		return bytes.Compare(seg.index[i].key, key) > 0
	}) - 1
	if i < 0 {
		return nil, false, nil // key precedes the first entry
	}
	f, err := os.Open(seg.path)
	if err != nil {
		return nil, false, fmt.Errorf("kvstore: open segment: %w", err)
	}
	defer f.Close()
	if _, err := f.Seek(seg.index[i].off, io.SeekStart); err != nil {
		return nil, false, fmt.Errorf("kvstore: seek segment: %w", err)
	}
	end := seg.size
	if i+1 < len(seg.index) {
		end = seg.index[i+1].off
	}
	rr := encoding.NewRecordReader(bufio.NewReaderSize(io.LimitReader(f, end-seg.index[i].off), 32<<10))
	for {
		k, v, err := rr.Next()
		if err == io.EOF {
			return nil, false, nil
		}
		if err != nil {
			return nil, false, err
		}
		switch bytes.Compare(k, key) {
		case 0:
			return append([]byte(nil), v...), true, nil
		case 1:
			return nil, false, nil // past the target in sorted order
		}
	}
}

// LRU is a bounded least-recently-used cache with measured
// effectiveness: Get and Put are safe for concurrent use, and the
// Stats counters report how often lookups hit. Store uses it as the
// read-through lookup cache; the persistent n-gram index uses it as
// the decoded-block cache on its serving path.
type LRU struct {
	mu   sync.Mutex
	cap  int
	m    map[string]*lruEntry
	head *lruEntry // most recent
	tail *lruEntry // least recent

	hits   atomic.Int64
	misses atomic.Int64
}

type lruEntry struct {
	key        string
	val        any
	prev, next *lruEntry
}

// NewLRU returns an empty cache holding at most capacity entries
// (capacity < 1 selects 1).
func NewLRU(capacity int) *LRU {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU{cap: capacity, m: make(map[string]*lruEntry, capacity)}
}

// Get returns the cached value for k and whether one is present,
// marking the entry most recently used. Every call counts as a hit or
// a miss in Stats.
func (c *LRU) Get(k string) (any, bool) {
	c.mu.Lock()
	e, found := c.m[k]
	if !found {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	c.moveToFront(e)
	v := e.val
	c.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Put stores v under k, evicting the least recently used entry when
// the cache is full.
func (c *LRU) Put(k string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[k]; ok {
		e.val = v
		c.moveToFront(e)
		return
	}
	e := &lruEntry{key: k, val: v}
	c.m[k] = e
	c.pushFront(e)
	if len(c.m) > c.cap {
		lru := c.tail
		c.unlink(lru)
		delete(c.m, lru.key)
	}
}

// Remove evicts k if cached.
func (c *LRU) Remove(k string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[k]; ok {
		c.unlink(e)
		delete(c.m, k)
	}
}

// Len returns the number of cached entries.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats returns the cumulative hit and miss counts of Get.
func (c *LRU) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

func (c *LRU) pushFront(e *lruEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *LRU) unlink(e *lruEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *LRU) moveToFront(e *lruEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
