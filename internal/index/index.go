// Package index implements the persistent n-gram index: a sharded,
// self-describing on-disk layout that turns a completed computation's
// result into a durable, concurrently queryable artifact.
//
// The paper computes n-gram statistics as a one-shot MapReduce job; in
// the Dean & Ghemawat model the reducer output then lives on as files
// consumed by downstream services (the Google Books n-gram viewer being
// the canonical downstream for exactly this data). This package is that
// hand-off: an index directory holds
//
//	MANIFEST.json    format version, corpus name, aggregation kind,
//	                 record/shard inventory (with byte sizes, first/last
//	                 keys, and a CRC for the dictionary), plus a snapshot
//	                 of the producing run's counters
//	dictionary.tsv   the frequency-ranked term dictionary (term \t cf)
//	shard-NNNNN.run  the records, globally sorted by encoded key and cut
//	                 into roughly equal shards, each in the block-framed,
//	                 prefix-compressed, CRC-checked run format of
//	                 internal/extsort
//	top.run          optional precomputed top-k records in rank order,
//	                 so small TopK queries never scan
//
// Reads are served by Index: the manifest names the one shard whose key
// range can contain a key, the shard's footer index names the one block,
// and decoded blocks are kept in a kvstore.LRU so hot blocks never
// re-decode. All state is immutable after Open and shard reads use
// pread, so queries run concurrently without locks (the block cache's
// internal mutex is the only synchronization point).
//
// Durability mirrors the shuffle run format's contract: truncation or
// corruption anywhere — shard payloads, footers, the dictionary, the
// manifest inventory — surfaces as an error wrapping ErrCorrupt or
// extsort.ErrCorruptRun, never as silently wrong counts.
package index

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// FormatVersion identifies the index directory layout. Open rejects
// indexes written by a different version.
const FormatVersion = 1

// File names within an index directory.
const (
	ManifestFile    = "MANIFEST.json"
	ManifestCRCFile = "MANIFEST.crc32c"
	DictionaryFile  = "dictionary.tsv"
	TopFile         = "top.run"
)

// ErrCorrupt is wrapped by every error reported for a malformed,
// truncated, or inconsistent index. Shard-level damage may instead
// surface as extsort.ErrCorruptRun from the run format's own checks;
// callers should treat either as "this index cannot be trusted".
var ErrCorrupt = errors.New("index: corrupt index")

// ErrClosed is reported by queries issued after Close. In-flight
// queries at the time of Close complete normally (the shard files stay
// open until the last one drains); only newly started queries fail.
var ErrClosed = errors.New("index: index closed")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// manifest is the serialized form of MANIFEST.json.
type manifest struct {
	Version     int              `json:"version"`
	Corpus      string           `json:"corpus"`
	Kind        int              `json:"aggregation"`
	Records     int64            `json:"records"`
	Jobs        int              `json:"jobs,omitempty"`
	WallclockNS int64            `json:"wallclock_ns,omitempty"`
	Counters    map[string]int64 `json:"counters,omitempty"`
	// Docs, MaxLength, MinFrequency, and Selection snapshot the producing
	// computation (document count, σ, τ, and the selection mode as an
	// integer). They are what LSM chain maintenance needs to decide
	// whether an index is appendable: deltas merge losslessly only when
	// every generation was computed with τ = 1 and no maximal/closed
	// selection, over a known document count. Absent (zero) in indexes
	// written before these fields existed, which therefore cannot be
	// adopted as chain bases.
	Docs         int64 `json:"docs,omitempty"`
	MaxLength    int   `json:"max_length,omitempty"`
	MinFrequency int64 `json:"min_frequency,omitempty"`
	Selection    int   `json:"selection,omitempty"`
	// DictUnranked marks a dictionary whose identifiers are not in
	// non-increasing frequency order (an LSM delta's seeded dictionary);
	// the reader then skips Load's rank verification.
	DictUnranked bool        `json:"dict_unranked,omitempty"`
	Dict         fileInfo    `json:"dictionary"`
	Shards       []shardInfo `json:"shards"`
	Top          *fileInfo   `json:"top,omitempty"`
}

// fileInfo inventories one file of the index so Open can detect
// truncation or substitution before serving from it.
type fileInfo struct {
	File    string `json:"file"`
	Bytes   int64  `json:"bytes"`
	Records int64  `json:"records"`
	// CRC is the CRC-32C of the whole file. It is set (non-zero size
	// implies verified) only for the dictionary: shard files carry
	// per-block and footer checksums of their own, verified lazily as
	// blocks are read.
	CRC uint32 `json:"crc32c,omitempty"`
}

// shardInfo inventories one sorted shard and its key range. Keys are
// raw encoded-sequence bytes (base64 in JSON).
type shardInfo struct {
	fileInfo
	FirstKey []byte `json:"first_key"`
	LastKey  []byte `json:"last_key"`
}
