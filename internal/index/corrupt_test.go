package index

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ngramstats/internal/extsort"
)

// verifyAll opens the index and reads every record through both access
// paths (full scan and per-key Get); any damage the open-time checks
// miss must surface here.
func verifyAll(dir string) error {
	ix, err := Open(dir, Options{})
	if err != nil {
		return err
	}
	defer ix.Close()
	if err := ix.Scan(nil, nil, func(k, v []byte) error { return nil }); err != nil {
		return err
	}
	// Point lookups exercise the cached-block path and the top records.
	for i := 0; i < int(ix.Records()); i += 7 {
		key := []byte(fmt.Sprintf("key-%06d", i))
		if _, _, err := ix.Get(key); err != nil {
			return err
		}
	}
	return nil
}

// isCleanCorruptionError reports whether err is one of the two declared
// corruption sentinels — the clean "this index cannot be trusted"
// signal, as opposed to an incidental I/O error or a wrong answer.
func isCleanCorruptionError(err error) bool {
	return errors.Is(err, ErrCorrupt) || errors.Is(err, extsort.ErrCorruptRun)
}

// TestCorruptionSweep flips every byte of every index file in turn and
// requires each flip to surface as an error — wrong counts must never
// be served silently. This is the index-level counterpart of the run
// format's corruption sweep from PR 2.
func TestCorruptionSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("corruption sweep is exhaustive; skipped with -short")
	}
	src := t.TempDir()
	buildIndex(t, src, 400, 3)
	files, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}

	work := t.TempDir()
	for _, fe := range files {
		name := fe.Name()
		orig, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			t.Fatal(err)
		}
		// Fresh copy of the intact index in the work dir.
		resetDir(t, src, work)
		target := filepath.Join(work, name)
		corrupted := append([]byte(nil), orig...)
		for off := 0; off < len(orig); off++ {
			corrupted[off] ^= 0x20 // flips case in text, always changes the byte
			if err := os.WriteFile(target, corrupted, 0o666); err != nil {
				t.Fatal(err)
			}
			verr := verifyAll(work)
			corrupted[off] = orig[off]
			if verr == nil {
				t.Fatalf("%s: flipping byte %d of %d went undetected", name, off, len(orig))
			}
			if !isCleanCorruptionError(verr) {
				t.Fatalf("%s byte %d: unclean error %v", name, off, verr)
			}
		}
		if err := os.WriteFile(target, orig, 0o666); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTruncationSweep truncates every index file at every length and
// requires a clean error each time.
func TestTruncationSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("truncation sweep is exhaustive; skipped with -short")
	}
	src := t.TempDir()
	buildIndex(t, src, 400, 3)
	files, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	work := t.TempDir()
	for _, fe := range files {
		name := fe.Name()
		orig, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			t.Fatal(err)
		}
		resetDir(t, src, work)
		target := filepath.Join(work, name)
		step := 1
		if len(orig) > 2048 {
			step = 7 // sample large files; every byte for small ones
		}
		for cut := 0; cut < len(orig); cut += step {
			if err := os.WriteFile(target, orig[:cut], 0o666); err != nil {
				t.Fatal(err)
			}
			verr := verifyAll(work)
			if verr == nil {
				t.Fatalf("%s: truncation to %d of %d bytes went undetected", name, cut, len(orig))
			}
			if !isCleanCorruptionError(verr) {
				t.Fatalf("%s truncated to %d: unclean error %v", name, cut, verr)
			}
		}
		if err := os.WriteFile(target, orig, 0o666); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMissingFiles removes each file in turn; Open (or verification)
// must fail rather than serve a partial index.
func TestMissingFiles(t *testing.T) {
	src := t.TempDir()
	buildIndex(t, src, 400, 3)
	files, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	work := t.TempDir()
	for _, fe := range files {
		resetDir(t, src, work)
		if err := os.Remove(filepath.Join(work, fe.Name())); err != nil {
			t.Fatal(err)
		}
		if verr := verifyAll(work); verr == nil {
			t.Fatalf("removing %s went undetected", fe.Name())
		}
	}
}

// resetDir makes dst an exact copy of the committed index in src.
func resetDir(t *testing.T, src, dst string) {
	t.Helper()
	old, err := os.ReadDir(dst)
	if err != nil {
		t.Fatal(err)
	}
	for _, fe := range old {
		if err := os.Remove(filepath.Join(dst, fe.Name())); err != nil {
			t.Fatal(err)
		}
	}
	files, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, fe := range files {
		data, err := os.ReadFile(filepath.Join(src, fe.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, fe.Name()), data, 0o666); err != nil {
			t.Fatal(err)
		}
	}
}
