package index

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"ngramstats/internal/dictionary"
)

// Meta is the checksum-verified manifest metadata of an index
// directory, readable without opening its shards. LSM chain
// maintenance uses it to validate that an index qualifies as a chain
// generation (τ = 1, no selection, recorded document count) before
// adopting or extending it.
type Meta struct {
	Corpus       string
	Kind         int
	Records      int64
	Docs         int64
	MaxLength    int
	MinFrequency int64
	Selection    int
	DictUnranked bool
}

// ReadMeta reads an index directory's manifest metadata. The manifest
// checksum is verified; the shard files are not touched.
func ReadMeta(dir string) (Meta, error) {
	man, err := readManifest(dir)
	if err != nil {
		return Meta{}, err
	}
	return Meta{
		Corpus:       man.Corpus,
		Kind:         man.Kind,
		Records:      man.Records,
		Docs:         man.Docs,
		MaxLength:    man.MaxLength,
		MinFrequency: man.MinFrequency,
		Selection:    man.Selection,
		DictUnranked: man.DictUnranked,
	}, nil
}

// OpenDictionary loads only the dictionary of an index directory,
// verified against the manifest's size and checksum and parsed with
// the rank check the manifest calls for. It is how an LSM append seeds
// the next generation's dictionary from the newest one without opening
// the full index.
func OpenDictionary(dir string) (*dictionary.Dictionary, error) {
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	if man.Dict.File == "" {
		return nil, corruptf("manifest names no dictionary")
	}
	data, err := os.ReadFile(filepath.Join(dir, man.Dict.File))
	if err != nil {
		return nil, fmt.Errorf("index: read dictionary: %w", err)
	}
	if int64(len(data)) != man.Dict.Bytes {
		return nil, corruptf("dictionary is %d bytes, manifest declares %d", len(data), man.Dict.Bytes)
	}
	if crc32.Checksum(data, crcTable) != man.Dict.CRC {
		return nil, corruptf("dictionary checksum mismatch")
	}
	d, err := loadDict(data, man.DictUnranked)
	if err != nil {
		return nil, corruptf("parse dictionary: %v", err)
	}
	return d, nil
}
