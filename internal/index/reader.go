package index

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"ngramstats/internal/dictionary"
	"ngramstats/internal/extsort"
	"ngramstats/internal/kvstore"
)

// Options configures Open.
type Options struct {
	// CacheBlocks bounds the decoded-block LRU cache in blocks (a block
	// decodes to ~64 KiB). Zero selects 128; negative disables caching.
	CacheBlocks int
}

// Index is a read-only handle on a committed index directory. All state
// is immutable after Open and shard reads use pread, so any number of
// goroutines may query one Index concurrently without external locking.
//
// Close is refcounted against in-flight queries: every file-touching
// query pins the handle for its duration, Close marks the handle closed
// immediately (new queries fail with ErrClosed) and the shard files are
// actually closed when the last in-flight query drains — so a serving
// layer may retire an index generation under live traffic without
// coordinating with its readers.
type Index struct {
	dir     string
	man     manifest
	manTime time.Time // MANIFEST.json mtime observed at Open
	dict    *dictionary.Dictionary
	shards  []*shard
	top     *extsort.DecodedBlock // nil when absent; rank order
	topN    int64
	cache   *kvstore.LRU

	// refs counts the handle's own base reference (1) plus one per
	// in-flight query; the transition to 0 closes the shard files.
	// closed flips on Close, failing new acquisitions immediately.
	refs   atomic.Int64
	closed atomic.Bool
}

// shard is one open sorted shard.
type shard struct {
	f    *os.File
	rr   *extsort.RunReader
	info shardInfo
}

// Open validates and opens an index directory. The manifest inventory
// is cross-checked against the files on disk (sizes, record counts,
// dictionary checksum, shard key ranges); damage detectable without
// reading every block fails here, and per-block damage fails at the
// query that touches it — in both cases with an error wrapping
// ErrCorrupt or extsort.ErrCorruptRun, never wrong answers.
func Open(dir string, opts Options) (*Index, error) {
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	ix := &Index{dir: dir, man: man}
	ix.refs.Store(1) // the handle's own base reference, dropped by Close
	if st, err := os.Stat(filepath.Join(dir, ManifestFile)); err == nil {
		ix.manTime = st.ModTime()
	}
	if opts.CacheBlocks == 0 {
		opts.CacheBlocks = 128
	}
	if opts.CacheBlocks > 0 {
		ix.cache = kvstore.NewLRU(opts.CacheBlocks)
	}

	if err := ix.loadDictionary(); err != nil {
		return nil, err
	}

	var records int64
	var prevLast []byte
	for i, si := range man.Shards {
		sh, err := openShard(dir, si)
		if err != nil {
			ix.Close()
			return nil, err
		}
		ix.shards = append(ix.shards, sh)
		records += si.Records
		if len(si.FirstKey) == 0 || bytes.Compare(si.FirstKey, si.LastKey) > 0 {
			ix.Close()
			return nil, corruptf("shard %d has inverted key range", i)
		}
		if prevLast != nil && bytes.Compare(prevLast, si.FirstKey) >= 0 {
			ix.Close()
			return nil, corruptf("shard %d overlaps its predecessor", i)
		}
		prevLast = si.LastKey
	}
	if records != man.Records {
		ix.Close()
		return nil, corruptf("shards hold %d records, manifest declares %d", records, man.Records)
	}

	if man.Top != nil {
		if err := ix.loadTop(); err != nil {
			ix.Close()
			return nil, err
		}
	}
	return ix, nil
}

// readManifest reads, checksum-verifies, and parses the directory's
// MANIFEST.json.
func readManifest(dir string) (manifest, error) {
	var man manifest
	data, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return man, fmt.Errorf("index: open %s: %w", dir, err)
	}
	crcData, err := os.ReadFile(filepath.Join(dir, ManifestCRCFile))
	if err != nil {
		return man, fmt.Errorf("index: read manifest checksum: %w", err)
	}
	// The checksum file holds one CRC line per manifest it vouches for:
	// exactly one for a committed index, transiently two while Commit
	// replaces an existing index (old and new manifest are both valid
	// during the swap, so a crash between the renames never leaves the
	// directory unopenable). Any line must match exactly.
	if !manifestCRCMatches(crcData, crc32.Checksum(data, crcTable)) {
		return man, corruptf("manifest checksum mismatch")
	}
	if err := json.Unmarshal(data, &man); err != nil {
		return man, corruptf("parse manifest: %v", err)
	}
	if man.Version != FormatVersion {
		return man, corruptf("unsupported index format version %d", man.Version)
	}
	return man, nil
}

// manifestCRCMatches reports whether any complete (newline-terminated)
// line of the checksum file is exactly the %08x rendering of crc. A
// final unterminated fragment never matches, so truncation anywhere in
// the file is detected.
func manifestCRCMatches(crcData []byte, crc uint32) bool {
	want := fmt.Sprintf("%08x", crc)
	lines := bytes.Split(crcData, []byte("\n"))
	for _, line := range lines[:len(lines)-1] {
		if string(line) == want {
			return true
		}
	}
	return false
}

func (ix *Index) loadDictionary() error {
	path := filepath.Join(ix.dir, ix.man.Dict.File)
	if ix.man.Dict.File == "" {
		return corruptf("manifest names no dictionary")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("index: read dictionary: %w", err)
	}
	if int64(len(data)) != ix.man.Dict.Bytes {
		return corruptf("dictionary is %d bytes, manifest declares %d", len(data), ix.man.Dict.Bytes)
	}
	if crc32.Checksum(data, crcTable) != ix.man.Dict.CRC {
		return corruptf("dictionary checksum mismatch")
	}
	d, err := loadDict(data, ix.man.DictUnranked)
	if err != nil {
		return corruptf("parse dictionary: %v", err)
	}
	ix.dict = d
	return nil
}

// loadDict parses dictionary bytes, honoring the manifest's rank flag:
// unranked dictionaries (LSM delta generations) skip the non-increasing
// frequency check that ranked dictionaries are verified against.
func loadDict(data []byte, unranked bool) (*dictionary.Dictionary, error) {
	if unranked {
		return dictionary.LoadUnranked(bytes.NewReader(data))
	}
	return dictionary.Load(bytes.NewReader(data))
}

func openShard(dir string, si shardInfo) (*shard, error) {
	path := filepath.Join(dir, si.File)
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("index: open shard: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("index: stat shard: %w", err)
	}
	if st.Size() != si.Bytes {
		f.Close()
		return nil, corruptf("shard %s is %d bytes, manifest declares %d", si.File, st.Size(), si.Bytes)
	}
	rr, err := extsort.OpenRunReader(st.Size(), fileReadAt(f))
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("index: open shard %s: %w", si.File, err)
	}
	if rr.Records() != si.Records {
		f.Close()
		return nil, corruptf("shard %s holds %d records, manifest declares %d", si.File, rr.Records(), si.Records)
	}
	if rr.NumBlocks() > 0 && !bytes.Equal(rr.FirstKey(0), si.FirstKey) {
		f.Close()
		return nil, corruptf("shard %s first key disagrees with manifest", si.File)
	}
	return &shard{f: f, rr: rr, info: si}, nil
}

func fileReadAt(f *os.File) extsort.ReadAtFunc {
	return func(off int64, n int) ([]byte, error) {
		buf := make([]byte, n)
		if _, err := f.ReadAt(buf, off); err != nil {
			return nil, err
		}
		return buf, nil
	}
}

// loadTop eagerly decodes the precomputed top records (a handful of
// blocks at most) so TopK within the stored depth is a slice read.
func (ix *Index) loadTop() error {
	ti := *ix.man.Top
	path := filepath.Join(ix.dir, ti.File)
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("index: open top records: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("index: stat top records: %w", err)
	}
	if st.Size() != ti.Bytes {
		return corruptf("top records file is %d bytes, manifest declares %d", st.Size(), ti.Bytes)
	}
	rr, err := extsort.OpenRunReader(st.Size(), fileReadAt(f))
	if err != nil {
		return fmt.Errorf("index: open top records: %w", err)
	}
	if rr.Records() != ti.Records {
		return corruptf("top records file holds %d records, manifest declares %d", rr.Records(), ti.Records)
	}
	// Merge the blocks into one, preserving order. One batched read
	// covers the whole file (a handful of blocks at most).
	blks, err := rr.ReadBlocks(0, rr.NumBlocks())
	if err != nil {
		return fmt.Errorf("index: read top records: %w", err)
	}
	merged := &extsort.DecodedBlock{}
	for _, blk := range blks {
		for i := 0; i < blk.Len(); i++ {
			merged.Append(blk.Key(i), blk.Value(i))
		}
	}
	ix.top = merged
	ix.topN = ti.Records
	return nil
}

// acquire pins the index against Close for the duration of one query.
// It fails with ErrClosed once Close has been called: a pin is only
// granted while the reference count is positive, which guarantees the
// shard files cannot be closed before the matching release.
func (ix *Index) acquire() error {
	if ix.closed.Load() {
		return ErrClosed
	}
	for {
		r := ix.refs.Load()
		if r <= 0 {
			return ErrClosed
		}
		if ix.refs.CompareAndSwap(r, r+1) {
			return nil
		}
	}
}

// release drops one pin; the last release after Close closes the shard
// files.
func (ix *Index) release() error {
	if ix.refs.Add(-1) == 0 {
		return ix.closeFiles()
	}
	return nil
}

func (ix *Index) closeFiles() error {
	var first error
	for _, sh := range ix.shards {
		if err := sh.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close marks the index closed — subsequent queries fail with ErrClosed
// — and drops the handle's base reference. The shard files are closed
// now if no query is in flight, otherwise by the last query to drain;
// in the latter case any file-close error is not reported. Close is
// idempotent.
func (ix *Index) Close() error {
	if ix.closed.Swap(true) {
		return nil
	}
	return ix.release()
}

// Records returns the number of indexed n-grams.
func (ix *Index) Records() int64 { return ix.man.Records }

// Corpus returns the corpus name recorded at save time.
func (ix *Index) Corpus() string { return ix.man.Corpus }

// Kind returns the aggregation kind of the record values (the integer
// value of core.AggregationKind).
func (ix *Index) Kind() int { return ix.man.Kind }

// Jobs returns the number of MapReduce jobs of the producing run.
func (ix *Index) Jobs() int { return ix.man.Jobs }

// Wallclock returns the producing run's total elapsed time.
func (ix *Index) Wallclock() time.Duration { return time.Duration(ix.man.WallclockNS) }

// Counters returns a copy of the producing run's counter snapshot.
func (ix *Index) Counters() map[string]int64 {
	out := make(map[string]int64, len(ix.man.Counters))
	for k, v := range ix.man.Counters {
		out[k] = v
	}
	return out
}

// Shards returns the number of shard files.
func (ix *Index) Shards() int { return len(ix.shards) }

// Docs returns the number of documents the index was computed over, or
// 0 for indexes written before this was recorded.
func (ix *Index) Docs() int64 { return ix.man.Docs }

// MaxLength returns the maximum n-gram length (σ) of the producing
// computation, or 0 when unrecorded.
func (ix *Index) MaxLength() int { return ix.man.MaxLength }

// MinFrequency returns the frequency threshold (τ) of the producing
// computation, or 0 when unrecorded.
func (ix *Index) MinFrequency() int64 { return ix.man.MinFrequency }

// Selection returns the selection mode of the producing computation as
// an integer (the value of the root package's Selection type).
func (ix *Index) Selection() int { return ix.man.Selection }

// ShardRuns opens every shard as an extsort merge input, in shard
// (i.e. global key) order, reading through the index's already-open
// file descriptors. The runs are safe to merge even if the underlying
// files are unlinked meanwhile — the LSM compactor relies on exactly
// that to stream a superseded generation into a new base. The caller
// must keep the Index open (not Closed) until the merge completes, and
// may pass a nil stats.
func (ix *Index) ShardRuns(stats *extsort.IOStats) []*extsort.Run {
	runs := make([]*extsort.Run, len(ix.shards))
	for i, sh := range ix.shards {
		runs[i] = extsort.OpenRemoteRun(sh.info.Bytes, int(sh.info.Records), fileReadAt(sh.f), stats)
	}
	return runs
}

// ManifestTime returns the modification time of MANIFEST.json observed
// when the index was opened — the freshness anchor a serving layer
// compares against the on-disk manifest to detect a rewritten index.
func (ix *Index) ManifestTime() time.Time { return ix.manTime }

// Dictionary returns the term dictionary recorded at save time.
func (ix *Index) Dictionary() *dictionary.Dictionary { return ix.dict }

// CacheStats returns the cumulative hit and miss counts of the decoded-
// block cache (both zero when caching is disabled).
func (ix *Index) CacheStats() (hits, misses int64) {
	if ix.cache == nil {
		return 0, 0
	}
	return ix.cache.Stats()
}

// TopRecords returns the first k precomputed top records in rank order,
// or false when fewer than k are stored (the caller must then fall back
// to a full scan). The returned slices must not be modified.
func (ix *Index) TopRecords(k int) (keys, values [][]byte, ok bool) {
	if ix.top == nil || int64(k) > ix.topN {
		return nil, nil, false
	}
	keys = make([][]byte, k)
	values = make([][]byte, k)
	for i := 0; i < k; i++ {
		keys[i] = ix.top.Key(i)
		values[i] = ix.top.Value(i)
	}
	return keys, values, true
}

// TopStored returns how many precomputed top records the index holds.
func (ix *Index) TopStored() int64 { return ix.topN }

// block returns the decoded block b of shard s, through the cache when
// useCache is set.
func (ix *Index) block(s, b int, useCache bool) (*extsort.DecodedBlock, error) {
	if !useCache || ix.cache == nil {
		return ix.shards[s].rr.ReadBlock(b)
	}
	var kb [8]byte
	binary.LittleEndian.PutUint32(kb[0:4], uint32(s))
	binary.LittleEndian.PutUint32(kb[4:8], uint32(b))
	key := string(kb[:])
	if v, ok := ix.cache.Get(key); ok {
		return v.(*extsort.DecodedBlock), nil
	}
	blk, err := ix.shards[s].rr.ReadBlock(b)
	if err != nil {
		return nil, err
	}
	ix.cache.Put(key, blk)
	return blk, nil
}

// findShard returns the index of the only shard whose key range can
// contain key, or -1.
func (ix *Index) findShard(key []byte) int {
	i := sort.Search(len(ix.shards), func(i int) bool {
		return bytes.Compare(ix.shards[i].info.FirstKey, key) > 0
	}) - 1
	if i < 0 || bytes.Compare(key, ix.shards[i].info.LastKey) > 0 {
		return -1
	}
	return i
}

// Get returns the value stored under key, if any. The lookup touches
// exactly one block, served from the cache when hot. The returned slice
// aliases immutable cache memory and must not be modified.
func (ix *Index) Get(key []byte) ([]byte, bool, error) {
	if err := ix.acquire(); err != nil {
		return nil, false, err
	}
	defer ix.release()
	s := ix.findShard(key)
	if s < 0 {
		return nil, false, nil
	}
	b := ix.shards[s].rr.FindBlock(key, nil)
	if b < 0 {
		return nil, false, nil
	}
	blk, err := ix.block(s, b, true)
	if err != nil {
		return nil, false, err
	}
	if i, ok := blk.Search(key, nil); ok {
		return blk.Value(i), true, nil
	}
	return nil, false, nil
}

// errStopScan terminates a scan early without reporting an error.
var errStopScan = errors.New("index: stop scan")

// StopScan returns the sentinel a Scan callback may return to end the
// scan early; Scan then returns nil.
func StopScan() error { return errStopScan }

// Scan calls fn for every record with lo ≤ key < hi in ascending key
// order (nil bounds are unbounded). Bounded scans are served through
// the block cache; full scans bypass it so one NGrams pass cannot evict
// the hot set. The slices passed to fn are valid only during the call.
func (ix *Index) Scan(lo, hi []byte, fn func(key, value []byte) error) error {
	if err := ix.acquire(); err != nil {
		return err
	}
	defer ix.release()
	useCache := lo != nil || hi != nil
	if !useCache {
		return ix.scanAll(fn)
	}
	s := 0
	if lo != nil {
		s = sort.Search(len(ix.shards), func(i int) bool {
			return bytes.Compare(ix.shards[i].info.LastKey, lo) >= 0
		})
	}
	for ; s < len(ix.shards); s++ {
		sh := ix.shards[s]
		if hi != nil && bytes.Compare(sh.info.FirstKey, hi) >= 0 {
			return nil
		}
		b := 0
		if lo != nil {
			if fb := sh.rr.FindBlock(lo, nil); fb > 0 {
				b = fb
			}
		}
		for ; b < sh.rr.NumBlocks(); b++ {
			if hi != nil && bytes.Compare(sh.rr.FirstKey(b), hi) >= 0 {
				return nil
			}
			blk, err := ix.block(s, b, useCache)
			if err != nil {
				return err
			}
			for i := 0; i < blk.Len(); i++ {
				k := blk.Key(i)
				if lo != nil && bytes.Compare(k, lo) < 0 {
					continue
				}
				if hi != nil && bytes.Compare(k, hi) >= 0 {
					return nil
				}
				if err := fn(k, blk.Value(i)); err != nil {
					if errors.Is(err, errStopScan) {
						return nil
					}
					return err
				}
			}
		}
	}
	return nil
}

// scanBatchBlocks bounds one batched region read of an unbounded scan
// (~16 × 64 KiB ≈ 1 MiB encoded per syscall).
const scanBatchBlocks = 16

// scanAll is the unbounded-scan fast path: every block of every shard
// is visited, so blocks are fetched in batched region reads — one
// pread and one contiguous CRC pass per scanBatchBlocks — bypassing
// the cache so a full pass cannot evict the hot set.
func (ix *Index) scanAll(fn func(key, value []byte) error) error {
	for _, sh := range ix.shards {
		n := sh.rr.NumBlocks()
		for b := 0; b < n; b += scanBatchBlocks {
			end := b + scanBatchBlocks
			if end > n {
				end = n
			}
			blks, err := sh.rr.ReadBlocks(b, end)
			if err != nil {
				return err
			}
			for _, blk := range blks {
				for i := 0; i < blk.Len(); i++ {
					if err := fn(blk.Key(i), blk.Value(i)); err != nil {
						if errors.Is(err, errStopScan) {
							return nil
						}
						return err
					}
				}
			}
		}
	}
	return nil
}

// ScanPrefix calls fn for every record whose key starts with the given
// byte prefix, in ascending key order. An empty prefix scans everything.
func (ix *Index) ScanPrefix(prefix []byte, fn func(key, value []byte) error) error {
	if len(prefix) == 0 {
		return ix.Scan(nil, nil, fn)
	}
	return ix.Scan(prefix, PrefixSuccessor(prefix), fn)
}

// PrefixSuccessor returns the smallest key greater than every key with
// the given prefix, or nil when no such bound exists (all-0xFF prefix).
func PrefixSuccessor(prefix []byte) []byte {
	for i := len(prefix) - 1; i >= 0; i-- {
		if prefix[i] != 0xFF {
			succ := append([]byte(nil), prefix[:i+1]...)
			succ[i]++
			return succ
		}
	}
	return nil
}
