package index

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestStaleRemovable pins which paths from a replaced manifest the
// writer may unlink: flat files and gen- staging files only. Unknown
// subdirectories — notably the delta-/base- generations of an LSM
// chain sharing the root, possibly referenced by a manifest written by
// a future format — and escaping paths are off limits.
func TestStaleRemovable(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"dictionary.tsv", true},
		{"shard-00003.run", true},
		{"top.run", true},
		{"gen-000002/dictionary.tsv", true},
		{"gen-000002/shard-00000.run", true},
		{"gen-7/nested/deeper/file.run", true},
		{"delta-000000/shard-00000.run", false},
		{"base-000002/dictionary.tsv", false},
		{"CHAIN.json", true}, // flat file; never manifest-listed in practice
		{"some-dir/file.run", false},
		{"gen/file.run", false},     // "gen" without the dash is not staging
		{"genx-01/file.run", false}, // prefix must be exactly "gen-"
		{"../outside.run", false},   // escapes the index directory
		{"/etc/passwd", false},      // absolute
		{"", false},
	}
	for _, c := range cases {
		if got := staleRemovable(c.path); got != c.want {
			t.Errorf("staleRemovable(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

// TestReplaceSparesChainStructures is the integration form: replacing
// a plain index whose directory also hosts LSM chain structures (a
// delta generation, the chain manifest) must not reach into them, even
// when the replaced manifest — possibly from a future format — lists
// files inside those subdirectories as its own.
func TestReplaceSparesChainStructures(t *testing.T) {
	dir := t.TempDir()
	buildIndex(t, dir, 40, 2)

	// Chain structures sharing the root.
	deltaDir := filepath.Join(dir, "delta-000000")
	if err := os.MkdirAll(deltaDir, 0o777); err != nil {
		t.Fatal(err)
	}
	deltaShard := filepath.Join(deltaDir, "shard-00000.run")
	if err := os.WriteFile(deltaShard, []byte("delta data"), 0o666); err != nil {
		t.Fatal(err)
	}
	chainMan := filepath.Join(dir, "CHAIN.json")
	if err := os.WriteFile(chainMan, []byte("{}\n"), 0o666); err != nil {
		t.Fatal(err)
	}

	// Doctor the committed manifest to claim the delta's file and an
	// escaping path as index data (committedFiles does not checksum).
	manPath := filepath.Join(dir, ManifestFile)
	data, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	var man manifest
	if err := json.Unmarshal(data, &man); err != nil {
		t.Fatal(err)
	}
	man.Shards = append(man.Shards,
		shardInfo{fileInfo: fileInfo{File: "delta-000000/shard-00000.run"}},
		shardInfo{fileInfo: fileInfo{File: "../escapee.run"}},
	)
	doctored, err := json.Marshal(man)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manPath, doctored, 0o666); err != nil {
		t.Fatal(err)
	}
	outside := filepath.Join(filepath.Dir(dir), "escapee.run")
	if err := os.WriteFile(outside, []byte("outside"), 0o666); err != nil {
		t.Fatal(err)
	}

	buildReplacement(t, dir, 30, 1)

	for _, f := range []string{deltaShard, chainMan, outside} {
		if _, err := os.Stat(f); err != nil {
			t.Errorf("replacement removed %s: %v", f, err)
		}
	}
	// The replacement itself still committed and serves.
	ix, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after replace: %v", err)
	}
	defer ix.Close()
	if ix.Records() != 30 {
		t.Fatalf("Records = %d, want 30", ix.Records())
	}
}
