package index

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildReplacement rewrites an already-committed index directory with n
// fresh records through a Replace writer. Values are prefixed "rep-" so
// tests can tell the generations apart.
func buildReplacement(t *testing.T, dir string, n, shards int) (keys, vals [][]byte) {
	t.Helper()
	for i := 0; i < n; i++ {
		keys = append(keys, []byte(fmt.Sprintf("key-%06d", i)))
		vals = append(vals, []byte(fmt.Sprintf("rep-%d", i)))
	}
	w, err := NewWriter(dir, WriterOptions{
		Corpus:  "test-corpus-v2",
		Records: int64(n),
		Shards:  shards,
		Replace: true,
	})
	if err != nil {
		t.Fatalf("NewWriter(Replace): %v", err)
	}
	if err := w.SetDictionary(func(out io.Writer) error {
		_, err := io.WriteString(out, "the\t100\nquick\t50\n")
		return err
	}); err != nil {
		t.Fatalf("SetDictionary: %v", err)
	}
	for i := range keys {
		if err := w.Append(keys[i], vals[i]); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	return keys, vals
}

// TestReplaceRewriteUnderOpenReader pins the atomic-replacement
// contract: a reader opened on the old generation keeps answering old
// queries after the directory is rewritten, a fresh Open sees the new
// generation, stale files are cleaned up, and the CRC file shrinks back
// to one line.
func TestReplaceRewriteUnderOpenReader(t *testing.T) {
	dir := t.TempDir()
	oldKeys, oldVals := buildIndex(t, dir, 100, 2)
	ix1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix1.Close()

	// Ensure the replacement manifest gets a distinct mtime even on
	// coarse-granularity filesystems.
	time.Sleep(20 * time.Millisecond)
	newKeys, newVals := buildReplacement(t, dir, 150, 3)

	// The old reader is pinned to the old generation.
	v, ok, err := ix1.Get(oldKeys[7])
	if err != nil || !ok || !bytes.Equal(v, oldVals[7]) {
		t.Fatalf("old reader after replace: Get = %q, %v, %v (want %q)", v, ok, err, oldVals[7])
	}
	if ix1.Records() != 100 || ix1.Corpus() != "test-corpus" {
		t.Fatalf("old reader mutated: %d records, corpus %q", ix1.Records(), ix1.Corpus())
	}

	// A fresh Open serves the new generation.
	ix2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after replace: %v", err)
	}
	defer ix2.Close()
	if ix2.Records() != 150 || ix2.Corpus() != "test-corpus-v2" {
		t.Fatalf("new reader: %d records, corpus %q", ix2.Records(), ix2.Corpus())
	}
	v, ok, err = ix2.Get(newKeys[7])
	if err != nil || !ok || !bytes.Equal(v, newVals[7]) {
		t.Fatalf("new reader: Get = %q, %v, %v (want %q)", v, ok, err, newVals[7])
	}
	if !ix2.ManifestTime().After(ix1.ManifestTime()) {
		t.Fatalf("manifest time did not advance: %v -> %v", ix1.ManifestTime(), ix2.ManifestTime())
	}

	// The old generation's flat data files are unlinked; only the
	// manifest pair and generation directories remain at the top level.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			if !strings.HasPrefix(e.Name(), "gen-") {
				t.Fatalf("unexpected directory %q after replace", e.Name())
			}
			continue
		}
		if e.Name() != ManifestFile && e.Name() != ManifestCRCFile {
			t.Fatalf("stale file %q survived the replace", e.Name())
		}
	}

	// The transitional two-line CRC collapsed back to a single line.
	crc, err := os.ReadFile(filepath.Join(dir, ManifestCRCFile))
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(crc), "\n"); lines != 1 {
		t.Fatalf("CRC file has %d lines after replace, want 1: %q", lines, crc)
	}
}

// TestReplaceAbortKeepsOld pins that aborting a replacement leaves the
// old generation fully intact and stages nothing behind.
func TestReplaceAbortKeepsOld(t *testing.T) {
	dir := t.TempDir()
	keys, vals := buildIndex(t, dir, 50, 1)
	w, err := NewWriter(dir, WriterOptions{Records: 10, Shards: 1, Replace: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetDictionary(func(out io.Writer) error {
		_, err := io.WriteString(out, "x\t1\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append([]byte(fmt.Sprintf("key-%06d", i)), []byte("doomed")); err != nil {
			t.Fatal(err)
		}
	}
	w.Abort()

	ix, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after aborted replace: %v", err)
	}
	defer ix.Close()
	if ix.Records() != 50 {
		t.Fatalf("aborted replace changed the index: %d records", ix.Records())
	}
	v, ok, err := ix.Get(keys[3])
	if err != nil || !ok || !bytes.Equal(v, vals[3]) {
		t.Fatalf("old record lost: %q, %v, %v", v, ok, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "gen-") {
			t.Fatalf("aborted replace left staging directory %q", e.Name())
		}
	}
}

// TestCloseDrainsInFlight pins the refcounted-close semantics: Close
// during an in-flight scan lets the scan finish on the open files,
// closes them when it drains, and fails only queries started later.
func TestCloseDrainsInFlight(t *testing.T) {
	dir := t.TempDir()
	keys, _ := buildIndex(t, dir, 120, 2)
	ix, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var seen int
	closedMid := false
	err = ix.Scan(nil, nil, func(k, v []byte) error {
		if !closedMid {
			closedMid = true
			if err := ix.Close(); err != nil {
				t.Fatalf("Close mid-scan: %v", err)
			}
		}
		seen++
		return nil
	})
	if err != nil {
		t.Fatalf("in-flight scan failed after Close: %v", err)
	}
	if seen != len(keys) {
		t.Fatalf("scan saw %d of %d records after mid-scan Close", seen, len(keys))
	}
	if _, _, err := ix.Get(keys[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close Get: err = %v, want ErrClosed", err)
	}
	if err := ix.Scan(nil, nil, func(k, v []byte) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close Scan: err = %v, want ErrClosed", err)
	}
	if err := ix.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
