package index

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"ngramstats/internal/extsort"
)

// WriterOptions configures an index build.
type WriterOptions struct {
	// Corpus names the corpus the records were computed over.
	Corpus string
	// Kind is the aggregation kind of the record values (the integer
	// value of core.AggregationKind; this package does not interpret
	// values beyond storing them).
	Kind int
	// Records is the exact number of records that will be appended.
	// Commit fails on a mismatch — the count drives shard cutting and
	// is the reader's consistency anchor.
	Records int64
	// Shards is the desired shard count; values < 1 select 1 and the
	// effective count never exceeds the record count.
	Shards int
	// Codec selects the optional per-block compression of shard files.
	Codec extsort.Codec
	// Jobs, Wallclock, and Counters snapshot the producing run for the
	// manifest (all optional).
	Jobs      int
	Wallclock time.Duration
	Counters  map[string]int64
}

// Writer builds an index directory. Usage: NewWriter, SetDictionary,
// Append every record in ascending key order, optionally AppendTop the
// precomputed top records in rank order, then Commit. The manifest is
// written last and atomically, so a crashed or aborted build is never
// mistaken for a complete index.
type Writer struct {
	dir  string
	opts WriterOptions
	man  manifest

	perShard int64
	appended int64
	lastKey  []byte
	haveDict bool

	cur *shardFile // open shard being appended to
	top *shardFile // open top.run, if any
}

// shardFile is one run file being written.
type shardFile struct {
	path  string
	f     *os.File
	bw    *bufio.Writer
	rw    *extsort.RunWriter
	first []byte
	last  []byte
}

// NewWriter creates the index directory (which must not already contain
// an index) and returns a writer for it.
func NewWriter(dir string, opts WriterOptions) (*Writer, error) {
	if opts.Shards < 1 {
		opts.Shards = 1
	}
	if opts.Records < 0 {
		return nil, fmt.Errorf("index: negative record count %d", opts.Records)
	}
	if int64(opts.Shards) > opts.Records && opts.Records > 0 {
		opts.Shards = int(opts.Records)
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("index: create %s: %w", dir, err)
	}
	if _, err := os.Stat(filepath.Join(dir, ManifestFile)); err == nil {
		return nil, fmt.Errorf("index: %s already contains an index", dir)
	}
	perShard := int64(1)
	if opts.Records > 0 {
		perShard = (opts.Records + int64(opts.Shards) - 1) / int64(opts.Shards)
	}
	w := &Writer{dir: dir, opts: opts, perShard: perShard}
	w.man = manifest{
		Version:     FormatVersion,
		Corpus:      opts.Corpus,
		Kind:        opts.Kind,
		Records:     opts.Records,
		Jobs:        opts.Jobs,
		WallclockNS: opts.Wallclock.Nanoseconds(),
		Counters:    opts.Counters,
	}
	return w, nil
}

// SetDictionary writes the dictionary file from the given serializer,
// recording its size and CRC-32C in the manifest.
func (w *Writer) SetDictionary(save func(io.Writer) error) error {
	path := filepath.Join(w.dir, DictionaryFile)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("index: create dictionary: %w", err)
	}
	crc := crc32.New(crcTable)
	counted := &countingWriter{w: io.MultiWriter(f, crc)}
	if err := save(counted); err != nil {
		f.Close()
		return fmt.Errorf("index: write dictionary: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("index: close dictionary: %w", err)
	}
	w.man.Dict = fileInfo{File: DictionaryFile, Bytes: counted.n, CRC: crc.Sum32()}
	w.haveDict = true
	return nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func (w *Writer) openShard(name string) (*shardFile, error) {
	path := filepath.Join(w.dir, name)
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("index: create shard: %w", err)
	}
	bw := bufio.NewWriterSize(f, 256<<10)
	return &shardFile{path: path, f: f, bw: bw, rw: extsort.NewRunWriter(bw, w.opts.Codec)}, nil
}

// finishShard completes the open run file and returns its inventory.
func finishShard(s *shardFile) (fileInfo, []byte, []byte, error) {
	size, err := s.rw.Finish()
	if err == nil {
		err = s.bw.Flush()
	}
	if err == nil {
		err = s.f.Close()
	} else {
		s.f.Close()
	}
	if err != nil {
		os.Remove(s.path)
		return fileInfo{}, nil, nil, fmt.Errorf("index: finish %s: %w", s.path, err)
	}
	return fileInfo{File: filepath.Base(s.path), Bytes: size, Records: s.rw.Records()},
		s.first, s.last, nil
}

// Append adds one record. Keys must arrive in strictly ascending
// bytewise order (the result set has unique keys); violations are
// rejected immediately rather than producing an index whose binary
// search silently misses records.
func (w *Writer) Append(key, value []byte) error {
	if w.appended >= w.opts.Records {
		return fmt.Errorf("index: more than the declared %d records appended", w.opts.Records)
	}
	if w.lastKey != nil && bytes.Compare(key, w.lastKey) <= 0 {
		return fmt.Errorf("index: key %x not strictly after %x", key, w.lastKey)
	}
	if w.cur == nil {
		s, err := w.openShard(fmt.Sprintf("shard-%05d.run", len(w.man.Shards)))
		if err != nil {
			return err
		}
		s.first = append([]byte(nil), key...)
		w.cur = s
	}
	if err := w.cur.rw.Append(key, value); err != nil {
		return fmt.Errorf("index: append record: %w", err)
	}
	w.cur.last = append(w.cur.last[:0], key...)
	w.lastKey = append(w.lastKey[:0], key...)
	w.appended++
	if w.cur.rw.Records() >= w.perShard {
		if err := w.cutShard(); err != nil {
			return err
		}
	}
	return nil
}

func (w *Writer) cutShard() error {
	info, first, last, err := finishShard(w.cur)
	w.cur = nil
	if err != nil {
		return err
	}
	w.man.Shards = append(w.man.Shards, shardInfo{fileInfo: info, FirstKey: first, LastKey: last})
	return nil
}

// AppendTop adds one precomputed top record; call in rank order, best
// first. The top file preserves append order (the run format does not
// require sorted keys).
func (w *Writer) AppendTop(key, value []byte) error {
	if w.top == nil {
		s, err := w.openShard(TopFile)
		if err != nil {
			return err
		}
		w.top = s
	}
	if err := w.top.rw.Append(key, value); err != nil {
		return fmt.Errorf("index: append top record: %w", err)
	}
	return nil
}

// Commit finalizes the index: the open shard and top files are
// completed and the manifest is written atomically. The writer must not
// be used afterwards.
func (w *Writer) Commit() error {
	if w.appended != w.opts.Records {
		w.Abort()
		return fmt.Errorf("index: %d records appended, %d declared", w.appended, w.opts.Records)
	}
	if !w.haveDict {
		w.Abort()
		return fmt.Errorf("index: Commit without SetDictionary")
	}
	if w.cur != nil {
		if err := w.cutShard(); err != nil {
			w.Abort()
			return err
		}
	}
	if w.top != nil {
		info, _, _, err := finishShard(w.top)
		w.top = nil
		if err != nil {
			w.Abort()
			return err
		}
		w.man.Top = &info
	}
	if w.man.Shards == nil {
		w.man.Shards = []shardInfo{}
	}
	data, err := json.MarshalIndent(&w.man, "", "  ")
	if err != nil {
		w.Abort()
		return fmt.Errorf("index: encode manifest: %w", err)
	}
	data = append(data, '\n')
	// The checksum lands before the manifest rename: a crash in between
	// leaves no MANIFEST.json, so the directory is never mistaken for a
	// complete index, and a manifest without its checksum fails Open.
	crcLine := fmt.Sprintf("%08x\n", crc32.Checksum(data, crcTable))
	if err := os.WriteFile(filepath.Join(w.dir, ManifestCRCFile), []byte(crcLine), 0o666); err != nil {
		w.Abort()
		return fmt.Errorf("index: write manifest checksum: %w", err)
	}
	tmp := filepath.Join(w.dir, ManifestFile+".tmp")
	if err := os.WriteFile(tmp, data, 0o666); err != nil {
		w.Abort()
		return fmt.Errorf("index: write manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(w.dir, ManifestFile)); err != nil {
		os.Remove(tmp)
		w.Abort()
		return fmt.Errorf("index: commit manifest: %w", err)
	}
	return nil
}

// Abort removes every file the writer has produced so far. It is safe
// to call after a failed Commit; a committed index is not removed.
func (w *Writer) Abort() {
	if w.cur != nil {
		w.cur.f.Close()
		os.Remove(w.cur.path)
		w.cur = nil
	}
	if w.top != nil {
		w.top.f.Close()
		os.Remove(w.top.path)
		w.top = nil
	}
	if _, err := os.Stat(filepath.Join(w.dir, ManifestFile)); err == nil {
		return // committed; leave the index intact
	}
	for _, s := range w.man.Shards {
		os.Remove(filepath.Join(w.dir, s.File))
	}
	if w.haveDict {
		os.Remove(filepath.Join(w.dir, DictionaryFile))
	}
	os.Remove(filepath.Join(w.dir, TopFile))
	os.Remove(filepath.Join(w.dir, ManifestCRCFile))
}
