package index

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"ngramstats/internal/extsort"
)

// WriterOptions configures an index build.
type WriterOptions struct {
	// Corpus names the corpus the records were computed over.
	Corpus string
	// Kind is the aggregation kind of the record values (the integer
	// value of core.AggregationKind; this package does not interpret
	// values beyond storing them).
	Kind int
	// Records is the exact number of records that will be appended.
	// Commit fails on a mismatch — the count drives shard cutting and
	// is the reader's consistency anchor.
	Records int64
	// Shards is the desired shard count; values < 1 select 1 and the
	// effective count never exceeds the record count.
	Shards int
	// Codec selects the optional per-block compression of shard files.
	Codec extsort.Codec
	// Jobs, Wallclock, and Counters snapshot the producing run for the
	// manifest (all optional).
	Jobs      int
	Wallclock time.Duration
	Counters  map[string]int64
	// Docs, MaxLength, MinFrequency, Selection, and DictUnranked are
	// recorded verbatim in the manifest (see the manifest type for their
	// meaning); all are optional and this package does not interpret
	// them.
	Docs         int64
	MaxLength    int
	MinFrequency int64
	Selection    int
	DictUnranked bool
	// Replace allows writing over a directory that already contains a
	// committed index. The new index's data files are staged in a fresh
	// generation subdirectory and the manifest is swapped in atomically
	// at Commit, so concurrent readers of the old index (and Opens
	// racing the swap) are never disturbed: an open Index keeps serving
	// the old generation's files until it is closed, and the directory
	// is openable at every instant of the replacement. The files of the
	// replaced generation are unlinked after the swap.
	Replace bool
}

// Writer builds an index directory. Usage: NewWriter, SetDictionary,
// Append every record in ascending key order, optionally AppendTop the
// precomputed top records in rank order, then Commit. The manifest is
// written last and atomically, so a crashed or aborted build is never
// mistaken for a complete index.
type Writer struct {
	dir  string
	opts WriterOptions
	man  manifest

	// sub is the directory-relative generation subdirectory data files
	// are written into when replacing an existing index ("" writes the
	// flat layout into dir directly); stale lists the replaced
	// generation's files, unlinked after Commit's manifest swap.
	sub   string
	stale []string

	perShard  int64
	appended  int64
	lastKey   []byte
	haveDict  bool
	committed bool

	cur *shardFile // open shard being appended to
	top *shardFile // open top.run, if any
}

// shardFile is one run file being written.
type shardFile struct {
	path  string // absolute
	rel   string // dir-relative, as recorded in the manifest
	f     *os.File
	bw    *bufio.Writer
	rw    *extsort.RunWriter
	first []byte
	last  []byte
}

// NewWriter creates the index directory (which must not already contain
// an index) and returns a writer for it.
func NewWriter(dir string, opts WriterOptions) (*Writer, error) {
	if opts.Shards < 1 {
		opts.Shards = 1
	}
	if opts.Records < 0 {
		return nil, fmt.Errorf("index: negative record count %d", opts.Records)
	}
	if int64(opts.Shards) > opts.Records && opts.Records > 0 {
		opts.Shards = int(opts.Records)
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("index: create %s: %w", dir, err)
	}
	var sub string
	var stale []string
	if _, err := os.Stat(filepath.Join(dir, ManifestFile)); err == nil {
		if !opts.Replace {
			return nil, fmt.Errorf("index: %s already contains an index", dir)
		}
		// Replacing a committed index: stage the new generation's data
		// files in a fresh subdirectory so nothing the old manifest
		// references is touched before the manifest swap, and remember
		// the old generation's files for post-swap cleanup.
		stale = committedFiles(dir)
		gen, err := os.MkdirTemp(dir, "gen-")
		if err != nil {
			return nil, fmt.Errorf("index: create generation dir: %w", err)
		}
		sub = filepath.Base(gen)
	}
	perShard := int64(1)
	if opts.Records > 0 {
		perShard = (opts.Records + int64(opts.Shards) - 1) / int64(opts.Shards)
	}
	w := &Writer{dir: dir, opts: opts, sub: sub, stale: stale, perShard: perShard}
	w.man = manifest{
		Version:      FormatVersion,
		Corpus:       opts.Corpus,
		Kind:         opts.Kind,
		Records:      opts.Records,
		Jobs:         opts.Jobs,
		WallclockNS:  opts.Wallclock.Nanoseconds(),
		Counters:     opts.Counters,
		Docs:         opts.Docs,
		MaxLength:    opts.MaxLength,
		MinFrequency: opts.MinFrequency,
		Selection:    opts.Selection,
		DictUnranked: opts.DictUnranked,
	}
	return w, nil
}

// committedFiles lists the data files the directory's committed
// manifest references (dir-relative), best-effort: a malformed old
// manifest simply yields nothing to clean up.
func committedFiles(dir string) []string {
	data, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return nil
	}
	var man manifest
	if json.Unmarshal(data, &man) != nil {
		return nil
	}
	var files []string
	if man.Dict.File != "" {
		files = append(files, man.Dict.File)
	}
	for _, s := range man.Shards {
		files = append(files, s.File)
	}
	if man.Top != nil {
		files = append(files, man.Top.File)
	}
	return files
}

// SetDictionary writes the dictionary file from the given serializer,
// recording its size and CRC-32C in the manifest.
func (w *Writer) SetDictionary(save func(io.Writer) error) error {
	rel := filepath.Join(w.sub, DictionaryFile)
	f, err := os.Create(filepath.Join(w.dir, rel))
	if err != nil {
		return fmt.Errorf("index: create dictionary: %w", err)
	}
	crc := crc32.New(crcTable)
	counted := &countingWriter{w: io.MultiWriter(f, crc)}
	if err := save(counted); err != nil {
		f.Close()
		return fmt.Errorf("index: write dictionary: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("index: close dictionary: %w", err)
	}
	w.man.Dict = fileInfo{File: rel, Bytes: counted.n, CRC: crc.Sum32()}
	w.haveDict = true
	return nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func (w *Writer) openShard(name string) (*shardFile, error) {
	rel := filepath.Join(w.sub, name)
	path := filepath.Join(w.dir, rel)
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("index: create shard: %w", err)
	}
	bw := bufio.NewWriterSize(f, 256<<10)
	return &shardFile{path: path, rel: rel, f: f, bw: bw, rw: extsort.NewRunWriter(bw, w.opts.Codec)}, nil
}

// finishShard completes the open run file and returns its inventory.
func finishShard(s *shardFile) (fileInfo, []byte, []byte, error) {
	size, err := s.rw.Finish()
	if err == nil {
		err = s.bw.Flush()
	}
	if err == nil {
		err = s.f.Close()
	} else {
		s.f.Close()
	}
	if err != nil {
		os.Remove(s.path)
		return fileInfo{}, nil, nil, fmt.Errorf("index: finish %s: %w", s.path, err)
	}
	return fileInfo{File: s.rel, Bytes: size, Records: s.rw.Records()},
		s.first, s.last, nil
}

// Append adds one record. Keys must arrive in strictly ascending
// bytewise order (the result set has unique keys); violations are
// rejected immediately rather than producing an index whose binary
// search silently misses records.
func (w *Writer) Append(key, value []byte) error {
	if w.appended >= w.opts.Records {
		return fmt.Errorf("index: more than the declared %d records appended", w.opts.Records)
	}
	if w.lastKey != nil && bytes.Compare(key, w.lastKey) <= 0 {
		return fmt.Errorf("index: key %x not strictly after %x", key, w.lastKey)
	}
	if w.cur == nil {
		s, err := w.openShard(fmt.Sprintf("shard-%05d.run", len(w.man.Shards)))
		if err != nil {
			return err
		}
		s.first = append([]byte(nil), key...)
		w.cur = s
	}
	if err := w.cur.rw.Append(key, value); err != nil {
		return fmt.Errorf("index: append record: %w", err)
	}
	w.cur.last = append(w.cur.last[:0], key...)
	w.lastKey = append(w.lastKey[:0], key...)
	w.appended++
	if w.cur.rw.Records() >= w.perShard {
		if err := w.cutShard(); err != nil {
			return err
		}
	}
	return nil
}

func (w *Writer) cutShard() error {
	info, first, last, err := finishShard(w.cur)
	w.cur = nil
	if err != nil {
		return err
	}
	w.man.Shards = append(w.man.Shards, shardInfo{fileInfo: info, FirstKey: first, LastKey: last})
	return nil
}

// AppendTop adds one precomputed top record; call in rank order, best
// first. The top file preserves append order (the run format does not
// require sorted keys).
func (w *Writer) AppendTop(key, value []byte) error {
	if w.top == nil {
		s, err := w.openShard(TopFile)
		if err != nil {
			return err
		}
		w.top = s
	}
	if err := w.top.rw.Append(key, value); err != nil {
		return fmt.Errorf("index: append top record: %w", err)
	}
	return nil
}

// Commit finalizes the index: the open shard and top files are
// completed and the manifest is written atomically. The writer must not
// be used afterwards.
func (w *Writer) Commit() error {
	if w.appended != w.opts.Records {
		w.Abort()
		return fmt.Errorf("index: %d records appended, %d declared", w.appended, w.opts.Records)
	}
	if !w.haveDict {
		w.Abort()
		return fmt.Errorf("index: Commit without SetDictionary")
	}
	if w.cur != nil {
		if err := w.cutShard(); err != nil {
			w.Abort()
			return err
		}
	}
	if w.top != nil {
		info, _, _, err := finishShard(w.top)
		w.top = nil
		if err != nil {
			w.Abort()
			return err
		}
		w.man.Top = &info
	}
	if w.man.Shards == nil {
		w.man.Shards = []shardInfo{}
	}
	data, err := json.MarshalIndent(&w.man, "", "  ")
	if err != nil {
		w.Abort()
		return fmt.Errorf("index: encode manifest: %w", err)
	}
	data = append(data, '\n')
	// The checksum lands before the manifest rename: a crash in between
	// leaves no MANIFEST.json (fresh build) or the old index's manifest
	// (replacement), so the directory is never mistaken for a complete
	// new index, and a manifest without its checksum fails Open. When
	// replacing, the old manifest's CRC line is kept alongside the new
	// one through the swap — whichever manifest a crash leaves behind,
	// the directory stays openable — and the file is shrunk back to one
	// line once the new manifest is in place.
	crcPath := filepath.Join(w.dir, ManifestCRCFile)
	crcLine := fmt.Sprintf("%08x\n", crc32.Checksum(data, crcTable))
	crcData := []byte(crcLine)
	if w.sub != "" {
		if old, err := os.ReadFile(crcPath); err == nil {
			crcData = append(old, crcLine...)
		}
	}
	if err := writeFileAtomic(crcPath, crcData); err != nil {
		w.Abort()
		return fmt.Errorf("index: write manifest checksum: %w", err)
	}
	tmp := filepath.Join(w.dir, ManifestFile+".tmp")
	if err := os.WriteFile(tmp, data, 0o666); err != nil {
		w.Abort()
		return fmt.Errorf("index: write manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(w.dir, ManifestFile)); err != nil {
		os.Remove(tmp)
		w.Abort()
		return fmt.Errorf("index: commit manifest: %w", err)
	}
	w.committed = true
	if w.sub != "" {
		// Post-swap, best-effort: retire the transitional CRC line and
		// unlink the replaced generation's files (open readers keep
		// serving them through their file descriptors).
		writeFileAtomic(crcPath, []byte(crcLine))
		w.cleanupStale()
	}
	return nil
}

// writeFileAtomic writes data under path via a temp file and rename, so
// concurrent readers see either the old or the new content, never a
// partial write.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o666); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// cleanupStale removes the replaced generation's files that the new
// manifest does not reference, then any generation directories left
// empty. Best-effort: leftovers are harmless (the manifest is the sole
// source of truth) and a future replacement sweeps them again.
func (w *Writer) cleanupStale() {
	live := map[string]bool{w.man.Dict.File: true}
	for _, s := range w.man.Shards {
		live[s.File] = true
	}
	if w.man.Top != nil {
		live[w.man.Top.File] = true
	}
	dirs := map[string]bool{}
	for _, f := range w.stale {
		if live[f] || !staleRemovable(f) {
			continue
		}
		os.Remove(filepath.Join(w.dir, f))
		if d := filepath.Dir(f); d != "." {
			dirs[d] = true
		}
	}
	for d := range dirs {
		os.Remove(filepath.Join(w.dir, d)) // fails while non-empty; fine
	}
}

// staleRemovable reports whether a dir-relative path from a replaced
// manifest is one this writer may unlink: a flat file directly in the
// index directory, or a file in a "gen-" staging subdirectory (the only
// subdirectories this package ever creates). Everything else —
// absolute or escaping paths, and unknown subdirectories such as the
// delta-NNNNNN/base-NNNNNN generations of an LSM chain sharing the
// root — is left alone, so replacing a plain index never reaches into
// structures owned by a different (possibly future) layout.
func staleRemovable(f string) bool {
	if f == "" || !filepath.IsLocal(f) {
		return false
	}
	d := filepath.Dir(f)
	if d == "." {
		return true
	}
	for {
		parent := filepath.Dir(d)
		if parent == "." {
			break
		}
		d = parent
	}
	return len(d) > 4 && d[:4] == "gen-"
}

// Abort removes every file the writer has produced so far. It is safe
// to call after a failed Commit; a committed index is not removed, and
// when the writer was replacing an existing index the old index is
// left exactly as it was.
func (w *Writer) Abort() {
	if w.committed {
		return
	}
	if w.cur != nil {
		w.cur.f.Close()
		os.Remove(w.cur.path)
		w.cur = nil
	}
	if w.top != nil {
		w.top.f.Close()
		os.Remove(w.top.path)
		w.top = nil
	}
	if w.sub != "" {
		// Everything staged lives in the generation subdirectory; the
		// old index's files were never touched.
		os.RemoveAll(filepath.Join(w.dir, w.sub))
		return
	}
	if _, err := os.Stat(filepath.Join(w.dir, ManifestFile)); err == nil {
		return // committed by an earlier writer; leave the index intact
	}
	for _, s := range w.man.Shards {
		os.Remove(filepath.Join(w.dir, s.File))
	}
	os.Remove(filepath.Join(w.dir, DictionaryFile))
	os.Remove(filepath.Join(w.dir, TopFile))
	os.Remove(filepath.Join(w.dir, ManifestFile+".tmp"))
	os.Remove(filepath.Join(w.dir, ManifestCRCFile))
	os.Remove(filepath.Join(w.dir, ManifestCRCFile+".tmp"))
}
