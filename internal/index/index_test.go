package index

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ngramstats/internal/extsort"
)

// testRecords returns n sorted (key, value) records.
func testRecords(n int) (keys, vals [][]byte) {
	for i := 0; i < n; i++ {
		keys = append(keys, []byte(fmt.Sprintf("key-%06d", i)))
		vals = append(vals, []byte(fmt.Sprintf("val-%d", i*3)))
	}
	return keys, vals
}

// buildIndex writes a committed index with n records over the given
// shard count, including a tiny dictionary and ceil(n/10) top records.
func buildIndex(t *testing.T, dir string, n, shards int) (keys, vals [][]byte) {
	t.Helper()
	keys, vals = testRecords(n)
	w, err := NewWriter(dir, WriterOptions{
		Corpus:    "test-corpus",
		Kind:      0,
		Records:   int64(n),
		Shards:    shards,
		Jobs:      2,
		Wallclock: 5 * time.Second,
		Counters:  map[string]int64{"MAP_OUTPUT_RECORDS": int64(n) * 7},
	})
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	if err := w.SetDictionary(func(out io.Writer) error {
		_, err := io.WriteString(out, "the\t100\nquick\t50\nfox\t25\n")
		return err
	}); err != nil {
		t.Fatalf("SetDictionary: %v", err)
	}
	for i := range keys {
		if err := w.Append(keys[i], vals[i]); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
	for i := 0; i < (n+9)/10; i++ {
		if err := w.AppendTop(keys[i], vals[i]); err != nil {
			t.Fatalf("AppendTop(%d): %v", i, err)
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	return keys, vals
}

func TestIndexRoundTrip(t *testing.T) {
	dir := t.TempDir()
	const n, shards = 5000, 4
	keys, vals := buildIndex(t, dir, n, shards)

	ix, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer ix.Close()

	if ix.Records() != n || ix.Shards() != shards || ix.Corpus() != "test-corpus" {
		t.Fatalf("Records=%d Shards=%d Corpus=%q", ix.Records(), ix.Shards(), ix.Corpus())
	}
	if ix.Jobs() != 2 || ix.Wallclock() != 5*time.Second {
		t.Fatalf("Jobs=%d Wallclock=%v", ix.Jobs(), ix.Wallclock())
	}
	if c := ix.Counters(); c["MAP_OUTPUT_RECORDS"] != n*7 {
		t.Fatalf("Counters = %v", c)
	}
	if ix.Dictionary().Len() != 3 {
		t.Fatalf("dictionary has %d terms, want 3", ix.Dictionary().Len())
	}

	// Every key is found with its value; absent keys are not.
	for i := range keys {
		v, ok, err := ix.Get(keys[i])
		if err != nil || !ok || !bytes.Equal(v, vals[i]) {
			t.Fatalf("Get(%s) = %q,%v,%v; want %q", keys[i], v, ok, err, vals[i])
		}
	}
	for _, absent := range []string{"", "a", "key-", "key-0000000", "key-999999x", "zzz"} {
		if _, ok, err := ix.Get([]byte(absent)); ok || err != nil {
			t.Fatalf("Get(%q) = %v,%v; want not found", absent, ok, err)
		}
	}

	// Full scan reproduces every record in order.
	i := 0
	err = ix.Scan(nil, nil, func(k, v []byte) error {
		if !bytes.Equal(k, keys[i]) || !bytes.Equal(v, vals[i]) {
			return fmt.Errorf("record %d: got (%s,%s) want (%s,%s)", i, k, v, keys[i], vals[i])
		}
		i++
		return nil
	})
	if err != nil || i != n {
		t.Fatalf("full scan: %v after %d records", err, i)
	}

	// Range scan across a shard boundary.
	lo, hi := []byte("key-001200"), []byte("key-003700")
	i = 1200
	err = ix.Scan(lo, hi, func(k, v []byte) error {
		if !bytes.Equal(k, keys[i]) {
			return fmt.Errorf("range record: got %s want %s", k, keys[i])
		}
		i++
		return nil
	})
	if err != nil || i != 3700 {
		t.Fatalf("range scan: %v, stopped at %d", err, i)
	}

	// Early stop.
	count := 0
	err = ix.Scan(nil, nil, func(k, v []byte) error {
		count++
		if count == 10 {
			return StopScan()
		}
		return nil
	})
	if err != nil || count != 10 {
		t.Fatalf("early stop: err=%v count=%d", err, count)
	}

	// Prefix scan.
	var got []string
	err = ix.ScanPrefix([]byte("key-00012"), func(k, v []byte) error {
		got = append(got, string(k))
		return nil
	})
	if err != nil || len(got) != 10 || got[0] != "key-000120" || got[9] != "key-000129" {
		t.Fatalf("prefix scan: err=%v got=%v", err, got)
	}

	// Precomputed top records.
	tk, tv, ok := ix.TopRecords(5)
	if !ok || len(tk) != 5 {
		t.Fatalf("TopRecords(5): ok=%v len=%d", ok, len(tk))
	}
	for j := range tk {
		if !bytes.Equal(tk[j], keys[j]) || !bytes.Equal(tv[j], vals[j]) {
			t.Fatalf("top record %d mismatch", j)
		}
	}
	if _, _, ok := ix.TopRecords(int(ix.TopStored()) + 1); ok {
		t.Fatal("TopRecords beyond stored depth must report false")
	}

	// Repeated Gets hit the block cache.
	h0, m0 := ix.CacheStats()
	for j := 0; j < 50; j++ {
		if _, ok, _ := ix.Get(keys[42]); !ok {
			t.Fatal("cached Get lost the key")
		}
	}
	h1, m1 := ix.CacheStats()
	if h1-h0 < 49 {
		t.Fatalf("cache hits %d -> %d; expected ~49 new hits (misses %d -> %d)", h0, h1, m0, m1)
	}
}

func TestIndexEmpty(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, WriterOptions{Corpus: "empty", Records: 0, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetDictionary(func(out io.Writer) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	ix, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer ix.Close()
	if ix.Records() != 0 || ix.Shards() != 0 {
		t.Fatalf("Records=%d Shards=%d", ix.Records(), ix.Shards())
	}
	if _, ok, err := ix.Get([]byte("anything")); ok || err != nil {
		t.Fatalf("Get on empty index: %v %v", ok, err)
	}
	if err := ix.Scan(nil, nil, func(k, v []byte) error { return fmt.Errorf("unexpected record") }); err != nil {
		t.Fatal(err)
	}
}

func TestWriterEnforcesOrderAndCount(t *testing.T) {
	w, err := NewWriter(t.TempDir(), WriterOptions{Records: 10, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	if err := w.Append([]byte("b"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("a"), []byte("2")); err == nil {
		t.Fatal("out-of-order Append accepted")
	}
	if err := w.Append([]byte("b"), []byte("2")); err == nil {
		t.Fatal("duplicate-key Append accepted")
	}

	w2, err := NewWriter(t.TempDir(), WriterOptions{Records: 10, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.SetDictionary(func(out io.Writer) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := w2.Append([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Commit(); err == nil {
		t.Fatal("Commit accepted 1 of 10 declared records")
	}
}

func TestWriterRefusesExistingIndex(t *testing.T) {
	dir := t.TempDir()
	buildIndex(t, dir, 10, 1)
	if _, err := NewWriter(dir, WriterOptions{Records: 1}); err == nil {
		t.Fatal("NewWriter over a committed index must fail")
	}
}

func TestOpenMissingDir(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope"), Options{}); err == nil {
		t.Fatal("Open on a missing directory must fail")
	}
}

func TestPrefixSuccessor(t *testing.T) {
	cases := []struct {
		in, want []byte
	}{
		{[]byte{0x01}, []byte{0x02}},
		{[]byte{0x01, 0xFF}, []byte{0x02}},
		{[]byte{0xFF, 0xFF}, nil},
		{[]byte{0x00}, []byte{0x01}},
		{[]byte("abc"), []byte("abd")},
	}
	for _, c := range cases {
		if got := PrefixSuccessor(c.in); !bytes.Equal(got, c.want) {
			t.Fatalf("PrefixSuccessor(%x) = %x, want %x", c.in, got, c.want)
		}
	}
}

func TestScanPrefixAllFF(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, WriterOptions{Records: 2, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetDictionary(func(out io.Writer) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte{0xFE}, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte{0xFF, 0x01}, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	ix, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	var got int
	if err := ix.ScanPrefix([]byte{0xFF}, func(k, v []byte) error {
		got++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("ScanPrefix(0xFF) saw %d records, want 1", got)
	}
}

// TestCodecFlateShards exercises the compressed-shard path end to end.
func TestCodecFlateShards(t *testing.T) {
	dir := t.TempDir()
	keys, vals := testRecords(3000)
	w, err := NewWriter(dir, WriterOptions{Records: 3000, Shards: 2, Codec: extsort.CodecFlate})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetDictionary(func(out io.Writer) error {
		_, err := io.WriteString(out, "a\t1\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if err := w.Append(keys[i], vals[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	ix, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	for _, i := range []int{0, 1499, 2999} {
		v, ok, err := ix.Get(keys[i])
		if err != nil || !ok || !bytes.Equal(v, vals[i]) {
			t.Fatalf("Get(%s) = %q,%v,%v", keys[i], v, ok, err)
		}
	}
}

// TestManifestHumanReadable pins the manifest being JSON a human can
// inspect, with the files it names actually present.
func TestManifestHumanReadable(t *testing.T) {
	dir := t.TempDir()
	buildIndex(t, dir, 100, 2)
	data, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"\"version\": 1", "test-corpus", "shard-00000.run", "shard-00001.run", DictionaryFile} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("manifest missing %q:\n%s", want, data)
		}
	}
	for _, f := range []string{"shard-00000.run", "shard-00001.run", DictionaryFile, TopFile, ManifestCRCFile} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("expected file %s: %v", f, err)
		}
	}
}
