package sequence

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func seq(terms ...Term) Seq { return Seq(terms) }

func TestEqual(t *testing.T) {
	cases := []struct {
		r, s Seq
		want bool
	}{
		{nil, nil, true},
		{seq(), nil, true},
		{seq(1), nil, false},
		{seq(1, 2), seq(1, 2), true},
		{seq(1, 2), seq(2, 1), false},
		{seq(1, 2), seq(1, 2, 3), false},
	}
	for _, c := range cases {
		if got := Equal(c.r, c.s); got != c.want {
			t.Errorf("Equal(%v, %v) = %v, want %v", c.r, c.s, got, c.want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	s := seq(1, 2, 3)
	c := Clone(s)
	c[0] = 99
	if s[0] != 1 {
		t.Fatalf("Clone shares storage with source")
	}
	if Clone(nil) != nil {
		t.Fatalf("Clone(nil) should be nil")
	}
}

func TestConcat(t *testing.T) {
	got := Concat(seq(1, 2), seq(3))
	if !Equal(got, seq(1, 2, 3)) {
		t.Fatalf("Concat = %v", got)
	}
	if got := Concat(nil, nil); len(got) != 0 {
		t.Fatalf("Concat(nil,nil) = %v", got)
	}
}

func TestIsPrefix(t *testing.T) {
	cases := []struct {
		r, s Seq
		want bool
	}{
		{nil, seq(1, 2), true},
		{seq(1), seq(1, 2), true},
		{seq(1, 2), seq(1, 2), true},
		{seq(2), seq(1, 2), false},
		{seq(1, 2, 3), seq(1, 2), false},
	}
	for _, c := range cases {
		if got := IsPrefix(c.r, c.s); got != c.want {
			t.Errorf("IsPrefix(%v, %v) = %v, want %v", c.r, c.s, got, c.want)
		}
	}
}

func TestIsSuffix(t *testing.T) {
	cases := []struct {
		r, s Seq
		want bool
	}{
		{nil, seq(1, 2), true},
		{seq(2), seq(1, 2), true},
		{seq(1, 2), seq(1, 2), true},
		{seq(1), seq(1, 2), false},
		{seq(0, 1, 2), seq(1, 2), false},
	}
	for _, c := range cases {
		if got := IsSuffix(c.r, c.s); got != c.want {
			t.Errorf("IsSuffix(%v, %v) = %v, want %v", c.r, c.s, got, c.want)
		}
	}
}

func TestIsSubsequence(t *testing.T) {
	s := seq(1, 2, 3, 2, 1)
	for _, c := range []struct {
		r    Seq
		want bool
	}{
		{nil, true},
		{seq(2, 3), true},
		{seq(3, 2, 1), true},
		{seq(1, 2, 3, 2, 1), true},
		{seq(1, 3), false},
		{seq(1, 2, 3, 2, 1, 0), false},
	} {
		if got := IsSubsequence(c.r, s); got != c.want {
			t.Errorf("IsSubsequence(%v, %v) = %v, want %v", c.r, s, got, c.want)
		}
	}
}

// TestOccurrencesRunningExample checks f(r, s) on the paper's running
// example: d1 = ⟨a x b x x⟩ with a=2, x=0, b=1 (ids by descending cf).
func TestOccurrencesRunningExample(t *testing.T) {
	const (
		x Term = 0
		b Term = 1
		a Term = 2
	)
	d1 := seq(a, x, b, x, x)
	d2 := seq(b, a, x, b, x)
	d3 := seq(x, b, a, x, b)
	docs := []Seq{d1, d2, d3}

	cf := func(r Seq) int64 {
		var n int64
		for _, d := range docs {
			n += Occurrences(r, d)
		}
		return n
	}

	for _, c := range []struct {
		r    Seq
		want int64
	}{
		{seq(a), 3},
		{seq(b), 5},
		{seq(x), 7},
		{seq(a, x), 3},
		{seq(x, b), 4},
		{seq(a, x, b), 3},
		{seq(x, x), 1},
		{seq(b, x, x), 1},
	} {
		if got := cf(c.r); got != c.want {
			t.Errorf("cf(%v) = %d, want %d", c.r, got, c.want)
		}
	}
}

func TestOccurrencesOverlapping(t *testing.T) {
	s := seq(1, 1, 1, 1)
	if got := Occurrences(seq(1, 1), s); got != 3 {
		t.Fatalf("overlapping occurrences = %d, want 3", got)
	}
	if got := Occurrences(nil, s); got != 0 {
		t.Fatalf("empty needle occurrences = %d, want 0", got)
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		r, s Seq
		want int
	}{
		{seq(1), seq(2), -1},
		{seq(2), seq(1), 1},
		{seq(1), seq(1), 0},
		{seq(1), seq(1, 2), -1},
		{seq(1, 2), seq(1), 1},
		{nil, nil, 0},
		{nil, seq(1), -1},
	}
	for _, c := range cases {
		got := Compare(c.r, c.s)
		if sign(got) != sign(c.want) {
			t.Errorf("Compare(%v, %v) = %d, want sign %d", c.r, c.s, got, c.want)
		}
	}
}

// TestCompareReverseLexPaperExample checks the order in which the
// reducer responsible for b-suffixes receives its input in Section IV:
// ⟨b x x⟩, ⟨b x⟩, ⟨b a x⟩, ⟨b⟩ with term ids x=0 < b=1 < a=2 and term
// order descending by *collection frequency*, i.e. the paper's
// alphabetical example maps to descending id comparison being reversed.
func TestCompareReverseLexPaperExample(t *testing.T) {
	// In the paper, terms sort descending: x > b > a alphabetically
	// reversed... the concrete term order is irrelevant as long as it is
	// fixed; here ids are x=0, b=1, a=2 and CompareReverseLex sorts by
	// descending id, so a > b > x. The expected stream for the reducer
	// of first term b is then ⟨b a x⟩, ⟨b x x⟩, ⟨b x⟩, ⟨b⟩.
	const (
		x Term = 0
		b Term = 1
		a Term = 2
	)
	in := []Seq{
		seq(b, x, x),
		seq(b, x),
		seq(b, a, x),
		seq(b),
	}
	sort.Slice(in, func(i, j int) bool {
		return CompareReverseLex(in[i], in[j]) < 0
	})
	want := []Seq{
		seq(b, a, x),
		seq(b, x, x),
		seq(b, x),
		seq(b),
	}
	for i := range want {
		if !Equal(in[i], want[i]) {
			t.Fatalf("position %d: got %v, want %v (full: %v)", i, in[i], want[i], in)
		}
	}
}

// TestCompareReverseLexPrefixExtensionFirst checks the defining property:
// if s is a proper prefix of r, then r sorts strictly before s.
func TestCompareReverseLexPrefixExtensionFirst(t *testing.T) {
	r := seq(5, 3, 1)
	s := seq(5, 3)
	if CompareReverseLex(r, s) >= 0 {
		t.Fatalf("extension %v should sort before prefix %v", r, s)
	}
	if CompareReverseLex(s, r) <= 0 {
		t.Fatalf("prefix %v should sort after extension %v", s, r)
	}
}

// TestCompareReverseLexTotalOrder uses testing/quick to verify
// antisymmetry and transitivity of the reverse lexicographic order on
// random small sequences.
func TestCompareReverseLexTotalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	gen := func() Seq {
		n := rng.Intn(5)
		s := make(Seq, n)
		for i := range s {
			s[i] = Term(rng.Intn(4))
		}
		return s
	}
	f := func() bool {
		a, b, c := gen(), gen(), gen()
		// Antisymmetry.
		if sign(CompareReverseLex(a, b)) != -sign(CompareReverseLex(b, a)) {
			return false
		}
		// Reflexivity via equality.
		if (CompareReverseLex(a, b) == 0) != Equal(a, b) {
			return false
		}
		// Transitivity.
		if CompareReverseLex(a, b) <= 0 && CompareReverseLex(b, c) <= 0 {
			return CompareReverseLex(a, c) <= 0
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 5000}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestReverseLexEmitSafety checks the property SUFFIX-σ relies on: once
// the current suffix s has been reached in reverse lexicographic order,
// any n-gram r with r < s cannot be a prefix of any later suffix u ≥ s.
func TestReverseLexEmitSafety(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	gen := func() Seq {
		n := 1 + rng.Intn(4)
		s := make(Seq, n)
		for i := range s {
			s[i] = Term(rng.Intn(3))
		}
		return s
	}
	for i := 0; i < 20000; i++ {
		r, s, u := gen(), gen(), gen()
		if CompareReverseLex(r, s) < 0 && CompareReverseLex(s, u) <= 0 {
			// u cannot have r as a proper prefix unless r == u.
			if IsPrefix(r, u) && !Equal(r, u) {
				t.Fatalf("violation: r=%v < s=%v <= u=%v but r is a prefix of u", r, s, u)
			}
		}
	}
}

func TestLCP(t *testing.T) {
	cases := []struct {
		r, s Seq
		want int
	}{
		{nil, nil, 0},
		{seq(1, 2, 3), seq(1, 2, 4), 2},
		{seq(1, 2), seq(1, 2, 3), 2},
		{seq(5), seq(6), 0},
	}
	for _, c := range cases {
		if got := LCP(c.r, c.s); got != c.want {
			t.Errorf("LCP(%v, %v) = %d, want %d", c.r, c.s, got, c.want)
		}
	}
}

func TestReverse(t *testing.T) {
	if got := Reverse(seq(1, 2, 3)); !Equal(got, seq(3, 2, 1)) {
		t.Fatalf("Reverse = %v", got)
	}
	s := seq(1, 2)
	_ = Reverse(s)
	if !Equal(s, seq(1, 2)) {
		t.Fatalf("Reverse mutated its argument")
	}
}

func TestSuffixTruncated(t *testing.T) {
	s := seq(10, 11, 12, 13, 14)
	if got := SuffixTruncated(s, 1, 2); !Equal(got, seq(11, 12)) {
		t.Fatalf("SuffixTruncated = %v", got)
	}
	if got := SuffixTruncated(s, 3, 10); !Equal(got, seq(13, 14)) {
		t.Fatalf("SuffixTruncated near end = %v", got)
	}
}

func TestNGramsEnumeration(t *testing.T) {
	s := seq(1, 2, 3)
	var got []Seq
	NGrams(s, 2, func(g Seq) { got = append(got, Clone(g)) })
	want := []Seq{seq(1), seq(1, 2), seq(2), seq(2, 3), seq(3)}
	if len(got) != len(want) {
		t.Fatalf("NGrams count = %d, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if !Equal(got[i], want[i]) {
			t.Fatalf("NGrams[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestNGramsCountFormula checks that the number of n-grams of a document
// of length L with maximum length σ matches the closed form
// Σ_{b} min(σ, L−b).
func TestNGramsCountFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		l := rng.Intn(12)
		sigma := 1 + rng.Intn(6)
		s := make(Seq, l)
		n := 0
		NGrams(s, sigma, func(Seq) { n++ })
		want := 0
		for b := 0; b < l; b++ {
			m := l - b
			if sigma < m {
				m = sigma
			}
			want += m
		}
		if n != want {
			t.Fatalf("L=%d σ=%d: NGrams emitted %d, want %d", l, sigma, n, want)
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}
