// Package sequence implements the data model of Berberich & Bedathur
// (EDBT 2013): sequences of terms drawn from a vocabulary, together with
// the order relations (prefix, suffix, subsequence), occurrence counting,
// and the reverse lexicographic order that SUFFIX-σ relies on.
//
// Terms are represented as uint32 identifiers. The dictionary package
// assigns identifiers in descending order of collection frequency, so
// frequent terms have small identifiers and varint-encode compactly.
package sequence

// Term is a term identifier. Identifiers are assigned by the dictionary
// in descending order of collection frequency.
type Term = uint32

// Seq is a sequence of terms, the s = ⟨s0, …, sn−1⟩ of the paper.
type Seq []Term

// Equal reports whether r and s contain the same terms in the same order.
func Equal(r, s Seq) bool {
	if len(r) != len(s) {
		return false
	}
	for i := range r {
		if r[i] != s[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of s that shares no storage with it.
func Clone(s Seq) Seq {
	if s == nil {
		return nil
	}
	c := make(Seq, len(s))
	copy(c, s)
	return c
}

// Concat returns the concatenation r‖s as a fresh sequence.
func Concat(r, s Seq) Seq {
	c := make(Seq, 0, len(r)+len(s))
	c = append(c, r...)
	c = append(c, s...)
	return c
}

// IsPrefix reports whether r is a prefix of s (r ⊴ s in the paper):
// ∀ 0 ≤ i < |r| : r[i] = s[i]. The empty sequence is a prefix of every
// sequence.
func IsPrefix(r, s Seq) bool {
	if len(r) > len(s) {
		return false
	}
	for i := range r {
		if r[i] != s[i] {
			return false
		}
	}
	return true
}

// IsSuffix reports whether r is a suffix of s (r ⊵ s in the paper):
// ∀ 0 ≤ i < |r| : r[i] = s[|s|−|r|+i].
func IsSuffix(r, s Seq) bool {
	if len(r) > len(s) {
		return false
	}
	off := len(s) - len(r)
	for i := range r {
		if r[i] != s[off+i] {
			return false
		}
	}
	return true
}

// IsSubsequence reports whether r occurs contiguously in s (r ⊑ s):
// ∃ 0 ≤ j : ∀ 0 ≤ i < |r| : r[i] = s[i+j]. Because the paper considers
// only contiguous sequences, this is substring containment.
func IsSubsequence(r, s Seq) bool {
	if len(r) == 0 {
		return true
	}
	if len(r) > len(s) {
		return false
	}
	for j := 0; j+len(r) <= len(s); j++ {
		match := true
		for i := range r {
			if r[i] != s[j+i] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// Occurrences counts how often r occurs in s, the f(r, s) of the paper:
// the number of offsets j such that r matches s at j. Overlapping
// occurrences all count. Occurrences of the empty sequence are defined
// as 0 to match f's index set {0 ≤ j < |s|} being empty-intersected.
func Occurrences(r, s Seq) int64 {
	if len(r) == 0 || len(r) > len(s) {
		return 0
	}
	var n int64
	for j := 0; j+len(r) <= len(s); j++ {
		match := true
		for i := range r {
			if r[i] != s[j+i] {
				match = false
				break
			}
		}
		if match {
			n++
		}
	}
	return n
}

// Compare orders sequences in standard lexicographic order: term by
// term by identifier, shorter prefixes first. It returns a negative
// number if r sorts before s, zero if they are equal, and a positive
// number otherwise.
func Compare(r, s Seq) int {
	n := len(r)
	if len(s) < n {
		n = len(s)
	}
	for i := 0; i < n; i++ {
		switch {
		case r[i] < s[i]:
			return -1
		case r[i] > s[i]:
			return 1
		}
	}
	return len(r) - len(s)
}

// CompareReverseLex orders sequences in the reverse lexicographic order
// of the paper (Section IV):
//
//	r < s ⇔ (|r| > |s| ∧ s ⊴ r) ∨
//	        ∃ 0 ≤ i < min(|r|,|s|) : r[i] > s[i] ∧ ∀ 0 ≤ j < i : r[j] = s[j]
//
// i.e. terms compare in descending identifier order and, among sequences
// where one is a prefix of the other, the longer sorts first. SUFFIX-σ
// sorts reducer input in this order so that an n-gram can be emitted as
// soon as no yet-unseen suffix can represent it.
//
// It returns a negative number if r sorts before s, zero if they are
// equal, and a positive number otherwise.
func CompareReverseLex(r, s Seq) int {
	n := len(r)
	if len(s) < n {
		n = len(s)
	}
	for i := 0; i < n; i++ {
		switch {
		case r[i] > s[i]:
			return -1
		case r[i] < s[i]:
			return 1
		}
	}
	// Equal on the common prefix: the longer sequence sorts first.
	return len(s) - len(r)
}

// LCP returns the length of the longest common prefix of r and s.
func LCP(r, s Seq) int {
	n := len(r)
	if len(s) < n {
		n = len(s)
	}
	i := 0
	for i < n && r[i] == s[i] {
		i++
	}
	return i
}

// Reverse returns a fresh sequence with the terms of s in reverse order.
// The maximality/closedness post-filtering job operates on reversed
// n-grams (Section VI-A).
func Reverse(s Seq) Seq {
	c := make(Seq, len(s))
	for i, t := range s {
		c[len(s)-1-i] = t
	}
	return c
}

// SuffixTruncated returns the suffix of s starting at b, truncated to at
// most sigma terms: s[b..min(b+σ−1, |s|−1)]. The result aliases s.
func SuffixTruncated(s Seq, b, sigma int) Seq {
	e := b + sigma
	if e > len(s) {
		e = len(s)
	}
	return s[b:e]
}

// NGrams calls fn for every n-gram of s with length at most sigma, in
// the enumeration order of the NAÏVE mapper (Algorithm 1): for every
// begin offset b, every end offset e up to b+σ−1. The slice passed to fn
// aliases s and must not be retained.
func NGrams(s Seq, sigma int, fn func(g Seq)) {
	for b := 0; b < len(s); b++ {
		max := b + sigma
		if max > len(s) {
			max = len(s)
		}
		for e := b + 1; e <= max; e++ {
			fn(s[b:e])
		}
	}
}
