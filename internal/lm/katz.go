package lm

import (
	"math"

	"ngramstats/internal/encoding"
	"ngramstats/internal/sequence"
)

// KatzModel is an n-gram language model with Katz back-off (Katz 1987,
// the paper's reference [24] for "back-off models to obtain more robust
// estimates"). Unlike stupid backoff it produces true probabilities:
// counts are discounted with Good-Turing estimates up to a cutoff, and
// the freed mass is redistributed to unseen continuations via a
// context-specific back-off weight α(ctx).
type KatzModel struct {
	base *Model
	// k is the discount cutoff: counts above it are trusted undiscounted.
	k int64
	// discount[n][r] is the Good-Turing discount ratio d_r for n-grams
	// of order n with count r (1 ≤ r ≤ k).
	discount map[int]map[int64]float64
	// alpha caches back-off state per encoded context.
	alpha map[string]alphaEntry
	// succTotal caches Σ_w c(ctx‖w) per encoded context; conditionals
	// are normalized by it rather than by c(ctx), which avoids the
	// sentence-final deficiency (a context occurring at a sentence end
	// has no successor there).
	succTotal map[string]int64
}

// DefaultKatzCutoff is the customary Good-Turing discount cutoff.
const DefaultKatzCutoff = 5

// NewKatz builds a Katz back-off model from an already-populated base
// model (the counts of AddCount/FromResult). The base model must be
// complete: for every counted n-gram, its prefix context must also be
// counted — which holds for statistics computed with τ = 1, and
// approximately for low τ (missing contexts fall back gracefully).
func NewKatz(base *Model, cutoff int64) *KatzModel {
	if cutoff < 1 {
		cutoff = DefaultKatzCutoff
	}
	m := &KatzModel{
		base:      base,
		k:         cutoff,
		discount:  make(map[int]map[int64]float64),
		alpha:     make(map[string]alphaEntry),
		succTotal: make(map[string]int64),
	}
	m.computeDiscounts()
	return m
}

// computeDiscounts derives Good-Turing discount ratios per order from
// the count-of-counts. Following Katz: with N_r the number of distinct
// n-grams of count r,
//
//	d_r = (r*/r − (k+1)N_{k+1}/N_1) / (1 − (k+1)N_{k+1}/N_1),
//	r*  = (r+1) N_{r+1}/N_r.
//
// Degenerate statistics (zero denominators, ratios outside (0, 1]) fall
// back to d_r = 1 — no discounting — the standard practical guard.
func (m *KatzModel) computeDiscounts() {
	countOfCounts := make(map[int]map[int64]int64)
	for key, c := range m.base.counts {
		order := encoding.SeqLen([]byte(key))
		if order < 1 {
			continue
		}
		if countOfCounts[order] == nil {
			countOfCounts[order] = make(map[int64]int64)
		}
		countOfCounts[order][c]++
	}
	for order, nr := range countOfCounts {
		d := make(map[int64]float64)
		n1 := float64(nr[1])
		nk1 := float64(nr[m.k+1])
		common := 0.0
		if n1 > 0 {
			common = float64(m.k+1) * nk1 / n1
		}
		for r := int64(1); r <= m.k; r++ {
			d[r] = 1.0
			if nr[r] == 0 || nr[r+1] == 0 || common >= 1 {
				continue
			}
			rStar := float64(r+1) * float64(nr[r+1]) / float64(nr[r])
			dr := (rStar/float64(r) - common) / (1 - common)
			if dr > 0 && dr <= 1 {
				d[r] = dr
			}
		}
		m.discount[order] = d
	}
}

// discounted returns the Good-Turing-discounted count of an n-gram.
func (m *KatzModel) discounted(s sequence.Seq, c int64) float64 {
	if c > m.k {
		return float64(c)
	}
	if d, ok := m.discount[len(s)][c]; ok {
		return d * float64(c)
	}
	return float64(c)
}

// Prob returns the Katz probability P(w | context). Contexts longer
// than the model order are truncated.
func (m *KatzModel) Prob(context sequence.Seq, w sequence.Term) float64 {
	if len(context) > m.base.order-1 {
		context = context[len(context)-(m.base.order-1):]
	}
	return m.prob(context, w)
}

func (m *KatzModel) prob(context sequence.Seq, w sequence.Term) float64 {
	if len(context) == 0 {
		// Unigram base case: plain relative frequency (undiscounted, so
		// the base distribution sums to one over the observed
		// vocabulary) with a small floor for unseen words.
		c := m.base.Count(sequence.Seq{w})
		if c > 0 {
			return float64(c) / float64(m.base.total)
		}
		return 0.5 / float64(m.base.total+1)
	}
	full := append(sequence.Clone(context), w)
	c := m.base.Count(full)
	total := m.successorTotal(context)
	if c > 0 && total > 0 {
		if m.backoffState(context).noDiscount {
			// Every continuation of this context is observed: there is
			// no unseen event to receive freed mass, so counts are used
			// undiscounted and the conditional sums to one directly.
			return float64(c) / float64(total)
		}
		return m.discounted(full, c) / float64(total)
	}
	return m.backoffState(context).alpha * m.prob(context[1:], w)
}

// alphaEntry is the cached back-off state of one context.
type alphaEntry struct {
	alpha      float64
	noDiscount bool
}

// successorTotal returns (and caches) Σ_w c(ctx‖w).
func (m *KatzModel) successorTotal(context sequence.Seq) int64 {
	key := string(encoding.EncodeSeq(context))
	if t, ok := m.succTotal[key]; ok {
		return t
	}
	var t int64
	for _, s := range m.base.successors[key] {
		t += s.count
	}
	m.succTotal[key] = t
	return t
}

// backoffState computes (and caches) the back-off state of a context:
// the weight α(ctx) — the probability mass freed by discounting the
// seen continuations, normalized by the lower-order mass of the unseen
// ones — and whether the context must skip discounting because no
// unseen continuation exists to absorb freed mass.
func (m *KatzModel) backoffState(context sequence.Seq) alphaEntry {
	key := string(encoding.EncodeSeq(context))
	if a, ok := m.alpha[key]; ok {
		return a
	}
	a := m.computeAlpha(context)
	m.alpha[key] = a
	return a
}

func (m *KatzModel) computeAlpha(context sequence.Seq) alphaEntry {
	total := m.successorTotal(context)
	succ := m.base.successors[string(encoding.EncodeSeq(context))]
	if total == 0 || len(succ) == 0 {
		// Nothing observed: defer entirely to the lower order.
		return alphaEntry{alpha: 1.0}
	}
	var seenMass, lowerSeenMass float64
	for _, s := range succ {
		full := append(sequence.Clone(context), s.term)
		seenMass += m.discounted(full, s.count) / float64(total)
		lowerSeenMass += m.prob(context[1:], s.term)
	}
	num := 1 - seenMass
	den := 1 - lowerSeenMass
	if den <= 1e-12 {
		// The lower-order model assigns (almost) all its mass to the
		// continuations already seen here: no unseen event can absorb
		// discounted mass, so this context uses raw counts.
		return alphaEntry{alpha: math.SmallestNonzeroFloat64, noDiscount: true}
	}
	if num <= 0 {
		return alphaEntry{alpha: math.SmallestNonzeroFloat64}
	}
	return alphaEntry{alpha: num / den}
}

// LogProb returns the natural log-probability of a sequence.
func (m *KatzModel) LogProb(s sequence.Seq) float64 {
	var total float64
	for i := range s {
		lo := i - (m.base.order - 1)
		if lo < 0 {
			lo = 0
		}
		total += math.Log(m.Prob(s[lo:i], s[i]))
	}
	return total
}

// Perplexity returns exp(−(1/N) Σ log P) over the test sentences.
func (m *KatzModel) Perplexity(test []sequence.Seq) float64 {
	var logSum float64
	var n int
	for _, s := range test {
		logSum += m.LogProb(s)
		n += len(s)
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(-logSum / float64(n))
}
