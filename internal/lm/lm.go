// Package lm implements an n-gram language model with stupid backoff
// (Brants et al., EMNLP 2007) on top of computed n-gram statistics —
// the paper's first use case (Section VII-D: "training a language
// model", with parameters chosen like Google's n-gram corpus, σ=5 and a
// low minimum collection frequency). Stupid backoff is the scheme
// Brants et al. pair with exactly the kind of MapReduce-counted
// n-grams this library produces: a relative-frequency score that backs
// off to shorter contexts with a constant penalty α instead of
// normalized discounting.
package lm

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ngramstats/internal/core"
	"ngramstats/internal/encoding"
	"ngramstats/internal/sequence"
)

// DefaultAlpha is the backoff penalty recommended by Brants et al.
const DefaultAlpha = 0.4

// Model is a stupid-backoff n-gram language model.
type Model struct {
	order  int
	alpha  float64
	counts map[string]int64
	// successors indexes, per context, the observed next terms with
	// their counts (for sampling).
	successors map[string][]successor
	total      int64
}

type successor struct {
	term  sequence.Term
	count int64
}

// New builds an empty model of the given maximum order (n-gram length)
// and backoff penalty. Counts are added with AddCount or imported with
// FromResult.
func New(order int, alpha float64) *Model {
	if order < 1 {
		order = 1
	}
	if alpha <= 0 || alpha >= 1 {
		alpha = DefaultAlpha
	}
	return &Model{
		order:      order,
		alpha:      alpha,
		counts:     make(map[string]int64),
		successors: make(map[string][]successor),
	}
}

// Order returns the model's maximum n-gram length.
func (m *Model) Order() int { return m.order }

// AddCount records the collection frequency of an n-gram. N-grams
// longer than the model order are ignored.
func (m *Model) AddCount(s sequence.Seq, cf int64) {
	if len(s) == 0 || len(s) > m.order || cf <= 0 {
		return
	}
	key := string(encoding.EncodeSeq(s))
	m.counts[key] += cf
	if len(s) == 1 {
		m.total += cf
	}
	ctx := string(encoding.EncodeSeq(s[:len(s)-1]))
	m.successors[ctx] = append(m.successors[ctx], successor{term: s[len(s)-1], count: cf})
}

// FromResult imports every n-gram of a computed result set into a new
// model.
func FromResult(rs *core.ResultSet, order int, alpha float64) (*Model, error) {
	m := New(order, alpha)
	err := rs.Each(func(s sequence.Seq, cf int64) error {
		m.AddCount(s, cf)
		return nil
	})
	if err != nil {
		return nil, err
	}
	m.Finish()
	return m, nil
}

// Finish sorts successor lists; call it once after all counts are
// added (FromResult does so automatically).
func (m *Model) Finish() {
	for ctx := range m.successors {
		s := m.successors[ctx]
		sort.Slice(s, func(i, j int) bool {
			if s[i].count != s[j].count {
				return s[i].count > s[j].count
			}
			return s[i].term < s[j].term
		})
	}
}

// Count returns the recorded collection frequency of an n-gram.
func (m *Model) Count(s sequence.Seq) int64 {
	return m.counts[string(encoding.EncodeSeq(s))]
}

// Total returns the summed collection frequency of all unigrams — the
// denominator of the model's base distribution, and the anchor of the
// unseen-word floor score 0.5/(Total+1).
func (m *Model) Total() int64 { return m.total }

// Prediction is one candidate next term with its stupid-backoff score.
type Prediction struct {
	Term  sequence.Term
	Count int64
	Score float64
}

// Predict returns the k most likely next terms after context: the
// observed continuations of the longest context suffix that has any,
// best first. Every candidate's score backs off to exactly that suffix
// (longer suffixes have no continuations at all), so the count order of
// the successor list is the score order and selection is O(k) after
// the suffix walk. Ties break toward the smaller (more frequent) term
// identifier. Requires Finish.
func (m *Model) Predict(context sequence.Seq, k int) []Prediction {
	if k <= 0 {
		return nil
	}
	if len(context) > m.order-1 {
		context = context[len(context)-(m.order-1):]
	}
	var succ []successor
	for {
		succ = m.successors[string(encoding.EncodeSeq(context))]
		if len(succ) > 0 || len(context) == 0 {
			break
		}
		context = context[1:]
	}
	if len(succ) == 0 {
		return nil
	}
	if k > len(succ) {
		k = len(succ)
	}
	out := make([]Prediction, k)
	for i := 0; i < k; i++ {
		out[i] = Prediction{
			Term:  succ[i].term,
			Count: succ[i].count,
			Score: m.Score(context, succ[i].term),
		}
	}
	return out
}

// Score returns the stupid-backoff score S(w | context): the relative
// frequency of the longest matching n-gram ending in w, scaled by α per
// backoff step. Scores are not normalized probabilities but behave like
// them in ranking and perplexity-style comparisons.
func (m *Model) Score(context sequence.Seq, w sequence.Term) float64 {
	if len(context) > m.order-1 {
		context = context[len(context)-(m.order-1):]
	}
	penalty := 1.0
	for {
		full := append(sequence.Clone(context), w)
		num := m.Count(full)
		if num > 0 {
			var den int64
			if len(context) == 0 {
				den = m.total
			} else {
				den = m.Count(context)
			}
			if den > 0 {
				return penalty * float64(num) / float64(den)
			}
		}
		if len(context) == 0 {
			// Unseen unigram: a small floor keeps scores finite.
			return penalty * 0.5 / float64(m.total+1)
		}
		context = context[1:]
		penalty *= m.alpha
	}
}

// LogScore returns the natural log of the sequence's total score under
// the model, scoring each term given its preceding context.
func (m *Model) LogScore(s sequence.Seq) float64 {
	var total float64
	for i := range s {
		lo := i - (m.order - 1)
		if lo < 0 {
			lo = 0
		}
		total += math.Log(m.Score(s[lo:i], s[i]))
	}
	return total
}

// Perplexity returns exp(−(1/N) Σ log S) over all terms of the test
// sentences — lower is better.
func (m *Model) Perplexity(test []sequence.Seq) float64 {
	var logSum float64
	var n int
	for _, s := range test {
		logSum += m.LogScore(s)
		n += len(s)
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(-logSum / float64(n))
}

// Generate samples a continuation of the prefix, drawing each next term
// proportionally to its count in the longest matching context. It
// returns the prefix extended by up to n terms, stopping early if no
// context has successors.
func (m *Model) Generate(rng *rand.Rand, prefix sequence.Seq, n int) sequence.Seq {
	out := sequence.Clone(prefix)
	for i := 0; i < n; i++ {
		ctx := out
		if len(ctx) > m.order-1 {
			ctx = ctx[len(ctx)-(m.order-1):]
		}
		var succ []successor
		for {
			succ = m.successors[string(encoding.EncodeSeq(ctx))]
			if len(succ) > 0 || len(ctx) == 0 {
				break
			}
			ctx = ctx[1:]
		}
		if len(succ) == 0 {
			break
		}
		var total int64
		for _, s := range succ {
			total += s.count
		}
		pick := rng.Int63n(total)
		var next sequence.Term
		for _, s := range succ {
			pick -= s.count
			if pick < 0 {
				next = s.term
				break
			}
		}
		out = append(out, next)
	}
	return out
}

// Stats summarizes the model contents.
func (m *Model) Stats() string {
	perOrder := make([]int, m.order+1)
	for k := range m.counts {
		if l := encoding.SeqLen([]byte(k)); l >= 1 && l <= m.order {
			perOrder[l]++
		}
	}
	out := ""
	for l := 1; l <= m.order; l++ {
		out += fmt.Sprintf("%d-grams: %d\n", l, perOrder[l])
	}
	return out
}
