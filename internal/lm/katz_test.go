package lm

import (
	"math"
	"math/rand"
	"testing"

	"ngramstats/internal/sequence"
)

// katzTrainingModel builds a base model with full (τ=1) counts over a
// synthetic Markov-ish corpus so that count-of-count statistics are
// non-degenerate.
func katzTrainingModel(t *testing.T, order int) (*Model, []sequence.Seq) {
	t.Helper()
	rng := rand.New(rand.NewSource(8))
	m := New(order, DefaultAlpha)
	var corpus []sequence.Seq
	const vocab = 12
	for d := 0; d < 200; d++ {
		l := 5 + rng.Intn(10)
		s := make(sequence.Seq, l)
		prev := sequence.Term(rng.Intn(vocab))
		for i := range s {
			// Biased transitions: term t prefers t and (t+1) mod vocab.
			switch rng.Intn(4) {
			case 0, 1:
				s[i] = (prev + 1) % vocab
			case 2:
				s[i] = prev
			default:
				s[i] = sequence.Term(rng.Intn(vocab))
			}
			prev = s[i]
		}
		corpus = append(corpus, s)
		for b := 0; b < len(s); b++ {
			for e := b + 1; e <= len(s) && e-b <= order; e++ {
				m.AddCount(s[b:e], 1)
			}
		}
	}
	m.Finish()
	return m, corpus
}

// TestKatzProbabilitiesSumToOne is the defining property Katz has and
// stupid backoff lacks: Σ_w P(w | ctx) ≈ 1 for observed contexts.
func TestKatzProbabilitiesSumToOne(t *testing.T) {
	base, corpus := katzTrainingModel(t, 3)
	katz := NewKatz(base, DefaultKatzCutoff)
	const vocab = 12
	contexts := []sequence.Seq{
		{},
		{corpus[0][0]},
		{corpus[0][0], corpus[0][1]},
		{corpus[1][0]},
	}
	for _, ctx := range contexts {
		var sum float64
		for w := sequence.Term(0); w < vocab; w++ {
			p := katz.Prob(ctx, w)
			if p < 0 || p > 1 {
				t.Fatalf("P(%d | %v) = %f out of range", w, ctx, p)
			}
			sum += p
		}
		// The small unseen-unigram floor plus discount guards allow a
		// little slack.
		if math.Abs(sum-1) > 0.05 {
			t.Fatalf("Σ P(w | %v) = %f, want ≈ 1", ctx, sum)
		}
	}
}

// TestKatzSeenBeatsUnseen: observed continuations outscore unobserved
// ones in the same context.
func TestKatzSeenBeatsUnseen(t *testing.T) {
	base, corpus := katzTrainingModel(t, 3)
	katz := NewKatz(base, DefaultKatzCutoff)
	// Find a context with both kinds of continuation.
	s := corpus[0]
	ctx := s[0:1]
	seen := s[1]
	var unseen sequence.Term
	found := false
	for w := sequence.Term(0); w < 12; w++ {
		if base.Count(append(sequence.Clone(ctx), w)) == 0 {
			unseen = w
			found = true
			break
		}
	}
	if !found {
		t.Skip("no unseen continuation in this corpus")
	}
	if katz.Prob(ctx, seen) <= katz.Prob(ctx, unseen) {
		t.Fatalf("P(seen)=%f ≤ P(unseen)=%f", katz.Prob(ctx, seen), katz.Prob(ctx, unseen))
	}
}

// TestKatzPerplexityOrdering: the trigram Katz model must beat the
// unigram Katz model on in-domain text (true probabilities make
// cross-order perplexities comparable).
func TestKatzPerplexityOrdering(t *testing.T) {
	base3, corpus := katzTrainingModel(t, 3)
	base1, _ := katzTrainingModel(t, 1)
	katz3 := NewKatz(base3, DefaultKatzCutoff)
	katz1 := NewKatz(base1, DefaultKatzCutoff)
	test := corpus[:40]
	p3 := katz3.Perplexity(test)
	p1 := katz1.Perplexity(test)
	if math.IsNaN(p3) || math.IsNaN(p1) {
		t.Fatal("NaN perplexity")
	}
	if p3 >= p1 {
		t.Fatalf("trigram Katz perplexity %f should beat unigram %f", p3, p1)
	}
}

// TestKatzDiscountsWithinRange: derived discount ratios are in (0, 1].
func TestKatzDiscountsWithinRange(t *testing.T) {
	base, _ := katzTrainingModel(t, 3)
	katz := NewKatz(base, DefaultKatzCutoff)
	for order, d := range katz.discount {
		for r, dr := range d {
			if dr <= 0 || dr > 1 {
				t.Fatalf("d[order=%d][r=%d] = %f", order, r, dr)
			}
		}
	}
}

// TestKatzDegenerateInputs: tiny models fall back gracefully.
func TestKatzDegenerateInputs(t *testing.T) {
	m := New(2, DefaultAlpha)
	m.AddCount(sequence.Seq{1}, 3)
	m.AddCount(sequence.Seq{2}, 1)
	m.AddCount(sequence.Seq{1, 2}, 1)
	m.Finish()
	katz := NewKatz(m, 0) // cutoff < 1 selects the default
	p := katz.Prob(sequence.Seq{1}, 2)
	if p <= 0 || p > 1 {
		t.Fatalf("P = %f", p)
	}
	// Unknown context backs off to unigram.
	p2 := katz.Prob(sequence.Seq{9}, 1)
	if p2 <= 0 || p2 > 1 {
		t.Fatalf("backoff P = %f", p2)
	}
	// Empty test set.
	if !math.IsNaN(katz.Perplexity(nil)) {
		t.Fatal("empty perplexity should be NaN")
	}
	// LogProb finite on short input.
	if lp := katz.LogProb(sequence.Seq{1, 2}); math.IsInf(lp, 0) || math.IsNaN(lp) {
		t.Fatalf("LogProb = %f", lp)
	}
}
