package lm

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"ngramstats/internal/core"
	"ngramstats/internal/corpus"
	"ngramstats/internal/sequence"
)

func trainingCollection() *corpus.Collection {
	// "the cat sat", "the cat ran", "the dog sat" with ids:
	// the=0, cat=1, sat=2, dog=3, ran=4.
	return &corpus.Collection{Docs: []corpus.Document{
		{ID: 0, Sentences: []sequence.Seq{{0, 1, 2}}},
		{ID: 1, Sentences: []sequence.Seq{{0, 1, 4}}},
		{ID: 2, Sentences: []sequence.Seq{{0, 3, 2}}},
	}}
}

func trainedModel(t *testing.T) *Model {
	t.Helper()
	run, err := core.Compute(context.Background(), trainingCollection(), core.SuffixSigma, core.Params{
		Tau: 1, Sigma: 3, NumReducers: 2, InputSplits: 1, TempDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromResult(run.Result, 3, DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCounts(t *testing.T) {
	m := trainedModel(t)
	if got := m.Count(sequence.Seq{0}); got != 3 {
		t.Fatalf("count(the) = %d, want 3", got)
	}
	if got := m.Count(sequence.Seq{0, 1}); got != 2 {
		t.Fatalf("count(the cat) = %d, want 2", got)
	}
	if got := m.Count(sequence.Seq{0, 1, 2}); got != 1 {
		t.Fatalf("count(the cat sat) = %d, want 1", got)
	}
}

func TestScoreRelativeFrequency(t *testing.T) {
	m := trainedModel(t)
	// P(cat | the) = count(the cat)/count(the) = 2/3.
	if got := m.Score(sequence.Seq{0}, 1); math.Abs(got-2.0/3.0) > 1e-9 {
		t.Fatalf("S(cat|the) = %f, want 2/3", got)
	}
	// P(sat | the cat) = 1/2.
	if got := m.Score(sequence.Seq{0, 1}, 2); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("S(sat|the cat) = %f, want 1/2", got)
	}
}

func TestScoreBacksOff(t *testing.T) {
	m := trainedModel(t)
	// "dog ran" never occurs: back off to unigram ran with penalty α
	// (context ⟨dog⟩ exists but has no successor ran; ⟨ran⟩ unigram
	// cf=1, total=9) → α · 1/9.
	got := m.Score(sequence.Seq{3}, 4)
	want := DefaultAlpha * 1.0 / 9.0
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("backoff score = %f, want %f", got, want)
	}
}

func TestScoreUnseenUnigram(t *testing.T) {
	m := trainedModel(t)
	got := m.Score(nil, 99)
	if got <= 0 || math.IsInf(got, 0) {
		t.Fatalf("unseen unigram score = %f", got)
	}
}

func TestSeenSequencesScoreHigher(t *testing.T) {
	m := trainedModel(t)
	seen := m.LogScore(sequence.Seq{0, 1, 2})   // the cat sat
	unseen := m.LogScore(sequence.Seq{2, 4, 3}) // sat ran dog
	if seen <= unseen {
		t.Fatalf("seen %f should beat unseen %f", seen, unseen)
	}
}

func TestPerplexity(t *testing.T) {
	m := trainedModel(t)
	inDomain := m.Perplexity([]sequence.Seq{{0, 1, 2}, {0, 3, 2}})
	outDomain := m.Perplexity([]sequence.Seq{{4, 4, 4}, {3, 3, 3}})
	if math.IsNaN(inDomain) || math.IsNaN(outDomain) {
		t.Fatal("perplexity is NaN")
	}
	if inDomain >= outDomain {
		t.Fatalf("in-domain perplexity %f should be lower than out-of-domain %f", inDomain, outDomain)
	}
	if !math.IsNaN(m.Perplexity(nil)) {
		t.Fatal("empty test set should yield NaN")
	}
}

func TestGenerate(t *testing.T) {
	m := trainedModel(t)
	rng := rand.New(rand.NewSource(5))
	out := m.Generate(rng, sequence.Seq{0}, 2) // start from "the"
	if len(out) < 2 {
		t.Fatalf("generated only %v", out)
	}
	// Second term must be an observed successor of "the": cat or dog.
	if out[1] != 1 && out[1] != 3 {
		t.Fatalf("impossible continuation %v", out)
	}
	// Generation is deterministic under a fixed seed.
	rng2 := rand.New(rand.NewSource(5))
	out2 := m.Generate(rng2, sequence.Seq{0}, 2)
	if !sequence.Equal(out, out2) {
		t.Fatal("generation not deterministic under fixed seed")
	}
}

func TestGenerateDeadEnd(t *testing.T) {
	m := New(2, DefaultAlpha)
	m.AddCount(sequence.Seq{1}, 1)
	m.Finish()
	rng := rand.New(rand.NewSource(1))
	out := m.Generate(rng, sequence.Seq{7}, 5)
	// Only successor context is empty → generates term 1 repeatedly.
	if len(out) != 6 {
		t.Fatalf("generated %v", out)
	}
}

func TestAddCountIgnoresInvalid(t *testing.T) {
	m := New(2, DefaultAlpha)
	m.AddCount(nil, 5)
	m.AddCount(sequence.Seq{1, 2, 3}, 5) // longer than order
	m.AddCount(sequence.Seq{1}, 0)       // non-positive count
	if len(m.counts) != 0 {
		t.Fatalf("invalid counts accepted: %v", m.counts)
	}
}

func TestStats(t *testing.T) {
	m := trainedModel(t)
	s := m.Stats()
	if s == "" {
		t.Fatal("empty stats")
	}
}
