package extsort

// Durability and correctness tests for the block-framed run format:
// round-trips with and without the block codec across block
// boundaries, exact IOStats accounting, block skipping via
// MergeRunsRange, and — the part that matters when a disk misbehaves —
// the guarantee that truncated or corrupted runs surface
// ErrCorruptRun instead of silently dropping records.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// encodeRun writes the given records through a runWriter and returns
// the encoded bytes.
func encodeRun(t *testing.T, codec Codec, blockSize int, recs []kv) []byte {
	t.Helper()
	var buf bytes.Buffer
	rw := newRunWriter(&buf, codec, blockSize)
	for _, r := range recs {
		if err := rw.append([]byte(r.k), []byte(r.v)); err != nil {
			t.Fatal(err)
		}
	}
	written, err := rw.finish()
	if err != nil {
		t.Fatal(err)
	}
	if written != int64(buf.Len()) {
		t.Fatalf("finish reported %d bytes, wrote %d", written, buf.Len())
	}
	return buf.Bytes()
}

// decodeRun reads an encoded run back into records via a bounded or
// unbounded block source.
func decodeRun(data []byte, stats *IOStats, lo, hi []byte) ([]kv, error) {
	src, err := openMemRunSource(data, stats, nil, lo, hi)
	if err != nil {
		return nil, err
	}
	defer src.close()
	var out []kv
	for {
		ok, err := src.next()
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, kv{string(src.key()), string(src.value())})
	}
}

// sortedRecords builds n sorted records with prefix-sharing keys and
// mostly repeating values — the shuffle's shape.
func sortedRecords(n int) []kv {
	recs := make([]kv, n)
	for i := range recs {
		recs[i] = kv{
			k: fmt.Sprintf("prefix-%03d-%05d", i/50, i),
			v: fmt.Sprintf("v%d", i%3),
		}
	}
	return recs
}

func TestRunFormatRoundTrip(t *testing.T) {
	for _, codec := range []Codec{CodecRaw, CodecFlate} {
		for _, blockSize := range []int{0, 128, 1 << 20} { // default, many blocks, single block
			t.Run(fmt.Sprintf("codec=%s/block=%d", codec, blockSize), func(t *testing.T) {
				recs := sortedRecords(500)
				data := encodeRun(t, codec, blockSize, recs)
				got, err := decodeRun(data, nil, nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				if fmt.Sprint(got) != fmt.Sprint(recs) {
					t.Fatalf("round trip mismatch: got %d records, want %d", len(got), len(recs))
				}
			})
		}
	}
}

func TestRunFormatEmptyRun(t *testing.T) {
	data := encodeRun(t, CodecRaw, 0, nil)
	got, err := decodeRun(data, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty run decoded %d records", len(got))
	}
}

func TestRunFormatZeroLengthKeysAndValues(t *testing.T) {
	recs := []kv{{"", ""}, {"", "x"}, {"a", ""}, {"a", ""}, {"ab", "y"}}
	data := encodeRun(t, CodecRaw, 0, recs)
	got, err := decodeRun(data, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(recs) {
		t.Fatalf("got %v, want %v", got, recs)
	}
}

// TestRunFormatFrontCodingShrinks: sorted keys with heavy shared
// prefixes must encode well below their flat size.
func TestRunFormatFrontCodingShrinks(t *testing.T) {
	recs := sortedRecords(2000)
	flat := 0
	for _, r := range recs {
		flat += 2 + len(r.k) + len(r.v) // uvarint(klen) klen uvarint(vlen) vlen
	}
	data := encodeRun(t, CodecRaw, 0, recs)
	if len(data) > flat*3/4 {
		t.Fatalf("front-coded run is %d bytes, flat framing %d: expected ≥25%% reduction", len(data), flat)
	}
}

// TestRunFormatTruncation: every strict prefix of an encoded run must
// fail to open or fail during iteration — never decode cleanly with
// fewer records.
func TestRunFormatTruncation(t *testing.T) {
	recs := sortedRecords(300)
	data := encodeRun(t, CodecRaw, 512, recs)
	for cut := 0; cut < len(data); cut++ {
		got, err := decodeRun(data[:cut], nil, nil, nil)
		if err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded silently (%d records)", cut, len(data), len(got))
		}
		if !errors.Is(err, ErrCorruptRun) {
			t.Fatalf("truncation to %d bytes: error %v does not wrap ErrCorruptRun", cut, err)
		}
	}
}

// TestRunFormatCorruption: flipping any single byte of an encoded run
// must either fail (checksums, structural validation) or — never —
// change the decoded record stream silently. Byte flips in block
// payloads and the index are caught by CRC-32C; flips in the trailer
// by the magic/bounds checks.
func TestRunFormatCorruption(t *testing.T) {
	recs := sortedRecords(200)
	data := encodeRun(t, CodecRaw, 1024, recs)
	want := fmt.Sprint(recs)
	for i := 0; i < len(data); i++ {
		corrupt := append([]byte(nil), data...)
		corrupt[i] ^= 0x40
		got, err := decodeRun(corrupt, nil, nil, nil)
		if err == nil && fmt.Sprint(got) != want {
			t.Fatalf("flipping byte %d of %d silently changed the decoded records", i, len(data))
		}
		if err != nil && !errors.Is(err, ErrCorruptRun) {
			t.Fatalf("flipping byte %d: error %v does not wrap ErrCorruptRun", i, err)
		}
	}
}

// TestSpillFileCorruptionSurfaces: a corrupted on-disk spill must fail
// the merge with ErrCorruptRun, not lose records.
func TestSpillFileCorruptionSurfaces(t *testing.T) {
	dir := t.TempDir()
	s := NewSorter(Options{MemoryBudget: 256, TempDir: dir})
	for i := 0; i < 500; i++ {
		if err := s.Add([]byte(fmt.Sprintf("key-%04d", i)), []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	if s.Spills() == 0 {
		t.Fatal("expected spills")
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("no spill files: %v", err)
	}
	path := filepath.Join(dir, ents[0].Name())
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/3] ^= 0xFF // middle of some block payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	runs, err := s.Seal()
	if err != nil {
		t.Fatal(err)
	}
	it, err := MergeRuns(nil, runs)
	if err == nil {
		for it.Next() {
		}
		err = it.Err()
		it.Close()
	}
	if err == nil || !errors.Is(err, ErrCorruptRun) {
		t.Fatalf("corrupted spill produced %v, want ErrCorruptRun", err)
	}
}

func TestRunFormatIOStatsAccounting(t *testing.T) {
	stats := &IOStats{}
	s := NewSorter(Options{MemoryBudget: 4 << 10, TempDir: t.TempDir(), Stats: stats})
	for i := 0; i < 2000; i++ {
		if err := s.Add([]byte(fmt.Sprintf("key-%05d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	runs, err := s.Seal()
	if err != nil {
		t.Fatal(err)
	}
	written := stats.BytesWritten()
	if written == 0 {
		t.Fatal("no bytes written recorded")
	}
	var encoded int64
	for _, r := range runs {
		if r.InMemory() {
			encoded += int64(r.Bytes())
		} else {
			st, err := os.Stat(r.path)
			if err != nil {
				t.Fatal(err)
			}
			encoded += st.Size()
		}
	}
	if written != encoded {
		t.Fatalf("BytesWritten=%d but encoded runs total %d", written, encoded)
	}
	it, err := MergeRuns(nil, runs)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for it.Next() {
		n++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	it.Close()
	if n != 2000 {
		t.Fatalf("merged %d records", n)
	}
	if got := stats.BytesRead(); got != written {
		t.Fatalf("full drain read %d bytes, wrote %d", got, written)
	}
}

func TestMergeRunsRange(t *testing.T) {
	var all []*Run
	var want []kv
	for task := 0; task < 3; task++ {
		s := NewSorter(Options{MemoryBudget: 512, TempDir: t.TempDir()})
		for i := task; i < 900; i += 3 {
			k := fmt.Sprintf("key-%04d", i)
			v := fmt.Sprintf("t%d", task)
			if err := s.Add([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			if k >= "key-0300" && k < "key-0600" {
				want = append(want, kv{k, v})
			}
		}
		runs, err := s.Seal()
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, runs...)
	}
	it, err := MergeRunsRange(nil, all, []byte("key-0300"), []byte("key-0600"))
	if err != nil {
		t.Fatal(err)
	}
	var got []kv
	for it.Next() {
		got = append(got, kv{string(it.Key()), string(it.Value())})
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	it.Close()
	if len(got) != len(want) {
		t.Fatalf("range merge produced %d records, want %d", len(got), len(want))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].k > got[i].k {
			t.Fatalf("out of order at %d", i)
		}
	}
	for _, r := range got {
		if r.k < "key-0300" || r.k >= "key-0600" {
			t.Fatalf("record %q outside [key-0300, key-0600)", r.k)
		}
	}
}

// TestMergeRunsRangeSkipsBlocks: a bounded read of a many-block run
// must fetch fewer bytes than a full scan — the point of the footer
// index.
func TestMergeRunsRangeSkipsBlocks(t *testing.T) {
	recs := sortedRecords(5000)
	data := encodeRun(t, CodecRaw, 1024, recs)

	full := &IOStats{}
	if _, err := decodeRun(data, full, nil, nil); err != nil {
		t.Fatal(err)
	}
	bounded := &IOStats{}
	got, err := decodeRun(data, bounded, []byte(recs[2400].k), []byte(recs[2600].k))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 200 {
		t.Fatalf("bounded read returned %d records, want 200", len(got))
	}
	if bounded.BytesRead() >= full.BytesRead()/2 {
		t.Fatalf("bounded read fetched %d of %d bytes: block skipping is not working",
			bounded.BytesRead(), full.BytesRead())
	}
}

// TestRunFormatHugeCompressibleRecord: a single record far larger
// than the block target — highly compressible, so flate shrinks it —
// must round-trip; the reader's decompression-bomb guard scales with
// the payload and must not reject blocks the writer legitimately
// produced.
func TestRunFormatHugeCompressibleRecord(t *testing.T) {
	for _, codec := range []Codec{CodecRaw, CodecFlate} {
		t.Run(codec.String(), func(t *testing.T) {
			big := bytes.Repeat([]byte("compressible "), 1<<18) // ~3.4 MiB
			recs := []kv{{"a", "x"}, {"big", string(big)}, {"c", "y"}}
			data := encodeRun(t, codec, 0, recs)
			got, err := decodeRun(data, nil, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(recs) || got[1].v != string(big) {
				t.Fatalf("huge record did not round-trip (%d records)", len(got))
			}
		})
	}
}

func TestRunFormatValueElision(t *testing.T) {
	// Alternating then constant values: elision must reproduce exactly.
	recs := []kv{
		{"a", "1"}, {"b", "1"}, {"c", "2"}, {"d", "2"}, {"e", "2"},
		{"f", ""}, {"g", ""}, {"h", "1"},
	}
	data := encodeRun(t, CodecRaw, 0, recs)
	got, err := decodeRun(data, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(recs) {
		t.Fatalf("got %v, want %v", got, recs)
	}
}
