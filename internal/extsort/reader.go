package extsort

// Exported random-access surface of the block-framed run format.
//
// The shuffle consumes runs strictly sequentially through MergeRuns,
// but a persistent index built on the same format needs the opposite
// access pattern: write a run once in sorted order, then serve
// point-lookups and range scans by jumping straight to the one block
// that can contain a key. RunWriter and RunReader expose exactly that —
// the writer streams sorted records into the format, the reader parses
// a run's footer and decodes single blocks on demand. A RunReader is
// safe for concurrent ReadBlock calls (each call uses its own decoder
// state), which is what lets a query daemon serve many clients from one
// open shard.

import (
	"io"
	"sort"
	"sync"
)

// RunWriter encodes records into a complete run in the block-framed run
// format. Records must be appended in ascending key order for the
// format's front-coding and the reader's block binary search to work
// (appending out of order corrupts nothing, but range reads over the
// result are undefined). Finish writes the footer index and trailer.
type RunWriter struct {
	rw *runWriter
	n  int64
}

// NewRunWriter returns a writer encoding into w with the given codec.
func NewRunWriter(w io.Writer, codec Codec) *RunWriter {
	return &RunWriter{rw: newRunWriter(w, codec, 0)}
}

// Append adds one record. Key and value are copied as needed; callers
// may reuse their buffers.
func (w *RunWriter) Append(key, value []byte) error {
	if err := w.rw.append(key, value); err != nil {
		return err
	}
	w.n++
	return nil
}

// Records returns the number of records appended so far.
func (w *RunWriter) Records() int64 { return w.n }

// Finish flushes the pending block and writes the footer index and
// trailer, returning the total encoded size of the run in bytes. The
// writer must not be used afterwards.
func (w *RunWriter) Finish() (int64, error) { return w.rw.finish() }

// ReadAtFunc fetches the byte range [off, off+n) of an encoded run.
// Implementations must be safe for concurrent calls (os.File.ReadAt
// and in-memory slicing both are).
type ReadAtFunc func(off int64, n int) ([]byte, error)

// RunReader provides validated random access to the blocks of one
// encoded run: the footer index is parsed and checksum-verified at open,
// after which individual blocks decode on demand. It is safe for
// concurrent use.
type RunReader struct {
	footer  *runFooter
	readAt  ReadAtFunc
	records int64
}

// OpenRunReader parses and validates the footer of an encoded run of
// the given total size. Malformed, truncated, or checksum-failing
// footers error with ErrCorruptRun.
func OpenRunReader(size int64, readAt ReadAtFunc) (*RunReader, error) {
	footer, err := parseRunFooter(size, func(off int64, n int) ([]byte, error) {
		return readAt(off, n)
	})
	if err != nil {
		return nil, err
	}
	var records int64
	for _, b := range footer.blocks {
		records += int64(b.records)
	}
	return &RunReader{footer: footer, readAt: readAt, records: records}, nil
}

// NumBlocks returns the number of blocks in the run.
func (r *RunReader) NumBlocks() int { return len(r.footer.blocks) }

// Records returns the total record count recorded in the footer.
func (r *RunReader) Records() int64 { return r.records }

// FirstKey returns the first key of block i. The returned slice must
// not be modified.
func (r *RunReader) FirstKey(i int) []byte { return r.footer.blocks[i].firstKey }

// FindBlock returns the index of the only block that can contain key
// under cmp (nil selects bytewise order): the last block whose first
// key is ≤ key. It returns -1 when key sorts before the run's first
// key, i.e. cannot be present at all.
func (r *RunReader) FindBlock(key []byte, cmp Compare) int {
	if cmp == nil {
		cmp = defaultCompare
	}
	// First block whose firstKey > key, minus one.
	i := sort.Search(len(r.footer.blocks), func(i int) bool {
		return cmp(r.footer.blocks[i].firstKey, key) > 0
	})
	return i - 1
}

// ReadBlock fetches and decodes block i, verifying its checksum. The
// returned block is immutable and safe to share across goroutines.
func (r *RunReader) ReadBlock(i int) (*DecodedBlock, error) {
	if i < 0 || i >= len(r.footer.blocks) {
		return nil, corruptf("block %d out of range [0,%d)", i, len(r.footer.blocks))
	}
	start := r.footer.blocks[i].offset
	end := r.footer.blockEnd(i)
	region, err := r.readAt(int64(start), int(end-start))
	if err != nil {
		return nil, corruptf("read block %d region [%d,%d): %v", i, start, end, err)
	}
	return decodeBlockRegion(region)
}

// ReadBlocks fetches and decodes blocks [lo, hi) with one region read:
// the contiguous byte range covering every requested block is fetched
// in a single ReadAtFunc call, then each block's CRC-32C is verified
// and its records decoded in one pass over that buffer. Sequential
// consumers (full index scans, top-record preload) use it to replace
// per-block pread calls with one syscall per batch. The returned
// blocks are immutable and safe to share across goroutines.
func (r *RunReader) ReadBlocks(lo, hi int) ([]*DecodedBlock, error) {
	if lo < 0 || hi > len(r.footer.blocks) || lo > hi {
		return nil, corruptf("block range [%d,%d) out of range [0,%d)", lo, hi, len(r.footer.blocks))
	}
	if lo == hi {
		return nil, nil
	}
	start := r.footer.blocks[lo].offset
	end := r.footer.blockEnd(hi - 1)
	region, err := r.readAt(int64(start), int(end-start))
	if err != nil {
		return nil, corruptf("read block region [%d,%d): %v", start, end, err)
	}
	out := make([]*DecodedBlock, 0, hi-lo)
	for i := lo; i < hi; i++ {
		s := r.footer.blocks[i].offset - start
		e := r.footer.blockEnd(i) - start
		if e > uint64(len(region)) {
			return nil, corruptf("block %d region [%d,%d) overruns %d-byte read", i, s, e, len(region))
		}
		blk, err := decodeBlockRegion(region[s:e:e])
		if err != nil {
			return nil, err
		}
		out = append(out, blk)
	}
	return out, nil
}

// blockDecPool recycles blockDecoder state — key scratch, flate reader,
// decompression buffer — across ReadBlock calls, which otherwise pay
// those allocations on every cache miss of the index read path.
var blockDecPool = sync.Pool{New: func() any { return new(blockDecoder) }}

// decodeBlockRegion decodes one block region (header ‖ payload) into a
// fresh immutable DecodedBlock using pooled decoder state.
func decodeBlockRegion(region []byte) (*DecodedBlock, error) {
	dec := blockDecPool.Get().(*blockDecoder)
	defer func() {
		// Drop references into the caller's region; keep the reusable
		// scratch (key buffer, rawBuf, flate reader).
		dec.raw = nil
		dec.val = nil
		blockDecPool.Put(dec)
	}()
	if err := dec.reset(region); err != nil {
		return nil, err
	}
	// The header gives the record count exactly; the arena needs at
	// least the raw payload size (front-coding only shrinks), so both
	// start presized and at most the arena grows a step or two.
	b := &DecodedBlock{
		arena: make([]byte, 0, len(dec.raw)),
		recs:  make([]recSpan, 0, dec.remain),
	}
	for {
		ok, err := dec.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		ko := len(b.arena)
		b.arena = append(b.arena, dec.key...)
		b.arena = append(b.arena, dec.val...)
		b.recs = append(b.recs, recSpan{keyOff: ko, keyLen: len(dec.key), valLen: len(dec.val)})
	}
	return b, nil
}

// recSpan locates one record inside a DecodedBlock arena. The value
// starts immediately after the key.
type recSpan struct {
	keyOff, keyLen, valLen int
}

// DecodedBlock is one fully decoded block: records materialized into a
// single arena. It is immutable after construction; the slices returned
// by Key and Value alias the arena and must not be modified.
type DecodedBlock struct {
	arena []byte
	recs  []recSpan
}

// Len returns the number of records in the block.
func (b *DecodedBlock) Len() int { return len(b.recs) }

// Append copies one record into the block. It exists for callers that
// assemble an in-memory record list in DecodedBlock form (the
// persistent index's preloaded top records); blocks decoded by
// ReadBlock must not be appended to, as they may be shared.
func (b *DecodedBlock) Append(key, value []byte) {
	ko := len(b.arena)
	b.arena = append(b.arena, key...)
	b.arena = append(b.arena, value...)
	b.recs = append(b.recs, recSpan{keyOff: ko, keyLen: len(key), valLen: len(value)})
}

// Key returns the key of record i.
func (b *DecodedBlock) Key(i int) []byte {
	r := b.recs[i]
	return b.arena[r.keyOff : r.keyOff+r.keyLen : r.keyOff+r.keyLen]
}

// Value returns the value of record i.
func (b *DecodedBlock) Value(i int) []byte {
	r := b.recs[i]
	off := r.keyOff + r.keyLen
	return b.arena[off : off+r.valLen : off+r.valLen]
}

// Search locates key among the block's records, which must be sorted
// ascending under cmp (nil selects bytewise order). It returns the
// index of the first record with key ≥ the target, and whether that
// record's key equals the target.
func (b *DecodedBlock) Search(key []byte, cmp Compare) (int, bool) {
	if cmp == nil {
		cmp = defaultCompare
	}
	i := sort.Search(len(b.recs), func(i int) bool {
		return cmp(b.Key(i), key) >= 0
	})
	return i, i < len(b.recs) && cmp(b.Key(i), key) == 0
}
