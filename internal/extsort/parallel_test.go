package extsort

import (
	"fmt"
	"math/rand"
	"os"
	"testing"
)

// buildShuffleRuns seals nSorters sorters over a deterministic record
// stream with heavy key duplication across sorters, so equal-key
// tie-break order (run index) is observable in the merged value order.
func buildShuffleRuns(t *testing.T, dir string, nSorters int, seed int64) []*Run {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var all []*Run
	for s := 0; s < nSorters; s++ {
		srt := NewSorter(Options{MemoryBudget: 512, TempDir: dir})
		for i := 0; i < 300; i++ {
			k := fmt.Sprintf("key-%03d", rng.Intn(60))
			v := fmt.Sprintf("sorter-%d-rec-%d", s, i)
			if err := srt.Add([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
		}
		runs, err := srt.Seal()
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, runs...)
	}
	return all
}

// TestParallelMergeMatchesSequential forces the parallel merge path
// (this container may have GOMAXPROCS=1) and asserts the record stream
// is byte-identical to the sequential merge over identical runs —
// including the order of values under duplicated keys, which is where a
// wrong tie-break would show.
func TestParallelMergeMatchesSequential(t *testing.T) {
	defer SetMergeParallelism(0)

	for _, nSorters := range []int{4, 9, 16} {
		t.Run(fmt.Sprintf("sorters=%d", nSorters), func(t *testing.T) {
			SetMergeParallelism(1)
			seqRuns := buildShuffleRuns(t, t.TempDir(), nSorters, 42)
			if nSorters >= 8 && len(seqRuns) < parallelMergeMinFanIn {
				t.Fatalf("want fan-in >= %d to exercise the parallel path, got %d",
					parallelMergeMinFanIn, len(seqRuns))
			}
			seq := drainRuns(t, nil, seqRuns)

			SetMergeParallelism(4)
			parRuns := buildShuffleRuns(t, t.TempDir(), nSorters, 42)
			par := drainRuns(t, nil, parRuns)

			if len(seq) != len(par) {
				t.Fatalf("parallel merge yielded %d records, sequential %d", len(par), len(seq))
			}
			for i := range seq {
				if seq[i] != par[i] {
					t.Fatalf("record %d differs: sequential %v, parallel %v", i, seq[i], par[i])
				}
			}
		})
	}
}

// TestParallelMergeRange checks block-skipping bounds still hold when
// the merge fans out across goroutines.
func TestParallelMergeRange(t *testing.T) {
	SetMergeParallelism(1)
	seqRuns := buildShuffleRuns(t, t.TempDir(), 10, 7)
	seqIt, err := MergeRunsRange(nil, seqRuns, []byte("key-010"), []byte("key-040"))
	if err != nil {
		t.Fatal(err)
	}
	seq := drain(t, seqIt)

	SetMergeParallelism(3)
	defer SetMergeParallelism(0)
	parRuns := buildShuffleRuns(t, t.TempDir(), 10, 7)
	parIt, err := MergeRunsRange(nil, parRuns, []byte("key-010"), []byte("key-040"))
	if err != nil {
		t.Fatal(err)
	}
	par := drain(t, parIt)

	if len(seq) == 0 {
		t.Fatal("range selected no records; test is vacuous")
	}
	if fmt.Sprint(seq) != fmt.Sprint(par) {
		t.Fatalf("range merge differs:\nsequential %v\nparallel   %v", seq, par)
	}
	for _, r := range seq {
		if r.k < "key-010" || r.k >= "key-040" {
			t.Fatalf("record %q outside [key-010, key-040)", r.k)
		}
	}
}

// TestParallelMergeEarlyClose abandons a parallel merge mid-stream and
// checks the producer goroutines release every spill file.
func TestParallelMergeEarlyClose(t *testing.T) {
	SetMergeParallelism(4)
	defer SetMergeParallelism(0)
	dir := t.TempDir()
	runs := buildShuffleRuns(t, dir, 12, 99)
	it, err := MergeRuns(nil, runs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5 && it.Next(); i++ {
	}
	it.Close()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill files remain after Close: %v", ents)
	}
}
