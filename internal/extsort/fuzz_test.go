package extsort

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzRunFormat: arbitrary bytes presented as an encoded run must
// either decode cleanly or fail with an error wrapping ErrCorruptRun —
// never panic, never over-read, and decoded keys must come back in
// nondecreasing order relative to what a writer would have produced
// (we can't know intent, so the only hard invariants are memory safety
// and typed errors).
func FuzzRunFormat(f *testing.F) {
	// Seed with valid runs so the fuzzer starts from the real format.
	seed := func(codec Codec, blockSize int, recs []kv) []byte {
		var buf bytes.Buffer
		rw := newRunWriter(&buf, codec, blockSize)
		for _, r := range recs {
			if err := rw.append([]byte(r.k), []byte(r.v)); err != nil {
				f.Fatal(err)
			}
		}
		if _, err := rw.finish(); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add([]byte{})
	f.Add(seed(CodecRaw, 0, nil))
	f.Add(seed(CodecRaw, 0, []kv{{"alpha", "1"}, {"alphabet", "1"}, {"beta", "2"}}))
	f.Add(seed(CodecRaw, 16, []kv{{"a", ""}, {"ab", "x"}, {"abc", "x"}, {"b", "y"}}))
	f.Add(seed(CodecFlate, 32, []kv{{"key-0001", "v"}, {"key-0002", "v"}, {"key-0003", "w"}}))

	f.Fuzz(func(t *testing.T, data []byte) {
		src, err := openMemRunSource(data, nil, nil, nil, nil)
		if err != nil {
			if !errors.Is(err, ErrCorruptRun) {
				t.Fatalf("open error %v does not wrap ErrCorruptRun", err)
			}
			return
		}
		defer src.close()
		for i := 0; i < 1<<16; i++ {
			ok, err := src.next()
			if err != nil {
				if !errors.Is(err, ErrCorruptRun) {
					t.Fatalf("decode error %v does not wrap ErrCorruptRun", err)
				}
				return
			}
			if !ok {
				return
			}
			if len(src.key())+len(src.value()) > len(data)*17 {
				// Flate can expand, but a record vastly larger than the
				// input indicates an over-read.
				t.Fatalf("record of %d+%d bytes from %d-byte run",
					len(src.key()), len(src.value()), len(data))
			}
		}
	})
}

// FuzzRunFormatRoundTrip: any record stream round-trips bit-exactly
// through the writer and reader, for both codecs and tiny blocks. The
// fuzzer drives the record contents and the split points.
func FuzzRunFormatRoundTrip(f *testing.F) {
	f.Add([]byte("alpha\x001\x00alphabet\x001\x00beta\x002"), uint8(0), uint16(64))
	f.Add([]byte("\x00\x00\x00"), uint8(1), uint16(1))
	f.Fuzz(func(t *testing.T, raw []byte, codecByte uint8, blockSize uint16) {
		codec := CodecRaw
		if codecByte%2 == 1 {
			codec = CodecFlate
		}
		// Parse raw into records: fields separated by NUL, alternating
		// key/value, keys sorted by construction below.
		fields := bytes.Split(raw, []byte{0})
		var recs []kv
		for i := 0; i+1 < len(fields); i += 2 {
			recs = append(recs, kv{string(fields[i]), string(fields[i+1])})
		}
		// The format doesn't require sorted keys; feed them as-is.
		var buf bytes.Buffer
		rw := newRunWriter(&buf, codec, int(blockSize))
		for _, r := range recs {
			if err := rw.append([]byte(r.k), []byte(r.v)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := rw.finish(); err != nil {
			t.Fatal(err)
		}
		src, err := openMemRunSource(buf.Bytes(), nil, nil, nil, nil)
		if err != nil {
			t.Fatalf("reopen own encoding: %v", err)
		}
		defer src.close()
		for i, want := range recs {
			ok, err := src.next()
			if err != nil || !ok {
				t.Fatalf("record %d/%d: ok=%v err=%v", i, len(recs), ok, err)
			}
			if string(src.key()) != want.k || string(src.value()) != want.v {
				t.Fatalf("record %d: got (%q,%q), want (%q,%q)",
					i, src.key(), src.value(), want.k, want.v)
			}
		}
		if ok, err := src.next(); ok || err != nil {
			t.Fatalf("trailing record after %d: ok=%v err=%v", len(recs), ok, err)
		}
	})
}
