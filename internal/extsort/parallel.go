package extsort

// Parallel reduce-side merge. A reduce task's fan-in is one sealed run
// per map task (more when maps spilled), so wide jobs hand a single
// reduce merge dozens of runs; merging them in one goroutine leaves
// every other core idle during the reduce phase. When the fan-in is
// large enough and more than one CPU is available, the merge splits
// the runs into contiguous groups, each merged by its own goroutine
// through the same loser tree the sequential path uses, and the group
// winners are merged by a final loser tree in the consuming
// goroutine. Group records travel in recycled arena batches over
// bounded channels, so the hand-off stays allocation-light and the
// resident overhead per group is a couple of batches.
//
// Determinism: groups are contiguous run ranges and the final merge
// tie-breaks equal keys by group index, while each group preserves
// the relative order of its own runs — together that reproduces the
// sequential merge's global run-index tie-break, so the merged record
// stream is byte-identical to a single-threaded merge (asserted by
// TestParallelMergeMatchesSequential and the golden runner-equivalence
// matrix).

import (
	"runtime"
	"sync/atomic"
)

const (
	// parallelMergeMinFanIn is the smallest fan-in worth splitting:
	// below it the goroutine and channel hand-off overhead outweighs
	// the parallel comparisons.
	parallelMergeMinFanIn = 8
	// parallelMergeSubFanIn is the target number of runs per sub-merge.
	parallelMergeSubFanIn = 4
	// mergeBatchTarget is the record-byte size of one hand-off batch.
	mergeBatchTarget = 64 << 10
)

// mergeParallelism overrides the merge goroutine cap when positive.
var mergeParallelism atomic.Int32

// SetMergeParallelism caps the number of goroutines one reduce-side
// merge may fan its inputs across. n <= 0 restores the default (the
// number of CPUs); 1 disables parallel merging. The setting is
// process-wide; the merged record stream is identical at every value.
func SetMergeParallelism(n int) {
	if n < 0 {
		n = 0
	}
	mergeParallelism.Store(int32(n))
}

// mergeGroups returns how many sub-merge goroutines to use for a merge
// over n runs (1 = merge sequentially in the caller).
func mergeGroups(n int) int {
	p := int(mergeParallelism.Load())
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p <= 1 || n < parallelMergeMinFanIn {
		return 1
	}
	g := (n + parallelMergeSubFanIn - 1) / parallelMergeSubFanIn
	if g > p {
		g = p
	}
	if g < 2 {
		return 1
	}
	return g
}

// mergeBatch is one hand-off unit of a group's pre-merged records:
// keys and values packed into a shared arena. A batch with err set
// terminates its stream after any records it carries.
type mergeBatch struct {
	arena []byte
	recs  []record
	err   error
}

// groupSource adapts one sub-merge's batch stream to the source
// interface consumed by the final loser tree.
type groupSource struct {
	out  chan *mergeBatch // producer → consumer
	free chan *mergeBatch // recycled batches back to the producer
	done chan struct{}    // closed to cancel the producer

	cur    *mergeBatch
	i      int
	k, v   []byte
	closed bool
}

func (g *groupSource) next() (bool, error) {
	for {
		if g.cur != nil && g.i < len(g.cur.recs) {
			r := g.cur.recs[g.i]
			g.i++
			g.k = g.cur.arena[r.keyOff : r.keyOff+r.keyLen]
			g.v = g.cur.arena[r.valOff : r.valOff+r.valLen]
			return true, nil
		}
		if g.cur != nil {
			if g.cur.err != nil {
				return false, g.cur.err
			}
			g.cur.arena = g.cur.arena[:0]
			g.cur.recs = g.cur.recs[:0]
			select {
			case g.free <- g.cur:
			default:
			}
			g.cur = nil
		}
		b, ok := <-g.out
		if !ok {
			return false, nil
		}
		g.cur, g.i = b, 0
	}
}

func (g *groupSource) key() []byte   { return g.k }
func (g *groupSource) value() []byte { return g.v }

func (g *groupSource) close() {
	if g.closed {
		return
	}
	g.closed = true
	close(g.done)
	// Unblock a producer parked on a full out channel and wait for it
	// to finish releasing its runs (it closes out on exit).
	for range g.out {
	}
}

// runGroupProducer merges one contiguous range of runs and streams the
// result to its groupSource in batches. It owns the runs and releases
// them on every exit path; it always closes out before returning.
func runGroupProducer(cmp Compare, runs []*Run, lo, hi []byte, gs *groupSource) {
	defer close(gs.out)
	it, err := mergeRunsSequential(cmp, runs, lo, hi)
	if err != nil {
		select {
		case gs.out <- &mergeBatch{err: err}:
		case <-gs.done:
		}
		return
	}
	defer it.Close()
	batch := nextBatch(gs.free)
	for it.Next() {
		k, v := it.Key(), it.Value()
		ko := len(batch.arena)
		batch.arena = append(batch.arena, k...)
		vo := len(batch.arena)
		batch.arena = append(batch.arena, v...)
		batch.recs = append(batch.recs, record{ko, len(k), vo, len(v)})
		if len(batch.arena) >= mergeBatchTarget {
			select {
			case gs.out <- batch:
			case <-gs.done:
				return
			}
			batch = nextBatch(gs.free)
		}
	}
	batch.err = it.Err()
	if len(batch.recs) > 0 || batch.err != nil {
		select {
		case gs.out <- batch:
		case <-gs.done:
		}
	}
}

// nextBatch reuses a recycled batch when one is available.
func nextBatch(free chan *mergeBatch) *mergeBatch {
	select {
	case b := <-free:
		return b
	default:
		return &mergeBatch{}
	}
}

// mergeRunsParallel splits runs into g contiguous groups, each merged
// by its own goroutine, and returns an iterator merging the group
// streams. The caller's Run values are emptied synchronously, so the
// MergeRuns ownership contract (a later Discard is a no-op) holds
// without racing the producers.
func mergeRunsParallel(cmp Compare, runs []*Run, lo, hi []byte, g int) (*Iterator, error) {
	owned := make([]Run, len(runs))
	for i, r := range runs {
		owned[i] = *r
		r.path = ""
		r.data = nil
		r.remote = nil
	}
	groups := make([]*groupSource, 0, g)
	per := (len(owned) + g - 1) / g
	for start := 0; start < len(owned); start += per {
		end := start + per
		if end > len(owned) {
			end = len(owned)
		}
		sub := make([]*Run, end-start)
		for i := range sub {
			sub[i] = &owned[start+i]
		}
		gs := &groupSource{
			out:  make(chan *mergeBatch, 1),
			free: make(chan *mergeBatch, 2),
			done: make(chan struct{}),
		}
		groups = append(groups, gs)
		go runGroupProducer(cmp, sub, lo, hi, gs)
	}

	it := &Iterator{cmp: cmp}
	for i, gs := range groups {
		ok, err := gs.next()
		if err != nil {
			gs.close()
			it.Close()
			for _, rest := range groups[i+1:] {
				rest.close()
			}
			return nil, err
		}
		if ok {
			it.addSource(gs)
		} else {
			gs.close()
		}
	}
	return it, nil
}
