// Package extsort implements a bounded-memory external sorter for
// (key, value) byte records. It is the storage engine behind the
// MapReduce shuffle: map tasks append records to a Sorter, which keeps
// an in-memory run up to a configurable budget, spills sorted runs to
// varint-framed files, and finally exposes its sorted records one of
// two ways: Sort merges the sorter's own runs (in-memory and on-disk)
// into a single iterator with a k-way heap merge, while Seal hands the
// runs themselves off as immutable Run values that any number of
// sorters can contribute to one MergeRuns call.
//
// The Sort path serves single-owner consumers (a combiner sorting one
// map task's local output); the Seal/MergeRuns path is the shuffle
// hand-off, mirroring Hadoop's architecture in which every map task
// sorts and spills its own output and each reduce task merges the
// sealed runs of all map tasks for its partition — the "sorting" half
// of MapReduce's sort-and-group contract that the paper's methods rely
// on.
package extsort

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"slices"
	"sync"
)

// Compare orders two keys. Negative means a sorts before b.
type Compare func(a, b []byte) int

// defaultCompare is the order used when Options.Compare is nil.
var defaultCompare Compare = bytes.Compare

// Options configures a Sorter.
type Options struct {
	// MemoryBudget is the approximate number of bytes of record data
	// buffered in memory before a spill. Zero selects a default of 32 MiB.
	MemoryBudget int
	// TempDir is the directory for spill files. Empty selects os.TempDir.
	TempDir string
	// Compare orders keys. Nil selects bytewise lexicographic order.
	Compare Compare
	// OnSpill, if non-nil, is invoked with the number of records in each
	// spilled run (for SPILLED_RECORDS-style counters).
	OnSpill func(records int)
	// Codec selects the optional per-block compression of sealed runs
	// and spill files. Default is CodecRaw (front-coding only).
	Codec Codec
	// Stats, if non-nil, accumulates measured run-format byte transfer:
	// encoded bytes this sorter writes (spills and sealed in-memory
	// runs) and encoded bytes later read back by merges over its runs.
	Stats *IOStats
}

type record struct {
	keyOff, keyLen int
	valOff, valLen int
}

// Process-wide buffer pools. The shuffle creates one sorter per map
// task per partition (and the combiner another set per task), so the
// record arenas and tables churn constantly; recycling them removes
// the dominant allocation of the emit path. Buffers return to the
// pools when a sorter is sealed or discarded and when a Sort
// iterator's in-memory source drains, i.e. strictly after the last
// read of their contents.
var (
	arenaPool sync.Pool // *[]byte
	recsPool  sync.Pool // *[]record
)

func getArena() []byte {
	if p, _ := arenaPool.Get().(*[]byte); p != nil {
		return (*p)[:0]
	}
	return nil
}

func putArena(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	arenaPool.Put(&b)
}

func getRecs() []record {
	if p, _ := recsPool.Get().(*[]record); p != nil {
		return (*p)[:0]
	}
	return nil
}

func putRecs(r []record) {
	if cap(r) == 0 {
		return
	}
	r = r[:0]
	recsPool.Put(&r)
}

// spillFile is one on-disk sorted run produced by a spill.
type spillFile struct {
	path string
	recs int
}

// Sorter accumulates records and produces them in sorted order. It is
// not safe for concurrent use; in the shuffle each map task owns one
// sorter per reduce partition.
type Sorter struct {
	opts    Options
	cmp     Compare
	arena   []byte
	recs    []record
	spills  []spillFile
	n       int
	mem     int
	closed  bool
	spillID int
}

// NewSorter returns a Sorter with the given options.
func NewSorter(opts Options) *Sorter {
	if opts.MemoryBudget <= 0 {
		opts.MemoryBudget = 32 << 20
	}
	cmp := opts.Compare
	if cmp == nil {
		cmp = defaultCompare
	}
	return &Sorter{opts: opts, cmp: cmp, arena: getArena(), recs: getRecs()}
}

// Len returns the total number of records added so far.
func (s *Sorter) Len() int { return s.n }

// MemoryInUse returns the current in-memory buffer size in bytes.
func (s *Sorter) MemoryInUse() int { return s.mem }

// Spills returns the number of on-disk runs produced so far.
func (s *Sorter) Spills() int { return len(s.spills) }

// Add appends a record. The key and value are copied, so callers may
// reuse their buffers.
func (s *Sorter) Add(key, value []byte) error {
	if s.closed {
		return fmt.Errorf("extsort: Add after Sort or Seal")
	}
	ko := len(s.arena)
	s.arena = append(s.arena, key...)
	vo := len(s.arena)
	s.arena = append(s.arena, value...)
	s.recs = append(s.recs, record{ko, len(key), vo, len(value)})
	s.n++
	s.mem += len(key) + len(value) + 32
	if s.mem >= s.opts.MemoryBudget {
		return s.spill()
	}
	return nil
}

func (s *Sorter) sortInMemory() {
	// Records are appended in arrival order, so keyOff strictly
	// increases with insertion index: tie-breaking equal keys on it
	// reproduces a stable sort while keeping the unstable (pdqsort,
	// non-reflective) slices.SortFunc — the stable sort.SliceStable it
	// replaces spent a quarter of the fig7 profile in reflection-based
	// swaps and symmerge rotations.
	arena, cmp := s.arena, s.cmp
	slices.SortFunc(s.recs, func(a, b record) int {
		if c := cmp(arena[a.keyOff:a.keyOff+a.keyLen], arena[b.keyOff:b.keyOff+b.keyLen]); c != 0 {
			return c
		}
		return a.keyOff - b.keyOff
	})
}

func (s *Sorter) spill() error {
	if len(s.recs) == 0 {
		return nil
	}
	s.sortInMemory()
	f, err := os.CreateTemp(s.opts.TempDir, fmt.Sprintf("extsort-spill-%d-*.run", s.spillID))
	if err != nil {
		return fmt.Errorf("extsort: create spill: %w", err)
	}
	s.spillID++
	w := bufio.NewWriterSize(f, 256<<10)
	rw := newRunWriter(w, s.opts.Codec, 0)
	for _, r := range s.recs {
		key := s.arena[r.keyOff : r.keyOff+r.keyLen]
		val := s.arena[r.valOff : r.valOff+r.valLen]
		if err := rw.append(key, val); err != nil {
			f.Close()
			os.Remove(f.Name())
			return fmt.Errorf("extsort: write spill: %w", err)
		}
	}
	written, err := rw.finish()
	if err != nil {
		f.Close()
		os.Remove(f.Name())
		return fmt.Errorf("extsort: finish spill: %w", err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(f.Name())
		return fmt.Errorf("extsort: flush spill: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return fmt.Errorf("extsort: close spill: %w", err)
	}
	s.opts.Stats.addWritten(written)
	if s.opts.OnSpill != nil {
		s.opts.OnSpill(len(s.recs))
	}
	s.spills = append(s.spills, spillFile{path: f.Name(), recs: len(s.recs)})
	s.arena = s.arena[:0]
	s.recs = s.recs[:0]
	s.mem = 0
	return nil
}

// Spill forces the current in-memory buffer out to a sorted on-disk
// run, regardless of the memory budget. It is a no-op when the buffer
// is empty. The shuffle uses it for graceful degradation when a map
// task's total buffering across partitions exceeds its task budget.
func (s *Sorter) Spill() error {
	if s.closed {
		return fmt.Errorf("extsort: Spill after Sort or Seal")
	}
	return s.spill()
}

// Sort finalizes the sorter and returns an iterator over all records in
// sorted order. After Sort, Add must not be called. The caller must
// Close the iterator to release spill files.
func (s *Sorter) Sort() (*Iterator, error) {
	if s.closed {
		return nil, fmt.Errorf("extsort: Sort after Sort or Seal")
	}
	s.closed = true
	s.sortInMemory()

	var srcs []source
	if len(s.recs) > 0 {
		// Ownership of the arena and record table passes to the source,
		// which recycles them when it drains or is closed.
		srcs = append(srcs, &memSource{arena: s.arena, recs: s.recs})
	} else {
		putArena(s.arena)
		putRecs(s.recs)
	}
	s.arena, s.recs = nil, nil
	for _, sp := range s.spills {
		fs, err := openFileRunSource(sp.path, s.opts.Stats, s.cmp, nil, nil, true)
		if err != nil {
			for _, src := range srcs {
				src.close()
			}
			return nil, err
		}
		srcs = append(srcs, fs)
	}
	it := &Iterator{cmp: s.cmp}
	for _, src := range srcs {
		ok, err := src.next()
		if err != nil {
			src.close()
			it.Close()
			return nil, err
		}
		if ok {
			it.addSource(src)
		} else {
			src.close()
		}
	}
	return it, nil
}

// Discard releases all resources without producing output. It is safe
// to call at any time, including after Sort (in which case the returned
// iterator owns the spill files instead and Discard is a no-op for
// them).
func (s *Sorter) Discard() {
	if !s.closed {
		for _, sp := range s.spills {
			os.Remove(sp.path)
		}
		s.spills = nil
		putArena(s.arena)
		putRecs(s.recs)
	}
	s.arena = nil
	s.recs = nil
	s.closed = true
}

// source is a stream of sorted records.
type source interface {
	// next advances to the next record, reporting whether one is
	// available.
	next() (bool, error)
	key() []byte
	value() []byte
	close()
}

type memSource struct {
	arena []byte
	recs  []record
	i     int
	cur   record
}

func (m *memSource) next() (bool, error) {
	if m.i >= len(m.recs) {
		return false, nil
	}
	m.cur = m.recs[m.i]
	m.i++
	return true, nil
}

func (m *memSource) key() []byte {
	return m.arena[m.cur.keyOff : m.cur.keyOff+m.cur.keyLen]
}

func (m *memSource) value() []byte {
	return m.arena[m.cur.valOff : m.cur.valOff+m.cur.valLen]
}

func (m *memSource) close() {
	// The source owns the sorter's arena and record table; recycle them
	// now that the last record has been read.
	putArena(m.arena)
	putRecs(m.recs)
	m.arena, m.recs = nil, nil
}

// openFileRunSource opens a block source over a run file. When own is
// set the source owns the file: close() both closes and unlinks it;
// otherwise the file is left on disk for its owner (shared runs).
func openFileRunSource(path string, stats *IOStats, cmp Compare, lo, hi []byte, own bool) (source, error) {
	remove := func() {
		if own {
			os.Remove(path)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		remove() // ownership passed to this source even on error
		return nil, fmt.Errorf("extsort: open spill: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		remove()
		return nil, fmt.Errorf("extsort: stat spill: %w", err)
	}
	readAt := func(off int64, n int) ([]byte, error) {
		buf := make([]byte, n)
		if _, err := f.ReadAt(buf, off); err != nil {
			return nil, err
		}
		return buf, nil
	}
	cleanup := func() { os.Remove(path) }
	src, err := newBlockSource(st.Size(), readAt, &fileFetcher{f: f}, stats, cmp, lo, hi, cleanup)
	if err != nil {
		return nil, fmt.Errorf("extsort: open run %s: %w", path, err)
	}
	return src, nil
}

// openMemRunSource opens a block source over an encoded in-memory run.
func openMemRunSource(data []byte, stats *IOStats, cmp Compare, lo, hi []byte) (source, error) {
	readAt := func(off int64, n int) ([]byte, error) {
		if off < 0 || off+int64(n) > int64(len(data)) {
			return nil, corruptf("region [%d,+%d) outside run of %d bytes", off, n, len(data))
		}
		return data[off : off+int64(n) : off+int64(n)], nil
	}
	src, err := newBlockSource(int64(len(data)), readAt, &memFetcher{data: data}, stats, cmp, lo, hi, nil)
	if err != nil {
		return nil, fmt.Errorf("extsort: open in-memory run: %w", err)
	}
	return src, nil
}

// Iterator yields records in sorted order from the k-way merge of all
// runs, selected through a tournament (loser) tree: each advance
// replays one leaf-to-root path — ⌈log₂ k⌉ comparisons, no interface
// dispatch or heap sift overhead — instead of the pop-then-push pair
// of a container/heap merge. Equal keys emit in source order, exactly
// as the heap merge before it. The key and value slices returned by
// Key and Value are only valid until the following call to Next.
type Iterator struct {
	cmp   Compare
	srcs  []source // leaves; nil once exhausted and closed
	order []int    // original source index per leaf: the equal-key tie-break
	tree  []int    // internal nodes hold the loser of their match
	win   int      // current winner leaf, -1 when drained

	started bool
	closed  bool
	err     error
}

// addSource appends a positioned source as the next leaf.
func (it *Iterator) addSource(src source) {
	it.srcs = append(it.srcs, src)
	it.order = append(it.order, len(it.order))
}

// less reports whether leaf a's current record sorts before leaf b's.
// An exhausted leaf compares as +∞ so it loses every match.
func (it *Iterator) less(a, b int) bool {
	sa, sb := it.srcs[a], it.srcs[b]
	if sa == nil {
		return false
	}
	if sb == nil {
		return true
	}
	if c := it.cmp(sa.key(), sb.key()); c != 0 {
		return c < 0
	}
	return it.order[a] < it.order[b]
}

// build plays the initial tournament over all leaves. Node n's
// children in the winners scratch are 2n and 2n+1 (leaves occupy
// positions k..2k-1), which forms a complete selection tree for any k.
func (it *Iterator) build() {
	k := len(it.srcs)
	switch k {
	case 0:
		it.win = -1
		return
	case 1:
		it.win = 0
		return
	}
	it.tree = make([]int, k)
	winners := make([]int, 2*k)
	for i := 0; i < k; i++ {
		winners[k+i] = i
	}
	for n := k - 1; n >= 1; n-- {
		a, b := winners[2*n], winners[2*n+1]
		if it.less(a, b) {
			winners[n], it.tree[n] = a, b
		} else {
			winners[n], it.tree[n] = b, a
		}
	}
	it.win = winners[1]
}

// replay re-runs the matches on the path from the given leaf to the
// root after its record changed, updating the overall winner.
func (it *Iterator) replay(leaf int) {
	k := len(it.srcs)
	if k == 1 {
		if it.srcs[0] == nil {
			it.win = -1
		}
		return
	}
	w := leaf
	for n := (k + leaf) / 2; n >= 1; n /= 2 {
		if it.less(it.tree[n], w) {
			w, it.tree[n] = it.tree[n], w
		}
	}
	it.win = w
}

// Next advances the iterator, reporting whether a record is available.
func (it *Iterator) Next() bool {
	if it.closed || it.err != nil {
		return false
	}
	if !it.started {
		it.started = true
		it.build()
	} else if it.win >= 0 && it.srcs[it.win] != nil {
		src := it.srcs[it.win]
		ok, err := src.next()
		if err != nil {
			it.err = err
			return false
		}
		if !ok {
			src.close()
			it.srcs[it.win] = nil
		}
		it.replay(it.win)
	}
	return it.win >= 0 && it.srcs[it.win] != nil
}

// Key returns the current record's key.
func (it *Iterator) Key() []byte { return it.srcs[it.win].key() }

// Value returns the current record's value.
func (it *Iterator) Value() []byte { return it.srcs[it.win].value() }

// Err returns the first error encountered during iteration, if any.
func (it *Iterator) Err() error { return it.err }

// Close releases all spill files. It is safe to call multiple times.
func (it *Iterator) Close() {
	if it.closed {
		return
	}
	it.closed = true
	for i, src := range it.srcs {
		if src != nil {
			src.close()
			it.srcs[i] = nil
		}
	}
	it.win = -1
}
