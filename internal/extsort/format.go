package extsort

// Block-framed run format. Sealed runs — spill files on disk and
// sealed in-memory buffers alike — share one self-describing layout:
//
//	run     := block* index trailer
//	block   := uvarint(records) uvarint(rawLen) uvarint(encLen)
//	           byte(codec) u32le(crc32c(payload)) payload
//	payload := encLen bytes; the front-coded records, optionally
//	           flate-compressed (rawLen is the pre-codec size)
//	index   := uvarint(nBlocks)
//	           { uvarint(offset) uvarint(records)
//	             uvarint(len(firstKey)) firstKey }*
//	trailer := u32le(crc32c(index)) u64le(indexOff) u32le(indexLen)
//	           byte(version) "NGR1"
//
// Records inside a block are front-coded: each key stores only the
// length of the prefix it shares with the previous key plus its
// differing suffix, which is what makes sorted SUFFIX-σ suffix keys —
// long runs of sequences sharing leading terms — dramatically smaller
// than flat framing. A record whose value is byte-identical to the
// previous record's value elides it entirely (after a combiner most
// n-gram aggregate values are the same tiny count, so this removes
// most value bytes). The first record of every block stores its full
// key and value, so blocks decode independently:
//
//	record  := recCode [uvarint(shared)] [uvarint(suffixLen)] suffix
//	           [uvarint(valueLen) value]
//	recCode := bit 7: value identical to previous record's (elided)
//	           bits 6–4: sharedPrefixLen, 7 = escape to varint
//	           bits 3–0: suffixLen, 15 = escape to varint
//
// The common shuffle record — a short suffix key sharing a small
// prefix, repeating the previous value — costs exactly one byte of
// framing.
//
// The per-run index maps each block to its first key, letting a merge
// reader positioned by MergeRunsRange skip whole blocks outside its
// key range, and letting sequential readers stream block-at-a-time
// with readahead instead of record-at-a-time buffered reads. Every
// block and the index carry CRC-32C checksums; truncation or
// corruption anywhere — payload, index, trailer — surfaces as an
// error wrapping ErrCorruptRun, never as silently missing records.

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// Codec selects the optional per-block compression applied on top of
// front-coding.
type Codec uint8

const (
	// CodecRaw stores block payloads uncompressed (the default).
	CodecRaw Codec = iota
	// CodecFlate compresses each block with DEFLATE at level 1. Blocks
	// that do not shrink are stored raw, so the setting is always safe;
	// it pays off for methods whose values compress well (NAÏVE,
	// APRIORI-SCAN counts) at some CPU cost.
	CodecFlate
)

func (c Codec) String() string {
	switch c {
	case CodecRaw:
		return "raw"
	case CodecFlate:
		return "flate"
	default:
		return fmt.Sprintf("codec(%d)", uint8(c))
	}
}

// ErrCorruptRun is wrapped by every error the run-format reader reports
// for malformed, truncated, or checksum-failing run data.
var ErrCorruptRun = errors.New("extsort: corrupt run")

// IOStats aggregates the measured byte transfer of sealed runs: bytes
// of encoded run data produced by sorters (spill files and sealed
// in-memory runs) and bytes consumed by merge readers. The counters
// are atomic; one IOStats may be shared by every sorter and merge of a
// job. Runs remember the stats of the sorter that sealed them, so the
// reduce-side merge accounts its reads to the same instance.
type IOStats struct {
	written atomic.Int64
	read    atomic.Int64
}

// BytesWritten returns the total encoded run bytes produced.
func (s *IOStats) BytesWritten() int64 { return s.written.Load() }

// BytesRead returns the total encoded run bytes consumed.
func (s *IOStats) BytesRead() int64 { return s.read.Load() }

// AddWritten folds in run bytes written outside this instance's
// sorters — the process runner accounts worker-reported transfer to
// the job's stats this way.
func (s *IOStats) AddWritten(n int64) { s.addWritten(n) }

// AddRead folds in run bytes read outside this instance's merges.
func (s *IOStats) AddRead(n int64) { s.addRead(n) }

func (s *IOStats) addWritten(n int64) {
	if s != nil {
		s.written.Add(n)
	}
}

func (s *IOStats) addRead(n int64) {
	if s != nil {
		s.read.Add(n)
	}
}

const (
	runFormatVersion = 1
	runBlockTarget   = 64 << 10 // uncompressed payload bytes per block
	runReadahead     = 256 << 10

	// trailer: crc32(index) ‖ indexOff ‖ indexLen ‖ version ‖ magic
	runTrailerSize = 4 + 8 + 4 + 1 + 4
)

var runMagic = [4]byte{'N', 'G', 'R', '1'}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// blockInfo is one entry of the per-run footer index.
type blockInfo struct {
	offset   uint64 // byte offset of the block header within the run
	records  uint64
	firstKey []byte
}

// runWriter encodes records into the block-framed run format. Records
// must be appended in the run's sort order for front-coding to be
// effective (any order is format-valid, merely larger).
type runWriter struct {
	w         io.Writer
	codec     Codec
	blockSize int

	buf      []byte // current block's raw payload
	nRecs    uint64
	firstKey []byte
	prevKey  []byte
	prevVal  []byte
	hasPrev  bool
	index    []blockInfo
	off      uint64 // bytes emitted so far
	total    uint64 // records emitted so far

	flateW   *flate.Writer
	flateBuf bytes.Buffer
	scratch  []byte
}

// blockBufPool recycles block payload buffers (~runBlockTarget bytes
// each) across run writers: every spill, seal, and index shard write
// creates a writer, and the payload buffer is its only large
// allocation.
var blockBufPool sync.Pool // *[]byte

func getBlockBuf() []byte {
	if p, _ := blockBufPool.Get().(*[]byte); p != nil {
		return (*p)[:0]
	}
	return nil
}

func putBlockBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	blockBufPool.Put(&b)
}

func newRunWriter(w io.Writer, codec Codec, blockSize int) *runWriter {
	if blockSize <= 0 {
		blockSize = runBlockTarget
	}
	return &runWriter{w: w, codec: codec, blockSize: blockSize, buf: getBlockBuf()}
}

func sharedPrefix(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// recCode field layout: see the package comment above.
const (
	recSameValue   = 0x80
	recSharedMask  = 0x70
	recSharedShift = 4
	recSharedEsc   = 7
	recSuffixMask  = 0x0F
	recSuffixEsc   = 15
)

// append adds one record to the current block, flushing the block once
// it reaches the target size.
func (rw *runWriter) append(key, value []byte) error {
	shared := 0
	sameVal := false
	if rw.nRecs == 0 {
		rw.firstKey = append(rw.firstKey[:0], key...)
	} else {
		shared = sharedPrefix(rw.prevKey, key)
		sameVal = rw.hasPrev && bytes.Equal(rw.prevVal, value)
	}
	suffixLen := len(key) - shared

	code := byte(0)
	if sameVal {
		code |= recSameValue
	}
	if shared < recSharedEsc {
		code |= byte(shared) << recSharedShift
	} else {
		code |= recSharedEsc << recSharedShift
	}
	if suffixLen < recSuffixEsc {
		code |= byte(suffixLen)
	} else {
		code |= recSuffixEsc
	}
	rw.buf = append(rw.buf, code)
	if shared >= recSharedEsc {
		rw.buf = binary.AppendUvarint(rw.buf, uint64(shared))
	}
	if suffixLen >= recSuffixEsc {
		rw.buf = binary.AppendUvarint(rw.buf, uint64(suffixLen))
	}
	rw.buf = append(rw.buf, key[shared:]...)
	if !sameVal {
		rw.buf = binary.AppendUvarint(rw.buf, uint64(len(value)))
		rw.buf = append(rw.buf, value...)
		rw.prevVal = append(rw.prevVal[:0], value...)
	}
	rw.prevKey = append(rw.prevKey[:0], key...)
	rw.hasPrev = true
	rw.nRecs++
	rw.total++
	if len(rw.buf) >= rw.blockSize {
		return rw.flushBlock()
	}
	return nil
}

func (rw *runWriter) flushBlock() error {
	if rw.nRecs == 0 {
		return nil
	}
	payload := rw.buf
	codec := CodecRaw
	if rw.codec == CodecFlate {
		rw.flateBuf.Reset()
		if rw.flateW == nil {
			w, err := flate.NewWriter(&rw.flateBuf, 1)
			if err != nil {
				return err
			}
			rw.flateW = w
		} else {
			rw.flateW.Reset(&rw.flateBuf)
		}
		if _, err := rw.flateW.Write(rw.buf); err != nil {
			return err
		}
		if err := rw.flateW.Close(); err != nil {
			return err
		}
		// Keep the compressed form only when it actually shrinks.
		if rw.flateBuf.Len() < len(rw.buf) {
			payload = rw.flateBuf.Bytes()
			codec = CodecFlate
		}
	}

	hdr := rw.scratch[:0]
	hdr = binary.AppendUvarint(hdr, rw.nRecs)
	hdr = binary.AppendUvarint(hdr, uint64(len(rw.buf)))
	hdr = binary.AppendUvarint(hdr, uint64(len(payload)))
	hdr = append(hdr, byte(codec))
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.Checksum(payload, crcTable))
	rw.scratch = hdr

	rw.index = append(rw.index, blockInfo{
		offset:   rw.off,
		records:  rw.nRecs,
		firstKey: append([]byte(nil), rw.firstKey...),
	})
	if _, err := rw.w.Write(hdr); err != nil {
		return err
	}
	if _, err := rw.w.Write(payload); err != nil {
		return err
	}
	rw.off += uint64(len(hdr) + len(payload))
	rw.buf = rw.buf[:0]
	rw.nRecs = 0
	rw.prevKey = rw.prevKey[:0]
	rw.prevVal = rw.prevVal[:0]
	rw.hasPrev = false
	return nil
}

// finish flushes the pending block, writes the footer index and
// trailer, and returns the total encoded size of the run in bytes.
func (rw *runWriter) finish() (int64, error) {
	if err := rw.flushBlock(); err != nil {
		return 0, err
	}
	indexOff := rw.off
	idx := binary.AppendUvarint(nil, uint64(len(rw.index)))
	for _, b := range rw.index {
		idx = binary.AppendUvarint(idx, b.offset)
		idx = binary.AppendUvarint(idx, b.records)
		idx = binary.AppendUvarint(idx, uint64(len(b.firstKey)))
		idx = append(idx, b.firstKey...)
	}
	if _, err := rw.w.Write(idx); err != nil {
		return 0, err
	}
	var tr [runTrailerSize]byte
	binary.LittleEndian.PutUint32(tr[0:4], crc32.Checksum(idx, crcTable))
	binary.LittleEndian.PutUint64(tr[4:12], indexOff)
	binary.LittleEndian.PutUint32(tr[12:16], uint32(len(idx)))
	tr[16] = runFormatVersion
	copy(tr[17:21], runMagic[:])
	if _, err := rw.w.Write(tr[:]); err != nil {
		return 0, err
	}
	putBlockBuf(rw.buf)
	rw.buf = nil
	return int64(indexOff) + int64(len(idx)) + runTrailerSize, nil
}

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorruptRun, fmt.Sprintf(format, args...))
}

// runFooter is the decoded footer of a sealed run.
type runFooter struct {
	blocks   []blockInfo
	indexOff uint64 // end of the block section
	size     int64  // total run size in bytes
}

// blockEnd returns the byte offset one past block i.
func (f *runFooter) blockEnd(i int) uint64 {
	if i+1 < len(f.blocks) {
		return f.blocks[i+1].offset
	}
	return f.indexOff
}

// parseRunFooter validates the trailer and index of an encoded run of
// the given size, using readAt to fetch byte ranges.
func parseRunFooter(size int64, readAt func(off int64, n int) ([]byte, error)) (*runFooter, error) {
	if size < runTrailerSize {
		return nil, corruptf("run of %d bytes is smaller than the trailer", size)
	}
	tr, err := readAt(size-runTrailerSize, runTrailerSize)
	if err != nil {
		return nil, corruptf("read trailer: %v", err)
	}
	if !bytes.Equal(tr[17:21], runMagic[:]) {
		return nil, corruptf("bad magic %q", tr[17:21])
	}
	if tr[16] != runFormatVersion {
		return nil, corruptf("unsupported run format version %d", tr[16])
	}
	indexCRC := binary.LittleEndian.Uint32(tr[0:4])
	indexOff := binary.LittleEndian.Uint64(tr[4:12])
	indexLen := binary.LittleEndian.Uint32(tr[12:16])
	if indexOff+uint64(indexLen)+runTrailerSize != uint64(size) {
		return nil, corruptf("index bounds [%d,+%d) disagree with run size %d",
			indexOff, indexLen, size)
	}
	idx, err := readAt(int64(indexOff), int(indexLen))
	if err != nil {
		return nil, corruptf("read index: %v", err)
	}
	if crc32.Checksum(idx, crcTable) != indexCRC {
		return nil, corruptf("index checksum mismatch")
	}

	nBlocks, n := binary.Uvarint(idx)
	if n <= 0 {
		return nil, corruptf("bad block count")
	}
	idx = idx[n:]
	if nBlocks > uint64(indexLen) { // each entry takes ≥ 3 bytes
		return nil, corruptf("block count %d exceeds index size", nBlocks)
	}
	f := &runFooter{blocks: make([]blockInfo, 0, nBlocks), indexOff: indexOff, size: size}
	var prevOff uint64
	for i := uint64(0); i < nBlocks; i++ {
		var b blockInfo
		if b.offset, n = binary.Uvarint(idx); n <= 0 {
			return nil, corruptf("bad block offset in index entry %d", i)
		}
		idx = idx[n:]
		if b.records, n = binary.Uvarint(idx); n <= 0 {
			return nil, corruptf("bad record count in index entry %d", i)
		}
		idx = idx[n:]
		keyLen, n := binary.Uvarint(idx)
		if n <= 0 || keyLen > uint64(len(idx[n:])) {
			return nil, corruptf("bad first key in index entry %d", i)
		}
		idx = idx[n:]
		b.firstKey = idx[:keyLen:keyLen]
		idx = idx[keyLen:]
		if b.offset >= indexOff || (i > 0 && b.offset <= prevOff) {
			return nil, corruptf("block offset %d out of order in index entry %d", b.offset, i)
		}
		prevOff = b.offset
		f.blocks = append(f.blocks, b)
	}
	if len(idx) != 0 {
		return nil, corruptf("%d trailing bytes after index", len(idx))
	}
	return f, nil
}

// blockDecoder decodes the front-coded records of one block.
type blockDecoder struct {
	raw     []byte // decompressed payload being decoded
	remain  uint64
	started bool   // a record of this block has been decoded
	key     []byte // current key, reused across records
	val     []byte

	rawBuf  []byte // reusable decompression buffer
	payload bytes.Reader
	flateR  io.ReadCloser
}

// reset points the decoder at one block region (header ‖ payload),
// verifying its checksum and decompressing if needed.
func (d *blockDecoder) reset(region []byte) error {
	nRecs, n := binary.Uvarint(region)
	if n <= 0 {
		return corruptf("bad block record count")
	}
	region = region[n:]
	rawLen, n := binary.Uvarint(region)
	if n <= 0 {
		return corruptf("bad block raw length")
	}
	region = region[n:]
	encLen, n := binary.Uvarint(region)
	if n <= 0 {
		return corruptf("bad block encoded length")
	}
	region = region[n:]
	if len(region) < 5 || uint64(len(region)-5) != encLen {
		return corruptf("block payload is %d bytes, header says %d", len(region)-5, encLen)
	}
	codec := Codec(region[0])
	crc := binary.LittleEndian.Uint32(region[1:5])
	payload := region[5:]
	if crc32.Checksum(payload, crcTable) != crc {
		return corruptf("block payload checksum mismatch")
	}
	switch codec {
	case CodecRaw:
		if rawLen != encLen {
			return corruptf("raw block has rawLen %d != encLen %d", rawLen, encLen)
		}
		d.raw = payload
	case CodecFlate:
		// Decompression-bomb guard: DEFLATE expands at most ~1032:1, so
		// a rawLen beyond that bound (or beyond any run we could have
		// written) cannot come from our writer. A single oversized
		// record legitimately produces an oversized block, so the bound
		// must scale with the payload, not the block target.
		if rawLen > (encLen+1)*1032 || rawLen >= 1<<31 {
			return corruptf("block raw length %d implausible for %d payload bytes", rawLen, encLen)
		}
		if cap(d.rawBuf) < int(rawLen) {
			d.rawBuf = make([]byte, rawLen)
		}
		d.rawBuf = d.rawBuf[:rawLen]
		d.payload.Reset(payload)
		if d.flateR == nil {
			d.flateR = flate.NewReader(&d.payload)
		} else if err := d.flateR.(flate.Resetter).Reset(&d.payload, nil); err != nil {
			return corruptf("reset flate reader: %v", err)
		}
		if _, err := io.ReadFull(d.flateR, d.rawBuf); err != nil {
			return corruptf("decompress block: %v", err)
		}
		// A well-formed block ends exactly at rawLen.
		var one [1]byte
		if n, _ := d.flateR.Read(one[:]); n != 0 {
			return corruptf("block decompresses beyond its raw length")
		}
		d.raw = d.rawBuf
	default:
		return corruptf("unknown block codec %d", codec)
	}
	d.remain = nRecs
	d.started = false
	d.key = d.key[:0]
	return nil
}

// next decodes the next record of the block into d.key/d.val.
func (d *blockDecoder) next() (bool, error) {
	if d.remain == 0 {
		if len(d.raw) != 0 {
			return false, corruptf("%d trailing bytes in block", len(d.raw))
		}
		return false, nil
	}
	if len(d.raw) == 0 {
		return false, corruptf("block ends mid-record")
	}
	code := d.raw[0]
	d.raw = d.raw[1:]
	first := !d.started

	shared := uint64(code&recSharedMask) >> recSharedShift
	if shared == recSharedEsc {
		var n int
		if shared, n = binary.Uvarint(d.raw); n <= 0 {
			return false, corruptf("bad shared-prefix length")
		}
		d.raw = d.raw[n:]
	}
	if first && shared != 0 {
		return false, corruptf("first record of block shares a prefix")
	}
	if shared > uint64(len(d.key)) {
		return false, corruptf("shared prefix %d exceeds previous key length %d", shared, len(d.key))
	}
	suffixLen := uint64(code & recSuffixMask)
	if suffixLen == recSuffixEsc {
		var n int
		if suffixLen, n = binary.Uvarint(d.raw); n <= 0 {
			return false, corruptf("bad key suffix length")
		}
		d.raw = d.raw[n:]
	}
	if suffixLen > uint64(len(d.raw)) {
		return false, corruptf("key suffix overruns block")
	}
	d.key = append(d.key[:shared], d.raw[:suffixLen]...)
	d.raw = d.raw[suffixLen:]

	if code&recSameValue != 0 {
		if first {
			return false, corruptf("first record of block elides its value")
		}
		// d.val already holds the previous record's value.
	} else {
		valLen, n := binary.Uvarint(d.raw)
		if n <= 0 || valLen > uint64(len(d.raw[n:])) {
			return false, corruptf("bad value length")
		}
		d.raw = d.raw[n:]
		d.val = d.raw[:valLen:valLen]
		d.raw = d.raw[valLen:]
	}
	d.started = true
	d.remain--
	return true, nil
}

// blockFetcher fetches the raw byte region [start, end) of a run.
// Implementations stream sequentially with readahead; fetching a
// region behind the previous one is not required.
type blockFetcher interface {
	fetch(start, end uint64) ([]byte, error)
	close()
}

// memFetcher serves block regions from an in-memory encoded run.
type memFetcher struct{ data []byte }

func (m *memFetcher) fetch(start, end uint64) ([]byte, error) {
	if start > end || end > uint64(len(m.data)) {
		return nil, corruptf("block region [%d,%d) outside run of %d bytes", start, end, len(m.data))
	}
	return m.data[start:end:end], nil
}

func (m *memFetcher) close() {}

// fileFetcher streams block regions from a run file through a
// readahead buffer, seeking only when a region is skipped.
type fileFetcher struct {
	f   *os.File
	br  *bufio.Reader
	pos uint64 // next byte the buffered reader will deliver
	buf []byte
}

func (ff *fileFetcher) fetch(start, end uint64) ([]byte, error) {
	if start > end {
		return nil, corruptf("inverted block region [%d,%d)", start, end)
	}
	if ff.br == nil || start != ff.pos {
		if _, err := ff.f.Seek(int64(start), io.SeekStart); err != nil {
			return nil, err
		}
		if ff.br == nil {
			ff.br = bufio.NewReaderSize(ff.f, runReadahead)
		} else {
			ff.br.Reset(ff.f)
		}
		ff.pos = start
	}
	n := int(end - start)
	if cap(ff.buf) < n {
		ff.buf = make([]byte, n)
	}
	ff.buf = ff.buf[:n]
	if _, err := io.ReadFull(ff.br, ff.buf); err != nil {
		return nil, corruptf("read block region [%d,%d): %v", start, end, err)
	}
	ff.pos = end
	return ff.buf, nil
}

func (ff *fileFetcher) close() { ff.f.Close() }

// blockSource streams the records of one sealed run, optionally
// restricted to the key range [lo, hi) under cmp using the footer
// index to skip whole blocks. It implements source.
type blockSource struct {
	footer  *runFooter
	fetcher blockFetcher
	dec     blockDecoder
	stats   *IOStats

	cmp    Compare
	lo, hi []byte // nil = unbounded; lo inclusive, hi exclusive

	next_   int // index of the next block to decode
	end     int // one past the last candidate block
	inBlock bool
	skipLo  bool // still discarding records < lo in the first block
	done    bool
	cleanup func() // removes the backing file, if any
}

// newBlockSource opens a source over an encoded run. The footer is
// parsed via readAt; records then stream through the fetcher.
func newBlockSource(size int64, readAt func(off int64, n int) ([]byte, error),
	fetcher blockFetcher, stats *IOStats, cmp Compare, lo, hi []byte, cleanup func()) (*blockSource, error) {
	footer, err := parseRunFooter(size, readAt)
	if err != nil {
		fetcher.close()
		if cleanup != nil {
			cleanup()
		}
		return nil, err
	}
	// Footer and trailer were really read: account them.
	stats.addRead(int64(size) - int64(footer.indexOff))
	if cmp == nil {
		cmp = defaultCompare
	}
	s := &blockSource{
		footer: footer, fetcher: fetcher, stats: stats,
		cmp: cmp, lo: lo, hi: hi,
		end: len(footer.blocks), cleanup: cleanup,
	}
	if lo != nil {
		// Block i is fully below lo iff the next block's first key is
		// still below lo (its last key can equal the next first key).
		for s.next_+1 < len(footer.blocks) && cmp(footer.blocks[s.next_+1].firstKey, lo) < 0 {
			s.next_++
		}
		s.skipLo = true
	}
	if hi != nil {
		// Block j is fully at-or-above hi iff its first key is ≥ hi.
		for s.end > s.next_ && cmp(footer.blocks[s.end-1].firstKey, hi) >= 0 {
			s.end--
		}
	}
	return s, nil
}

func (s *blockSource) next() (bool, error) {
	for {
		if s.done {
			return false, nil
		}
		if !s.inBlock {
			if s.next_ >= s.end {
				s.done = true
				return false, nil
			}
			start := s.footer.blocks[s.next_].offset
			end := s.footer.blockEnd(s.next_)
			region, err := s.fetcher.fetch(start, end)
			if err != nil {
				return false, err
			}
			s.stats.addRead(int64(end - start))
			if err := s.dec.reset(region); err != nil {
				return false, err
			}
			s.next_++
			s.inBlock = true
		}
		ok, err := s.dec.next()
		if err != nil {
			return false, err
		}
		if !ok {
			s.inBlock = false
			continue
		}
		if s.skipLo {
			if s.cmp(s.dec.key, s.lo) < 0 {
				continue
			}
			s.skipLo = false
		}
		if s.hi != nil && s.cmp(s.dec.key, s.hi) >= 0 {
			// Keys are sorted: nothing at or past hi is wanted.
			s.done = true
			return false, nil
		}
		return true, nil
	}
}

func (s *blockSource) key() []byte   { return s.dec.key }
func (s *blockSource) value() []byte { return s.dec.val }

func (s *blockSource) close() {
	s.fetcher.close()
	if s.cleanup != nil {
		s.cleanup()
		s.cleanup = nil
	}
	if s.dec.flateR != nil {
		s.dec.flateR.Close()
		s.dec.flateR = nil
	}
}
