package extsort

import (
	"container/heap"
	"fmt"
	"os"
)

// Run is a sealed, immutable sorted run of records: either the sorter's
// final in-memory buffer or one on-disk spill file. Runs are the
// hand-off unit of the map-side shuffle: each map task seals its
// per-partition sorters into runs, and each reduce task merges every
// map task's runs for its partition with MergeRuns.
//
// A Run owns its backing resources (the spill file, if on disk) until
// ownership passes to a merge iterator via MergeRuns or the run is
// released with Discard.
type Run struct {
	// In-memory run (arena/recs) or on-disk run (path); exactly one is
	// populated.
	arena []byte
	recs  []record
	path  string
	n     int
}

// Len returns the number of records in the run. For on-disk runs this
// is the count recorded at spill time.
func (r *Run) Len() int { return r.n }

// InMemory reports whether the run is held in memory rather than in a
// spill file.
func (r *Run) InMemory() bool { return r.path == "" }

// Bytes returns the approximate byte size of the run's record data in
// memory (zero for on-disk runs).
func (r *Run) Bytes() int { return len(r.arena) }

// Discard releases the run's resources. It is a no-op for in-memory
// runs and for runs whose ownership has passed to a merge iterator.
func (r *Run) Discard() {
	if r.path != "" {
		os.Remove(r.path)
		r.path = ""
	}
	r.arena = nil
	r.recs = nil
}

// source returns a stream over the run's records, in sorted order.
func (r *Run) source() (source, error) {
	if r.path == "" {
		return &memSource{arena: r.arena, recs: r.recs}, nil
	}
	return newFileSource(r.path)
}

// Seal finalizes the sorter into its sealed sorted runs without merging
// them: the in-memory buffer is sorted and becomes one in-memory run,
// and each spill file becomes one on-disk run. Ownership of all backing
// resources passes to the returned runs. After Seal, Add and Sort must
// not be called.
//
// Seal is the map-task half of the shuffle hand-off: it costs no disk
// I/O beyond spills that already happened, so small map outputs travel
// to the reduce-side merge entirely in memory.
func (s *Sorter) Seal() ([]*Run, error) {
	if s.closed {
		return nil, fmt.Errorf("extsort: Seal after Sort or Seal")
	}
	s.closed = true
	s.sortInMemory()

	var runs []*Run
	for _, sp := range s.spills {
		runs = append(runs, &Run{path: sp.path, n: sp.recs})
	}
	if len(s.recs) > 0 {
		runs = append(runs, &Run{arena: s.arena, recs: s.recs, n: len(s.recs)})
	}
	s.spills = nil
	s.arena = nil
	s.recs = nil
	return runs, nil
}

// MergeRuns returns an iterator over the k-way merge of the given
// sealed runs, ordered by cmp (nil selects bytewise order). The keys of
// each run must already be sorted under the same cmp. Ownership of all
// runs passes to the iterator — including on error — and their
// resources are released as the merge drains or when the iterator is
// closed; the Run values themselves are emptied, so a later Discard on
// them is a no-op. Zero runs yield an empty iterator.
func MergeRuns(cmp Compare, runs []*Run) (*Iterator, error) {
	if cmp == nil {
		cmp = defaultCompare
	}
	it := &Iterator{cmp: cmp}
	it.h.cmp = cmp
	for i, r := range runs {
		src, err := r.source()
		if err != nil {
			it.Close()
			for _, rest := range runs[i:] {
				rest.Discard()
			}
			return nil, err
		}
		// Ownership of the backing resources is now with src; empty the
		// Run so a stray Discard cannot unlink a file mid-merge.
		r.path = ""
		r.arena = nil
		r.recs = nil
		ok, err := src.next()
		if err != nil {
			src.close()
			it.Close()
			for _, rest := range runs[i+1:] {
				rest.Discard()
			}
			return nil, err
		}
		if ok {
			heap.Push(&it.h, &heapEntry{src: src, order: i})
		} else {
			src.close()
		}
	}
	return it, nil
}
