package extsort

import (
	"bytes"
	"fmt"
	"os"
)

// Run is a sealed, immutable sorted run of records in the block-framed
// run format (see format.go): either an encoded in-memory buffer or
// one on-disk spill file. Runs are the hand-off unit of the map-side
// shuffle: each map task seals its per-partition sorters into runs,
// and each reduce task merges every map task's runs for its partition
// with MergeRuns.
//
// A Run owns its backing resources (the spill file, if on disk) until
// ownership passes to a merge iterator via MergeRuns or the run is
// released with Discard.
type Run struct {
	// Encoded in-memory run (data), on-disk run (path), or remote run
	// (remote + size); exactly one is populated.
	data  []byte
	path  string
	n     int
	stats *IOStats // the sealing sorter's stats; merges account reads here
	// shared marks an on-disk run whose file is owned by someone else
	// (typically the parent of a worker process): neither a merge over
	// the run nor Discard unlinks it, so a failed consumer can be
	// retried against the same file.
	shared bool
	// remote reads the encoded run through a byte-ranged transport
	// (OpenRemoteRun); size is its total encoded length.
	remote ReadAtFunc
	size   int64
}

// Len returns the number of records in the run. For on-disk runs this
// is the count recorded at spill time.
func (r *Run) Len() int { return r.n }

// InMemory reports whether the run is held in memory rather than in a
// spill file or behind a remote transport.
func (r *Run) InMemory() bool { return r.path == "" && r.remote == nil }

// Path returns the spill file backing an on-disk run (empty for
// in-memory runs). Worker processes report it to their parent, which
// re-opens the file in another process with OpenSharedRunFile.
func (r *Run) Path() string { return r.path }

// Bytes returns the encoded byte size of the run's data in memory
// (zero for on-disk runs).
func (r *Run) Bytes() int { return len(r.data) }

// OpenSharedRunFile adopts an existing run-format file — typically
// one written by another process — as an on-disk Run holding the
// given number of sorted records, without transferring ownership: the
// file is left on disk no matter how the run is consumed or
// discarded. The reduce half of the process runner opens its map-run
// inputs this way, so a reduce attempt that dies mid-merge can be
// retried against intact inputs; the parent removes the files once
// the job is over.
func OpenSharedRunFile(path string, records int, stats *IOStats) *Run {
	return &Run{path: path, n: records, stats: stats, shared: true}
}

// Discard releases the run's resources. It is a no-op for runs whose
// ownership has passed to a merge iterator, and never unlinks a
// shared run's file.
func (r *Run) Discard() {
	if r.path != "" {
		if !r.shared {
			os.Remove(r.path)
		}
		r.path = ""
	}
	r.data = nil
	r.remote = nil
}

// source returns a stream over the run's records in sorted order,
// restricted to [lo, hi) under cmp when bounds are given (nil bounds
// stream everything).
func (r *Run) source(cmp Compare, lo, hi []byte) (source, error) {
	if r.remote != nil {
		return openRemoteRunSource(r.size, r.remote, r.stats, cmp, lo, hi)
	}
	if r.path == "" {
		return openMemRunSource(r.data, r.stats, cmp, lo, hi)
	}
	return openFileRunSource(r.path, r.stats, cmp, lo, hi, !r.shared)
}

// Seal finalizes the sorter into its sealed sorted runs without merging
// them: the in-memory buffer is sorted and encoded into one in-memory
// run in the block-framed run format, and each spill file becomes one
// on-disk run. Ownership of all backing resources passes to the
// returned runs. After Seal, Add and Sort must not be called.
//
// Seal is the map-task half of the shuffle hand-off: it costs no disk
// I/O beyond spills that already happened, so small map outputs travel
// to the reduce-side merge entirely in memory — front-coded, so the
// resident hand-off bytes (and the measured transfer) shrink with the
// keys' shared prefixes.
func (s *Sorter) Seal() ([]*Run, error) {
	if s.closed {
		return nil, fmt.Errorf("extsort: Seal after Sort or Seal")
	}
	s.closed = true
	s.sortInMemory()

	var runs []*Run
	for _, sp := range s.spills {
		runs = append(runs, &Run{path: sp.path, n: sp.recs, stats: s.opts.Stats})
	}
	if len(s.recs) > 0 {
		var buf bytes.Buffer
		rw := newRunWriter(&buf, s.opts.Codec, 0)
		for _, r := range s.recs {
			key := s.arena[r.keyOff : r.keyOff+r.keyLen]
			val := s.arena[r.valOff : r.valOff+r.valLen]
			if err := rw.append(key, val); err != nil {
				return nil, fmt.Errorf("extsort: seal in-memory run: %w", err)
			}
		}
		written, err := rw.finish()
		if err != nil {
			return nil, fmt.Errorf("extsort: seal in-memory run: %w", err)
		}
		s.opts.Stats.addWritten(written)
		runs = append(runs, &Run{data: buf.Bytes(), n: len(s.recs), stats: s.opts.Stats})
	}
	s.spills = nil
	s.arena = nil
	s.recs = nil
	return runs, nil
}

// MergeRuns returns an iterator over the k-way merge of the given
// sealed runs, ordered by cmp (nil selects bytewise order). The keys of
// each run must already be sorted under the same cmp. Ownership of all
// runs passes to the iterator — including on error — and their
// resources are released as the merge drains or when the iterator is
// closed; the Run values themselves are emptied, so a later Discard on
// them is a no-op. Zero runs yield an empty iterator.
func MergeRuns(cmp Compare, runs []*Run) (*Iterator, error) {
	return MergeRunsRange(cmp, runs, nil, nil)
}

// MergeRunsRange is MergeRuns restricted to keys in [lo, hi) under cmp
// (a nil bound is unbounded). Each run's footer index is consulted to
// skip whole blocks outside the range, so a reader that needs one key
// range of a large spilled run decodes only the blocks that can
// contain it.
//
// When the fan-in is large and more than one CPU is available, the
// merge splits its inputs across goroutines (see parallel.go); the
// record stream is byte-identical either way.
func MergeRunsRange(cmp Compare, runs []*Run, lo, hi []byte) (*Iterator, error) {
	if cmp == nil {
		cmp = defaultCompare
	}
	if g := mergeGroups(len(runs)); g > 1 {
		return mergeRunsParallel(cmp, runs, lo, hi, g)
	}
	return mergeRunsSequential(cmp, runs, lo, hi)
}

// mergeRunsSequential opens every run in the calling goroutine and
// merges them through one loser tree.
func mergeRunsSequential(cmp Compare, runs []*Run, lo, hi []byte) (*Iterator, error) {
	it := &Iterator{cmp: cmp}
	for i, r := range runs {
		src, err := r.source(cmp, lo, hi)
		if err != nil {
			it.Close()
			// The failed run's resources were already released by the
			// source constructor; discard the rest.
			r.path = ""
			r.data = nil
			for _, rest := range runs[i+1:] {
				rest.Discard()
			}
			return nil, err
		}
		// Ownership of the backing resources is now with src; empty the
		// Run so a stray Discard cannot unlink a file mid-merge.
		r.path = ""
		r.data = nil
		ok, err := src.next()
		if err != nil {
			src.close()
			it.Close()
			for _, rest := range runs[i+1:] {
				rest.Discard()
			}
			return nil, err
		}
		if ok {
			it.addSource(src)
		} else {
			src.close()
		}
	}
	return it, nil
}
