package extsort

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// encodeTestRun writes n sorted records through RunWriter and returns
// the encoded run plus the records for verification.
func encodeTestRun(t *testing.T, n int, codec Codec) ([]byte, [][2][]byte) {
	t.Helper()
	var buf bytes.Buffer
	w := NewRunWriter(&buf, codec)
	var recs [][2][]byte
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%06d", i))
		val := []byte(fmt.Sprintf("val-%d", i%7))
		recs = append(recs, [2][]byte{key, val})
		if err := w.Append(key, val); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if got := w.Records(); got != int64(n) {
		t.Fatalf("Records() = %d, want %d", got, n)
	}
	size, err := w.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if size != int64(buf.Len()) {
		t.Fatalf("Finish size %d != encoded length %d", size, buf.Len())
	}
	return buf.Bytes(), recs
}

func memReadAt(data []byte) ReadAtFunc {
	return func(off int64, n int) ([]byte, error) {
		if off < 0 || off+int64(n) > int64(len(data)) {
			return nil, fmt.Errorf("region [%d,+%d) outside %d bytes", off, n, len(data))
		}
		return data[off : off+int64(n) : off+int64(n)], nil
	}
}

func TestRunReaderRoundTrip(t *testing.T) {
	for _, codec := range []Codec{CodecRaw, CodecFlate} {
		t.Run(codec.String(), func(t *testing.T) {
			const n = 20000 // several blocks
			data, recs := encodeTestRun(t, n, codec)
			r, err := OpenRunReader(int64(len(data)), memReadAt(data))
			if err != nil {
				t.Fatalf("OpenRunReader: %v", err)
			}
			if r.Records() != n {
				t.Fatalf("Records() = %d, want %d", r.Records(), n)
			}
			if r.NumBlocks() < 2 {
				t.Fatalf("expected multiple blocks, got %d", r.NumBlocks())
			}
			// Every record is found in exactly the block FindBlock names.
			i := 0
			for b := 0; b < r.NumBlocks(); b++ {
				blk, err := r.ReadBlock(b)
				if err != nil {
					t.Fatalf("ReadBlock(%d): %v", b, err)
				}
				if !bytes.Equal(r.FirstKey(b), blk.Key(0)) {
					t.Fatalf("block %d footer first key %q != decoded %q", b, r.FirstKey(b), blk.Key(0))
				}
				for j := 0; j < blk.Len(); j++ {
					if !bytes.Equal(blk.Key(j), recs[i][0]) || !bytes.Equal(blk.Value(j), recs[i][1]) {
						t.Fatalf("record %d mismatch: got (%q,%q) want (%q,%q)",
							i, blk.Key(j), blk.Value(j), recs[i][0], recs[i][1])
					}
					if fb := r.FindBlock(recs[i][0], nil); fb != b {
						t.Fatalf("FindBlock(%q) = %d, want %d", recs[i][0], fb, b)
					}
					if pos, ok := blk.Search(recs[i][0], nil); !ok || pos != j {
						t.Fatalf("Search(%q) = (%d,%v), want (%d,true)", recs[i][0], pos, ok, j)
					}
					i++
				}
			}
			if i != n {
				t.Fatalf("decoded %d records, want %d", i, n)
			}
			// Absent keys: before the first block, and between records.
			if fb := r.FindBlock([]byte("a"), nil); fb != -1 {
				t.Fatalf("FindBlock(before first) = %d, want -1", fb)
			}
			blk, err := r.ReadBlock(0)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := blk.Search([]byte("key-000000x"), nil); ok {
				t.Fatal("Search found a key that was never written")
			}
		})
	}
}

func TestRunReaderConcurrentReadBlock(t *testing.T) {
	data, _ := encodeTestRun(t, 30000, CodecRaw)
	r, err := OpenRunReader(int64(len(data)), memReadAt(data))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for pass := 0; pass < 3; pass++ {
				for b := 0; b < r.NumBlocks(); b++ {
					blk, err := r.ReadBlock(b)
					if err != nil {
						t.Errorf("goroutine %d: ReadBlock(%d): %v", g, b, err)
						return
					}
					// Spot-check one record of the block via Search.
					j := (g + pass) % blk.Len()
					if _, ok := blk.Search(blk.Key(j), nil); !ok {
						t.Errorf("goroutine %d: block %d key %d not found by Search", g, b, j)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestRunReaderCorruptFooter(t *testing.T) {
	data, _ := encodeTestRun(t, 1000, CodecRaw)
	// Truncation anywhere must error at open (the trailer records the
	// exact layout) — sample a few cut points including inside blocks.
	for _, cut := range []int{0, 1, len(data) / 3, len(data) - 1} {
		if _, err := OpenRunReader(int64(cut), memReadAt(data[:cut])); err == nil {
			t.Fatalf("OpenRunReader succeeded on %d-byte truncation", cut)
		}
	}
}
