package extsort

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"ngramstats/internal/encoding"
	"ngramstats/internal/sequence"
)

type kv struct{ k, v string }

func drain(t *testing.T, it *Iterator) []kv {
	t.Helper()
	var out []kv
	for it.Next() {
		out = append(out, kv{string(it.Key()), string(it.Value())})
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	it.Close()
	return out
}

func TestSortInMemory(t *testing.T) {
	s := NewSorter(Options{MemoryBudget: 1 << 20, TempDir: t.TempDir()})
	in := []kv{{"c", "3"}, {"a", "1"}, {"b", "2"}, {"a", "0"}}
	for _, r := range in {
		if err := s.Add([]byte(r.k), []byte(r.v)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Spills() != 0 {
		t.Fatalf("unexpected spills: %d", s.Spills())
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, it)
	want := []kv{{"a", "1"}, {"a", "0"}, {"b", "2"}, {"c", "3"}}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestSortWithSpills(t *testing.T) {
	dir := t.TempDir()
	spills := 0
	s := NewSorter(Options{
		MemoryBudget: 256, // force frequent spills
		TempDir:      dir,
		OnSpill:      func(n int) { spills++ },
	})
	rng := rand.New(rand.NewSource(42))
	var want []kv
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("key-%04d", rng.Intn(500))
		v := fmt.Sprintf("val-%d", i)
		want = append(want, kv{k, v})
		if err := s.Add([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Spills() == 0 || spills != s.Spills() {
		t.Fatalf("expected spills, got %d (callback %d)", s.Spills(), spills)
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, it)
	if len(got) != len(want) {
		t.Fatalf("record count: got %d, want %d", len(got), len(want))
	}
	// Keys must be globally sorted.
	for i := 1; i < len(got); i++ {
		if got[i-1].k > got[i].k {
			t.Fatalf("out of order at %d: %q > %q", i, got[i-1].k, got[i].k)
		}
	}
	// Multiset of records must be preserved (a permutation sort).
	sortKVs := func(s []kv) {
		sort.Slice(s, func(i, j int) bool {
			if s[i].k != s[j].k {
				return s[i].k < s[j].k
			}
			return s[i].v < s[j].v
		})
	}
	g2 := append([]kv(nil), got...)
	w2 := append([]kv(nil), want...)
	sortKVs(g2)
	sortKVs(w2)
	if fmt.Sprint(g2) != fmt.Sprint(w2) {
		t.Fatal("sorted output is not a permutation of input")
	}
	// All spill files must be removed after Close.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill files remain: %v", ents)
	}
}

func TestSortEmpty(t *testing.T) {
	s := NewSorter(Options{TempDir: t.TempDir()})
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	if it.Next() {
		t.Fatal("empty sorter produced a record")
	}
	it.Close()
}

func TestSortCustomComparator(t *testing.T) {
	// Sort encoded term sequences in reverse lexicographic order, as the
	// SUFFIX-σ shuffle does.
	s := NewSorter(Options{
		MemoryBudget: 128, // force spills so merge also uses the comparator
		TempDir:      t.TempDir(),
		Compare:      encoding.CompareSeqBytesReverse,
	})
	seqs := []sequence.Seq{
		{1, 0, 0}, {1, 0}, {1, 2, 0}, {1}, {2}, {0, 5}, {1, 2},
	}
	for _, q := range seqs {
		if err := s.Add(encoding.EncodeSeq(q), nil); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	var got []sequence.Seq
	for it.Next() {
		q, err := encoding.DecodeSeq(it.Key())
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, q)
	}
	it.Close()
	want := append([]sequence.Seq(nil), seqs...)
	sort.Slice(want, func(i, j int) bool {
		return sequence.CompareReverseLex(want[i], want[j]) < 0
	})
	if len(got) != len(want) {
		t.Fatalf("count mismatch: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if !sequence.Equal(got[i], want[i]) {
			t.Fatalf("position %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestStabilityAcrossEqualKeys(t *testing.T) {
	// Values of equal keys must come out in insertion order when no
	// spills occur (stable in-memory sort), which the combiner relies on
	// only for determinism of tests, not correctness.
	s := NewSorter(Options{MemoryBudget: 1 << 20, TempDir: t.TempDir()})
	for i := 0; i < 10; i++ {
		if err := s.Add([]byte("k"), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for it.Next() {
		if it.Value()[0] != byte(i) {
			t.Fatalf("value order not stable at %d", i)
		}
		i++
	}
	it.Close()
}

func TestAddAfterSortFails(t *testing.T) {
	s := NewSorter(Options{TempDir: t.TempDir()})
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	it.Close()
	if err := s.Add([]byte("k"), nil); err == nil {
		t.Fatal("Add after Sort should fail")
	}
	if _, err := s.Sort(); err == nil {
		t.Fatal("double Sort should fail")
	}
}

func TestDiscardRemovesSpills(t *testing.T) {
	dir := t.TempDir()
	s := NewSorter(Options{MemoryBudget: 64, TempDir: dir})
	for i := 0; i < 100; i++ {
		if err := s.Add([]byte(fmt.Sprintf("key-%d", i)), bytes.Repeat([]byte("v"), 16)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Spills() == 0 {
		t.Fatal("expected spills")
	}
	s.Discard()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill files remain after Discard: %v", ents)
	}
}

func TestLargeValues(t *testing.T) {
	s := NewSorter(Options{MemoryBudget: 1 << 10, TempDir: t.TempDir()})
	big := bytes.Repeat([]byte("x"), 10<<10)
	for i := 0; i < 5; i++ {
		if err := s.Add([]byte{byte(5 - i)}, big); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for it.Next() {
		if len(it.Value()) != len(big) {
			t.Fatalf("value length %d", len(it.Value()))
		}
		n++
	}
	it.Close()
	if n != 5 {
		t.Fatalf("got %d records", n)
	}
}

func TestSpillFileNamesScoped(t *testing.T) {
	dir := t.TempDir()
	s := NewSorter(Options{MemoryBudget: 32, TempDir: dir})
	for i := 0; i < 50; i++ {
		if err := s.Add([]byte{byte(i)}, []byte("0123456789")); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Fatal("expected spill files on disk")
	}
	for _, e := range ents {
		if m, _ := filepath.Match("extsort-spill-*", e.Name()); !m {
			t.Fatalf("unexpected spill name %q", e.Name())
		}
	}
	s.Discard()
}
