package extsort

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

// benchRecords builds n records with small keys and values.
func benchRecords(n int) [][2][]byte {
	rng := rand.New(rand.NewSource(2))
	out := make([][2][]byte, n)
	for i := range out {
		k := binary.AppendUvarint(nil, uint64(rng.Intn(n)))
		v := binary.AppendUvarint(nil, 1)
		out[i] = [2][]byte{k, v}
	}
	return out
}

// BenchmarkSortInMemory measures pure in-memory sorting throughput
// (the common case of small shuffle partitions).
func BenchmarkSortInMemory(b *testing.B) {
	recs := benchRecords(10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSorter(Options{MemoryBudget: 1 << 30, TempDir: b.TempDir()})
		for _, r := range recs {
			if err := s.Add(r[0], r[1]); err != nil {
				b.Fatal(err)
			}
		}
		it, err := s.Sort()
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for it.Next() {
			n++
		}
		it.Close()
		if n != len(recs) {
			b.Fatalf("lost records: %d", n)
		}
	}
}

// BenchmarkSortWithSpills measures the spill-and-merge path with a
// deliberately tiny budget.
func BenchmarkSortWithSpills(b *testing.B) {
	recs := benchRecords(10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSorter(Options{MemoryBudget: 64 << 10, TempDir: b.TempDir()})
		for _, r := range recs {
			if err := s.Add(r[0], r[1]); err != nil {
				b.Fatal(err)
			}
		}
		it, err := s.Sort()
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for it.Next() {
			n++
		}
		it.Close()
		if n != len(recs) {
			b.Fatalf("lost records: %d", n)
		}
	}
}
