package extsort

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"testing"
)

func drainRuns(t *testing.T, cmp Compare, runs []*Run) []kv {
	t.Helper()
	it, err := MergeRuns(cmp, runs)
	if err != nil {
		t.Fatal(err)
	}
	return drain(t, it)
}

func TestSealEmptySorter(t *testing.T) {
	s := NewSorter(Options{TempDir: t.TempDir()})
	runs, err := s.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 0 {
		t.Fatalf("empty sorter sealed %d runs", len(runs))
	}
	if got := drainRuns(t, nil, runs); len(got) != 0 {
		t.Fatalf("empty merge produced %v", got)
	}
}

func TestMergeRunsZeroRuns(t *testing.T) {
	it, err := MergeRuns(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if it.Next() {
		t.Fatal("zero-run merge produced a record")
	}
	it.Close()
}

func TestSealSingleInMemoryRun(t *testing.T) {
	s := NewSorter(Options{MemoryBudget: 1 << 20, TempDir: t.TempDir()})
	in := []kv{{"c", "3"}, {"a", "1"}, {"b", "2"}}
	for _, r := range in {
		if err := s.Add([]byte(r.k), []byte(r.v)); err != nil {
			t.Fatal(err)
		}
	}
	runs, err := s.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || !runs[0].InMemory() || runs[0].Len() != 3 {
		t.Fatalf("runs = %+v", runs)
	}
	got := drainRuns(t, nil, runs)
	want := []kv{{"a", "1"}, {"b", "2"}, {"c", "3"}}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestSealWithSpillsMergesGlobally(t *testing.T) {
	dir := t.TempDir()
	s := NewSorter(Options{MemoryBudget: 256, TempDir: dir})
	rng := rand.New(rand.NewSource(7))
	var want []kv
	for i := 0; i < 1500; i++ {
		k := fmt.Sprintf("key-%04d", rng.Intn(400))
		v := fmt.Sprintf("val-%d", i)
		want = append(want, kv{k, v})
		if err := s.Add([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	runs, err := s.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) < 2 {
		t.Fatalf("expected multiple runs, got %d", len(runs))
	}
	onDisk, total := 0, 0
	for _, r := range runs {
		if !r.InMemory() {
			onDisk++
		}
		total += r.Len()
	}
	if onDisk == 0 {
		t.Fatal("expected on-disk runs")
	}
	if total != len(want) {
		t.Fatalf("run lengths sum to %d, want %d", total, len(want))
	}
	got := drainRuns(t, nil, runs)
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].k > got[i].k {
			t.Fatalf("out of order at %d: %q > %q", i, got[i-1].k, got[i].k)
		}
	}
	sortKVs := func(s []kv) {
		sort.Slice(s, func(i, j int) bool {
			if s[i].k != s[j].k {
				return s[i].k < s[j].k
			}
			return s[i].v < s[j].v
		})
	}
	g2 := append([]kv(nil), got...)
	w2 := append([]kv(nil), want...)
	sortKVs(g2)
	sortKVs(w2)
	if fmt.Sprint(g2) != fmt.Sprint(w2) {
		t.Fatal("merged output is not a permutation of input")
	}
	// The merge iterator owned the spill files; Close must remove them.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill files remain: %v", ents)
	}
}

func TestMergeRunsFromManySorters(t *testing.T) {
	// The shuffle shape: each "map task" seals its own runs, the
	// "reduce task" merges all of them.
	dir := t.TempDir()
	var all []*Run
	var want []kv
	for task := 0; task < 5; task++ {
		s := NewSorter(Options{MemoryBudget: 128, TempDir: dir})
		for i := 0; i < 200; i++ {
			k := fmt.Sprintf("k%03d", (task*37+i*13)%100)
			v := fmt.Sprintf("t%d-%d", task, i)
			want = append(want, kv{k, v})
			if err := s.Add([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
		}
		runs, err := s.Seal()
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, runs...)
	}
	got := drainRuns(t, nil, all)
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].k > got[i].k {
			t.Fatalf("out of order at %d", i)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill files remain: %v", ents)
	}
}

func TestMergeRunsCustomComparator(t *testing.T) {
	desc := func(a, b []byte) int { return bytes.Compare(b, a) }
	var all []*Run
	for task := 0; task < 3; task++ {
		s := NewSorter(Options{MemoryBudget: 1 << 20, TempDir: t.TempDir(), Compare: desc})
		for i := 0; i < 10; i++ {
			if err := s.Add([]byte(fmt.Sprintf("k%d-%d", i, task)), nil); err != nil {
				t.Fatal(err)
			}
		}
		runs, err := s.Seal()
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, runs...)
	}
	got := drainRuns(t, desc, all)
	if len(got) != 30 {
		t.Fatalf("got %d records", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].k < got[i].k {
			t.Fatalf("not descending at %d: %q < %q", i, got[i-1].k, got[i].k)
		}
	}
}

func TestRunDiscardRemovesSpillFile(t *testing.T) {
	dir := t.TempDir()
	s := NewSorter(Options{MemoryBudget: 64, TempDir: dir})
	for i := 0; i < 100; i++ {
		if err := s.Add([]byte(fmt.Sprintf("key-%d", i)), bytes.Repeat([]byte("v"), 16)); err != nil {
			t.Fatal(err)
		}
	}
	runs, err := s.Seal()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		r.Discard()
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill files remain after Discard: %v", ents)
	}
}

func TestExplicitSpillThenSeal(t *testing.T) {
	s := NewSorter(Options{MemoryBudget: 1 << 20, TempDir: t.TempDir()})
	for i := 0; i < 10; i++ {
		if err := s.Add([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Spill(); err != nil {
		t.Fatal(err)
	}
	if s.MemoryInUse() != 0 {
		t.Fatalf("MemoryInUse = %d after Spill", s.MemoryInUse())
	}
	if err := s.Spill(); err != nil { // empty buffer: no-op
		t.Fatal(err)
	}
	for i := 10; i < 20; i++ {
		if err := s.Add([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	runs, err := s.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("expected 1 disk + 1 memory run, got %d", len(runs))
	}
	if got := drainRuns(t, nil, runs); len(got) != 20 {
		t.Fatalf("got %d records", len(got))
	}
}

func TestSealAfterSortFails(t *testing.T) {
	s := NewSorter(Options{TempDir: t.TempDir()})
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	it.Close()
	if _, err := s.Seal(); err == nil {
		t.Fatal("Seal after Sort should fail")
	}
	if err := s.Spill(); err == nil {
		t.Fatal("Spill after Sort should fail")
	}
}

func TestAddAfterSealFails(t *testing.T) {
	s := NewSorter(Options{TempDir: t.TempDir()})
	if _, err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := s.Add([]byte("k"), nil); err == nil {
		t.Fatal("Add after Seal should fail")
	}
}
