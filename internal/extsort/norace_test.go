//go:build !race

package extsort

const raceEnabled = false
