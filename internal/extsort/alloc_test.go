package extsort

import (
	"bytes"
	"fmt"
	"testing"
)

// TestReadBlockAllocs gates the per-ReadBlock allocation count: the
// pooled decoder keeps its scratch (key buffer, decompression buffer,
// flate reader) across calls, so a steady-state decode pays only for
// the immutable DecodedBlock it returns (struct, arena, record spans).
func TestReadBlockAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	for _, tc := range []struct {
		codec Codec
		limit float64 // flate's Reset path allocates a few internals
	}{{CodecRaw, 8}, {CodecFlate, 12}} {
		codec, limit := tc.codec, tc.limit
		t.Run(codec.String(), func(t *testing.T) {
			data, _ := encodeTestRun(t, 20000, codec)
			rr, err := OpenRunReader(int64(len(data)), memReadAt(data))
			if err != nil {
				t.Fatal(err)
			}
			if rr.NumBlocks() < 2 {
				t.Fatalf("want multiple blocks, got %d", rr.NumBlocks())
			}
			b := 0
			avg := testing.AllocsPerRun(100, func() {
				if _, err := rr.ReadBlock(b % rr.NumBlocks()); err != nil {
					t.Fatal(err)
				}
				b++
			})
			// DecodedBlock struct + presized arena and spans + at most a
			// couple of arena growth steps.
			if avg > limit {
				t.Fatalf("ReadBlock allocates %.1f times per block, want <= %v", avg, limit)
			}
		})
	}
}

// TestRunWriterAppendAllocs gates the encode side: with the pooled
// block buffer warmed up, appending a record allocates nothing.
func TestRunWriterAppendAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	var buf bytes.Buffer
	buf.Grow(8 << 20)
	rw := NewRunWriter(&buf, CodecRaw)
	i := 0
	add := func() {
		k := fmt.Sprintf("key-%06d", i)
		if err := rw.Append([]byte(k), []byte("v")); err != nil {
			t.Fatal(err)
		}
		i++
	}
	for i < 20000 {
		add()
	}
	avg := testing.AllocsPerRun(5000, add)
	// fmt.Sprintf + the []byte conversions belong to the test harness
	// (3 allocs); the writer itself must add only the amortized footer
	// index entry on a block flush.
	if avg > 4 {
		t.Fatalf("Append allocates %.1f times per record, want <= 4", avg)
	}
}
