package extsort

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// writeTestRun encodes n sorted records into a run file and returns its
// path and size.
func writeTestRun(t *testing.T, n int) (string, int64) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := NewRunWriter(f, CodecRaw)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%06d", i)
		val := fmt.Sprintf("value-%d", i)
		if err := w.Append([]byte(key), []byte(val)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, st.Size()
}

// rangeReadAt returns a ReadAtFunc issuing HTTP Range requests against
// url, the same access pattern the net runner's reduce workers use.
func rangeReadAt(t *testing.T, url string) ReadAtFunc {
	t.Helper()
	return func(off int64, n int) ([]byte, error) {
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", off, off+int64(n)-1))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusPartialContent {
			return nil, fmt.Errorf("range [%d,+%d): status %s", off, n, resp.Status)
		}
		return io.ReadAll(resp.Body)
	}
}

func serveBytes(t *testing.T, data []byte) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.ServeContent(w, r, "run", time.Time{}, bytes.NewReader(data))
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestRemoteRunRoundtrip(t *testing.T) {
	const n = 5000 // several blocks worth
	path, size := writeTestRun(t, n)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	srv := serveBytes(t, data)

	stats := &IOStats{}
	run := OpenRemoteRun(size, n, rangeReadAt(t, srv.URL), stats)
	it, err := MergeRuns(nil, []*Run{run})
	if err != nil {
		t.Fatalf("MergeRuns: %v", err)
	}
	defer it.Close()
	got := 0
	for it.Next() {
		want := fmt.Sprintf("key-%06d", got)
		if string(it.Key()) != want {
			t.Fatalf("record %d: key %q, want %q", got, it.Key(), want)
		}
		got++
	}
	if err := it.Err(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got != n {
		t.Fatalf("drained %d records, want %d", got, n)
	}
	// A fully drained remote run accounts every encoded byte exactly
	// once, the same invariant local runs uphold.
	if stats.BytesRead() != size {
		t.Fatalf("BytesRead = %d, want %d", stats.BytesRead(), size)
	}
}

func TestRemoteRunCorruptFetchSurfaces(t *testing.T) {
	const n = 5000
	path, size := writeTestRun(t, n)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle of the block region, leaving the
	// footer (at the tail) parseable: the merge must fail with
	// ErrCorruptRun instead of yielding wrong records.
	data[size/3] ^= 0xff
	srv := serveBytes(t, data)

	run := OpenRemoteRun(size, n, rangeReadAt(t, srv.URL), &IOStats{})
	it, err := MergeRuns(nil, []*Run{run})
	if err == nil {
		for it.Next() {
		}
		err = it.Err()
		it.Close()
	}
	if !errors.Is(err, ErrCorruptRun) {
		t.Fatalf("corrupted transfer: err = %v, want ErrCorruptRun", err)
	}
}

func TestRemoteRunTruncatedFetchSurfaces(t *testing.T) {
	const n = 2000
	path, size := writeTestRun(t, n)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	srv := serveBytes(t, data)

	// Lie about the size: the footer parse reads the trailer from the
	// wrong offset and must refuse.
	run := OpenRemoteRun(size+100, n, rangeReadAt(t, srv.URL), &IOStats{})
	_, err = MergeRuns(nil, []*Run{run})
	if !errors.Is(err, ErrCorruptRun) {
		t.Fatalf("truncated transfer: err = %v, want ErrCorruptRun", err)
	}
}
