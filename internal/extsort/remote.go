package extsort

import "fmt"

// OpenRemoteRun adopts an encoded run that lives behind a byte-ranged
// transport — typically another worker's HTTP shuffle service — as a
// remote Run of the given total encoded size holding records sorted
// records. readAt must return exactly the requested region of the
// encoded run; the caller supplies readahead (the block reader fetches
// mostly-sequential regions). Merging a remote run verifies the same
// footer index, trailer checksum, and per-block CRCs as a local one,
// so a corrupted or truncated transfer surfaces as ErrCorruptRun
// rather than wrong records. Like a shared file run, a remote run's
// backing bytes are owned by the producer: Discard releases nothing
// remote, and a failed consumer can be retried against the same
// source.
func OpenRemoteRun(size int64, records int, readAt ReadAtFunc, stats *IOStats) *Run {
	return &Run{remote: readAt, size: size, n: records, stats: stats, shared: true}
}

// remoteFetcher adapts a ReadAtFunc to the blockFetcher surface.
type remoteFetcher struct {
	readAt ReadAtFunc
	size   int64
}

func (f *remoteFetcher) fetch(start, end uint64) ([]byte, error) {
	if start > end || end > uint64(f.size) {
		return nil, corruptf("block region [%d,%d) outside run of %d bytes", start, end, f.size)
	}
	region, err := f.readAt(int64(start), int(end-start))
	if err != nil {
		return nil, err
	}
	if uint64(len(region)) != end-start {
		return nil, corruptf("short read of block region [%d,%d): got %d bytes", start, end, len(region))
	}
	return region, nil
}

func (f *remoteFetcher) close() {}

// openRemoteRunSource opens a block source over a remote encoded run.
func openRemoteRunSource(size int64, readAt ReadAtFunc, stats *IOStats, cmp Compare, lo, hi []byte) (source, error) {
	src, err := newBlockSource(size, readAt, &remoteFetcher{readAt: readAt, size: size}, stats, cmp, lo, hi, nil)
	if err != nil {
		return nil, fmt.Errorf("extsort: open remote run: %w", err)
	}
	return src, nil
}
