// Package serving implements the HTTP query surface of the n-gram
// index daemon (cmd/ngramsd): a versioned /v1 API over one or more
// persistent index directories, with zero-downtime index reloads,
// batched queries, per-endpoint load shedding, and a language-model
// front end.
//
// # Versioned API
//
//	GET  /v1/lookup?q=phrase[&index=name]        one phrase's statistics
//	GET  /v1/prefix?q=phrase[&limit=n][&index=]  phrases extending q
//	GET  /v1/topk?k=n[&index=name]               most frequent n-grams
//	POST /v1/query                               batch of ops, one round trip
//	GET  /v1/lm/score?q=phrase[&index=name]      Katz log-probability
//	GET  /v1/lm/predict?q=context[&k=n][&index=] next-word candidates
//	POST /v1/ingest                              fold a document batch into the live sketch
//	GET  /v1/approx/lookup?q=phrase              approximate count with error bound
//	GET  /v1/approx/topk?k=n                     approximate heavy hitters
//	POST /v1/admin/reload[?index=name]           swap to the on-disk index
//	POST /v1/admin/reconcile                     run the exact job over ingested documents now
//	POST /v1/admin/compact[?index=name]          merge an LSM chain's deltas into one base now
//	GET  /v1/healthz (alias /healthz)            liveness + generations
//	GET  /metrics                                Prometheus-style text
//
// Every /v1 response decodes into a typed struct from wire.go and
// carries the index generation it was answered from. The pre-/v1
// endpoints (/lookup, /prefix, /topk) remain as byte-compatible
// aliases that emit a "Deprecation: true" header and count into
// ngramsd_legacy_requests_total.
//
// # Generations and hot swap
//
// Each served index is a sequence of generations. A generation is an
// open ngramstats.Index (plus its derived language model, if enabled);
// the active one is published through an atomic pointer, and every
// request pins its generation with a reference count for the duration
// of the request. Reload — triggered by POST /v1/admin/reload or the
// manifest Watch loop — opens the index directory anew, swaps the
// pointer, and drops the retiring generation's base reference: its
// files close when the last in-flight request drains. Requests never
// observe a half-swapped index and never fail because of a swap.
//
// # Load shedding
//
// Query endpoints admit at most MaxInflight concurrent requests each;
// up to MaxQueue more wait up to QueueTimeout for a slot. Beyond that
// the request is shed with 429 and a Retry-After header — the server
// degrades by refusing excess work early instead of queueing without
// bound. /healthz, /metrics, and the admin endpoints are never shed.
// /v1/ingest has its own gate, so write pressure shedding is visible
// separately from query shedding; ngramsd_shed_reason_total further
// splits sheds into queue_full versus timeout.
//
// # Live ingestion
//
// With ServerOptions.Live, the daemon additionally accepts a live
// document stream: POST /v1/ingest folds batches into a one-pass
// count-min sketch (ngramstats.StreamIngester), and /v1/approx/lookup
// and /v1/approx/topk answer immediately with one-sided estimates plus
// a stated ε·N error bound — every response carries approx: true. A
// reconciliation loop (or POST /v1/admin/reconcile) periodically runs
// the exact MapReduce job over everything ingested, saves the result
// over the live index directory, hot-swaps it in through the
// generation machinery, and resets the sketch delta: approximate
// answers degrade gracefully to exact + a delta covering only the
// documents ingested since the last reconcile.
//
// # Incremental indexes
//
// A served directory may be an LSM chain (ngramstats.AppendDelta): a
// base index plus delta generations behind one chain manifest. Queries
// are answered from the chain's merge-on-read view exactly as from a
// plain index; the Watch loop follows the chain manifest instead of
// the index manifest, so appends and compactions hot-swap in like any
// other reload. With LiveConfig.Incremental, the reconciliation loop
// appends only the documents ingested since the previous reconcile as
// a delta generation — O(new documents) instead of a full rebuild —
// and CompactLoop (policy: delta count or delta/base record ratio,
// ServerOptions.Compact) merges chains back into a single base in the
// background, swapping through the generation machinery with zero
// failed requests.
package serving

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ngramstats"
	"ngramstats/internal/index"
	"ngramstats/internal/lsm"
)

// Defaults for the corresponding ServerOptions fields.
const (
	DefaultMaxInflight  = 64
	DefaultQueueTimeout = 100 * time.Millisecond
	DefaultRetryAfter   = time.Second
	DefaultMaxLimit     = 1000
	DefaultMaxK         = 1000
	DefaultMaxBatch     = 256

	defaultPrefixLimit = 100
	defaultTopK        = 10
	defaultPredictK    = 5
)

// IndexConfig locates one served index.
type IndexConfig struct {
	// Dir is the index directory (Result.Save).
	Dir string
	// CacheBlocks bounds the decoded-block cache of each generation
	// opened from Dir (ngramstats.IndexOptions.CacheBlocks).
	CacheBlocks int
}

// ServerOptions configures NewServer. Zero fields select the defaults
// noted; Indexes is required.
type ServerOptions struct {
	// Indexes maps the served index names to their directories. The map
	// is read once by NewServer.
	Indexes map[string]IndexConfig

	// MaxInflight caps concurrently executing requests per query
	// endpoint (default DefaultMaxInflight).
	MaxInflight int
	// MaxQueue caps requests waiting for an execution slot per query
	// endpoint (default 2×MaxInflight; negative disables waiting).
	MaxQueue int
	// QueueTimeout bounds how long a queued request waits for a slot
	// before being shed (default DefaultQueueTimeout).
	QueueTimeout time.Duration
	// RetryAfter is the Retry-After hint sent with 429 responses
	// (default DefaultRetryAfter).
	RetryAfter time.Duration

	// MaxLimit caps the prefix-scan limit parameter (default
	// DefaultMaxLimit). Requests beyond it get 400, not a clamp.
	MaxLimit int
	// MaxK caps the k parameter of topk and lm/predict (default
	// DefaultMaxK). Requests beyond it get 400, not a clamp.
	MaxK int
	// MaxBatch caps the operations per POST /v1/query request (default
	// DefaultMaxBatch).
	MaxBatch int

	// LMOrder, if positive, trains an order-LMOrder language model from
	// every generation as it opens and enables the /v1/lm endpoints.
	// Zero leaves them returning 501.
	LMOrder int

	// WatchInterval is the manifest poll interval the daemon watches
	// with; it is reported in /healthz. Zero means the daemon is not
	// watching (Watch called with an explicit interval still works).
	WatchInterval time.Duration

	// Live enables the live-ingestion endpoints (POST /v1/ingest,
	// GET /v1/approx/*, POST /v1/admin/reconcile) and the exact
	// reconciliation loop. Nil leaves them returning 501.
	Live *LiveConfig

	// Compact configures the background compaction policy applied by
	// CompactLoop to served LSM chains. Nil disables automatic
	// compaction; POST /v1/admin/compact works regardless.
	Compact *CompactConfig

	// Logf, if non-nil, receives operational log lines (reloads, watch
	// errors).
	Logf func(format string, args ...any)
}

func (o ServerOptions) withDefaults() ServerOptions {
	if o.MaxInflight <= 0 {
		o.MaxInflight = DefaultMaxInflight
	}
	if o.MaxQueue == 0 {
		o.MaxQueue = 2 * o.MaxInflight
	}
	if o.MaxQueue < 0 {
		o.MaxQueue = 0
	}
	if o.QueueTimeout <= 0 {
		o.QueueTimeout = DefaultQueueTimeout
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = DefaultRetryAfter
	}
	if o.MaxLimit <= 0 {
		o.MaxLimit = DefaultMaxLimit
	}
	if o.MaxK <= 0 {
		o.MaxK = DefaultMaxK
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = DefaultMaxBatch
	}
	if o.Compact != nil {
		c := *o.Compact
		if c.MaxDeltas <= 0 && c.MaxRatio <= 0 {
			c.MaxDeltas = DefaultCompactDeltas
		}
		if c.Interval <= 0 {
			c.Interval = DefaultCompactInterval
		}
		o.Compact = &c
	}
	return o
}

// generation is one open instance of a served index. Its lifetime is
// reference-counted: it starts with one base reference (held by the
// handle publishing it), every request that queries it holds one more
// for the request's duration, and the underlying files close when the
// count reaches zero — after the handle retires it AND the last
// in-flight request drains.
type generation struct {
	ix  *ngramstats.Index
	lm  *ngramstats.LanguageModel // nil unless ServerOptions.LMOrder > 0
	num int64                     // 1, 2, ... per index

	refs atomic.Int64
}

// tryAcquire takes a reference unless the generation is already
// retired and drained.
func (g *generation) tryAcquire() bool {
	for {
		r := g.refs.Load()
		if r <= 0 {
			return false
		}
		if g.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

func (g *generation) release() {
	if g.refs.Add(-1) == 0 {
		g.ix.Close()
	}
}

// handle is the mutable slot of one served index: the active
// generation, swapped atomically by Reload. A live-fed handle may hold
// no generation before the first reconciliation materializes its
// directory; closed distinguishes that state from a shut-down server.
type handle struct {
	name string
	cfg  IndexConfig
	live bool

	mu     sync.Mutex // serializes Reload
	closed bool       // set by Close, under mu
	gen    atomic.Pointer[generation]
	swaps  atomic.Int64

	// chainMu serializes chain mutations on the directory — delta
	// appends (incremental reconciliation) and compactions — which
	// assume a single writer per chain. Readers never take it.
	chainMu sync.Mutex
	// compacting guards against overlapping compactions of one handle
	// without making admin requests wait behind a running one.
	compacting atomic.Bool
}

// acquire pins the active generation, or returns nil after Close.
func (h *handle) acquire() *generation {
	for {
		g := h.gen.Load()
		if g == nil {
			return nil
		}
		if g.tryAcquire() {
			return g
		}
		// The generation retired between Load and tryAcquire; the
		// pointer already holds (or is about to hold) its successor.
	}
}

// gate is one endpoint's admission control: a semaphore of MaxInflight
// slots with a bounded, timeout-limited wait queue. Sheds are counted
// in total and split by reason: the queue being full (instant refusal)
// versus a queued request timing out.
type gate struct {
	sem      chan struct{}
	maxQueue int64
	timeout  time.Duration

	waiting       atomic.Int64
	inflight      atomic.Int64
	shed          atomic.Int64
	shedQueueFull atomic.Int64
	shedTimeout   atomic.Int64
}

func newGate(maxInflight, maxQueue int, timeout time.Duration) *gate {
	return &gate{
		sem:      make(chan struct{}, maxInflight),
		maxQueue: int64(maxQueue),
		timeout:  timeout,
	}
}

// enter admits the request, waiting up to the queue timeout if the
// endpoint is saturated. It reports false — and counts a shed — when
// the queue is full or the wait times out.
func (g *gate) enter() bool {
	select {
	case g.sem <- struct{}{}:
		g.inflight.Add(1)
		return true
	default:
	}
	if g.waiting.Add(1) > g.maxQueue {
		g.waiting.Add(-1)
		g.shed.Add(1)
		g.shedQueueFull.Add(1)
		return false
	}
	defer g.waiting.Add(-1)
	t := time.NewTimer(g.timeout)
	defer t.Stop()
	select {
	case g.sem <- struct{}{}:
		g.inflight.Add(1)
		return true
	case <-t.C:
		g.shed.Add(1)
		g.shedTimeout.Add(1)
		return false
	}
}

func (g *gate) exit() {
	g.inflight.Add(-1)
	<-g.sem
}

// latencyBuckets are the upper bounds of the fixed latency histogram.
var latencyBuckets = []time.Duration{
	time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond, time.Second,
}

var bucketLabels = []string{"1ms", "10ms", "100ms", "1s", "+Inf"}

// endpointMetrics tracks one endpoint's traffic: request and error
// counts, total latency, and a fixed-bucket latency histogram. All
// fields are atomics; recording takes no locks.
type endpointMetrics struct {
	requests  atomic.Int64
	errors    atomic.Int64
	sumMicros atomic.Int64
	maxMicros atomic.Int64
	buckets   [5]atomic.Int64 // cumulative counts per latencyBucket, +Inf last
}

func (m *endpointMetrics) record(d time.Duration, status int, encodeFailed bool) {
	m.requests.Add(1)
	if status >= 400 || encodeFailed {
		m.errors.Add(1)
	}
	us := d.Microseconds()
	m.sumMicros.Add(us)
	for {
		old := m.maxMicros.Load()
		if us <= old || m.maxMicros.CompareAndSwap(old, us) {
			break
		}
	}
	b := len(latencyBuckets)
	for i, ub := range latencyBuckets {
		if d <= ub {
			b = i
			break
		}
	}
	m.buckets[b].Add(1)
}

// endpoint is one logical endpoint's shared state. A legacy alias and
// its /v1 successor share one endpoint: one gate, one metrics row.
type endpoint struct {
	name    string // metrics label; /v1/<name> is the canonical path
	metrics endpointMetrics
	gate    *gate        // nil: never shed (healthz, metrics, admin)
	legacy  atomic.Int64 // requests via the deprecated unversioned path
}

// testHookQueryStart, when non-nil, runs at the start of every gated
// request while its gate slot is held — the test seam for saturating a
// concurrency gate.
var testHookQueryStart func()

// Server serves one or more named indexes. Create with NewServer; it
// implements http.Handler.
type Server struct {
	opts       ServerOptions
	handles    map[string]*handle
	names      []string // sorted
	start      time.Time
	mux        *http.ServeMux
	retryAfter string // precomputed Retry-After header value, seconds

	// live is the live-ingestion state; nil unless ServerOptions.Live
	// was set.
	live *liveState

	// eps lists every endpoint in metrics-rendering order; the named
	// fields alias into it.
	eps            []*endpoint
	epLookup       *endpoint
	epPrefix       *endpoint
	epTopK         *endpoint
	epQuery        *endpoint
	epScore        *endpoint
	epPredict      *endpoint
	epIngest       *endpoint
	epApproxLookup *endpoint
	epApproxTopK   *endpoint
	epHealthz      *endpoint
	epMetrics      *endpoint
	epReload       *endpoint
	epReconcile    *endpoint
	epCompact      *endpoint
}

// NewServer opens every configured index at its current generation and
// returns the serving handler. On error, indexes opened so far are
// closed.
func NewServer(opts ServerOptions) (*Server, error) {
	opts = opts.withDefaults()
	if len(opts.Indexes) == 0 {
		return nil, fmt.Errorf("serving: no indexes configured")
	}
	retry := int64((opts.RetryAfter + time.Second - 1) / time.Second)
	if retry < 1 {
		retry = 1
	}
	s := &Server{
		opts:       opts,
		handles:    make(map[string]*handle, len(opts.Indexes)),
		start:      time.Now(),
		mux:        http.NewServeMux(),
		retryAfter: strconv.FormatInt(retry, 10),
	}
	if opts.Live != nil {
		ls, err := newLiveState(opts.Live)
		if err != nil {
			return nil, err
		}
		if _, ok := opts.Indexes[ls.cfg.Index]; !ok {
			return nil, fmt.Errorf("serving: live index %q not among served indexes", ls.cfg.Index)
		}
		s.live = ls
	}
	for name := range opts.Indexes {
		s.names = append(s.names, name)
	}
	sort.Strings(s.names)
	for _, name := range s.names {
		h := &handle{name: name, cfg: opts.Indexes[name]}
		h.live = s.live != nil && s.live.cfg.Index == name
		g, err := s.openGeneration(h.cfg, 1)
		switch {
		case err == nil:
			h.gen.Store(g)
		case h.live && errors.Is(err, fs.ErrNotExist):
			// The live index materializes at the first reconciliation;
			// until then the handle serves without a generation.
		default:
			s.Close()
			return nil, fmt.Errorf("serving: open index %q: %w", name, err)
		}
		s.handles[name] = h
	}

	gated := func(name string) *endpoint {
		return &endpoint{
			name: name,
			gate: newGate(opts.MaxInflight, opts.MaxQueue, opts.QueueTimeout),
		}
	}
	s.epLookup = gated("lookup")
	s.epPrefix = gated("prefix")
	s.epTopK = gated("topk")
	s.epQuery = gated("query")
	s.epScore = gated("lm_score")
	s.epPredict = gated("lm_predict")
	s.epIngest = gated("ingest")
	s.epApproxLookup = gated("approx_lookup")
	s.epApproxTopK = gated("approx_topk")
	s.epHealthz = &endpoint{name: "healthz"}
	s.epMetrics = &endpoint{name: "metrics"}
	s.epReload = &endpoint{name: "reload"}
	s.epReconcile = &endpoint{name: "reconcile"}
	s.epCompact = &endpoint{name: "compact"}
	s.eps = []*endpoint{
		s.epLookup, s.epPrefix, s.epTopK, s.epQuery,
		s.epScore, s.epPredict, s.epIngest, s.epApproxLookup, s.epApproxTopK,
		s.epHealthz, s.epMetrics, s.epReload, s.epReconcile, s.epCompact,
	}

	s.mux.HandleFunc("GET /v1/lookup", s.handler(s.epLookup, false, s.handleLookupV1))
	s.mux.HandleFunc("GET /v1/prefix", s.handler(s.epPrefix, false, s.handlePrefixV1))
	s.mux.HandleFunc("GET /v1/topk", s.handler(s.epTopK, false, s.handleTopKV1))
	s.mux.HandleFunc("POST /v1/query", s.handler(s.epQuery, false, s.handleBatch))
	s.mux.HandleFunc("GET /v1/lm/score", s.handler(s.epScore, false, s.handleLMScore))
	s.mux.HandleFunc("GET /v1/lm/predict", s.handler(s.epPredict, false, s.handleLMPredict))
	s.mux.HandleFunc("POST /v1/ingest", s.handler(s.epIngest, false, s.handleIngest))
	s.mux.HandleFunc("GET /v1/approx/lookup", s.handler(s.epApproxLookup, false, s.handleApproxLookup))
	s.mux.HandleFunc("GET /v1/approx/topk", s.handler(s.epApproxTopK, false, s.handleApproxTopK))
	s.mux.HandleFunc("POST /v1/admin/reload", s.handler(s.epReload, false, s.handleReload))
	s.mux.HandleFunc("POST /v1/admin/reconcile", s.handler(s.epReconcile, false, s.handleReconcile))
	s.mux.HandleFunc("POST /v1/admin/compact", s.handler(s.epCompact, false, s.handleCompact))
	s.mux.HandleFunc("GET /v1/healthz", s.handler(s.epHealthz, false, s.handleHealthz))
	s.mux.HandleFunc("/lookup", s.handler(s.epLookup, true, s.handleLookupLegacy))
	s.mux.HandleFunc("/prefix", s.handler(s.epPrefix, true, s.handlePrefixLegacy))
	s.mux.HandleFunc("/topk", s.handler(s.epTopK, true, s.handleTopKLegacy))
	s.mux.HandleFunc("/healthz", s.handler(s.epHealthz, false, s.handleHealthz))
	s.mux.HandleFunc("/metrics", s.handler(s.epMetrics, false, s.handleMetrics))
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

func (s *Server) openGeneration(cfg IndexConfig, num int64) (*generation, error) {
	ix, err := ngramstats.OpenIndexWith(cfg.Dir, ngramstats.IndexOptions{CacheBlocks: cfg.CacheBlocks})
	if err != nil {
		return nil, err
	}
	g := &generation{ix: ix, num: num}
	g.refs.Store(1)
	if s.opts.LMOrder > 0 {
		m, err := ngramstats.NewLanguageModelFromIndex(ix, s.opts.LMOrder)
		if err != nil {
			ix.Close()
			return nil, err
		}
		g.lm = m
	}
	return g, nil
}

// Reload opens the index directory anew and atomically swaps the fresh
// generation in. In-flight requests finish on the generation they
// started on; its files close when the last of them drains. Returns
// the new generation number.
func (s *Server) Reload(name string) (int64, error) {
	h, ok := s.handles[name]
	if !ok {
		return 0, fmt.Errorf("serving: unknown index %q", name)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return 0, fmt.Errorf("serving: server closed")
	}
	old := h.gen.Load()
	num := int64(1)
	if old != nil {
		num = old.num + 1
	}
	g, err := s.openGeneration(h.cfg, num)
	if err != nil {
		return 0, fmt.Errorf("serving: reload %q: %w", name, err)
	}
	h.gen.Store(g)
	h.swaps.Add(1)
	if old != nil {
		old.release()
	}
	s.logf("serving: index %q swapped to generation %d (manifest %s)",
		name, g.num, g.ix.ManifestTime().UTC().Format(time.RFC3339))
	return g.num, nil
}

// ReloadAll reloads every served index, returning the new generation
// numbers and the first error (the rest are still attempted).
func (s *Server) ReloadAll() (map[string]int64, error) {
	out := make(map[string]int64, len(s.names))
	var firstErr error
	for _, name := range s.names {
		gen, err := s.Reload(name)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		out[name] = gen
	}
	return out, firstErr
}

// Watch polls every index's on-disk manifest at the given interval
// (default 1s) and reloads when its modification time departs from the
// active generation's — the push-free path to zero-downtime serving:
// rewrite the directory with SaveOptions.Replace and the daemon picks
// it up. Transient stat or open errors (a replacement mid-commit) are
// retried next tick. Watch blocks until ctx is done; run it in its own
// goroutine.
func (s *Server) Watch(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		for _, name := range s.names {
			s.checkReload(s.handles[name])
		}
	}
}

func (s *Server) checkReload(h *handle) {
	g := h.gen.Load()
	if g == nil && !h.live {
		return // shut down
	}
	// An LSM chain advances through its chain manifest (appends and
	// compactions rewrite CHAIN.json); a plain index through its index
	// manifest.
	st, err := os.Stat(filepath.Join(h.cfg.Dir, lsm.ChainFile))
	if err != nil {
		st, err = os.Stat(filepath.Join(h.cfg.Dir, index.ManifestFile))
	}
	if err != nil {
		return // not yet materialized, mid-replacement, or transient
	}
	if g != nil && st.ModTime().Equal(g.ix.ManifestTime()) {
		return
	}
	if _, err := s.Reload(h.name); err != nil {
		s.logf("serving: watch reload %q: %v", h.name, err)
	}
}

// Close retires every index's active generation; their files close as
// in-flight requests drain. Requests arriving after Close get 503.
// Close is idempotent.
func (s *Server) Close() error {
	for _, name := range s.names {
		h := s.handles[name]
		if h == nil {
			continue
		}
		h.mu.Lock()
		h.closed = true
		g := h.gen.Swap(nil)
		h.mu.Unlock()
		if g != nil {
			g.release()
		}
	}
	return nil
}

// Names returns the served index names, sorted.
func (s *Server) Names() []string { return append([]string(nil), s.names...) }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// statusWriter captures the status code a handler wrote, and any
// response-encoding failure writeJSON hit after the header went out.
type statusWriter struct {
	http.ResponseWriter
	status    int
	encodeErr error
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// handler wraps an endpoint handler with instrumentation, deprecation
// headers for legacy aliases, and — for gated endpoints — admission
// control.
func (s *Server) handler(ep *endpoint, legacy bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		if legacy {
			ep.legacy.Add(1)
			sw.Header().Set("Deprecation", "true")
			sw.Header().Set("Link", fmt.Sprintf("</v1/%s>; rel=%q", ep.name, "successor-version"))
		}
		if ep.gate != nil {
			if !ep.gate.enter() {
				sw.Header().Set("Retry-After", s.retryAfter)
				writeError(sw, http.StatusTooManyRequests,
					"%s: saturated (inflight limit %d, queue %d), request shed",
					ep.name, s.opts.MaxInflight, s.opts.MaxQueue)
				ep.metrics.record(time.Since(t0), sw.status, sw.encodeErr != nil)
				return
			}
			defer ep.gate.exit()
			if hook := testHookQueryStart; hook != nil {
				hook()
			}
		}
		h(sw, r)
		ep.metrics.record(time.Since(t0), sw.status, sw.encodeErr != nil)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The header is already out; all we can do is count it. The
		// instrumentation wrapper reads encodeErr into the endpoint's
		// error counter.
		if sw, ok := w.(*statusWriter); ok {
			sw.encodeErr = err
		}
	}
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// resolveName pins the generation of the named index — or of the only
// served index when name is empty. The caller must release the
// returned generation.
func (s *Server) resolveName(w http.ResponseWriter, name string) (*generation, string, bool) {
	if name == "" {
		if len(s.names) == 1 {
			name = s.names[0]
		} else {
			writeError(w, http.StatusBadRequest,
				"index parameter required (serving %d indexes: %v)", len(s.names), s.names)
			return nil, "", false
		}
	}
	h, ok := s.handles[name]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown index %q (serving %v)", name, s.names)
		return nil, "", false
	}
	g := h.acquire()
	if g == nil {
		h.mu.Lock()
		closed := h.closed
		h.mu.Unlock()
		if h.live && !closed {
			// Awaiting its first materialization: the index exists once
			// the first reconciliation (or delta append) lands, so the
			// condition is transient — tell the client when to retry.
			w.Header().Set("Retry-After", s.retryAfter)
			writeError(w, http.StatusServiceUnavailable,
				"index %q has no generation yet (awaiting first reconciliation)", name)
			return nil, "", false
		}
		writeError(w, http.StatusServiceUnavailable, "index %q is shut down", name)
		return nil, "", false
	}
	return g, name, true
}

func (s *Server) resolve(w http.ResponseWriter, r *http.Request) (*generation, string, bool) {
	return s.resolveName(w, r.URL.Query().Get("index"))
}

// parseLimit validates the prefix-scan limit parameter: absent selects
// the default, explicit values must be 1..MaxLimit.
func (s *Server) parseLimit(w http.ResponseWriter, r *http.Request) (int, bool) {
	ls := r.URL.Query().Get("limit")
	if ls == "" {
		return defaultPrefixLimit, true
	}
	v, err := strconv.Atoi(ls)
	if err != nil || v < 1 || v > s.opts.MaxLimit {
		writeError(w, http.StatusBadRequest, "bad limit %q (want 1..%d)", ls, s.opts.MaxLimit)
		return 0, false
	}
	return v, true
}

// parseK validates a k parameter: absent selects def, explicit values
// must be minimum..MaxK (minimum 0 keeps the legacy k=0 empty-answer
// behavior).
func (s *Server) parseK(w http.ResponseWriter, r *http.Request, def, minimum int) (int, bool) {
	ks := r.URL.Query().Get("k")
	if ks == "" {
		return def, true
	}
	v, err := strconv.Atoi(ks)
	if err != nil || v < minimum || v > s.opts.MaxK {
		writeError(w, http.StatusBadRequest, "bad k %q (want %d..%d)", ks, minimum, s.opts.MaxK)
		return 0, false
	}
	return v, true
}

func requireQ(w http.ResponseWriter, r *http.Request) (string, bool) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeError(w, http.StatusBadRequest, "missing q parameter")
		return "", false
	}
	return q, true
}

// ---- /v1 query handlers ----

func (s *Server) handleLookupV1(w http.ResponseWriter, r *http.Request) {
	g, name, ok := s.resolve(w, r)
	if !ok {
		return
	}
	defer g.release()
	q, ok := requireQ(w, r)
	if !ok {
		return
	}
	ng, found, err := g.ix.Lookup(q)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "lookup: %v", err)
		return
	}
	resp := LookupResponse{Index: name, Generation: g.num, Query: q, Found: found}
	if found {
		wng := toWire(ng)
		resp.NGram = &wng
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePrefixV1(w http.ResponseWriter, r *http.Request) {
	g, name, ok := s.resolve(w, r)
	if !ok {
		return
	}
	defer g.release()
	q, ok := requireQ(w, r)
	if !ok {
		return
	}
	limit, ok := s.parseLimit(w, r)
	if !ok {
		return
	}
	ngs, err := g.ix.Prefix(q, limit)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "prefix: %v", err)
		return
	}
	out := make([]WireNGram, len(ngs))
	for i, ng := range ngs {
		out[i] = toWire(ng)
	}
	writeJSON(w, http.StatusOK, PrefixResponse{
		Index: name, Generation: g.num, Query: q, Count: len(out), NGrams: out,
	})
}

func (s *Server) handleTopKV1(w http.ResponseWriter, r *http.Request) {
	g, name, ok := s.resolve(w, r)
	if !ok {
		return
	}
	defer g.release()
	k, ok := s.parseK(w, r, defaultTopK, 1)
	if !ok {
		return
	}
	ngs, err := g.ix.TopK(k)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "topk: %v", err)
		return
	}
	out := make([]WireNGram, len(ngs))
	for i, ng := range ngs {
		out[i] = toWire(ng)
	}
	writeJSON(w, http.StatusOK, TopKResponse{
		Index: name, Generation: g.num, K: k, NGrams: out,
	})
}

// handleBatch answers POST /v1/query: a JSON batch of lookup/prefix/
// topk operations, all served from one pinned index generation.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	body := http.MaxBytesReader(w, r.Body, 4<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad batch request: %v", err)
		return
	}
	if len(req.Ops) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Ops) > s.opts.MaxBatch {
		writeError(w, http.StatusBadRequest,
			"batch of %d ops exceeds limit %d", len(req.Ops), s.opts.MaxBatch)
		return
	}
	g, name, ok := s.resolveName(w, req.Index)
	if !ok {
		return
	}
	defer g.release()
	results := make([]BatchResult, len(req.Ops))
	for i, op := range req.Ops {
		results[i] = s.runOp(g, op)
	}
	writeJSON(w, http.StatusOK, BatchResponse{Index: name, Generation: g.num, Results: results})
}

func (s *Server) runOp(g *generation, op BatchOp) BatchResult {
	res := BatchResult{Op: op.Op}
	fail := func(format string, args ...any) BatchResult {
		res.Error = fmt.Sprintf(format, args...)
		return res
	}
	switch op.Op {
	case "lookup":
		if op.Q == "" {
			return fail("lookup: missing q")
		}
		ng, found, err := g.ix.Lookup(op.Q)
		if err != nil {
			return fail("lookup: %v", err)
		}
		res.Found = found
		if found {
			wng := toWire(ng)
			res.NGram = &wng
		}
	case "prefix":
		if op.Q == "" {
			return fail("prefix: missing q")
		}
		limit := op.Limit
		if limit == 0 {
			limit = defaultPrefixLimit
		}
		if limit < 1 || limit > s.opts.MaxLimit {
			return fail("prefix: bad limit %d (want 1..%d)", op.Limit, s.opts.MaxLimit)
		}
		ngs, err := g.ix.Prefix(op.Q, limit)
		if err != nil {
			return fail("prefix: %v", err)
		}
		res.Count = len(ngs)
		res.NGrams = make([]WireNGram, len(ngs))
		for i, ng := range ngs {
			res.NGrams[i] = toWire(ng)
		}
	case "topk":
		k := op.K
		if k == 0 {
			k = defaultTopK
		}
		if k < 1 || k > s.opts.MaxK {
			return fail("topk: bad k %d (want 1..%d)", op.K, s.opts.MaxK)
		}
		ngs, err := g.ix.TopK(k)
		if err != nil {
			return fail("topk: %v", err)
		}
		res.NGrams = make([]WireNGram, len(ngs))
		for i, ng := range ngs {
			res.NGrams[i] = toWire(ng)
		}
	default:
		return fail("unknown op %q (want lookup, prefix, or topk)", op.Op)
	}
	return res
}

// ---- /v1/lm handlers ----

func (s *Server) lmFor(w http.ResponseWriter, r *http.Request) (*generation, string, bool) {
	g, name, ok := s.resolve(w, r)
	if !ok {
		return nil, "", false
	}
	if g.lm == nil {
		g.release()
		writeError(w, http.StatusNotImplemented,
			"language model not enabled for index %q (start ngramsd with -lm)", name)
		return nil, "", false
	}
	return g, name, true
}

func (s *Server) handleLMScore(w http.ResponseWriter, r *http.Request) {
	g, name, ok := s.lmFor(w, r)
	if !ok {
		return
	}
	defer g.release()
	q, ok := requireQ(w, r)
	if !ok {
		return
	}
	words := strings.Fields(q)
	writeJSON(w, http.StatusOK, LMScoreResponse{
		Index: name, Generation: g.num, Query: q,
		Words: len(words), LogProb: g.lm.LogProb(words),
	})
}

func (s *Server) handleLMPredict(w http.ResponseWriter, r *http.Request) {
	g, name, ok := s.lmFor(w, r)
	if !ok {
		return
	}
	defer g.release()
	k, ok := s.parseK(w, r, defaultPredictK, 1)
	if !ok {
		return
	}
	q := r.URL.Query().Get("q") // optional: empty context predicts unigrams
	ps := g.lm.Predict(strings.Fields(q), k)
	out := make([]WirePrediction, len(ps))
	for i, p := range ps {
		out[i] = WirePrediction{Word: p.Word, Frequency: p.Frequency, Score: p.Score}
	}
	writeJSON(w, http.StatusOK, LMPredictResponse{
		Index: name, Generation: g.num, Context: q, K: k, Predictions: out,
	})
}

// ---- legacy aliases (frozen pre-/v1 wire shapes) ----

func (s *Server) handleLookupLegacy(w http.ResponseWriter, r *http.Request) {
	g, name, ok := s.resolve(w, r)
	if !ok {
		return
	}
	defer g.release()
	q, ok := requireQ(w, r)
	if !ok {
		return
	}
	ng, found, err := g.ix.Lookup(q)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "lookup: %v", err)
		return
	}
	resp := map[string]any{"index": name, "query": q, "found": found}
	if found {
		resp["ngram"] = toWire(ng)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePrefixLegacy(w http.ResponseWriter, r *http.Request) {
	g, name, ok := s.resolve(w, r)
	if !ok {
		return
	}
	defer g.release()
	q, ok := requireQ(w, r)
	if !ok {
		return
	}
	limit, ok := s.parseLimit(w, r)
	if !ok {
		return
	}
	ngs, err := g.ix.Prefix(q, limit)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "prefix: %v", err)
		return
	}
	out := make([]WireNGram, len(ngs))
	for i, ng := range ngs {
		out[i] = toWire(ng)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"index": name, "query": q, "count": len(out), "ngrams": out,
	})
}

func (s *Server) handleTopKLegacy(w http.ResponseWriter, r *http.Request) {
	g, name, ok := s.resolve(w, r)
	if !ok {
		return
	}
	defer g.release()
	k, ok := s.parseK(w, r, defaultTopK, 0)
	if !ok {
		return
	}
	ngs, err := g.ix.TopK(k)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "topk: %v", err)
		return
	}
	out := make([]WireNGram, len(ngs))
	for i, ng := range ngs {
		out[i] = toWire(ng)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"index": name, "k": k, "ngrams": out,
	})
}

// ---- admin, health, metrics ----

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if name := r.URL.Query().Get("index"); name != "" {
		if _, ok := s.handles[name]; !ok {
			writeError(w, http.StatusNotFound, "unknown index %q (serving %v)", name, s.names)
			return
		}
		gen, err := s.Reload(name)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, ReloadResponse{Reloaded: map[string]int64{name: gen}})
		return
	}
	out, err := s.ReloadAll()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, ReloadResponse{Reloaded: out})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	inv := make(map[string]IndexHealth, len(s.names))
	for _, name := range s.names {
		h := s.handles[name]
		g := h.acquire()
		if g == nil {
			h.mu.Lock()
			closed := h.closed
			h.mu.Unlock()
			if h.live && !closed {
				// Awaiting its first reconciliation; healthy.
				inv[name] = IndexHealth{Live: true}
				continue
			}
			status = "shutdown"
			continue
		}
		inv[name] = IndexHealth{
			Records:      g.ix.Len(),
			Shards:       g.ix.Shards(),
			Generation:   g.num,
			ManifestTime: g.ix.ManifestTime().UTC().Format(time.RFC3339Nano),
			Corpus:       g.ix.Corpus(),
			LM:           g.lm != nil,
			Live:         h.live,
		}
		g.release()
	}
	code := http.StatusOK
	if status != "ok" {
		code = http.StatusServiceUnavailable
	}
	resp := HealthResponse{
		Status:  status,
		Uptime:  time.Since(s.start).String(),
		Indexes: inv,
	}
	if s.opts.WatchInterval > 0 {
		resp.WatchInterval = s.opts.WatchInterval.String()
	}
	if s.live != nil {
		resp.Live = s.live.health()
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "ngramsd_uptime_seconds %.3f\n", time.Since(s.start).Seconds())
	for _, ep := range s.eps {
		fmt.Fprintf(w, "ngramsd_requests_total{endpoint=%q} %d\n", ep.name, ep.metrics.requests.Load())
		fmt.Fprintf(w, "ngramsd_errors_total{endpoint=%q} %d\n", ep.name, ep.metrics.errors.Load())
		fmt.Fprintf(w, "ngramsd_latency_micros_sum{endpoint=%q} %d\n", ep.name, ep.metrics.sumMicros.Load())
		fmt.Fprintf(w, "ngramsd_latency_micros_max{endpoint=%q} %d\n", ep.name, ep.metrics.maxMicros.Load())
		cum := int64(0)
		for i := range ep.metrics.buckets {
			cum += ep.metrics.buckets[i].Load()
			fmt.Fprintf(w, "ngramsd_latency_bucket{endpoint=%q,le=%q} %d\n", ep.name, bucketLabels[i], cum)
		}
		if ep.gate != nil {
			fmt.Fprintf(w, "ngramsd_inflight{endpoint=%q} %d\n", ep.name, ep.gate.inflight.Load())
			fmt.Fprintf(w, "ngramsd_shed_total{endpoint=%q} %d\n", ep.name, ep.gate.shed.Load())
			fmt.Fprintf(w, "ngramsd_shed_reason_total{endpoint=%q,reason=\"queue_full\"} %d\n",
				ep.name, ep.gate.shedQueueFull.Load())
			fmt.Fprintf(w, "ngramsd_shed_reason_total{endpoint=%q,reason=\"timeout\"} %d\n",
				ep.name, ep.gate.shedTimeout.Load())
		}
	}
	for _, ep := range []*endpoint{s.epLookup, s.epPrefix, s.epTopK} {
		fmt.Fprintf(w, "ngramsd_legacy_requests_total{endpoint=%q} %d\n", ep.name, ep.legacy.Load())
	}
	if s.live != nil {
		si := s.live.cfg.Ingester
		fmt.Fprintf(w, "ngramsd_live_docs_total %d\n", si.Docs())
		fmt.Fprintf(w, "ngramsd_live_pending_docs %d\n", si.Pending())
		fmt.Fprintf(w, "ngramsd_live_sketch_bytes %d\n", si.Bytes())
		fmt.Fprintf(w, "ngramsd_reconciles_total %d\n", s.live.reconciles.Load())
	}
	for _, name := range s.names {
		h := s.handles[name]
		fmt.Fprintf(w, "ngramsd_index_swaps_total{index=%q} %d\n", name, h.swaps.Load())
		g := h.acquire()
		if g == nil {
			continue
		}
		hits, misses := g.ix.CacheStats()
		fmt.Fprintf(w, "ngramsd_index_generation{index=%q} %d\n", name, g.num)
		fmt.Fprintf(w, "ngramsd_index_records{index=%q} %d\n", name, g.ix.Len())
		fmt.Fprintf(w, "ngramsd_index_shards{index=%q} %d\n", name, g.ix.Shards())
		fmt.Fprintf(w, "ngramsd_block_cache_hits_total{index=%q} %d\n", name, hits)
		fmt.Fprintf(w, "ngramsd_block_cache_misses_total{index=%q} %d\n", name, misses)
		g.release()
	}
}

// ListenAndServe runs srv on addr until ctx is cancelled, then shuts
// down gracefully (in-flight requests get up to five seconds). ready,
// if non-nil, receives the bound address once listening — tests and
// callers using addr ":0" learn the real port from it.
func ListenAndServe(ctx context.Context, addr string, srv *Server, ready chan<- string) error {
	hs := &http.Server{Addr: addr, Handler: srv}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return hs.Shutdown(shutCtx)
	case err := <-errc:
		return err
	}
}
