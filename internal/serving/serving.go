// Package serving implements the HTTP query surface of the n-gram
// index daemon (cmd/ngramsd): point lookup, prefix scan, and top-k
// over one or more persistent indexes opened with ngramstats.OpenIndex,
// plus health and metrics endpoints.
//
// The handler is purely read-only and safe for any number of
// concurrent requests: every query method of ngramstats.Index is
// lock-free on the serving path (the decoded-block cache's internal
// mutex is the only synchronization point), and the handler's own
// bookkeeping is atomic counters.
//
// Endpoints:
//
//	GET /lookup?q=phrase[&index=name]        one phrase's statistics
//	GET /prefix?q=phrase[&limit=n][&index=]  phrases extending q
//	GET /topk?k=n[&index=name]               most frequent n-grams
//	GET /healthz                             liveness + index inventory
//	GET /metrics                             Prometheus-style text
//
// The index parameter is optional while exactly one index is served.
package serving

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"ngramstats"
)

// Server serves one or more named indexes. Create with New; it
// implements http.Handler.
type Server struct {
	indexes map[string]*ngramstats.Index
	names   []string // sorted
	start   time.Time
	mux     *http.ServeMux

	lookup  endpointMetrics
	prefix  endpointMetrics
	topk    endpointMetrics
	healthz endpointMetrics
}

// latencyBuckets are the upper bounds of the fixed latency histogram.
var latencyBuckets = []time.Duration{
	time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond, time.Second,
}

var bucketLabels = []string{"1ms", "10ms", "100ms", "1s", "+Inf"}

// endpointMetrics tracks one endpoint's traffic: request and error
// counts, total latency, and a fixed-bucket latency histogram. All
// fields are atomics; recording takes no locks.
type endpointMetrics struct {
	requests  atomic.Int64
	errors    atomic.Int64
	sumMicros atomic.Int64
	maxMicros atomic.Int64
	buckets   [5]atomic.Int64 // cumulative counts per latencyBucket, +Inf last
}

func (m *endpointMetrics) record(d time.Duration, status int) {
	m.requests.Add(1)
	if status >= 400 {
		m.errors.Add(1)
	}
	us := d.Microseconds()
	m.sumMicros.Add(us)
	for {
		old := m.maxMicros.Load()
		if us <= old || m.maxMicros.CompareAndSwap(old, us) {
			break
		}
	}
	b := len(latencyBuckets)
	for i, ub := range latencyBuckets {
		if d <= ub {
			b = i
			break
		}
	}
	m.buckets[b].Add(1)
}

// New returns a server over the given named indexes. The map is used
// directly and must not be mutated afterwards.
func New(indexes map[string]*ngramstats.Index) *Server {
	s := &Server{indexes: indexes, start: time.Now(), mux: http.NewServeMux()}
	for name := range indexes {
		s.names = append(s.names, name)
	}
	sort.Strings(s.names)
	s.mux.HandleFunc("/lookup", s.instrument(&s.lookup, s.handleLookup))
	s.mux.HandleFunc("/prefix", s.instrument(&s.prefix, s.handlePrefix))
	s.mux.HandleFunc("/topk", s.instrument(&s.topk, s.handleTopK))
	s.mux.HandleFunc("/healthz", s.instrument(&s.healthz, s.handleHealthz))
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// Names returns the served index names, sorted.
func (s *Server) Names() []string { return append([]string(nil), s.names...) }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// statusWriter captures the status code a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (s *Server) instrument(m *endpointMetrics, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		m.record(time.Since(t0), sw.status)
	}
}

// wireNGram is the JSON shape of one n-gram.
type wireNGram struct {
	Text      string          `json:"text"`
	IDs       []uint32        `json:"ids,omitempty"`
	Frequency int64           `json:"frequency"`
	Years     map[int]int64   `json:"years,omitempty"`
	Documents map[int64]int64 `json:"documents,omitempty"`
}

func toWire(ng ngramstats.NGram) wireNGram {
	return wireNGram{
		Text:      ng.Text,
		IDs:       ng.IDs,
		Frequency: ng.Frequency,
		Years:     ng.Years,
		Documents: ng.Documents,
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// resolve picks the index a request addresses: the explicit index
// parameter, or the only served index when the parameter is absent.
func (s *Server) resolve(w http.ResponseWriter, r *http.Request) (*ngramstats.Index, string, bool) {
	name := r.URL.Query().Get("index")
	if name == "" {
		if len(s.names) == 1 {
			name = s.names[0]
		} else {
			writeError(w, http.StatusBadRequest,
				"index parameter required (serving %d indexes: %v)", len(s.names), s.names)
			return nil, "", false
		}
	}
	ix, ok := s.indexes[name]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown index %q (serving %v)", name, s.names)
		return nil, "", false
	}
	return ix, name, true
}

func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) {
	ix, name, ok := s.resolve(w, r)
	if !ok {
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		writeError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	ng, found, err := ix.Lookup(q)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "lookup: %v", err)
		return
	}
	resp := map[string]any{"index": name, "query": q, "found": found}
	if found {
		resp["ngram"] = toWire(ng)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePrefix(w http.ResponseWriter, r *http.Request) {
	ix, name, ok := s.resolve(w, r)
	if !ok {
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		writeError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	limit := 100
	if ls := r.URL.Query().Get("limit"); ls != "" {
		v, err := strconv.Atoi(ls)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "bad limit %q", ls)
			return
		}
		limit = v
	}
	ngs, err := ix.Prefix(q, limit)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "prefix: %v", err)
		return
	}
	out := make([]wireNGram, len(ngs))
	for i, ng := range ngs {
		out[i] = toWire(ng)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"index": name, "query": q, "count": len(out), "ngrams": out,
	})
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	ix, name, ok := s.resolve(w, r)
	if !ok {
		return
	}
	k := 10
	if ks := r.URL.Query().Get("k"); ks != "" {
		v, err := strconv.Atoi(ks)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "bad k %q", ks)
			return
		}
		k = v
	}
	ngs, err := ix.TopK(k)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "topk: %v", err)
		return
	}
	out := make([]wireNGram, len(ngs))
	for i, ng := range ngs {
		out[i] = toWire(ng)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"index": name, "k": k, "ngrams": out,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	inv := make(map[string]int64, len(s.indexes))
	for name, ix := range s.indexes {
		inv[name] = ix.Len()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"uptime":  time.Since(s.start).String(),
		"indexes": inv,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "ngramsd_uptime_seconds %.3f\n", time.Since(s.start).Seconds())
	for _, e := range []struct {
		name string
		m    *endpointMetrics
	}{
		{"lookup", &s.lookup}, {"prefix", &s.prefix}, {"topk", &s.topk}, {"healthz", &s.healthz},
	} {
		fmt.Fprintf(w, "ngramsd_requests_total{endpoint=%q} %d\n", e.name, e.m.requests.Load())
		fmt.Fprintf(w, "ngramsd_errors_total{endpoint=%q} %d\n", e.name, e.m.errors.Load())
		fmt.Fprintf(w, "ngramsd_latency_micros_sum{endpoint=%q} %d\n", e.name, e.m.sumMicros.Load())
		fmt.Fprintf(w, "ngramsd_latency_micros_max{endpoint=%q} %d\n", e.name, e.m.maxMicros.Load())
		cum := int64(0)
		for i := range e.m.buckets {
			cum += e.m.buckets[i].Load()
			fmt.Fprintf(w, "ngramsd_latency_bucket{endpoint=%q,le=%q} %d\n", e.name, bucketLabels[i], cum)
		}
	}
	for _, name := range s.names {
		ix := s.indexes[name]
		hits, misses := ix.CacheStats()
		fmt.Fprintf(w, "ngramsd_index_records{index=%q} %d\n", name, ix.Len())
		fmt.Fprintf(w, "ngramsd_index_shards{index=%q} %d\n", name, ix.Shards())
		fmt.Fprintf(w, "ngramsd_block_cache_hits_total{index=%q} %d\n", name, hits)
		fmt.Fprintf(w, "ngramsd_block_cache_misses_total{index=%q} %d\n", name, misses)
	}
}

// ListenAndServe runs srv on addr until ctx is cancelled, then shuts
// down gracefully (in-flight requests get up to five seconds). ready,
// if non-nil, receives the bound address once listening — tests and
// callers using addr ":0" learn the real port from it.
func ListenAndServe(ctx context.Context, addr string, srv *Server, ready chan<- string) error {
	hs := &http.Server{Addr: addr, Handler: srv}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return hs.Shutdown(shutCtx)
	case err := <-errc:
		return err
	}
}
