package serving

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// benchServer builds one served index and a set of query phrases.
func benchServer(b *testing.B) (*httptest.Server, []string) {
	b.Helper()
	res, dir := buildServedIndex(b)
	_, ts := newTestServer(b, dir, nil)
	top, err := res.TopK(64)
	if err != nil || len(top) == 0 {
		b.Fatalf("TopK: %v", err)
	}
	phrases := make([]string, len(top))
	for i, ng := range top {
		phrases[i] = ng.Text
	}
	return ts, phrases
}

// BenchmarkServingLookupGET measures the per-key cost of one lookup
// per HTTP round trip — the baseline POST /v1/query is judged against.
func BenchmarkServingLookupGET(b *testing.B) {
	ts, phrases := benchServer(b)
	client := ts.Client()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get(ts.URL + "/v1/lookup?q=" + urlQuery(phrases[i%len(phrases)]))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/key")
}

// BenchmarkServingBatch64 measures the per-key cost of 64 lookups per
// POST /v1/query round trip: HTTP and JSON overheads amortize across
// the batch, so ns/key should land well below the single-GET baseline.
func BenchmarkServingBatch64(b *testing.B) {
	const batch = 64
	ts, phrases := benchServer(b)
	client := ts.Client()
	ops := make([]BatchOp, batch)
	for i := range ops {
		ops[i] = BatchOp{Op: "lookup", Q: phrases[i%len(phrases)]}
	}
	body, err := json.Marshal(BatchRequest{Ops: ops})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/key")
}
