package serving

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ngramstats"
)

// LiveConfig wires a StreamIngester into the server: the live-ingest
// endpoints feed it, the approximate endpoints query it, and the
// reconciliation loop periodically converts its accumulated documents
// into an exact index that hot-swaps into the named served index.
type LiveConfig struct {
	// Ingester is the stream ingester behind POST /v1/ingest. Required.
	Ingester *ngramstats.StreamIngester
	// Index names the served index (a key of ServerOptions.Indexes) the
	// reconciliation loop saves into. Its directory may start empty: it
	// materializes at the first reconcile. Required.
	Index string
	// Count configures the exact reconciliation job. A zero MaxLength
	// is replaced by the ingester's, so the exact index covers the same
	// orders the sketch does.
	Count ngramstats.Options
	// Save configures how reconciled results are persisted; Replace is
	// forced on.
	Save ngramstats.SaveOptions
	// Incremental switches reconciliation to LSM delta appends: the
	// first reconcile still saves a full base index, every later one
	// appends only the documents ingested since the previous reconcile
	// as a delta generation (ngramstats.AppendDelta) and releases them
	// from memory — each cycle costs O(new documents) regardless of
	// stream length. Requires Count.MinFrequency ≤ 1 and no
	// maximal/closed selection (the chain invariants); pair with
	// ServerOptions.Compact so chains are merged back periodically.
	Incremental bool
	// Interval is how often the reconciliation loop checks whether
	// enough documents accumulated (IngestOptions.ReconcileEvery).
	// Default 1s.
	Interval time.Duration
	// MaxBatch caps the documents accepted per POST /v1/ingest request
	// (default DefaultMaxBatch).
	MaxBatch int
	// MaxBody caps the request body of POST /v1/ingest in bytes
	// (default 16 MiB).
	MaxBody int64
}

// liveState is the server side of live ingestion.
type liveState struct {
	cfg LiveConfig

	// mu serializes reconciliations (the loop and the admin endpoint).
	mu         sync.Mutex
	reconciles atomic.Int64 // committed reconciliations
}

func newLiveState(cfg *LiveConfig) (*liveState, error) {
	c := *cfg
	if c.Ingester == nil {
		return nil, fmt.Errorf("serving: LiveConfig.Ingester is required")
	}
	if c.Index == "" {
		return nil, fmt.Errorf("serving: LiveConfig.Index is required")
	}
	if c.Count.MaxLength == 0 {
		c.Count.MaxLength = c.Ingester.Options().MaxLength
	}
	if c.Incremental {
		// Delta generations merge losslessly only when every generation
		// counts every n-gram: τ = 1 and no selection.
		if c.Count.MinFrequency > 1 {
			return nil, fmt.Errorf("serving: incremental reconciliation requires MinFrequency 1, got %d (per-generation thresholds do not merge)", c.Count.MinFrequency)
		}
		c.Count.MinFrequency = 1
		if c.Count.Selection != ngramstats.SelectAll {
			return nil, fmt.Errorf("serving: incremental reconciliation requires SelectAll (per-generation maximal/closed selection does not merge)")
		}
	}
	c.Save.Replace = true
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 16 << 20
	}
	return &liveState{cfg: c}, nil
}

func (ls *liveState) health() *LiveHealth {
	si := ls.cfg.Ingester
	io := si.Options()
	return &LiveHealth{
		Index:       ls.cfg.Index,
		Docs:        si.Docs(),
		Covered:     si.Covered(),
		Pending:     si.Pending(),
		Reconciles:  ls.reconciles.Load(),
		Epsilon:     io.Epsilon,
		Delta:       io.Delta,
		MaxLength:   io.MaxLength,
		SketchBytes: si.Bytes(),
	}
}

// requireLive rejects live endpoints with 501 unless live ingestion is
// configured.
func (s *Server) requireLive(w http.ResponseWriter) (*liveState, bool) {
	if s.live == nil {
		writeError(w, http.StatusNotImplemented,
			"live ingestion not enabled (start ngramsd with -ingest)")
		return nil, false
	}
	return s.live, true
}

// exactFor pins the reconciled generation of the live index, returning
// (nil, 0) before the first reconciliation lands — the approximate
// endpoints then answer from the sketch alone.
func (s *Server) exactFor(ls *liveState) (*generation, int64) {
	g := s.handles[ls.cfg.Index].acquire()
	if g == nil {
		return nil, 0
	}
	return g, g.num
}

// approxFor combines the exact component of one phrase (from a pinned
// generation, which may be nil) with the sketch delta.
func approxFor(si *ngramstats.StreamIngester, g *generation, phrase string) (ApproxNGram, bool, error) {
	ac, ok := si.Estimate(phrase)
	if !ok {
		return ApproxNGram{}, false, nil
	}
	out := ApproxNGram{
		Phrase:   ac.Phrase,
		Order:    ac.Order,
		Delta:    ac.Estimate,
		Bound:    ac.Bound,
		Estimate: ac.Estimate,
	}
	if g != nil {
		ng, found, err := g.ix.Lookup(ac.Phrase)
		if err != nil {
			return ApproxNGram{}, false, err
		}
		if found {
			out.Exact = ng.Frequency
			out.Estimate += ng.Frequency
		}
	}
	return out, true, nil
}

// handleIngest answers POST /v1/ingest: fold a batch of documents into
// the live sketch delta.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	ls, ok := s.requireLive(w)
	if !ok {
		return
	}
	var req IngestRequest
	body := http.MaxBytesReader(w, r.Body, ls.cfg.MaxBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad ingest request: %v", err)
		return
	}
	if len(req.Docs) == 0 {
		writeError(w, http.StatusBadRequest, "empty document batch")
		return
	}
	if len(req.Docs) > ls.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest,
			"batch of %d documents exceeds limit %d", len(req.Docs), ls.cfg.MaxBatch)
		return
	}
	docs := make([]ngramstats.Document, len(req.Docs))
	for i, d := range req.Docs {
		docs[i] = ngramstats.Document{ID: d.ID, Text: d.Text, Year: d.Year, Web: d.Web}
	}
	si := ls.cfg.Ingester
	if err := si.Ingest(docs...); err != nil {
		writeError(w, http.StatusInternalServerError, "ingest: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, IngestResponse{
		Ingested: len(docs),
		Docs:     si.Docs(),
		Covered:  si.Covered(),
		Pending:  si.Pending(),
	})
}

// handleApproxLookup answers GET /v1/approx/lookup: exact count from
// the reconciled generation plus the one-sided sketch estimate of
// everything newer, with the error bound stated.
func (s *Server) handleApproxLookup(w http.ResponseWriter, r *http.Request) {
	ls, ok := s.requireLive(w)
	if !ok {
		return
	}
	q, ok := requireQ(w, r)
	if !ok {
		return
	}
	g, gen := s.exactFor(ls)
	if g != nil {
		defer g.release()
	}
	ng, ok, err := approxFor(ls.cfg.Ingester, g, q)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "approx lookup: %v", err)
		return
	}
	if !ok {
		writeError(w, http.StatusBadRequest,
			"phrase %q outside sketched lengths 1..%d", q, ls.cfg.Ingester.Options().MaxLength)
		return
	}
	writeJSON(w, http.StatusOK, ApproxLookupResponse{
		Index:       ls.cfg.Index,
		Generation:  gen,
		Query:       q,
		Approx:      true,
		ApproxNGram: ng,
	})
}

// handleApproxTopK answers GET /v1/approx/topk: the union of the
// reconciled index's top records and the sketch's heavy hitters, each
// rescored as exact + delta.
func (s *Server) handleApproxTopK(w http.ResponseWriter, r *http.Request) {
	ls, ok := s.requireLive(w)
	if !ok {
		return
	}
	k, ok := s.parseK(w, r, defaultTopK, 1)
	if !ok {
		return
	}
	si := ls.cfg.Ingester
	g, gen := s.exactFor(ls)
	if g != nil {
		defer g.release()
	}
	cands := make(map[string]ApproxNGram)
	add := func(phrase string) error {
		if _, dup := cands[phrase]; dup {
			return nil
		}
		ng, ok, err := approxFor(si, g, phrase)
		if err != nil || !ok {
			return err // out-of-range candidates are skipped silently
		}
		cands[ng.Phrase] = ng
		return nil
	}
	for _, hh := range si.TopK(k) {
		if err := add(hh.Phrase); err != nil {
			writeError(w, http.StatusInternalServerError, "approx topk: %v", err)
			return
		}
	}
	if g != nil {
		ngs, err := g.ix.TopK(k)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "approx topk: %v", err)
			return
		}
		for _, ng := range ngs {
			if err := add(ng.Text); err != nil {
				writeError(w, http.StatusInternalServerError, "approx topk: %v", err)
				return
			}
		}
	}
	out := make([]ApproxNGram, 0, len(cands))
	for _, ng := range cands {
		out = append(out, ng)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Estimate != out[j].Estimate {
			return out[i].Estimate > out[j].Estimate
		}
		return out[i].Phrase < out[j].Phrase
	})
	if len(out) > k {
		out = out[:k]
	}
	writeJSON(w, http.StatusOK, ApproxTopKResponse{
		Index:      ls.cfg.Index,
		Generation: gen,
		K:          k,
		Approx:     true,
		NGrams:     out,
	})
}

// handleReconcile answers POST /v1/admin/reconcile: run the exact job
// over everything ingested, swap the result in, and reset the delta.
func (s *Server) handleReconcile(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.requireLive(w); !ok {
		return
	}
	resp, err := s.ReconcileNow(r.Context())
	switch {
	case errors.Is(err, ngramstats.ErrReconcileActive):
		writeError(w, http.StatusConflict, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "reconcile: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// ReconcileNow runs one exact reconciliation synchronously: freeze the
// ingested documents, run the batch MapReduce job over them through the
// standard corpus build (so the saved index is identical to a pure
// batch run), save it over the live index directory, hot-swap the new
// generation in, and drop the drained sketch delta. On any failure the
// delta is folded back and queries keep answering approximately.
func (s *Server) ReconcileNow(ctx context.Context) (ReconcileResponse, error) {
	ls := s.live
	if ls == nil {
		return ReconcileResponse{}, fmt.Errorf("serving: live ingestion not enabled")
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()

	si := ls.cfg.Ingester
	resp := ReconcileResponse{Index: ls.cfg.Index}
	rc, err := si.BeginReconcile()
	if err != nil {
		return resp, err
	}
	if int64(rc.Cutoff()) == si.Covered() {
		if err := rc.Abort(); err != nil {
			return resp, err
		}
		if g := s.handles[ls.cfg.Index].acquire(); g != nil {
			resp.Generation = g.num
			g.release()
		}
		return resp, nil
	}
	h := s.handles[ls.cfg.Index]
	// Incremental mode appends only the new documents as a delta
	// generation — once a base index exists to append to. The first
	// reconciliation always takes the full path below to materialize
	// the base.
	incremental := ls.cfg.Incremental && h.gen.Load() != nil
	run := func() error {
		if incremental {
			docs := rc.NewDocuments()
			h.chainMu.Lock()
			stats, err := ngramstats.AppendDelta(ctx, h.cfg.Dir, docs, ngramstats.AppendOptions{
				Count:    ls.cfg.Count,
				Builder:  ls.cfg.Ingester.Options().Builder,
				Compress: ls.cfg.Save.Compress,
			})
			h.chainMu.Unlock()
			if err != nil {
				return fmt.Errorf("append delta: %w", err)
			}
			resp.Incremental = true
			resp.AppendedDocs = stats.Docs
			resp.MapInputRecords = stats.Counters["MAP_INPUT_RECORDS"]
		} else {
			c, err := rc.Corpus(ctx, ls.cfg.Index)
			if err != nil {
				return fmt.Errorf("build corpus: %w", err)
			}
			res, err := ngramstats.Count(ctx, c, ls.cfg.Count)
			if err != nil {
				return fmt.Errorf("exact job: %w", err)
			}
			defer res.Release()
			if err := res.SaveWith(h.cfg.Dir, ls.cfg.Save); err != nil {
				return fmt.Errorf("save: %w", err)
			}
		}
		gen, err := s.Reload(ls.cfg.Index)
		if err != nil {
			return err
		}
		resp.Generation = gen
		return nil
	}
	if err := run(); err != nil {
		if aerr := rc.Abort(); aerr != nil {
			s.logf("serving: reconcile abort after %v: %v", err, aerr)
		}
		return resp, err
	}
	// Commit after the swap: between Reload and Commit both the new
	// generation and the draining delta cover the reconciled documents,
	// so estimates stay one-sided (briefly doubled) rather than ever
	// dropping below the true count. In incremental mode the documents
	// are persisted in the chain, so the ingester releases them too.
	if ls.cfg.Incremental {
		rc.CommitDrop()
	} else {
		rc.Commit()
	}
	ls.reconciles.Add(1)
	resp.Applied = true
	resp.Docs = int64(rc.Cutoff())
	s.logf("serving: reconciled %d documents into index %q generation %d",
		rc.Cutoff(), ls.cfg.Index, resp.Generation)
	return resp, nil
}

// ReconcileLoop runs exact reconciliations whenever at least
// IngestOptions.ReconcileEvery documents accumulated since the last
// one, checking every LiveConfig.Interval. With ReconcileEvery zero it
// idles: reconciliation happens only through POST /v1/admin/reconcile.
// Blocks until ctx is done; run it in its own goroutine.
func (s *Server) ReconcileLoop(ctx context.Context) {
	ls := s.live
	if ls == nil {
		return
	}
	every := int64(ls.cfg.Ingester.Options().ReconcileEvery)
	t := time.NewTicker(ls.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if every <= 0 || ls.cfg.Ingester.Pending() < every {
			continue
		}
		if _, err := s.ReconcileNow(ctx); err != nil {
			s.logf("serving: reconcile loop: %v", err)
		}
	}
}
