package serving

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ngramstats"
)

// liveDocs is a small fixed stream with known exact counts.
func liveDocs(n int) []WireDocument {
	docs := make([]WireDocument, n)
	for i := range docs {
		docs[i] = WireDocument{
			Text: fmt.Sprintf("the rose is red. the rose w%d is a rose.", i%7),
			Year: 2020 + i%2,
		}
	}
	return docs
}

// newLiveServer starts a server in live-ingest mode over an initially
// empty index directory.
func newLiveServer(t testing.TB, tweak func(*ServerOptions)) (*Server, *httptest.Server, *ngramstats.StreamIngester) {
	t.Helper()
	si, err := ngramstats.NewStreamIngester(ngramstats.IngestOptions{
		Epsilon: 0.001, Delta: 0.02, MaxLength: 3, TopK: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "live-idx")
	opts := ServerOptions{
		Indexes: map[string]IndexConfig{"live": {Dir: dir}},
		Live: &LiveConfig{
			Ingester: si,
			Index:    "live",
			Count:    ngramstats.Options{MinFrequency: 1, TempDir: t.TempDir()},
			Save:     ngramstats.SaveOptions{Shards: 2, TopDepth: 32},
		},
	}
	if tweak != nil {
		tweak(&opts)
	}
	srv, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts, si
}

func TestLiveDisabled(t *testing.T) {
	_, dir := buildServedIndex(t)
	_, ts := newTestServer(t, dir, nil)
	var e ErrorResponse
	if s := getJSON(t, ts.Client(), ts.URL+"/v1/approx/lookup?q=the", &e); s != http.StatusNotImplemented {
		t.Fatalf("approx lookup without live mode: status %d", s)
	}
	if s := postJSON(t, ts.Client(), ts.URL+"/v1/ingest", IngestRequest{Docs: liveDocs(1)}, &e); s != http.StatusNotImplemented {
		t.Fatalf("ingest without live mode: status %d", s)
	}
	if s := postJSON(t, ts.Client(), ts.URL+"/v1/admin/reconcile", nil, &e); s != http.StatusNotImplemented {
		t.Fatalf("reconcile without live mode: status %d", s)
	}
}

// TestLiveIngestApproxReconcileExact is the acceptance flow: ingest
// documents, serve approximate counts immediately with stated bounds,
// reconcile, and then serve exact counts identical to a batch Count
// over the same documents.
func TestLiveIngestApproxReconcileExact(t *testing.T) {
	_, ts, si := newLiveServer(t, nil)
	client := ts.Client()

	// Before any ingest: healthy, no generation, live flagged.
	var health HealthResponse
	if s := getStrict(t, client, ts.URL+"/healthz", &health); s != http.StatusOK {
		t.Fatalf("healthz on empty live server: status %d", s)
	}
	if health.Status != "ok" || !health.Indexes["live"].Live || health.Indexes["live"].Generation != 0 {
		t.Fatalf("empty live health = %+v", health)
	}
	if health.Live == nil || health.Live.Index != "live" || health.Live.Docs != 0 {
		t.Fatalf("live section = %+v", health.Live)
	}

	// Exact endpoints on the not-yet-materialized index are a clean 503.
	var e ErrorResponse
	if s := getJSON(t, client, ts.URL+"/v1/lookup?q=the+rose", &e); s != http.StatusServiceUnavailable {
		t.Fatalf("exact lookup before first reconcile: status %d", s)
	}

	docs := liveDocs(40)
	var ing IngestResponse
	if s := postJSON(t, client, ts.URL+"/v1/ingest", IngestRequest{Docs: docs}, &ing); s != http.StatusOK {
		t.Fatalf("ingest: status %d", s)
	}
	if ing.Ingested != len(docs) || ing.Docs != int64(len(docs)) || ing.Pending != int64(len(docs)) {
		t.Fatalf("ingest response = %+v", ing)
	}

	// Exact oracle: a pure batch run over the same documents.
	ndocs := make([]ngramstats.Document, len(docs))
	for i, d := range docs {
		ndocs[i] = ngramstats.Document{ID: d.ID, Text: d.Text, Year: d.Year, Web: d.Web}
	}
	oracleCorpus, err := ngramstats.FromDocuments(context.Background(), "live",
		func(yield func(ngramstats.Document, error) bool) {
			for _, d := range ndocs {
				if !yield(d, nil) {
					return
				}
			}
		}, ngramstats.BuilderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := ngramstats.Count(context.Background(), oracleCorpus, ngramstats.Options{
		MinFrequency: 1, MaxLength: 3, TempDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Release()

	// Approximate answers immediately, with approx: true, one-sided
	// estimates, and stated bounds.
	checkApprox := func(phrase string, wantGen int64) ApproxLookupResponse {
		t.Helper()
		var al ApproxLookupResponse
		if s := getStrict(t, client, ts.URL+"/v1/approx/lookup?q="+strings.ReplaceAll(phrase, " ", "+"), &al); s != http.StatusOK {
			t.Fatalf("approx lookup %q: status %d", phrase, s)
		}
		if !al.Approx {
			t.Fatalf("approx lookup %q: approx flag not set", phrase)
		}
		if al.Generation != wantGen {
			t.Fatalf("approx lookup %q: generation %d, want %d", phrase, al.Generation, wantGen)
		}
		ng, found, err := oracle.Lookup(phrase)
		if err != nil {
			t.Fatal(err)
		}
		exact := int64(0)
		if found {
			exact = ng.Frequency
		}
		if al.Estimate < exact {
			t.Fatalf("approx lookup %q: estimate %d below exact %d", phrase, al.Estimate, exact)
		}
		if al.Estimate > exact+al.Bound {
			t.Fatalf("approx lookup %q: estimate %d exceeds exact %d + bound %d", phrase, al.Estimate, exact, al.Bound)
		}
		return al
	}
	pre := checkApprox("the rose", 0)
	if pre.Exact != 0 || pre.Delta != pre.Estimate {
		t.Fatalf("pre-reconcile split = %+v, want all-delta", pre)
	}
	checkApprox("rose", 0)
	checkApprox("is a rose", 0)

	var atk ApproxTopKResponse
	if s := getStrict(t, client, ts.URL+"/v1/approx/topk?k=5", &atk); s != http.StatusOK {
		t.Fatalf("approx topk: status %d", s)
	}
	if !atk.Approx || len(atk.NGrams) != 5 {
		t.Fatalf("approx topk = %+v", atk)
	}
	top1, err := oracle.TopK(1)
	if err != nil {
		t.Fatal(err)
	}
	if atk.NGrams[0].Phrase != top1[0].Text {
		t.Fatalf("approx top-1 = %q, exact top-1 = %q", atk.NGrams[0].Phrase, top1[0].Text)
	}

	// Reconcile: the exact job runs, the index materializes, the delta
	// resets.
	var rec ReconcileResponse
	if s := postJSON(t, client, ts.URL+"/v1/admin/reconcile", nil, &rec); s != http.StatusOK {
		t.Fatalf("reconcile: status %d", s)
	}
	if !rec.Applied || rec.Docs != int64(len(docs)) || rec.Generation != 1 {
		t.Fatalf("reconcile response = %+v", rec)
	}
	if si.Pending() != 0 {
		t.Fatalf("pending after reconcile = %d", si.Pending())
	}

	// Exact endpoints now serve, identical to the batch oracle.
	var lr LookupResponse
	if s := getStrict(t, client, ts.URL+"/v1/lookup?q=the+rose", &lr); s != http.StatusOK {
		t.Fatalf("exact lookup after reconcile: status %d", s)
	}
	ng, found, err := oracle.Lookup("the rose")
	if err != nil || !found {
		t.Fatalf("oracle lookup: %v %v", found, err)
	}
	if !lr.Found || lr.NGram.Frequency != ng.Frequency {
		t.Fatalf("exact lookup = %+v, oracle frequency %d", lr, ng.Frequency)
	}

	// Approximate answers are now exact + empty delta: the same counts,
	// bound 0.
	post := checkApprox("the rose", 1)
	if post.Delta != 0 || post.Bound != 0 || post.Exact != ng.Frequency || post.Estimate != ng.Frequency {
		t.Fatalf("post-reconcile approx = %+v, want pure exact %d", post, ng.Frequency)
	}

	// Reconcile with nothing pending is a clean no-op.
	if s := postJSON(t, client, ts.URL+"/v1/admin/reconcile", nil, &rec); s != http.StatusOK {
		t.Fatalf("no-op reconcile: status %d", s)
	}
	if rec.Applied || rec.Generation != 1 {
		t.Fatalf("no-op reconcile response = %+v", rec)
	}

	// Health now reports the reconciled generation and live counters.
	if s := getStrict(t, client, ts.URL+"/healthz", &health); s != http.StatusOK {
		t.Fatalf("healthz: status %d", s)
	}
	ih := health.Indexes["live"]
	if !ih.Live || ih.Generation != 1 || ih.Records == 0 {
		t.Fatalf("post-reconcile index health = %+v", ih)
	}
	if health.Live.Reconciles != 1 || health.Live.Covered != int64(len(docs)) {
		t.Fatalf("post-reconcile live section = %+v", health.Live)
	}

	// Metrics carry the live gauges and the per-reason shed counters.
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(b)
	for _, want := range []string{
		"ngramsd_live_docs_total 40",
		"ngramsd_live_pending_docs 0",
		"ngramsd_reconciles_total 1",
		"ngramsd_live_sketch_bytes",
		`ngramsd_shed_total{endpoint="ingest"} 0`,
		`ngramsd_shed_reason_total{endpoint="ingest",reason="queue_full"} 0`,
		`ngramsd_shed_reason_total{endpoint="approx_lookup",reason="timeout"} 0`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

func TestLiveIngestValidation(t *testing.T) {
	_, ts, _ := newLiveServer(t, func(o *ServerOptions) {
		o.Live.MaxBatch = 4
	})
	client := ts.Client()
	var e ErrorResponse
	if s := postJSON(t, client, ts.URL+"/v1/ingest", IngestRequest{}, &e); s != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", s)
	}
	if s := postJSON(t, client, ts.URL+"/v1/ingest", IngestRequest{Docs: liveDocs(5)}, &e); s != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d, err %q", s, e.Error)
	}
	if s := getJSON(t, client, ts.URL+"/v1/approx/lookup?q=a+b+c+d", &e); s != http.StatusBadRequest {
		t.Fatalf("over-length phrase: status %d", s)
	}
	if s := getJSON(t, client, ts.URL+"/v1/approx/lookup", &e); s != http.StatusBadRequest {
		t.Fatalf("missing q: status %d", s)
	}
}

func TestHealthzWatchInterval(t *testing.T) {
	_, dir := buildServedIndex(t)
	_, ts := newTestServer(t, dir, func(o *ServerOptions) {
		o.WatchInterval = 250 * time.Millisecond
	})
	var health HealthResponse
	if s := getStrict(t, ts.Client(), ts.URL+"/healthz", &health); s != http.StatusOK {
		t.Fatalf("healthz: status %d", s)
	}
	if health.WatchInterval != "250ms" {
		t.Fatalf("watch_interval = %q, want 250ms", health.WatchInterval)
	}
}

// TestLiveSwapDrill extends the PR 7 hot-swap drill: clients hammer the
// approximate endpoints and keep ingesting while reconcile cycles swap
// fresh exact generations in. Every request must succeed — zero 5xx,
// zero connection errors — and estimates must never drop below the
// exact counts of what had been ingested when the query started.
func TestLiveSwapDrill(t *testing.T) {
	srv, ts, _ := newLiveServer(t, nil)
	client := ts.Client()

	if s := postJSON(t, client, ts.URL+"/v1/ingest", IngestRequest{Docs: liveDocs(10)}, nil); s != http.StatusOK {
		t.Fatalf("seed ingest: status %d", s)
	}

	// "the rose" appears twice per document; with D documents ingested
	// at request time the estimate must be >= 2*D_committed_before.
	var ingested atomic.Int64
	ingested.Store(10)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	report := func(format string, args ...any) {
		select {
		case errs <- fmt.Errorf(format, args...):
		default:
		}
	}

	// Ingester: keeps feeding batches.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := client.Post(ts.URL+"/v1/ingest", "application/json",
				strings.NewReader(`{"docs":[{"text":"the rose is red. the rose is a rose."}]}`))
			if err != nil {
				report("ingest: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				report("ingest: status %d", resp.StatusCode)
				return
			}
			ingested.Add(1)
		}
	}()

	// Queriers: hammer the approximate endpoints through the swaps.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				floor := 2 * ingested.Load()
				var al ApproxLookupResponse
				resp, err := client.Get(ts.URL + "/v1/approx/lookup?q=the+rose")
				if err != nil {
					report("approx lookup: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					report("approx lookup: status %d (%s)", resp.StatusCode, body)
					return
				}
				if err := json.Unmarshal(body, &al); err != nil {
					report("approx lookup decode: %v", err)
					return
				}
				if al.Estimate < floor {
					report("approx lookup: estimate %d below floor %d across swap", al.Estimate, floor)
					return
				}
				resp, err = client.Get(ts.URL + "/v1/approx/topk?k=3")
				if err != nil {
					report("approx topk: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					report("approx topk: status %d", resp.StatusCode)
					return
				}
			}
		}()
	}

	// Reconciler: three full cycles while the hammering runs.
	var lastGen int64
	for cycle := 0; cycle < 3; cycle++ {
		time.Sleep(50 * time.Millisecond)
		rec, err := srv.ReconcileNow(context.Background())
		if err != nil {
			t.Fatalf("reconcile cycle %d: %v", cycle, err)
		}
		if rec.Applied && rec.Generation <= lastGen {
			t.Fatalf("cycle %d: generation %d did not advance past %d", cycle, rec.Generation, lastGen)
		}
		if rec.Applied {
			lastGen = rec.Generation
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if lastGen == 0 {
		t.Fatal("no reconcile cycle applied")
	}

	// After the dust settles: one more reconcile, then the exact lookup
	// must equal 2 × total documents ingested.
	rec, err := srv.ReconcileNow(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_ = rec
	var lr LookupResponse
	if s := getStrict(t, client, ts.URL+"/v1/lookup?q=the+rose", &lr); s != http.StatusOK {
		t.Fatalf("final exact lookup: status %d", s)
	}
	if want := 2 * ingested.Load(); !lr.Found || lr.NGram.Frequency != want {
		t.Fatalf("final exact count = %+v, want %d", lr.NGram, want)
	}
}
