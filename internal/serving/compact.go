package serving

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"ngramstats"
	"ngramstats/internal/lsm"
)

// Defaults for the corresponding CompactConfig fields.
const (
	DefaultCompactDeltas   = 4
	DefaultCompactInterval = 10 * time.Second
)

// CompactConfig is the background compaction policy CompactLoop
// applies to served LSM chains. A chain is compacted when either
// trigger fires.
type CompactConfig struct {
	// MaxDeltas compacts a chain once it has at least this many delta
	// generations. When both MaxDeltas and MaxRatio are zero, MaxDeltas
	// defaults to DefaultCompactDeltas.
	MaxDeltas int
	// MaxRatio compacts a chain once its summed delta records reach
	// this fraction of the base's records (e.g. 0.5 = deltas half the
	// base). Zero disables the ratio trigger.
	MaxRatio float64
	// Interval is how often CompactLoop polls the served chain
	// manifests (default DefaultCompactInterval). Polling reads only
	// the small chain manifest, never the index data.
	Interval time.Duration
	// TempDir is the scratch directory for the compaction merge sort.
	TempDir string
}

// ErrCompactBusy reports that a compaction of the index is already
// running; POST /v1/admin/compact maps it to 409.
var ErrCompactBusy = errors.New("serving: compaction already running")

// CompactNow compacts the named index's LSM chain into a single base
// and hot-swaps the result in, returning the compaction stats and the
// generation now serving. A plain index or a chain without deltas is a
// successful no-op (stats.Compacted false). Queries are never
// disturbed: the running generation keeps serving the old chain until
// the post-compaction reload swaps the new base in.
func (s *Server) CompactNow(name string) (*ngramstats.CompactStats, int64, error) {
	h, ok := s.handles[name]
	if !ok {
		return nil, 0, fmt.Errorf("serving: unknown index %q", name)
	}
	if !h.compacting.CompareAndSwap(false, true) {
		return nil, 0, fmt.Errorf("%w: index %q", ErrCompactBusy, name)
	}
	defer h.compacting.Store(false)

	var tempDir string
	if s.opts.Compact != nil {
		tempDir = s.opts.Compact.TempDir
	}
	h.chainMu.Lock()
	stats, err := ngramstats.CompactIndex(h.cfg.Dir, ngramstats.CompactOptions{
		TempDir:     tempDir,
		CacheBlocks: h.cfg.CacheBlocks,
	})
	h.chainMu.Unlock()
	if err != nil {
		return nil, 0, fmt.Errorf("serving: compact %q: %w", name, err)
	}
	if stats.Compacted {
		gen, err := s.Reload(name)
		if err != nil {
			return stats, 0, err
		}
		return stats, gen, nil
	}
	var gen int64
	if g := h.acquire(); g != nil {
		gen = g.num
		g.release()
	}
	return stats, gen, nil
}

// shouldCompact evaluates the compaction policy against the chain
// manifest alone — a few hundred bytes — so the loop stays cheap on
// idle chains.
func (s *Server) shouldCompact(h *handle) bool {
	cc := s.opts.Compact
	if !lsm.Exists(h.cfg.Dir) {
		return false
	}
	man, err := lsm.ReadManifest(h.cfg.Dir)
	if err != nil || len(man.Deltas) == 0 {
		return false
	}
	if cc.MaxDeltas > 0 && len(man.Deltas) >= cc.MaxDeltas {
		return true
	}
	if cc.MaxRatio > 0 && man.Base.Records > 0 {
		var deltas int64
		for _, g := range man.Deltas {
			deltas += g.Records
		}
		if float64(deltas)/float64(man.Base.Records) >= cc.MaxRatio {
			return true
		}
	}
	return false
}

// CompactLoop polls every served chain at the configured interval and
// compacts the ones the policy (ServerOptions.Compact) selects. It
// returns immediately when no policy is configured; otherwise it
// blocks until ctx is done — run it in its own goroutine.
func (s *Server) CompactLoop(ctx context.Context) {
	if s.opts.Compact == nil {
		return
	}
	t := time.NewTicker(s.opts.Compact.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		for _, name := range s.names {
			if !s.shouldCompact(s.handles[name]) {
				continue
			}
			stats, gen, err := s.CompactNow(name)
			if err != nil {
				if !errors.Is(err, ErrCompactBusy) {
					s.logf("serving: compact loop %q: %v", name, err)
				}
				continue
			}
			if stats.Compacted {
				s.logf("serving: compacted index %q: %d generations into %d records in %s, now generation %d",
					name, stats.Generations, stats.Records, stats.Wallclock.Round(time.Millisecond), gen)
			}
		}
	}
}

// handleCompact answers POST /v1/admin/compact: merge the named (or
// only) index's LSM chain into a single base now and swap it in.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("index")
	if name == "" {
		if len(s.names) != 1 {
			writeError(w, http.StatusBadRequest,
				"index parameter required (serving %d indexes: %v)", len(s.names), s.names)
			return
		}
		name = s.names[0]
	}
	if _, ok := s.handles[name]; !ok {
		writeError(w, http.StatusNotFound, "unknown index %q (serving %v)", name, s.names)
		return
	}
	stats, gen, err := s.CompactNow(name)
	switch {
	case errors.Is(err, ErrCompactBusy):
		writeError(w, http.StatusConflict, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, CompactResponse{
		Index:       name,
		Compacted:   stats.Compacted,
		Generations: stats.Generations,
		Records:     stats.Records,
		WallclockMS: stats.Wallclock.Milliseconds(),
		Generation:  gen,
	})
}
