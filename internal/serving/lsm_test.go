package serving

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ngramstats"
	"ngramstats/internal/lsm"
)

// newIncrementalServer starts a live-ingest server in incremental
// (LSM) mode over an initially empty index directory, returning the
// directory so tests can inspect the chain on disk.
func newIncrementalServer(t testing.TB) (*Server, *httptest.Server, string) {
	t.Helper()
	si, err := ngramstats.NewStreamIngester(ngramstats.IngestOptions{
		Epsilon: 0.001, Delta: 0.02, MaxLength: 3, TopK: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "live-idx")
	srv, err := NewServer(ServerOptions{
		Indexes: map[string]IndexConfig{"live": {Dir: dir}},
		Live: &LiveConfig{
			Ingester:    si,
			Index:       "live",
			Count:       ngramstats.Options{MinFrequency: 1, TempDir: t.TempDir()},
			Save:        ngramstats.SaveOptions{Shards: 2, TopDepth: 32},
			Incremental: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts, dir
}

// TestLiveRetryAfterBeforeMaterialization: the 503 served before the
// first reconciliation materializes a live index carries a Retry-After
// hint, so well-behaved clients back off instead of hammering.
func TestLiveRetryAfterBeforeMaterialization(t *testing.T) {
	_, ts, _ := newIncrementalServer(t)
	resp, err := ts.Client().Get(ts.URL + "/v1/lookup?q=the+rose")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-materialization lookup: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 before first reconciliation is missing the Retry-After header")
	}
}

// TestIncrementalReconcile: with LiveConfig.Incremental the first
// reconciliation materializes the base and every later one appends
// only the newly ingested documents as an LSM delta — asserted through
// the job's MAP_INPUT_RECORDS counter — while exact answers match a
// batch rebuild over the whole stream.
func TestIncrementalReconcile(t *testing.T) {
	_, ts, dir := newIncrementalServer(t)
	client := ts.Client()

	first, second := liveDocs(12), liveDocs(17)[12:]
	var ing IngestResponse
	if s := postJSON(t, client, ts.URL+"/v1/ingest", IngestRequest{Docs: first}, &ing); s != http.StatusOK {
		t.Fatalf("ingest: status %d", s)
	}

	// First reconcile: the full path, materializing the base.
	var rec ReconcileResponse
	if s := postJSON(t, client, ts.URL+"/v1/admin/reconcile", nil, &rec); s != http.StatusOK {
		t.Fatalf("reconcile: status %d", s)
	}
	if !rec.Applied || rec.Incremental || rec.Docs != int64(len(first)) {
		t.Fatalf("first reconcile = %+v, want full (non-incremental) over %d docs", rec, len(first))
	}
	if lsm.Exists(dir) {
		t.Fatal("first reconciliation must save a plain base, not a chain")
	}

	// Second reconcile: incremental, appending exactly the new docs.
	if s := postJSON(t, client, ts.URL+"/v1/ingest", IngestRequest{Docs: second}, &ing); s != http.StatusOK {
		t.Fatalf("ingest: status %d", s)
	}
	if s := postJSON(t, client, ts.URL+"/v1/admin/reconcile", nil, &rec); s != http.StatusOK {
		t.Fatalf("reconcile: status %d", s)
	}
	if !rec.Applied || !rec.Incremental {
		t.Fatalf("second reconcile = %+v, want incremental", rec)
	}
	if rec.AppendedDocs != int64(len(second)) || rec.MapInputRecords != int64(len(second)) {
		t.Fatalf("second reconcile appended %d docs reading %d records, want %d of each (O(new documents))",
			rec.AppendedDocs, rec.MapInputRecords, len(second))
	}
	if rec.Docs != int64(len(first)+len(second)) {
		t.Fatalf("reconciled docs = %d, want %d", rec.Docs, len(first)+len(second))
	}
	if !lsm.Exists(dir) {
		t.Fatal("incremental reconciliation must leave an LSM chain")
	}
	man, err := lsm.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Deltas) != 1 || man.Docs != int64(len(first)+len(second)) {
		t.Fatalf("chain manifest: %d deltas over %d docs", len(man.Deltas), man.Docs)
	}

	// The merged view answers exactly like a batch job over the stream.
	all := append(append([]WireDocument(nil), first...), second...)
	ndocs := make([]ngramstats.Document, len(all))
	for i, d := range all {
		ndocs[i] = ngramstats.Document{Text: d.Text, Year: d.Year}
	}
	oracleCorpus, err := ngramstats.FromDocuments(context.Background(), "live",
		func(yield func(ngramstats.Document, error) bool) {
			for _, d := range ndocs {
				if !yield(d, nil) {
					return
				}
			}
		}, ngramstats.BuilderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := ngramstats.Count(context.Background(), oracleCorpus,
		ngramstats.Options{MinFrequency: 1, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Release()
	for _, q := range []string{"the rose", "rose is red", "the rose w3", "never seen"} {
		wantNG, wantOK, err := oracle.Lookup(q)
		if err != nil {
			t.Fatal(err)
		}
		var lr LookupResponse
		if s := getStrict(t, client, ts.URL+"/v1/lookup?q="+url.QueryEscape(q), &lr); s != http.StatusOK {
			t.Fatalf("lookup %q: status %d", q, s)
		}
		if lr.Found != wantOK {
			t.Fatalf("lookup %q: found=%v, oracle %v", q, lr.Found, wantOK)
		}
		if wantOK && lr.NGram.Frequency != wantNG.Frequency {
			t.Fatalf("lookup %q: frequency %d, oracle %d", q, lr.NGram.Frequency, wantNG.Frequency)
		}
	}

	// With nothing pending, reconcile is a clean no-op.
	if s := postJSON(t, client, ts.URL+"/v1/admin/reconcile", nil, &rec); s != http.StatusOK {
		t.Fatalf("no-op reconcile: status %d", s)
	}
	if rec.Applied {
		t.Fatalf("no-op reconcile = %+v, want Applied false", rec)
	}
}

// TestCompactEndpoint: POST /v1/admin/compact merges a served chain
// into a single base, swaps it in, and reports the stats; compacting
// an already-compact index is a no-op, and a plain index 404s nothing.
func TestCompactEndpoint(t *testing.T) {
	_, ts, dir := newIncrementalServer(t)
	client := ts.Client()

	// Grow a chain: base + one delta.
	var rec ReconcileResponse
	if s := postJSON(t, client, ts.URL+"/v1/ingest", IngestRequest{Docs: liveDocs(8)}, nil); s != http.StatusOK {
		t.Fatalf("ingest: status %d", s)
	}
	if s := postJSON(t, client, ts.URL+"/v1/admin/reconcile", nil, &rec); s != http.StatusOK {
		t.Fatalf("reconcile: status %d", s)
	}
	if s := postJSON(t, client, ts.URL+"/v1/ingest", IngestRequest{Docs: liveDocs(12)[8:]}, nil); s != http.StatusOK {
		t.Fatalf("ingest: status %d", s)
	}
	if s := postJSON(t, client, ts.URL+"/v1/admin/reconcile", nil, &rec); s != http.StatusOK {
		t.Fatalf("reconcile: status %d", s)
	}
	if !rec.Incremental {
		t.Fatalf("second reconcile = %+v, want incremental", rec)
	}

	var before LookupResponse
	if s := getStrict(t, client, ts.URL+"/v1/lookup?q=the+rose", &before); s != http.StatusOK {
		t.Fatalf("lookup: status %d", s)
	}

	var cr CompactResponse
	if s := postJSON(t, client, ts.URL+"/v1/admin/compact", nil, &cr); s != http.StatusOK {
		t.Fatalf("compact: status %d (%+v)", s, cr)
	}
	if !cr.Compacted || cr.Generations != 2 || cr.Generation <= before.Generation {
		t.Fatalf("compact response = %+v, want 2 generations merged into a newer index generation", cr)
	}
	man, err := lsm.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Deltas) != 0 || man.Base.Dir == "." {
		t.Fatalf("post-compaction chain: base %q, %d deltas", man.Base.Dir, len(man.Deltas))
	}

	// Identical answers from the compacted base.
	var after LookupResponse
	if s := getStrict(t, client, ts.URL+"/v1/lookup?q=the+rose", &after); s != http.StatusOK {
		t.Fatalf("lookup after compact: status %d", s)
	}
	if after.Found != before.Found || after.NGram.Frequency != before.NGram.Frequency {
		t.Fatalf("compaction changed the answer: %+v vs %+v", after, before)
	}

	// Compacting again is a successful no-op.
	if s := postJSON(t, client, ts.URL+"/v1/admin/compact", nil, &cr); s != http.StatusOK {
		t.Fatalf("no-op compact: status %d", s)
	}
	if cr.Compacted {
		t.Fatalf("no-op compact = %+v, want Compacted false", cr)
	}
}

// TestChainHotSwapUnderLoad is the swap drill: eight query clients
// hammer a chain-backed index while the writer appends delta after
// delta and compacts in between, every mutation hot-swapped in through
// Reload. Not a single request may fail.
func TestChainHotSwapUnderLoad(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "idx")
	docs := []string{
		"the rose is red. the rose is a rose.",
		"a rose by any other name. the red rose.",
	}
	years := []int{2020, 2021}
	c, err := ngramstats.FromText("drill", docs, years)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ngramstats.Count(context.Background(), c,
		ngramstats.Options{MinFrequency: 1, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.SaveWith(dir, ngramstats.SaveOptions{TempDir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	res.Release()

	srv, ts := newTestServer(t, dir, nil)
	client := ts.Client()

	var (
		stop     atomic.Bool
		failures atomic.Int64
		queries  atomic.Int64
		wg       sync.WaitGroup
	)
	urls := []string{
		ts.URL + "/v1/lookup?q=the+rose&index=nyt",
		ts.URL + "/v1/topk?k=5&index=nyt",
		ts.URL + "/v1/prefix?q=rose&limit=10&index=nyt",
	}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for !stop.Load() {
				resp, err := client.Get(urls[i%len(urls)])
				if err != nil {
					failures.Add(1)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
				}
				resp.Body.Close()
				queries.Add(1)
			}
		}(i)
	}

	// Every client completes at least one request before the first
	// mutation, so the drill genuinely overlaps queries with appends,
	// compactions, and swaps even on a loaded machine.
	for queries.Load() < 8 {
		time.Sleep(time.Millisecond)
	}

	// The writer: appends and compactions, each swapped in hot. All
	// mutations run from this one goroutine (single-writer contract);
	// the races under test are mutation-vs-query and swap-vs-query.
	for round := 0; round < 4; round++ {
		for d := 0; d < 2; d++ {
			batch := []ngramstats.Document{{
				Text: fmt.Sprintf("the rose round %d batch %d. a new rose blooms.", round, d),
				Year: 2022,
			}}
			if _, err := ngramstats.AppendDelta(context.Background(), dir, batch,
				ngramstats.AppendOptions{Count: ngramstats.Options{TempDir: t.TempDir()}}); err != nil {
				t.Fatalf("append round %d: %v", round, err)
			}
			if _, err := srv.Reload("nyt"); err != nil {
				t.Fatalf("reload round %d: %v", round, err)
			}
		}
		stats, _, err := srv.CompactNow("nyt")
		if err != nil {
			t.Fatalf("compact round %d: %v", round, err)
		}
		if !stats.Compacted {
			t.Fatalf("compact round %d did not run", round)
		}
	}
	stop.Store(true)
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d of %d requests failed during the swap drill", n, queries.Load())
	}
	if queries.Load() == 0 {
		t.Fatal("drill produced no queries")
	}

	// The final state answers every appended phrase.
	var lr LookupResponse
	if s := getStrict(t, client, ts.URL+"/v1/lookup?q=a+new+rose+blooms&index=nyt", &lr); s != http.StatusOK || !lr.Found {
		t.Fatalf("post-drill lookup: status %d found %v", s, lr.Found)
	}
	if lr.NGram.Frequency != 8 {
		t.Fatalf("post-drill frequency %d, want 8 (one per appended batch)", lr.NGram.Frequency)
	}
}
