package serving

import "ngramstats"

// This file is the versioned wire schema of the /v1 API: every /v1
// response decodes into exactly one of these types, and the golden
// wire tests round-trip each endpoint through them. The legacy
// unversioned endpoints do NOT use these types — their map-based
// encoding is frozen for byte-compatibility with PR 4-era clients.

// WireNGram is the JSON shape of one n-gram, shared by the /v1 and
// legacy endpoints.
type WireNGram struct {
	Text      string          `json:"text"`
	IDs       []uint32        `json:"ids,omitempty"`
	Frequency int64           `json:"frequency"`
	Years     map[int]int64   `json:"years,omitempty"`
	Documents map[int64]int64 `json:"documents,omitempty"`
}

func toWire(ng ngramstats.NGram) WireNGram {
	return WireNGram{
		Text:      ng.Text,
		IDs:       ng.IDs,
		Frequency: ng.Frequency,
		Years:     ng.Years,
		Documents: ng.Documents,
	}
}

// ErrorResponse is the body of every non-2xx JSON response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// LookupResponse is the body of GET /v1/lookup.
type LookupResponse struct {
	Index      string     `json:"index"`
	Generation int64      `json:"generation"`
	Query      string     `json:"query"`
	Found      bool       `json:"found"`
	NGram      *WireNGram `json:"ngram,omitempty"`
}

// PrefixResponse is the body of GET /v1/prefix.
type PrefixResponse struct {
	Index      string      `json:"index"`
	Generation int64       `json:"generation"`
	Query      string      `json:"query"`
	Count      int         `json:"count"`
	NGrams     []WireNGram `json:"ngrams"`
}

// TopKResponse is the body of GET /v1/topk.
type TopKResponse struct {
	Index      string      `json:"index"`
	Generation int64       `json:"generation"`
	K          int         `json:"k"`
	NGrams     []WireNGram `json:"ngrams"`
}

// BatchOp is one operation of a POST /v1/query batch.
type BatchOp struct {
	// Op is "lookup", "prefix", or "topk".
	Op string `json:"op"`
	// Q is the phrase (lookup, prefix).
	Q string `json:"q,omitempty"`
	// Limit bounds a prefix scan; 0 selects the server default.
	Limit int `json:"limit,omitempty"`
	// K bounds a topk selection; 0 selects the server default.
	K int `json:"k,omitempty"`
}

// BatchRequest is the body of POST /v1/query: a batch of operations
// answered from one index generation in one round trip.
type BatchRequest struct {
	// Index names the index to query; optional while exactly one index
	// is served.
	Index string    `json:"index,omitempty"`
	Ops   []BatchOp `json:"ops"`
}

// BatchResult is the outcome of one BatchOp, in request order. Either
// Error is set, or the fields of the op's kind are.
type BatchResult struct {
	Op     string      `json:"op"`
	Error  string      `json:"error,omitempty"`
	Found  bool        `json:"found,omitempty"`
	NGram  *WireNGram  `json:"ngram,omitempty"`
	Count  int         `json:"count,omitempty"`
	NGrams []WireNGram `json:"ngrams,omitempty"`
}

// BatchResponse is the body of POST /v1/query. Generation is the index
// generation every result was answered from: a batch never straddles a
// hot swap.
type BatchResponse struct {
	Index      string        `json:"index"`
	Generation int64         `json:"generation"`
	Results    []BatchResult `json:"results"`
}

// LMScoreResponse is the body of GET /v1/lm/score: the Katz back-off
// log-probability of the queried phrase.
type LMScoreResponse struct {
	Index      string  `json:"index"`
	Generation int64   `json:"generation"`
	Query      string  `json:"query"`
	Words      int     `json:"words"`
	LogProb    float64 `json:"logprob"`
}

// WirePrediction is one next-word candidate of GET /v1/lm/predict.
type WirePrediction struct {
	Word      string  `json:"word"`
	Frequency int64   `json:"frequency"`
	Score     float64 `json:"score"`
}

// LMPredictResponse is the body of GET /v1/lm/predict.
type LMPredictResponse struct {
	Index       string           `json:"index"`
	Generation  int64            `json:"generation"`
	Context     string           `json:"context"`
	K           int              `json:"k"`
	Predictions []WirePrediction `json:"predictions"`
}

// WireDocument is one document of a POST /v1/ingest batch.
type WireDocument struct {
	// ID identifies the document; 0 auto-assigns ingestion order.
	ID int64 `json:"id,omitempty"`
	// Text is the raw document text.
	Text string `json:"text"`
	// Year is the publication year (0 = unknown).
	Year int `json:"year,omitempty"`
	// Web marks web-page text for boilerplate filtering.
	Web bool `json:"web,omitempty"`
}

// IngestRequest is the body of POST /v1/ingest.
type IngestRequest struct {
	Docs []WireDocument `json:"docs"`
}

// IngestResponse is the body of POST /v1/ingest: the stream position
// after the batch.
type IngestResponse struct {
	// Ingested is the number of documents this request folded in.
	Ingested int `json:"ingested"`
	// Docs is the total number of documents ingested so far.
	Docs int64 `json:"docs"`
	// Covered is how many leading documents the last committed
	// reconciliation serves exactly.
	Covered int64 `json:"covered"`
	// Pending is Docs − Covered: documents currently answered from the
	// approximate sketch delta.
	Pending int64 `json:"pending"`
}

// ApproxNGram is one approximate n-gram statistic: the exact component
// (from the last reconciled index generation) plus the one-sided sketch
// estimate of everything newer.
type ApproxNGram struct {
	Phrase string `json:"phrase"`
	Order  int    `json:"order"`
	// Estimate = Exact + Delta: one-sided, never below the true count
	// over everything ingested.
	Estimate int64 `json:"estimate"`
	// Exact is the reconciled component.
	Exact int64 `json:"exact"`
	// Delta is the sketch component covering unreconciled documents.
	Delta int64 `json:"delta"`
	// Bound is the one-sided error bound of Delta (ceil of ε·N at this
	// order): with probability 1−δ, Estimate exceeds the true count by
	// no more.
	Bound int64 `json:"bound"`
}

// ApproxLookupResponse is the body of GET /v1/approx/lookup. Approx is
// always true: the estimate is one-sided with a stated error bound,
// unlike the exact /v1/lookup answer.
type ApproxLookupResponse struct {
	Index string `json:"index"`
	// Generation is the reconciled index generation the exact component
	// was answered from; 0 before the first reconciliation lands.
	Generation int64  `json:"generation"`
	Query      string `json:"query"`
	Approx     bool   `json:"approx"`
	ApproxNGram
}

// ApproxTopKResponse is the body of GET /v1/approx/topk.
type ApproxTopKResponse struct {
	Index      string        `json:"index"`
	Generation int64         `json:"generation"`
	K          int           `json:"k"`
	Approx     bool          `json:"approx"`
	NGrams     []ApproxNGram `json:"ngrams"`
}

// ReconcileResponse is the body of POST /v1/admin/reconcile.
type ReconcileResponse struct {
	Index string `json:"index"`
	// Applied reports whether an exact job ran; false when no documents
	// were ingested yet.
	Applied bool `json:"applied"`
	// Docs is how many documents the reconciled index now covers.
	Docs int64 `json:"docs"`
	// Generation is the index generation serving the reconciled
	// results.
	Generation int64 `json:"generation"`
	// Incremental reports that the reconciliation appended a delta
	// generation (LiveConfig.Incremental) instead of rebuilding.
	Incremental bool `json:"incremental,omitempty"`
	// AppendedDocs is how many new documents the delta covered —
	// exactly the documents ingested since the previous reconcile.
	AppendedDocs int64 `json:"appended_docs,omitempty"`
	// MapInputRecords is the MAP_INPUT_RECORDS counter of the delta
	// job: the records the incremental run actually read, evidence the
	// append was O(new documents).
	MapInputRecords int64 `json:"map_input_records,omitempty"`
}

// CompactResponse is the body of POST /v1/admin/compact.
type CompactResponse struct {
	Index string `json:"index"`
	// Compacted is false when there was nothing to do: a plain index,
	// or a chain with no deltas.
	Compacted bool `json:"compacted"`
	// Generations is how many chain generations were merged.
	Generations int `json:"generations,omitempty"`
	// Records is the record count of the compacted base.
	Records int64 `json:"records,omitempty"`
	// WallclockMS is the compaction's elapsed time in milliseconds.
	WallclockMS int64 `json:"wallclock_ms,omitempty"`
	// Generation is the index generation now serving.
	Generation int64 `json:"generation"`
}

// IndexHealth is one index's entry in HealthResponse.
type IndexHealth struct {
	Records      int64  `json:"records"`
	Shards       int    `json:"shards"`
	Generation   int64  `json:"generation"`
	ManifestTime string `json:"manifest_mtime"` // RFC 3339
	Corpus       string `json:"corpus,omitempty"`
	LM           bool   `json:"lm,omitempty"`
	// Live marks the index fed by the live reconciliation loop; a live
	// index may not have a generation yet (Generation 0, zero Records)
	// before the first reconcile lands, without making the server
	// unhealthy.
	Live bool `json:"live,omitempty"`
}

// LiveHealth is the live-ingestion section of HealthResponse.
type LiveHealth struct {
	// Index is the served index the reconciliation loop feeds.
	Index   string `json:"index"`
	Docs    int64  `json:"docs"`
	Covered int64  `json:"covered"`
	Pending int64  `json:"pending"`
	// Reconciles counts committed reconciliations.
	Reconciles int64 `json:"reconciles"`
	// Epsilon and Delta state the sketch's ε·N error bound and its
	// failure probability.
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta"`
	// MaxLength is the longest sketched (and reconciled) n-gram.
	MaxLength int `json:"max_length"`
	// SketchBytes is the resident counter memory of the sketches.
	SketchBytes int64 `json:"sketch_bytes"`
}

// HealthResponse is the body of GET /healthz and GET /v1/healthz.
type HealthResponse struct {
	Status string `json:"status"`
	Uptime string `json:"uptime"`
	// WatchInterval is the manifest poll interval when the daemon runs
	// with -watch; empty otherwise.
	WatchInterval string                 `json:"watch_interval,omitempty"`
	Indexes       map[string]IndexHealth `json:"indexes"`
	// Live reports the live-ingestion state when the daemon runs with
	// -ingest; absent otherwise.
	Live *LiveHealth `json:"live,omitempty"`
}

// ReloadResponse is the body of POST /v1/admin/reload: the new
// generation number per reloaded index.
type ReloadResponse struct {
	Reloaded map[string]int64 `json:"reloaded"`
}
