package serving

import "ngramstats"

// This file is the versioned wire schema of the /v1 API: every /v1
// response decodes into exactly one of these types, and the golden
// wire tests round-trip each endpoint through them. The legacy
// unversioned endpoints do NOT use these types — their map-based
// encoding is frozen for byte-compatibility with PR 4-era clients.

// WireNGram is the JSON shape of one n-gram, shared by the /v1 and
// legacy endpoints.
type WireNGram struct {
	Text      string          `json:"text"`
	IDs       []uint32        `json:"ids,omitempty"`
	Frequency int64           `json:"frequency"`
	Years     map[int]int64   `json:"years,omitempty"`
	Documents map[int64]int64 `json:"documents,omitempty"`
}

func toWire(ng ngramstats.NGram) WireNGram {
	return WireNGram{
		Text:      ng.Text,
		IDs:       ng.IDs,
		Frequency: ng.Frequency,
		Years:     ng.Years,
		Documents: ng.Documents,
	}
}

// ErrorResponse is the body of every non-2xx JSON response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// LookupResponse is the body of GET /v1/lookup.
type LookupResponse struct {
	Index      string     `json:"index"`
	Generation int64      `json:"generation"`
	Query      string     `json:"query"`
	Found      bool       `json:"found"`
	NGram      *WireNGram `json:"ngram,omitempty"`
}

// PrefixResponse is the body of GET /v1/prefix.
type PrefixResponse struct {
	Index      string      `json:"index"`
	Generation int64       `json:"generation"`
	Query      string      `json:"query"`
	Count      int         `json:"count"`
	NGrams     []WireNGram `json:"ngrams"`
}

// TopKResponse is the body of GET /v1/topk.
type TopKResponse struct {
	Index      string      `json:"index"`
	Generation int64       `json:"generation"`
	K          int         `json:"k"`
	NGrams     []WireNGram `json:"ngrams"`
}

// BatchOp is one operation of a POST /v1/query batch.
type BatchOp struct {
	// Op is "lookup", "prefix", or "topk".
	Op string `json:"op"`
	// Q is the phrase (lookup, prefix).
	Q string `json:"q,omitempty"`
	// Limit bounds a prefix scan; 0 selects the server default.
	Limit int `json:"limit,omitempty"`
	// K bounds a topk selection; 0 selects the server default.
	K int `json:"k,omitempty"`
}

// BatchRequest is the body of POST /v1/query: a batch of operations
// answered from one index generation in one round trip.
type BatchRequest struct {
	// Index names the index to query; optional while exactly one index
	// is served.
	Index string    `json:"index,omitempty"`
	Ops   []BatchOp `json:"ops"`
}

// BatchResult is the outcome of one BatchOp, in request order. Either
// Error is set, or the fields of the op's kind are.
type BatchResult struct {
	Op     string      `json:"op"`
	Error  string      `json:"error,omitempty"`
	Found  bool        `json:"found,omitempty"`
	NGram  *WireNGram  `json:"ngram,omitempty"`
	Count  int         `json:"count,omitempty"`
	NGrams []WireNGram `json:"ngrams,omitempty"`
}

// BatchResponse is the body of POST /v1/query. Generation is the index
// generation every result was answered from: a batch never straddles a
// hot swap.
type BatchResponse struct {
	Index      string        `json:"index"`
	Generation int64         `json:"generation"`
	Results    []BatchResult `json:"results"`
}

// LMScoreResponse is the body of GET /v1/lm/score: the Katz back-off
// log-probability of the queried phrase.
type LMScoreResponse struct {
	Index      string  `json:"index"`
	Generation int64   `json:"generation"`
	Query      string  `json:"query"`
	Words      int     `json:"words"`
	LogProb    float64 `json:"logprob"`
}

// WirePrediction is one next-word candidate of GET /v1/lm/predict.
type WirePrediction struct {
	Word      string  `json:"word"`
	Frequency int64   `json:"frequency"`
	Score     float64 `json:"score"`
}

// LMPredictResponse is the body of GET /v1/lm/predict.
type LMPredictResponse struct {
	Index       string           `json:"index"`
	Generation  int64            `json:"generation"`
	Context     string           `json:"context"`
	K           int              `json:"k"`
	Predictions []WirePrediction `json:"predictions"`
}

// IndexHealth is one index's entry in HealthResponse.
type IndexHealth struct {
	Records      int64  `json:"records"`
	Shards       int    `json:"shards"`
	Generation   int64  `json:"generation"`
	ManifestTime string `json:"manifest_mtime"` // RFC 3339
	Corpus       string `json:"corpus,omitempty"`
	LM           bool   `json:"lm,omitempty"`
}

// HealthResponse is the body of GET /healthz and GET /v1/healthz.
type HealthResponse struct {
	Status  string                 `json:"status"`
	Uptime  string                 `json:"uptime"`
	Indexes map[string]IndexHealth `json:"indexes"`
}

// ReloadResponse is the body of POST /v1/admin/reload: the new
// generation number per reloaded index.
type ReloadResponse struct {
	Reloaded map[string]int64 `json:"reloaded"`
}
