package serving

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ngramstats"
)

// buildServedIndex computes statistics over a synthetic corpus, saves
// them, and returns the live Result (the oracle) plus the saved index
// directory. Re-saving the Result into the directory with Replace
// produces a fresh generation with identical answers — the fixture of
// every hot-swap test.
func buildServedIndex(t testing.TB) (*ngramstats.Result, string) {
	t.Helper()
	corpus := ngramstats.SyntheticNYT(60, 7)
	res, err := ngramstats.Count(context.Background(), corpus, ngramstats.Options{
		MinFrequency: 3, MaxLength: 4, Combiner: true, TempDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { res.Release() })
	if res.Len() == 0 {
		t.Fatal("synthetic corpus produced no n-grams")
	}
	dir := filepath.Join(t.TempDir(), "idx")
	if err := res.SaveWith(dir, saveOpts(false)); err != nil {
		t.Fatal(err)
	}
	return res, dir
}

func saveOpts(replace bool) ngramstats.SaveOptions {
	return ngramstats.SaveOptions{Shards: 3, TopDepth: 64, Replace: replace}
}

// newTestServer serves the directory as index "nyt" with the given
// option tweaks applied on top of the test defaults.
func newTestServer(t testing.TB, dir string, tweak func(*ServerOptions)) (*Server, *httptest.Server) {
	t.Helper()
	opts := ServerOptions{Indexes: map[string]IndexConfig{"nyt": {Dir: dir}}}
	if tweak != nil {
		tweak(&opts)
	}
	srv, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func getJSON(t *testing.T, client *http.Client, url string, out any) int {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decode %s: %v (body %q)", url, err, body)
		}
	}
	return resp.StatusCode
}

// getStrict fetches url and decodes the body with unknown JSON fields
// disallowed — the golden check that a /v1 response carries exactly
// its documented wire schema.
func getStrict(t *testing.T, client *http.Client, url string, out any) int {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(out); err != nil {
		t.Fatalf("strict decode %s into %T: %v (body %q)", url, out, err, body)
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, client *http.Client, url string, req, out any) int {
	t.Helper()
	var body io.Reader
	if req != nil {
		data, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		body = bytes.NewReader(data)
	}
	resp, err := client.Post(url, "application/json", body)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	if out != nil {
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(out); err != nil {
			t.Fatalf("strict decode %s into %T: %v (body %q)", url, out, err, data)
		}
	}
	return resp.StatusCode
}

// lookupResponse mirrors the legacy /lookup JSON shape.
type lookupResponse struct {
	Index string    `json:"index"`
	Query string    `json:"query"`
	Found bool      `json:"found"`
	NGram WireNGram `json:"ngram"`
}

// TestServingEndToEnd is the serving-smoke oracle test: concurrent
// HTTP clients query a saved index — via both the legacy and the /v1
// endpoints — and every response must match the in-process Result's
// answer. Run under -race in CI.
func TestServingEndToEnd(t *testing.T) {
	res, dir := buildServedIndex(t)
	_, ts := newTestServer(t, dir, nil)

	// Oracle answers, computed once from the live Result.
	top, err := res.TopK(20)
	if err != nil {
		t.Fatal(err)
	}
	type oracleEntry struct {
		ng    ngramstats.NGram
		found bool
	}
	oracle := make(map[string]oracleEntry)
	for ng, oerr := range res.NGrams() {
		if oerr != nil {
			t.Fatal(oerr)
		}
		oracle[ng.Text] = oracleEntry{ng: ng, found: true}
	}
	// A few guaranteed misses.
	for _, miss := range []string{"zzz qqq xyzzy", "no such phrase whatsoever"} {
		oracle[miss] = oracleEntry{}
	}
	phrases := make([]string, 0, len(oracle))
	for p := range oracle {
		phrases = append(phrases, p)
	}

	const clients = 32
	const perClient = 40
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := ts.Client()
			for i := 0; i < perClient; i++ {
				p := phrases[(c*perClient+i*13)%len(phrases)]
				want := oracle[p]
				// Alternate between the legacy alias and /v1.
				if i%2 == 0 {
					var got lookupResponse
					status := getJSON(t, client, ts.URL+"/lookup?q="+urlQuery(p), &got)
					if status != http.StatusOK {
						t.Errorf("client %d: /lookup status %d", c, status)
						return
					}
					if got.Found != want.found {
						t.Errorf("client %d: Lookup(%q) found=%v, oracle says %v", c, p, got.Found, want.found)
						return
					}
					if want.found && !reflect.DeepEqual(got.NGram, toWire(want.ng)) {
						t.Errorf("client %d: Lookup(%q) = %+v, oracle %+v", c, p, got.NGram, toWire(want.ng))
						return
					}
				} else {
					var got LookupResponse
					status := getJSON(t, client, ts.URL+"/v1/lookup?q="+urlQuery(p), &got)
					if status != http.StatusOK {
						t.Errorf("client %d: /v1/lookup status %d", c, status)
						return
					}
					if got.Found != want.found || got.Generation != 1 {
						t.Errorf("client %d: /v1/lookup(%q) = %+v, oracle found=%v", c, p, got, want.found)
						return
					}
					if want.found && !reflect.DeepEqual(*got.NGram, toWire(want.ng)) {
						t.Errorf("client %d: /v1/lookup(%q) = %+v, oracle %+v", c, p, *got.NGram, toWire(want.ng))
						return
					}
				}
				// Every few requests, cross-check /topk against the oracle.
				if i%10 == 0 {
					var tr TopKResponse
					if s := getJSON(t, client, ts.URL+"/v1/topk?k=20", &tr); s != http.StatusOK {
						t.Errorf("client %d: /v1/topk status %d", c, s)
						return
					}
					if len(tr.NGrams) != len(top) {
						t.Errorf("client %d: /v1/topk returned %d, oracle %d", c, len(tr.NGrams), len(top))
						return
					}
					for j := range top {
						if !reflect.DeepEqual(tr.NGrams[j], toWire(top[j])) {
							t.Errorf("client %d: /v1/topk[%d] = %+v, oracle %+v", c, j, tr.NGrams[j], toWire(top[j]))
							return
						}
					}
				}
			}
		}(c)
	}
	wg.Wait()

	// After the storm, metrics reflect the traffic and cache activity.
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(body)
	for _, want := range []string{
		`ngramsd_requests_total{endpoint="lookup"}`,
		`ngramsd_block_cache_hits_total{index="nyt"}`,
		`ngramsd_index_records{index="nyt"}`,
		`ngramsd_index_generation{index="nyt"} 1`,
		`ngramsd_index_swaps_total{index="nyt"} 0`,
		`ngramsd_inflight{endpoint="lookup"} 0`,
		`ngramsd_shed_total{endpoint="lookup"} 0`,
		`ngramsd_latency_bucket{endpoint="lookup",le="+Inf"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
	var lookups int64
	fmt.Sscanf(findLine(metrics, `ngramsd_requests_total{endpoint="lookup"}`), "%d", &lookups)
	if lookups < clients*perClient {
		t.Fatalf("metrics count %d lookups, expected >= %d", lookups, clients*perClient)
	}
	// Half the lookups went through the deprecated alias.
	var legacy int64
	fmt.Sscanf(findLine(metrics, `ngramsd_legacy_requests_total{endpoint="lookup"}`), "%d", &legacy)
	if legacy < clients*perClient/2 {
		t.Fatalf("legacy lookups counted %d, expected >= %d", legacy, clients*perClient/2)
	}
}

// urlQuery escapes a phrase for use as a query parameter.
func urlQuery(p string) string {
	return strings.ReplaceAll(p, " ", "+")
}

// findLine returns the remainder of the first metrics line starting
// with prefix.
func findLine(metrics, prefix string) string {
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, prefix) {
			return strings.TrimSpace(strings.TrimPrefix(line, prefix))
		}
	}
	return ""
}

func TestServingPrefixEndpoint(t *testing.T) {
	res, dir := buildServedIndex(t)
	_, ts := newTestServer(t, dir, nil)

	// Pick the most frequent unigram as a prefix with extensions.
	top, err := res.TopK(1)
	if err != nil || len(top) == 0 {
		t.Fatalf("TopK: %v", err)
	}
	word := strings.Fields(top[0].Text)[0]

	var pr PrefixResponse
	if s := getStrict(t, ts.Client(), ts.URL+"/v1/prefix?q="+urlQuery(word)+"&limit=50", &pr); s != http.StatusOK {
		t.Fatalf("/v1/prefix status %d", s)
	}
	if pr.Count == 0 {
		t.Fatalf("no extensions of %q", word)
	}
	for _, ng := range pr.NGrams {
		if ng.Text != word && !strings.HasPrefix(ng.Text, word+" ") {
			t.Fatalf("/v1/prefix returned non-extension %q of %q", ng.Text, word)
		}
		// Oracle agreement per phrase.
		want, ok, err := res.Lookup(ng.Text)
		if err != nil || !ok {
			t.Fatalf("oracle Lookup(%q): ok=%v err=%v", ng.Text, ok, err)
		}
		if !reflect.DeepEqual(ng, toWire(want)) {
			t.Fatalf("/v1/prefix %q = %+v, oracle %+v", ng.Text, ng, toWire(want))
		}
	}
	// The legacy alias answers with the same n-grams in its frozen shape.
	var legacy struct {
		Count  int         `json:"count"`
		NGrams []WireNGram `json:"ngrams"`
	}
	if s := getJSON(t, ts.Client(), ts.URL+"/prefix?q="+urlQuery(word)+"&limit=50", &legacy); s != http.StatusOK {
		t.Fatalf("/prefix status %d", s)
	}
	if legacy.Count != pr.Count || !reflect.DeepEqual(legacy.NGrams, pr.NGrams) {
		t.Fatalf("legacy /prefix diverged from /v1/prefix: %d vs %d n-grams", legacy.Count, pr.Count)
	}
}

// TestServingWireSchemas pins the exact /v1 wire schema: every
// response must decode into its typed struct with unknown fields
// disallowed, with the documented values.
func TestServingWireSchemas(t *testing.T) {
	res, dir := buildServedIndex(t)
	_, ts := newTestServer(t, dir, func(o *ServerOptions) { o.LMOrder = 3 })
	client := ts.Client()

	top, err := res.TopK(3)
	if err != nil || len(top) == 0 {
		t.Fatalf("TopK: %v", err)
	}
	hit := top[0].Text

	var lr LookupResponse
	if s := getStrict(t, client, ts.URL+"/v1/lookup?q="+urlQuery(hit), &lr); s != http.StatusOK {
		t.Fatalf("/v1/lookup status %d", s)
	}
	if lr.Index != "nyt" || lr.Generation != 1 || lr.Query != hit || !lr.Found || lr.NGram == nil {
		t.Fatalf("/v1/lookup = %+v", lr)
	}
	var miss LookupResponse
	if s := getStrict(t, client, ts.URL+"/v1/lookup?q=xyzzy+qqq", &miss); s != http.StatusOK {
		t.Fatalf("/v1/lookup miss status %d", s)
	}
	if miss.Found || miss.NGram != nil {
		t.Fatalf("/v1/lookup miss = %+v", miss)
	}

	var pr PrefixResponse
	word := strings.Fields(hit)[0]
	if s := getStrict(t, client, ts.URL+"/v1/prefix?q="+urlQuery(word)+"&limit=5", &pr); s != http.StatusOK {
		t.Fatalf("/v1/prefix status %d", s)
	}
	if pr.Index != "nyt" || pr.Generation != 1 || pr.Count != len(pr.NGrams) || pr.Count == 0 {
		t.Fatalf("/v1/prefix = %+v", pr)
	}

	var tr TopKResponse
	if s := getStrict(t, client, ts.URL+"/v1/topk?k=3", &tr); s != http.StatusOK {
		t.Fatalf("/v1/topk status %d", s)
	}
	if tr.Index != "nyt" || tr.Generation != 1 || tr.K != 3 || len(tr.NGrams) != 3 {
		t.Fatalf("/v1/topk = %+v", tr)
	}

	var br BatchResponse
	req := BatchRequest{Ops: []BatchOp{{Op: "lookup", Q: hit}, {Op: "topk", K: 2}}}
	if s := postJSON(t, client, ts.URL+"/v1/query", req, &br); s != http.StatusOK {
		t.Fatalf("/v1/query status %d", s)
	}
	if br.Index != "nyt" || br.Generation != 1 || len(br.Results) != 2 {
		t.Fatalf("/v1/query = %+v", br)
	}

	var sr LMScoreResponse
	if s := getStrict(t, client, ts.URL+"/v1/lm/score?q="+urlQuery(hit), &sr); s != http.StatusOK {
		t.Fatalf("/v1/lm/score status %d", s)
	}
	if sr.Words != len(strings.Fields(hit)) || sr.LogProb >= 0 || math.IsNaN(sr.LogProb) {
		t.Fatalf("/v1/lm/score = %+v", sr)
	}

	var predr LMPredictResponse
	if s := getStrict(t, client, ts.URL+"/v1/lm/predict?q="+urlQuery(word)+"&k=3", &predr); s != http.StatusOK {
		t.Fatalf("/v1/lm/predict status %d", s)
	}
	if predr.Context != word || predr.K != 3 || len(predr.Predictions) == 0 {
		t.Fatalf("/v1/lm/predict = %+v", predr)
	}

	var hr HealthResponse
	if s := getStrict(t, client, ts.URL+"/v1/healthz", &hr); s != http.StatusOK {
		t.Fatalf("/v1/healthz status %d", s)
	}
	ih, ok := hr.Indexes["nyt"]
	if hr.Status != "ok" || !ok || ih.Generation != 1 || ih.Records != res.Len() || !ih.LM {
		t.Fatalf("/v1/healthz = %+v", hr)
	}
	if _, err := time.Parse(time.RFC3339Nano, ih.ManifestTime); err != nil {
		t.Fatalf("manifest_mtime %q not RFC 3339: %v", ih.ManifestTime, err)
	}

	var rr ReloadResponse
	if s := postJSON(t, client, ts.URL+"/v1/admin/reload", nil, &rr); s != http.StatusOK {
		t.Fatalf("/v1/admin/reload status %d", s)
	}
	if rr.Reloaded["nyt"] != 2 {
		t.Fatalf("/v1/admin/reload = %+v, want generation 2", rr)
	}

	var er ErrorResponse
	if s := getStrict(t, client, ts.URL+"/v1/lookup", &er); s != http.StatusBadRequest {
		t.Fatalf("/v1/lookup without q: status %d", s)
	}
	if er.Error == "" {
		t.Fatalf("error response carries no error text")
	}
}

// TestServingLegacyDeprecation pins the compatibility contract of the
// pre-/v1 aliases: frozen response shape (exact key set), Deprecation
// and successor Link headers, and the legacy-traffic counter.
func TestServingLegacyDeprecation(t *testing.T) {
	res, dir := buildServedIndex(t)
	_, ts := newTestServer(t, dir, nil)
	top, err := res.TopK(1)
	if err != nil || len(top) == 0 {
		t.Fatalf("TopK: %v", err)
	}

	resp, err := ts.Client().Get(ts.URL + "/lookup?q=" + urlQuery(top[0].Text))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/lookup status %d", resp.StatusCode)
	}
	if d := resp.Header.Get("Deprecation"); d != "true" {
		t.Fatalf("Deprecation header = %q, want \"true\"", d)
	}
	if l := resp.Header.Get("Link"); !strings.Contains(l, "/v1/lookup") || !strings.Contains(l, "successor-version") {
		t.Fatalf("Link header = %q, want successor-version pointing at /v1/lookup", l)
	}
	// The body still has exactly the PR 4-era key set — no generation
	// field, nothing else new.
	var shape map[string]json.RawMessage
	if err := json.Unmarshal(body, &shape); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"index", "query", "found", "ngram"} {
		if _, ok := shape[key]; !ok {
			t.Fatalf("legacy /lookup body missing %q: %s", key, body)
		}
		delete(shape, key)
	}
	if len(shape) != 0 {
		t.Fatalf("legacy /lookup body grew new keys %v: %s", shape, body)
	}

	// /v1 responses carry no deprecation marker.
	resp, err = ts.Client().Get(ts.URL + "/v1/lookup?q=x")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if d := resp.Header.Get("Deprecation"); d != "" {
		t.Fatalf("/v1/lookup sent Deprecation header %q", d)
	}

	var metrics string
	{
		resp, err := ts.Client().Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		metrics = string(b)
	}
	if got := findLine(metrics, `ngramsd_legacy_requests_total{endpoint="lookup"}`); got != "1" {
		t.Fatalf("ngramsd_legacy_requests_total{endpoint=\"lookup\"} = %q, want 1", got)
	}
}

// TestServingBatchQuery checks POST /v1/query against the oracle: op
// results in request order, per-op errors, and the batch size cap.
func TestServingBatchQuery(t *testing.T) {
	res, dir := buildServedIndex(t)
	_, ts := newTestServer(t, dir, func(o *ServerOptions) { o.MaxBatch = 8 })
	client := ts.Client()

	top, err := res.TopK(5)
	if err != nil || len(top) < 2 {
		t.Fatalf("TopK: %v", err)
	}
	word := strings.Fields(top[0].Text)[0]
	oix, err := ngramstats.OpenIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer oix.Close()
	oraclePrefix, err := oix.Prefix(word, 7)
	if err != nil {
		t.Fatal(err)
	}

	req := BatchRequest{Ops: []BatchOp{
		{Op: "lookup", Q: top[1].Text},
		{Op: "lookup", Q: "xyzzy qqq never indexed"},
		{Op: "prefix", Q: word, Limit: 7},
		{Op: "topk", K: 5},
		{Op: "frobnicate"},
		{Op: "prefix", Q: word, Limit: -3},
		{Op: "lookup"},
	}}
	var br BatchResponse
	if s := postJSON(t, client, ts.URL+"/v1/query", req, &br); s != http.StatusOK {
		t.Fatalf("/v1/query status %d", s)
	}
	if len(br.Results) != len(req.Ops) {
		t.Fatalf("batch returned %d results for %d ops", len(br.Results), len(req.Ops))
	}
	r := br.Results
	if !r[0].Found || r[0].NGram == nil || !reflect.DeepEqual(*r[0].NGram, toWire(top[1])) {
		t.Fatalf("batch lookup hit = %+v, oracle %+v", r[0], toWire(top[1]))
	}
	if r[1].Found || r[1].Error != "" {
		t.Fatalf("batch lookup miss = %+v", r[1])
	}
	if r[2].Count != len(oraclePrefix) || len(r[2].NGrams) != len(oraclePrefix) {
		t.Fatalf("batch prefix count %d, oracle %d", r[2].Count, len(oraclePrefix))
	}
	for i := range oraclePrefix {
		if !reflect.DeepEqual(r[2].NGrams[i], toWire(oraclePrefix[i])) {
			t.Fatalf("batch prefix[%d] = %+v, oracle %+v", i, r[2].NGrams[i], toWire(oraclePrefix[i]))
		}
	}
	if len(r[3].NGrams) != 5 {
		t.Fatalf("batch topk returned %d", len(r[3].NGrams))
	}
	for i := range top {
		if !reflect.DeepEqual(r[3].NGrams[i], toWire(top[i])) {
			t.Fatalf("batch topk[%d] = %+v, oracle %+v", i, r[3].NGrams[i], toWire(top[i]))
		}
	}
	for i, wantFrag := range map[int]string{4: "unknown op", 5: "bad limit", 6: "missing q"} {
		if !strings.Contains(r[i].Error, wantFrag) {
			t.Fatalf("batch op %d error = %q, want %q", i, r[i].Error, wantFrag)
		}
	}

	// Caps and malformed batches.
	if s := postJSON(t, client, ts.URL+"/v1/query", BatchRequest{}, nil); s != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", s)
	}
	big := BatchRequest{Ops: make([]BatchOp, 9)}
	for i := range big.Ops {
		big.Ops[i] = BatchOp{Op: "topk", K: 1}
	}
	if s := postJSON(t, client, ts.URL+"/v1/query", big, nil); s != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d, want 400", s)
	}
}

// TestServingLMEndpoints checks the language-model front end against a
// model built directly from the same index.
func TestServingLMEndpoints(t *testing.T) {
	res, dir := buildServedIndex(t)
	_, ts := newTestServer(t, dir, func(o *ServerOptions) { o.LMOrder = 3 })
	client := ts.Client()

	ix, err := ngramstats.OpenIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	oracle, err := ngramstats.NewLanguageModelFromIndex(ix, 3)
	if err != nil {
		t.Fatal(err)
	}

	top, err := res.TopK(3)
	if err != nil || len(top) == 0 {
		t.Fatalf("TopK: %v", err)
	}
	phrase := top[len(top)-1].Text
	words := strings.Fields(phrase)

	var sr LMScoreResponse
	if s := getStrict(t, client, ts.URL+"/v1/lm/score?q="+urlQuery(phrase), &sr); s != http.StatusOK {
		t.Fatalf("/v1/lm/score status %d", s)
	}
	want := oracle.LogProb(words)
	if math.Abs(sr.LogProb-want) > 1e-9*math.Abs(want) {
		t.Fatalf("/v1/lm/score(%q) = %v, oracle %v", phrase, sr.LogProb, want)
	}

	ctxWord := strings.Fields(top[0].Text)[0]
	var pr LMPredictResponse
	if s := getStrict(t, client, ts.URL+"/v1/lm/predict?q="+urlQuery(ctxWord)+"&k=4", &pr); s != http.StatusOK {
		t.Fatalf("/v1/lm/predict status %d", s)
	}
	wantPred := oracle.Predict([]string{ctxWord}, 4)
	if len(pr.Predictions) != len(wantPred) {
		t.Fatalf("/v1/lm/predict returned %d, oracle %d", len(pr.Predictions), len(wantPred))
	}
	for i, p := range pr.Predictions {
		w := wantPred[i]
		if p.Word != w.Word || p.Frequency != w.Frequency || math.Abs(p.Score-w.Score) > 1e-12 {
			t.Fatalf("/v1/lm/predict[%d] = %+v, oracle %+v", i, p, w)
		}
	}

	// Without -lm the endpoints answer 501, not 404.
	_, tsNoLM := newTestServer(t, dir, nil)
	if s := getJSON(t, tsNoLM.Client(), tsNoLM.URL+"/v1/lm/score?q=x", nil); s != http.StatusNotImplemented {
		t.Fatalf("lm disabled: status %d, want 501", s)
	}
}

// TestServingHotSwapUnderLoad is the zero-downtime drill: clients
// hammer the server while the index directory is rewritten and
// reloaded several times. Every request must succeed, generations must
// advance, and each retired generation's files must close once its
// last in-flight request drains. Run under -race in CI.
func TestServingHotSwapUnderLoad(t *testing.T) {
	res, dir := buildServedIndex(t)
	srv, ts := newTestServer(t, dir, nil)

	top, err := res.TopK(10)
	if err != nil || len(top) == 0 {
		t.Fatalf("TopK: %v", err)
	}
	phrases := make([]string, len(top))
	for i, ng := range top {
		phrases[i] = ng.Text
	}

	stop := make(chan struct{})
	var requests, failures atomic.Int64
	var firstFailure atomic.Value
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := ts.Client()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				url := ts.URL + "/v1/lookup?q=" + urlQuery(phrases[(c+i)%len(phrases)])
				if i%5 == 0 {
					url = ts.URL + "/v1/topk?k=10"
				}
				resp, err := client.Get(url)
				if err != nil {
					failures.Add(1)
					firstFailure.CompareAndSwap(nil, fmt.Sprintf("GET %s: %v", url, err))
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				requests.Add(1)
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					firstFailure.CompareAndSwap(nil, fmt.Sprintf("GET %s: status %d body %s", url, resp.StatusCode, body))
					return
				}
			}
		}(c)
	}

	const flips = 5
	gens := []*generation{srv.handles["nyt"].gen.Load()}
	for flip := 0; flip < flips; flip++ {
		if err := res.SaveWith(dir, saveOpts(true)); err != nil {
			t.Fatalf("flip %d: rewrite index: %v", flip, err)
		}
		var rr ReloadResponse
		if s := postJSON(t, ts.Client(), ts.URL+"/v1/admin/reload", nil, &rr); s != http.StatusOK {
			t.Fatalf("flip %d: reload status %d", flip, s)
		}
		if want := int64(flip + 2); rr.Reloaded["nyt"] != want {
			t.Fatalf("flip %d: reloaded to generation %d, want %d", flip, rr.Reloaded["nyt"], want)
		}
		gens = append(gens, srv.handles["nyt"].gen.Load())
		time.Sleep(20 * time.Millisecond) // let traffic land on the new generation
	}
	close(stop)
	wg.Wait()

	if n := failures.Load(); n > 0 {
		t.Fatalf("%d of %d requests failed across %d hot swaps; first: %v",
			n, requests.Load()+n, flips, firstFailure.Load())
	}
	if requests.Load() < flips*8 {
		t.Fatalf("only %d requests completed — the drill exercised nothing", requests.Load())
	}

	// Every retired generation drains to zero references and closes its
	// files; the active one keeps its base reference.
	for i, g := range gens[:len(gens)-1] {
		deadline := time.Now().Add(2 * time.Second)
		for g.refs.Load() != 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if r := g.refs.Load(); r != 0 {
			t.Fatalf("generation %d still has %d references after drain", i+1, r)
		}
		if _, _, err := g.ix.Lookup(phrases[0]); !errors.Is(err, ngramstats.ErrIndexClosed) {
			t.Fatalf("generation %d still answers queries after retirement (err=%v)", i+1, err)
		}
	}
	last := gens[len(gens)-1]
	if r := last.refs.Load(); r != 1 {
		t.Fatalf("active generation has %d references, want 1", r)
	}
	if _, _, err := last.ix.Lookup(phrases[0]); err != nil {
		t.Fatalf("active generation refused a query: %v", err)
	}

	var metrics string
	{
		resp, err := ts.Client().Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		metrics = string(b)
	}
	if got := findLine(metrics, `ngramsd_index_swaps_total{index="nyt"}`); got != fmt.Sprint(flips) {
		t.Fatalf("swap counter = %q, want %d", got, flips)
	}
	if got := findLine(metrics, `ngramsd_index_generation{index="nyt"}`); got != fmt.Sprint(flips+1) {
		t.Fatalf("generation gauge = %q, want %d", got, flips+1)
	}
}

// TestServingWatchReload checks the manifest watcher: rewriting the
// index directory is picked up without any admin call, and health
// stays green throughout.
func TestServingWatchReload(t *testing.T) {
	res, dir := buildServedIndex(t)
	srv, ts := newTestServer(t, dir, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Watch(ctx, 5*time.Millisecond)

	if err := res.SaveWith(dir, saveOpts(true)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var hr HealthResponse
		if s := getJSON(t, ts.Client(), ts.URL+"/healthz", &hr); s != http.StatusOK {
			t.Fatalf("/healthz status %d during watch reload", s)
		}
		if hr.Indexes["nyt"].Generation >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("watcher never swapped: still at generation %d", hr.Indexes["nyt"].Generation)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServingLoadShedding saturates a 1-slot lookup gate and checks
// that excess requests are shed with 429 + Retry-After while the
// occupying request still succeeds.
func TestServingLoadShedding(t *testing.T) {
	_, dir := buildServedIndex(t)
	release := make(chan struct{})
	testHookQueryStart = func() { <-release }
	t.Cleanup(func() { testHookQueryStart = nil })
	srv, ts := newTestServer(t, dir, func(o *ServerOptions) {
		o.MaxInflight = 1
		o.MaxQueue = 1
		o.QueueTimeout = 50 * time.Millisecond
		o.RetryAfter = 2 * time.Second
	})

	// Request 1 takes the only slot and parks in the test hook.
	r1 := make(chan int, 1)
	go func() {
		resp, err := ts.Client().Get(ts.URL + "/v1/lookup?q=x")
		if err != nil {
			r1 <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		r1 <- resp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.epLookup.gate.inflight.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first request never occupied the gate")
		}
		time.Sleep(time.Millisecond)
	}

	// Requests 2 and 3: one fills the queue and times out, the other is
	// shed instantly. Both must get 429 with the Retry-After hint.
	type shedResult struct {
		status     int
		retryAfter string
	}
	results := make(chan shedResult, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := ts.Client().Get(ts.URL + "/v1/lookup?q=y")
			if err != nil {
				results <- shedResult{status: -1}
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			results <- shedResult{status: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After")}
		}()
	}
	for i := 0; i < 2; i++ {
		got := <-results
		if got.status != http.StatusTooManyRequests {
			t.Fatalf("saturated request %d: status %d, want 429", i, got.status)
		}
		if got.retryAfter != "2" {
			t.Fatalf("saturated request %d: Retry-After %q, want \"2\"", i, got.retryAfter)
		}
	}

	close(release)
	if s := <-r1; s != http.StatusOK {
		t.Fatalf("occupying request finished with %d, want 200", s)
	}
	// The gate is free again and sheds are counted.
	if s := getJSON(t, ts.Client(), ts.URL+"/v1/lookup?q=z", nil); s != http.StatusOK {
		t.Fatalf("post-shed request: status %d", s)
	}
	var metrics string
	{
		resp, err := ts.Client().Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		metrics = string(b)
	}
	if got := findLine(metrics, `ngramsd_shed_total{endpoint="lookup"}`); got != "2" {
		t.Fatalf("ngramsd_shed_total = %q, want 2", got)
	}
}

func TestServingValidationAndHealth(t *testing.T) {
	_, dir := buildServedIndex(t)
	srv, err := NewServer(ServerOptions{
		Indexes:  map[string]IndexConfig{"a": {Dir: dir}, "b": {Dir: dir}},
		MaxLimit: 50,
		MaxK:     50,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	for _, tc := range []struct {
		url  string
		want int
	}{
		{"/lookup?q=x", http.StatusBadRequest},         // ambiguous index with two served
		{"/lookup?q=x&index=zzz", http.StatusNotFound}, // unknown index
		{"/lookup?index=a", http.StatusBadRequest},     // missing q
		{"/topk?k=-1&index=a", http.StatusBadRequest},  // bad k
		{"/topk?k=51&index=a", http.StatusBadRequest},  // k beyond MaxK
		{"/prefix?q=x&limit=bogus&index=a", http.StatusBadRequest},
		{"/prefix?q=x&limit=0&index=a", http.StatusBadRequest},  // limit=0 no longer means unbounded
		{"/prefix?q=x&limit=51&index=a", http.StatusBadRequest}, // limit beyond MaxLimit
		{"/v1/lookup?q=x", http.StatusBadRequest},
		{"/v1/lookup?q=x&index=zzz", http.StatusNotFound},
		{"/v1/topk?k=0&index=a", http.StatusBadRequest}, // v1 requires k >= 1
		{"/v1/prefix?q=x&limit=0&index=a", http.StatusBadRequest},
		{"/v1/lm/score?q=x&index=a", http.StatusNotImplemented}, // LM not enabled
		{"/topk?k=0&index=a", http.StatusOK},                    // legacy k=0 stays an empty answer
	} {
		if s := getJSON(t, client, ts.URL+tc.url, nil); s != tc.want {
			t.Fatalf("%s: status %d, want %d", tc.url, s, tc.want)
		}
	}

	// Health reports both indexes with generations and manifest times.
	var hz HealthResponse
	if s := getStrict(t, client, ts.URL+"/healthz", &hz); s != http.StatusOK {
		t.Fatalf("/healthz status %d", s)
	}
	if hz.Status != "ok" || len(hz.Indexes) != 2 {
		t.Fatalf("/healthz = %+v", hz)
	}
	for name, ih := range hz.Indexes {
		if ih.Generation != 1 || ih.Records == 0 || ih.ManifestTime == "" {
			t.Fatalf("/healthz index %q = %+v", name, ih)
		}
	}
	// Errors were counted.
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var errs int64
	fmt.Sscanf(findLine(string(body), `ngramsd_errors_total{endpoint="lookup"}`), "%d", &errs)
	if errs < 4 {
		t.Fatalf("lookup errors counted %d, want >= 4", errs)
	}
	// The metrics endpoint now instruments itself (a request lands in
	// the counters once it finishes, so the next scrape shows it).
	resp, err = client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var metricsReqs int64
	fmt.Sscanf(findLine(string(body), `ngramsd_requests_total{endpoint="metrics"}`), "%d", &metricsReqs)
	if metricsReqs < 1 {
		t.Fatalf("metrics endpoint not instrumented: %d requests", metricsReqs)
	}
}

// TestServeShutdown pins the graceful-shutdown path of ListenAndServe
// and the post-Close 503 behavior.
func TestServeShutdown(t *testing.T) {
	_, dir := buildServedIndex(t)
	srv, err := NewServer(ServerOptions{Indexes: map[string]IndexConfig{"nyt": {Dir: dir}}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- ListenAndServe(ctx, "127.0.0.1:0", srv, ready) }()
	addr := <-ready
	var hz HealthResponse
	if s := getJSON(t, http.DefaultClient, "http://"+addr+"/healthz", &hz); s != http.StatusOK || hz.Status != "ok" {
		t.Fatalf("healthz over real listener: status %d, %+v", s, hz)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("shutdown returned %v", err)
	}
	// After Close, queries get 503 rather than hanging or crashing.
	srv.Close()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/lookup?q=x", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-Close query: status %d, want 503", rec.Code)
	}
}
