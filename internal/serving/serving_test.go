package serving

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"ngramstats"
)

// buildServedIndex computes statistics over a synthetic corpus, saves
// them, and returns the live Result (the oracle) plus an open Index.
func buildServedIndex(t *testing.T) (*ngramstats.Result, *ngramstats.Index) {
	t.Helper()
	corpus := ngramstats.SyntheticNYT(60, 7)
	res, err := ngramstats.Count(context.Background(), corpus, ngramstats.Options{
		MinFrequency: 3, MaxLength: 4, Combiner: true, TempDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { res.Release() })
	if res.Len() == 0 {
		t.Fatal("synthetic corpus produced no n-grams")
	}
	dir := filepath.Join(t.TempDir(), "idx")
	if err := res.SaveWith(dir, ngramstats.SaveOptions{Shards: 3, TopDepth: 64}); err != nil {
		t.Fatal(err)
	}
	ix, err := ngramstats.OpenIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	return res, ix
}

func getJSON(t *testing.T, client *http.Client, url string, out any) int {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decode %s: %v (body %q)", url, err, body)
		}
	}
	return resp.StatusCode
}

// lookupResponse mirrors the /lookup JSON shape.
type lookupResponse struct {
	Index string    `json:"index"`
	Query string    `json:"query"`
	Found bool      `json:"found"`
	NGram wireNGram `json:"ngram"`
}

// TestServingEndToEnd is the serving-smoke oracle test: concurrent
// HTTP clients query a saved index and every response must match the
// in-process Result's answer. Run under -race in CI.
func TestServingEndToEnd(t *testing.T) {
	res, ix := buildServedIndex(t)
	ts := httptest.NewServer(New(map[string]*ngramstats.Index{"nyt": ix}))
	defer ts.Close()

	// Oracle answers, computed once from the live Result.
	top, err := res.TopK(20)
	if err != nil {
		t.Fatal(err)
	}
	type oracleEntry struct {
		ng    ngramstats.NGram
		found bool
	}
	oracle := make(map[string]oracleEntry)
	for ng, oerr := range res.NGrams() {
		if oerr != nil {
			t.Fatal(oerr)
		}
		oracle[ng.Text] = oracleEntry{ng: ng, found: true}
	}
	// A few guaranteed misses.
	for _, miss := range []string{"zzz qqq xyzzy", "no such phrase whatsoever"} {
		oracle[miss] = oracleEntry{}
	}
	phrases := make([]string, 0, len(oracle))
	for p := range oracle {
		phrases = append(phrases, p)
	}

	const clients = 32
	const perClient = 40
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := ts.Client()
			for i := 0; i < perClient; i++ {
				p := phrases[(c*perClient+i*13)%len(phrases)]
				want := oracle[p]
				var got lookupResponse
				status := getJSON(t, client, ts.URL+"/lookup?q="+urlQuery(p), &got)
				if status != http.StatusOK {
					t.Errorf("client %d: /lookup status %d", c, status)
					return
				}
				if got.Found != want.found {
					t.Errorf("client %d: Lookup(%q) found=%v, oracle says %v", c, p, got.Found, want.found)
					return
				}
				if want.found && !reflect.DeepEqual(got.NGram, toWire(want.ng)) {
					t.Errorf("client %d: Lookup(%q) = %+v, oracle %+v", c, p, got.NGram, toWire(want.ng))
					return
				}
				// Every few requests, cross-check /topk against the oracle.
				if i%10 == 0 {
					var tr struct {
						NGrams []wireNGram `json:"ngrams"`
					}
					if s := getJSON(t, client, ts.URL+"/topk?k=20", &tr); s != http.StatusOK {
						t.Errorf("client %d: /topk status %d", c, s)
						return
					}
					if len(tr.NGrams) != len(top) {
						t.Errorf("client %d: /topk returned %d, oracle %d", c, len(tr.NGrams), len(top))
						return
					}
					for j := range top {
						if !reflect.DeepEqual(tr.NGrams[j], toWire(top[j])) {
							t.Errorf("client %d: /topk[%d] = %+v, oracle %+v", c, j, tr.NGrams[j], toWire(top[j]))
							return
						}
					}
				}
			}
		}(c)
	}
	wg.Wait()

	// After the storm, metrics reflect the traffic and cache activity.
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(body)
	for _, want := range []string{
		`ngramsd_requests_total{endpoint="lookup"}`,
		`ngramsd_block_cache_hits_total{index="nyt"}`,
		`ngramsd_index_records{index="nyt"}`,
		`ngramsd_latency_bucket{endpoint="lookup",le="+Inf"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
	var lookups int64
	fmt.Sscanf(findLine(metrics, `ngramsd_requests_total{endpoint="lookup"}`), "%d", &lookups)
	if lookups < clients*perClient {
		t.Fatalf("metrics count %d lookups, expected >= %d", lookups, clients*perClient)
	}
}

// urlQuery escapes a phrase for use as a query parameter.
func urlQuery(p string) string {
	return strings.ReplaceAll(p, " ", "+")
}

// findLine returns the remainder of the first metrics line starting
// with prefix.
func findLine(metrics, prefix string) string {
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, prefix) {
			return strings.TrimSpace(strings.TrimPrefix(line, prefix))
		}
	}
	return ""
}

func TestServingPrefixEndpoint(t *testing.T) {
	res, ix := buildServedIndex(t)
	ts := httptest.NewServer(New(map[string]*ngramstats.Index{"nyt": ix}))
	defer ts.Close()

	// Pick the most frequent unigram as a prefix with extensions.
	top, err := res.TopK(1)
	if err != nil || len(top) == 0 {
		t.Fatalf("TopK: %v", err)
	}
	word := strings.Fields(top[0].Text)[0]

	var pr struct {
		Count  int         `json:"count"`
		NGrams []wireNGram `json:"ngrams"`
	}
	if s := getJSON(t, ts.Client(), ts.URL+"/prefix?q="+urlQuery(word)+"&limit=50", &pr); s != http.StatusOK {
		t.Fatalf("/prefix status %d", s)
	}
	if pr.Count == 0 {
		t.Fatalf("no extensions of %q", word)
	}
	for _, ng := range pr.NGrams {
		if ng.Text != word && !strings.HasPrefix(ng.Text, word+" ") {
			t.Fatalf("/prefix returned non-extension %q of %q", ng.Text, word)
		}
		// Oracle agreement per phrase.
		want, ok, err := res.Lookup(ng.Text)
		if err != nil || !ok {
			t.Fatalf("oracle Lookup(%q): ok=%v err=%v", ng.Text, ok, err)
		}
		if !reflect.DeepEqual(ng, toWire(want)) {
			t.Fatalf("/prefix %q = %+v, oracle %+v", ng.Text, ng, toWire(want))
		}
	}
}

func TestServingValidationAndHealth(t *testing.T) {
	_, ix := buildServedIndex(t)
	ts := httptest.NewServer(New(map[string]*ngramstats.Index{"a": ix, "b": ix}))
	defer ts.Close()
	client := ts.Client()

	// Ambiguous index with two served.
	if s := getJSON(t, client, ts.URL+"/lookup?q=x", nil); s != http.StatusBadRequest {
		t.Fatalf("ambiguous index: status %d, want 400", s)
	}
	// Unknown index.
	if s := getJSON(t, client, ts.URL+"/lookup?q=x&index=zzz", nil); s != http.StatusNotFound {
		t.Fatalf("unknown index: status %d, want 404", s)
	}
	// Missing q.
	if s := getJSON(t, client, ts.URL+"/lookup?index=a", nil); s != http.StatusBadRequest {
		t.Fatalf("missing q: status %d, want 400", s)
	}
	// Bad numeric parameters.
	if s := getJSON(t, client, ts.URL+"/topk?k=-1&index=a", nil); s != http.StatusBadRequest {
		t.Fatalf("bad k: status %d, want 400", s)
	}
	if s := getJSON(t, client, ts.URL+"/prefix?q=x&limit=bogus&index=a", nil); s != http.StatusBadRequest {
		t.Fatalf("bad limit: status %d, want 400", s)
	}
	// Health reports both indexes.
	var hz struct {
		Status  string           `json:"status"`
		Indexes map[string]int64 `json:"indexes"`
	}
	if s := getJSON(t, client, ts.URL+"/healthz", &hz); s != http.StatusOK {
		t.Fatalf("/healthz status %d", s)
	}
	if hz.Status != "ok" || len(hz.Indexes) != 2 {
		t.Fatalf("/healthz = %+v", hz)
	}
	// Errors were counted.
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var errs int64
	fmt.Sscanf(findLine(string(body), `ngramsd_errors_total{endpoint="lookup"}`), "%d", &errs)
	if errs < 3 {
		t.Fatalf("lookup errors counted %d, want >= 3", errs)
	}
}

// TestServeShutdown pins the graceful-shutdown path of ListenAndServe.
func TestServeShutdown(t *testing.T) {
	_, ix := buildServedIndex(t)
	srv := New(map[string]*ngramstats.Index{"nyt": ix})
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- ListenAndServe(ctx, "127.0.0.1:0", srv, ready) }()
	addr := <-ready
	var hz struct {
		Status string `json:"status"`
	}
	if s := getJSON(t, http.DefaultClient, "http://"+addr+"/healthz", &hz); s != http.StatusOK || hz.Status != "ok" {
		t.Fatalf("healthz over real listener: status %d, %+v", s, hz)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("shutdown returned %v", err)
	}
}
