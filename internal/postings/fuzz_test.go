package postings

import "testing"

// FuzzDecode: arbitrary bytes either decode to a list whose re-encoding
// round-trips, or are rejected — never a panic or a hang.
func FuzzDecode(f *testing.F) {
	f.Add(Encode(List{{DocID: 3, Positions: []uint32{1, 4}}}))
	f.Add([]byte{0x00})
	f.Add([]byte{0x02, 0x01, 0x01, 0x05})
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := Decode(data)
		if err != nil {
			return
		}
		cf, err := EncodedCF(data)
		if err != nil {
			t.Fatalf("EncodedCF failed on decodable input: %v", err)
		}
		if cf != l.CF() {
			t.Fatalf("EncodedCF = %d, CF = %d", cf, l.CF())
		}
		re := Encode(l)
		l2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encode failed to decode: %v", err)
		}
		if l2.CF() != l.CF() || l2.DF() != l.DF() {
			t.Fatalf("round trip changed stats")
		}
	})
}
