package postings

import (
	"math/rand"
	"testing"
)

func benchList(docs, posPerDoc int, seed int64) List {
	rng := rand.New(rand.NewSource(seed))
	var l List
	doc := int64(0)
	for d := 0; d < docs; d++ {
		doc += 1 + int64(rng.Intn(5))
		pos := make([]uint32, 0, posPerDoc)
		p := uint32(0)
		for i := 0; i < posPerDoc; i++ {
			p += 1 + uint32(rng.Intn(20))
			pos = append(pos, p)
		}
		l = append(l, Posting{DocID: doc, Positions: pos})
	}
	return l
}

// BenchmarkJoin measures the adjacency join at the heart of
// APRIORI-INDEX's candidate generation.
func BenchmarkJoin(b *testing.B) {
	m := benchList(1000, 4, 1)
	n := benchList(1000, 4, 1) // same doc layout → real intersection work
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Join(m, n)
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	l := benchList(1000, 4, 2)
	enc := Encode(l)
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Encode(l)
		}
	})
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Decode(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encodedCF", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := EncodedCF(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
}
