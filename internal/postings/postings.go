// Package postings implements positional posting lists — the payload of
// the inverted index that APRIORI-INDEX builds (Algorithm 3). A posting
// records the positions at which one n-gram occurs in one document; a
// posting list collects the postings of an n-gram over the collection.
//
// Lists are kept in a compact varint encoding: document identifiers are
// delta-encoded across postings and positions are delta-encoded within a
// posting, following the compression advice of Section V.
package postings

import (
	"fmt"
	"sort"

	"ngramstats/internal/encoding"
)

// Posting is the set of positions at which an n-gram occurs in one
// document. Positions are strictly increasing.
type Posting struct {
	DocID     int64
	Positions []uint32
}

// List is an n-gram's posting list, ordered by document identifier.
type List []Posting

// CF returns the collection frequency represented by the list: the
// total number of occurrences across all documents.
func (l List) CF() int64 {
	var n int64
	for _, p := range l {
		n += int64(len(p.Positions))
	}
	return n
}

// DF returns the document frequency: the number of documents with at
// least one occurrence.
func (l List) DF() int64 { return int64(len(l)) }

// Validate checks the structural invariants: documents strictly
// increasing, positions strictly increasing and non-empty.
func (l List) Validate() error {
	for i, p := range l {
		if i > 0 && l[i-1].DocID >= p.DocID {
			return fmt.Errorf("postings: docIDs not strictly increasing at %d", i)
		}
		if len(p.Positions) == 0 {
			return fmt.Errorf("postings: empty posting for doc %d", p.DocID)
		}
		for j := 1; j < len(p.Positions); j++ {
			if p.Positions[j-1] >= p.Positions[j] {
				return fmt.Errorf("postings: positions not strictly increasing in doc %d", p.DocID)
			}
		}
	}
	return nil
}

// Join computes the posting list of the (k)-gram m‖⟨last term of n⟩
// from the lists of two overlapping (k−1)-grams: an occurrence of the
// joined n-gram at position p requires m at p and n at p+1
// (Algorithm 3, Reducer #2). Both lists must be sorted by document.
func Join(m, n List) List {
	var out List
	i, j := 0, 0
	for i < len(m) && j < len(n) {
		switch {
		case m[i].DocID < n[j].DocID:
			i++
		case m[i].DocID > n[j].DocID:
			j++
		default:
			pos := joinPositions(m[i].Positions, n[j].Positions)
			if len(pos) > 0 {
				out = append(out, Posting{DocID: m[i].DocID, Positions: pos})
			}
			i++
			j++
		}
	}
	return out
}

// joinPositions returns every p in a with p+1 in b.
func joinPositions(a, b []uint32) []uint32 {
	var out []uint32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i]+1 < b[j]:
			i++
		case a[i]+1 > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Merge combines posting lists of the same n-gram from different
// reducers/documents into one list ordered by document. Positions of
// postings sharing a document are unioned (they are expected to be
// disjoint but equal positions are kept once).
func Merge(lists ...List) List {
	var all List
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].DocID < all[j].DocID })
	var out List
	for _, p := range all {
		if len(out) > 0 && out[len(out)-1].DocID == p.DocID {
			last := &out[len(out)-1]
			last.Positions = unionPositions(last.Positions, p.Positions)
			continue
		}
		out = append(out, Posting{DocID: p.DocID, Positions: append([]uint32(nil), p.Positions...)})
	}
	return out
}

func unionPositions(a, b []uint32) []uint32 {
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Encode serializes the list:
// uvarint(#postings) then per posting uvarint(docID delta),
// uvarint(#positions), uvarint(position deltas…). The first document
// delta is taken from 0 and the first position delta is the position
// itself; subsequent deltas are plain differences.
func Encode(l List) []byte {
	buf := encoding.AppendUvarint(nil, uint64(len(l)))
	var prevDoc int64
	for _, p := range l {
		buf = encoding.AppendUvarint(buf, uint64(p.DocID-prevDoc))
		prevDoc = p.DocID
		buf = encoding.AppendUvarint(buf, uint64(len(p.Positions)))
		var prevPos uint32
		for i, pos := range p.Positions {
			if i == 0 {
				buf = encoding.AppendUvarint(buf, uint64(pos))
			} else {
				buf = encoding.AppendUvarint(buf, uint64(pos-prevPos))
			}
			prevPos = pos
		}
	}
	return buf
}

// Decode deserializes a list produced by Encode.
func Decode(b []byte) (List, error) {
	nPostings, n := encoding.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("postings: %w: posting count", encoding.ErrCorrupt)
	}
	b = b[n:]
	out := make(List, 0, nPostings)
	var prevDoc int64
	for k := uint64(0); k < nPostings; k++ {
		delta, n := encoding.Uvarint(b)
		if n <= 0 {
			return nil, fmt.Errorf("postings: %w: doc delta", encoding.ErrCorrupt)
		}
		b = b[n:]
		doc := prevDoc + int64(delta)
		prevDoc = doc
		nPos, n := encoding.Uvarint(b)
		if n <= 0 {
			return nil, fmt.Errorf("postings: %w: position count", encoding.ErrCorrupt)
		}
		b = b[n:]
		pos := make([]uint32, nPos)
		var prev uint32
		for i := range pos {
			d, n := encoding.Uvarint(b)
			if n <= 0 {
				return nil, fmt.Errorf("postings: %w: position delta", encoding.ErrCorrupt)
			}
			b = b[n:]
			if i == 0 {
				prev = uint32(d)
			} else {
				prev += uint32(d)
			}
			pos[i] = prev
		}
		out = append(out, Posting{DocID: doc, Positions: pos})
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("postings: %w: %d trailing bytes", encoding.ErrCorrupt, len(b))
	}
	return out, nil
}

// EncodedCF returns the collection frequency of an encoded list without
// fully materializing it.
func EncodedCF(b []byte) (int64, error) {
	nPostings, n := encoding.Uvarint(b)
	if n <= 0 {
		return 0, fmt.Errorf("postings: %w: posting count", encoding.ErrCorrupt)
	}
	b = b[n:]
	var cf int64
	for k := uint64(0); k < nPostings; k++ {
		_, n := encoding.Uvarint(b) // doc delta
		if n <= 0 {
			return 0, fmt.Errorf("postings: %w: doc delta", encoding.ErrCorrupt)
		}
		b = b[n:]
		nPos, n := encoding.Uvarint(b)
		if n <= 0 {
			return 0, fmt.Errorf("postings: %w: position count", encoding.ErrCorrupt)
		}
		b = b[n:]
		cf += int64(nPos)
		for i := uint64(0); i < nPos; i++ {
			_, n := encoding.Uvarint(b)
			if n <= 0 {
				return 0, fmt.Errorf("postings: %w: position delta", encoding.ErrCorrupt)
			}
			b = b[n:]
		}
	}
	return cf, nil
}
