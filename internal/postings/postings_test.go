package postings

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"ngramstats/internal/sequence"
)

func TestCFAndDF(t *testing.T) {
	l := List{
		{DocID: 1, Positions: []uint32{0, 3}},
		{DocID: 4, Positions: []uint32{2}},
	}
	if l.CF() != 3 {
		t.Fatalf("CF = %d, want 3", l.CF())
	}
	if l.DF() != 2 {
		t.Fatalf("DF = %d, want 2", l.DF())
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadLists(t *testing.T) {
	bad := []List{
		{{DocID: 2, Positions: []uint32{1}}, {DocID: 1, Positions: []uint32{0}}}, // docs out of order
		{{DocID: 1, Positions: nil}},            // empty posting
		{{DocID: 1, Positions: []uint32{3, 3}}}, // equal positions
		{{DocID: 1, Positions: []uint32{5, 2}}}, // decreasing positions
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid list", i)
		}
	}
}

// TestJoinPaperExample reproduces the running example of Section III-B:
// joining ⟨a x⟩ and ⟨x b⟩ yields ⟨a x b⟩ with postings
// ⟨d1:[0], d2:[1], d3:[2]⟩.
func TestJoinPaperExample(t *testing.T) {
	ax := List{
		{DocID: 1, Positions: []uint32{0}},
		{DocID: 2, Positions: []uint32{1}},
		{DocID: 3, Positions: []uint32{2}},
	}
	xb := List{
		{DocID: 1, Positions: []uint32{1}},
		{DocID: 2, Positions: []uint32{2}},
		{DocID: 3, Positions: []uint32{0, 3}},
	}
	got := Join(ax, xb)
	want := List{
		{DocID: 1, Positions: []uint32{0}},
		{DocID: 2, Positions: []uint32{1}},
		{DocID: 3, Positions: []uint32{2}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Join = %v, want %v", got, want)
	}
	if got.CF() != 3 {
		t.Fatalf("CF = %d, want 3", got.CF())
	}
}

func TestJoinDisjointDocs(t *testing.T) {
	a := List{{DocID: 1, Positions: []uint32{0}}}
	b := List{{DocID: 2, Positions: []uint32{1}}}
	if got := Join(a, b); len(got) != 0 {
		t.Fatalf("Join of disjoint docs = %v", got)
	}
}

func TestJoinNoAdjacency(t *testing.T) {
	a := List{{DocID: 1, Positions: []uint32{0, 5}}}
	b := List{{DocID: 1, Positions: []uint32{2, 4}}}
	if got := Join(a, b); len(got) != 0 {
		t.Fatalf("Join without adjacency = %v", got)
	}
}

// buildIndex computes the exact posting list of each k-gram of the
// given documents by brute force.
func buildIndex(docs []sequence.Seq, k int) map[string]List {
	idx := make(map[string]List)
	for docID, d := range docs {
		perGram := make(map[string][]uint32)
		for b := 0; b+k <= len(d); b++ {
			key := fmt.Sprint(d[b : b+k])
			perGram[key] = append(perGram[key], uint32(b))
		}
		for key, pos := range perGram {
			idx[key] = append(idx[key], Posting{DocID: int64(docID), Positions: pos})
		}
	}
	return idx
}

// TestJoinMatchesBruteForce verifies on random documents that joining
// the posting lists of the two constituent (k−1)-grams of a k-gram
// yields exactly the k-gram's true posting list.
func TestJoinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		var docs []sequence.Seq
		for d := 0; d < 4; d++ {
			n := 5 + rng.Intn(15)
			s := make(sequence.Seq, n)
			for i := range s {
				s[i] = sequence.Term(rng.Intn(3))
			}
			docs = append(docs, s)
		}
		k := 2 + rng.Intn(3)
		idxK := buildIndex(docs, k)
		idxK1 := buildIndex(docs, k-1)
		// For every k-gram observed, reconstruct via join.
		for d := range docs {
			doc := docs[d]
			for b := 0; b+k <= len(doc); b++ {
				g := doc[b : b+k]
				m := idxK1[fmt.Sprint(g[:k-1])]
				n := idxK1[fmt.Sprint(g[1:])]
				got := Join(m, n)
				want := idxK[fmt.Sprint(g)]
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d: join of %v = %v, want %v", trial, g, got, want)
				}
			}
		}
	}
}

func TestMerge(t *testing.T) {
	a := List{{DocID: 3, Positions: []uint32{1}}, {DocID: 7, Positions: []uint32{0}}}
	b := List{{DocID: 1, Positions: []uint32{4}}, {DocID: 3, Positions: []uint32{5}}}
	got := Merge(a, b)
	want := List{
		{DocID: 1, Positions: []uint32{4}},
		{DocID: 3, Positions: []uint32{1, 5}},
		{DocID: 7, Positions: []uint32{0}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Merge = %v, want %v", got, want)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeDeduplicatesPositions(t *testing.T) {
	a := List{{DocID: 1, Positions: []uint32{2, 4}}}
	b := List{{DocID: 1, Positions: []uint32{2, 6}}}
	got := Merge(a, b)
	want := List{{DocID: 1, Positions: []uint32{2, 4, 6}}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Merge = %v, want %v", got, want)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 300; trial++ {
		var l List
		doc := int64(0)
		nDocs := rng.Intn(6)
		for d := 0; d < nDocs; d++ {
			doc += 1 + int64(rng.Intn(1000))
			nPos := 1 + rng.Intn(5)
			pos := make([]uint32, 0, nPos)
			p := uint32(0)
			for i := 0; i < nPos; i++ {
				p += 1 + uint32(rng.Intn(50))
				pos = append(pos, p)
			}
			l = append(l, Posting{DocID: doc, Positions: pos})
		}
		b := Encode(l)
		got, err := Decode(b)
		if err != nil {
			t.Fatal(err)
		}
		if len(l) == 0 {
			if len(got) != 0 {
				t.Fatalf("empty round trip = %v", got)
			}
		} else if !reflect.DeepEqual(got, l) {
			t.Fatalf("round trip: got %v, want %v", got, l)
		}
		cf, err := EncodedCF(b)
		if err != nil {
			t.Fatal(err)
		}
		if cf != l.CF() {
			t.Fatalf("EncodedCF = %d, want %d", cf, l.CF())
		}
	}
}

func TestDecodeCorrupt(t *testing.T) {
	l := List{{DocID: 5, Positions: []uint32{1, 2, 3}}}
	b := Encode(l)
	if _, err := Decode(b[:len(b)-1]); err == nil {
		t.Fatal("Decode accepted truncated input")
	}
	if _, err := Decode(append(b, 0)); err == nil {
		t.Fatal("Decode accepted trailing bytes")
	}
	if _, err := EncodedCF(b[:len(b)-1]); err == nil {
		t.Fatal("EncodedCF accepted truncated input")
	}
	if _, err := Decode([]byte{0x80}); err == nil {
		t.Fatal("Decode accepted bad varint")
	}
}

func TestEncodedSizeIsCompact(t *testing.T) {
	// Delta encoding should keep adjacent small gaps in single bytes:
	// 100 docs with one position each, doc gaps of 1 → ~3 bytes per
	// posting.
	var l List
	for d := int64(1); d <= 100; d++ {
		l = append(l, Posting{DocID: d, Positions: []uint32{7}})
	}
	b := Encode(l)
	if len(b) > 100*3+2 {
		t.Fatalf("encoding too large: %d bytes for 100 postings", len(b))
	}
}
