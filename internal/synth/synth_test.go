package synth

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"ngramstats/internal/core"
	"ngramstats/internal/sequence"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(NYTLike(50, 7))
	b := Generate(NYTLike(50, 7))
	if len(a.Docs) != len(b.Docs) {
		t.Fatal("document counts differ")
	}
	for i := range a.Docs {
		if a.Docs[i].Year != b.Docs[i].Year || len(a.Docs[i].Sentences) != len(b.Docs[i].Sentences) {
			t.Fatalf("doc %d differs between runs", i)
		}
		for j := range a.Docs[i].Sentences {
			if !sequence.Equal(a.Docs[i].Sentences[j], b.Docs[i].Sentences[j]) {
				t.Fatalf("doc %d sentence %d differs", i, j)
			}
		}
	}
	c := Generate(NYTLike(50, 8))
	same := true
	for i := range a.Docs {
		if len(a.Docs[i].Sentences) != len(c.Docs[i].Sentences) {
			same = false
			break
		}
	}
	if same {
		// Extremely unlikely that every document has identical shape
		// under a different seed.
		differs := false
		for i := range a.Docs {
			for j := range a.Docs[i].Sentences {
				if !sequence.Equal(a.Docs[i].Sentences[j], c.Docs[i].Sentences[j]) {
					differs = true
				}
			}
		}
		if !differs {
			t.Fatal("different seeds produced identical corpora")
		}
	}
}

func TestIdentifiersDescendingFrequency(t *testing.T) {
	col := Generate(NYTLike(100, 1))
	// Measure actual collection frequencies per id; they must be
	// non-increasing in id.
	counts := make(map[sequence.Term]int64)
	for i := range col.Docs {
		for _, s := range col.Docs[i].Sentences {
			for _, term := range s {
				counts[term]++
			}
		}
	}
	var maxID sequence.Term
	for id := range counts {
		if id > maxID {
			maxID = id
		}
	}
	prev := int64(math.MaxInt64)
	for id := sequence.Term(0); id <= maxID; id++ {
		c := counts[id]
		if c == 0 {
			t.Fatalf("gap in term ids at %d", id)
		}
		if c > prev {
			t.Fatalf("id %d has cf %d > cf %d of id %d", id, c, prev, id-1)
		}
		prev = c
	}
	// The dictionary records the same frequencies.
	if col.Dict == nil {
		t.Fatal("no dictionary attached")
	}
	for id := sequence.Term(0); id <= maxID; id++ {
		if col.Dict.CF(id) != counts[id] {
			t.Fatalf("dictionary cf mismatch at id %d", id)
		}
	}
}

func TestSentenceLengthMoments(t *testing.T) {
	cfgs := []struct {
		cfg      Config
		mean, sd float64
	}{
		{NYTLike(800, 3), 18.96, 14.05},
		{CWLike(800, 4), 17.02, 17.56},
	}
	for _, c := range cfgs {
		// The generator's background parameters are calibrated so the
		// measured post-truncation, post-injection moments land near the
		// Table I values.
		st := Generate(c.cfg).Stats()
		if math.Abs(st.SentenceLenMean-c.mean) > 2.5 {
			t.Errorf("%s: sentence length mean = %.2f, want ≈ %.2f", c.cfg.Name, st.SentenceLenMean, c.mean)
		}
		if math.Abs(st.SentenceLenSD-c.sd) > 4.0 {
			t.Errorf("%s: sentence length sd = %.2f, want ≈ %.2f", c.cfg.Name, st.SentenceLenSD, c.sd)
		}
	}
}

func TestYearsWithinRange(t *testing.T) {
	col := Generate(NYTLike(200, 5))
	years := map[int]bool{}
	for _, d := range col.Docs {
		if d.Year < 1987 || d.Year > 2007 {
			t.Fatalf("doc year %d out of range", d.Year)
		}
		years[d.Year] = true
	}
	if len(years) < 10 {
		t.Fatalf("only %d distinct years in 200 docs", len(years))
	}
	for _, d := range Generate(CWLike(50, 5)).Docs {
		if d.Year != 2009 {
			t.Fatalf("CW doc year %d, want 2009", d.Year)
		}
	}
}

// TestLongFrequentNGramsExist verifies the injected patterns produce
// what Figure 2 shows: n-grams of 10+ terms occurring 5+ times.
func TestLongFrequentNGramsExist(t *testing.T) {
	for _, cfg := range []Config{NYTLike(600, 11), CWLike(600, 12)} {
		col := Generate(cfg)
		run, err := core.Compute(context.Background(), col, core.SuffixSigma, core.Params{
			Tau: 5, Sigma: 200, NumReducers: 4, InputSplits: 4, TempDir: t.TempDir(),
		})
		if err != nil {
			t.Fatal(err)
		}
		longest := 0
		err = run.Result.Each(func(s sequence.Seq, cf int64) error {
			if len(s) > longest {
				longest = len(s)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if longest < 10 {
			t.Errorf("%s: longest frequent n-gram has %d terms, want ≥ 10", cfg.Name, longest)
		}
	}
}

// TestZipfShape: frequency of rank-0 term should dominate, and the
// distribution should be heavy-tailed (many hapaxes).
func TestZipfShape(t *testing.T) {
	col := Generate(NYTLike(400, 13))
	st := col.Stats()
	top := col.Dict.CF(0)
	if float64(top) < 0.01*float64(st.TermOccurrences) {
		t.Fatalf("top term covers only %d of %d occurrences", top, st.TermOccurrences)
	}
	ones := 0
	for id := sequence.Term(0); int(id) < col.Dict.Len(); id++ {
		if col.Dict.CF(id) == 1 {
			ones++
		}
	}
	if float64(ones) < 0.1*float64(col.Dict.Len()) {
		t.Fatalf("only %d of %d terms are hapaxes", ones, col.Dict.Len())
	}
}

func TestWordDeterministicAndDistinct(t *testing.T) {
	seen := map[string]int{}
	for i := 0; i < 5000; i++ {
		w := Word(i)
		if w == "" {
			t.Fatalf("empty word for rank %d", i)
		}
		if prev, dup := seen[w]; dup {
			t.Fatalf("Word(%d) == Word(%d) == %q", i, prev, w)
		}
		seen[w] = i
		if w != Word(i) {
			t.Fatalf("Word(%d) not deterministic", i)
		}
	}
}

func TestZipfSampler(t *testing.T) {
	z := newZipfSampler(100, 1.0)
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		r := z.sample(rng)
		if r < 0 || r >= 100 {
			t.Fatalf("sample out of range: %d", r)
		}
		counts[r]++
	}
	// Rank 0 ≈ 1/H(100) ≈ 19% of the mass.
	if counts[0] < n/10 || counts[0] > n/3 {
		t.Fatalf("rank-0 frequency %d implausible for Zipf(1.0)", counts[0])
	}
	// Monotone-ish decrease between well-separated ranks.
	if counts[0] <= counts[10] || counts[10] <= counts[60] {
		t.Fatalf("frequencies not decreasing: %d %d %d", counts[0], counts[10], counts[60])
	}
}

// TestCWScaleRelativeToNYT: CW configuration yields a noisier corpus —
// more distinct terms for the same document count.
func TestCWScaleRelativeToNYT(t *testing.T) {
	nyt := Generate(NYTLike(300, 21)).Stats()
	cw := Generate(CWLike(300, 21)).Stats()
	if cw.DistinctTerms <= nyt.DistinctTerms {
		t.Fatalf("CW distinct terms %d ≤ NYT %d", cw.DistinctTerms, nyt.DistinctTerms)
	}
}
