// Package synth generates the synthetic stand-ins for the paper's two
// evaluation corpora (Section VII-B): a NYT-like collection (clean,
// well-curated, longitudinal news articles, 1987–2007) and a CW-like
// collection ("World Wild Web": heterogeneous, noisy web pages crawled
// in 2009). Since the originals are licensed corpora we cannot ship,
// the generators reproduce the properties the evaluation depends on:
//
//   - Zipfian unigram distribution with burstiness (within-document
//     term repetition), so collection frequencies exceed document
//     frequencies as in real text;
//   - sentence-length distributions matching Table I (NYT: mean 18.96,
//     sd 14.05; CW: mean 17.02, sd 17.56), with sentences acting as
//     n-gram barriers;
//   - very long n-grams that occur more than τ times — the quotations,
//     recipes and chess openings the paper observes in NYT, and the web
//     spam and stack traces it observes in ClueWeb09-B (Section VII-C,
//     Figure 2) — injected from deterministic pattern pools;
//   - a document-count ratio between the two corpora mirroring
//     NYT : CW ≈ 1 : 27 at whatever scale the caller chooses.
//
// Generation is deterministic given the seed. Term identifiers are
// re-ranked by actual descending collection frequency after generation,
// exactly like the paper's pre-processing, and a pseudo-word dictionary
// is attached for human-readable output.
package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ngramstats/internal/corpus"
	"ngramstats/internal/dictionary"
	"ngramstats/internal/sequence"
)

// PatternConfig controls one pool of injected long repeated patterns.
type PatternConfig struct {
	// Pool is the number of distinct patterns.
	Pool int
	// MinLen and MaxLen bound pattern length in terms.
	MinLen, MaxLen int
	// PerDocProb is the probability that a document contains a pattern
	// from this pool.
	PerDocProb float64
	// MaxRepeats is the maximum number of times the chosen pattern is
	// repeated within one document (web spam repeats itself; quotations
	// usually do not).
	MaxRepeats int
	// SharedPrefix, if positive, makes all patterns of the pool share
	// their first SharedPrefix terms (stack traces share frames; spam
	// shares boilerplate).
	SharedPrefix int
}

// Config parameterizes a synthetic collection.
type Config struct {
	// Name labels the collection ("NYT", "CW").
	Name string
	// Docs is the number of documents.
	Docs int
	// Seed makes generation deterministic.
	Seed int64
	// VocabSize is the size of the background vocabulary.
	VocabSize int
	// ZipfS is the Zipf exponent of the background unigram distribution.
	ZipfS float64
	// Burstiness is the probability that a term repeats a recent term of
	// the same document instead of being drawn fresh.
	Burstiness float64
	// SentencesMin and SentencesMax bound sentences per document.
	SentencesMin, SentencesMax int
	// SentLenMean and SentLenSD parameterize the (truncated) Gaussian
	// sentence-length distribution.
	SentLenMean, SentLenSD float64
	// YearMin and YearMax bound document timestamps (inclusive).
	YearMin, YearMax int
	// Patterns are the injected long repeated pattern pools.
	Patterns []PatternConfig
}

// NYTLike returns the configuration of the NYT-like corpus at the given
// document count.
func NYTLike(docs int, seed int64) Config {
	return Config{
		Name:         "NYT",
		Docs:         docs,
		Seed:         seed,
		VocabSize:    20000,
		ZipfS:        1.07,
		Burstiness:   0.12,
		SentencesMin: 2,
		SentencesMax: 12,
		// Background parameters calibrated so the *measured* moments
		// after truncation at length 1 and pattern injection match
		// Table I (mean 18.96, sd 14.05).
		SentLenMean: 17.2,
		SentLenSD:   14.05,
		YearMin:     1987,
		YearMax:     2007,
		Patterns: []PatternConfig{
			// Quotations, poetry, lyrics: medium-length, quoted verbatim.
			{Pool: 120, MinLen: 8, MaxLen: 40, PerDocProb: 0.25, MaxRepeats: 1},
			// Ingredient lists of recipes: long, fairly frequent.
			{Pool: 25, MinLen: 40, MaxLen: 110, PerDocProb: 0.04, MaxRepeats: 1},
			// Chess openings: long with heavily shared prefixes.
			{Pool: 15, MinLen: 20, MaxLen: 60, PerDocProb: 0.02, MaxRepeats: 1, SharedPrefix: 10},
		},
	}
}

// CWLike returns the configuration of the ClueWeb09-B-like corpus at
// the given document count. Relative to NYT it is noisier (larger
// vocabulary, flatter Zipf, higher sentence-length variance) and
// contains aggressively repeated web spam and error messages.
func CWLike(docs int, seed int64) Config {
	return Config{
		Name:         "CW",
		Docs:         docs,
		Seed:         seed,
		VocabSize:    60000,
		ZipfS:        1.02,
		Burstiness:   0.18,
		SentencesMin: 1,
		SentencesMax: 10,
		// Calibrated so the measured moments match Table I
		// (mean 17.02, sd 17.56); the heavy truncation bias of the
		// high-variance distribution is compensated here.
		SentLenMean: 12.6,
		SentLenSD:   17.56,
		YearMin:     2009,
		YearMax:     2009,
		Patterns: []PatternConfig{
			// Web spam: long keyword-stuffing blocks repeated within pages.
			{Pool: 30, MinLen: 50, MaxLen: 150, PerDocProb: 0.06, MaxRepeats: 3, SharedPrefix: 6},
			// Error messages / stack traces with shared frames.
			{Pool: 40, MinLen: 15, MaxLen: 60, PerDocProb: 0.05, MaxRepeats: 2, SharedPrefix: 8},
			// Copied navigation/boilerplate snippets.
			{Pool: 200, MinLen: 6, MaxLen: 25, PerDocProb: 0.20, MaxRepeats: 1},
		},
	}
}

// Generate builds the collection described by cfg.
func Generate(cfg Config) *corpus.Collection {
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := newZipfSampler(cfg.VocabSize, cfg.ZipfS)

	// Materialize the injected pattern pools.
	var pools [][][]int // pools[p][i] = pattern term ranks
	for _, pc := range cfg.Patterns {
		pool := make([][]int, pc.Pool)
		var shared []int
		if pc.SharedPrefix > 0 {
			shared = make([]int, pc.SharedPrefix)
			for i := range shared {
				shared[i] = zipf.sample(rng)
			}
		}
		for i := range pool {
			l := pc.MinLen
			if pc.MaxLen > pc.MinLen {
				l += rng.Intn(pc.MaxLen - pc.MinLen + 1)
			}
			pat := make([]int, 0, l)
			pat = append(pat, shared...)
			for len(pat) < l {
				pat = append(pat, zipf.sample(rng))
			}
			pool[i] = pat
		}
		pools = append(pools, pool)
	}

	type rawDoc struct {
		year      int
		sentences [][]int
	}
	raw := make([]rawDoc, cfg.Docs)
	var history []int // per-document burstiness cache
	for d := 0; d < cfg.Docs; d++ {
		doc := &raw[d]
		doc.year = cfg.YearMin
		if cfg.YearMax > cfg.YearMin {
			doc.year += rng.Intn(cfg.YearMax - cfg.YearMin + 1)
		}
		nSent := cfg.SentencesMin
		if cfg.SentencesMax > cfg.SentencesMin {
			nSent += rng.Intn(cfg.SentencesMax - cfg.SentencesMin + 1)
		}
		history = history[:0]
		for s := 0; s < nSent; s++ {
			l := int(math.Round(rng.NormFloat64()*cfg.SentLenSD + cfg.SentLenMean))
			if l < 1 {
				l = 1
			}
			sent := make([]int, l)
			for i := range sent {
				if len(history) > 4 && rng.Float64() < cfg.Burstiness {
					sent[i] = history[rng.Intn(len(history))]
				} else {
					sent[i] = zipf.sample(rng)
				}
				history = append(history, sent[i])
				if len(history) > 256 {
					history = history[len(history)-256:]
				}
			}
			doc.sentences = append(doc.sentences, sent)
		}
		// Inject patterns as standalone sentences.
		for p, pc := range cfg.Patterns {
			if rng.Float64() >= pc.PerDocProb {
				continue
			}
			pat := pools[p][rng.Intn(len(pools[p]))]
			repeats := 1
			if pc.MaxRepeats > 1 {
				repeats += rng.Intn(pc.MaxRepeats)
			}
			for rep := 0; rep < repeats; rep++ {
				// Insert at a random sentence position.
				at := rng.Intn(len(doc.sentences) + 1)
				doc.sentences = append(doc.sentences, nil)
				copy(doc.sentences[at+1:], doc.sentences[at:])
				doc.sentences[at] = pat
			}
		}
	}

	// Re-rank terms by actual descending collection frequency — the
	// paper's pre-processing ("We assign identifiers to terms in
	// descending order of their collection frequency to optimize
	// compression").
	counts := make(map[int]int64)
	for d := range raw {
		for _, s := range raw[d].sentences {
			for _, t := range s {
				counts[t]++
			}
		}
	}
	type tc struct {
		rank int
		cf   int64
	}
	ranked := make([]tc, 0, len(counts))
	for r, c := range counts {
		ranked = append(ranked, tc{r, c})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].cf != ranked[j].cf {
			return ranked[i].cf > ranked[j].cf
		}
		return ranked[i].rank < ranked[j].rank
	})
	remap := make(map[int]sequence.Term, len(ranked))
	builder := dictionary.NewBuilder()
	for id, e := range ranked {
		remap[e.rank] = sequence.Term(id)
		builder.AddN(Word(e.rank), e.cf)
	}
	dict := builder.Build()

	col := &corpus.Collection{Name: cfg.Name, Dict: dict}
	col.Docs = make([]corpus.Document, cfg.Docs)
	for d := range raw {
		doc := &col.Docs[d]
		doc.ID = int64(d)
		doc.Year = raw[d].year
		doc.Sentences = make([]sequence.Seq, len(raw[d].sentences))
		for i, s := range raw[d].sentences {
			seq := make(sequence.Seq, len(s))
			for j, t := range s {
				seq[j] = remap[t]
			}
			doc.Sentences[i] = seq
		}
	}
	return col
}

// Word returns the deterministic pseudo-word for a vocabulary rank,
// built from alternating consonant-vowel syllables so output reads like
// text. Distinct ranks yield distinct words.
func Word(rank int) string {
	consonants := []string{"b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "t", "v", "w", "z"}
	vowels := []string{"a", "e", "i", "o", "u"}
	n := rank
	word := ""
	for {
		c := consonants[n%len(consonants)]
		n /= len(consonants)
		v := vowels[n%len(vowels)]
		n /= len(vowels)
		word += c + v
		if n == 0 {
			break
		}
		n--
	}
	return fmt.Sprintf("%s%d", word, rank%10)
}

// zipfSampler draws ranks 0..n−1 with probability ∝ 1/(rank+1)^s via
// inverse-CDF binary search, supporting any s > 0 (the standard library
// sampler requires s > 1).
type zipfSampler struct {
	cdf []float64
}

func newZipfSampler(n int, s float64) *zipfSampler {
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1.0 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &zipfSampler{cdf: cdf}
}

func (z *zipfSampler) sample(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}
