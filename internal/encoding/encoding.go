// Package encoding provides the byte-level codecs shared by all methods:
// variable-byte (varint) integer encoding [Witten et al., "Managing
// Gigabytes"], length-framed records for spill files, sequence key
// codecs, and raw comparators that order encoded sequences without
// materializing them — the Go equivalent of the Hadoop raw comparators
// the paper recommends in Section V.
package encoding

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"ngramstats/internal/sequence"
)

// ErrCorrupt is returned when a codec encounters malformed input.
var ErrCorrupt = errors.New("encoding: corrupt data")

// AppendUvarint appends the varint encoding of v to dst.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// Uvarint decodes a varint from b, returning the value and the number of
// bytes read. It returns n <= 0 on malformed input, mirroring
// binary.Uvarint.
func Uvarint(b []byte) (uint64, int) {
	return binary.Uvarint(b)
}

// UvarintLen returns the number of bytes AppendUvarint uses for v.
func UvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// AppendSeq appends the terms of s as consecutive varints. The encoding
// carries no explicit length: a sequence key occupies an entire key
// slice and is decoded until exhaustion. Term identifiers are assigned
// in descending collection-frequency order, so frequent terms encode in
// one byte.
func AppendSeq(dst []byte, s sequence.Seq) []byte {
	for _, t := range s {
		dst = binary.AppendUvarint(dst, uint64(t))
	}
	return dst
}

// EncodeSeq returns the varint encoding of s as a fresh slice.
func EncodeSeq(s sequence.Seq) []byte {
	return AppendSeq(make([]byte, 0, len(s)+4), s)
}

// DecodeSeq decodes an entire slice of consecutive varints into a term
// sequence.
func DecodeSeq(b []byte) (sequence.Seq, error) {
	s := make(sequence.Seq, 0, len(b))
	for len(b) > 0 {
		v, n := binary.Uvarint(b)
		if n <= 0 || v > 0xFFFFFFFF {
			return nil, fmt.Errorf("%w: bad term varint", ErrCorrupt)
		}
		s = append(s, sequence.Term(v))
		b = b[n:]
	}
	return s, nil
}

// DecodeSeqInto decodes b into dst (reusing its capacity) and returns
// the decoded sequence. It is the allocation-free variant of DecodeSeq
// for hot loops.
func DecodeSeqInto(dst sequence.Seq, b []byte) (sequence.Seq, error) {
	dst = dst[:0]
	for len(b) > 0 {
		v, n := binary.Uvarint(b)
		if n <= 0 || v > 0xFFFFFFFF {
			return dst, fmt.Errorf("%w: bad term varint", ErrCorrupt)
		}
		dst = append(dst, sequence.Term(v))
		b = b[n:]
	}
	return dst, nil
}

// SeqLen returns the number of terms encoded in b without allocating.
// Malformed input yields -1.
func SeqLen(b []byte) int {
	n := 0
	for len(b) > 0 {
		_, w := binary.Uvarint(b)
		if w <= 0 {
			return -1
		}
		b = b[w:]
		n++
	}
	return n
}

// FirstTerm decodes the first term of an encoded sequence. The SUFFIX-σ
// partitioner assigns reducers based on it alone (Algorithm 4).
func FirstTerm(b []byte) (sequence.Term, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 || v > 0xFFFFFFFF {
		return 0, fmt.Errorf("%w: bad first term", ErrCorrupt)
	}
	return sequence.Term(v), nil
}

// CompareSeqBytes orders two encoded sequences in standard lexicographic
// term order without materializing them: terms are decoded one varint at
// a time and compared numerically; a shorter sequence that is a prefix
// of the other sorts first.
func CompareSeqBytes(a, b []byte) int {
	// Fast path: term identifiers are frequency-ranked, so the vast
	// majority encode as single-byte varints (< 0x80), which compare
	// numerically exactly as raw bytes. Walk those without the varint
	// decode; both slices stay aligned on varint starts, so the general
	// loop below picks up correctly at the first multi-byte lead.
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i]|b[i] < 0x80 {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
		i++
	}
	a, b = a[i:], b[i:]
	for {
		switch {
		case len(a) == 0 && len(b) == 0:
			return 0
		case len(a) == 0:
			return -1
		case len(b) == 0:
			return 1
		}
		va, na := binary.Uvarint(a)
		vb, nb := binary.Uvarint(b)
		if na <= 0 || nb <= 0 {
			// Malformed input cannot occur for keys we produced; order
			// arbitrarily but deterministically by raw bytes.
			return rawCompare(a, b)
		}
		switch {
		case va < vb:
			return -1
		case va > vb:
			return 1
		}
		a, b = a[na:], b[nb:]
	}
}

// CompareSeqBytesReverse orders two encoded sequences in the reverse
// lexicographic order of Section IV: terms compare in descending
// identifier order and a sequence sorts before its own proper prefixes.
// This is the raw-bytes form of sequence.CompareReverseLex and is used
// as the SUFFIX-σ shuffle comparator.
func CompareSeqBytesReverse(a, b []byte) int {
	// Same single-byte fast path as CompareSeqBytes, with the comparison
	// inverted (descending term order). The prefix rule only matters once
	// one side is exhausted, which the general loop below handles.
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i]|b[i] < 0x80 {
		if a[i] != b[i] {
			if a[i] > b[i] {
				return -1
			}
			return 1
		}
		i++
	}
	a, b = a[i:], b[i:]
	for {
		switch {
		case len(a) == 0 && len(b) == 0:
			return 0
		case len(a) == 0:
			return 1 // a is a proper prefix of b: b (longer) sorts first
		case len(b) == 0:
			return -1
		}
		va, na := binary.Uvarint(a)
		vb, nb := binary.Uvarint(b)
		if na <= 0 || nb <= 0 {
			return rawCompare(a, b)
		}
		switch {
		case va > vb:
			return -1
		case va < vb:
			return 1
		}
		a, b = a[na:], b[nb:]
	}
}

func rawCompare(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return len(a) - len(b)
}

// CompareBytes orders raw byte slices lexicographically. It is the
// default shuffle comparator for jobs whose keys are not sequences.
func CompareBytes(a, b []byte) int { return rawCompare(a, b) }

// WriteRecord writes a length-framed (key, value) record:
// uvarint(len(key)) ‖ key ‖ uvarint(len(value)) ‖ value.
func WriteRecord(w io.Writer, key, value []byte) error {
	var hdr [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(key)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := w.Write(key); err != nil {
		return err
	}
	n = binary.PutUvarint(hdr[:], uint64(len(value)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := w.Write(value)
	return err
}

// RecordReader reads length-framed records produced by WriteRecord.
type RecordReader struct {
	r   io.ByteReader
	src io.Reader
	key []byte
	val []byte
}

// NewRecordReader returns a RecordReader reading from r. For efficiency
// r should be buffered; if it does not implement io.ByteReader a
// one-byte fallback is used.
func NewRecordReader(r io.Reader) *RecordReader {
	br, ok := r.(interface {
		io.Reader
		io.ByteReader
	})
	if ok {
		return &RecordReader{r: br, src: br}
	}
	return &RecordReader{r: &byteReaderAdapter{r: r}, src: r}
}

type byteReaderAdapter struct {
	r   io.Reader
	buf [1]byte
}

func (a *byteReaderAdapter) ReadByte() (byte, error) {
	_, err := io.ReadFull(a.r, a.buf[:])
	return a.buf[0], err
}

// Next reads the next record. It returns io.EOF at a clean end of
// stream and ErrCorrupt on a truncated record. The returned slices are
// reused across calls.
func (rr *RecordReader) Next() (key, value []byte, err error) {
	klen, err := binary.ReadUvarint(rr.r)
	if err != nil {
		if err == io.EOF {
			return nil, nil, io.EOF
		}
		return nil, nil, fmt.Errorf("%w: record key length: %v", ErrCorrupt, err)
	}
	rr.key = grow(rr.key, int(klen))
	if err := rr.readFull(rr.key); err != nil {
		return nil, nil, fmt.Errorf("%w: record key: %v", ErrCorrupt, err)
	}
	vlen, err := binary.ReadUvarint(rr.r)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: record value length: %v", ErrCorrupt, err)
	}
	rr.val = grow(rr.val, int(vlen))
	if err := rr.readFull(rr.val); err != nil {
		return nil, nil, fmt.Errorf("%w: record value: %v", ErrCorrupt, err)
	}
	return rr.key, rr.val, nil
}

func (rr *RecordReader) readFull(dst []byte) error {
	if len(dst) == 0 {
		return nil
	}
	if r, ok := rr.src.(io.Reader); ok {
		_, err := io.ReadFull(r, dst)
		return err
	}
	for i := range dst {
		b, err := rr.r.ReadByte()
		if err != nil {
			return err
		}
		dst[i] = b
	}
	return nil
}

func grow(b []byte, n int) []byte {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]byte, n)
}

// RecordLen returns the on-disk size of a record with the given key and
// value lengths. Used by spill accounting.
func RecordLen(keyLen, valLen int) int {
	return UvarintLen(uint64(keyLen)) + keyLen + UvarintLen(uint64(valLen)) + valLen
}
