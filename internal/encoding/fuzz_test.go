package encoding

import (
	"bytes"
	"testing"
)

// FuzzDecodeSeq: arbitrary bytes either decode to a sequence that
// re-encodes to the same bytes, or are rejected — never a panic.
func FuzzDecodeSeq(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x7F})
	f.Add([]byte{0x80, 0x01})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSeq(data)
		if err != nil {
			return
		}
		re := EncodeSeq(s)
		// Varints have a unique minimal form, but decoding accepts
		// non-minimal encodings; re-encoding those shrinks. Decoding the
		// re-encoded form must reproduce the same sequence.
		s2, err := DecodeSeq(re)
		if err != nil {
			t.Fatalf("re-encoded sequence failed to decode: %v", err)
		}
		if len(s) != len(s2) {
			t.Fatalf("round trip changed length: %d vs %d", len(s), len(s2))
		}
		for i := range s {
			if s[i] != s2[i] {
				t.Fatalf("round trip changed term %d", i)
			}
		}
		if SeqLen(data) != len(s) {
			t.Fatalf("SeqLen disagrees with DecodeSeq")
		}
	})
}

// FuzzRecordReader: truncated or corrupted record streams must error
// out or terminate cleanly, never panic or over-read.
func FuzzRecordReader(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteRecord(&seed, []byte("key"), []byte("value"))
	_ = WriteRecord(&seed, nil, nil)
	f.Add(seed.Bytes())
	f.Add([]byte{0x05})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		rr := NewRecordReader(bytes.NewReader(data))
		for i := 0; i < 1000; i++ {
			k, v, err := rr.Next()
			if err != nil {
				return
			}
			if len(k)+len(v) > len(data) {
				t.Fatalf("record larger than input: %d+%d > %d", len(k), len(v), len(data))
			}
		}
	})
}

// FuzzComparatorsAgree: on arbitrary valid encodings, the raw
// comparators are antisymmetric and agree on equality.
func FuzzComparatorsAgree(f *testing.F) {
	f.Add([]byte{0x01, 0x02}, []byte{0x01, 0x03})
	f.Add([]byte{}, []byte{0x00})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		if _, err := DecodeSeq(a); err != nil {
			return
		}
		if _, err := DecodeSeq(b); err != nil {
			return
		}
		fwd := CompareSeqBytes(a, b)
		rev := CompareSeqBytes(b, a)
		if (fwd < 0) != (rev > 0) || (fwd == 0) != (rev == 0) {
			t.Fatalf("CompareSeqBytes not antisymmetric: %d vs %d", fwd, rev)
		}
		rfwd := CompareSeqBytesReverse(a, b)
		rrev := CompareSeqBytesReverse(b, a)
		if (rfwd < 0) != (rrev > 0) || (rfwd == 0) != (rrev == 0) {
			t.Fatalf("CompareSeqBytesReverse not antisymmetric: %d vs %d", rfwd, rrev)
		}
		if (fwd == 0) != (rfwd == 0) {
			t.Fatalf("comparators disagree on equality")
		}
	})
}
