package encoding

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"ngramstats/internal/sequence"
)

func TestUvarintRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		b := AppendUvarint(nil, v)
		got, n := Uvarint(b)
		return n == len(b) && got == v && UvarintLen(v) == len(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestUvarintLenBoundaries(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 1}, {0x7F, 1}, {0x80, 2}, {0x3FFF, 2}, {0x4000, 3},
	}
	for _, c := range cases {
		if got := UvarintLen(c.v); got != c.want {
			t.Errorf("UvarintLen(%#x) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestSeqRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(20)
		s := make(sequence.Seq, n)
		for i := range s {
			s[i] = sequence.Term(rng.Uint32() >> uint(rng.Intn(24)))
		}
		b := EncodeSeq(s)
		got, err := DecodeSeq(b)
		if err != nil {
			t.Fatal(err)
		}
		if !sequence.Equal(got, s) {
			t.Fatalf("round trip: got %v, want %v", got, s)
		}
		if SeqLen(b) != len(s) {
			t.Fatalf("SeqLen = %d, want %d", SeqLen(b), len(s))
		}
		got2, err := DecodeSeqInto(got[:0], b)
		if err != nil {
			t.Fatal(err)
		}
		if !sequence.Equal(got2, s) {
			t.Fatalf("DecodeSeqInto: got %v, want %v", got2, s)
		}
	}
}

func TestDecodeSeqCorrupt(t *testing.T) {
	// A lone continuation byte is malformed.
	if _, err := DecodeSeq([]byte{0x80}); err == nil {
		t.Fatal("DecodeSeq accepted truncated varint")
	}
	if SeqLen([]byte{0x80}) != -1 {
		t.Fatal("SeqLen accepted truncated varint")
	}
	if _, err := FirstTerm([]byte{0x80}); err == nil {
		t.Fatal("FirstTerm accepted truncated varint")
	}
}

func TestFirstTerm(t *testing.T) {
	s := sequence.Seq{300, 2, 1}
	ft, err := FirstTerm(EncodeSeq(s))
	if err != nil {
		t.Fatal(err)
	}
	if ft != 300 {
		t.Fatalf("FirstTerm = %d, want 300", ft)
	}
}

// TestCompareSeqBytesMatchesDecoded verifies that the raw comparators
// agree with their decoded counterparts on random sequences — the
// correctness condition for using raw comparators in the shuffle.
func TestCompareSeqBytesMatchesDecoded(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	gen := func() sequence.Seq {
		n := rng.Intn(6)
		s := make(sequence.Seq, n)
		for i := range s {
			// Mix of 1-byte and multi-byte varints.
			s[i] = sequence.Term(rng.Intn(1000))
		}
		return s
	}
	for trial := 0; trial < 20000; trial++ {
		a, b := gen(), gen()
		ea, eb := EncodeSeq(a), EncodeSeq(b)
		if sign(CompareSeqBytes(ea, eb)) != sign(sequence.Compare(a, b)) {
			t.Fatalf("CompareSeqBytes(%v, %v) disagrees with sequence.Compare", a, b)
		}
		if sign(CompareSeqBytesReverse(ea, eb)) != sign(sequence.CompareReverseLex(a, b)) {
			t.Fatalf("CompareSeqBytesReverse(%v, %v) disagrees with sequence.CompareReverseLex", a, b)
		}
	}
}

func TestCompareBytes(t *testing.T) {
	cases := []struct {
		a, b []byte
		want int
	}{
		{nil, nil, 0},
		{[]byte{1}, nil, 1},
		{[]byte{1}, []byte{2}, -1},
		{[]byte{1, 2}, []byte{1}, 1},
		{[]byte{1, 2}, []byte{1, 2}, 0},
	}
	for _, c := range cases {
		if got := CompareBytes(c.a, c.b); sign(got) != sign(c.want) {
			t.Errorf("CompareBytes(%v, %v) = %d", c.a, c.b, got)
		}
	}
}

func TestRecordRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	type rec struct{ k, v []byte }
	rng := rand.New(rand.NewSource(3))
	var want []rec
	for i := 0; i < 200; i++ {
		k := make([]byte, rng.Intn(40))
		v := make([]byte, rng.Intn(100))
		rng.Read(k)
		rng.Read(v)
		want = append(want, rec{k, v})
		if err := WriteRecord(&buf, k, v); err != nil {
			t.Fatal(err)
		}
	}
	rr := NewRecordReader(bytes.NewReader(buf.Bytes()))
	for i, w := range want {
		k, v, err := rr.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(k, w.k) || !bytes.Equal(v, w.v) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if _, _, err := rr.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestRecordEmptyKeyValue(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRecord(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	rr := NewRecordReader(&buf)
	k, v, err := rr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(k) != 0 || len(v) != 0 {
		t.Fatalf("expected empty record, got %v %v", k, v)
	}
}

func TestRecordTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRecord(&buf, []byte("key"), []byte("value")); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	rr := NewRecordReader(bytes.NewReader(b[:len(b)-2]))
	if _, _, err := rr.Next(); err == nil {
		t.Fatal("expected error on truncated record")
	}
}

func TestRecordLen(t *testing.T) {
	var buf bytes.Buffer
	k := make([]byte, 130)
	v := make([]byte, 7)
	if err := WriteRecord(&buf, k, v); err != nil {
		t.Fatal(err)
	}
	if got := RecordLen(len(k), len(v)); got != buf.Len() {
		t.Fatalf("RecordLen = %d, want %d", got, buf.Len())
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}
