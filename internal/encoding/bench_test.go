package encoding

import (
	"math/rand"
	"testing"

	"ngramstats/internal/sequence"
)

func benchSeqs(n, maxLen, vocab int) [][]byte {
	rng := rand.New(rand.NewSource(1))
	out := make([][]byte, n)
	for i := range out {
		l := 1 + rng.Intn(maxLen)
		s := make(sequence.Seq, l)
		for j := range s {
			s[j] = sequence.Term(rng.Intn(vocab))
		}
		out[i] = EncodeSeq(s)
	}
	return out
}

func BenchmarkEncodeSeq(b *testing.B) {
	s := sequence.Seq{3, 70, 1500, 2, 99, 40000, 7, 1}
	b.ReportAllocs()
	var buf []byte
	for i := 0; i < b.N; i++ {
		buf = AppendSeq(buf[:0], s)
	}
}

func BenchmarkDecodeSeqInto(b *testing.B) {
	enc := EncodeSeq(sequence.Seq{3, 70, 1500, 2, 99, 40000, 7, 1})
	b.ReportAllocs()
	var s sequence.Seq
	var err error
	for i := 0; i < b.N; i++ {
		s, err = DecodeSeqInto(s, enc)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompareSeqBytesReverse measures the SUFFIX-σ shuffle
// comparator, the hottest function of the sort phase.
func BenchmarkCompareSeqBytesReverse(b *testing.B) {
	seqs := benchSeqs(1024, 8, 5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := seqs[i%len(seqs)]
		c := seqs[(i*7+1)%len(seqs)]
		CompareSeqBytesReverse(a, c)
	}
}

func BenchmarkCompareSeqBytes(b *testing.B) {
	seqs := benchSeqs(1024, 8, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CompareSeqBytes(seqs[i%len(seqs)], seqs[(i*7+1)%len(seqs)])
	}
}
