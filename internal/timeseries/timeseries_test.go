package timeseries

import (
	"math"
	"testing"
)

func TestFromCountsAndAccessors(t *testing.T) {
	s := FromCounts(map[int]int64{1990: 5, 1992: 2, 2010: 9}, 1990, 1995)
	if s.Start != 1990 || s.End() != 1995 {
		t.Fatalf("range = %d-%d", s.Start, s.End())
	}
	if s.At(1990) != 5 || s.At(1991) != 0 || s.At(1992) != 2 {
		t.Fatalf("values = %v", s.Values)
	}
	if s.At(2010) != 0 {
		t.Fatal("out-of-range year should be 0")
	}
	if s.Total() != 7 {
		t.Fatalf("Total = %f", s.Total())
	}
	// Swapped bounds are tolerated.
	s2 := FromCounts(map[int]int64{1991: 1}, 1995, 1990)
	if s2.Start != 1990 || s2.At(1991) != 1 {
		t.Fatal("swapped bounds broken")
	}
}

func TestNormalize(t *testing.T) {
	s := FromCounts(map[int]int64{2000: 10, 2001: 20}, 2000, 2002)
	denom := FromCounts(map[int]int64{2000: 100, 2001: 100}, 2000, 2002)
	n := s.Normalize(denom)
	if n.At(2000) != 0.1 || n.At(2001) != 0.2 {
		t.Fatalf("normalized = %v", n.Values)
	}
	if n.At(2002) != 0 {
		t.Fatal("zero denominator year should normalize to 0")
	}
}

func TestMovingAverage(t *testing.T) {
	s := &Series{Start: 2000, Values: []float64{0, 3, 0, 3, 0}}
	ma := s.MovingAverage(3)
	want := []float64{1.5, 1, 2, 1, 1.5}
	for i, v := range want {
		if math.Abs(ma.Values[i]-v) > 1e-9 {
			t.Fatalf("ma[%d] = %f, want %f (%v)", i, ma.Values[i], v, ma.Values)
		}
	}
	// Even window is rounded up to odd; width 1 is identity.
	id := s.MovingAverage(1)
	for i := range s.Values {
		if id.Values[i] != s.Values[i] {
			t.Fatal("window-1 moving average should be identity")
		}
	}
}

func TestPeakYear(t *testing.T) {
	s := FromCounts(map[int]int64{1990: 1, 1993: 7, 1994: 7}, 1990, 1995)
	year, v := s.PeakYear()
	if year != 1993 || v != 7 {
		t.Fatalf("peak = %d, %f", year, v)
	}
}

func TestCorrelation(t *testing.T) {
	a := &Series{Start: 2000, Values: []float64{1, 2, 3, 4}}
	b := &Series{Start: 2000, Values: []float64{2, 4, 6, 8}}
	if c := Correlation(a, b); math.Abs(c-1) > 1e-9 {
		t.Fatalf("correlation = %f, want 1", c)
	}
	inv := &Series{Start: 2000, Values: []float64{8, 6, 4, 2}}
	if c := Correlation(a, inv); math.Abs(c+1) > 1e-9 {
		t.Fatalf("correlation = %f, want -1", c)
	}
	flat := &Series{Start: 2000, Values: []float64{5, 5, 5, 5}}
	if c := Correlation(a, flat); !math.IsNaN(c) {
		t.Fatalf("correlation with constant = %f, want NaN", c)
	}
	short := &Series{Start: 2010, Values: []float64{1}}
	if c := Correlation(a, short); !math.IsNaN(c) {
		t.Fatalf("correlation without overlap = %f, want NaN", c)
	}
	// Partial overlap.
	c := Correlation(a, &Series{Start: 2002, Values: []float64{3, 4, 99}})
	if math.Abs(c-1) > 1e-9 {
		t.Fatalf("overlap correlation = %f, want 1", c)
	}
}

func TestSparkline(t *testing.T) {
	s := &Series{Start: 2000, Values: []float64{0, 1, 2, 4}}
	sp := s.Sparkline()
	if len([]rune(sp)) != 4 {
		t.Fatalf("sparkline length = %d", len([]rune(sp)))
	}
	zero := &Series{Start: 2000, Values: []float64{0, 0}}
	if zero.Sparkline() != "▁▁" {
		t.Fatalf("zero sparkline = %q", zero.Sparkline())
	}
	if s.String() == "" || s.String()[0] != '[' {
		t.Fatalf("String = %q", s.String())
	}
}
