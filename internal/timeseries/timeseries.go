// Package timeseries provides n-gram time-series types for the
// Section VI-B extension: per-year occurrence counts of an n-gram
// ("n-gram time series, recently made popular by Michel et al."),
// with the normalization and comparison operations culturomics-style
// analyses use.
package timeseries

import (
	"fmt"
	"math"
	"strings"
)

// Series is a dense yearly time series.
type Series struct {
	// Start is the first year.
	Start int
	// Values holds one observation per consecutive year.
	Values []float64
}

// FromCounts builds a dense series from sparse per-year counts over the
// inclusive [start, end] range. Years outside the range are ignored.
func FromCounts(counts map[int]int64, start, end int) *Series {
	if end < start {
		start, end = end, start
	}
	s := &Series{Start: start, Values: make([]float64, end-start+1)}
	for y, c := range counts {
		if y >= start && y <= end {
			s.Values[y-start] = float64(c)
		}
	}
	return s
}

// End returns the last year of the series.
func (s *Series) End() int { return s.Start + len(s.Values) - 1 }

// At returns the observation for a year (zero outside the range).
func (s *Series) At(year int) float64 {
	i := year - s.Start
	if i < 0 || i >= len(s.Values) {
		return 0
	}
	return s.Values[i]
}

// Total returns the sum of all observations.
func (s *Series) Total() float64 {
	var t float64
	for _, v := range s.Values {
		t += v
	}
	return t
}

// Normalize divides each observation by the corresponding value of
// denom (typically the per-year total of all n-grams), yielding
// relative frequencies. Years where denom is zero become zero.
func (s *Series) Normalize(denom *Series) *Series {
	out := &Series{Start: s.Start, Values: make([]float64, len(s.Values))}
	for i := range s.Values {
		d := denom.At(s.Start + i)
		if d != 0 {
			out.Values[i] = s.Values[i] / d
		}
	}
	return out
}

// MovingAverage smooths the series with a centered window of the given
// width (made odd by rounding up).
func (s *Series) MovingAverage(window int) *Series {
	if window < 1 {
		window = 1
	}
	if window%2 == 0 {
		window++
	}
	half := window / 2
	out := &Series{Start: s.Start, Values: make([]float64, len(s.Values))}
	for i := range s.Values {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi >= len(s.Values) {
			hi = len(s.Values) - 1
		}
		var sum float64
		for j := lo; j <= hi; j++ {
			sum += s.Values[j]
		}
		out.Values[i] = sum / float64(hi-lo+1)
	}
	return out
}

// PeakYear returns the year of the maximum observation (the first, on
// ties) and its value.
func (s *Series) PeakYear() (int, float64) {
	best, bestYear := math.Inf(-1), s.Start
	for i, v := range s.Values {
		if v > best {
			best = v
			bestYear = s.Start + i
		}
	}
	return bestYear, best
}

// Correlation returns the Pearson correlation of two series over their
// overlapping years, or NaN if the overlap is shorter than 2 years or
// either side is constant.
func Correlation(a, b *Series) float64 {
	lo := a.Start
	if b.Start > lo {
		lo = b.Start
	}
	hi := a.End()
	if b.End() < hi {
		hi = b.End()
	}
	n := hi - lo + 1
	if n < 2 {
		return math.NaN()
	}
	var sx, sy float64
	for y := lo; y <= hi; y++ {
		sx += a.At(y)
		sy += b.At(y)
	}
	mx, my := sx/float64(n), sy/float64(n)
	var cov, vx, vy float64
	for y := lo; y <= hi; y++ {
		dx, dy := a.At(y)-mx, b.At(y)-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(vx*vy)
}

// Sparkline renders the series as a compact unicode bar chart, handy in
// example output.
func (s *Series) Sparkline() string {
	bars := []rune("▁▂▃▄▅▆▇█")
	max := math.Inf(-1)
	for _, v := range s.Values {
		if v > max {
			max = v
		}
	}
	if max <= 0 {
		return strings.Repeat("▁", len(s.Values))
	}
	var sb strings.Builder
	for _, v := range s.Values {
		idx := int(v / max * float64(len(bars)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(bars) {
			idx = len(bars) - 1
		}
		sb.WriteRune(bars[idx])
	}
	return sb.String()
}

// String renders the series with its year range.
func (s *Series) String() string {
	return fmt.Sprintf("[%d-%d] %s", s.Start, s.End(), s.Sparkline())
}
