package mapreduce

// Benchmarks for the shuffle emit path. The headline comparison is map
// phase throughput at MapSlots=1 vs MapSlots=GOMAXPROCS: with the
// map-side shuffle no lock is taken per emitted record, so adding map
// slots must never make the map phase slower (and speeds it up on
// multi-core hosts).

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"ngramstats/internal/encoding"
)

// benchInput builds splits whose mapper fans each input record out into
// many small intermediate records, making the emit path dominate.
func benchInput(splits int) Input {
	recs := make([]KV, splits)
	for i := range recs {
		recs[i] = KV{Key: []byte(fmt.Sprint(i)), Value: []byte("x")}
	}
	return SliceInput(recs, splits)
}

func benchShuffleJob(b *testing.B, mapSlots, emitPerTask int) {
	b.Helper()
	splits := 2 * runtime.GOMAXPROCS(0)
	if splits < 8 {
		splits = 8
	}
	var mapMillis int64
	for i := 0; i < b.N; i++ {
		res, err := Run(context.Background(), &Job{
			Name:        "bench-shuffle",
			Input:       benchInput(splits),
			NewMapper:   func() Mapper { return emitHeavyMapper{k: emitPerTask} },
			NewReducer:  func() Reducer { return sumReducer{} },
			NumReducers: 2,
			MapSlots:    mapSlots,
			TempDir:     b.TempDir(),
		})
		if err != nil {
			b.Fatal(err)
		}
		mapMillis = res.Counters.Get(CounterMapPhaseMillis)
		if err := res.Output.Release(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(mapMillis), "map-ms/op")
}

// BenchmarkMapPhaseThroughput is the before/after evidence for the
// lock-free emit path: compare MapSlots=1 against MapSlots=GOMAXPROCS.
func BenchmarkMapPhaseThroughput(b *testing.B) {
	const emitPerTask = 20_000
	b.Run("MapSlots=1", func(b *testing.B) {
		benchShuffleJob(b, 1, emitPerTask)
	})
	b.Run("MapSlots=GOMAXPROCS", func(b *testing.B) {
		benchShuffleJob(b, runtime.GOMAXPROCS(0), emitPerTask)
	})
}

// BenchmarkEmitRecord measures the raw cost of one record through the
// emit path (partition + task-private sorter append + atomic counters).
func BenchmarkEmitRecord(b *testing.B) {
	val := encoding.AppendUvarint(nil, 1)
	recs := []KV{{Key: []byte("0"), Value: []byte("x")}}
	res, err := Run(context.Background(), &Job{
		Name:  "bench-emit",
		Input: SliceInput(recs, 1),
		NewMapper: func() Mapper {
			return MapperFunc(func(key, value []byte, emit Emit) error {
				k := []byte("key-0000")
				for i := 0; i < b.N; i++ {
					if err := emit(k, val); err != nil {
						return err
					}
				}
				return nil
			})
		},
		NewReducer:  func() Reducer { return sumReducer{} },
		NumReducers: 4,
		TempDir:     b.TempDir(),
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := res.Output.Release(); err != nil {
		b.Fatal(err)
	}
}
