package mapreduce

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Task states of the coordinator's scheduler.
const (
	taskPending = iota // runnable, waiting for a worker
	taskRunning        // at least one live lease
	taskDone           // a winning result arrived
)

// netTaskState is the coordinator's view of one task.
type netTaskState struct {
	phase string // "map", "map-only", or "reduce"
	id    int
	state int
	// execs numbers attempts handed out (the Attempt field of leases).
	execs int
	// failures counts charged failures; reaching the attempt budget
	// fails the job. Requeues caused by upstream loss are not charged.
	failures int
	// lostRequeues counts re-executions of a done map whose outputs
	// became unreachable; a runaway loop of losses fails the job.
	lostRequeues int
	leases       []*netLease
	everDone     bool   // progress.TaskDone fired (kept true across lost-output requeues)
	doneBy       string // worker that produced the winning result
	// runs are the winning map attempt's sealed runs per partition.
	runs [][]netRunRef
}

// netLease is one outstanding task attempt on one worker.
type netLease struct {
	id          string
	task        *netTaskState
	worker      string
	started     time.Time
	expires     time.Time
	speculative bool
}

// netWorkerState tracks one registered worker.
type netWorkerState struct {
	id       string
	addr     string // base URL of the worker's shuffle service
	lastSeen time.Time
	// gone marks a worker presumed dead: its winning map outputs have
	// been invalidated. Any later contact clears it.
	gone bool
}

// netCoordinator schedules one plan's tasks across registered workers:
// it leases tasks out, expires leases that stop heartbeating, retries
// failures up to the attempt budget, launches speculative duplicates
// against stragglers, and re-executes map tasks whose outputs died
// with their worker. It is the server side of the protocol in
// netproto.go.
type netCoordinator struct {
	plan       *Plan
	sink       Sink
	counters   *Counters
	progress   Progress
	workdir    string
	baseURL    string // advertised http://host:port of this coordinator
	splitPaths []string
	sideFiles  map[string]string
	cfg        netJobConfig

	ttl         time.Duration
	specDelay   time.Duration // 0 disables speculation
	maxAttempts int
	maxLost     int

	mu          sync.Mutex
	maps        []*netTaskState
	reduces     []*netTaskState
	mapsDone    int
	reducesDone int
	leases      map[string]*netLease
	workers     map[string]*netWorkerState
	runIndex    map[string]*netTaskState // run URL → producing map task
	durations   map[string][]time.Duration
	leaseSeq    int
	workerSeq   int
	phaseStart  time.Time
	mapsClosed  bool // map phase accounted and reduce phase announced
	ended       bool
	failure     error
	doneCh      chan struct{}
}

func newNetCoordinator(plan *Plan, sink Sink, counters *Counters, progress Progress,
	workdir, baseURL string, splitPaths []string, sideFiles map[string]string,
	ttl, specDelay time.Duration, maxAttempts int) *netCoordinator {
	mapPhase := "map"
	if plan.MapOnly {
		mapPhase = "map-only"
	}
	c := &netCoordinator{
		plan: plan, sink: sink, counters: counters, progress: progress,
		workdir: workdir, baseURL: baseURL, splitPaths: splitPaths, sideFiles: sideFiles,
		ttl: ttl, specDelay: specDelay, maxAttempts: maxAttempts,
		maxLost:   2 * maxAttempts,
		leases:    make(map[string]*netLease),
		workers:   make(map[string]*netWorkerState),
		runIndex:  make(map[string]*netTaskState),
		durations: make(map[string][]time.Duration),
		doneCh:    make(chan struct{}),
	}
	sideKeys := make([]string, 0, len(sideFiles))
	for key := range sideFiles {
		sideKeys = append(sideKeys, key)
	}
	sort.Strings(sideKeys)
	c.cfg = netJobConfig{
		Name:           plan.Name,
		Program:        plan.Spec.Program,
		Config:         plan.Spec.Config,
		NumReducers:    plan.NumReducers,
		ShuffleMemory:  plan.ShuffleMemory,
		CombineMemory:  plan.CombineMemory,
		Codec:          int(plan.ShuffleCodec),
		SideKeys:       sideKeys,
		LeaseTTLMillis: ttl.Milliseconds(),
	}
	for i := range plan.Splits {
		c.maps = append(c.maps, &netTaskState{phase: mapPhase, id: i})
	}
	if !plan.MapOnly {
		for p := 0; p < plan.NumReducers; p++ {
			c.reduces = append(c.reduces, &netTaskState{phase: "reduce", id: p})
		}
	}
	return c
}

// start begins the job clock and handles degenerate plans (no splits).
func (c *netCoordinator) start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.phaseStart = time.Now()
	c.advanceLocked()
}

// err returns the job's failure after doneCh closed (nil on success).
func (c *netCoordinator) err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failure
}

// fail terminates the job with err (first failure wins).
func (c *netCoordinator) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failLocked(err)
}

func (c *netCoordinator) failLocked(err error) {
	if c.ended {
		return
	}
	c.ended = true
	c.failure = err
	close(c.doneCh)
}

// advanceLocked moves the job forward whenever completion counts may
// have changed: it closes the map phase once (failing on malformed
// keys, exactly like the other runners), and completes the job when
// every task is done.
func (c *netCoordinator) advanceLocked() {
	if c.ended || c.mapsDone != len(c.maps) {
		return
	}
	if n := c.counters.Get(CounterMalformedKeys); n > 0 {
		c.failLocked(fmt.Errorf("mapreduce: job %q: partitioner rejected %d malformed intermediate keys", c.plan.Name, n))
		return
	}
	if !c.mapsClosed {
		c.mapsClosed = true
		c.counters.Add(CounterMapPhaseMillis, time.Since(c.phaseStart).Milliseconds())
		c.phaseStart = time.Now()
		if !c.plan.MapOnly {
			c.progress.PhaseStart(c.plan.Name, "reduce")
		}
	}
	if c.plan.MapOnly || c.reducesDone == len(c.reduces) {
		c.completeLocked()
	}
}

func (c *netCoordinator) completeLocked() {
	if c.ended {
		return
	}
	c.ended = true
	if !c.plan.MapOnly {
		c.counters.Add(CounterReducePhaseMillis, time.Since(c.phaseStart).Milliseconds())
		c.counters.Add(CounterShuffleBytesWritten, c.plan.shuffleIO.BytesWritten())
		c.counters.Add(CounterShuffleBytesRead, c.plan.shuffleIO.BytesRead())
	}
	close(c.doneCh)
}

// sweep is the janitor tick: expire silent leases, invalidate the
// outputs of workers that stopped all contact.
func (c *netCoordinator) sweep() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ended {
		return
	}
	now := time.Now()
	var expired []*netLease
	for _, l := range c.leases {
		if now.After(l.expires) {
			expired = append(expired, l)
		}
	}
	for _, l := range expired {
		c.counters.Add(CounterLeasesExpired, 1)
		c.failLeaseLocked(l, true, fmt.Errorf("lease %s expired (worker %s silent past the %v TTL)", l.id, l.worker, c.ttl))
	}
	for _, w := range c.workers {
		if !w.gone && now.Sub(w.lastSeen) > 3*c.ttl {
			c.markWorkerGoneLocked(w)
		}
	}
}

// dropLeaseLocked removes a lease from the books.
func (c *netCoordinator) dropLeaseLocked(l *netLease) {
	delete(c.leases, l.id)
	t := l.task
	for i, tl := range t.leases {
		if tl == l {
			t.leases = append(t.leases[:i], t.leases[i+1:]...)
			break
		}
	}
}

// failLeaseLocked handles a dead attempt: charged failures burn the
// task's attempt budget (and can fail the job); uncharged ones —
// upstream loss, graceful worker exit — just requeue.
func (c *netCoordinator) failLeaseLocked(l *netLease, charge bool, err error) {
	if _, live := c.leases[l.id]; !live {
		return
	}
	c.dropLeaseLocked(l)
	t := l.task
	if t.state != taskRunning {
		return
	}
	if charge {
		t.failures++
		if t.failures >= c.maxAttempts {
			c.failLocked(fmt.Errorf("mapreduce: job %q: %s phase: %s task %d failed after %d attempt(s): %w",
				c.plan.Name, phaseOf(t), t.phase, t.id, t.failures, err))
			return
		}
	}
	if len(t.leases) == 0 {
		t.state = taskPending
		c.counters.Add(CounterTasksRetried, 1)
	}
}

func phaseOf(t *netTaskState) string {
	if t.phase == "reduce" {
		return "reduce"
	}
	return "map"
}

// markWorkerGoneLocked presumes a worker dead: its live leases are
// requeued uncharged and every done map task it produced is
// re-executed, because its shuffle service (and the run files behind
// it) died with it.
func (c *netCoordinator) markWorkerGoneLocked(w *netWorkerState) {
	w.gone = true
	var lost []*netLease
	for _, l := range c.leases {
		if l.worker == w.id {
			lost = append(lost, l)
		}
	}
	for _, l := range lost {
		c.failLeaseLocked(l, false, nil)
	}
	for _, t := range c.maps {
		if t.phase == "map" && t.state == taskDone && t.doneBy == w.id {
			c.requeueLostMapLocked(t)
		}
	}
}

// requeueLostMapLocked sends a completed map task back to pending
// because its outputs are unreachable.
func (c *netCoordinator) requeueLostMapLocked(t *netTaskState) {
	if c.ended || t.state != taskDone {
		return
	}
	t.lostRequeues++
	if t.lostRequeues > c.maxLost {
		c.failLocked(fmt.Errorf("mapreduce: job %q: map task %d: outputs lost %d times", c.plan.Name, t.id, t.lostRequeues))
		return
	}
	for _, refs := range t.runs {
		for _, ref := range refs {
			delete(c.runIndex, ref.URL)
		}
	}
	t.runs = nil
	t.doneBy = ""
	t.state = taskPending
	c.mapsDone--
	c.counters.Add(CounterTasksRetried, 1)
}

// assignLocked picks the next task for a polling worker: a pending
// task of the active phase, else a speculative duplicate of the
// phase's worst straggler.
func (c *netCoordinator) assignLocked(w *netWorkerState, now time.Time) *netTask {
	if c.ended {
		return nil
	}
	eligible := c.maps
	phase := "map"
	if c.mapsDone == len(c.maps) {
		if c.plan.MapOnly {
			return nil
		}
		eligible, phase = c.reduces, "reduce"
	}
	for _, t := range eligible {
		if t.state == taskPending {
			return c.leaseLocked(t, w, now, false)
		}
	}
	thr := c.specThresholdLocked(phase)
	if thr <= 0 {
		return nil
	}
	var straggler *netTaskState
	var oldest time.Time
	for _, t := range eligible {
		if t.state != taskRunning || len(t.leases) != 1 {
			continue
		}
		l := t.leases[0]
		if l.worker == w.id || now.Sub(l.started) < thr {
			continue
		}
		if straggler == nil || l.started.Before(oldest) {
			straggler, oldest = t, l.started
		}
	}
	if straggler == nil {
		return nil
	}
	c.counters.Add(CounterTasksSpeculated, 1)
	return c.leaseLocked(straggler, w, now, true)
}

// specThresholdLocked is how long a lone attempt must have been
// running before an idle worker duplicates it: at least the configured
// delay, or twice the phase's median completed-task duration if that
// is larger.
func (c *netCoordinator) specThresholdLocked(phase string) time.Duration {
	if c.specDelay <= 0 {
		return 0
	}
	thr := c.specDelay
	if ds := c.durations[phase]; len(ds) > 0 {
		sorted := append([]time.Duration(nil), ds...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		if med := 2 * sorted[len(sorted)/2]; med > thr {
			thr = med
		}
	}
	return thr
}

func (c *netCoordinator) leaseLocked(t *netTaskState, w *netWorkerState, now time.Time, speculative bool) *netTask {
	t.state = taskRunning
	t.execs++
	c.leaseSeq++
	l := &netLease{
		id:          fmt.Sprintf("%s-%d-a%d-l%d", t.phase, t.id, t.execs, c.leaseSeq),
		task:        t,
		worker:      w.id,
		started:     now,
		expires:     now.Add(c.ttl),
		speculative: speculative,
	}
	c.leases[l.id] = l
	t.leases = append(t.leases, l)
	nt := &netTask{Lease: l.id, Phase: t.phase, Task: t.id, Attempt: t.execs}
	if t.phase == "reduce" {
		// Runs in map-task order, each task's runs in seal order — the
		// merge tie-break order all backends share, so partition output
		// is byte-identical to the local runner's.
		for _, mt := range c.maps {
			if mt.runs != nil && t.id < len(mt.runs) {
				nt.Runs = append(nt.Runs, mt.runs[t.id]...)
			}
		}
	} else {
		nt.SplitURL = c.baseURL + "/mr/split/" + strconv.Itoa(t.id)
	}
	return nt
}

// ---- HTTP surface ----

func (c *netCoordinator) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /mr/register", c.handleRegister)
	mux.HandleFunc("POST /mr/poll", c.handlePoll)
	mux.HandleFunc("POST /mr/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /mr/result", c.handleResult)
	mux.HandleFunc("POST /mr/output/{lease}", c.handleOutput)
	mux.HandleFunc("POST /mr/goodbye", c.handleGoodbye)
	mux.HandleFunc("GET /mr/split/{i}", c.handleSplit)
	mux.HandleFunc("GET /mr/side/{key}", c.handleSide)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (c *netCoordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req netRegisterReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	if c.ended {
		c.mu.Unlock()
		writeJSON(w, netRegisterResp{Drain: true})
		return
	}
	c.workerSeq++
	id := fmt.Sprintf("w%d", c.workerSeq)
	c.workers[id] = &netWorkerState{id: id, addr: req.Addr, lastSeen: time.Now()}
	c.counters.Add(CounterNetWorkers, 1)
	cfg := c.cfg
	c.mu.Unlock()
	writeJSON(w, netRegisterResp{Worker: id, Job: cfg})
}

func (c *netCoordinator) handlePoll(w http.ResponseWriter, r *http.Request) {
	var req netPollReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	wk := c.workers[req.Worker]
	if wk == nil {
		ended := c.ended
		c.mu.Unlock()
		if ended {
			writeJSON(w, netPollResp{Status: netStatusDrain})
		} else {
			writeJSON(w, netPollResp{Status: netStatusReregister})
		}
		return
	}
	wk.lastSeen, wk.gone = time.Now(), false
	if c.ended {
		c.mu.Unlock()
		writeJSON(w, netPollResp{Status: netStatusDrain})
		return
	}
	task := c.assignLocked(wk, time.Now())
	c.mu.Unlock()
	if task == nil {
		writeJSON(w, netPollResp{Status: netStatusWait})
		return
	}
	writeJSON(w, netPollResp{Status: netStatusTask, Task: task})
}

func (c *netCoordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req netHeartbeatReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var resp netHeartbeatResp
	now := time.Now()
	c.mu.Lock()
	wk := c.workers[req.Worker]
	if wk != nil {
		wk.lastSeen, wk.gone = now, false
	}
	for _, id := range req.Leases {
		l := c.leases[id]
		if l == nil || l.worker != req.Worker || c.ended {
			resp.Cancel = append(resp.Cancel, id)
			continue
		}
		l.expires = now.Add(c.ttl)
	}
	c.mu.Unlock()
	writeJSON(w, resp)
}

func (c *netCoordinator) handleGoodbye(w http.ResponseWriter, r *http.Request) {
	var req netPollReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	if wk := c.workers[req.Worker]; wk != nil && !c.ended {
		c.markWorkerGoneLocked(wk)
	}
	c.mu.Unlock()
	w.WriteHeader(http.StatusOK)
}

// handleOutput receives a reduce or map-only attempt's output records,
// staged under the coordinator's workdir until the attempt's result
// wins and the records are folded into the sink.
func (c *netCoordinator) handleOutput(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("lease")
	c.mu.Lock()
	l := c.leases[id]
	c.mu.Unlock()
	if l == nil {
		http.Error(w, "unknown lease", http.StatusGone)
		return
	}
	path := c.outPath(l.id)
	f, err := os.Create(path)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	_, err = io.Copy(f, r.Body)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusOK)
}

// outPath builds the staging path from the coordinator's own lease id,
// never from request input.
func (c *netCoordinator) outPath(leaseID string) string {
	return filepath.Join(c.workdir, "out-"+leaseID+".rec")
}

func (c *netCoordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var msg netResultReq
	if err := json.NewDecoder(r.Body).Decode(&msg); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if msg.FetchBytes > 0 {
		// Real wire transfer, counted even for losing or failed
		// attempts.
		c.counters.Add(CounterShuffleFetchBytes, msg.FetchBytes)
	}
	if len(msg.LostRuns) > 0 {
		c.handleLostRuns(&msg)
		writeJSON(w, netResultResp{Accepted: false})
		return
	}

	c.mu.Lock()
	l := c.leases[msg.Lease]
	if l == nil || c.ended {
		// Stale: the lease expired or lost a speculative race; the
		// worker discards the attempt's artifacts.
		c.mu.Unlock()
		writeJSON(w, netResultResp{Accepted: false})
		return
	}
	t := l.task
	if msg.Err != "" {
		c.failLeaseLocked(l, true, errors.New(msg.Err))
		c.mu.Unlock()
		writeJSON(w, netResultResp{Accepted: false})
		return
	}

	// First completion wins; racing leases are dropped here so their
	// next heartbeat cancels them and their results are rejected above.
	for len(t.leases) > 0 {
		c.dropLeaseLocked(t.leases[0])
	}
	t.state = taskDone
	t.doneBy = msg.Worker
	c.durations[phaseOf(t)] = append(c.durations[phaseOf(t)], time.Since(l.started))
	first := !t.everDone
	t.everDone = true
	c.counters.MergeSnapshot(msg.Counters)
	if c.plan.shuffleIO != nil {
		c.plan.shuffleIO.AddWritten(msg.ShuffleWritten)
		c.plan.shuffleIO.AddRead(msg.ShuffleRead)
	}

	if t.phase == "map" {
		if len(msg.Runs) != c.plan.NumReducers {
			c.failLocked(fmt.Errorf("mapreduce: job %q: map task %d reported %d run partitions, want %d",
				c.plan.Name, t.id, len(msg.Runs), c.plan.NumReducers))
			c.mu.Unlock()
			writeJSON(w, netResultResp{Accepted: false})
			return
		}
		t.runs = msg.Runs
		for _, refs := range t.runs {
			for _, ref := range refs {
				c.runIndex[ref.URL] = t
			}
		}
		c.mapsDone++
		if first {
			c.progress.TaskDone(c.plan.Name, "map")
		}
		c.advanceLocked()
		c.mu.Unlock()
		writeJSON(w, netResultResp{Accepted: true})
		return
	}

	// Reduce and map-only: fold the uploaded output outside the lock.
	outPath := c.outPath(l.id)
	c.mu.Unlock()
	p := t.id
	if t.phase == "map-only" {
		p = t.id % c.plan.NumReducers
	}
	foldErr := copyRecords(outPath, c.sink, p)
	os.Remove(outPath)
	if foldErr != nil {
		c.fail(fmt.Errorf("mapreduce: job %q: %s task %d: collect output: %w", c.plan.Name, t.phase, t.id, foldErr))
		writeJSON(w, netResultResp{Accepted: false})
		return
	}
	c.mu.Lock()
	if t.phase == "reduce" {
		c.reducesDone++
		if first {
			c.progress.TaskDone(c.plan.Name, "reduce")
		}
	} else {
		c.mapsDone++
		if first {
			c.progress.TaskDone(c.plan.Name, "map")
		}
	}
	c.advanceLocked()
	c.mu.Unlock()
	writeJSON(w, netResultResp{Accepted: true})
}

// handleLostRuns processes a reduce attempt that could not fetch some
// of its inputs: the producing worker is presumed dead (all its
// outputs invalidated) and the reduce goes back to pending without
// being charged a failure.
func (c *netCoordinator) handleLostRuns(msg *netResultReq) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ended {
		return
	}
	for _, u := range msg.LostRuns {
		mt := c.runIndex[u]
		if mt == nil || mt.state != taskDone {
			continue
		}
		if wk := c.workers[mt.doneBy]; wk != nil && !wk.gone {
			c.markWorkerGoneLocked(wk)
		} else {
			c.requeueLostMapLocked(mt)
		}
	}
	if l := c.leases[msg.Lease]; l != nil {
		c.failLeaseLocked(l, false, nil)
	}
}

func (c *netCoordinator) handleSplit(w http.ResponseWriter, r *http.Request) {
	i, err := strconv.Atoi(r.PathValue("i"))
	if err != nil || i < 0 || i >= len(c.splitPaths) {
		http.NotFound(w, r)
		return
	}
	http.ServeFile(w, r, c.splitPaths[i])
}

func (c *netCoordinator) handleSide(w http.ResponseWriter, r *http.Request) {
	key, err := url.PathUnescape(r.PathValue("key"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	path, ok := c.sideFiles[key]
	if !ok {
		http.NotFound(w, r)
		return
	}
	http.ServeFile(w, r, path)
}
