package mapreduce

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
)

// Runner is an execution backend: it takes a compiled Plan and runs
// its tasks to completion, materializing the job output through the
// plan's sink. The engine ships three: LocalRunner executes tasks as
// goroutines in this process (the default), ProcessRunner executes
// each task in a separate worker OS process, and NetRunner drives
// workers over HTTP with leases, retries, and a shuffle-transfer
// service. Third-party backends plug in through RegisterRunner.
//
// A Runner must fold every task's counter updates into counters, fire
// PhaseStart/TaskDone events on progress as phases and tasks complete,
// and account shuffle transfer to the plan's ShuffleIO. JobStart and
// JobDone are fired by Run, outside the runner.
type Runner interface {
	Run(ctx context.Context, plan *Plan, counters *Counters, progress Progress) (Dataset, error)
}

// RunnerEnv is the environment variable consulted by DefaultRunner:
// set NGRAMS_RUNNER to a runner address — "process", or say
// "net://127.0.0.1:0" — to execute every job without an explicit
// Job.Runner under that backend ("local" for the in-process default).
// Tests and CI use it to sweep the whole suite across backends without
// touching call sites.
const RunnerEnv = "NGRAMS_RUNNER"

// RunnerConfig is what a runner factory receives: the full address the
// backend was requested under, plus the backend knobs every scheme
// shares. Scheme-specific parameters ride in the address itself (for
// example net://host:port?spawn=3) and are the factory's to parse.
type RunnerConfig struct {
	// Address is the complete runner address, e.g. "process" or
	// "net://127.0.0.1:7001?spawn=3".
	Address string
	// Rest is the part after "scheme://", empty for bare scheme names.
	Rest string
	// Workers bounds worker concurrency (0 = backend default).
	Workers int
	// MaxAttempts is the per-task failure budget (0 = backend default).
	MaxAttempts int
}

// RunnerFactory builds a backend from a parsed address. Factories must
// reject addresses they cannot honor loudly rather than ignore parts
// of them.
type RunnerFactory func(cfg RunnerConfig) (Runner, error)

var (
	runnerMu        sync.RWMutex
	runnerFactories = make(map[string]RunnerFactory)
)

// RegisterRunner registers an execution-backend scheme. The scheme is
// the address part before "://" (or the whole address for bare names
// like "local"); it is matched case-insensitively and must not contain
// ':' or '/'. The shipped backends self-register as "local",
// "process", and "net"; third-party backends register in an init
// function and are then addressable everywhere a runner name is
// accepted — Options.Execution, NGRAMS_RUNNER, and the -runner flags.
// Registering the same scheme twice panics: schemes are process-global
// identities.
func RegisterRunner(scheme string, factory RunnerFactory) {
	scheme = strings.ToLower(scheme)
	if scheme == "" || strings.ContainsAny(scheme, ":/") {
		panic(fmt.Sprintf("mapreduce: invalid runner scheme %q", scheme))
	}
	if factory == nil {
		panic(fmt.Sprintf("mapreduce: runner scheme %q registered with nil factory", scheme))
	}
	runnerMu.Lock()
	defer runnerMu.Unlock()
	if _, dup := runnerFactories[scheme]; dup {
		panic(fmt.Sprintf("mapreduce: runner scheme %q registered twice", scheme))
	}
	runnerFactories[scheme] = factory
}

// splitRunnerAddress separates a runner address into its scheme and
// the rest: "net://host:port" → ("net", "host:port"), "process" →
// ("process", ""), "" → ("local", "").
func splitRunnerAddress(address string) (scheme, rest string) {
	if address == "" {
		return "local", ""
	}
	if i := strings.Index(address, "://"); i >= 0 {
		return strings.ToLower(address[:i]), address[i+3:]
	}
	return strings.ToLower(address), ""
}

// NewRunner constructs the execution backend for a runner address:
// "local" (or "") for the in-process LocalRunner, "process" for a
// ProcessRunner, "net://host:port[?spawn=N]" for a NetRunner
// coordinating workers over HTTP, or any scheme a third party
// registered — with the given worker bound and per-task attempt limit
// (both zero-defaulted). Unknown schemes are an error, never a silent
// fallback.
func NewRunner(address string, workers, maxAttempts int) (Runner, error) {
	scheme, rest := splitRunnerAddress(address)
	runnerMu.RLock()
	factory, ok := runnerFactories[scheme]
	runnerMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("mapreduce: unknown runner %q (registered schemes: %s)",
			address, strings.Join(registeredRunners(), ", "))
	}
	return factory(RunnerConfig{Address: address, Rest: rest, Workers: workers, MaxAttempts: maxAttempts})
}

// registeredRunners returns the sorted scheme names, for error
// messages.
func registeredRunners() []string {
	runnerMu.RLock()
	defer runnerMu.RUnlock()
	schemes := make([]string, 0, len(runnerFactories))
	for scheme := range runnerFactories {
		schemes = append(schemes, scheme)
	}
	sort.Strings(schemes)
	return schemes
}

// DefaultRunner returns the backend for jobs with no explicit Runner:
// the one addressed by NGRAMS_RUNNER when set, else LocalRunner. An
// unrecognized NGRAMS_RUNNER value is an error — a typo must not
// silently drop process isolation (or let a backend-specific CI tier
// pass vacuously on the local runner).
func DefaultRunner() (Runner, error) {
	address := os.Getenv(RunnerEnv)
	if address == "" {
		return LocalRunner{}, nil
	}
	r, err := NewRunner(address, 0, 0)
	if err != nil {
		return nil, fmt.Errorf("%w (from %s)", err, RunnerEnv)
	}
	return r, nil
}
