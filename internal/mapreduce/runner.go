package mapreduce

import (
	"context"
	"fmt"
	"os"
	"strings"
)

// Runner is an execution backend: it takes a compiled Plan and runs
// its tasks to completion, materializing the job output through the
// plan's sink. The engine ships two: LocalRunner executes tasks as
// goroutines in this process (the default), ProcessRunner executes
// each task in a separate worker OS process. Future backends (remote
// workers, sharded clusters) implement the same seam.
//
// A Runner must fold every task's counter updates into counters, fire
// PhaseStart/TaskDone events on progress as phases and tasks complete,
// and account shuffle transfer to the plan's ShuffleIO. JobStart and
// JobDone are fired by Run, outside the runner.
type Runner interface {
	Run(ctx context.Context, plan *Plan, counters *Counters, progress Progress) (Dataset, error)
}

// RunnerEnv is the environment variable consulted by DefaultRunner:
// set NGRAMS_RUNNER=process to execute every job without an explicit
// Job.Runner under the process backend (NGRAMS_RUNNER=local for the
// in-process default). Tests and CI use it to sweep the whole suite
// across backends without touching call sites.
const RunnerEnv = "NGRAMS_RUNNER"

// NewRunner constructs the named execution backend: "local" (or "")
// for the in-process LocalRunner, "process" for a ProcessRunner with
// the given worker-process bound and per-task attempt limit (both
// zero-defaulted).
func NewRunner(name string, workers, maxAttempts int) (Runner, error) {
	switch strings.ToLower(name) {
	case "", "local":
		return LocalRunner{}, nil
	case "process":
		return &ProcessRunner{Workers: workers, MaxAttempts: maxAttempts}, nil
	default:
		return nil, fmt.Errorf("mapreduce: unknown runner %q (want local or process)", name)
	}
}

// DefaultRunner returns the backend for jobs with no explicit Runner:
// the one named by NGRAMS_RUNNER when set, else LocalRunner. An
// unrecognized NGRAMS_RUNNER value is an error — a typo must not
// silently drop process isolation (or let a process-backend CI tier
// pass vacuously on the local runner).
func DefaultRunner() (Runner, error) {
	name := os.Getenv(RunnerEnv)
	if name == "" {
		return LocalRunner{}, nil
	}
	r, err := NewRunner(name, 0, 0)
	if err != nil {
		return nil, fmt.Errorf("%w (from %s)", err, RunnerEnv)
	}
	return r, nil
}
