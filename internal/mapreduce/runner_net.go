package mapreduce

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"sync"
	"time"
)

// NetRunner executes a plan through an HTTP coordinator: workers
// register over the network, poll for leased tasks, heartbeat while
// executing, and report results; reduce workers pull the map outputs
// they merge from the producing workers' shuffle-transfer services as
// verified ranged transfers. Fault tolerance is built in — leases that
// stop heartbeating expire and reassign, failed attempts retry up to
// MaxAttempts on fresh scratch, stragglers are speculatively
// duplicated (first completion wins), and map outputs that die with
// their worker are re-executed.
//
// By default the runner is self-contained on one machine: it spawns
// Workers one-job worker processes (re-executions of the current
// binary, exactly like ProcessRunner) against its own coordinator.
// With NoSpawn it relies entirely on externally started workers
// (`ngrams -worker-connect host:port`, or RunNetWorker), which may
// join from other machines; nothing runs until at least one connects.
//
// Like ProcessRunner, a plan without a Spec falls back to in-process
// execution via LocalRunner.
type NetRunner struct {
	// Addr is the coordinator listen address, host:port; an empty host
	// binds all interfaces, port 0 picks an ephemeral port. Empty
	// defaults to "127.0.0.1:0". A fixed port serves one job at a time.
	Addr string
	// Workers is how many one-job worker processes to spawn (default:
	// max(2, GOMAXPROCS); ignored under NoSpawn).
	Workers int
	// NoSpawn disables worker spawning: only externally connected
	// workers execute tasks.
	NoSpawn bool
	// MaxAttempts is the per-task failure budget before the job fails
	// (default: 2, i.e. one retry). Lease expiries count against it.
	MaxAttempts int
	// LeaseTTL is how long a task lease lives without a heartbeat
	// before it is reassigned (default: 10s). Workers heartbeat at a
	// third of it.
	LeaseTTL time.Duration
	// SpeculativeDelay is the minimum age of a lone running attempt
	// before an otherwise-idle worker speculatively duplicates it; the
	// effective threshold is at least twice the phase's median task
	// duration. Negative disables speculation (default: 10s).
	SpeculativeDelay time.Duration
}

func (r *NetRunner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return max(2, runtime.GOMAXPROCS(0))
}

func (r *NetRunner) attempts() int {
	if r.MaxAttempts > 0 {
		return r.MaxAttempts
	}
	return 2
}

func (r *NetRunner) leaseTTL() time.Duration {
	if r.LeaseTTL > 0 {
		return r.LeaseTTL
	}
	return 10 * time.Second
}

func (r *NetRunner) specDelay() time.Duration {
	switch {
	case r.SpeculativeDelay > 0:
		return r.SpeculativeDelay
	case r.SpeculativeDelay < 0:
		return 0 // disabled
	default:
		return 10 * time.Second
	}
}

// String renders the resolved backend for -stats attribution.
func (r *NetRunner) String() string {
	addr := r.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	if r.NoSpawn {
		return fmt.Sprintf("net://%s (external workers, attempts=%d)", addr, r.attempts())
	}
	return fmt.Sprintf("net://%s (spawn=%d, attempts=%d)", addr, r.workers(), r.attempts())
}

// Run implements Runner.
func (r *NetRunner) Run(ctx context.Context, plan *Plan, counters *Counters, progress Progress) (Dataset, error) {
	if plan.Spec == nil {
		// No registered program a remote worker could rebuild; run where
		// the closures live.
		return LocalRunner{}.Run(ctx, plan, counters, progress)
	}
	if _, err := buildProgram(plan.Spec); err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", plan.Name, err)
	}
	workdir, err := os.MkdirTemp(plan.TempDir, "ngrams-net-"+sanitizeJobName(plan.Name)+"-*")
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: workdir: %w", plan.Name, err)
	}
	// Splits, side data, staged outputs, and — via netWorkerScratchEnv —
	// every spawned worker's scratch live under the workdir, so one
	// removal cleans up even after SIGKILLed workers.
	defer os.RemoveAll(workdir)

	splitPaths, err := materializeSplits(ctx, plan.Splits, workdir)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: materialize splits: %w", plan.Name, err)
	}
	sideFiles, err := materializeSideData(plan.SideData, workdir)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: side data: %w", plan.Name, err)
	}
	sink, err := plan.Sink(plan.NumReducers)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: sink: %w", plan.Name, err)
	}

	addr := r.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		abortSink(sink)
		return nil, fmt.Errorf("mapreduce: job %q: coordinator listen %s: %w", plan.Name, addr, err)
	}
	baseURL := "http://" + advertiseAddr(ln.Addr())

	c := newNetCoordinator(plan, sink, counters, progress, workdir, baseURL,
		splitPaths, sideFiles, r.leaseTTL(), r.specDelay(), r.attempts())
	srv := &http.Server{Handler: c.handler()}
	go srv.Serve(ln)
	defer srv.Close()

	progress.PhaseStart(plan.Name, "map")
	c.start()

	// Janitor: expire silent leases, detect dead workers.
	janitorDone := make(chan struct{})
	go func() {
		defer close(janitorDone)
		tick := time.NewTicker(max(r.leaseTTL()/4, 5*time.Millisecond))
		defer tick.Stop()
		for {
			select {
			case <-c.doneCh:
				return
			case <-tick.C:
				c.sweep()
			}
		}
	}()

	var pool *netWorkerPool
	if !r.NoSpawn {
		pool = newNetWorkerPool(c, counters, advertiseAddr(ln.Addr()), workdir, r.workers())
		pool.start()
	}

	select {
	case <-c.doneCh:
	case <-ctx.Done():
		c.fail(ctx.Err())
	}
	<-janitorDone
	if pool != nil {
		pool.stop(3 * time.Second)
	}
	srv.Close()

	if err := c.err(); err != nil {
		abortSink(sink)
		return nil, err
	}
	out, err := sink.Finish()
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: finish sink: %w", plan.Name, err)
	}
	return out, nil
}

// advertiseAddr turns a listener address into one workers can dial:
// an unspecified host becomes the loopback address.
func advertiseAddr(a net.Addr) string {
	if tcp, ok := a.(*net.TCPAddr); ok && (tcp.IP == nil || tcp.IP.IsUnspecified()) {
		return fmt.Sprintf("127.0.0.1:%d", tcp.Port)
	}
	return a.String()
}

// netWorkerPool spawns and supervises the runner's one-job worker
// processes: a worker that dies while the job is still running is
// replaced, up to a respawn budget, so a crash drill with few workers
// cannot strand the job.
type netWorkerPool struct {
	c        *netCoordinator
	counters *Counters
	addr     string
	workdir  string
	target   int

	mu      sync.Mutex
	cmds    []*exec.Cmd
	spawned int
	budget  int
	stopped bool
	wg      sync.WaitGroup
}

func newNetWorkerPool(c *netCoordinator, counters *Counters, addr, workdir string, target int) *netWorkerPool {
	return &netWorkerPool{
		c: c, counters: counters, addr: addr, workdir: workdir,
		target: target, budget: 2*target + 4,
	}
}

func (p *netWorkerPool) start() {
	for i := 0; i < p.target; i++ {
		p.spawn()
	}
}

func (p *netWorkerPool) jobRunning() bool {
	select {
	case <-p.c.doneCh:
		return false
	default:
		return true
	}
}

func (p *netWorkerPool) spawn() {
	p.mu.Lock()
	if p.stopped || p.spawned >= p.budget {
		p.mu.Unlock()
		return
	}
	exe, err := os.Executable()
	if err != nil {
		p.mu.Unlock()
		p.c.fail(fmt.Errorf("mapreduce: job %q: locate executable: %w", p.c.plan.Name, err))
		return
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		NetWorkerEnv+"="+p.addr,
		netWorkerOneshotEnv+"=1",
		netWorkerScratchEnv+"="+p.workdir,
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		p.mu.Unlock()
		p.c.fail(fmt.Errorf("mapreduce: job %q: spawn net worker: %w", p.c.plan.Name, err))
		return
	}
	p.spawned++
	p.counters.Add(CounterWorkerProcs, 1)
	p.cmds = append(p.cmds, cmd)
	p.wg.Add(1)
	p.mu.Unlock()
	go func() {
		defer p.wg.Done()
		cmd.Wait()
		p.mu.Lock()
		stopped := p.stopped
		p.mu.Unlock()
		if !stopped && p.jobRunning() {
			p.spawn() // replace a worker that died mid-job
		}
	}()
}

// stop gives workers a grace period to observe the drain and exit,
// then kills stragglers.
func (p *netWorkerPool) stop(grace time.Duration) {
	p.mu.Lock()
	p.stopped = true
	cmds := append([]*exec.Cmd(nil), p.cmds...)
	p.mu.Unlock()

	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(grace):
		for _, cmd := range cmds {
			if cmd.Process != nil {
				cmd.Process.Kill()
			}
		}
		<-done
	}
}

func init() {
	RegisterRunner("net", func(cfg RunnerConfig) (Runner, error) {
		if cfg.Rest == "" {
			return nil, fmt.Errorf("mapreduce: runner %q: want net://host:port (port 0 for ephemeral)", cfg.Address)
		}
		u, err := url.Parse("net://" + cfg.Rest)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: runner %q: %w", cfg.Address, err)
		}
		if u.Host == "" || u.Path != "" && u.Path != "/" {
			return nil, fmt.Errorf("mapreduce: runner %q: want net://host:port", cfg.Address)
		}
		r := &NetRunner{Addr: u.Host, Workers: cfg.Workers, MaxAttempts: cfg.MaxAttempts}
		for key, vals := range u.Query() {
			switch key {
			case "spawn":
				n, err := strconv.Atoi(vals[len(vals)-1])
				if err != nil || n < 0 {
					return nil, fmt.Errorf("mapreduce: runner %q: bad spawn count %q", cfg.Address, vals[len(vals)-1])
				}
				if n == 0 {
					r.NoSpawn = true
				} else {
					r.Workers = n
				}
			case "ttl":
				d, err := time.ParseDuration(vals[len(vals)-1])
				if err != nil || d <= 0 {
					return nil, fmt.Errorf("mapreduce: runner %q: bad lease ttl %q", cfg.Address, vals[len(vals)-1])
				}
				r.LeaseTTL = d
			case "spec":
				// Speculative-execution delay; "off" disables speculation
				// (fault drills use it to make lease expiry the only
				// recovery path for a stalled task).
				if v := vals[len(vals)-1]; v == "off" {
					r.SpeculativeDelay = -1
				} else {
					d, err := time.ParseDuration(v)
					if err != nil || d <= 0 {
						return nil, fmt.Errorf("mapreduce: runner %q: bad speculative delay %q (duration or \"off\")", cfg.Address, v)
					}
					r.SpeculativeDelay = d
				}
			default:
				return nil, fmt.Errorf("mapreduce: runner %q: unknown parameter %q (known: spawn, ttl, spec)", cfg.Address, key)
			}
		}
		return r, nil
	})
}
