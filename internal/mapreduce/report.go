package mapreduce

import (
	"fmt"
	"strings"
	"time"
)

// JobSummary is a compact per-job account of a run, in the style of the
// Hadoop job history a practitioner would read after a workflow.
type JobSummary struct {
	Name          string
	MapTasks      int
	ReduceTasks   int
	InputRecords  int64
	MapOutRecords int64
	MapOutBytes   int64
	// ShuffleBytesWritten and ShuffleBytesRead are the measured shuffle
	// transfer: encoded run-format bytes map tasks produced and reduce
	// merges consumed. ShuffleLogicalBytes is the raw key+value byte
	// count entering the shuffle — the pre-encoding estimate older
	// reports called "shuffle bytes"; the written/logical ratio is the
	// run format's compression factor.
	ShuffleBytesWritten int64
	ShuffleBytesRead    int64
	ShuffleLogicalBytes int64
	OutputRecords       int64
	Spilled             int64
	// SealedRuns is the number of sorted runs map tasks handed off to
	// the reduce-side merge; MergeFanIn is the summed width of all
	// reduce-side merges; ShuffleTime is the cumulative time tasks spent
	// sealing runs and opening merges.
	SealedRuns  int64
	MergeFanIn  int64
	ShuffleTime time.Duration
	MapPhase    time.Duration
	ReducePhase time.Duration
	Wallclock   time.Duration
	// WorkerProcs and TasksRetried describe process-runner execution:
	// worker OS processes spawned and task attempts retried after a
	// worker failure. Both are zero under the in-process LocalRunner.
	WorkerProcs  int64
	TasksRetried int64
}

// Summary extracts the per-job account from a Result.
func Summary(name string, r *Result) JobSummary {
	c := r.Counters
	return JobSummary{
		Name:                name,
		MapTasks:            r.MapTasks,
		ReduceTasks:         r.ReduceTasks,
		InputRecords:        c.Get(CounterMapInputRecords),
		MapOutRecords:       c.Get(CounterMapOutputRecords),
		MapOutBytes:         c.Get(CounterMapOutputBytes),
		ShuffleBytesWritten: c.Get(CounterShuffleBytesWritten),
		ShuffleBytesRead:    c.Get(CounterShuffleBytesRead),
		ShuffleLogicalBytes: c.Get(CounterReduceShuffleBytes),
		OutputRecords:       c.Get(CounterReduceOutputRecs),
		Spilled:             c.Get(CounterSpilledRecords),
		SealedRuns:          c.Get(CounterShuffleRuns),
		MergeFanIn:          c.Get(CounterMergeFanIn),
		ShuffleTime:         time.Duration(c.Get(CounterShuffleMicros)) * time.Microsecond,
		MapPhase:            time.Duration(c.Get(CounterMapPhaseMillis)) * time.Millisecond,
		ReducePhase:         time.Duration(c.Get(CounterReducePhaseMillis)) * time.Millisecond,
		Wallclock:           r.Wallclock,
		WorkerProcs:         c.Get(CounterWorkerProcs),
		TasksRetried:        c.Get(CounterTasksRetried),
	}
}

// Report renders a table of all jobs run through the driver, one line
// per job plus an aggregate line. The shuffle-wB column is the
// measured encoded transfer (SHUFFLE_BYTES_WRITTEN), not the logical
// key+value estimate older reports showed.
func (d *Driver) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s %5s %5s %12s %12s %12s %12s %6s %10s\n",
		"job", "maps", "reds", "in-recs", "map-out", "shuffle-wB", "out-recs", "runs", "wallclock")
	var totalWall time.Duration
	var totIn, totOut, totMapOut, totShuffle, totRuns int64
	for i, r := range d.JobResults {
		s := Summary(fmt.Sprintf("#%d", i+1), r)
		fmt.Fprintf(&sb, "%-28s %5d %5d %12d %12d %12d %12d %6d %10s\n",
			s.Name, s.MapTasks, s.ReduceTasks, s.InputRecords, s.MapOutRecords,
			s.ShuffleBytesWritten, s.OutputRecords, s.SealedRuns, s.Wallclock.Round(time.Millisecond))
		totalWall += s.Wallclock
		totIn += s.InputRecords
		totOut += s.OutputRecords
		totMapOut += s.MapOutRecords
		totShuffle += s.ShuffleBytesWritten
		totRuns += s.SealedRuns
	}
	fmt.Fprintf(&sb, "%-28s %5s %5s %12d %12d %12d %12d %6d %10s\n",
		"TOTAL", "", "", totIn, totMapOut, totShuffle, totOut, totRuns,
		totalWall.Round(time.Millisecond))
	return sb.String()
}
