package mapreduce

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"ngramstats/internal/encoding"
)

// wordCountInput builds an input of (docID, text) records.
func wordCountInput(docs []string, splits int) Input {
	recs := make([]KV, len(docs))
	for i, d := range docs {
		recs[i] = KV{Key: []byte(fmt.Sprint(i)), Value: []byte(d)}
	}
	return SliceInput(recs, splits)
}

type wcMapper struct{}

func (wcMapper) Map(key, value []byte, emit Emit) error {
	for _, w := range strings.Fields(string(value)) {
		if err := emit([]byte(w), encoding.AppendUvarint(nil, 1)); err != nil {
			return err
		}
	}
	return nil
}

type sumReducer struct{}

func (sumReducer) Reduce(key []byte, values *Values, emit Emit) error {
	var total uint64
	for values.Next() {
		v, _ := encoding.Uvarint(values.Value())
		total += v
	}
	return emit(key, encoding.AppendUvarint(nil, total))
}

func collectCounts(t *testing.T, d Dataset) map[string]uint64 {
	t.Helper()
	out := make(map[string]uint64)
	recs, err := CollectDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		v, _ := encoding.Uvarint(r.Value)
		out[string(r.Key)] += v
	}
	return out
}

func TestWordCountEndToEnd(t *testing.T) {
	docs := []string{
		"a x b x x",
		"b a x b x",
		"x b a x b",
	}
	res, err := Run(context.Background(), &Job{
		Name:        "wordcount",
		Input:       wordCountInput(docs, 3),
		NewMapper:   func() Mapper { return wcMapper{} },
		NewReducer:  func() Reducer { return sumReducer{} },
		NumReducers: 4,
		TempDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	got := collectCounts(t, res.Output)
	want := map[string]uint64{"a": 3, "b": 5, "x": 7}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count[%s] = %d, want %d", k, got[k], v)
		}
	}
	// Counter sanity: 15 emitted words.
	if n := res.Counters.Get(CounterMapOutputRecords); n != 15 {
		t.Fatalf("MAP_OUTPUT_RECORDS = %d, want 15", n)
	}
	if n := res.Counters.Get(CounterMapInputRecords); n != 3 {
		t.Fatalf("MAP_INPUT_RECORDS = %d, want 3", n)
	}
	if n := res.Counters.Get(CounterReduceOutputRecs); n != 3 {
		t.Fatalf("REDUCE_OUTPUT_RECORDS = %d, want 3", n)
	}
}

func TestCombinerReducesShuffleNotMapOutput(t *testing.T) {
	docs := []string{strings.Repeat("w ", 100), strings.Repeat("w ", 50)}
	run := func(combine bool) *Result {
		job := &Job{
			Name:        "wc-combine",
			Input:       wordCountInput(docs, 2),
			NewMapper:   func() Mapper { return wcMapper{} },
			NewReducer:  func() Reducer { return sumReducer{} },
			NumReducers: 2,
			TempDir:     t.TempDir(),
		}
		if combine {
			job.NewCombiner = func() Reducer { return sumReducer{} }
		}
		res, err := Run(context.Background(), job)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(false)
	combined := run(true)

	// Results must agree.
	if got, want := collectCounts(t, combined.Output)["w"], collectCounts(t, plain.Output)["w"]; got != want || got != 150 {
		t.Fatalf("combined=%d plain=%d, want 150", got, want)
	}
	// MAP_OUTPUT_* counters are pre-combine and must be identical (the
	// paper's "bytes transferred" measure is MAP_OUTPUT_BYTES).
	if a, b := plain.Counters.Get(CounterMapOutputRecords), combined.Counters.Get(CounterMapOutputRecords); a != b {
		t.Fatalf("MAP_OUTPUT_RECORDS differ: %d vs %d", a, b)
	}
	// The shuffle volume must shrink with a combiner.
	a := plain.Counters.Get(CounterReduceShuffleBytes)
	b := combined.Counters.Get(CounterReduceShuffleBytes)
	if b >= a {
		t.Fatalf("combiner did not reduce shuffle bytes: %d vs %d", b, a)
	}
	// With one distinct word per map task, the combiner should emit one
	// record per task per partition it occurs in: 2 tasks → 2 records.
	if n := combined.Counters.Get(CounterCombineOutputRecs); n != 2 {
		t.Fatalf("COMBINE_OUTPUT_RECORDS = %d, want 2", n)
	}
}

func TestCustomComparatorControlsReduceOrder(t *testing.T) {
	// Sort keys in descending byte order and verify the reducer sees
	// groups in that order.
	var mu sync.Mutex
	var seen []string
	_, err := Run(context.Background(), &Job{
		Name:  "desc",
		Input: SliceInput([]KV{{[]byte("doc"), []byte("b a c")}}, 1),
		NewMapper: func() Mapper {
			return wcMapper{}
		},
		NewReducer: func() Reducer {
			return ReducerFunc(func(key []byte, values *Values, emit Emit) error {
				mu.Lock()
				seen = append(seen, string(key))
				mu.Unlock()
				return nil
			})
		},
		Compare: func(a, b []byte) int { return bytes.Compare(b, a) },
		// Single partition so order is total.
		NumReducers: 1,
		TempDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"c", "b", "a"}
	if fmt.Sprint(seen) != fmt.Sprint(want) {
		t.Fatalf("reduce order = %v, want %v", seen, want)
	}
}

func TestCustomPartitioner(t *testing.T) {
	// Partition by first byte of key; verify co-location by checking
	// every partition holds at most one distinct first byte... rather:
	// keys sharing a first byte are in the same partition.
	res, err := Run(context.Background(), &Job{
		Name:  "partition",
		Input: SliceInput([]KV{{[]byte("d"), []byte("aa ab ba bb ca")}}, 1),
		NewMapper: func() Mapper {
			return wcMapper{}
		},
		NewReducer:  func() Reducer { return sumReducer{} },
		Partition:   func(key []byte, r int) int { return int(key[0]) % r },
		NumReducers: 3,
		TempDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	firstByteToPart := make(map[byte]int)
	for p := 0; p < res.Output.NumPartitions(); p++ {
		p := p
		err := res.Output.Scan(p, func(k, v []byte) error {
			if prev, ok := firstByteToPart[k[0]]; ok && prev != p {
				t.Fatalf("first byte %c split across partitions %d and %d", k[0], prev, p)
			}
			firstByteToPart[k[0]] = p
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(firstByteToPart) != 3 {
		t.Fatalf("expected keys with 3 distinct first bytes, got %v", firstByteToPart)
	}
}

func TestGroupComparatorCoarserThanSort(t *testing.T) {
	// Sort by whole key but group by first byte: reducer should see one
	// group per first byte with values ordered by full key.
	var mu sync.Mutex
	groups := make(map[string][]string)
	_, err := Run(context.Background(), &Job{
		Name:  "grouping",
		Input: SliceInput([]KV{{[]byte("d"), []byte("b2 a2 a1 b1")}}, 1),
		NewMapper: func() Mapper {
			return MapperFunc(func(key, value []byte, emit Emit) error {
				for _, w := range strings.Fields(string(value)) {
					if err := emit([]byte(w), []byte(w)); err != nil {
						return err
					}
				}
				return nil
			})
		},
		NewReducer: func() Reducer {
			return ReducerFunc(func(key []byte, values *Values, emit Emit) error {
				var vs []string
				for values.Next() {
					vs = append(vs, string(values.Value()))
				}
				mu.Lock()
				groups[string(key[:1])] = vs
				mu.Unlock()
				return nil
			})
		},
		GroupCompare: func(a, b []byte) int { return bytes.Compare(a[:1], b[:1]) },
		NumReducers:  1,
		TempDir:      t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(groups["a"]) != fmt.Sprint([]string{"a1", "a2"}) {
		t.Fatalf("group a = %v", groups["a"])
	}
	if fmt.Sprint(groups["b"]) != fmt.Sprint([]string{"b1", "b2"}) {
		t.Fatalf("group b = %v", groups["b"])
	}
}

func TestMapOnlyJob(t *testing.T) {
	res, err := Run(context.Background(), &Job{
		Name:  "maponly",
		Input: SliceInput([]KV{{[]byte("k1"), []byte("v1")}, {[]byte("k2"), []byte("v2")}}, 2),
		NewMapper: func() Mapper {
			return MapperFunc(func(key, value []byte, emit Emit) error {
				return emit(append([]byte("out-"), key...), value)
			})
		},
		NumReducers: 2,
		TempDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := CollectDataset(res.Output)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if res.ReduceTasks != 0 {
		t.Fatalf("map-only job reports %d reduce tasks", res.ReduceTasks)
	}
}

type setupCleanupReducer struct {
	setup   bool
	cleaned *atomic.Int32
}

func (r *setupCleanupReducer) Setup(tc *TaskContext) error {
	if tc.Phase != "reduce" || tc.Partition < 0 {
		return fmt.Errorf("bad task context: %+v", tc)
	}
	if string(tc.SideData["flag"]) != "on" {
		return errors.New("side data missing")
	}
	r.setup = true
	return nil
}

func (r *setupCleanupReducer) Reduce(key []byte, values *Values, emit Emit) error {
	if !r.setup {
		return errors.New("Reduce before Setup")
	}
	for values.Next() {
	}
	return nil
}

func (r *setupCleanupReducer) Cleanup(emit Emit) error {
	r.cleaned.Add(1)
	return emit([]byte("flushed"), nil)
}

func TestSetupCleanupAndSideData(t *testing.T) {
	var cleaned atomic.Int32
	res, err := Run(context.Background(), &Job{
		Name:        "lifecycle",
		Input:       SliceInput([]KV{{[]byte("d"), []byte("a b c")}}, 1),
		NewMapper:   func() Mapper { return wcMapper{} },
		NewReducer:  func() Reducer { return &setupCleanupReducer{cleaned: &cleaned} },
		NumReducers: 3,
		SideData:    map[string][]byte{"flag": []byte("on")},
		TempDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if cleaned.Load() != 3 {
		t.Fatalf("cleanup ran %d times, want 3 (one per reduce task)", cleaned.Load())
	}
	// Every reduce task emitted one "flushed" record in cleanup.
	recs, err := CollectDataset(res.Output)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, r := range recs {
		if string(r.Key) == "flushed" {
			n++
		}
	}
	if n != 3 {
		t.Fatalf("flushed records = %d, want 3", n)
	}
}

func TestMapperErrorPropagates(t *testing.T) {
	wantErr := errors.New("boom")
	_, err := Run(context.Background(), &Job{
		Name:  "maperr",
		Input: SliceInput([]KV{{[]byte("k"), []byte("v")}}, 1),
		NewMapper: func() Mapper {
			return MapperFunc(func(key, value []byte, emit Emit) error { return wantErr })
		},
		NewReducer: func() Reducer { return sumReducer{} },
		TempDir:    t.TempDir(),
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want wrapped %v", err, wantErr)
	}
}

func TestReducerPanicBecomesError(t *testing.T) {
	_, err := Run(context.Background(), &Job{
		Name:      "panic",
		Input:     SliceInput([]KV{{[]byte("k"), []byte("a b")}}, 1),
		NewMapper: func() Mapper { return wcMapper{} },
		NewReducer: func() Reducer {
			return ReducerFunc(func(key []byte, values *Values, emit Emit) error {
				panic("kaboom")
			})
		},
		TempDir: t.TempDir(),
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("expected panic error, got %v", err)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, &Job{
		Name:       "cancelled",
		Input:      SliceInput([]KV{{[]byte("k"), []byte("a")}}, 1),
		NewMapper:  func() Mapper { return wcMapper{} },
		NewReducer: func() Reducer { return sumReducer{} },
		TempDir:    t.TempDir(),
	})
	if err == nil {
		t.Fatal("expected error from cancelled context")
	}
}

func TestMapSlotsBoundConcurrency(t *testing.T) {
	var cur, max atomic.Int32
	const slots = 2
	recs := make([]KV, 16)
	for i := range recs {
		recs[i] = KV{[]byte(fmt.Sprint(i)), []byte("x")}
	}
	_, err := Run(context.Background(), &Job{
		Name:  "slots",
		Input: SliceInput(recs, 16),
		NewMapper: func() Mapper {
			return MapperFunc(func(key, value []byte, emit Emit) error {
				n := cur.Add(1)
				for {
					m := max.Load()
					if n <= m || max.CompareAndSwap(m, n) {
						break
					}
				}
				defer cur.Add(-1)
				// Give other tasks a chance to overlap.
				for i := 0; i < 1000; i++ {
					_ = i
				}
				return emit(key, value)
			})
		},
		NewReducer: func() Reducer { return sumReducer{} },
		MapSlots:   slots,
		TempDir:    t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if max.Load() > slots {
		t.Fatalf("observed %d concurrent map tasks, slots = %d", max.Load(), slots)
	}
}

func TestShuffleSpillsStillCorrect(t *testing.T) {
	// A tiny shuffle budget forces disk spills; results must not change.
	rng := rand.New(rand.NewSource(9))
	var docs []string
	wantTotal := 0
	for i := 0; i < 30; i++ {
		n := 50 + rng.Intn(50)
		wantTotal += n
		docs = append(docs, strings.Repeat(fmt.Sprintf("w%d ", i%7), n/1)[:0]+strings.Repeat(fmt.Sprintf("w%d ", i%7), n))
	}
	// Each doc i contributes n occurrences of w(i%7)... recompute exact.
	counts := map[string]uint64{}
	for _, d := range docs {
		for _, w := range strings.Fields(d) {
			counts[w]++
		}
	}
	res, err := Run(context.Background(), &Job{
		Name:          "spilling",
		Input:         wordCountInput(docs, 4),
		NewMapper:     func() Mapper { return wcMapper{} },
		NewReducer:    func() Reducer { return sumReducer{} },
		NumReducers:   2,
		ShuffleMemory: 1, // clamped up to the 64 KiB per-task floor
		TempDir:       t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	got := collectCounts(t, res.Output)
	for k, v := range counts {
		if got[k] != v {
			t.Fatalf("count[%s] = %d, want %d", k, got[k], v)
		}
	}
}

func TestFileSink(t *testing.T) {
	dir := t.TempDir()
	res, err := Run(context.Background(), &Job{
		Name:        "filesink",
		Input:       wordCountInput([]string{"a b a", "b b c"}, 2),
		NewMapper:   func() Mapper { return wcMapper{} },
		NewReducer:  func() Reducer { return sumReducer{} },
		NumReducers: 2,
		Sink:        FileSinkFactory(dir),
		TempDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	got := collectCounts(t, res.Output)
	want := map[string]uint64{"a": 2, "b": 3, "c": 1}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count[%s] = %d, want %d", k, got[k], v)
		}
	}
	if res.Output.Records() != 3 {
		t.Fatalf("Records = %d, want 3", res.Output.Records())
	}
	if err := res.Output.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestDatasetInputChaining(t *testing.T) {
	// Job 1: word count. Job 2: filter counts >= 2. Chained via
	// DatasetInput, as APRIORI iterations chain.
	d := NewDriver()
	res1, err := d.Run(context.Background(), &Job{
		Name:        "chain-1",
		Input:       wordCountInput([]string{"a b a c", "b a b"}, 2),
		NewMapper:   func() Mapper { return wcMapper{} },
		NewReducer:  func() Reducer { return sumReducer{} },
		NumReducers: 2,
		TempDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := d.Run(context.Background(), &Job{
		Name:  "chain-2",
		Input: DatasetInput(res1.Output),
		NewMapper: func() Mapper {
			return MapperFunc(func(key, value []byte, emit Emit) error {
				if v, _ := encoding.Uvarint(value); v >= 2 {
					return emit(key, value)
				}
				return nil
			})
		},
		NewReducer:  func() Reducer { return sumReducer{} },
		NumReducers: 1,
		TempDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	got := collectCounts(t, res2.Output)
	want := map[string]uint64{"a": 3, "b": 3}
	if len(got) != len(want) || got["a"] != 3 || got["b"] != 3 {
		t.Fatalf("got %v, want %v", got, want)
	}
	// Driver aggregates counters over both jobs.
	if n := d.Aggregate.Get(CounterLaunchedJobs); n != 2 {
		t.Fatalf("LAUNCHED_JOBS = %d, want 2", n)
	}
	one := res1.Counters.Get(CounterMapOutputRecords)
	two := res2.Counters.Get(CounterMapOutputRecords)
	if agg := d.Aggregate.Get(CounterMapOutputRecords); agg != one+two {
		t.Fatalf("aggregate MAP_OUTPUT_RECORDS = %d, want %d", agg, one+two)
	}
	if len(d.JobResults) != 2 || d.Wallclock() <= 0 {
		t.Fatalf("driver bookkeeping wrong: %d jobs, wallclock %v", len(d.JobResults), d.Wallclock())
	}
}

func TestEmptyInput(t *testing.T) {
	res, err := Run(context.Background(), &Job{
		Name:        "empty",
		Input:       SliceInput(nil, 4),
		NewMapper:   func() Mapper { return wcMapper{} },
		NewReducer:  func() Reducer { return sumReducer{} },
		NumReducers: 2,
		TempDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Records() != 0 {
		t.Fatalf("expected empty output, got %d records", res.Output.Records())
	}
}

func TestMissingConfig(t *testing.T) {
	if _, err := Run(context.Background(), &Job{Name: "nin", NewMapper: func() Mapper { return wcMapper{} }}); err == nil {
		t.Fatal("expected error for missing input")
	}
	if _, err := Run(context.Background(), &Job{Name: "nmap", Input: SliceInput(nil, 1)}); err == nil {
		t.Fatal("expected error for missing mapper")
	}
}

func TestCountersMergeAndSnapshot(t *testing.T) {
	a := NewCounters()
	a.Add("X", 5)
	a.Add("Y", 1)
	b := NewCounters()
	b.Add("X", 2)
	b.Add("Z", 7)
	a.Merge(b)
	if a.Get("X") != 7 || a.Get("Y") != 1 || a.Get("Z") != 7 {
		t.Fatalf("merge wrong: %v", a.Snapshot())
	}
	s := a.String()
	if !strings.Contains(s, "X=7") || !strings.Contains(s, "Z=7") {
		t.Fatalf("String() = %q", s)
	}
	a.Merge(nil) // must not panic
}

func TestValuesDrainedWhenReducerSkips(t *testing.T) {
	// A reducer that never consumes its values must not corrupt group
	// iteration.
	var mu sync.Mutex
	var keys []string
	_, err := Run(context.Background(), &Job{
		Name:      "skip",
		Input:     SliceInput([]KV{{[]byte("d"), []byte("a a b b c")}}, 1),
		NewMapper: func() Mapper { return wcMapper{} },
		NewReducer: func() Reducer {
			return ReducerFunc(func(key []byte, values *Values, emit Emit) error {
				mu.Lock()
				keys = append(keys, string(key))
				mu.Unlock()
				return nil // skip values entirely
			})
		},
		NumReducers: 1,
		TempDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(keys)
	if fmt.Sprint(keys) != fmt.Sprint([]string{"a", "b", "c"}) {
		t.Fatalf("keys = %v", keys)
	}
}
