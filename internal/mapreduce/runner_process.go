package mapreduce

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"ngramstats/internal/encoding"
)

// ProcessRunner executes every map and reduce task in a separate
// worker OS process: a re-execution of the current binary in hidden
// worker mode (RunWorkerIfRequested), with the task spec on stdin and
// the result on stdout. Task data crosses the process boundary through
// files in a per-job working directory under the plan's TempDir —
// input splits as record files, shuffle hand-off as the sealed
// block-framed run files, task output as record files the parent folds
// into the job's sink.
//
// Failed workers are isolated and retried: every attempt runs in a
// private scratch directory that is discarded on failure, reduce
// inputs are opened as shared runs that survive a consumer's death,
// and a task is retried up to MaxAttempts times (TASKS_RETRIED
// counter) before the job fails. WORKER_PROCS counts the processes
// spawned.
//
// A plan without a Spec has no registered program a worker could
// rebuild its callbacks from; such jobs fall back to in-process
// execution via LocalRunner.
type ProcessRunner struct {
	// Workers bounds the number of concurrently running worker
	// processes per phase. Defaults to GOMAXPROCS.
	Workers int
	// MaxAttempts is the number of times a task is attempted before the
	// job fails. Defaults to 2 (one retry).
	MaxAttempts int
}

func init() {
	RegisterRunner("process", func(cfg RunnerConfig) (Runner, error) {
		if cfg.Rest != "" {
			return nil, fmt.Errorf("mapreduce: runner %q: the process backend takes no address", cfg.Address)
		}
		return &ProcessRunner{Workers: cfg.Workers, MaxAttempts: cfg.MaxAttempts}, nil
	})
}

// String renders the resolved backend for -stats attribution.
func (r *ProcessRunner) String() string {
	return fmt.Sprintf("process (workers=%d, attempts=%d)", r.workers(), r.attempts())
}

func (r *ProcessRunner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (r *ProcessRunner) attempts() int {
	if r.MaxAttempts > 0 {
		return r.MaxAttempts
	}
	return 2
}

// Run implements Runner.
func (r *ProcessRunner) Run(ctx context.Context, plan *Plan, counters *Counters, progress Progress) (Dataset, error) {
	if plan.Spec == nil {
		// No registered program to rebuild the callbacks from: the job
		// can only run where its closures live.
		return LocalRunner{}.Run(ctx, plan, counters, progress)
	}
	if _, err := buildProgram(plan.Spec); err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", plan.Name, err)
	}
	workdir, err := os.MkdirTemp(plan.TempDir, "ngrams-mr-"+sanitizeJobName(plan.Name)+"-*")
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: workdir: %w", plan.Name, err)
	}
	// The working directory holds everything the job scatters on disk —
	// splits, side data, every attempt's spills, runs, and outputs — so
	// one removal cleans up after success, failure, and cancellation
	// alike.
	defer os.RemoveAll(workdir)

	sink, err := plan.Sink(plan.NumReducers)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: sink: %w", plan.Name, err)
	}
	out, err := r.runPlan(ctx, plan, workdir, sink, counters, progress)
	if err != nil {
		abortSink(sink)
		return nil, err
	}
	return out, nil
}

func (r *ProcessRunner) runPlan(ctx context.Context, plan *Plan, workdir string, sink Sink, counters *Counters, progress Progress) (Dataset, error) {
	splitPaths, err := materializeSplits(ctx, plan.Splits, workdir)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: materialize splits: %w", plan.Name, err)
	}
	sideFiles, err := materializeSideData(plan.SideData, workdir)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: side data: %w", plan.Name, err)
	}
	baseSpec := workerSpec{
		Job:           plan.Name,
		Program:       plan.Spec.Program,
		Config:        plan.Spec.Config,
		NumReducers:   plan.NumReducers,
		ShuffleMemory: plan.ShuffleMemory,
		CombineMemory: plan.CombineMemory,
		Codec:         int(plan.ShuffleCodec),
		SideFiles:     sideFiles,
	}

	// ---- Map phase: one worker process per split. ----
	mapPhase := "map"
	if plan.MapOnly {
		mapPhase = "map-only"
	}
	mapRuns := make([][][]workerRun, len(plan.Splits))
	mapStart := time.Now()
	progress.PhaseStart(plan.Name, "map")
	if err := runTasks(ctx, len(plan.Splits), r.workers(), func(ctx context.Context, i int) error {
		spec := baseSpec
		spec.Phase = mapPhase
		spec.TaskID = i
		spec.SplitPath = splitPaths[i]
		res, attemptDir, err := r.runTaskAttempts(ctx, workdir, &spec, counters)
		if err != nil {
			return err
		}
		counters.MergeSnapshot(res.Counters)
		plan.shuffleIO.AddWritten(res.ShuffleWritten)
		plan.shuffleIO.AddRead(res.ShuffleRead)
		if plan.MapOnly {
			// Fold the task's output into the sink as tasks complete,
			// mirroring the local runner's per-task writers.
			if err := copyRecords(filepath.Join(attemptDir, "out.rec"), sink, i%plan.NumReducers); err != nil {
				return fmt.Errorf("map task %d: collect output: %w", i, err)
			}
		} else {
			mapRuns[i] = res.Runs
		}
		progress.TaskDone(plan.Name, "map")
		return nil
	}); err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: map phase: %w", plan.Name, err)
	}
	counters.Add(CounterMapPhaseMillis, time.Since(mapStart).Milliseconds())
	if n := counters.Get(CounterMalformedKeys); n > 0 {
		return nil, fmt.Errorf("mapreduce: job %q: partitioner rejected %d malformed intermediate keys", plan.Name, n)
	}

	if !plan.MapOnly {
		// ---- Shuffle: gather run files per partition, in map-task
		// order (the same merge tie-break order as the local runner).
		refs := make([][]workerRun, plan.NumReducers)
		for _, taskRuns := range mapRuns {
			for p, rs := range taskRuns {
				refs[p] = append(refs[p], rs...)
			}
		}

		// ---- Reduce phase: one worker process per partition. ----
		reduceStart := time.Now()
		progress.PhaseStart(plan.Name, "reduce")
		if err := runTasks(ctx, plan.NumReducers, r.workers(), func(ctx context.Context, p int) error {
			spec := baseSpec
			spec.Phase = "reduce"
			spec.TaskID = p
			spec.Runs = refs[p]
			res, attemptDir, err := r.runTaskAttempts(ctx, workdir, &spec, counters)
			if err != nil {
				return err
			}
			counters.MergeSnapshot(res.Counters)
			plan.shuffleIO.AddWritten(res.ShuffleWritten)
			plan.shuffleIO.AddRead(res.ShuffleRead)
			if err := copyRecords(filepath.Join(attemptDir, "out.rec"), sink, p); err != nil {
				return fmt.Errorf("reduce task %d: collect output: %w", p, err)
			}
			progress.TaskDone(plan.Name, "reduce")
			return nil
		}); err != nil {
			return nil, fmt.Errorf("mapreduce: job %q: reduce phase: %w", plan.Name, err)
		}
		counters.Add(CounterReducePhaseMillis, time.Since(reduceStart).Milliseconds())
		counters.Add(CounterShuffleBytesWritten, plan.shuffleIO.BytesWritten())
		counters.Add(CounterShuffleBytesRead, plan.shuffleIO.BytesRead())
	}

	out, err := sink.Finish()
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: finish sink: %w", plan.Name, err)
	}
	return out, nil
}

// runTaskAttempts executes one task in a worker process, retrying up
// to the runner's attempt limit. Every attempt gets a private scratch
// directory under workdir; a failed attempt's directory is removed
// before the retry, so a crashed worker leaks nothing and cannot
// corrupt the next attempt (its reduce inputs are shared run files it
// could not have unlinked). The successful attempt's directory — which
// holds the task's sealed runs or output file — is returned and stays
// alive until the job's workdir is removed.
func (r *ProcessRunner) runTaskAttempts(ctx context.Context, workdir string, spec *workerSpec, counters *Counters) (*workerResult, string, error) {
	attempts := r.attempts()
	for attempt := 1; ; attempt++ {
		attemptDir := filepath.Join(workdir, fmt.Sprintf("%s-%d-a%d", spec.Phase, spec.TaskID, attempt))
		if err := os.Mkdir(attemptDir, 0o755); err != nil {
			return nil, "", fmt.Errorf("%s task %d: %w", spec.Phase, spec.TaskID, err)
		}
		spec.Attempt = attempt
		spec.TempDir = attemptDir
		if spec.Phase != "map" {
			spec.OutPath = filepath.Join(attemptDir, "out.rec")
		}
		res, err := spawnWorker(ctx, spec, counters)
		if err == nil {
			return res, attemptDir, nil
		}
		os.RemoveAll(attemptDir)
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, "", ctxErr
		}
		if attempt >= attempts {
			return nil, "", fmt.Errorf("%s task %d failed after %d attempt(s): %w", spec.Phase, spec.TaskID, attempt, err)
		}
		counters.Add(CounterTasksRetried, 1)
	}
}

// spawnWorker re-executes the current binary in worker mode and
// exchanges the task spec and result over stdin/stdout. The worker's
// stderr passes through to the parent's.
func spawnWorker(ctx context.Context, spec *workerSpec, counters *Counters) (*workerResult, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("locate executable: %w", err)
	}
	payload, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("encode task spec: %w", err)
	}
	cmd := exec.CommandContext(ctx, exe)
	cmd.Env = append(os.Environ(), WorkerEnv+"=1")
	cmd.Stdin = bytes.NewReader(payload)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	counters.Add(CounterWorkerProcs, 1)
	runErr := cmd.Run()

	banner, rest, found := strings.Cut(out.String(), "\n")
	if !found || strings.TrimSpace(banner) != workerBanner {
		// No banner: the worker died before producing anything, or the
		// binary never entered worker mode at all.
		hint := ""
		if runErr == nil {
			hint = " (is mapreduce.RunWorkerIfRequested wired into this binary's main/TestMain?)"
		}
		return nil, fmt.Errorf("worker produced no result%s: exec %v; output %q", hint, runErr, truncateForError(out.String()))
	}
	var res workerResult
	if err := json.Unmarshal([]byte(rest), &res); err != nil {
		return nil, fmt.Errorf("parse worker result: %v (exec %v; output %q)", err, runErr, truncateForError(rest))
	}
	if res.Err != "" {
		return nil, errors.New(res.Err)
	}
	if runErr != nil {
		return nil, fmt.Errorf("worker exited abnormally: %w", runErr)
	}
	return &res, nil
}

func truncateForError(s string) string {
	if len(s) > 256 {
		return s[:256] + "…"
	}
	return s
}

// sanitizeJobName reduces a job name to characters safe in a temp-dir
// pattern.
func sanitizeJobName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}

// materializeSplits writes every input split to a record file a worker
// process can replay. This is the process model's analogue of reading
// task input from the distributed filesystem.
func materializeSplits(ctx context.Context, splits []Split, workdir string) ([]string, error) {
	paths := make([]string, len(splits))
	for i, split := range splits {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		path := filepath.Join(workdir, fmt.Sprintf("split-%d.rec", i))
		w, err := newRecordFileWriter(path)
		if err != nil {
			return nil, err
		}
		err = split.Records(func(key, value []byte) error { return w.Write(key, value) })
		if cerr := w.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("split %d: %w", i, err)
		}
		paths[i] = path
	}
	return paths, nil
}

// materializeSideData writes each side-data entry to a file once per
// job, the distributed-cache ship step.
func materializeSideData(side map[string][]byte, workdir string) (map[string]string, error) {
	if len(side) == 0 {
		return nil, nil
	}
	files := make(map[string]string, len(side))
	i := 0
	for key, data := range side {
		path := filepath.Join(workdir, fmt.Sprintf("side-%d", i))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return nil, err
		}
		files[key] = path
		i++
	}
	return files, nil
}

// copyRecords folds a worker's output record file into partition p of
// the job's sink.
func copyRecords(path string, sink Sink, p int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := sink.Writer(p)
	if err != nil {
		return err
	}
	rr := encoding.NewRecordReader(bufio.NewReaderSize(f, 256<<10))
	for {
		k, v, err := rr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			w.Close()
			return err
		}
		if err := w.Write(k, v); err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}
