package mapreduce

// The coordinator/worker wire protocol of the net runner: plain
// HTTP/JSON under the /mr/ prefix. See doc.go ("The net runner wire
// protocol") for the endpoint walkthrough; this file only holds the
// message types both sides marshal.

// netRegisterReq is a worker announcing itself to the coordinator.
type netRegisterReq struct {
	// Addr is the base URL (http://host:port) of the worker's
	// shuffle-transfer service, where the coordinator-directed reduce
	// workers fetch this worker's sealed map runs.
	Addr string `json:"addr"`
	Pid  int    `json:"pid,omitempty"`
}

// netRegisterResp hands a registering worker its identity and the
// job-wide configuration every task shares.
type netRegisterResp struct {
	// Drain tells the worker the job is over before it got a task.
	Drain  bool         `json:"drain,omitempty"`
	Worker string       `json:"worker,omitempty"`
	Job    netJobConfig `json:"job,omitempty"`
}

// netJobConfig is the per-job half of a task spec: everything that
// does not change between tasks, shipped once at registration.
type netJobConfig struct {
	Name          string `json:"name"`
	Program       string `json:"program"`
	Config        []byte `json:"config,omitempty"`
	NumReducers   int    `json:"num_reducers"`
	ShuffleMemory int    `json:"shuffle_memory"`
	CombineMemory int    `json:"combine_memory"`
	Codec         int    `json:"codec"`
	// SideKeys lists the side-data keys to fetch from /mr/side/<key>.
	SideKeys []string `json:"side_keys,omitempty"`
	// LeaseTTLMillis is the lease duration; workers heartbeat well
	// within it and poll at a fraction of it.
	LeaseTTLMillis int64 `json:"lease_ttl_millis"`
}

// Poll statuses.
const (
	netStatusTask       = "task"       // a task assignment rides along
	netStatusWait       = "wait"       // nothing runnable now, poll again
	netStatusDrain      = "drain"      // job over, clean up and disconnect
	netStatusReregister = "reregister" // unknown worker id: register anew
)

// netPollReq asks the coordinator for work.
type netPollReq struct {
	Worker string `json:"worker"`
}

// netPollResp answers a poll.
type netPollResp struct {
	Status string   `json:"status"`
	Task   *netTask `json:"task,omitempty"`
}

// netTask is one leased task assignment.
type netTask struct {
	// Lease identifies this attempt; it rides on heartbeats, the output
	// upload, and the result report.
	Lease string `json:"lease"`
	// Phase is "map", "map-only", or "reduce".
	Phase   string `json:"phase"`
	Task    int    `json:"task"`
	Attempt int    `json:"attempt"`
	// SplitURL is where to fetch the input split (map phases).
	SplitURL string `json:"split_url,omitempty"`
	// Runs are the sealed map runs to merge (reduce phase), in map-task
	// order — the merge tie-break order every backend shares.
	Runs []netRunRef `json:"runs,omitempty"`
}

// netRunRef locates one sealed shuffle run on the worker that produced
// it.
type netRunRef struct {
	URL string `json:"url"`
	// Worker is the producing worker's id, so losing the worker tells
	// the coordinator which runs died with it.
	Worker  string `json:"worker"`
	Size    int64  `json:"size"`
	Records int    `json:"records"`
}

// netHeartbeatReq renews the leases a worker is still executing.
type netHeartbeatReq struct {
	Worker string   `json:"worker"`
	Leases []string `json:"leases,omitempty"`
}

// netHeartbeatResp may cancel leases the coordinator no longer wants
// (reassigned after expiry, or lost a speculative race).
type netHeartbeatResp struct {
	Cancel []string `json:"cancel,omitempty"`
}

// netResultReq reports a finished (or failed) task attempt.
type netResultReq struct {
	Lease  string `json:"lease"`
	Worker string `json:"worker"`
	// Err is the failure, empty on success.
	Err string `json:"err,omitempty"`
	// LostRuns are shuffle-run URLs a reduce attempt could not fetch:
	// the producing map output is gone and must be re-executed. A
	// result with LostRuns is requeued without charging the task a
	// failure — the fault is upstream.
	LostRuns []string `json:"lost_runs,omitempty"`

	Counters       map[string]int64 `json:"counters,omitempty"`
	ShuffleWritten int64            `json:"shuffle_written,omitempty"`
	ShuffleRead    int64            `json:"shuffle_read,omitempty"`
	// FetchBytes are the wire bytes this attempt pulled from shuffle
	// services; folded into SHUFFLE_FETCH_BYTES even for attempts that
	// failed or lost the race, since the transfer happened.
	FetchBytes int64 `json:"fetch_bytes,omitempty"`

	// Runs are a map task's sealed runs per reduce partition, served by
	// this worker's shuffle service.
	Runs [][]netRunRef `json:"runs,omitempty"`
	// OutRecords counts records in the uploaded output (reduce and
	// map-only phases).
	OutRecords int64 `json:"out_records,omitempty"`
}

// netResultResp acknowledges a result. A rejected result lost a
// speculative race (or arrived after lease expiry); the worker
// discards the attempt's artifacts.
type netResultResp struct {
	Accepted bool `json:"accepted"`
}
