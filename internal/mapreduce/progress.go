package mapreduce

import "ngramstats/internal/extsort"

// Progress receives live job lifecycle events, replacing the earlier
// free-form Logf plumbing with a structured sink a caller can aggregate
// into task counts, phase displays, or live counter reads.
//
// Implementations must be safe for concurrent use: TaskDone fires from
// task goroutines while JobStart/PhaseStart/JobDone fire from the job's
// driving goroutine.
type Progress interface {
	// JobStart fires once per job after input splits are computed, with
	// the task counts and live handles of the run.
	JobStart(info JobInfo)
	// PhaseStart fires when a job enters its map or reduce phase.
	PhaseStart(job, phase string)
	// TaskDone fires after each task of the named phase completes.
	TaskDone(job, phase string)
	// JobDone fires once per job with its final summary.
	JobDone(summary JobSummary)
}

// JobInfo describes a starting job. Counters and ShuffleIO are the live
// instruments of the run: they may be read while the job executes
// (both are concurrency-safe) to surface records emitted or encoded
// shuffle bytes written so far.
type JobInfo struct {
	// Name identifies the job.
	Name string
	// MapTasks and ReduceTasks are the task counts the job will run
	// (ReduceTasks is zero for map-only jobs).
	MapTasks, ReduceTasks int
	// Counters is the job's live counter group.
	Counters *Counters
	// ShuffleIO measures the job's encoded shuffle transfer as it
	// happens; nil for map-only jobs.
	ShuffleIO *extsort.IOStats
}

// LogProgress adapts a printf-style logger to the Progress interface,
// reproducing the progress lines the runtime used to emit through the
// old Logf hooks.
func LogProgress(logf func(format string, args ...any)) Progress {
	return &logProgress{logf: logf}
}

type logProgress struct {
	logf func(format string, args ...any)
}

func (l *logProgress) JobStart(info JobInfo) {
	l.logf("job %s: %d map tasks, %d reducers", info.Name, info.MapTasks, info.ReduceTasks)
}

func (l *logProgress) PhaseStart(job, phase string) {}

func (l *logProgress) TaskDone(job, phase string) {}

func (l *logProgress) JobDone(s JobSummary) {
	l.logf("job %s: done in %v (%d records out)", s.Name, s.Wallclock, s.OutputRecords)
}

// MultiProgress fans every event out to each non-nil sink in order.
func MultiProgress(sinks ...Progress) Progress {
	var active []Progress
	for _, s := range sinks {
		if s != nil {
			active = append(active, s)
		}
	}
	switch len(active) {
	case 0:
		return nil
	case 1:
		return active[0]
	}
	return multiProgress(active)
}

type multiProgress []Progress

func (m multiProgress) JobStart(info JobInfo) {
	for _, s := range m {
		s.JobStart(info)
	}
}

func (m multiProgress) PhaseStart(job, phase string) {
	for _, s := range m {
		s.PhaseStart(job, phase)
	}
}

func (m multiProgress) TaskDone(job, phase string) {
	for _, s := range m {
		s.TaskDone(job, phase)
	}
}

func (m multiProgress) JobDone(s JobSummary) {
	for _, p := range m {
		p.JobDone(s)
	}
}
