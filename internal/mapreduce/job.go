// Package mapreduce is an in-process MapReduce runtime modeled on
// Hadoop, the substrate every method of the paper runs on. It provides
// the programming model of Dean & Ghemawat — map(k1,v1) → list<(k2,v2)>,
// sort/group, reduce(k2, list<v2>) → list<(k3,v3)> — together with the
// Hadoop facilities the paper's implementation section (Section V)
// depends on: custom partitioners and sort comparators, combiners for
// local aggregation, job counters (MAP_OUTPUT_BYTES, MAP_OUTPUT_RECORDS,
// …), side data in the style of the distributed cache, configurable
// map/reduce slot pools, and a driver for multi-job workflows.
//
// The shuffle is backed by bounded-memory external sorters (one per
// reduce partition) that spill sorted runs to disk and merge them for
// the reduce phase, so jobs are not limited by main memory.
package mapreduce

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"ngramstats/internal/extsort"
)

// Emit passes a key-value pair downstream: from a mapper into the
// shuffle, or from a reducer into the job output.
type Emit func(key, value []byte) error

// Mapper consumes input records and emits intermediate records. A fresh
// Mapper is created per map task via Job.NewMapper.
type Mapper interface {
	Map(key, value []byte, emit Emit) error
}

// Reducer consumes one group of intermediate records that share a key
// (under the job's group comparator) and emits output records. A fresh
// Reducer is created per reduce task via Job.NewReducer (and per map
// task for combiners via Job.NewCombiner).
type Reducer interface {
	Reduce(key []byte, values *Values, emit Emit) error
}

// TaskSetup is implemented by mappers/reducers that need per-task
// initialization (the analogue of Hadoop's setup()).
type TaskSetup interface {
	Setup(tc *TaskContext) error
}

// TaskCleanup is implemented by mappers/reducers that need a final
// flush after all input is consumed (the analogue of Hadoop's
// cleanup()). SUFFIX-σ uses this to flush its stacks (Algorithm 4).
type TaskCleanup interface {
	Cleanup(emit Emit) error
}

// MapperFunc adapts a function to the Mapper interface.
type MapperFunc func(key, value []byte, emit Emit) error

// Map implements Mapper.
func (f MapperFunc) Map(key, value []byte, emit Emit) error { return f(key, value, emit) }

// ReducerFunc adapts a function to the Reducer interface.
type ReducerFunc func(key []byte, values *Values, emit Emit) error

// Reduce implements Reducer.
func (f ReducerFunc) Reduce(key []byte, values *Values, emit Emit) error {
	return f(key, values, emit)
}

// Partitioner assigns a key to one of r reduce partitions.
type Partitioner func(key []byte, r int) int

// DefaultPartitioner hashes the whole key (FNV-1a), Hadoop's
// HashPartitioner equivalent.
func DefaultPartitioner(key []byte, r int) int {
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32() % uint32(r))
}

// TaskContext carries per-task information into Setup.
type TaskContext struct {
	// JobName is the name of the running job.
	JobName string
	// TaskID is the index of the task within its phase.
	TaskID int
	// Phase is "map", "combine", or "reduce".
	Phase string
	// Partition is the reduce partition (reduce phase only, else -1).
	Partition int
	// NumReducers is the number of reduce partitions.
	NumReducers int
	// Counters is the job's counter group, for custom counters.
	Counters *Counters
	// SideData is the job's read-only side data (distributed cache).
	SideData map[string][]byte
	// TempDir is the job's scratch directory.
	TempDir string
}

// Job configures one MapReduce job.
type Job struct {
	// Name identifies the job in logs and errors.
	Name string
	// Input provides the input splits. Required.
	Input Input
	// NewMapper creates a mapper per map task. Required.
	NewMapper func() Mapper
	// NewCombiner, if non-nil, creates a combiner applied to each map
	// task's sorted local output before it enters the shuffle (local
	// aggregation, Section V).
	NewCombiner func() Reducer
	// NewReducer creates a reducer per reduce task. If nil the job is
	// map-only: mapper output goes straight to the sink, partitioned but
	// unsorted.
	NewReducer func() Reducer
	// Partition assigns intermediate keys to reduce partitions. Defaults
	// to DefaultPartitioner. SUFFIX-σ overrides it to partition by first
	// term only.
	Partition Partitioner
	// Compare is the shuffle sort order. Defaults to bytewise comparison.
	// SUFFIX-σ overrides it with the reverse lexicographic comparator.
	Compare extsort.Compare
	// GroupCompare decides which consecutive sorted keys form one reduce
	// group. Defaults to Compare.
	GroupCompare extsort.Compare
	// NumReducers is the number of reduce partitions R. Defaults to
	// 2×GOMAXPROCS.
	NumReducers int
	// MapSlots bounds the number of concurrently executing map tasks,
	// like the per-cluster map slot count in the paper's setup
	// (Section VII-A). Defaults to GOMAXPROCS.
	MapSlots int
	// ReduceSlots bounds the number of concurrently executing reduce
	// tasks. Defaults to GOMAXPROCS.
	ReduceSlots int
	// ShuffleMemory is the total memory budget in bytes for shuffle
	// buffering across all partitions; beyond it, sorted runs spill to
	// disk. Defaults to 256 MiB.
	ShuffleMemory int
	// CombineMemory is the per-map-task memory budget for combiner
	// buffering. Defaults to 32 MiB.
	CombineMemory int
	// TempDir is the scratch directory for spills. Empty selects the
	// system default.
	TempDir string
	// Sink materializes the output. Defaults to MemSinkFactory.
	Sink SinkFactory
	// SideData is read-only data shared with every task, the analogue of
	// Hadoop's distributed cache (used by APRIORI-SCAN for the frequent
	// (k−1)-gram dictionary).
	SideData map[string][]byte
	// Logf, if non-nil, receives progress messages.
	Logf func(format string, args ...any)
}

// Result is the outcome of a job.
type Result struct {
	// Output is the materialized job output.
	Output Dataset
	// Counters holds the job's counters.
	Counters *Counters
	// Wallclock is the total elapsed time of the job.
	Wallclock time.Duration
	// MapTasks and ReduceTasks are the task counts that ran.
	MapTasks, ReduceTasks int
}

func (j *Job) withDefaults() *Job {
	cp := *j
	if cp.Partition == nil {
		cp.Partition = DefaultPartitioner
	}
	if cp.Compare == nil {
		cp.Compare = extsort.Compare(compareBytes)
	}
	if cp.GroupCompare == nil {
		cp.GroupCompare = cp.Compare
	}
	if cp.NumReducers <= 0 {
		cp.NumReducers = 2 * runtime.GOMAXPROCS(0)
	}
	if cp.MapSlots <= 0 {
		cp.MapSlots = runtime.GOMAXPROCS(0)
	}
	if cp.ReduceSlots <= 0 {
		cp.ReduceSlots = runtime.GOMAXPROCS(0)
	}
	if cp.ShuffleMemory <= 0 {
		cp.ShuffleMemory = 256 << 20
	}
	if cp.CombineMemory <= 0 {
		cp.CombineMemory = 32 << 20
	}
	if cp.Sink == nil {
		cp.Sink = MemSinkFactory()
	}
	return &cp
}

func compareBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return len(a) - len(b)
}

// Run executes the job to completion and returns its result.
func Run(ctx context.Context, job *Job) (*Result, error) {
	start := time.Now()
	j := job.withDefaults()
	if j.Input == nil {
		return nil, fmt.Errorf("mapreduce: job %q has no input", j.Name)
	}
	if j.NewMapper == nil {
		return nil, fmt.Errorf("mapreduce: job %q has no mapper", j.Name)
	}
	counters := NewCounters()
	counters.Add(CounterLaunchedJobs, 1)

	splits, err := j.Input.Splits()
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: input splits: %w", j.Name, err)
	}
	if j.Logf != nil {
		j.Logf("job %s: %d map tasks, %d reducers", j.Name, len(splits), j.NumReducers)
	}

	sink, err := j.Sink(j.NumReducers)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: sink: %w", j.Name, err)
	}

	res := &Result{Counters: counters, MapTasks: len(splits), ReduceTasks: j.NumReducers}

	if j.NewReducer == nil {
		if err := runMapOnly(ctx, j, splits, sink, counters); err != nil {
			return nil, err
		}
		res.ReduceTasks = 0
	} else {
		if err := runMapReduce(ctx, j, splits, sink, counters); err != nil {
			return nil, err
		}
	}

	out, err := sink.Finish()
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: finish sink: %w", j.Name, err)
	}
	res.Output = out
	res.Wallclock = time.Since(start)
	if j.Logf != nil {
		j.Logf("job %s: done in %v (%d records out)", j.Name, res.Wallclock, out.Records())
	}
	return res, nil
}

// partitionCollector is the shared shuffle buffer for one reduce
// partition: an external sorter guarded by a mutex, fed by all map
// tasks.
type partitionCollector struct {
	mu     sync.Mutex
	sorter *extsort.Sorter
}

func (pc *partitionCollector) add(key, value []byte) error {
	pc.mu.Lock()
	err := pc.sorter.Add(key, value)
	pc.mu.Unlock()
	return err
}

func runMapReduce(ctx context.Context, j *Job, splits []Split, sink Sink, counters *Counters) error {
	// Shared per-partition collectors.
	parts := make([]*partitionCollector, j.NumReducers)
	perPartition := j.ShuffleMemory / j.NumReducers
	if perPartition < 1<<20 {
		perPartition = 1 << 20
	}
	for p := range parts {
		parts[p] = &partitionCollector{sorter: extsort.NewSorter(extsort.Options{
			MemoryBudget: perPartition,
			TempDir:      j.TempDir,
			Compare:      j.Compare,
			OnSpill:      func(n int) { counters.Add(CounterSpilledRecords, int64(n)) },
		})}
	}
	releaseParts := func() {
		for _, pc := range parts {
			if pc.sorter != nil {
				pc.sorter.Discard()
			}
		}
	}

	// ---- Map phase ----
	mapStart := time.Now()
	if err := runTasks(ctx, len(splits), j.MapSlots, func(ctx context.Context, taskID int) error {
		return runMapTask(ctx, j, taskID, splits[taskID], parts, counters)
	}); err != nil {
		releaseParts()
		return fmt.Errorf("mapreduce: job %q: map phase: %w", j.Name, err)
	}
	counters.Add(CounterMapPhaseMillis, time.Since(mapStart).Milliseconds())

	// ---- Reduce phase ----
	reduceStart := time.Now()
	if err := runTasks(ctx, j.NumReducers, j.ReduceSlots, func(ctx context.Context, p int) error {
		pc := parts[p]
		sorter := pc.sorter
		pc.sorter = nil
		return runReduceTask(ctx, j, p, sorter, sink, counters)
	}); err != nil {
		releaseParts()
		return fmt.Errorf("mapreduce: job %q: reduce phase: %w", j.Name, err)
	}
	counters.Add(CounterReducePhaseMillis, time.Since(reduceStart).Milliseconds())
	return nil
}

func runMapTask(ctx context.Context, j *Job, taskID int, split Split, parts []*partitionCollector, counters *Counters) error {
	mapper := j.NewMapper()
	tc := &TaskContext{
		JobName: j.Name, TaskID: taskID, Phase: "map", Partition: -1,
		NumReducers: j.NumReducers, Counters: counters, SideData: j.SideData, TempDir: j.TempDir,
	}
	if s, ok := mapper.(TaskSetup); ok {
		if err := s.Setup(tc); err != nil {
			return fmt.Errorf("map task %d setup: %w", taskID, err)
		}
	}

	var local []*extsort.Sorter // per-partition combiner buffers
	combine := j.NewCombiner != nil
	if combine {
		local = make([]*extsort.Sorter, j.NumReducers)
		per := j.CombineMemory / j.NumReducers
		if per < 256<<10 {
			per = 256 << 10
		}
		for p := range local {
			local[p] = extsort.NewSorter(extsort.Options{
				MemoryBudget: per,
				TempDir:      j.TempDir,
				Compare:      j.Compare,
				OnSpill:      func(n int) { counters.Add(CounterSpilledRecords, int64(n)) },
			})
		}
	}
	discardLocal := func() {
		for _, s := range local {
			if s != nil {
				s.Discard()
			}
		}
	}

	emit := Emit(func(key, value []byte) error {
		counters.Add(CounterMapOutputRecords, 1)
		counters.Add(CounterMapOutputBytes, int64(len(key)+len(value)))
		p := j.Partition(key, j.NumReducers)
		if p < 0 || p >= j.NumReducers {
			return fmt.Errorf("partitioner returned %d for %d reducers", p, j.NumReducers)
		}
		if combine {
			return local[p].Add(key, value)
		}
		counters.Add(CounterReduceShuffleBytes, int64(len(key)+len(value)))
		return parts[p].add(key, value)
	})

	var n int64
	err := split.Records(func(key, value []byte) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		n++
		return mapper.Map(key, value, emit)
	})
	counters.Add(CounterMapInputRecords, n)
	if err != nil {
		discardLocal()
		return fmt.Errorf("map task %d: %w", taskID, err)
	}
	if c, ok := mapper.(TaskCleanup); ok {
		if err := c.Cleanup(emit); err != nil {
			discardLocal()
			return fmt.Errorf("map task %d cleanup: %w", taskID, err)
		}
	}

	if !combine {
		return nil
	}
	// Run the combiner over each partition's sorted local output and
	// feed the combined records into the shared shuffle.
	for p, sorter := range local {
		local[p] = nil
		if err := combinePartition(ctx, j, taskID, p, sorter, parts[p], counters); err != nil {
			discardLocal()
			return fmt.Errorf("map task %d combine partition %d: %w", taskID, p, err)
		}
	}
	return nil
}

func combinePartition(ctx context.Context, j *Job, taskID, p int, sorter *extsort.Sorter, pc *partitionCollector, counters *Counters) error {
	combiner := j.NewCombiner()
	tc := &TaskContext{
		JobName: j.Name, TaskID: taskID, Phase: "combine", Partition: p,
		NumReducers: j.NumReducers, Counters: counters, SideData: j.SideData, TempDir: j.TempDir,
	}
	if s, ok := combiner.(TaskSetup); ok {
		if err := s.Setup(tc); err != nil {
			return err
		}
	}
	it, err := sorter.Sort()
	if err != nil {
		return err
	}
	defer it.Close()
	emit := Emit(func(key, value []byte) error {
		counters.Add(CounterCombineOutputRecs, 1)
		counters.Add(CounterReduceShuffleBytes, int64(len(key)+len(value)))
		return pc.add(key, value)
	})
	vals := newValues(it, j.GroupCompare)
	for vals.nextGroup() {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := combiner.Reduce(vals.Key(), vals, emit); err != nil {
			return err
		}
		counters.Add(CounterCombineInputRecs, vals.Count())
	}
	if err := vals.Err(); err != nil {
		return err
	}
	if c, ok := combiner.(TaskCleanup); ok {
		if err := c.Cleanup(emit); err != nil {
			return err
		}
	}
	return nil
}

func runReduceTask(ctx context.Context, j *Job, p int, sorter *extsort.Sorter, sink Sink, counters *Counters) error {
	reducer := j.NewReducer()
	tc := &TaskContext{
		JobName: j.Name, TaskID: p, Phase: "reduce", Partition: p,
		NumReducers: j.NumReducers, Counters: counters, SideData: j.SideData, TempDir: j.TempDir,
	}
	if s, ok := reducer.(TaskSetup); ok {
		if err := s.Setup(tc); err != nil {
			return fmt.Errorf("reduce task %d setup: %w", p, err)
		}
	}
	w, err := sink.Writer(p)
	if err != nil {
		return fmt.Errorf("reduce task %d: sink writer: %w", p, err)
	}
	emit := Emit(func(key, value []byte) error {
		counters.Add(CounterReduceOutputRecs, 1)
		counters.Add(CounterReduceOutputBytes, int64(len(key)+len(value)))
		return w.Write(key, value)
	})
	it, err := sorter.Sort()
	if err != nil {
		w.Close()
		return fmt.Errorf("reduce task %d: sort: %w", p, err)
	}
	defer it.Close()

	vals := newValues(it, j.GroupCompare)
	for vals.nextGroup() {
		if err := ctx.Err(); err != nil {
			w.Close()
			return err
		}
		counters.Add(CounterReduceInputGroups, 1)
		if err := reducer.Reduce(vals.Key(), vals, emit); err != nil {
			w.Close()
			return fmt.Errorf("reduce task %d: %w", p, err)
		}
		counters.Add(CounterReduceInputRecords, vals.Count())
	}
	if err := vals.Err(); err != nil {
		w.Close()
		return fmt.Errorf("reduce task %d: merge: %w", p, err)
	}
	if c, ok := reducer.(TaskCleanup); ok {
		if err := c.Cleanup(emit); err != nil {
			w.Close()
			return fmt.Errorf("reduce task %d cleanup: %w", p, err)
		}
	}
	if err := w.Close(); err != nil {
		return fmt.Errorf("reduce task %d: close sink: %w", p, err)
	}
	return nil
}

func runMapOnly(ctx context.Context, j *Job, splits []Split, sink Sink, counters *Counters) error {
	// Map-only jobs write each task's output to a per-task writer on the
	// task's own partition index modulo R, preserving partitioning
	// without a shuffle.
	return runTasks(ctx, len(splits), j.MapSlots, func(ctx context.Context, taskID int) error {
		mapper := j.NewMapper()
		tc := &TaskContext{
			JobName: j.Name, TaskID: taskID, Phase: "map", Partition: -1,
			NumReducers: j.NumReducers, Counters: counters, SideData: j.SideData, TempDir: j.TempDir,
		}
		if s, ok := mapper.(TaskSetup); ok {
			if err := s.Setup(tc); err != nil {
				return fmt.Errorf("map task %d setup: %w", taskID, err)
			}
		}
		w, err := sink.Writer(taskID % j.NumReducers)
		if err != nil {
			return fmt.Errorf("map task %d: sink writer: %w", taskID, err)
		}
		emit := Emit(func(key, value []byte) error {
			counters.Add(CounterMapOutputRecords, 1)
			counters.Add(CounterMapOutputBytes, int64(len(key)+len(value)))
			return w.Write(key, value)
		})
		var n int64
		err = splits[taskID].Records(func(key, value []byte) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			n++
			return mapper.Map(key, value, emit)
		})
		counters.Add(CounterMapInputRecords, n)
		if err != nil {
			w.Close()
			return fmt.Errorf("map task %d: %w", taskID, err)
		}
		if c, ok := mapper.(TaskCleanup); ok {
			if err := c.Cleanup(emit); err != nil {
				w.Close()
				return fmt.Errorf("map task %d cleanup: %w", taskID, err)
			}
		}
		return w.Close()
	})
}

// runTasks executes n tasks with at most slots running concurrently,
// returning the first error. A panicking task is converted into an
// error carrying its stack.
func runTasks(ctx context.Context, n, slots int, task func(ctx context.Context, i int) error) error {
	if n == 0 {
		return nil
	}
	if slots > n {
		slots = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	sem := make(chan struct{}, slots)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error

	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}

	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			defer func() {
				if r := recover(); r != nil {
					fail(fmt.Errorf("task %d panicked: %v\n%s", i, r, debug.Stack()))
				}
			}()
			if err := task(ctx, i); err != nil {
				fail(err)
			}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// Driver runs a sequence of jobs and aggregates their counters, the way
// the paper reports measures (b) and (c) as "aggregates over all Hadoop
// jobs launched" for the multi-job APRIORI methods.
type Driver struct {
	// Aggregate accumulates the counters of every job run through the
	// driver.
	Aggregate *Counters
	// JobResults records per-job results in execution order.
	JobResults []*Result
	// Logf, if non-nil, receives progress messages and is passed to jobs
	// without one.
	Logf func(format string, args ...any)
}

// NewDriver returns an empty driver.
func NewDriver() *Driver {
	return &Driver{Aggregate: NewCounters()}
}

// Run executes the job and folds its counters into the aggregate.
func (d *Driver) Run(ctx context.Context, job *Job) (*Result, error) {
	if job.Logf == nil {
		job.Logf = d.Logf
	}
	res, err := Run(ctx, job)
	if err != nil {
		return nil, err
	}
	d.Aggregate.Merge(res.Counters)
	d.JobResults = append(d.JobResults, res)
	return res, nil
}

// Wallclock returns the summed wallclock time of all jobs run so far.
func (d *Driver) Wallclock() time.Duration {
	var total time.Duration
	for _, r := range d.JobResults {
		total += r.Wallclock
	}
	return total
}
