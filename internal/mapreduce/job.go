package mapreduce

import (
	"context"
	"hash/fnv"
	"runtime"
	"time"

	"ngramstats/internal/extsort"
)

// Emit passes a key-value pair downstream: from a mapper into the
// shuffle, or from a reducer into the job output.
type Emit func(key, value []byte) error

// Mapper consumes input records and emits intermediate records. A fresh
// Mapper is created per map task via Job.NewMapper.
type Mapper interface {
	Map(key, value []byte, emit Emit) error
}

// Reducer consumes one group of intermediate records that share a key
// (under the job's group comparator) and emits output records. A fresh
// Reducer is created per reduce task via Job.NewReducer (and per map
// task for combiners via Job.NewCombiner).
type Reducer interface {
	Reduce(key []byte, values *Values, emit Emit) error
}

// TaskSetup is implemented by mappers/reducers that need per-task
// initialization (the analogue of Hadoop's setup()).
type TaskSetup interface {
	Setup(tc *TaskContext) error
}

// TaskCleanup is implemented by mappers/reducers that need a final
// flush after all input is consumed (the analogue of Hadoop's
// cleanup()). SUFFIX-σ uses this to flush its stacks (Algorithm 4).
type TaskCleanup interface {
	Cleanup(emit Emit) error
}

// MapperFunc adapts a function to the Mapper interface.
type MapperFunc func(key, value []byte, emit Emit) error

// Map implements Mapper.
func (f MapperFunc) Map(key, value []byte, emit Emit) error { return f(key, value, emit) }

// ReducerFunc adapts a function to the Reducer interface.
type ReducerFunc func(key []byte, values *Values, emit Emit) error

// Reduce implements Reducer.
func (f ReducerFunc) Reduce(key []byte, values *Values, emit Emit) error {
	return f(key, values, emit)
}

// Partitioner assigns a key to one of r reduce partitions. A
// partitioner that cannot parse a key must return
// MalformedKeyPartition: the runtime counts such keys in the
// MALFORMED_KEYS counter and fails the job after the map phase, rather
// than letting malformed keys silently skew one partition.
type Partitioner func(key []byte, r int) int

// MalformedKeyPartition is the sentinel a Partitioner returns for a
// key it cannot parse.
const MalformedKeyPartition = -1

// DefaultPartitioner hashes the whole key (FNV-1a), Hadoop's
// HashPartitioner equivalent.
func DefaultPartitioner(key []byte, r int) int {
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32() % uint32(r))
}

// TaskContext carries per-task information into Setup.
type TaskContext struct {
	// JobName is the name of the running job.
	JobName string
	// TaskID is the index of the task within its phase.
	TaskID int
	// Phase is "map", "combine", or "reduce".
	Phase string
	// Partition is the reduce partition (reduce phase only, else -1).
	Partition int
	// NumReducers is the number of reduce partitions.
	NumReducers int
	// Counters is the job's counter group, for custom counters. Under
	// the process runner this is the worker's private group, merged
	// into the job's counters when the task completes.
	Counters *Counters
	// SideData is the job's read-only side data (distributed cache).
	SideData map[string][]byte
	// TempDir is the task's scratch directory. Under the process runner
	// every attempt gets a private directory, so a failed attempt's
	// files can be removed wholesale.
	TempDir string
}

// Job configures one MapReduce job.
type Job struct {
	// Name identifies the job in logs and errors.
	Name string
	// Input provides the input splits. Required.
	Input Input
	// NewMapper creates a mapper per map task. Required.
	NewMapper func() Mapper
	// NewCombiner, if non-nil, creates a combiner applied to each map
	// task's sorted local output before it enters the shuffle (local
	// aggregation, Section V).
	NewCombiner func() Reducer
	// NewReducer creates a reducer per reduce task. If nil the job is
	// map-only: mapper output goes straight to the sink, partitioned but
	// unsorted.
	NewReducer func() Reducer
	// Partition assigns intermediate keys to reduce partitions. Defaults
	// to DefaultPartitioner. SUFFIX-σ overrides it to partition by first
	// term only.
	Partition Partitioner
	// Compare is the shuffle sort order. Defaults to bytewise comparison.
	// SUFFIX-σ overrides it with the reverse lexicographic comparator.
	Compare extsort.Compare
	// GroupCompare decides which consecutive sorted keys form one reduce
	// group. Defaults to Compare.
	GroupCompare extsort.Compare
	// NumReducers is the number of reduce partitions R. Defaults to
	// 2×GOMAXPROCS.
	NumReducers int
	// MapSlots bounds the number of concurrently executing map tasks,
	// like the per-cluster map slot count in the paper's setup
	// (Section VII-A). Defaults to GOMAXPROCS.
	MapSlots int
	// ReduceSlots bounds the number of concurrently executing reduce
	// tasks. Defaults to GOMAXPROCS.
	ReduceSlots int
	// ShuffleMemory is the memory budget in bytes of a single map task
	// for buffering its partitioned output — the analogue of Hadoop's
	// io.sort.mb, so total shuffle buffering approaches
	// MapSlots×ShuffleMemory. When a task's buffered bytes across all of
	// its partition sorters exceed the budget, the largest buffer is
	// gracefully spilled to a sorted on-disk run. Defaults to 128 MiB;
	// values below 64 KiB are clamped up to 64 KiB.
	ShuffleMemory int
	// CombineMemory is the per-map-task memory budget for combiner
	// buffering. Defaults to 32 MiB.
	CombineMemory int
	// ShuffleCodec selects the optional per-block compression of sealed
	// shuffle runs on top of the format's front-coding. Default is
	// extsort.CodecRaw; extsort.CodecFlate pays CPU for smaller transfer
	// and suits jobs whose values compress well.
	ShuffleCodec extsort.Codec
	// TempDir is the scratch directory for spills. Empty selects the
	// system default.
	TempDir string
	// Sink materializes the output. Defaults to MemSinkFactory.
	Sink SinkFactory
	// SideData is read-only data shared with every task, the analogue of
	// Hadoop's distributed cache (used by APRIORI-SCAN for the frequent
	// (k−1)-gram dictionary).
	SideData map[string][]byte
	// Spec, if non-nil, names a registered program (RegisterProgram)
	// that can reconstruct this job's task callbacks in a worker
	// process. Required for real multi-process execution; jobs without
	// it run in-process regardless of the selected runner.
	Spec *Spec
	// Runner selects the execution backend. Nil selects DefaultRunner:
	// the in-process LocalRunner, unless the NGRAMS_RUNNER environment
	// variable names another backend.
	Runner Runner
	// Progress, if non-nil, receives structured job lifecycle events
	// (job/phase starts, per-task completions, the final summary) plus
	// live handles on the job's counters and shuffle transfer. Wrap a
	// printf-style logger with LogProgress for the old Logf behaviour.
	Progress Progress
}

// Result is the outcome of a job.
type Result struct {
	// Output is the materialized job output.
	Output Dataset
	// Counters holds the job's counters.
	Counters *Counters
	// Wallclock is the total elapsed time of the job.
	Wallclock time.Duration
	// MapTasks and ReduceTasks are the task counts that ran.
	MapTasks, ReduceTasks int
}

func (j *Job) withDefaults() *Job {
	cp := *j
	if cp.Partition == nil {
		cp.Partition = DefaultPartitioner
	}
	if cp.Compare == nil {
		cp.Compare = extsort.Compare(compareBytes)
	}
	if cp.GroupCompare == nil {
		cp.GroupCompare = cp.Compare
	}
	if cp.NumReducers <= 0 {
		cp.NumReducers = 2 * runtime.GOMAXPROCS(0)
	}
	if cp.MapSlots <= 0 {
		cp.MapSlots = runtime.GOMAXPROCS(0)
	}
	if cp.ReduceSlots <= 0 {
		cp.ReduceSlots = runtime.GOMAXPROCS(0)
	}
	if cp.ShuffleMemory <= 0 {
		cp.ShuffleMemory = 128 << 20
	} else if cp.ShuffleMemory < 64<<10 {
		// Floor the task budget so a tiny setting degrades to frequent
		// small spills rather than one run per record.
		cp.ShuffleMemory = 64 << 10
	}
	if cp.CombineMemory <= 0 {
		cp.CombineMemory = 32 << 20
	}
	if cp.Sink == nil {
		cp.Sink = MemSinkFactory()
	}
	if cp.Progress == nil {
		cp.Progress = nopProgress{}
	}
	return &cp
}

// nopProgress is the default sink when a job has none configured.
type nopProgress struct{}

func (nopProgress) JobStart(JobInfo)          {}
func (nopProgress) PhaseStart(string, string) {}
func (nopProgress) TaskDone(string, string)   {}
func (nopProgress) JobDone(JobSummary)        {}

func compareBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return len(a) - len(b)
}

// Run executes the job to completion and returns its result: the job
// is compiled into its Plan, and the plan is handed to the job's
// Runner (DefaultRunner when unset).
func Run(ctx context.Context, job *Job) (*Result, error) {
	start := time.Now()
	plan, err := job.Compile()
	if err != nil {
		return nil, err
	}
	counters := NewCounters()
	counters.Add(CounterLaunchedJobs, 1)

	runner := job.Runner
	if runner == nil {
		runner, err = DefaultRunner()
		if err != nil {
			return nil, err
		}
	}
	progress := plan.job.Progress
	maps, reduces := plan.Tasks()
	progress.JobStart(JobInfo{
		Name: plan.Name, MapTasks: maps, ReduceTasks: reduces,
		Counters: counters, ShuffleIO: plan.shuffleIO,
	})
	out, err := runner.Run(ctx, plan, counters, progress)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Output:   out,
		Counters: counters,
		MapTasks: maps, ReduceTasks: reduces,
		Wallclock: time.Since(start),
	}
	progress.JobDone(Summary(plan.Name, res))
	return res, nil
}

// Driver runs a sequence of jobs and aggregates their counters, the way
// the paper reports measures (b) and (c) as "aggregates over all Hadoop
// jobs launched" for the multi-job APRIORI methods.
type Driver struct {
	// Aggregate accumulates the counters of every job run through the
	// driver.
	Aggregate *Counters
	// JobResults records per-job results in execution order.
	JobResults []*Result
	// Progress, if non-nil, is installed on jobs run through the driver
	// that have no sink of their own.
	Progress Progress
}

// NewDriver returns an empty driver.
func NewDriver() *Driver {
	return &Driver{Aggregate: NewCounters()}
}

// Run executes the job and folds its counters into the aggregate.
func (d *Driver) Run(ctx context.Context, job *Job) (*Result, error) {
	if job.Progress == nil {
		job.Progress = d.Progress
	}
	res, err := Run(ctx, job)
	if err != nil {
		return nil, err
	}
	d.Aggregate.Merge(res.Counters)
	d.JobResults = append(d.JobResults, res)
	return res, nil
}

// Wallclock returns the summed wallclock time of all jobs run so far.
func (d *Driver) Wallclock() time.Duration {
	var total time.Duration
	for _, r := range d.JobResults {
		total += r.Wallclock
	}
	return total
}
