package mapreduce

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"ngramstats/internal/extsort"
)

// Emit passes a key-value pair downstream: from a mapper into the
// shuffle, or from a reducer into the job output.
type Emit func(key, value []byte) error

// Mapper consumes input records and emits intermediate records. A fresh
// Mapper is created per map task via Job.NewMapper.
type Mapper interface {
	Map(key, value []byte, emit Emit) error
}

// Reducer consumes one group of intermediate records that share a key
// (under the job's group comparator) and emits output records. A fresh
// Reducer is created per reduce task via Job.NewReducer (and per map
// task for combiners via Job.NewCombiner).
type Reducer interface {
	Reduce(key []byte, values *Values, emit Emit) error
}

// TaskSetup is implemented by mappers/reducers that need per-task
// initialization (the analogue of Hadoop's setup()).
type TaskSetup interface {
	Setup(tc *TaskContext) error
}

// TaskCleanup is implemented by mappers/reducers that need a final
// flush after all input is consumed (the analogue of Hadoop's
// cleanup()). SUFFIX-σ uses this to flush its stacks (Algorithm 4).
type TaskCleanup interface {
	Cleanup(emit Emit) error
}

// MapperFunc adapts a function to the Mapper interface.
type MapperFunc func(key, value []byte, emit Emit) error

// Map implements Mapper.
func (f MapperFunc) Map(key, value []byte, emit Emit) error { return f(key, value, emit) }

// ReducerFunc adapts a function to the Reducer interface.
type ReducerFunc func(key []byte, values *Values, emit Emit) error

// Reduce implements Reducer.
func (f ReducerFunc) Reduce(key []byte, values *Values, emit Emit) error {
	return f(key, values, emit)
}

// Partitioner assigns a key to one of r reduce partitions. A
// partitioner that cannot parse a key must return
// MalformedKeyPartition: the runtime counts such keys in the
// MALFORMED_KEYS counter and fails the job after the map phase, rather
// than letting malformed keys silently skew one partition.
type Partitioner func(key []byte, r int) int

// MalformedKeyPartition is the sentinel a Partitioner returns for a
// key it cannot parse.
const MalformedKeyPartition = -1

// DefaultPartitioner hashes the whole key (FNV-1a), Hadoop's
// HashPartitioner equivalent.
func DefaultPartitioner(key []byte, r int) int {
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32() % uint32(r))
}

// TaskContext carries per-task information into Setup.
type TaskContext struct {
	// JobName is the name of the running job.
	JobName string
	// TaskID is the index of the task within its phase.
	TaskID int
	// Phase is "map", "combine", or "reduce".
	Phase string
	// Partition is the reduce partition (reduce phase only, else -1).
	Partition int
	// NumReducers is the number of reduce partitions.
	NumReducers int
	// Counters is the job's counter group, for custom counters.
	Counters *Counters
	// SideData is the job's read-only side data (distributed cache).
	SideData map[string][]byte
	// TempDir is the job's scratch directory.
	TempDir string
}

// Job configures one MapReduce job.
type Job struct {
	// Name identifies the job in logs and errors.
	Name string
	// Input provides the input splits. Required.
	Input Input
	// NewMapper creates a mapper per map task. Required.
	NewMapper func() Mapper
	// NewCombiner, if non-nil, creates a combiner applied to each map
	// task's sorted local output before it enters the shuffle (local
	// aggregation, Section V).
	NewCombiner func() Reducer
	// NewReducer creates a reducer per reduce task. If nil the job is
	// map-only: mapper output goes straight to the sink, partitioned but
	// unsorted.
	NewReducer func() Reducer
	// Partition assigns intermediate keys to reduce partitions. Defaults
	// to DefaultPartitioner. SUFFIX-σ overrides it to partition by first
	// term only.
	Partition Partitioner
	// Compare is the shuffle sort order. Defaults to bytewise comparison.
	// SUFFIX-σ overrides it with the reverse lexicographic comparator.
	Compare extsort.Compare
	// GroupCompare decides which consecutive sorted keys form one reduce
	// group. Defaults to Compare.
	GroupCompare extsort.Compare
	// NumReducers is the number of reduce partitions R. Defaults to
	// 2×GOMAXPROCS.
	NumReducers int
	// MapSlots bounds the number of concurrently executing map tasks,
	// like the per-cluster map slot count in the paper's setup
	// (Section VII-A). Defaults to GOMAXPROCS.
	MapSlots int
	// ReduceSlots bounds the number of concurrently executing reduce
	// tasks. Defaults to GOMAXPROCS.
	ReduceSlots int
	// ShuffleMemory is the memory budget in bytes of a single map task
	// for buffering its partitioned output — the analogue of Hadoop's
	// io.sort.mb, so total shuffle buffering approaches
	// MapSlots×ShuffleMemory. When a task's buffered bytes across all of
	// its partition sorters exceed the budget, the largest buffer is
	// gracefully spilled to a sorted on-disk run. Defaults to 128 MiB;
	// values below 64 KiB are clamped up to 64 KiB.
	ShuffleMemory int
	// CombineMemory is the per-map-task memory budget for combiner
	// buffering. Defaults to 32 MiB.
	CombineMemory int
	// ShuffleCodec selects the optional per-block compression of sealed
	// shuffle runs on top of the format's front-coding. Default is
	// extsort.CodecRaw; extsort.CodecFlate pays CPU for smaller
	// transfer and suits jobs whose values compress well.
	ShuffleCodec extsort.Codec
	// TempDir is the scratch directory for spills. Empty selects the
	// system default.
	TempDir string
	// Sink materializes the output. Defaults to MemSinkFactory.
	Sink SinkFactory
	// SideData is read-only data shared with every task, the analogue of
	// Hadoop's distributed cache (used by APRIORI-SCAN for the frequent
	// (k−1)-gram dictionary).
	SideData map[string][]byte
	// Progress, if non-nil, receives structured job lifecycle events
	// (job/phase starts, per-task completions, the final summary) plus
	// live handles on the job's counters and shuffle transfer. Wrap a
	// printf-style logger with LogProgress for the old Logf behaviour.
	Progress Progress
}

// Result is the outcome of a job.
type Result struct {
	// Output is the materialized job output.
	Output Dataset
	// Counters holds the job's counters.
	Counters *Counters
	// Wallclock is the total elapsed time of the job.
	Wallclock time.Duration
	// MapTasks and ReduceTasks are the task counts that ran.
	MapTasks, ReduceTasks int
}

func (j *Job) withDefaults() *Job {
	cp := *j
	if cp.Partition == nil {
		cp.Partition = DefaultPartitioner
	}
	if cp.Compare == nil {
		cp.Compare = extsort.Compare(compareBytes)
	}
	if cp.GroupCompare == nil {
		cp.GroupCompare = cp.Compare
	}
	if cp.NumReducers <= 0 {
		cp.NumReducers = 2 * runtime.GOMAXPROCS(0)
	}
	if cp.MapSlots <= 0 {
		cp.MapSlots = runtime.GOMAXPROCS(0)
	}
	if cp.ReduceSlots <= 0 {
		cp.ReduceSlots = runtime.GOMAXPROCS(0)
	}
	if cp.ShuffleMemory <= 0 {
		cp.ShuffleMemory = 128 << 20
	} else if cp.ShuffleMemory < 64<<10 {
		// Floor the task budget so a tiny setting degrades to frequent
		// small spills rather than one run per record.
		cp.ShuffleMemory = 64 << 10
	}
	if cp.CombineMemory <= 0 {
		cp.CombineMemory = 32 << 20
	}
	if cp.Sink == nil {
		cp.Sink = MemSinkFactory()
	}
	if cp.Progress == nil {
		cp.Progress = nopProgress{}
	}
	return &cp
}

// nopProgress is the default sink when a job has none configured.
type nopProgress struct{}

func (nopProgress) JobStart(JobInfo)          {}
func (nopProgress) PhaseStart(string, string) {}
func (nopProgress) TaskDone(string, string)   {}
func (nopProgress) JobDone(JobSummary)        {}

func compareBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return len(a) - len(b)
}

// Run executes the job to completion and returns its result.
func Run(ctx context.Context, job *Job) (*Result, error) {
	start := time.Now()
	j := job.withDefaults()
	if j.Input == nil {
		return nil, fmt.Errorf("mapreduce: job %q has no input", j.Name)
	}
	if j.NewMapper == nil {
		return nil, fmt.Errorf("mapreduce: job %q has no mapper", j.Name)
	}
	counters := NewCounters()
	counters.Add(CounterLaunchedJobs, 1)

	splits, err := j.Input.Splits()
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: input splits: %w", j.Name, err)
	}

	sink, err := j.Sink(j.NumReducers)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: sink: %w", j.Name, err)
	}

	res := &Result{Counters: counters, MapTasks: len(splits), ReduceTasks: j.NumReducers}

	if j.NewReducer == nil {
		j.Progress.JobStart(JobInfo{
			Name: j.Name, MapTasks: len(splits), Counters: counters,
		})
		if err := runMapOnly(ctx, j, splits, sink, counters); err != nil {
			return nil, err
		}
		res.ReduceTasks = 0
	} else {
		// Measured shuffle transfer: every map task's shuffle sorters
		// write encoded run bytes into this instance and reduce-side
		// merges account their reads to it; handing it to the progress
		// sink makes the transfer observable while the job runs.
		shuffleIO := &extsort.IOStats{}
		j.Progress.JobStart(JobInfo{
			Name: j.Name, MapTasks: len(splits), ReduceTasks: j.NumReducers,
			Counters: counters, ShuffleIO: shuffleIO,
		})
		if err := runMapReduce(ctx, j, splits, sink, shuffleIO, counters); err != nil {
			return nil, err
		}
	}

	out, err := sink.Finish()
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: finish sink: %w", j.Name, err)
	}
	res.Output = out
	res.Wallclock = time.Since(start)
	j.Progress.JobDone(Summary(j.Name, res))
	return res, nil
}

// discardRuns releases every run in a per-partition run set.
func discardRuns(runSets ...[]*extsort.Run) {
	for _, rs := range runSets {
		for _, r := range rs {
			r.Discard()
		}
	}
}

func runMapReduce(ctx context.Context, j *Job, splits []Split, sink Sink, shuffleIO *extsort.IOStats, counters *Counters) error {
	// Lock-free run hand-off: every map task owns its splits[taskID]
	// slot exclusively while running, so no synchronization is needed on
	// the write; the map-phase barrier in runTasks publishes all slots
	// to the reduce tasks.
	runsByTask := make([][][]*extsort.Run, len(splits))
	discardByTask := func() {
		for _, taskRuns := range runsByTask {
			discardRuns(taskRuns...)
		}
	}

	// sealKeep bounds the in-memory bytes one task may hand off in
	// sealed runs, keeping the job's total resident hand-off memory
	// near MapSlots×ShuffleMemory even when many more tasks than slots
	// finish before the reduce phase drains them.
	sealKeep := j.ShuffleMemory
	if len(splits) > j.MapSlots {
		sealKeep = j.ShuffleMemory * j.MapSlots / len(splits)
	}

	// ---- Map phase: each task sorts and spills its own output. ----
	mapStart := time.Now()
	j.Progress.PhaseStart(j.Name, "map")
	if err := runTasks(ctx, len(splits), j.MapSlots, func(ctx context.Context, taskID int) error {
		runs, err := runMapTask(ctx, j, taskID, splits[taskID], sealKeep, shuffleIO, counters)
		if err != nil {
			return err
		}
		runsByTask[taskID] = runs
		j.Progress.TaskDone(j.Name, "map")
		return nil
	}); err != nil {
		discardByTask()
		return fmt.Errorf("mapreduce: job %q: map phase: %w", j.Name, err)
	}
	counters.Add(CounterMapPhaseMillis, time.Since(mapStart).Milliseconds())
	if n := counters.Get(CounterMalformedKeys); n > 0 {
		discardByTask()
		return fmt.Errorf("mapreduce: job %q: partitioner rejected %d malformed intermediate keys", j.Name, n)
	}

	// ---- Shuffle: gather every map task's sealed runs per partition. ----
	perPart := make([][]*extsort.Run, j.NumReducers)
	for _, taskRuns := range runsByTask {
		for p, rs := range taskRuns {
			perPart[p] = append(perPart[p], rs...)
		}
	}
	runsByTask = nil

	// ---- Reduce phase: each task multi-way merges its partition. ----
	reduceStart := time.Now()
	j.Progress.PhaseStart(j.Name, "reduce")
	if err := runTasks(ctx, j.NumReducers, j.ReduceSlots, func(ctx context.Context, p int) error {
		runs := perPart[p]
		perPart[p] = nil // ownership passes to the reduce task
		if err := runReduceTask(ctx, j, p, runs, sink, counters); err != nil {
			return err
		}
		j.Progress.TaskDone(j.Name, "reduce")
		return nil
	}); err != nil {
		discardRuns(perPart...)
		return fmt.Errorf("mapreduce: job %q: reduce phase: %w", j.Name, err)
	}
	counters.Add(CounterReducePhaseMillis, time.Since(reduceStart).Milliseconds())
	counters.Add(CounterShuffleBytesWritten, shuffleIO.BytesWritten())
	counters.Add(CounterShuffleBytesRead, shuffleIO.BytesRead())
	return nil
}

// runMapTask executes one map task: it runs the mapper over its split,
// partitions and locally sorts the output in task-private sorters
// (routing it through the combiner first when configured), then seals
// each partition's sorter into sorted runs for the reduce-side merge.
// The per-record emit path acquires no locks: counters are resolved to
// atomic cells up front and all sorters are owned by this task alone.
func runMapTask(ctx context.Context, j *Job, taskID int, split Split, sealKeep int, shuffleIO *extsort.IOStats, counters *Counters) ([][]*extsort.Run, error) {
	mapper := j.NewMapper()
	tc := &TaskContext{
		JobName: j.Name, TaskID: taskID, Phase: "map", Partition: -1,
		NumReducers: j.NumReducers, Counters: counters, SideData: j.SideData, TempDir: j.TempDir,
	}
	if s, ok := mapper.(TaskSetup); ok {
		if err := s.Setup(tc); err != nil {
			return nil, fmt.Errorf("map task %d setup: %w", taskID, err)
		}
	}

	mapOutRecs := counters.Counter(CounterMapOutputRecords)
	mapOutBytes := counters.Counter(CounterMapOutputBytes)
	shuffleBytes := counters.Counter(CounterReduceShuffleBytes)
	malformedKeys := counters.Counter(CounterMalformedKeys)
	spilled := counters.Counter(CounterSpilledRecords)
	onSpill := func(n int) { spilled.Add(int64(n)) }

	// Task-private per-partition output sorters, created on first use so
	// tasks touching few partitions stay cheap. Each sorter's own budget
	// is the full task budget; the shared accounting below usually
	// triggers a graceful spill first.
	out := make([]*extsort.Sorter, j.NumReducers)
	discardOut := func() {
		for _, s := range out {
			if s != nil {
				s.Discard()
			}
		}
	}

	// Shared task-level memory accounting: when the buffered bytes
	// across all partition sorters exceed ShuffleMemory, spill the
	// largest buffer to a sorted on-disk run (graceful degradation, like
	// Hadoop's io.sort.mb buffer flush).
	var buffered int
	addOut := func(p int, key, value []byte) error {
		s := out[p]
		if s == nil {
			s = extsort.NewSorter(extsort.Options{
				MemoryBudget: j.ShuffleMemory,
				TempDir:      j.TempDir,
				Compare:      j.Compare,
				OnSpill:      onSpill,
				Codec:        j.ShuffleCodec,
				Stats:        shuffleIO,
			})
			out[p] = s
		}
		before := s.MemoryInUse()
		if err := s.Add(key, value); err != nil {
			return err
		}
		buffered += s.MemoryInUse() - before
		if buffered < j.ShuffleMemory {
			return nil
		}
		// Spill largest-first until under half the budget. The
		// hysteresis matters: evicting a single buffer per trigger
		// would pin `buffered` at the budget when many partitions hold
		// uniformly small buffers and degenerate into a per-record
		// spill storm of tiny runs.
		for buffered >= j.ShuffleMemory/2 {
			big := -1
			for q, sq := range out {
				if sq != nil && (big < 0 || sq.MemoryInUse() > out[big].MemoryInUse()) {
					big = q
				}
			}
			if big < 0 || out[big].MemoryInUse() == 0 {
				break
			}
			buffered -= out[big].MemoryInUse()
			if err := out[big].Spill(); err != nil {
				return err
			}
		}
		return nil
	}

	var local []*extsort.Sorter // per-partition combiner buffers
	combine := j.NewCombiner != nil
	if combine {
		local = make([]*extsort.Sorter, j.NumReducers)
		per := j.CombineMemory / j.NumReducers
		if per < 256<<10 {
			per = 256 << 10
		}
		for p := range local {
			local[p] = extsort.NewSorter(extsort.Options{
				MemoryBudget: per,
				TempDir:      j.TempDir,
				Compare:      j.Compare,
				OnSpill:      onSpill,
			})
		}
	}
	discardLocal := func() {
		for _, s := range local {
			if s != nil {
				s.Discard()
			}
		}
	}
	discardAll := func() {
		discardLocal()
		discardOut()
	}

	emit := Emit(func(key, value []byte) error {
		mapOutRecs.Add(1)
		mapOutBytes.Add(int64(len(key) + len(value)))
		p := j.Partition(key, j.NumReducers)
		if p == MalformedKeyPartition {
			// Count every unparseable key and keep the task running so
			// the post-map-phase check can report the full tally; route
			// the record to partition 0 in the meantime (the job fails
			// before any reducer sees it).
			malformedKeys.Add(1)
			p = 0
		}
		if p < 0 || p >= j.NumReducers {
			return fmt.Errorf("partitioner returned %d for %d reducers", p, j.NumReducers)
		}
		if combine {
			return local[p].Add(key, value)
		}
		shuffleBytes.Add(int64(len(key) + len(value)))
		return addOut(p, key, value)
	})

	var n int64
	err := split.Records(func(key, value []byte) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		n++
		return mapper.Map(key, value, emit)
	})
	counters.Add(CounterMapInputRecords, n)
	if err != nil {
		discardAll()
		return nil, fmt.Errorf("map task %d: %w", taskID, err)
	}
	if c, ok := mapper.(TaskCleanup); ok {
		if err := c.Cleanup(emit); err != nil {
			discardAll()
			return nil, fmt.Errorf("map task %d cleanup: %w", taskID, err)
		}
	}

	if combine {
		// Run the combiner over each partition's sorted local output and
		// feed the combined records into the task's output sorters.
		for p, sorter := range local {
			local[p] = nil
			add := func(key, value []byte) error { return addOut(p, key, value) }
			if err := combinePartition(ctx, j, taskID, p, sorter, add, counters); err != nil {
				discardAll()
				return nil, fmt.Errorf("map task %d combine partition %d: %w", taskID, p, err)
			}
		}
	}

	// Seal each partition's sorter into its sorted runs and hand them
	// off; from here the runs are owned by the caller (and ultimately by
	// the reduce-side merge). Sealed in-memory runs stay resident until
	// their reduce task consumes them, so when more map tasks exist than
	// slots the remainders of finished tasks would accumulate past
	// MapSlots×ShuffleMemory — in that case spill them to disk first
	// (Hadoop's always-on-disk final map output, applied only when the
	// bound is actually at risk).
	sealStart := time.Now()
	if buffered > sealKeep {
		for _, s := range out {
			if s != nil && s.MemoryInUse() > 0 {
				if err := s.Spill(); err != nil {
					discardAll()
					return nil, fmt.Errorf("map task %d final spill: %w", taskID, err)
				}
			}
		}
	}
	taskRuns := make([][]*extsort.Run, j.NumReducers)
	var sealedRuns int64
	for p, s := range out {
		if s == nil {
			continue
		}
		out[p] = nil
		runs, err := s.Seal()
		if err != nil {
			discardRuns(taskRuns...)
			discardAll()
			return nil, fmt.Errorf("map task %d seal partition %d: %w", taskID, p, err)
		}
		taskRuns[p] = runs
		sealedRuns += int64(len(runs))
	}
	counters.Add(CounterShuffleRuns, sealedRuns)
	counters.Add(CounterShuffleMicros, time.Since(sealStart).Microseconds())
	return taskRuns, nil
}

// combinePartition sorts one partition's local map output, runs the
// combiner over its groups, and forwards the combined records through
// add into the task's shuffle output for that partition.
func combinePartition(ctx context.Context, j *Job, taskID, p int, sorter *extsort.Sorter, add func(key, value []byte) error, counters *Counters) error {
	combiner := j.NewCombiner()
	tc := &TaskContext{
		JobName: j.Name, TaskID: taskID, Phase: "combine", Partition: p,
		NumReducers: j.NumReducers, Counters: counters, SideData: j.SideData, TempDir: j.TempDir,
	}
	if s, ok := combiner.(TaskSetup); ok {
		if err := s.Setup(tc); err != nil {
			return err
		}
	}
	it, err := sorter.Sort()
	if err != nil {
		return err
	}
	defer it.Close()
	combineOut := counters.Counter(CounterCombineOutputRecs)
	shuffleBytes := counters.Counter(CounterReduceShuffleBytes)
	emit := Emit(func(key, value []byte) error {
		combineOut.Add(1)
		shuffleBytes.Add(int64(len(key) + len(value)))
		return add(key, value)
	})
	vals := newValues(it, j.GroupCompare)
	for vals.nextGroup() {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := combiner.Reduce(vals.Key(), vals, emit); err != nil {
			return err
		}
		counters.Add(CounterCombineInputRecs, vals.Count())
	}
	if err := vals.Err(); err != nil {
		return err
	}
	if c, ok := combiner.(TaskCleanup); ok {
		if err := c.Cleanup(emit); err != nil {
			return err
		}
	}
	return nil
}

// runReduceTask multi-way merges every map task's sealed runs for
// partition p and feeds the merged groups to the reducer. It takes
// ownership of runs.
func runReduceTask(ctx context.Context, j *Job, p int, runs []*extsort.Run, sink Sink, counters *Counters) error {
	reducer := j.NewReducer()
	tc := &TaskContext{
		JobName: j.Name, TaskID: p, Phase: "reduce", Partition: p,
		NumReducers: j.NumReducers, Counters: counters, SideData: j.SideData, TempDir: j.TempDir,
	}
	if s, ok := reducer.(TaskSetup); ok {
		if err := s.Setup(tc); err != nil {
			discardRuns(runs)
			return fmt.Errorf("reduce task %d setup: %w", p, err)
		}
	}
	w, err := sink.Writer(p)
	if err != nil {
		discardRuns(runs)
		return fmt.Errorf("reduce task %d: sink writer: %w", p, err)
	}
	reduceOutRecs := counters.Counter(CounterReduceOutputRecs)
	reduceOutBytes := counters.Counter(CounterReduceOutputBytes)
	emit := Emit(func(key, value []byte) error {
		reduceOutRecs.Add(1)
		reduceOutBytes.Add(int64(len(key) + len(value)))
		return w.Write(key, value)
	})
	mergeStart := time.Now()
	counters.Add(CounterMergeFanIn, int64(len(runs)))
	it, err := extsort.MergeRuns(j.Compare, runs) // takes ownership of runs
	if err != nil {
		w.Close()
		return fmt.Errorf("reduce task %d: open merge: %w", p, err)
	}
	counters.Add(CounterShuffleMicros, time.Since(mergeStart).Microseconds())
	defer it.Close()

	vals := newValues(it, j.GroupCompare)
	for vals.nextGroup() {
		if err := ctx.Err(); err != nil {
			w.Close()
			return err
		}
		counters.Add(CounterReduceInputGroups, 1)
		if err := reducer.Reduce(vals.Key(), vals, emit); err != nil {
			w.Close()
			return fmt.Errorf("reduce task %d: %w", p, err)
		}
		counters.Add(CounterReduceInputRecords, vals.Count())
	}
	if err := vals.Err(); err != nil {
		w.Close()
		return fmt.Errorf("reduce task %d: merge: %w", p, err)
	}
	if c, ok := reducer.(TaskCleanup); ok {
		if err := c.Cleanup(emit); err != nil {
			w.Close()
			return fmt.Errorf("reduce task %d cleanup: %w", p, err)
		}
	}
	if err := w.Close(); err != nil {
		return fmt.Errorf("reduce task %d: close sink: %w", p, err)
	}
	return nil
}

func runMapOnly(ctx context.Context, j *Job, splits []Split, sink Sink, counters *Counters) error {
	// Map-only jobs write each task's output to a per-task writer on the
	// task's own partition index modulo R, preserving partitioning
	// without a shuffle.
	j.Progress.PhaseStart(j.Name, "map")
	return runTasks(ctx, len(splits), j.MapSlots, func(ctx context.Context, taskID int) error {
		mapper := j.NewMapper()
		tc := &TaskContext{
			JobName: j.Name, TaskID: taskID, Phase: "map", Partition: -1,
			NumReducers: j.NumReducers, Counters: counters, SideData: j.SideData, TempDir: j.TempDir,
		}
		if s, ok := mapper.(TaskSetup); ok {
			if err := s.Setup(tc); err != nil {
				return fmt.Errorf("map task %d setup: %w", taskID, err)
			}
		}
		w, err := sink.Writer(taskID % j.NumReducers)
		if err != nil {
			return fmt.Errorf("map task %d: sink writer: %w", taskID, err)
		}
		mapOutRecs := counters.Counter(CounterMapOutputRecords)
		mapOutBytes := counters.Counter(CounterMapOutputBytes)
		emit := Emit(func(key, value []byte) error {
			mapOutRecs.Add(1)
			mapOutBytes.Add(int64(len(key) + len(value)))
			return w.Write(key, value)
		})
		var n int64
		err = splits[taskID].Records(func(key, value []byte) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			n++
			return mapper.Map(key, value, emit)
		})
		counters.Add(CounterMapInputRecords, n)
		if err != nil {
			w.Close()
			return fmt.Errorf("map task %d: %w", taskID, err)
		}
		if c, ok := mapper.(TaskCleanup); ok {
			if err := c.Cleanup(emit); err != nil {
				w.Close()
				return fmt.Errorf("map task %d cleanup: %w", taskID, err)
			}
		}
		if err := w.Close(); err != nil {
			return err
		}
		j.Progress.TaskDone(j.Name, "map")
		return nil
	})
}

// runTasks executes n tasks with at most slots running concurrently,
// returning the first error. A panicking task is converted into an
// error carrying its stack.
func runTasks(ctx context.Context, n, slots int, task func(ctx context.Context, i int) error) error {
	if n == 0 {
		return nil
	}
	if slots > n {
		slots = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	sem := make(chan struct{}, slots)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error

	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}

	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			defer func() {
				if r := recover(); r != nil {
					fail(fmt.Errorf("task %d panicked: %v\n%s", i, r, debug.Stack()))
				}
			}()
			if err := task(ctx, i); err != nil {
				fail(err)
			}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// Driver runs a sequence of jobs and aggregates their counters, the way
// the paper reports measures (b) and (c) as "aggregates over all Hadoop
// jobs launched" for the multi-job APRIORI methods.
type Driver struct {
	// Aggregate accumulates the counters of every job run through the
	// driver.
	Aggregate *Counters
	// JobResults records per-job results in execution order.
	JobResults []*Result
	// Progress, if non-nil, is installed on jobs run through the driver
	// that have no sink of their own.
	Progress Progress
}

// NewDriver returns an empty driver.
func NewDriver() *Driver {
	return &Driver{Aggregate: NewCounters()}
}

// Run executes the job and folds its counters into the aggregate.
func (d *Driver) Run(ctx context.Context, job *Job) (*Result, error) {
	if job.Progress == nil {
		job.Progress = d.Progress
	}
	res, err := Run(ctx, job)
	if err != nil {
		return nil, err
	}
	d.Aggregate.Merge(res.Counters)
	d.JobResults = append(d.JobResults, res)
	return res, nil
}

// Wallclock returns the summed wallclock time of all jobs run so far.
func (d *Driver) Wallclock() time.Duration {
	var total time.Duration
	for _, r := range d.JobResults {
		total += r.Wallclock
	}
	return total
}
