package mapreduce

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Standard counter names, mirroring the Hadoop counters the paper reads
// for its measurements (Section VII-A): "bytes transferred" is
// MAP_OUTPUT_BYTES and "# records" is MAP_OUTPUT_RECORDS, both aggregated
// over all jobs a method launches.
const (
	CounterMapInputRecords    = "MAP_INPUT_RECORDS"
	CounterMapOutputRecords   = "MAP_OUTPUT_RECORDS"
	CounterMapOutputBytes     = "MAP_OUTPUT_BYTES"
	CounterCombineInputRecs   = "COMBINE_INPUT_RECORDS"
	CounterCombineOutputRecs  = "COMBINE_OUTPUT_RECORDS"
	CounterReduceShuffleBytes = "REDUCE_SHUFFLE_BYTES"
	CounterReduceInputGroups  = "REDUCE_INPUT_GROUPS"
	CounterReduceInputRecords = "REDUCE_INPUT_RECORDS"
	CounterReduceOutputRecs   = "REDUCE_OUTPUT_RECORDS"
	CounterReduceOutputBytes  = "REDUCE_OUTPUT_BYTES"
	CounterSpilledRecords     = "SPILLED_RECORDS"
	CounterLaunchedJobs       = "LAUNCHED_JOBS"
	CounterMapPhaseMillis     = "MAP_PHASE_MILLIS"
	CounterReducePhaseMillis  = "REDUCE_PHASE_MILLIS"

	// Shuffle counters for the map-side spill / reduce-side merge
	// architecture.
	//
	// SHUFFLE_SEALED_RUNS counts the sorted runs map tasks sealed and
	// handed off to the reduce side. SHUFFLE_MERGE_FAN_IN sums the number
	// of runs each reduce task merged (divide by reduce tasks for the
	// average fan-in). SHUFFLE_MICROS accumulates the microseconds tasks
	// spent in the shuffle hand-off itself — map-side sealing plus
	// reduce-side merge opening — summed across tasks, not wall-clock of
	// a phase (microseconds, because individual hand-offs are routinely
	// sub-millisecond and would otherwise truncate to zero).
	CounterShuffleRuns   = "SHUFFLE_SEALED_RUNS"
	CounterMergeFanIn    = "SHUFFLE_MERGE_FAN_IN"
	CounterShuffleMicros = "SHUFFLE_MICROS"

	// Measured shuffle transfer, in encoded run-format bytes (package
	// extsort): SHUFFLE_BYTES_WRITTEN counts every byte of sealed run
	// data map tasks produced — spill files and sealed in-memory runs
	// alike, after front-coding and the optional block codec — and
	// SHUFFLE_BYTES_READ counts the bytes reduce-side merges actually
	// consumed. Unlike REDUCE_SHUFFLE_BYTES (the logical key+value
	// bytes entering the shuffle, an estimate of transfer), these are
	// the real encoded sizes the paper's "bytes transferred" measure
	// cares about; on a fully drained job read equals written.
	CounterShuffleBytesWritten = "SHUFFLE_BYTES_WRITTEN"
	CounterShuffleBytesRead    = "SHUFFLE_BYTES_READ"

	// MALFORMED_KEYS counts intermediate keys the partitioner could not
	// parse (it returned MalformedKeyPartition). Any nonzero count
	// fails the job after the map phase instead of silently routing
	// garbage to partition 0.
	CounterMalformedKeys = "MALFORMED_KEYS"

	// Process-runner counters. WORKER_PROCS counts the worker OS
	// processes spawned over the life of the job (every attempt spawns
	// one); TASKS_RETRIED counts task attempts that failed and were
	// retried on a fresh worker. Both stay zero under the in-process
	// LocalRunner.
	CounterWorkerProcs  = "WORKER_PROCS"
	CounterTasksRetried = "TASKS_RETRIED"

	// Net-runner counters. NET_WORKERS counts worker registrations at
	// the coordinator over the life of the job; TASKS_SPECULATED counts
	// speculative (duplicate) attempts launched against stragglers;
	// LEASES_EXPIRED counts task leases that lapsed without heartbeat
	// renewal and were reassigned; SHUFFLE_FETCH_BYTES counts the
	// encoded run bytes reduce workers pulled over the wire from the
	// shuffle-transfer services of the map workers — including bytes
	// fetched by attempts that lost a speculative race, so it measures
	// real transfer, unlike SHUFFLE_BYTES_READ which stays equal to the
	// winner-only merge volume. All four stay zero under the local and
	// process backends.
	CounterNetWorkers        = "NET_WORKERS"
	CounterTasksSpeculated   = "TASKS_SPECULATED"
	CounterLeasesExpired     = "LEASES_EXPIRED"
	CounterShuffleFetchBytes = "SHUFFLE_FETCH_BYTES"
)

// Counters is a concurrency-safe named counter group, the equivalent of
// a Hadoop job's counter set. The zero value is not usable; call
// NewCounters.
type Counters struct {
	mu sync.Mutex
	m  map[string]*atomic.Int64
}

// NewCounters returns an empty counter group.
func NewCounters() *Counters {
	return &Counters{m: make(map[string]*atomic.Int64)}
}

func (c *Counters) counter(name string) *atomic.Int64 {
	c.mu.Lock()
	v, ok := c.m[name]
	if !ok {
		v = new(atomic.Int64)
		c.m[name] = v
	}
	c.mu.Unlock()
	return v
}

// Add adds delta to the named counter, creating it if needed.
func (c *Counters) Add(name string, delta int64) {
	c.counter(name).Add(delta)
}

// Counter returns the atomic cell backing the named counter, creating
// it if needed. Hot paths — the per-record map emit path above all —
// resolve their counters once per task and then update the returned
// cell lock-free, instead of paying the name lookup (and its mutex) per
// record.
func (c *Counters) Counter(name string) *atomic.Int64 {
	return c.counter(name)
}

// Get returns the value of the named counter (zero if absent).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	v, ok := c.m[name]
	c.mu.Unlock()
	if !ok {
		return 0
	}
	return v.Load()
}

// Merge adds every counter of other into c. Used by the Driver to
// aggregate measures "over all Hadoop jobs launched" as the paper does
// for APRIORI-SCAN and APRIORI-INDEX.
func (c *Counters) Merge(other *Counters) {
	if other == nil {
		return
	}
	other.mu.Lock()
	names := make([]string, 0, len(other.m))
	for name := range other.m {
		names = append(names, name)
	}
	vals := make([]int64, len(names))
	for i, name := range names {
		vals[i] = other.m[name].Load()
	}
	other.mu.Unlock()
	for i, name := range names {
		c.Add(name, vals[i])
	}
}

// MergeSnapshot adds every entry of a plain counter map into c — the
// Merge counterpart for counters that crossed a process boundary as a
// serialized snapshot (worker results).
func (c *Counters) MergeSnapshot(snap map[string]int64) {
	for name, v := range snap {
		c.Add(name, v)
	}
}

// Snapshot returns a copy of all counters as a plain map. A map
// carries no order; use Sorted or String where deterministic ordering
// matters (reports, golden files, worker-result comparison).
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for name, v := range c.m {
		out[name] = v.Load()
	}
	return out
}

// CounterValue is one named counter reading.
type CounterValue struct {
	Name  string
	Value int64
}

// Sorted returns a point-in-time copy of all counters ordered by name
// — the deterministic view of the group. It is safe to call while
// other goroutines Add or Merge.
func (c *Counters) Sorted() []CounterValue {
	c.mu.Lock()
	out := make([]CounterValue, 0, len(c.m))
	for name, v := range c.m {
		out = append(out, CounterValue{Name: name, Value: v.Load()})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// String renders the counters sorted by name, one per line.
func (c *Counters) String() string {
	var b strings.Builder
	for _, cv := range c.Sorted() {
		fmt.Fprintf(&b, "%s=%d\n", cv.Name, cv.Value)
	}
	return b.String()
}
