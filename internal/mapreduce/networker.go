package mapreduce

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"path/filepath"
	"runtime/debug"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ngramstats/internal/extsort"
)

// NetWorkerEnv is the environment variable whose presence switches a
// process into net-worker mode (see RunNetWorkerIfRequested): its
// value is the coordinator address to connect to, host:port or
// net://host:port.
const NetWorkerEnv = "NGRAMS_NET_WORKER"

// netWorkerOneshotEnv marks a worker spawned by a NetRunner for one
// job: it exits after the job drains instead of re-registering.
const netWorkerOneshotEnv = "NGRAMS_NET_ONESHOT"

// netWorkerScratchEnv overrides where a net worker roots its scratch
// space. A NetRunner points its spawned workers into the job workdir,
// so even a SIGKILLed worker leaks nothing past the job.
const netWorkerScratchEnv = "NGRAMS_NET_SCRATCH"

// NetWorkerMuteEnv is a test hook: when set to "<phase>:<taskID>", a
// net worker that leases that task (first attempt only) goes silent —
// no heartbeats, no result — for several lease TTLs. Fault drills use
// it to assert that the coordinator expires the lease and reassigns
// the task.
const NetWorkerMuteEnv = "NGRAMS_NET_MUTE"

// RunNetWorkerIfRequested turns the current process into a net-runner
// worker when NetWorkerEnv is set, and never returns in that case: it
// connects to the coordinator named by the variable, serves tasks
// until drained (or until SIGINT/SIGTERM), and exits. It is called by
// RunWorkerIfRequested, so every binary wired for the process runner
// is a spawnable net worker too; it is a no-op otherwise.
func RunNetWorkerIfRequested() {
	addr := os.Getenv(NetWorkerEnv)
	if addr == "" {
		return
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	err := runNetWorker(ctx, addr, os.Getenv(netWorkerOneshotEnv) != "")
	stop()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ngrams net worker: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// RunNetWorker runs a persistent net-runner worker against the
// coordinator at addr (host:port or net://host:port): it registers,
// serves tasks until the job drains, and re-registers for the next
// job, until ctx is cancelled. This is the library entry behind
// `ngrams -worker-connect`.
func RunNetWorker(ctx context.Context, addr string) error {
	return runNetWorker(ctx, addr, false)
}

func runNetWorker(ctx context.Context, addr string, oneshot bool) error {
	addr = strings.TrimPrefix(addr, "net://")
	scratch, err := netWorkerScratchDir()
	if err != nil {
		return err
	}
	defer os.RemoveAll(scratch)
	a := &netAgent{
		coordAddr: addr,
		coordURL:  "http://" + addr,
		client:    &http.Client{},
		scratch:   scratch,
		oneshot:   oneshot,
		served:    make(map[string]string),
	}
	if err := a.startShuffleServer(ctx); err != nil {
		return err
	}
	defer a.srv.Close()
	for {
		reg, err := a.register(ctx)
		if err != nil {
			return err
		}
		if reg == nil {
			return nil // drained, cancelled, or coordinator gone for good
		}
		a.serveJob(ctx, reg)
		a.clearServed()
		if a.oneshot || ctx.Err() != nil {
			return nil
		}
	}
}

func netWorkerScratchDir() (string, error) {
	if root := os.Getenv(netWorkerScratchEnv); root != "" {
		return os.MkdirTemp(root, "worker-*")
	}
	return os.MkdirTemp("", "ngrams-net-worker-*")
}

// netAgent is one worker process's connection to a coordinator plus
// its shuffle-transfer service.
type netAgent struct {
	coordAddr string
	coordURL  string
	client    *http.Client
	scratch   string
	oneshot   bool

	srv     *http.Server
	selfURL string // base URL of the shuffle service
	worker  string // coordinator-assigned id for the current job

	mu     sync.Mutex
	served map[string]string // run id → local file path
	runSeq int
}

// startShuffleServer waits for the coordinator to be dialable (which
// also reveals the local interface facing it), then starts the HTTP
// server that serves this worker's sealed map runs.
func (a *netAgent) startShuffleServer(ctx context.Context) error {
	var localIP string
	backoff := 100 * time.Millisecond
	start := time.Now()
	for {
		conn, err := net.DialTimeout("tcp", a.coordAddr, 2*time.Second)
		if err == nil {
			localIP, _, _ = net.SplitHostPort(conn.LocalAddr().String())
			conn.Close()
			break
		}
		if a.oneshot && time.Since(start) > 30*time.Second {
			return fmt.Errorf("dial coordinator %s: %w", a.coordAddr, err)
		}
		if !sleepCtx(ctx, backoff) {
			return ctx.Err()
		}
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(localIP, "0"))
	if err != nil {
		return fmt.Errorf("listen shuffle service: %w", err)
	}
	a.selfURL = "http://" + ln.Addr().String()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /mr/run/{id}", a.handleRun)
	a.srv = &http.Server{Handler: mux}
	go a.srv.Serve(ln)
	return nil
}

// handleRun serves one sealed run file; http.ServeContent supplies the
// ranged transfer the reduce-side block reader asks for.
func (a *netAgent) handleRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	a.mu.Lock()
	path := a.served[id]
	a.mu.Unlock()
	if path == "" {
		http.NotFound(w, r)
		return
	}
	f, err := os.Open(path)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	defer f.Close()
	http.ServeContent(w, r, "run", time.Time{}, f)
}

func (a *netAgent) serve(path string) string {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.runSeq++
	id := fmt.Sprintf("r%d", a.runSeq)
	a.served[id] = path
	return id
}

func (a *netAgent) unserve(ids []string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, id := range ids {
		delete(a.served, id)
	}
}

func (a *netAgent) clearServed() {
	a.mu.Lock()
	defer a.mu.Unlock()
	clear(a.served)
}

// register announces the agent to the coordinator, retrying while it
// is unreachable or between jobs. A nil, nil return means exit
// cleanly: the context ended, or a oneshot worker found the job over.
func (a *netAgent) register(ctx context.Context) (*netRegisterResp, error) {
	backoff := 100 * time.Millisecond
	start := time.Now()
	for {
		var resp netRegisterResp
		err := a.postJSON(ctx, a.coordURL+"/mr/register", netRegisterReq{Addr: a.selfURL, Pid: os.Getpid()}, &resp)
		if err == nil && !resp.Drain {
			a.worker = resp.Worker
			return &resp, nil
		}
		if ctx.Err() != nil {
			return nil, nil
		}
		if a.oneshot {
			if err == nil { // drained before we got a task
				return nil, nil
			}
			if time.Since(start) > 30*time.Second {
				return nil, fmt.Errorf("register with coordinator %s: %w", a.coordAddr, err)
			}
		}
		if !sleepCtx(ctx, backoff) {
			return nil, nil
		}
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
}

// serveJob polls for tasks and executes them until the job drains, the
// coordinator tells the agent to re-register, or it becomes
// unreachable.
func (a *netAgent) serveJob(ctx context.Context, reg *netRegisterResp) {
	cfg := reg.Job
	ttl := time.Duration(cfg.LeaseTTLMillis) * time.Millisecond
	if ttl <= 0 {
		ttl = 10 * time.Second
	}
	poll := min(max(ttl/5, 10*time.Millisecond), 500*time.Millisecond)
	jobdir, err := os.MkdirTemp(a.scratch, "job-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ngrams net worker: %v\n", err)
		return
	}
	// The jobdir holds every attempt's scratch and the sealed run files
	// behind the served shuffle URLs, which must outlive their tasks —
	// it is removed only once the whole job is over.
	defer os.RemoveAll(jobdir)
	side, err := a.fetchSideData(ctx, cfg.SideKeys)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ngrams net worker: %v\n", err)
		return
	}
	errs := 0
	for {
		if ctx.Err() != nil {
			a.goodbye()
			return
		}
		var pr netPollResp
		if err := a.postJSON(ctx, a.coordURL+"/mr/poll", netPollReq{Worker: a.worker}, &pr); err != nil {
			if errs++; errs > 8 {
				return // coordinator gone: the job is over
			}
			sleepCtx(ctx, poll)
			continue
		}
		errs = 0
		switch pr.Status {
		case netStatusWait:
			sleepCtx(ctx, poll)
		case netStatusTask:
			a.execute(ctx, cfg, ttl, jobdir, side, pr.Task)
		default: // drain, reregister
			return
		}
	}
}

func (a *netAgent) fetchSideData(ctx context.Context, keys []string) (map[string][]byte, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	side := make(map[string][]byte, len(keys))
	for _, key := range keys {
		data, err := a.get(ctx, a.coordURL+"/mr/side/"+url.PathEscape(key))
		if err != nil {
			return nil, fmt.Errorf("fetch side data %q: %w", key, err)
		}
		side[key] = data
	}
	return side, nil
}

// execute runs one leased task: heartbeats while it works, executes
// the phase with the shared task machinery, publishes map runs on the
// shuffle service, uploads reduce/map-only output, and reports the
// result. A cancelled lease (speculative race lost, or expiry after a
// stall) aborts the attempt and discards its artifacts.
func (a *netAgent) execute(ctx context.Context, cfg netJobConfig, ttl time.Duration, jobdir string, side map[string][]byte, task *netTask) {
	target := fmt.Sprintf("%s:%d", task.Phase, task.Task)
	if c := os.Getenv(WorkerCrashEnv); c == target && task.Attempt == 1 {
		os.Exit(3) // injected crash: die mid-task, shuffle service and all
	}
	if m := os.Getenv(NetWorkerMuteEnv); m == target && task.Attempt == 1 {
		sleepCtx(ctx, 6*ttl) // hold the lease silently until it expires
		return
	}

	tctx, cancel := context.WithCancel(ctx)
	defer cancel()
	hbDone := a.heartbeat(tctx, cancel, task.Lease, ttl)
	defer func() { cancel(); <-hbDone }()

	taskdir := filepath.Join(jobdir, task.Lease)
	if err := os.Mkdir(taskdir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "ngrams net worker: %v\n", err)
		return
	}
	res, served, err := a.runTask(tctx, cfg, task, taskdir, side)
	if err != nil {
		a.unserve(served)
		os.RemoveAll(taskdir)
		if tctx.Err() != nil {
			return // cancelled: nothing worth reporting
		}
		res.Err = err.Error()
		a.report(tctx, res)
		return
	}
	if task.Phase != "map" {
		if err := a.upload(tctx, task.Lease, filepath.Join(taskdir, "out.rec")); err != nil {
			os.RemoveAll(taskdir)
			return // the lease will expire or the task be reassigned
		}
	}
	accepted := a.report(tctx, res)
	if task.Phase == "map" && accepted {
		// Keep the taskdir: its sealed run files back the published
		// shuffle URLs until the job drains.
		return
	}
	a.unserve(served)
	os.RemoveAll(taskdir)
}

// runTask executes the task body, converting panics in user map/reduce
// code into reportable failures. The returned result is always
// non-nil.
func (a *netAgent) runTask(ctx context.Context, cfg netJobConfig, task *netTask, taskdir string, side map[string][]byte) (res *netResultReq, served []string, err error) {
	res = &netResultReq{Lease: task.Lease, Worker: a.worker}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("worker panic: %v\n%s", r, debug.Stack())
		}
	}()

	j, err := buildProgram(&Spec{Program: cfg.Program, Config: cfg.Config})
	if err != nil {
		return res, nil, err
	}
	j.Name = cfg.Name
	j.NumReducers = cfg.NumReducers
	j.ShuffleMemory = cfg.ShuffleMemory
	j.CombineMemory = cfg.CombineMemory
	j.ShuffleCodec = extsort.Codec(cfg.Codec)
	j.TempDir = taskdir
	j.SideData = side
	j = j.withDefaults()

	counters := NewCounters()
	shuffleIO := &extsort.IOStats{}
	var fetchBytes atomic.Int64

	switch task.Phase {
	case "map":
		splitPath := filepath.Join(taskdir, "split.rec")
		if err := a.download(ctx, task.SplitURL, splitPath); err != nil {
			return res, nil, fmt.Errorf("fetch split: %w", err)
		}
		taskRuns, err := runMapTask(ctx, j, task.Task, fileSplit{path: splitPath}, -1, shuffleIO, counters)
		if err != nil {
			return res, nil, err
		}
		os.Remove(splitPath)
		res.Runs = make([][]netRunRef, len(taskRuns))
		for p, runs := range taskRuns {
			for _, run := range runs {
				if run.InMemory() {
					discardRuns(taskRuns...)
					return res, served, fmt.Errorf("map task %d sealed an in-memory run for partition %d", task.Task, p)
				}
				st, err := os.Stat(run.Path())
				if err != nil {
					discardRuns(taskRuns...)
					return res, served, err
				}
				id := a.serve(run.Path())
				served = append(served, id)
				res.Runs[p] = append(res.Runs[p], netRunRef{
					URL: a.selfURL + "/mr/run/" + id, Worker: a.worker,
					Size: st.Size(), Records: run.Len(),
				})
			}
		}
	case "map-only":
		splitPath := filepath.Join(taskdir, "split.rec")
		if err := a.download(ctx, task.SplitURL, splitPath); err != nil {
			return res, nil, fmt.Errorf("fetch split: %w", err)
		}
		w, err := newRecordFileWriter(filepath.Join(taskdir, "out.rec"))
		if err != nil {
			return res, nil, err
		}
		taskErr := runMapOnlyTask(ctx, j, task.Task, fileSplit{path: splitPath}, w, counters)
		closeErr := w.Close()
		if taskErr != nil {
			return res, nil, taskErr
		}
		if closeErr != nil {
			return res, nil, closeErr
		}
		res.OutRecords = w.n
	case "reduce":
		var lost lostRuns
		runs := make([]*extsort.Run, len(task.Runs))
		for i, ref := range task.Runs {
			runs[i] = extsort.OpenRemoteRun(ref.Size, ref.Records, a.remoteReadAt(ctx, ref, &lost, &fetchBytes), shuffleIO)
		}
		sink := &singleFileSink{path: filepath.Join(taskdir, "out.rec")}
		if err := runReduceTask(ctx, j, task.Task, runs, sink, counters); err != nil {
			res.LostRuns = lost.urls
			res.FetchBytes = fetchBytes.Load()
			return res, nil, err
		}
		res.OutRecords = sink.n
	default:
		return res, nil, fmt.Errorf("unknown worker phase %q", task.Phase)
	}

	res.Counters = counters.Snapshot()
	res.ShuffleWritten = shuffleIO.BytesWritten()
	res.ShuffleRead = shuffleIO.BytesRead()
	res.FetchBytes = fetchBytes.Load()
	return res, served, nil
}

// lostRuns collects shuffle URLs whose fetch failed outright — the
// producer is unreachable, as opposed to serving corrupt bytes.
type lostRuns struct{ urls []string }

func (l *lostRuns) add(u string) {
	if !slices.Contains(l.urls, u) {
		l.urls = append(l.urls, u)
	}
}

// netFetchReadahead is the minimum region one shuffle-service range
// request pulls; the block reader's mostly-sequential ~64KiB block
// fetches are then served from the buffered window.
const netFetchReadahead = 256 << 10

// remoteReadAt returns the ranged-fetch function behind one remote
// run: HTTP Range requests against the producing worker's shuffle
// service, with readahead buffering. Fetch failures are recorded as
// lost runs so the coordinator can re-execute the producing map task.
func (a *netAgent) remoteReadAt(ctx context.Context, ref netRunRef, lost *lostRuns, fetched *atomic.Int64) extsort.ReadAtFunc {
	var buf []byte
	var bufOff int64
	return func(off int64, n int) ([]byte, error) {
		if off >= bufOff && off+int64(n) <= bufOff+int64(len(buf)) {
			return buf[off-bufOff : off-bufOff+int64(n)], nil
		}
		fetchLen := int64(max(n, netFetchReadahead))
		if off+fetchLen > ref.Size {
			fetchLen = ref.Size - off
		}
		if fetchLen < int64(n) {
			return nil, fmt.Errorf("region [%d,+%d) outside run of %d bytes", off, n, ref.Size)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, ref.URL, nil)
		if err != nil {
			return nil, err
		}
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", off, off+fetchLen-1))
		resp, err := a.client.Do(req)
		if err != nil {
			lost.add(ref.URL)
			return nil, fmt.Errorf("fetch %s: %w", ref.URL, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusPartialContent {
			lost.add(ref.URL)
			return nil, fmt.Errorf("fetch %s: status %s", ref.URL, resp.Status)
		}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			lost.add(ref.URL)
			return nil, fmt.Errorf("fetch %s: %w", ref.URL, err)
		}
		fetched.Add(int64(len(data)))
		buf, bufOff = data, off
		if int64(len(data)) < int64(n) {
			return nil, fmt.Errorf("fetch %s: short range response (%d of %d bytes)", ref.URL, len(data), fetchLen)
		}
		return buf[:n], nil
	}
}

// heartbeat renews the lease at a third of its TTL until the task
// context ends. A cancelled lease — or a coordinator that stays
// unreachable — cancels the task.
func (a *netAgent) heartbeat(ctx context.Context, cancel context.CancelFunc, lease string, ttl time.Duration) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(ttl / 3)
		defer tick.Stop()
		misses := 0
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
			}
			var resp netHeartbeatResp
			err := a.postJSON(ctx, a.coordURL+"/mr/heartbeat", netHeartbeatReq{Worker: a.worker, Leases: []string{lease}}, &resp)
			if err != nil {
				if misses++; misses >= 3 {
					cancel()
					return
				}
				continue
			}
			misses = 0
			if slices.Contains(resp.Cancel, lease) {
				cancel()
				return
			}
		}
	}()
	return done
}

// report posts the attempt's result, with brief retries: losing a
// computed result to a transient hiccup would waste a whole attempt.
func (a *netAgent) report(ctx context.Context, res *netResultReq) bool {
	for i := 0; ; i++ {
		var resp netResultResp
		err := a.postJSON(ctx, a.coordURL+"/mr/result", res, &resp)
		if err == nil {
			return resp.Accepted
		}
		if i >= 2 || ctx.Err() != nil {
			return false
		}
		sleepCtx(ctx, 200*time.Millisecond)
	}
}

// upload streams an output record file to the coordinator's staging
// area for this lease.
func (a *netAgent) upload(ctx context.Context, lease, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.coordURL+"/mr/output/"+lease, f)
	if err != nil {
		return err
	}
	resp, err := a.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("upload output: status %s", resp.Status)
	}
	return nil
}

func (a *netAgent) download(ctx context.Context, srcURL, path string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srcURL, nil)
	if err != nil {
		return err
	}
	resp, err := a.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %s", srcURL, resp.Status)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, err = io.Copy(f, resp.Body)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func (a *netAgent) get(ctx context.Context, srcURL string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srcURL, nil)
	if err != nil {
		return nil, err
	}
	resp, err := a.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %s", srcURL, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// goodbye tells the coordinator this worker is leaving gracefully, so
// its leases and published map outputs are requeued immediately
// instead of after lease expiry. Best-effort: the worker is exiting
// either way.
func (a *netAgent) goodbye() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	a.postJSON(ctx, a.coordURL+"/mr/goodbye", netPollReq{Worker: a.worker}, &struct{}{})
}

func (a *netAgent) postJSON(ctx context.Context, u string, in, out any) error {
	payload, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("POST %s: status %s: %s", u, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// sleepCtx sleeps for d or until ctx ends, reporting whether the full
// sleep happened.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
