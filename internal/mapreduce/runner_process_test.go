package mapreduce

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"
)

// The test programs below are registered process-global: the test
// binary doubles as the worker binary (TestMain calls
// RunWorkerIfRequested), so a re-executed worker finds the same
// registry.

// wcProgram is a registered word-count job: the mapper splits values
// into words, the reducer sums unit counts.
const wcProgram = "mapreduce-test/wordcount"

// slowProgram is a registered identity job whose mapper and reducer
// sleep per record, so tests can cancel a job reliably mid-phase. Its
// config is slowConfig.
const slowProgram = "mapreduce-test/slow"

// tagProgram is a registered map-only job: an identity mapper with no
// reducer.
const tagProgram = "mapreduce-test/tag"

type slowConfig struct {
	SleepPerRecord time.Duration `json:"sleep_per_record"`
}

func init() {
	RegisterProgram(tagProgram, func(config []byte) (*Job, error) {
		return &Job{
			NewMapper: func() Mapper {
				return MapperFunc(func(key, value []byte, emit Emit) error {
					return emit(key, value)
				})
			},
		}, nil
	})
	RegisterProgram(wcProgram, func(config []byte) (*Job, error) {
		return &Job{
			NewMapper: func() Mapper {
				return MapperFunc(func(key, value []byte, emit Emit) error {
					for _, w := range strings.Fields(string(value)) {
						if err := emit([]byte(w), []byte("1")); err != nil {
							return err
						}
					}
					return nil
				})
			},
			NewReducer: func() Reducer {
				return ReducerFunc(func(key []byte, values *Values, emit Emit) error {
					var n int64
					for values.Next() {
						v, err := strconv.ParseInt(string(values.Value()), 10, 64)
						if err != nil {
							return err
						}
						n += v
					}
					return emit(key, []byte(strconv.FormatInt(n, 10)))
				})
			},
		}, nil
	})
	RegisterProgram(slowProgram, func(config []byte) (*Job, error) {
		var cfg slowConfig
		if err := json.Unmarshal(config, &cfg); err != nil {
			return nil, err
		}
		return &Job{
			NewMapper: func() Mapper {
				return MapperFunc(func(key, value []byte, emit Emit) error {
					time.Sleep(cfg.SleepPerRecord)
					return emit(key, value)
				})
			},
			NewReducer: func() Reducer {
				return ReducerFunc(func(key []byte, values *Values, emit Emit) error {
					for values.Next() {
						time.Sleep(cfg.SleepPerRecord)
						if err := emit(key, values.Value()); err != nil {
							return err
						}
					}
					return nil
				})
			},
		}, nil
	})
}

// wcInput builds a deterministic multi-split word corpus.
func wcInput(docs, splits int) Input {
	var recs []KV
	for i := 0; i < docs; i++ {
		text := fmt.Sprintf("the quick fox %d jumps over the lazy dog the end", i%7)
		recs = append(recs, KV{Key: []byte(fmt.Sprintf("doc-%04d", i)), Value: []byte(text)})
	}
	return SliceInput(recs, splits)
}

func wcJob(t *testing.T, runner Runner) *Job {
	t.Helper()
	return &Job{
		Name:        "wc",
		Input:       wcInput(60, 6),
		Spec:        &Spec{Program: wcProgram},
		NumReducers: 4,
		MapSlots:    2,
		ReduceSlots: 2,
		TempDir:     t.TempDir(),
		Runner:      runner,
	}
}

// collectPartitions returns every partition's records in order, for
// byte-exact dataset comparison.
func collectPartitions(t *testing.T, d Dataset) [][]KV {
	t.Helper()
	out := make([][]KV, d.NumPartitions())
	for p := 0; p < d.NumPartitions(); p++ {
		err := d.Scan(p, func(k, v []byte) error {
			out[p] = append(out[p], KV{append([]byte(nil), k...), append([]byte(nil), v...)})
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// TestProcessRunnerMatchesLocal asserts the process backend produces
// byte-identical output, per partition and in order, with equal
// record counters.
func TestProcessRunnerMatchesLocal(t *testing.T) {
	local, err := Run(context.Background(), wcJob(t, LocalRunner{}))
	if err != nil {
		t.Fatal(err)
	}
	proc, err := Run(context.Background(), wcJob(t, &ProcessRunner{Workers: 2}))
	if err != nil {
		t.Fatal(err)
	}

	lp, pp := collectPartitions(t, local.Output), collectPartitions(t, proc.Output)
	if len(lp) != len(pp) {
		t.Fatalf("partitions: local %d, process %d", len(lp), len(pp))
	}
	for p := range lp {
		if len(lp[p]) != len(pp[p]) {
			t.Fatalf("partition %d: local %d records, process %d", p, len(lp[p]), len(pp[p]))
		}
		for i := range lp[p] {
			if !bytes.Equal(lp[p][i].Key, pp[p][i].Key) || !bytes.Equal(lp[p][i].Value, pp[p][i].Value) {
				t.Fatalf("partition %d record %d differs: local (%q,%q) process (%q,%q)",
					p, i, lp[p][i].Key, lp[p][i].Value, pp[p][i].Key, pp[p][i].Value)
			}
		}
	}
	for _, name := range []string{
		CounterMapInputRecords, CounterMapOutputRecords, CounterMapOutputBytes,
		CounterReduceInputGroups, CounterReduceInputRecords, CounterReduceOutputRecs,
	} {
		if l, p := local.Counters.Get(name), proc.Counters.Get(name); l != p {
			t.Errorf("%s: local %d, process %d", name, l, p)
		}
	}
	if got := proc.Counters.Get(CounterWorkerProcs); got != int64(local.MapTasks+local.ReduceTasks) {
		t.Errorf("WORKER_PROCS = %d, want %d", got, local.MapTasks+local.ReduceTasks)
	}
	if got := local.Counters.Get(CounterWorkerProcs); got != 0 {
		t.Errorf("local runner spawned %d worker procs", got)
	}
	// The drained shuffle invariant holds across the process boundary.
	if w, r := proc.Counters.Get(CounterShuffleBytesWritten), proc.Counters.Get(CounterShuffleBytesRead); w == 0 || w != r {
		t.Errorf("shuffle bytes written/read = %d/%d, want equal and nonzero", w, r)
	}
}

// TestProcessRunnerFallsBackWithoutSpec runs a closure-only job under
// the process runner: it must execute in-process (no workers) and
// still succeed.
func TestProcessRunnerFallsBackWithoutSpec(t *testing.T) {
	job := wcJob(t, &ProcessRunner{})
	job.Spec = nil
	job.NewMapper = func() Mapper {
		return MapperFunc(func(key, value []byte, emit Emit) error {
			return emit([]byte("k"), []byte("v"))
		})
	}
	job.NewReducer = func() Reducer {
		return ReducerFunc(func(key []byte, values *Values, emit Emit) error {
			for values.Next() {
			}
			return emit(key, []byte("done"))
		})
	}
	res, err := Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Counters.Get(CounterWorkerProcs); got != 0 {
		t.Errorf("spec-less job spawned %d worker procs", got)
	}
	if res.Output.Records() == 0 {
		t.Error("no output records")
	}
}

// TestProcessRunnerRetriesCrashedWorker injects a first-attempt crash
// into map task 0 (the worker process exits without a result) and
// asserts the task is retried on a fresh worker and the job succeeds
// with correct output.
func TestProcessRunnerRetriesCrashedWorker(t *testing.T) {
	t.Setenv(WorkerCrashEnv, "map:0")
	local, err := Run(context.Background(), wcJob(t, LocalRunner{}))
	if err != nil {
		t.Fatal(err)
	}
	proc, err := Run(context.Background(), wcJob(t, &ProcessRunner{MaxAttempts: 2}))
	if err != nil {
		t.Fatalf("job did not survive a crashed worker: %v", err)
	}
	if got := proc.Counters.Get(CounterTasksRetried); got < 1 {
		t.Errorf("TASKS_RETRIED = %d, want >= 1", got)
	}
	if want := int64(local.MapTasks + local.ReduceTasks + 1); proc.Counters.Get(CounterWorkerProcs) != want {
		t.Errorf("WORKER_PROCS = %d, want %d (one extra for the retry)", proc.Counters.Get(CounterWorkerProcs), want)
	}
	if l, p := local.Counters.Get(CounterReduceOutputRecs), proc.Counters.Get(CounterReduceOutputRecs); l != p {
		t.Errorf("output records: local %d, process-with-crash %d", l, p)
	}
}

// TestProcessRunnerCrashExhaustsAttempts caps attempts at 1 so the
// injected crash must fail the job.
func TestProcessRunnerCrashExhaustsAttempts(t *testing.T) {
	t.Setenv(WorkerCrashEnv, "reduce:0")
	_, err := Run(context.Background(), wcJob(t, &ProcessRunner{MaxAttempts: 1}))
	if err == nil {
		t.Fatal("job succeeded despite an unretried worker crash")
	}
	if !strings.Contains(err.Error(), "after 1 attempt") {
		t.Errorf("error does not mention exhausted attempts: %v", err)
	}
}

// TestUnknownRunnerEnvFailsLoudly asserts a typo'd NGRAMS_RUNNER
// value errors instead of silently running in-process.
func TestUnknownRunnerEnvFailsLoudly(t *testing.T) {
	t.Setenv(RunnerEnv, "proces")
	job := wcJob(t, nil)
	_, err := Run(context.Background(), job)
	if err == nil || !strings.Contains(err.Error(), RunnerEnv) {
		t.Fatalf("want %s error, got %v", RunnerEnv, err)
	}
}

// slowJob builds a job that is guaranteed to be mid-phase for a while:
// many records, per-record sleeps, and a shuffle budget small enough
// to force on-disk spills into TempDir.
func slowJob(t *testing.T, runner Runner, tempDir string, progress Progress) *Job {
	t.Helper()
	var recs []KV
	payload := bytes.Repeat([]byte("x"), 256)
	for i := 0; i < 4000; i++ {
		recs = append(recs, KV{Key: []byte(fmt.Sprintf("key-%05d", i)), Value: payload})
	}
	cfg, _ := json.Marshal(slowConfig{SleepPerRecord: 100 * time.Microsecond})
	return &Job{
		Name:          "slow",
		Input:         SliceInput(recs, 8),
		Spec:          &Spec{Program: slowProgram, Config: cfg},
		NumReducers:   4,
		MapSlots:      2,
		ReduceSlots:   2,
		ShuffleMemory: 64 << 10, // minimum budget: every task spills
		TempDir:       tempDir,
		Runner:        runner,
		Progress:      progress,
	}
}

// cancelOnTaskDone cancels a context when the first task of the given
// phase completes, putting the cancellation reliably mid-phase.
type cancelOnTaskDone struct {
	phase  string
	cancel context.CancelFunc
}

func (c *cancelOnTaskDone) JobStart(JobInfo)          {}
func (c *cancelOnTaskDone) PhaseStart(string, string) {}
func (c *cancelOnTaskDone) JobDone(JobSummary)        {}
func (c *cancelOnTaskDone) TaskDone(job, phase string) {
	if phase == c.phase {
		c.cancel()
	}
}

// TestCancelLeavesNoScratchFiles cancels a job mid-map and mid-reduce
// under both runners and asserts nothing is left under TempDir:
// neither partial spill/run files nor (for the process runner) the
// job's working directory.
func TestCancelLeavesNoScratchFiles(t *testing.T) {
	runners := map[string]func() Runner{
		"local":   func() Runner { return LocalRunner{} },
		"process": func() Runner { return &ProcessRunner{Workers: 2} },
	}
	for rname, mk := range runners {
		for _, phase := range []string{"map", "reduce"} {
			t.Run(rname+"-cancel-in-"+phase, func(t *testing.T) {
				dir := t.TempDir()
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				job := slowJob(t, mk(), dir, &cancelOnTaskDone{phase: phase, cancel: cancel})
				_, err := Run(ctx, job)
				if err == nil {
					t.Fatal("cancelled job reported success")
				}
				entries, rerr := os.ReadDir(dir)
				if rerr != nil {
					t.Fatal(rerr)
				}
				var names []string
				for _, e := range entries {
					names = append(names, e.Name())
				}
				if len(names) != 0 {
					t.Fatalf("scratch files leaked after cancel: %v", names)
				}
			})
		}
	}
}

// TestProcessRunnerMapOnly checks the map-only path (no shuffle)
// produces the same dataset as the local runner.
func TestProcessRunnerMapOnly(t *testing.T) {
	mk := func(runner Runner) *Job {
		job := wcJob(t, runner)
		job.Spec = &Spec{Program: tagProgram}
		return job
	}
	local, err := Run(context.Background(), mk(LocalRunner{}))
	if err != nil {
		t.Fatal(err)
	}
	proc, err := Run(context.Background(), mk(&ProcessRunner{}))
	if err != nil {
		t.Fatal(err)
	}
	if l, p := local.Output.Records(), proc.Output.Records(); l != p || l == 0 {
		t.Fatalf("map-only records: local %d, process %d", l, p)
	}
	if got := proc.Counters.Get(CounterWorkerProcs); got != int64(local.MapTasks) {
		t.Errorf("WORKER_PROCS = %d, want %d", got, local.MapTasks)
	}
}
