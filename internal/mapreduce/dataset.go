package mapreduce

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sync"

	"ngramstats/internal/encoding"
)

// KV is a key-value record.
type KV struct {
	Key   []byte
	Value []byte
}

// Dataset is the materialized output of a job: a partitioned collection
// of records that can be scanned again (typically as the input of a
// follow-up job, as the APRIORI methods and the maximality post-filter
// do). Implementations are safe for concurrent Scan of distinct
// partitions.
type Dataset interface {
	// NumPartitions returns the number of partitions.
	NumPartitions() int
	// Scan calls yield for every record of partition p, in the order the
	// reducer emitted them. The slices passed to yield are only valid for
	// the duration of the call.
	Scan(p int, yield func(key, value []byte) error) error
	// Records returns the total number of records.
	Records() int64
	// Release frees any resources (e.g. backing files). The dataset must
	// not be scanned afterwards.
	Release() error
}

// MemDataset is an in-memory Dataset.
type MemDataset struct {
	parts [][]KV
	n     int64
}

// NewMemDataset creates a MemDataset from explicit partitions. The
// records are used directly without copying.
func NewMemDataset(parts [][]KV) *MemDataset {
	d := &MemDataset{parts: parts}
	for _, p := range parts {
		d.n += int64(len(p))
	}
	return d
}

// NumPartitions implements Dataset.
func (d *MemDataset) NumPartitions() int { return len(d.parts) }

// Scan implements Dataset.
func (d *MemDataset) Scan(p int, yield func(key, value []byte) error) error {
	if p < 0 || p >= len(d.parts) {
		return fmt.Errorf("mapreduce: partition %d out of range [0,%d)", p, len(d.parts))
	}
	for _, r := range d.parts[p] {
		if err := yield(r.Key, r.Value); err != nil {
			return err
		}
	}
	return nil
}

// Records implements Dataset.
func (d *MemDataset) Records() int64 { return d.n }

// Release implements Dataset.
func (d *MemDataset) Release() error {
	d.parts = nil
	return nil
}

// Partition returns partition p for direct access.
func (d *MemDataset) Partition(p int) []KV { return d.parts[p] }

// fileDataset is a Dataset backed by one record file per partition.
type fileDataset struct {
	paths []string
	n     int64
}

// NumPartitions implements Dataset.
func (d *fileDataset) NumPartitions() int { return len(d.paths) }

// Scan implements Dataset.
func (d *fileDataset) Scan(p int, yield func(key, value []byte) error) error {
	if p < 0 || p >= len(d.paths) {
		return fmt.Errorf("mapreduce: partition %d out of range [0,%d)", p, len(d.paths))
	}
	if d.paths[p] == "" {
		return nil
	}
	f, err := os.Open(d.paths[p])
	if err != nil {
		return err
	}
	defer f.Close()
	rr := encoding.NewRecordReader(bufio.NewReaderSize(f, 256<<10))
	for {
		k, v, err := rr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := yield(k, v); err != nil {
			return err
		}
	}
}

// Records implements Dataset.
func (d *fileDataset) Records() int64 { return d.n }

// Release implements Dataset.
func (d *fileDataset) Release() error {
	var first error
	for _, p := range d.paths {
		if p == "" {
			continue
		}
		if err := os.Remove(p); err != nil && first == nil {
			first = err
		}
	}
	d.paths = nil
	return first
}

// concatDataset exposes several datasets as one, partition-aligned end
// to end.
type concatDataset struct {
	parts []Dataset
}

// ConcatDatasets combines datasets into a single logical dataset whose
// partitions are the concatenation of the inputs' partitions. The
// multi-job APRIORI methods use it to expose their per-iteration
// outputs as one result.
func ConcatDatasets(parts ...Dataset) Dataset {
	if len(parts) == 1 {
		return parts[0]
	}
	return &concatDataset{parts: parts}
}

// NumPartitions implements Dataset.
func (d *concatDataset) NumPartitions() int {
	n := 0
	for _, p := range d.parts {
		n += p.NumPartitions()
	}
	return n
}

// Scan implements Dataset.
func (d *concatDataset) Scan(p int, yield func(key, value []byte) error) error {
	for _, part := range d.parts {
		if p < part.NumPartitions() {
			return part.Scan(p, yield)
		}
		p -= part.NumPartitions()
	}
	return fmt.Errorf("mapreduce: partition out of range")
}

// Records implements Dataset.
func (d *concatDataset) Records() int64 {
	var n int64
	for _, p := range d.parts {
		n += p.Records()
	}
	return n
}

// Release implements Dataset.
func (d *concatDataset) Release() error {
	var first error
	for _, p := range d.parts {
		if err := p.Release(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// CollectDataset scans every partition of a dataset into memory. Handy
// in tests and for small outputs (e.g. dictionaries of frequent terms).
func CollectDataset(d Dataset) ([]KV, error) {
	var out []KV
	for p := 0; p < d.NumPartitions(); p++ {
		err := d.Scan(p, func(k, v []byte) error {
			out = append(out, KV{append([]byte(nil), k...), append([]byte(nil), v...)})
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Sink receives reducer (or map-only) output and produces a Dataset.
type Sink interface {
	// Writer returns the writer for partition p. Writers for distinct
	// partitions may be used concurrently.
	Writer(p int) (SinkWriter, error)
	// Finish returns the completed dataset. All writers must be closed
	// first.
	Finish() (Dataset, error)
}

// SinkWriter writes the records of one partition.
type SinkWriter interface {
	Write(key, value []byte) error
	Close() error
}

// SinkAborter is implemented by sinks that can discard partial output
// when a job fails or is cancelled before Finish. Runners call it on
// every failure path so disk-backed sinks do not orphan partition
// files.
type SinkAborter interface {
	Abort()
}

// abortSink discards a failed job's partial sink output, if the sink
// supports it.
func abortSink(s Sink) {
	if a, ok := s.(SinkAborter); ok {
		a.Abort()
	}
}

// MemSinkFactory returns a factory for in-memory sinks, the default.
func MemSinkFactory() SinkFactory {
	return func(partitions int) (Sink, error) {
		return &memSink{parts: make([][]KV, partitions)}, nil
	}
}

// FileSinkFactory returns a factory for disk-backed sinks writing to
// dir (created if needed).
func FileSinkFactory(dir string) SinkFactory {
	return func(partitions int) (Sink, error) {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		return &fileSink{dir: dir, paths: make([]string, partitions)}, nil
	}
}

// SinkFactory creates a sink with the given number of partitions.
type SinkFactory func(partitions int) (Sink, error)

type memSink struct {
	mu    sync.Mutex
	parts [][]KV
}

func (s *memSink) Writer(p int) (SinkWriter, error) {
	return &memSinkWriter{sink: s, p: p}, nil
}

func (s *memSink) Finish() (Dataset, error) {
	return NewMemDataset(s.parts), nil
}

type memSinkWriter struct {
	sink *memSink
	p    int
	buf  []KV
}

func (w *memSinkWriter) Write(key, value []byte) error {
	w.buf = append(w.buf, KV{append([]byte(nil), key...), append([]byte(nil), value...)})
	return nil
}

func (w *memSinkWriter) Close() error {
	w.sink.mu.Lock()
	w.sink.parts[w.p] = append(w.sink.parts[w.p], w.buf...)
	w.sink.mu.Unlock()
	w.buf = nil
	return nil
}

type fileSink struct {
	dir   string
	mu    sync.Mutex
	paths []string
	n     int64
}

func (s *fileSink) Writer(p int) (SinkWriter, error) {
	f, err := os.CreateTemp(s.dir, fmt.Sprintf("part-%05d-*.rec", p))
	if err != nil {
		return nil, err
	}
	return &fileSinkWriter{sink: s, p: p, f: f, w: bufio.NewWriterSize(f, 256<<10)}, nil
}

func (s *fileSink) Finish() (Dataset, error) {
	return &fileDataset{paths: s.paths, n: s.n}, nil
}

// Abort implements SinkAborter: it removes every partition file closed
// writers have registered so far. Files of writers still open belong
// to their (failing) task, which closes them before the runner aborts.
func (s *fileSink) Abort() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, p := range s.paths {
		if p != "" {
			os.Remove(p)
			s.paths[i] = ""
		}
	}
	s.n = 0
}

type fileSinkWriter struct {
	sink *fileSink
	p    int
	f    *os.File
	w    *bufio.Writer
	n    int64
}

func (w *fileSinkWriter) Write(key, value []byte) error {
	w.n++
	return encoding.WriteRecord(w.w, key, value)
}

func (w *fileSinkWriter) Close() error {
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.sink.mu.Lock()
	defer w.sink.mu.Unlock()
	if w.sink.paths[w.p] != "" {
		// A partition written by several writers (map-only jobs) is
		// concatenated.
		if err := appendFile(w.sink.paths[w.p], w.f.Name()); err != nil {
			return err
		}
		if err := os.Remove(w.f.Name()); err != nil {
			return err
		}
	} else {
		w.sink.paths[w.p] = w.f.Name()
	}
	w.sink.n += w.n
	return nil
}

func appendFile(dst, src string) error {
	out, err := os.OpenFile(dst, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return err
	}
	defer out.Close()
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	_, err = io.Copy(out, in)
	return err
}
