package mapreduce

// Tests for the map-side spill / reduce-side merge shuffle: many map
// tasks funneling into few partitions, golden word-count output, the
// shuffle counters, and graceful spilling under a tiny per-task budget.
// CI additionally runs this package under -race, which would catch any
// unsynchronized access on the lock-free emit and run hand-off paths.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"ngramstats/internal/encoding"
)

// goldenDocs builds a deterministic corpus and its exact word counts.
func goldenDocs(nDocs, wordsPerDoc, vocab int, seed int64) ([]string, map[string]uint64) {
	rng := rand.New(rand.NewSource(seed))
	docs := make([]string, nDocs)
	want := make(map[string]uint64)
	for i := range docs {
		var sb strings.Builder
		for w := 0; w < wordsPerDoc; w++ {
			word := fmt.Sprintf("w%03d", rng.Intn(vocab))
			want[word]++
			sb.WriteString(word)
			sb.WriteByte(' ')
		}
		docs[i] = sb.String()
	}
	return docs, want
}

func TestManyMapTasksFewPartitions(t *testing.T) {
	// 32 map tasks all funneling into 2 partitions — the shape that
	// serialized on the shared collector mutex before the map-side
	// shuffle. Output must match the exact golden counts, with and
	// without a combiner.
	docs, want := goldenDocs(32, 200, 50, 11)
	for _, combine := range []bool{false, true} {
		t.Run(fmt.Sprintf("combiner=%v", combine), func(t *testing.T) {
			job := &Job{
				Name:        "many-maps",
				Input:       wordCountInput(docs, 32),
				NewMapper:   func() Mapper { return wcMapper{} },
				NewReducer:  func() Reducer { return sumReducer{} },
				NumReducers: 2,
				MapSlots:    runtime.GOMAXPROCS(0),
				TempDir:     t.TempDir(),
			}
			if combine {
				job.NewCombiner = func() Reducer { return sumReducer{} }
			}
			res, err := Run(context.Background(), job)
			if err != nil {
				t.Fatal(err)
			}
			got := collectCounts(t, res.Output)
			if len(got) != len(want) {
				t.Fatalf("got %d distinct words, want %d", len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("count[%s] = %d, want %d", k, got[k], v)
				}
			}
			if res.MapTasks != 32 {
				t.Fatalf("MapTasks = %d, want 32", res.MapTasks)
			}

			// Shuffle-shape invariants: every sealed run is merged by
			// exactly one reduce task, so the summed merge fan-in equals
			// the sealed-run count; with 32 map tasks and 2 partitions
			// there must be at least one run per non-empty pair.
			sealed := res.Counters.Get(CounterShuffleRuns)
			fanIn := res.Counters.Get(CounterMergeFanIn)
			if sealed == 0 {
				t.Fatal("SHUFFLE_SEALED_RUNS = 0")
			}
			if fanIn != sealed {
				t.Fatalf("SHUFFLE_MERGE_FAN_IN = %d, want %d (= sealed runs)", fanIn, sealed)
			}
			if sealed > int64(res.MapTasks*res.ReduceTasks) {
				// No spills expected at the default budget: at most one
				// in-memory run per (task, partition).
				t.Fatalf("sealed %d runs, want <= %d", sealed, res.MapTasks*res.ReduceTasks)
			}
		})
	}
}

func TestSingleMapTaskSinglePartition(t *testing.T) {
	docs, want := goldenDocs(1, 100, 10, 3)
	res, err := Run(context.Background(), &Job{
		Name:        "single",
		Input:       wordCountInput(docs, 1),
		NewMapper:   func() Mapper { return wcMapper{} },
		NewReducer:  func() Reducer { return sumReducer{} },
		NumReducers: 1,
		TempDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	got := collectCounts(t, res.Output)
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count[%s] = %d, want %d", k, got[k], v)
		}
	}
	// One map task, one partition, in-memory output: exactly one run.
	if sealed := res.Counters.Get(CounterShuffleRuns); sealed != 1 {
		t.Fatalf("SHUFFLE_SEALED_RUNS = %d, want 1", sealed)
	}
	if fanIn := res.Counters.Get(CounterMergeFanIn); fanIn != 1 {
		t.Fatalf("SHUFFLE_MERGE_FAN_IN = %d, want 1", fanIn)
	}
}

func TestGracefulSpillUnderTinyTaskBudget(t *testing.T) {
	// A 64 KiB per-task budget (the floor) against ~400 KiB of emitted
	// records per task must trigger graceful spills — and must not
	// change the output.
	docs, want := goldenDocs(4, 5000, 200, 17)
	res, err := Run(context.Background(), &Job{
		Name:          "tiny-budget",
		Input:         wordCountInput(docs, 4),
		NewMapper:     func() Mapper { return wcMapper{} },
		NewReducer:    func() Reducer { return sumReducer{} },
		NumReducers:   3,
		ShuffleMemory: 1, // clamped up to the 64 KiB floor
		TempDir:       t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	got := collectCounts(t, res.Output)
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count[%s] = %d, want %d", k, got[k], v)
		}
	}
	if spilled := res.Counters.Get(CounterSpilledRecords); spilled == 0 {
		t.Fatal("expected SPILLED_RECORDS > 0 under tiny budget")
	}
	// Spilling means more than one run per (task, partition) pair
	// somewhere, and the reduce side must have merged them all.
	sealed := res.Counters.Get(CounterShuffleRuns)
	if sealed <= int64(res.MapTasks) {
		t.Fatalf("sealed %d runs, expected more than %d map tasks' worth", sealed, res.MapTasks)
	}
	if fanIn := res.Counters.Get(CounterMergeFanIn); fanIn != sealed {
		t.Fatalf("SHUFFLE_MERGE_FAN_IN = %d, want %d", fanIn, sealed)
	}
}

func TestSealSpillsWhenTasksOutnumberSlots(t *testing.T) {
	// 8 map tasks on 1 slot, each buffering ~120 KiB against a 256 KiB
	// task budget: no graceful spill triggers mid-task, but the sealed
	// hand-off share is 256 KiB × 1/8 = 32 KiB, so every task must
	// spill its remainder to disk at seal time instead of keeping
	// 8×120 KiB resident. Every map output record therefore spills.
	docs, want := goldenDocs(8, 2000, 100, 23)
	res, err := Run(context.Background(), &Job{
		Name:          "seal-bound",
		Input:         wordCountInput(docs, 8),
		NewMapper:     func() Mapper { return wcMapper{} },
		NewReducer:    func() Reducer { return sumReducer{} },
		NumReducers:   2,
		MapSlots:      1,
		ShuffleMemory: 256 << 10,
		TempDir:       t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	got := collectCounts(t, res.Output)
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count[%s] = %d, want %d", k, got[k], v)
		}
	}
	spilled := res.Counters.Get(CounterSpilledRecords)
	mapOut := res.Counters.Get(CounterMapOutputRecords)
	if spilled < mapOut {
		t.Fatalf("SPILLED_RECORDS = %d, want >= %d (all map output forced to disk at seal)", spilled, mapOut)
	}
}

func TestShuffleMatchesSequentialReference(t *testing.T) {
	// The parallel shuffle result must be byte-identical (as a multiset)
	// to the same job forced through one map slot and one reduce slot.
	docs, _ := goldenDocs(16, 300, 80, 29)
	run := func(mapSlots, reduceSlots int) map[string]uint64 {
		res, err := Run(context.Background(), &Job{
			Name:        fmt.Sprintf("ref-%d-%d", mapSlots, reduceSlots),
			Input:       wordCountInput(docs, 16),
			NewMapper:   func() Mapper { return wcMapper{} },
			NewReducer:  func() Reducer { return sumReducer{} },
			NewCombiner: func() Reducer { return sumReducer{} },
			NumReducers: 4,
			MapSlots:    mapSlots,
			ReduceSlots: reduceSlots,
			TempDir:     t.TempDir(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return collectCounts(t, res.Output)
	}
	sequential := run(1, 1)
	parallel := run(runtime.GOMAXPROCS(0), runtime.GOMAXPROCS(0))
	if len(sequential) != len(parallel) {
		t.Fatalf("distinct words differ: %d vs %d", len(sequential), len(parallel))
	}
	for k, v := range sequential {
		if parallel[k] != v {
			t.Fatalf("count[%s]: sequential %d, parallel %d", k, v, parallel[k])
		}
	}
}

func TestShuffleMicrosCounterPopulated(t *testing.T) {
	// SHUFFLE_MICROS exists after any shuffle job (it may round to zero
	// on very fast runs, so only presence in the snapshot is asserted).
	docs, _ := goldenDocs(2, 50, 10, 5)
	res, err := Run(context.Background(), &Job{
		Name:        "shuffle-millis",
		Input:       wordCountInput(docs, 2),
		NewMapper:   func() Mapper { return wcMapper{} },
		NewReducer:  func() Reducer { return sumReducer{} },
		NumReducers: 2,
		TempDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Counters.Snapshot()[CounterShuffleMicros]; !ok {
		t.Fatal("SHUFFLE_MICROS counter missing")
	}
	s := Summary("shuffle-millis", res)
	if s.SealedRuns == 0 || s.MergeFanIn == 0 {
		t.Fatalf("summary missing shuffle shape: %+v", s)
	}
}

// emitHeavyMapper emits k records per input record with minimal work,
// to expose the emit path itself.
type emitHeavyMapper struct{ k int }

func (m emitHeavyMapper) Map(key, value []byte, emit Emit) error {
	for i := 0; i < m.k; i++ {
		w := fmt.Sprintf("w%04d", i)
		if err := emit([]byte(w), encoding.AppendUvarint(nil, 1)); err != nil {
			return err
		}
	}
	return nil
}

func TestEmitHeavyManyTasks(t *testing.T) {
	// Stress the emit path across tasks; under -race this exercises the
	// claim that no shared mutable state is touched per record.
	recs := make([]KV, 16)
	for i := range recs {
		recs[i] = KV{Key: []byte(fmt.Sprint(i)), Value: []byte("x")}
	}
	res, err := Run(context.Background(), &Job{
		Name:        "emit-heavy",
		Input:       SliceInput(recs, 16),
		NewMapper:   func() Mapper { return emitHeavyMapper{k: 500} },
		NewReducer:  func() Reducer { return sumReducer{} },
		NumReducers: 2,
		TempDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Counters.Get(CounterMapOutputRecords); n != 16*500 {
		t.Fatalf("MAP_OUTPUT_RECORDS = %d, want %d", n, 16*500)
	}
	got := collectCounts(t, res.Output)
	if len(got) != 500 {
		t.Fatalf("distinct keys = %d, want 500", len(got))
	}
	for k, v := range got {
		if v != 16 {
			t.Fatalf("count[%s] = %d, want 16", k, v)
		}
	}
}
