// Package mapreduce is a MapReduce runtime modeled on Hadoop, the
// substrate every method of the paper runs on. It provides the
// programming model of Dean & Ghemawat — map(k1,v1) → list<(k2,v2)>,
// sort/group, reduce(k2, list<v2>) → list<(k3,v3)> — together with the
// Hadoop facilities the paper's implementation section (Section V)
// depends on: custom partitioners and sort comparators, combiners for
// local aggregation, job counters (MAP_OUTPUT_BYTES, MAP_OUTPUT_RECORDS,
// …), side data in the style of the distributed cache, configurable
// map/reduce slot pools, and a driver for multi-job workflows.
//
// # Plan and Runner
//
// Execution is split into two halves. Run first compiles a Job into a
// declarative Plan — resolved input splits, phase layout, partition
// count, memory budgets, serialized side data — and then hands the
// plan to a Runner, the pluggable execution backend:
//
//	Job ──Compile──▶ Plan ──Runner.Run──▶ Dataset
//
// LocalRunner (the default) executes tasks as goroutines in this
// process, exactly as the engine always has. ProcessRunner executes
// every map and reduce task as a separate worker OS process, with
// per-task retry (MaxAttempts) and failed-worker isolation — the
// in-repo analogue of Hadoop scheduling isolated task JVMs onto
// cluster slots, and the seam future sharded or remote backends plug
// into. Job.Runner selects the backend per job; DefaultRunner honors
// the NGRAMS_RUNNER environment variable ("local" or "process") for
// jobs that leave it nil.
//
// Task callbacks are Go closures, so a worker process cannot receive
// them over a pipe; instead a job carries a Spec — the name of a
// program registered with RegisterProgram plus a serialized
// configuration — from which the worker rebuilds the mapper, combiner,
// reducer, partitioner, and comparators. A job may even be Spec-only:
// Compile materializes the callbacks from the registry, so the local
// and worker construction paths are one and the same. Jobs without a
// Spec (ad-hoc closures in tests) silently fall back to in-process
// execution under the ProcessRunner.
//
// # Worker protocol
//
// The ProcessRunner re-executes the current binary (os.Executable)
// with the NGRAMS_MR_WORKER environment variable set. The child must
// call RunWorkerIfRequested first thing in main — or TestMain for test
// binaries — which hijacks the process: it reads one JSON task spec
// from stdin (program name and config, phase, task id, attempt,
// partition count, memory budgets, codec, scratch dir, side-data
// files, and the task's input), executes the task, writes a banner
// line plus one JSON result to stdout (counters snapshot, measured
// shuffle bytes, and the task's outputs), and exits.
//
// Data crosses the process boundary through files in a per-job working
// directory under Job.TempDir: the parent materializes each input
// split to a record file; a map worker seals every run to disk (the
// PR-2 block-framed run format) and reports the file paths, which the
// parent hands to reduce workers; reduce and map-only workers write
// record files the parent folds into the job's sink. Reduce inputs are
// opened as shared runs (extsort.OpenSharedRunFile) — consuming or
// discarding them never unlinks, so a worker that dies mid-merge
// leaves its inputs intact for the retry. Every attempt runs in a
// private scratch directory, removed on failure; the working directory
// is removed when the job ends, in success, failure, and cancellation
// alike. WORKER_PROCS counts processes spawned, TASKS_RETRIED the
// attempts that failed and were retried.
//
// # Shuffle architecture
//
// The shuffle follows Hadoop's map-side spill / reduce-side merge
// design. Each map task partitions its output into task-private
// bounded-memory sorters (package extsort), one per reduce partition,
// optionally routing records through the combiner first. No lock is
// taken on the per-record emit path: the sorters belong to the task
// alone and hot counters are pre-resolved atomic cells, so map slots
// scale without contending on a shared collector.
//
// When a task finishes, it seals every partition sorter into immutable
// sorted runs — the final in-memory buffer is encoded into an
// in-memory run at zero disk I/O; earlier spills travel as on-disk
// runs — and hands them off through a per-task slot, so the hand-off
// itself is also lock-free. Each reduce task then opens a multi-way
// merge (extsort.MergeRuns) over all map tasks' runs for its partition
// and streams the merged groups through the reducer.
//
// # Run format and measured transfer
//
// Sealed runs — in memory and on disk alike — use extsort's
// block-framed run format: records are grouped into ~64 KiB blocks
// whose sorted keys are front-coded (shared-prefix length + differing
// suffix), each block carries a CRC-32C checksum, and a per-run footer
// index maps every block to its first key so merge readers stream
// block-at-a-time with readahead and can skip blocks outside a key
// range (extsort.MergeRunsRange). Front-coding is what makes SUFFIX-σ
// suffix keys — long sorted stretches sharing leading terms — much
// smaller in flight than flat framing. Job.ShuffleCodec optionally
// adds per-block DEFLATE on top for jobs whose values compress well.
//
// Because every sealed run is really encoded, shuffle transfer is
// measured rather than estimated: SHUFFLE_BYTES_WRITTEN counts the
// encoded run bytes map tasks produced, SHUFFLE_BYTES_READ the bytes
// reduce-side merges consumed (equal on a fully drained job), while
// REDUCE_SHUFFLE_BYTES remains the logical key+value byte count —
// written/logical is the format's compression ratio.
//
// # Memory accounting
//
// Job.ShuffleMemory is the buffering budget of a single map task — the
// analogue of Hadoop's io.sort.mb — shared across that task's partition
// sorters; total shuffle buffering therefore approaches
// MapSlots×ShuffleMemory. When a task's buffered bytes exceed its
// budget, the largest partition buffer is gracefully spilled to a
// sorted on-disk run and counting continues. Job.CombineMemory bounds
// the combiner's pre-sort buffers the same way, divided statically per
// partition.
//
// Sealed in-memory runs stay resident until their reduce task drains
// them, so when a job has more map tasks than slots, each finishing
// task spills its remainder to disk once its share of the
// MapSlots×ShuffleMemory hand-off budget is exceeded — the analogue of
// Hadoop's always-on-disk final map output, paid only when the bound
// is actually at risk.
//
// The shuffle reports its shape through counters:
// SHUFFLE_SEALED_RUNS (runs handed off), SHUFFLE_MERGE_FAN_IN (summed
// reduce-side merge width), SHUFFLE_MICROS (time spent sealing and
// opening merges, summed across tasks), and the measured transfer
// pair SHUFFLE_BYTES_WRITTEN / SHUFFLE_BYTES_READ, alongside the
// Hadoop-style SPILLED_RECORDS and REDUCE_SHUFFLE_BYTES. A
// partitioner that cannot parse a key returns MalformedKeyPartition;
// such keys are tallied in MALFORMED_KEYS and any nonzero count fails
// the job after the map phase.
package mapreduce
