// Package mapreduce is an in-process MapReduce runtime modeled on
// Hadoop, the substrate every method of the paper runs on. It provides
// the programming model of Dean & Ghemawat — map(k1,v1) → list<(k2,v2)>,
// sort/group, reduce(k2, list<v2>) → list<(k3,v3)> — together with the
// Hadoop facilities the paper's implementation section (Section V)
// depends on: custom partitioners and sort comparators, combiners for
// local aggregation, job counters (MAP_OUTPUT_BYTES, MAP_OUTPUT_RECORDS,
// …), side data in the style of the distributed cache, configurable
// map/reduce slot pools, and a driver for multi-job workflows.
//
// # Shuffle architecture
//
// The shuffle follows Hadoop's map-side spill / reduce-side merge
// design. Each map task partitions its output into task-private
// bounded-memory sorters (package extsort), one per reduce partition,
// optionally routing records through the combiner first. No lock is
// taken on the per-record emit path: the sorters belong to the task
// alone and hot counters are pre-resolved atomic cells, so map slots
// scale without contending on a shared collector.
//
// When a task finishes, it seals every partition sorter into immutable
// sorted runs — the final in-memory buffer is encoded into an
// in-memory run at zero disk I/O; earlier spills travel as on-disk
// runs — and hands them off through a per-task slot, so the hand-off
// itself is also lock-free. Each reduce task then opens a multi-way
// merge (extsort.MergeRuns) over all map tasks' runs for its partition
// and streams the merged groups through the reducer.
//
// # Run format and measured transfer
//
// Sealed runs — in memory and on disk alike — use extsort's
// block-framed run format: records are grouped into ~64 KiB blocks
// whose sorted keys are front-coded (shared-prefix length + differing
// suffix), each block carries a CRC-32C checksum, and a per-run footer
// index maps every block to its first key so merge readers stream
// block-at-a-time with readahead and can skip blocks outside a key
// range (extsort.MergeRunsRange). Front-coding is what makes SUFFIX-σ
// suffix keys — long sorted stretches sharing leading terms — much
// smaller in flight than flat framing. Job.ShuffleCodec optionally
// adds per-block DEFLATE on top for jobs whose values compress well.
//
// Because every sealed run is really encoded, shuffle transfer is
// measured rather than estimated: SHUFFLE_BYTES_WRITTEN counts the
// encoded run bytes map tasks produced, SHUFFLE_BYTES_READ the bytes
// reduce-side merges consumed (equal on a fully drained job), while
// REDUCE_SHUFFLE_BYTES remains the logical key+value byte count —
// written/logical is the format's compression ratio.
//
// # Memory accounting
//
// Job.ShuffleMemory is the buffering budget of a single map task — the
// analogue of Hadoop's io.sort.mb — shared across that task's partition
// sorters; total shuffle buffering therefore approaches
// MapSlots×ShuffleMemory. When a task's buffered bytes exceed its
// budget, the largest partition buffer is gracefully spilled to a
// sorted on-disk run and counting continues. Job.CombineMemory bounds
// the combiner's pre-sort buffers the same way, divided statically per
// partition.
//
// Sealed in-memory runs stay resident until their reduce task drains
// them, so when a job has more map tasks than slots, each finishing
// task spills its remainder to disk once its share of the
// MapSlots×ShuffleMemory hand-off budget is exceeded — the analogue of
// Hadoop's always-on-disk final map output, paid only when the bound
// is actually at risk.
//
// The shuffle reports its shape through counters:
// SHUFFLE_SEALED_RUNS (runs handed off), SHUFFLE_MERGE_FAN_IN (summed
// reduce-side merge width), SHUFFLE_MICROS (time spent sealing and
// opening merges, summed across tasks), and the measured transfer
// pair SHUFFLE_BYTES_WRITTEN / SHUFFLE_BYTES_READ, alongside the
// Hadoop-style SPILLED_RECORDS and REDUCE_SHUFFLE_BYTES. A
// partitioner that cannot parse a key returns MalformedKeyPartition;
// such keys are tallied in MALFORMED_KEYS and any nonzero count fails
// the job after the map phase.
package mapreduce
