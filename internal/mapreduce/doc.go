// Package mapreduce is a MapReduce runtime modeled on Hadoop, the
// substrate every method of the paper runs on. It provides the
// programming model of Dean & Ghemawat — map(k1,v1) → list<(k2,v2)>,
// sort/group, reduce(k2, list<v2>) → list<(k3,v3)> — together with the
// Hadoop facilities the paper's implementation section (Section V)
// depends on: custom partitioners and sort comparators, combiners for
// local aggregation, job counters (MAP_OUTPUT_BYTES, MAP_OUTPUT_RECORDS,
// …), side data in the style of the distributed cache, configurable
// map/reduce slot pools, and a driver for multi-job workflows.
//
// # Plan and Runner
//
// Execution is split into two halves. Run first compiles a Job into a
// declarative Plan — resolved input splits, phase layout, partition
// count, memory budgets, serialized side data — and then hands the
// plan to a Runner, the pluggable execution backend:
//
//	Job ──Compile──▶ Plan ──Runner.Run──▶ Dataset
//
// LocalRunner (the default) executes tasks as goroutines in this
// process, exactly as the engine always has. ProcessRunner executes
// every map and reduce task as a separate worker OS process, with
// per-task retry (MaxAttempts) and failed-worker isolation — the
// in-repo analogue of Hadoop scheduling isolated task JVMs onto
// cluster slots. NetRunner generalizes that seam across a network: an
// HTTP coordinator leases tasks to registered workers, with
// heartbeats, retry, speculative execution, and a shuffle-transfer
// service. Job.Runner selects the backend per job; DefaultRunner
// honors the NGRAMS_RUNNER environment variable for jobs that leave
// it nil.
//
// # Runner addresses and the registry
//
// Backends are addressed by a scheme string, parsed in exactly one
// place (NewRunner) and honored identically by Job.Runner resolution,
// NGRAMS_RUNNER, the public Options.Execution, and the -runner flags
// of the commands:
//
//	"local"                      in-process goroutine tasks (also "")
//	"process"                    one worker OS process per task
//	"net://host:port[?spawn=N]"  HTTP coordinator with leased workers
//
// The net scheme accepts further parameters: ttl=<duration> sets the
// lease TTL and spec=<duration|off> the speculative-execution delay
// (fault drills pin recovery to lease expiry with spec=off).
//
// RegisterRunner makes the scheme set extensible: a backend registers
// a factory for its scheme (the part before "://", matched
// case-insensitively) in an init function, and is then addressable
// everywhere a runner name is accepted. The factory receives the full
// address plus the shared Workers/MaxAttempts knobs and must reject
// addresses it cannot honor — an unknown scheme, a malformed address,
// or an unrecognized parameter is a loud error at job start, never a
// silent fallback to a different backend. Registering a duplicate
// scheme panics: schemes are process-global identities.
//
// Task callbacks are Go closures, so a worker process cannot receive
// them over a pipe; instead a job carries a Spec — the name of a
// program registered with RegisterProgram plus a serialized
// configuration — from which the worker rebuilds the mapper, combiner,
// reducer, partitioner, and comparators. A job may even be Spec-only:
// Compile materializes the callbacks from the registry, so the local
// and worker construction paths are one and the same. Jobs without a
// Spec (ad-hoc closures in tests) silently fall back to in-process
// execution under the ProcessRunner.
//
// # Worker protocol
//
// The ProcessRunner re-executes the current binary (os.Executable)
// with the NGRAMS_MR_WORKER environment variable set. The child must
// call RunWorkerIfRequested first thing in main — or TestMain for test
// binaries — which hijacks the process: it reads one JSON task spec
// from stdin (program name and config, phase, task id, attempt,
// partition count, memory budgets, codec, scratch dir, side-data
// files, and the task's input), executes the task, writes a banner
// line plus one JSON result to stdout (counters snapshot, measured
// shuffle bytes, and the task's outputs), and exits.
//
// Data crosses the process boundary through files in a per-job working
// directory under Job.TempDir: the parent materializes each input
// split to a record file; a map worker seals every run to disk (the
// PR-2 block-framed run format) and reports the file paths, which the
// parent hands to reduce workers; reduce and map-only workers write
// record files the parent folds into the job's sink. Reduce inputs are
// opened as shared runs (extsort.OpenSharedRunFile) — consuming or
// discarding them never unlinks, so a worker that dies mid-merge
// leaves its inputs intact for the retry. Every attempt runs in a
// private scratch directory, removed on failure; the working directory
// is removed when the job ends, in success, failure, and cancellation
// alike. WORKER_PROCS counts processes spawned, TASKS_RETRIED the
// attempts that failed and were retried.
//
// # Shuffle architecture
//
// The shuffle follows Hadoop's map-side spill / reduce-side merge
// design. Each map task partitions its output into task-private
// bounded-memory sorters (package extsort), one per reduce partition,
// optionally routing records through the combiner first. No lock is
// taken on the per-record emit path: the sorters belong to the task
// alone and hot counters are pre-resolved atomic cells, so map slots
// scale without contending on a shared collector.
//
// When a task finishes, it seals every partition sorter into immutable
// sorted runs — the final in-memory buffer is encoded into an
// in-memory run at zero disk I/O; earlier spills travel as on-disk
// runs — and hands them off through a per-task slot, so the hand-off
// itself is also lock-free. Each reduce task then opens a multi-way
// merge (extsort.MergeRuns) over all map tasks' runs for its partition
// and streams the merged groups through the reducer.
//
// # Run format and measured transfer
//
// Sealed runs — in memory and on disk alike — use extsort's
// block-framed run format: records are grouped into ~64 KiB blocks
// whose sorted keys are front-coded (shared-prefix length + differing
// suffix), each block carries a CRC-32C checksum, and a per-run footer
// index maps every block to its first key so merge readers stream
// block-at-a-time with readahead and can skip blocks outside a key
// range (extsort.MergeRunsRange). Front-coding is what makes SUFFIX-σ
// suffix keys — long sorted stretches sharing leading terms — much
// smaller in flight than flat framing. Job.ShuffleCodec optionally
// adds per-block DEFLATE on top for jobs whose values compress well.
//
// Because every sealed run is really encoded, shuffle transfer is
// measured rather than estimated: SHUFFLE_BYTES_WRITTEN counts the
// encoded run bytes map tasks produced, SHUFFLE_BYTES_READ the bytes
// reduce-side merges consumed (equal on a fully drained job), while
// REDUCE_SHUFFLE_BYTES remains the logical key+value byte count —
// written/logical is the format's compression ratio.
//
// # Memory accounting
//
// Job.ShuffleMemory is the buffering budget of a single map task — the
// analogue of Hadoop's io.sort.mb — shared across that task's partition
// sorters; total shuffle buffering therefore approaches
// MapSlots×ShuffleMemory. When a task's buffered bytes exceed its
// budget, the largest partition buffer is gracefully spilled to a
// sorted on-disk run and counting continues. Job.CombineMemory bounds
// the combiner's pre-sort buffers the same way, divided statically per
// partition.
//
// Sealed in-memory runs stay resident until their reduce task drains
// them, so when a job has more map tasks than slots, each finishing
// task spills its remainder to disk once its share of the
// MapSlots×ShuffleMemory hand-off budget is exceeded — the analogue of
// Hadoop's always-on-disk final map output, paid only when the bound
// is actually at risk.
//
// The shuffle reports its shape through counters:
// SHUFFLE_SEALED_RUNS (runs handed off), SHUFFLE_MERGE_FAN_IN (summed
// reduce-side merge width), SHUFFLE_MICROS (time spent sealing and
// opening merges, summed across tasks), and the measured transfer
// pair SHUFFLE_BYTES_WRITTEN / SHUFFLE_BYTES_READ, alongside the
// Hadoop-style SPILLED_RECORDS and REDUCE_SHUFFLE_BYTES. A
// partitioner that cannot parse a key returns MalformedKeyPartition;
// such keys are tallied in MALFORMED_KEYS and any nonzero count fails
// the job after the map phase.
//
// # The net runner wire protocol
//
// NetRunner's coordinator and workers speak plain HTTP/JSON under the
// /mr/ prefix (message types in netproto.go). The coordinator serves:
//
//	POST /mr/register       worker announces its shuffle-service URL;
//	                        gets a worker id plus the job config
//	                        (program name, serialized config, partition
//	                        count, memory budgets, codec, side-data
//	                        keys, lease TTL)
//	POST /mr/poll           worker asks for work; the answer is a
//	                        leased task, "wait", "drain" (job over), or
//	                        "reregister" (unknown worker id)
//	POST /mr/heartbeat      renews the leases a worker still executes;
//	                        the reply lists leases to cancel
//	POST /mr/output/{lease} streams a reduce or map-only attempt's
//	                        output records into coordinator staging
//	POST /mr/result         reports a finished or failed attempt;
//	                        the reply says whether the attempt won
//	POST /mr/goodbye        graceful exit: leases and published map
//	                        outputs are requeued immediately
//	GET  /mr/split/{i}      input split i as a record file
//	GET  /mr/side/{key}     side data by key
//
// Each worker runs a shuffle-transfer service of its own, serving
//
//	GET /mr/run/{id}        one sealed map run, with HTTP Range support
//
// A map task's sealed runs stay on the producing worker; the result
// report carries their URLs, sizes, and record counts. Reduce workers
// merge them via ranged fetches (extsort.OpenRemoteRun) — the run
// format's per-block CRCs and footer index verify every transferred
// block, so a corrupted or truncated fetch surfaces as
// extsort.ErrCorruptRun rather than wrong counts, and
// SHUFFLE_FETCH_BYTES counts the wire bytes pulled.
//
// Fault tolerance is lease-based. Every assignment is a lease with a
// TTL; workers heartbeat at a third of it, a coordinator janitor
// expires leases that fall silent (LEASES_EXPIRED) and requeues their
// tasks, and failures charge a per-task attempt budget (MaxAttempts,
// fresh scratch per attempt) before the job fails. A worker silent
// past three TTLs is presumed dead: map outputs published by it are
// invalidated and their tasks re-executed — the Hadoop lost-map-output
// recovery — triggered eagerly when a reduce attempt reports fetch
// failures. Stragglers are speculatively duplicated (TASKS_SPECULATED)
// once an otherwise-idle worker has nothing pending and the lone
// attempt is older than both the configured delay and twice the
// phase's median task duration; the first result wins, and losing
// attempts are cancelled through their next heartbeat and their late
// results rejected. Winner-only result folding keeps record counters —
// and the output bytes — identical to the local runner's.
//
// Workers come in two flavors: a NetRunner spawns one-job workers
// (re-executions of the current binary, NGRAMS_NET_WORKER set, scratch
// rooted under the coordinator's working directory) unless NoSpawn is
// set, and external persistent workers join with RunNetWorker — the
// `ngrams -worker-connect` path — re-registering between jobs until
// interrupted. NET_WORKERS counts registrations.
package mapreduce
