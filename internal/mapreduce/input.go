package mapreduce

// Input describes the input of a job as a set of splits, each processed
// by one map task — the analogue of Hadoop input splits over HDFS
// blocks.
type Input interface {
	Splits() ([]Split, error)
}

// Split is one map task's share of the input.
type Split interface {
	// Records calls yield for each input record. The slices passed to
	// yield are only valid for the duration of the call.
	Records(yield func(key, value []byte) error) error
}

// SplitFunc adapts a function to the Split interface.
type SplitFunc func(yield func(key, value []byte) error) error

// Records implements Split.
func (f SplitFunc) Records(yield func(key, value []byte) error) error { return f(yield) }

// memSplit is a Split over a record slice.
type memSplit []KV

func (s memSplit) Records(yield func(key, value []byte) error) error {
	for _, r := range s {
		if err := yield(r.Key, r.Value); err != nil {
			return err
		}
	}
	return nil
}

// memInput is an Input over pre-built splits.
type memInput struct{ splits []Split }

func (in *memInput) Splits() ([]Split, error) { return in.splits, nil }

// SliceInput chops records into at most n splits of near-equal size.
func SliceInput(records []KV, n int) Input {
	if n < 1 {
		n = 1
	}
	if n > len(records) {
		n = len(records)
	}
	in := &memInput{}
	if n == 0 {
		return in
	}
	per := (len(records) + n - 1) / n
	for off := 0; off < len(records); off += per {
		end := off + per
		if end > len(records) {
			end = len(records)
		}
		in.splits = append(in.splits, memSplit(records[off:end]))
	}
	return in
}

// SplitsInput wraps explicit splits as an Input.
func SplitsInput(splits ...Split) Input { return &memInput{splits: splits} }

// DatasetInput exposes a previous job's output as the input of the next
// job, one split per partition. This is how the APRIORI iterations and
// the maximality post-filter chain jobs.
func DatasetInput(d Dataset) Input {
	in := &memInput{}
	for p := 0; p < d.NumPartitions(); p++ {
		p := p
		in.splits = append(in.splits, SplitFunc(func(yield func(key, value []byte) error) error {
			return d.Scan(p, yield)
		}))
	}
	return in
}
