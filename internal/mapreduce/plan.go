package mapreduce

import (
	"fmt"
	"sort"
	"sync"

	"ngramstats/internal/extsort"
)

// Plan is the compiled, declarative form of a Job: the phase layout,
// resolved input splits, partition count, memory budgets, and side
// data — everything a Runner needs to schedule the job's tasks,
// detached from how (and where) those tasks execute. Compile produces
// it; a Runner consumes it. The task-level callbacks (mapper, reducer,
// comparators) stay reachable two ways: in-process through the
// compiled job (LocalRunner), and by reconstruction from Spec in a
// separate worker process (ProcessRunner).
type Plan struct {
	// Name identifies the job.
	Name string
	// Splits are the resolved input splits, one map task each.
	Splits []Split
	// MapOnly marks a job without a reducer: mapper output goes
	// straight to the sink, partitioned but unsorted.
	MapOnly bool
	// NumReducers is the number of reduce partitions R.
	NumReducers int
	// MapSlots and ReduceSlots bound in-process task concurrency.
	MapSlots, ReduceSlots int
	// ShuffleMemory and CombineMemory are the per-map-task buffering
	// budgets in bytes.
	ShuffleMemory, CombineMemory int
	// ShuffleCodec is the optional per-block compression of shuffle
	// runs.
	ShuffleCodec extsort.Codec
	// TempDir is the scratch directory for spills and (under the
	// process runner) the job's working directory.
	TempDir string
	// SideData is the job's read-only side data (distributed cache).
	SideData map[string][]byte
	// Spec, when non-nil, names a registered program from which a
	// worker process can reconstruct the job's task callbacks. Jobs
	// without a Spec can only execute in-process.
	Spec *Spec
	// Sink materializes the job output.
	Sink SinkFactory

	// job is the defaulted job the plan was compiled from; runners
	// executing tasks in-process reach the task callbacks through it.
	job *Job
	// shuffleIO measures the job's encoded shuffle transfer. It is
	// created at compile time (nil for map-only jobs) so progress
	// sinks can watch the transfer while any runner executes the plan.
	shuffleIO *extsort.IOStats
}

// Tasks returns the number of map and reduce tasks the plan will run.
func (p *Plan) Tasks() (maps, reduces int) {
	if p.MapOnly {
		return len(p.Splits), 0
	}
	return len(p.Splits), p.NumReducers
}

// Job returns the defaulted job the plan was compiled from, giving
// runners in-process access to the task callbacks (NewMapper,
// NewReducer, Partition, Compare, …).
func (p *Plan) Job() *Job { return p.job }

// ShuffleIO returns the live instrument measuring the plan's encoded
// shuffle transfer (nil for map-only jobs). Runners account every
// sealed-run write and merge read here — the process runner folds in
// worker-reported totals as tasks complete.
func (p *Plan) ShuffleIO() *extsort.IOStats { return p.shuffleIO }

// Compile resolves the job into its declarative Plan: defaults are
// applied, the input is split, and the phase layout is fixed. The
// returned plan is ready to hand to any Runner.
func (j *Job) Compile() (*Plan, error) {
	d := j.withDefaults()
	if d.Input == nil {
		return nil, fmt.Errorf("mapreduce: job %q has no input", d.Name)
	}
	if d.NewMapper == nil && d.Spec != nil {
		// A Spec-only job: its callbacks all come from the registered
		// program, exactly as a worker process would rebuild them.
		built, err := buildProgram(d.Spec)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: job %q: %w", d.Name, err)
		}
		d.NewMapper = built.NewMapper
		d.NewCombiner = built.NewCombiner
		d.NewReducer = built.NewReducer
		if built.Partition != nil {
			d.Partition = built.Partition
		}
		if built.Compare != nil {
			d.Compare = built.Compare
			d.GroupCompare = built.Compare
		}
		if built.GroupCompare != nil {
			d.GroupCompare = built.GroupCompare
		}
	}
	if d.NewMapper == nil {
		return nil, fmt.Errorf("mapreduce: job %q has no mapper", d.Name)
	}
	splits, err := d.Input.Splits()
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: input splits: %w", d.Name, err)
	}
	p := &Plan{
		Name:          d.Name,
		Splits:        splits,
		MapOnly:       d.NewReducer == nil,
		NumReducers:   d.NumReducers,
		MapSlots:      d.MapSlots,
		ReduceSlots:   d.ReduceSlots,
		ShuffleMemory: d.ShuffleMemory,
		CombineMemory: d.CombineMemory,
		ShuffleCodec:  d.ShuffleCodec,
		TempDir:       d.TempDir,
		SideData:      d.SideData,
		Spec:          d.Spec,
		Sink:          d.Sink,
		job:           d,
	}
	if !p.MapOnly {
		p.shuffleIO = &extsort.IOStats{}
	}
	return p, nil
}

// Spec names a registered program together with its serialized
// configuration. It is the portable identity of a job's task
// callbacks: a worker process rebuilds the mapper, combiner, reducer,
// partitioner, and comparators by handing Config to the program
// registered under Program. Jobs whose callbacks are ad-hoc closures
// leave Spec nil and are confined to in-process execution.
type Spec struct {
	// Program is the registered program name (RegisterProgram).
	Program string
	// Config is the program-defined serialized job configuration.
	Config []byte
}

// programRegistry maps program names to builders. Registration happens
// in init functions, lookups on the worker path; the lock keeps the
// race detector honest for test-registered programs.
var (
	programMu sync.RWMutex
	programs  = make(map[string]func(config []byte) (*Job, error))
)

// RegisterProgram registers a program: a builder that reconstructs a
// job's task-level callbacks (NewMapper, NewCombiner, NewReducer,
// Partition, Compare, GroupCompare) from a serialized configuration.
// The runtime fields of the returned job (input, sink, slots, memory
// budgets, side data) are ignored — the executing runner supplies
// them. Registering the same name twice panics: programs are process-
// global identities shared between parent and re-executed workers.
func RegisterProgram(name string, build func(config []byte) (*Job, error)) {
	programMu.Lock()
	defer programMu.Unlock()
	if _, dup := programs[name]; dup {
		panic(fmt.Sprintf("mapreduce: program %q registered twice", name))
	}
	programs[name] = build
}

// buildProgram reconstructs a job's callbacks from a spec.
func buildProgram(spec *Spec) (*Job, error) {
	programMu.RLock()
	build, ok := programs[spec.Program]
	programMu.RUnlock()
	if !ok {
		known := registeredPrograms()
		return nil, fmt.Errorf("mapreduce: program %q not registered (known: %v)", spec.Program, known)
	}
	j, err := build(spec.Config)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: program %q: %w", spec.Program, err)
	}
	if j == nil || j.NewMapper == nil {
		return nil, fmt.Errorf("mapreduce: program %q built no mapper", spec.Program)
	}
	return j, nil
}

// registeredPrograms returns the sorted program names, for error
// messages.
func registeredPrograms() []string {
	programMu.RLock()
	defer programMu.RUnlock()
	names := make([]string, 0, len(programs))
	for name := range programs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
