package mapreduce

import (
	"os"
	"testing"
)

// TestMain wires hidden worker mode into the test binary: when the
// suite runs with NGRAMS_RUNNER=process — and for the ProcessRunner
// tests in this package — this binary is re-executed as the task
// worker for the jobs its own tests launch.
func TestMain(m *testing.M) {
	RunWorkerIfRequested()
	os.Exit(m.Run())
}
