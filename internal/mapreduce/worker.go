package mapreduce

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime/debug"

	"ngramstats/internal/encoding"
	"ngramstats/internal/extsort"
)

// The worker protocol. A ProcessRunner parent re-executes its own
// binary with WorkerEnv set; the child calls RunWorkerIfRequested
// before doing anything else, reads one workerSpec as JSON from stdin,
// executes the task, writes the workerBanner line followed by one
// workerResult as JSON to stdout, and exits. Data crosses the process
// boundary through the filesystem: the parent materializes the task's
// input split to a record file, the worker hands back its sealed
// shuffle runs as file paths (reduce workers re-open them as shared
// runs, so a retried attempt finds its inputs intact), and reduce /
// map-only output travels as a record file the parent folds into the
// job's sink.

// WorkerEnv is the environment variable whose presence switches a
// process into hidden worker mode (see RunWorkerIfRequested).
const WorkerEnv = "NGRAMS_MR_WORKER"

// WorkerCrashEnv is a test hook: when set to "<phase>:<taskID>" (e.g.
// "map:0"), a worker executing that task crashes with a nonzero exit
// before producing a result — but only on the task's first attempt, so
// retry tests can assert that a killed worker is retried and the job
// still succeeds.
const WorkerCrashEnv = "NGRAMS_WORKER_CRASH"

// workerBanner is the first stdout line of a worker-mode process. Its
// absence tells the parent the re-executed binary never entered worker
// mode (RunWorkerIfRequested not wired into its main/TestMain).
const workerBanner = "ngrams-mr-worker/1"

// RunWorkerIfRequested turns the current process into a MapReduce task
// worker when WorkerEnv is set, and never returns in that case: it
// serves exactly one task and exits. It also checks NetWorkerEnv (via
// RunNetWorkerIfRequested), so one hook covers both worker-based
// backends. Call it first thing in main() — or in TestMain for test
// binaries — of every program that may execute jobs under the
// ProcessRunner or NetRunner; it is a no-op otherwise.
func RunWorkerIfRequested() {
	if os.Getenv(WorkerEnv) != "" {
		os.Exit(workerMain(os.Stdin, os.Stdout))
	}
	RunNetWorkerIfRequested()
}

// workerSpec is the task assignment a worker reads from stdin.
type workerSpec struct {
	Job     string `json:"job"`
	Program string `json:"program"`
	Config  []byte `json:"config,omitempty"`
	// Phase is "map", "map-only", or "reduce".
	Phase   string `json:"phase"`
	TaskID  int    `json:"task_id"`
	Attempt int    `json:"attempt"`

	NumReducers   int `json:"num_reducers"`
	ShuffleMemory int `json:"shuffle_memory"`
	CombineMemory int `json:"combine_memory"`
	Codec         int `json:"codec"`
	// TempDir is the attempt's private scratch directory; the worker
	// writes spills, sealed runs, and its output file under it.
	TempDir string `json:"temp_dir"`
	// SideFiles maps side-data keys to files holding their contents.
	SideFiles map[string]string `json:"side_files,omitempty"`

	// SplitPath is the record file holding the task's input split (map
	// and map-only phases).
	SplitPath string `json:"split_path,omitempty"`
	// Runs are the shared shuffle-run files to merge (reduce phase), in
	// map-task order.
	Runs []workerRun `json:"runs,omitempty"`
	// OutPath is the record file to write output to (reduce and
	// map-only phases).
	OutPath string `json:"out_path,omitempty"`
}

// workerRun identifies one sealed on-disk shuffle run by path.
type workerRun struct {
	Path    string `json:"path"`
	Records int    `json:"records"`
}

// workerResult is what a worker reports back on stdout.
type workerResult struct {
	Err      string           `json:"err,omitempty"`
	Counters map[string]int64 `json:"counters,omitempty"`
	// ShuffleWritten / ShuffleRead are the worker's measured encoded
	// run transfer, folded into the job's IOStats by the parent.
	ShuffleWritten int64 `json:"shuffle_written,omitempty"`
	ShuffleRead    int64 `json:"shuffle_read,omitempty"`
	// Runs are the map task's sealed runs, per reduce partition.
	Runs [][]workerRun `json:"runs,omitempty"`
	// OutRecords counts the records written to OutPath.
	OutRecords int64 `json:"out_records,omitempty"`
}

// workerMain serves one task: spec from in, banner + result to out.
// The exit code is 0 when the task succeeded, 1 when it failed but the
// failure was reported cleanly.
func workerMain(in io.Reader, out io.Writer) int {
	bw := bufio.NewWriter(out)
	fmt.Fprintln(bw, workerBanner)
	res := serveWorkerTask(in)
	if err := json.NewEncoder(bw).Encode(res); err != nil {
		return 2
	}
	if err := bw.Flush(); err != nil {
		return 2
	}
	if res.Err != "" {
		return 1
	}
	return 0
}

// serveWorkerTask decodes and executes the task, converting every
// failure — including panics in user map/reduce code — into a
// reportable result.
func serveWorkerTask(in io.Reader) (res *workerResult) {
	defer func() {
		if r := recover(); r != nil {
			res = &workerResult{Err: fmt.Sprintf("worker panic: %v\n%s", r, debug.Stack())}
		}
	}()
	var spec workerSpec
	if err := json.NewDecoder(in).Decode(&spec); err != nil {
		return &workerResult{Err: fmt.Sprintf("decode task spec: %v", err)}
	}
	if c := os.Getenv(WorkerCrashEnv); c != "" && spec.Attempt == 1 &&
		c == fmt.Sprintf("%s:%d", spec.Phase, spec.TaskID) {
		os.Exit(3) // injected crash: die without producing a result
	}
	r, err := runWorkerTask(&spec)
	if err != nil {
		return &workerResult{Err: err.Error()}
	}
	return r
}

// runWorkerTask rebuilds the job from its registered program and runs
// one task of it.
func runWorkerTask(spec *workerSpec) (*workerResult, error) {
	j, err := buildProgram(&Spec{Program: spec.Program, Config: spec.Config})
	if err != nil {
		return nil, err
	}
	// Overlay the runtime configuration the parent decided on; the
	// program only supplies task callbacks.
	j.Name = spec.Job
	j.NumReducers = spec.NumReducers
	j.ShuffleMemory = spec.ShuffleMemory
	j.CombineMemory = spec.CombineMemory
	j.ShuffleCodec = extsort.Codec(spec.Codec)
	j.TempDir = spec.TempDir
	if len(spec.SideFiles) > 0 {
		j.SideData = make(map[string][]byte, len(spec.SideFiles))
		for key, path := range spec.SideFiles {
			data, err := os.ReadFile(path)
			if err != nil {
				return nil, fmt.Errorf("read side data %q: %w", key, err)
			}
			j.SideData[key] = data
		}
	}
	j = j.withDefaults()

	ctx := context.Background() // the parent kills the process to cancel
	counters := NewCounters()
	shuffleIO := &extsort.IOStats{}
	res := &workerResult{}

	switch spec.Phase {
	case "map":
		// sealKeep < 0 forces every sealed run onto disk, where the
		// parent and the reduce workers can reach it by path.
		taskRuns, err := runMapTask(ctx, j, spec.TaskID, fileSplit{path: spec.SplitPath}, -1, shuffleIO, counters)
		if err != nil {
			return nil, err
		}
		res.Runs = make([][]workerRun, len(taskRuns))
		for p, runs := range taskRuns {
			for _, r := range runs {
				if r.InMemory() {
					return nil, fmt.Errorf("map task %d sealed an in-memory run for partition %d", spec.TaskID, p)
				}
				res.Runs[p] = append(res.Runs[p], workerRun{Path: r.Path(), Records: r.Len()})
			}
		}
	case "map-only":
		w, err := newRecordFileWriter(spec.OutPath)
		if err != nil {
			return nil, err
		}
		taskErr := runMapOnlyTask(ctx, j, spec.TaskID, fileSplit{path: spec.SplitPath}, w, counters)
		closeErr := w.Close()
		if taskErr != nil {
			return nil, taskErr
		}
		if closeErr != nil {
			return nil, closeErr
		}
		res.OutRecords = w.n
	case "reduce":
		// Shared runs: consuming or discarding them leaves the files on
		// disk, so a retried attempt (and the parent's cleanup) still
		// finds them.
		runs := make([]*extsort.Run, len(spec.Runs))
		for i, ref := range spec.Runs {
			runs[i] = extsort.OpenSharedRunFile(ref.Path, ref.Records, shuffleIO)
		}
		sink := &singleFileSink{path: spec.OutPath}
		if err := runReduceTask(ctx, j, spec.TaskID, runs, sink, counters); err != nil {
			return nil, err
		}
		res.OutRecords = sink.n
	default:
		return nil, fmt.Errorf("unknown worker phase %q", spec.Phase)
	}

	res.Counters = counters.Snapshot()
	res.ShuffleWritten = shuffleIO.BytesWritten()
	res.ShuffleRead = shuffleIO.BytesRead()
	return res, nil
}

// fileSplit replays a split the parent materialized to a record file.
type fileSplit struct{ path string }

// Records implements Split.
func (s fileSplit) Records(yield func(key, value []byte) error) error {
	f, err := os.Open(s.path)
	if err != nil {
		return err
	}
	defer f.Close()
	rr := encoding.NewRecordReader(bufio.NewReaderSize(f, 256<<10))
	for {
		k, v, err := rr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := yield(k, v); err != nil {
			return err
		}
	}
}

// recordFileWriter is a SinkWriter appending length-framed records to
// one file.
type recordFileWriter struct {
	f *os.File
	w *bufio.Writer
	n int64
}

func newRecordFileWriter(path string) (*recordFileWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &recordFileWriter{f: f, w: bufio.NewWriterSize(f, 256<<10)}, nil
}

func (w *recordFileWriter) Write(key, value []byte) error {
	w.n++
	return encoding.WriteRecord(w.w, key, value)
}

func (w *recordFileWriter) Close() error {
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// singleFileSink adapts one output record file to the Sink surface a
// reduce task writes through.
type singleFileSink struct {
	path string
	n    int64
}

func (s *singleFileSink) Writer(p int) (SinkWriter, error) {
	w, err := newRecordFileWriter(s.path)
	if err != nil {
		return nil, err
	}
	return &singleFileSinkWriter{sink: s, w: w}, nil
}

func (s *singleFileSink) Finish() (Dataset, error) {
	return nil, fmt.Errorf("mapreduce: worker task sink has no dataset")
}

type singleFileSinkWriter struct {
	sink *singleFileSink
	w    *recordFileWriter
}

func (w *singleFileSinkWriter) Write(key, value []byte) error { return w.w.Write(key, value) }

func (w *singleFileSinkWriter) Close() error {
	w.sink.n = w.w.n
	return w.w.Close()
}
